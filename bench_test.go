// Benchmarks for every table and figure of the paper plus the
// selection-strategy and optimizer micro-ablations called out in
// DESIGN.md. Run with:
//
//	go test -bench=. -benchmem
//
// The experiment benchmarks share one memoized environment (QuickConfig),
// so the first iteration pays dataset generation and DCA training and
// subsequent iterations measure evaluation/rendering; the DCA training
// cost itself is measured separately by BenchmarkDCATrain*.
package fairrank_test

import (
	"io"
	"math/rand"
	"testing"

	"fairrank"
	"fairrank/internal/core"
	"fairrank/internal/engine"
	"fairrank/internal/experiments"
	"fairrank/internal/rank"
	"fairrank/internal/stats"
)

var benchEnv = experiments.NewEnv(experiments.QuickConfig())

func benchExperiment(b *testing.B, id string) {
	b.Helper()
	e, err := experiments.Lookup(id)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r, err := e.Run(benchEnv)
		if err != nil {
			b.Fatal(err)
		}
		if err := r.Render(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// One benchmark per paper artifact (see DESIGN.md experiment index).

func BenchmarkTable1(b *testing.B)   { benchExperiment(b, "table1") }
func BenchmarkTable2(b *testing.B)   { benchExperiment(b, "table2") }
func BenchmarkFig1(b *testing.B)     { benchExperiment(b, "fig1") }
func BenchmarkFig2(b *testing.B)     { benchExperiment(b, "fig2") }
func BenchmarkFig3(b *testing.B)     { benchExperiment(b, "fig3") }
func BenchmarkFig4a(b *testing.B)    { benchExperiment(b, "fig4a") }
func BenchmarkFig4b(b *testing.B)    { benchExperiment(b, "fig4b") }
func BenchmarkFig4c(b *testing.B)    { benchExperiment(b, "fig4c") }
func BenchmarkFig5(b *testing.B)     { benchExperiment(b, "fig5") }
func BenchmarkFig6(b *testing.B)     { benchExperiment(b, "fig6") }
func BenchmarkFig7(b *testing.B)     { benchExperiment(b, "fig7") }
func BenchmarkFig8a(b *testing.B)    { benchExperiment(b, "fig8a") }
func BenchmarkFig8b(b *testing.B)    { benchExperiment(b, "fig8b") }
func BenchmarkFig9(b *testing.B)     { benchExperiment(b, "fig9") }
func BenchmarkFig10a(b *testing.B)   { benchExperiment(b, "fig10a") }
func BenchmarkFig10b(b *testing.B)   { benchExperiment(b, "fig10b") }
func BenchmarkFig10c(b *testing.B)   { benchExperiment(b, "fig10c") }
func BenchmarkExposure(b *testing.B) { benchExperiment(b, "exposure") }

func BenchmarkAblationOptimizer(b *testing.B) { benchExperiment(b, "ablation-optim") }
func BenchmarkAblationSample(b *testing.B)    { benchExperiment(b, "ablation-sample") }
func BenchmarkAblationStability(b *testing.B) { benchExperiment(b, "ablation-stability") }
func BenchmarkAblationEstimator(b *testing.B) { benchExperiment(b, "ablation-estimator") }
func BenchmarkAblationDrift(b *testing.B)     { benchExperiment(b, "ablation-drift") }
func BenchmarkAblationReferee(b *testing.B)   { benchExperiment(b, "ablation-referee") }
func BenchmarkAblationMatching(b *testing.B)  { benchExperiment(b, "ablation-matching") }

func BenchmarkAblationConvergence(b *testing.B) { benchExperiment(b, "ablation-convergence") }

// DCA training cost (the paper's efficiency claim: sub-linear in the
// dataset because only samples are ranked).

func benchTrain(b *testing.B, n int) {
	cfg := fairrank.DefaultSchoolConfig()
	cfg.N = n
	d, err := fairrank.GenerateSchool(cfg)
	if err != nil {
		b.Fatal(err)
	}
	scorer := fairrank.WeightedSum{Weights: fairrank.SchoolScoreWeights()}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		opts := fairrank.DefaultOptions()
		opts.Seed = int64(i + 1)
		if _, err := fairrank.Train(d, scorer, fairrank.DisparityObjective(0.05), opts); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDCATrain20k(b *testing.B) { benchTrain(b, 20_000) }
func BenchmarkDCATrain80k(b *testing.B) { benchTrain(b, 80_000) }

// Ensemble training cost (the engine's concurrent evaluation layer: one
// workspace per worker goroutine, shared base scores).

func benchTrainEnsemble(b *testing.B, n, runs int) {
	cfg := fairrank.DefaultSchoolConfig()
	cfg.N = n
	d, err := fairrank.GenerateSchool(cfg)
	if err != nil {
		b.Fatal(err)
	}
	scorer := fairrank.WeightedSum{Weights: fairrank.SchoolScoreWeights()}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		opts := fairrank.DefaultOptions()
		opts.Seed = int64(i + 1)
		if _, err := fairrank.TrainEnsemble(d, scorer, fairrank.DisparityObjective(0.05), opts, runs); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTrainSchoolEnsemble8(b *testing.B)  { benchTrainEnsemble(b, 20_000, 8) }
func BenchmarkTrainSchoolEnsemble32(b *testing.B) { benchTrainEnsemble(b, 20_000, 32) }

// Selection-strategy ablation: full sort vs quickselect vs bounded heap
// for the top-5% selection (DESIGN.md `ablation-select`).

func benchSelect(b *testing.B, n int, pick func(scores []float64, k int) []int) {
	rng := rand.New(rand.NewSource(7))
	scores := make([]float64, n)
	for i := range scores {
		scores[i] = rng.NormFloat64()
	}
	k := n / 20
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if got := pick(scores, k); len(got) != k {
			b.Fatalf("selected %d, want %d", len(got), k)
		}
	}
}

func BenchmarkSelectSort10k(b *testing.B)         { benchSelect(b, 10_000, rank.TopK) }
func BenchmarkSelectQuickselect10k(b *testing.B)  { benchSelect(b, 10_000, rank.TopKQuickselect) }
func BenchmarkSelectHeap10k(b *testing.B)         { benchSelect(b, 10_000, rank.TopKHeap) }
func BenchmarkSelectSort100k(b *testing.B)        { benchSelect(b, 100_000, rank.TopK) }
func BenchmarkSelectQuickselect100k(b *testing.B) { benchSelect(b, 100_000, rank.TopKQuickselect) }
func BenchmarkSelectHeap100k(b *testing.B)        { benchSelect(b, 100_000, rank.TopKHeap) }

// Objective evaluation cost per DCA step (sample of 500, k=5%).

func BenchmarkObjectiveDisparity(b *testing.B) {
	d, err := benchEnv.Train()
	if err != nil {
		b.Fatal(err)
	}
	scorer := benchEnv.SchoolScorer()
	base := scorer.BaseScores(d)
	rng := rand.New(rand.NewSource(3))
	idx := rng.Perm(d.N())[:500]
	bonus := []float64{1, 11.5, 12, 12}
	eff := rank.EffectiveScores(d, base, idx, bonus, rank.Beneficial, nil)
	obj := core.DisparityObjective(0.05)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := obj.Eval(d, idx, eff); err != nil {
			b.Fatal(err)
		}
	}
}

// The same evaluation through the engine's bound, in-place objective API —
// the per-step hot path of the descent loop. Expect 0 allocs/op.

func BenchmarkObjectiveDisparityBound(b *testing.B) {
	d, err := benchEnv.Train()
	if err != nil {
		b.Fatal(err)
	}
	scorer := benchEnv.SchoolScorer()
	base := scorer.BaseScores(d)
	rng := rand.New(rand.NewSource(3))
	idx := rng.Perm(d.N())[:500]
	bonus := []float64{1, 11.5, 12, 12}
	eff := rank.EffectiveScores(d, base, idx, bonus, rank.Beneficial, nil)
	bound, err := core.BindObjective(core.DisparityObjective(0.05), d)
	if err != nil {
		b.Fatal(err)
	}
	ws := engine.NewWorkspace(d.NumFair())
	dst := make([]float64, d.NumFair())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := bound.EvalInto(ws, idx, eff, dst); err != nil {
			b.Fatal(err)
		}
	}
}

// Multinomial CDF cost (the FA*IR bottleneck the paper contrasts with
// DCA's sampling).

func BenchmarkMultinomialCDF(b *testing.B) {
	m := stats.Multinomial{N: 125, P: []float64{0.55, 0.25, 0.15, 0.05}}
	bounds := []int{125, 28, 16, 4}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := m.CDF(bounds); err != nil {
			b.Fatal(err)
		}
	}
}
