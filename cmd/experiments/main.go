// Command experiments regenerates every table and figure of the paper's
// evaluation. With no arguments it runs the full suite; -run selects a
// single experiment by id (see -list).
//
// Usage:
//
//	experiments [-quick] [-run id] [-list] [-school-n n] [-seed s]
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"fairrank/internal/experiments"
	"fairrank/internal/report"
)

func main() {
	var (
		quick   = flag.Bool("quick", false, "smaller cohorts and sweeps (smoke-test mode)")
		run     = flag.String("run", "", "run a single experiment by id")
		list    = flag.Bool("list", false, "list experiment ids and exit")
		schoolN = flag.Int("school-n", 0, "override the school cohort size")
		seed    = flag.Int64("seed", 0, "override the DCA sampling seed")
		tsv     = flag.Bool("tsv", false, "emit machine-readable tab-separated output")
	)
	flag.Parse()

	if *list {
		for _, e := range experiments.All() {
			fmt.Printf("%-16s %s\n", e.ID, e.Title)
		}
		return
	}

	cfg := experiments.DefaultConfig()
	if *quick {
		cfg = experiments.QuickConfig()
	}
	if *schoolN > 0 {
		cfg.SchoolN = *schoolN
	}
	if *seed != 0 {
		cfg.Seed = *seed
	}
	env := experiments.NewEnv(cfg)

	entries := experiments.All()
	if *run != "" {
		e, err := experiments.Lookup(*run)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		entries = []experiments.Entry{e}
	}

	for i, e := range entries {
		if i > 0 {
			fmt.Println()
		}
		start := time.Now()
		r, err := e.Run(env)
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiment %s: %v\n", e.ID, err)
			os.Exit(1)
		}
		fmt.Printf("== %s — %s (%.2fs)\n\n", e.ID, e.Title, time.Since(start).Seconds())
		render := r.Render
		if *tsv {
			if tr, ok := r.(report.TSVRenderer); ok {
				render = tr.RenderTSV
			}
		}
		if err := render(os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "rendering %s: %v\n", e.ID, err)
			os.Exit(1)
		}
	}
}
