// Command fairrankd serves what-if DCA training, evaluation sweeps, and
// transparency reports over HTTP — the interactive deployment surface of
// the paper's "fast enough for what-if iteration" claim.
//
// Datasets are loaded once at startup, either synthesized (-synth) or read
// from CSV in the csvio convention (-csv, repeatable). Each dataset gets a
// shared concurrent evaluator and a pool of trainers; train results are
// cached, so repeating a what-if query is a map lookup.
//
// Usage:
//
//	fairrankd -synth school,compas -addr :8080
//	fairrankd -csv nyc=students.csv -weights nyc=0.55,0.45 -adverse risk -csv risk=risk.csv
//	fairrankd -synth school -pprof 127.0.0.1:6060   # profiling in anger
//
// Endpoints:
//
//	POST /v1/train     {"dataset":"school","k":0.05,"objective":"disparity",...}
//	POST /v1/evaluate  {"dataset":"school","metric":"ndcg","points":[{"bonus":[...],"k":0.05}]}
//	GET  /v1/explain   ?dataset=school&k=0.05&bonus=1,11.5,12,12[&object=17]
//	GET  /v1/datasets
//	GET  /healthz      liveness + gauges (goroutines, in-flight, shed)
//	GET  /readyz       readiness: registration done and not draining
//
// Every /v1 endpoint runs behind the service's resilience chain: a
// per-endpoint deadline (-timeout and overrides), admission control
// (-max-inflight, -admit-wait; excess load answers 429 with Retry-After),
// and drain-aware rejection during shutdown. SIGTERM/SIGINT triggers a
// graceful drain: /readyz flips to 503, in-flight requests finish (up to
// -drain-timeout), new ones get 503, and the pprof listener shuts down
// with the main one.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"fairrank"
)

func main() {
	var (
		addr      = flag.String("addr", ":8080", "listen address")
		synthList = flag.String("synth", "", "synthetic datasets to load: comma-separated subset of school,compas")
		synthN    = flag.Int("synth-n", 0, "synthetic population size (0 = paper default)")
		synthSeed = flag.Int64("synth-seed", 0, "synthetic generator seed (0 = paper default)")
		cacheSize = flag.Int("cache", 0, "train-result cache entries (0 = default, negative disables)")
		pprofAddr = flag.String("pprof", "", "serve net/http/pprof on this address (e.g. 127.0.0.1:6060; empty disables)")

		timeout   = flag.Duration("timeout", 60*time.Second, "default per-request deadline for /v1 endpoints (0 disables)")
		trainTO   = flag.Duration("train-timeout", 0, "deadline for POST /v1/train (0 = -timeout)")
		evalTO    = flag.Duration("evaluate-timeout", 0, "deadline for POST /v1/evaluate (0 = -timeout)")
		cfTO      = flag.Duration("counterfactual-timeout", 0, "deadline for POST /v1/counterfactual (0 = -timeout)")
		reportTO  = flag.Duration("report-timeout", 0, "deadline for GET /v1/report (0 = -timeout)")
		explainTO = flag.Duration("explain-timeout", 0, "deadline for GET /v1/explain (0 = -timeout)")
		maxInFl   = flag.Int("max-inflight", 0, "max concurrently admitted /v1 requests (0 = default, negative disables admission control)")
		admitWait = flag.Duration("admit-wait", 0, "how long an over-limit request queues before a 429 (0 = default, negative sheds immediately)")
		batchSize = flag.Int("batch-size", 0, "micro-batch size threshold for concurrent same-bonus requests (0 = disabled unless -batch-wait is set)")
		batchWait = flag.Duration("batch-wait", 0, "micro-batch window: how long a request waits for same-bonus companions (0 = disabled unless -batch-size is set)")
		drainTO   = flag.Duration("drain-timeout", 15*time.Second, "graceful-shutdown budget for in-flight requests")
		csvs      = make(map[string]string)
		csvOrder  []string // flag order, so registration and listings are stable
		weights   = make(map[string]string)
		adverse   = flag.String("adverse", "", "comma-separated CSV dataset names with adverse polarity (bonus subtracted)")
	)
	flag.Func("csv", "load a CSV dataset as name=path (repeatable)", func(v string) error {
		name, path, ok := strings.Cut(v, "=")
		if !ok || name == "" || path == "" {
			return fmt.Errorf("want name=path, got %q", v)
		}
		if _, dup := csvs[name]; dup {
			return fmt.Errorf("dataset %q given twice", name)
		}
		csvs[name] = path
		csvOrder = append(csvOrder, name)
		return nil
	})
	flag.Func("weights", "score weights for a CSV dataset as name=w1,w2,... (repeatable; default equal)", func(v string) error {
		name, spec, ok := strings.Cut(v, "=")
		if !ok || name == "" || spec == "" {
			return fmt.Errorf("want name=w1,w2,..., got %q", v)
		}
		weights[name] = spec
		return nil
	})
	flag.Parse()

	if *synthList == "" && len(csvs) == 0 {
		fmt.Fprintln(os.Stderr, "fairrankd: no datasets: pass -synth and/or -csv")
		flag.Usage()
		os.Exit(2)
	}

	adverseSet := make(map[string]bool)
	if *adverse != "" {
		for _, n := range strings.Split(*adverse, ",") {
			adverseSet[strings.TrimSpace(n)] = true
		}
	}

	// Per-endpoint deadlines: -timeout is the default, the endpoint flags
	// override it. An explicit negative override disables the deadline for
	// that endpoint only.
	endpointTO := func(override time.Duration) time.Duration {
		if override != 0 {
			if override < 0 {
				return 0
			}
			return override
		}
		return *timeout
	}
	s := fairrank.NewService(fairrank.ServiceConfig{
		CacheSize:    *cacheSize,
		MaxInFlight:  *maxInFl,
		AdmitWait:    *admitWait,
		BatchSize:    *batchSize,
		BatchMaxWait: *batchWait,
		Timeouts: fairrank.ServiceTimeouts{
			Train:          endpointTO(*trainTO),
			Evaluate:       endpointTO(*evalTO),
			Counterfactual: endpointTO(*cfTO),
			Report:         endpointTO(*reportTO),
			Explain:        endpointTO(*explainTO),
		},
	})

	if *synthList != "" {
		for _, name := range strings.Split(*synthList, ",") {
			switch strings.TrimSpace(name) {
			case "school":
				cfg := fairrank.DefaultSchoolConfig()
				if *synthN > 0 {
					cfg.N = *synthN
				}
				if *synthSeed != 0 {
					cfg.Seed = *synthSeed
				}
				d, err := fairrank.GenerateSchool(cfg)
				if err != nil {
					fatal(err)
				}
				scorer := fairrank.WeightedSum{Weights: fairrank.SchoolScoreWeights()}
				if err := s.Register("school", d, scorer, fairrank.Beneficial); err != nil {
					fatal(err)
				}
				log.Printf("registered synth dataset school (%d objects, beneficial)", d.N())
				logRankStats(s, "school")
			case "compas":
				cfg := fairrank.DefaultCompasConfig()
				if *synthN > 0 {
					cfg.N = *synthN
				}
				if *synthSeed != 0 {
					cfg.Seed = *synthSeed
				}
				d, err := fairrank.GenerateCompas(cfg)
				if err != nil {
					fatal(err)
				}
				scorer := fairrank.WeightedSum{Weights: fairrank.CompasScoreWeights()}
				if err := s.Register("compas", d, scorer, fairrank.Adverse); err != nil {
					fatal(err)
				}
				log.Printf("registered synth dataset compas (%d objects, adverse)", d.N())
				logRankStats(s, "compas")
			default:
				fmt.Fprintf(os.Stderr, "fairrankd: unknown synth dataset %q (want school or compas)\n", name)
				os.Exit(2)
			}
		}
	}

	for _, name := range csvOrder {
		path := csvs[name]
		d, err := fairrank.ReadCSVFile(path)
		if err != nil {
			fatal(fmt.Errorf("dataset %q: %w", name, err))
		}
		w, err := fairrank.ParseWeights(weights[name])
		if err != nil {
			fatal(fmt.Errorf("dataset %q: %w", name, err))
		}
		if w == nil {
			w = fairrank.EqualWeights(d.NumScore())
		} else if len(w) != d.NumScore() {
			fatal(fmt.Errorf("dataset %q: %d weights for %d score columns", name, len(w), d.NumScore()))
		}
		pol := fairrank.Beneficial
		if adverseSet[name] {
			pol = fairrank.Adverse
		}
		if err := s.Register(name, d, fairrank.WeightedSum{Weights: w}, pol); err != nil {
			fatal(err)
		}
		log.Printf("registered CSV dataset %s (%d objects, %d score + %d fairness attributes)",
			name, d.N(), d.NumScore(), d.NumFair())
		logRankStats(s, name)
	}
	for name := range weights {
		if _, ok := csvs[name]; !ok {
			fatal(fmt.Errorf("-weights for unknown dataset %q", name))
		}
	}
	for name := range adverseSet {
		if _, ok := csvs[name]; !ok {
			fatal(fmt.Errorf("-adverse for unknown dataset %q", name))
		}
	}

	// Registration is complete: let /readyz start answering 200 before the
	// listener opens, so the first probe a load balancer sends is honest.
	s.MarkReady()

	// Profiling in anger: pprof stays off the service handler and listens
	// on its own (ideally loopback-only) address, so profiles are never
	// one misconfigured reverse proxy away from the public surface. The
	// server handle outlives the goroutine so shutdown can close it.
	var psrv *http.Server
	if *pprofAddr != "" {
		pm := http.NewServeMux()
		pm.HandleFunc("/debug/pprof/", pprof.Index)
		pm.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		pm.HandleFunc("/debug/pprof/profile", pprof.Profile)
		pm.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		pm.HandleFunc("/debug/pprof/trace", pprof.Trace)
		psrv = &http.Server{Addr: *pprofAddr, Handler: pm, ReadHeaderTimeout: 10 * time.Second}
		go func() {
			log.Printf("pprof listening on %s", *pprofAddr)
			if err := psrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
				log.Printf("pprof server: %v", err)
			}
		}()
	}

	srv := &http.Server{
		Addr:              *addr,
		Handler:           s.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	done := make(chan error, 1)
	go func() {
		log.Printf("fairrankd listening on %s", *addr)
		done <- srv.ListenAndServe()
	}()
	select {
	case err := <-done:
		fatal(err)
	case <-ctx.Done():
		// Graceful drain: flip /readyz to 503 and shed new /v1 work first,
		// then let Shutdown wait for requests already admitted. The pprof
		// listener goes down in the same budget — a forgotten debug port
		// must not outlive the service.
		log.Print("draining: readyz now 503, waiting for in-flight requests")
		s.StartDrain()
		shutdownCtx, cancel := context.WithTimeout(context.Background(), *drainTO)
		defer cancel()
		if psrv != nil {
			if err := psrv.Shutdown(shutdownCtx); err != nil {
				log.Printf("pprof shutdown: %v", err)
			}
		}
		if err := srv.Shutdown(shutdownCtx); err != nil {
			fatal(err)
		}
		log.Print("drained cleanly")
	}
}

// logRankStats appends the ranking posture to the registration log: with
// combo runs, every cold top-k request is a g-way merge off the
// registration-time pre-sort; without them the dataset rides the
// full-scan path. The same numbers are served per dataset by
// GET /v1/datasets (rank_stats).
func logRankStats(s *fairrank.Service, name string) {
	st, ok := s.RankStats(name)
	if !ok {
		log.Printf("dataset %s: full-sort ranking path (no combo runs)", name)
		return
	}
	log.Printf("dataset %s: combo runs g=%d, run len min/med/max=%d/%d/%d, pre-sorted in %s",
		name, st.Runs, st.MinLen, st.MedianLen, st.MaxLen, st.BuildCost)
}

func fatal(err error) {
	if errors.Is(err, http.ErrServerClosed) {
		return
	}
	fmt.Fprintln(os.Stderr, "fairrankd:", err)
	os.Exit(1)
}
