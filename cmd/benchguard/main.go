// Command benchguard fails CI when a guarded benchmark regresses beyond a
// tolerance against a checked-in reference.
//
// It reads `go test -bench` output on stdin (or -in), takes the best
// (minimum) ns/op per benchmark across repeated runs — pass -count to the
// benchmark invocation for noise resistance — and compares each benchmark
// named in the reference file's "guard" section against its recorded
// ns/op. A benchmark slower than max-ratio × reference, or missing from
// the input entirely, fails the run; unlisted benchmarks are ignored.
//
// Usage:
//
//	go test -run '^$' -bench 'Sweep16' -benchtime=5x -count=3 ./internal/core/ |
//	    go run ./cmd/benchguard -ref BENCH_sweep.json -max-ratio 2
//
// The tolerance is deliberately loose (default 2x): the guard exists to
// catch "the sweep went quadratic again", not machine-to-machine drift.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
)

// reference is the slice of the reference JSON benchguard reads: only the
// guard section matters here; the rest of the file documents the
// trajectory for humans.
type reference struct {
	Guard map[string]struct {
		NsOp float64 `json:"ns_op"`
	} `json:"guard"`
}

func main() {
	var (
		refPath  = flag.String("ref", "BENCH_sweep.json", "reference JSON with a guard section")
		in       = flag.String("in", "", "benchmark output file (default: stdin)")
		maxRatio = flag.Float64("max-ratio", 2, "fail when ns/op exceeds this multiple of the reference")
	)
	flag.Parse()
	if *maxRatio <= 0 {
		fatal(fmt.Errorf("-max-ratio must be positive, got %v", *maxRatio))
	}

	raw, err := os.ReadFile(*refPath)
	if err != nil {
		fatal(err)
	}
	var ref reference
	if err := json.Unmarshal(raw, &ref); err != nil {
		fatal(fmt.Errorf("parsing %s: %w", *refPath, err))
	}
	if len(ref.Guard) == 0 {
		fatal(fmt.Errorf("%s has no guard section — nothing to check", *refPath))
	}

	var r io.Reader = os.Stdin
	if *in != "" {
		f, err := os.Open(*in)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		r = f
	}
	best, err := parseBench(r)
	if err != nil {
		fatal(err)
	}

	names := make([]string, 0, len(ref.Guard))
	for name := range ref.Guard {
		names = append(names, name)
	}
	sort.Strings(names)
	failed := false
	for _, name := range names {
		got, ok := best[name]
		if !ok {
			fmt.Printf("FAIL %s: not found in benchmark output (was it run?)\n", name)
			failed = true
			continue
		}
		ratio := got / ref.Guard[name].NsOp
		status := "ok  "
		if ratio > *maxRatio {
			status = "FAIL"
			failed = true
		}
		fmt.Printf("%s %s: %.0f ns/op vs reference %.0f (%.2fx, limit %gx)\n",
			status, name, got, ref.Guard[name].NsOp, ratio, *maxRatio)
	}
	if failed {
		os.Exit(1)
	}
}

// parseBench extracts the minimum ns/op per benchmark name from `go test
// -bench` output. The -N GOMAXPROCS suffix is stripped so names match the
// reference regardless of core count.
func parseBench(r io.Reader) (map[string]float64, error) {
	best := make(map[string]float64)
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		// Benchmark lines look like: Name-8  10  12345 ns/op [...]
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		nsIdx := -1
		for i, f := range fields {
			if f == "ns/op" {
				nsIdx = i - 1
				break
			}
		}
		if nsIdx < 1 {
			continue
		}
		ns, err := strconv.ParseFloat(fields[nsIdx], 64)
		if err != nil {
			continue
		}
		name := fields[0]
		if i := strings.LastIndex(name, "-"); i > 0 {
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				name = name[:i]
			}
		}
		if prev, ok := best[name]; !ok || ns < prev {
			best[name] = ns
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(best) == 0 {
		return nil, fmt.Errorf("no benchmark lines found in input")
	}
	return best, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchguard:", err)
	os.Exit(1)
}
