// Command datagen emits the synthetic evaluation datasets as CSV, for use
// with cmd/dca or external tooling.
//
// Usage:
//
//	datagen -dataset school [-n 80000] [-seed 2017] > school.csv
//	datagen -dataset compas [-n 7214] [-seed 2016] > compas.csv
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"

	"fairrank"
)

func main() {
	var (
		which = flag.String("dataset", "school", "dataset to generate: school or compas")
		n     = flag.Int("n", 0, "population size (0 = paper default)")
		seed  = flag.Int64("seed", 0, "generator seed (0 = paper default)")
	)
	flag.Parse()

	var (
		d   *fairrank.Dataset
		err error
	)
	switch *which {
	case "school":
		cfg := fairrank.DefaultSchoolConfig()
		if *n > 0 {
			cfg.N = *n
		}
		if *seed != 0 {
			cfg.Seed = *seed
		}
		d, err = fairrank.GenerateSchool(cfg)
	case "compas":
		cfg := fairrank.DefaultCompasConfig()
		if *n > 0 {
			cfg.N = *n
		}
		if *seed != 0 {
			cfg.Seed = *seed
		}
		d, err = fairrank.GenerateCompas(cfg)
	default:
		fmt.Fprintf(os.Stderr, "unknown dataset %q (want school or compas)\n", *which)
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	w := bufio.NewWriter(os.Stdout)
	if err := fairrank.WriteCSV(w, d); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if err := w.Flush(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
