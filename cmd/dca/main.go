// Command dca trains a compensatory bonus-point vector on a CSV dataset
// and reports the disparity before and after.
//
// The input follows the csvio convention: score attributes prefixed
// "score:", fairness attributes "fair:", optional "outcome" column. The
// ranking function is a weighted sum over the score columns (-weights,
// comma separated, default: equal weights).
//
// Usage:
//
//	dca -in school.csv -k 0.05 [-weights 0.55,0.45] [-objective disparity]
//	    [-adverse] [-granularity 0.5] [-max-bonus 0] [-sample 500] [-seed 1]
//	dca -in compas.csv -k 0.2 -adverse -objective fpr
package main

import (
	"flag"
	"fmt"
	"math"
	"os"

	"fairrank"
	"fairrank/internal/metrics"
	"fairrank/internal/report"
)

func main() {
	var (
		in          = flag.String("in", "", "training CSV (required)")
		testIn      = flag.String("test", "", "optional held-out CSV evaluated with the trained vector")
		k           = flag.Float64("k", 0.05, "selection fraction in (0,1]")
		weightsFlag = flag.String("weights", "", "comma-separated score weights (default: equal)")
		objective   = flag.String("objective", "disparity", "objective: disparity, logdisc, di, fpr")
		adverse     = flag.Bool("adverse", false, "adverse selection (bonus lowers the score, e.g. risk flagging)")
		granularity = flag.Float64("granularity", 0.5, "bonus point granularity (0 disables rounding)")
		maxBonus    = flag.Float64("max-bonus", 0, "maximum bonus per dimension (0 = unlimited)")
		sampleSize  = flag.Int("sample", 500, "DCA sample size")
		seed        = flag.Int64("seed", 1, "sampling seed")
		explain     = flag.Bool("explain", false, "print the transparency report (cutoff, per-group counts, beneficiaries)")
	)
	flag.Parse()

	// Validate every flag before any file is opened or parsed: a typo'd
	// objective or an out-of-range fraction should fail as a usage error,
	// not after seconds of CSV ingestion.
	if *in == "" {
		usage("missing required -in")
	}
	obj, err := fairrank.ObjectiveByName(*objective, *k)
	if err != nil {
		usage(err.Error())
	}
	if *sampleSize <= 0 {
		usage(fmt.Sprintf("-sample must be positive, got %d", *sampleSize))
	}
	if *granularity < 0 || math.IsNaN(*granularity) || math.IsInf(*granularity, 0) {
		usage(fmt.Sprintf("-granularity must be finite and non-negative, got %v", *granularity))
	}
	if *maxBonus < 0 || math.IsNaN(*maxBonus) || math.IsInf(*maxBonus, 0) {
		usage(fmt.Sprintf("-max-bonus must be finite and non-negative, got %v", *maxBonus))
	}
	weights, err := fairrank.ParseWeights(*weightsFlag)
	if err != nil {
		usage(err.Error())
	}

	d, err := fairrank.ReadCSVFile(*in)
	if err != nil {
		fatal(err)
	}

	if weights == nil {
		weights = fairrank.EqualWeights(d.NumScore())
	} else if len(weights) != d.NumScore() {
		fatal(fmt.Errorf("%d weights for %d score columns", len(weights), d.NumScore()))
	}
	scorer := fairrank.WeightedSum{Weights: weights}

	opts := fairrank.DefaultOptions()
	opts.SampleSize = *sampleSize
	opts.Seed = *seed
	opts.Granularity = *granularity
	opts.MaxBonus = *maxBonus
	if *adverse {
		opts.Polarity = fairrank.Adverse
	}

	res, err := fairrank.Train(d, scorer, obj, opts)
	if err != nil {
		fatal(err)
	}

	pol := fairrank.Beneficial
	if *adverse {
		pol = fairrank.Adverse
	}
	ev := fairrank.NewEvaluator(d, scorer, pol)
	before, err := ev.Disparity(nil, *k)
	if err != nil {
		fatal(err)
	}
	after, err := ev.Disparity(res.Bonus, *k)
	if err != nil {
		fatal(err)
	}
	ndcg, err := ev.NDCG(res.Bonus, *k)
	if err != nil {
		fatal(err)
	}

	headers := append([]string{""}, d.FairNames()...)
	headers = append(headers, "Norm")
	t := &report.Table{Title: fmt.Sprintf("DCA on %s (k=%g, objective=%s, %d objects, %s)", *in, *k, *objective, d.N(), res.Elapsed), Headers: headers}
	cells := []string{"Bonus Points"}
	for _, b := range res.Bonus {
		cells = append(cells, report.Float(b))
	}
	cells = append(cells, "-")
	t.Rows = append(t.Rows, cells)
	t.AddFloatRow("Disparity before", append(append([]float64(nil), before...), metrics.Norm(before))...)
	t.AddFloatRow("Disparity after", append(append([]float64(nil), after...), metrics.Norm(after))...)
	if err := t.Render(os.Stdout); err != nil {
		fatal(err)
	}
	fmt.Printf("\nnDCG@%g = %s (1 = ranking unchanged)\n", *k, report.Float(ndcg))

	if *explain {
		exp, err := ev.Explain(res.Bonus, *k)
		if err != nil {
			fatal(err)
		}
		fmt.Println("\nTransparency report")
		fmt.Println("-------------------")
		for _, line := range exp.Summary() {
			fmt.Println(line)
		}
	}

	if *testIn != "" {
		testD, err := fairrank.ReadCSVFile(*testIn)
		if err != nil {
			fatal(err)
		}
		testEv := fairrank.NewEvaluator(testD, scorer, pol)
		tb, err := testEv.Disparity(nil, *k)
		if err != nil {
			fatal(err)
		}
		ta, err := testEv.Disparity(res.Bonus, *k)
		if err != nil {
			fatal(err)
		}
		tt := &report.Table{Title: fmt.Sprintf("\nHeld-out evaluation on %s (%d objects)", *testIn, testD.N()), Headers: headers}
		tt.AddFloatRow("Disparity before", append(append([]float64(nil), tb...), metrics.Norm(tb))...)
		tt.AddFloatRow("Disparity after", append(append([]float64(nil), ta...), metrics.Norm(ta))...)
		if err := tt.Render(os.Stdout); err != nil {
			fatal(err)
		}
	}
}

func usage(msg string) {
	fmt.Fprintln(os.Stderr, "dca:", msg)
	flag.Usage()
	os.Exit(2)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "dca:", err)
	os.Exit(1)
}
