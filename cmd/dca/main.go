// Command dca trains a compensatory bonus-point vector on a CSV dataset
// and reports the disparity before and after.
//
// The input follows the csvio convention: score attributes prefixed
// "score:", fairness attributes "fair:", optional "outcome" column. The
// ranking function is a weighted sum over the score columns (-weights,
// comma separated, default: equal weights).
//
// Usage:
//
//	dca -in school.csv -k 0.05 [-weights 0.55,0.45] [-objective disparity]
//	    [-adverse] [-granularity 0.5] [-max-bonus 0] [-sample 500] [-seed 1]
//	dca -in compas.csv -k 0.2 -adverse -objective fpr
//
// With -sweep the trained vector is evaluated over a k-grid through the
// same prefix-sweep engine the fairrankd service uses (rank once, answer
// every k from prefix aggregates), and the trade-off curve is printed as
// CSV instead of the table: one row per k with nDCG, the disparity vector
// and its norm, the disparate-impact vector, when the dataset carries
// outcomes the FPR-difference vector, and when every fairness attribute
// is binary the per-capita exposure vector (groups plus "rest") with its
// demographic disparity, the top-k share deltas, and — with outcomes
// too — the exposure/merit ratios. The grid is either a comma-separated
// list of fractions or lo:hi:step:
//
//	dca -in school.csv -k 0.05 -sweep 0.01:0.30:0.01 > curve.csv
//	dca -in school.csv -k 0.05 -sweep 0.05,0.1,0.25
//
// With -counterfactual the trained vector is audited for the listed
// objects: each gets its minimal score and bonus-point change that flips
// its selection (exact at float64 resolution, computed from one ranking).
// With -report the complete versioned audit bundle — published cutoff,
// policy with leave-one-out attribution, beneficiary lists, counterfactual
// margins at the cutoff — is written to stdout as json, csv, or markdown.
// The bundle is computed by the rank-once BundleData pass (one ranking
// plus one per compensated attribute); -margins widens the counterfactual
// window on each side of the cutoff:
//
//	dca -in school.csv -k 0.05 -counterfactual 12,99,1044
//	dca -in school.csv -k 0.05 -report md -margins 10 > audit.md
//
// -rankstats prints the evaluator's combo-run merge statistics (run count
// g, run-length spread, registration pre-sort cost) to stderr, composable
// with every output mode.
package main

import (
	"flag"
	"fmt"
	"math"
	"os"
	"strconv"
	"strings"

	"fairrank"
	"fairrank/internal/metrics"
	"fairrank/internal/report"
)

func main() {
	var (
		in          = flag.String("in", "", "training CSV (required)")
		testIn      = flag.String("test", "", "optional held-out CSV evaluated with the trained vector")
		k           = flag.Float64("k", 0.05, "selection fraction in (0,1]")
		weightsFlag = flag.String("weights", "", "comma-separated score weights (default: equal)")
		objective   = flag.String("objective", "disparity", "objective: disparity, logdisc, di, fpr")
		adverse     = flag.Bool("adverse", false, "adverse selection (bonus lowers the score, e.g. risk flagging)")
		granularity = flag.Float64("granularity", 0.5, "bonus point granularity (0 disables rounding)")
		maxBonus    = flag.Float64("max-bonus", 0, "maximum bonus per dimension (0 = unlimited)")
		sampleSize  = flag.Int("sample", 500, "DCA sample size")
		seed        = flag.Int64("seed", 1, "sampling seed")
		explain     = flag.Bool("explain", false, "print the transparency report (cutoff, per-group counts, beneficiaries)")
		sweepSpec   = flag.String("sweep", "", "evaluate the trained vector over a k-grid and print CSV: comma-separated fractions or lo:hi:step")
		cfSpec      = flag.String("counterfactual", "", "comma-separated object ids: print each object's minimal selection-flipping delta")
		reportFmt   = flag.String("report", "", "write the full audit bundle to stdout: json, csv or md")
		margins     = flag.Int("margins", 0, "counterfactual margin window on each side of the -report cutoff (0 = default)")
		rankStats   = flag.Bool("rankstats", false, "print the evaluator's combo-run merge statistics to stderr")
	)
	flag.Parse()

	// Validate every flag before any file is opened or parsed: a typo'd
	// objective or an out-of-range fraction should fail as a usage error,
	// not after seconds of CSV ingestion.
	if *in == "" {
		usage("missing required -in")
	}
	obj, err := fairrank.ObjectiveByName(*objective, *k)
	if err != nil {
		usage(err.Error())
	}
	if *sampleSize <= 0 {
		usage(fmt.Sprintf("-sample must be positive, got %d", *sampleSize))
	}
	if *granularity < 0 || math.IsNaN(*granularity) || math.IsInf(*granularity, 0) {
		usage(fmt.Sprintf("-granularity must be finite and non-negative, got %v", *granularity))
	}
	if *maxBonus < 0 || math.IsNaN(*maxBonus) || math.IsInf(*maxBonus, 0) {
		usage(fmt.Sprintf("-max-bonus must be finite and non-negative, got %v", *maxBonus))
	}
	weights, err := fairrank.ParseWeights(*weightsFlag)
	if err != nil {
		usage(err.Error())
	}
	sweepKs, err := parseSweepSpec(*sweepSpec)
	if err != nil {
		usage(err.Error())
	}
	cfObjs, err := parseObjectSpec(*cfSpec)
	if err != nil {
		usage(err.Error())
	}
	switch *reportFmt {
	case "", "json", "csv", "md", "markdown":
	default:
		usage(fmt.Sprintf("-report must be json, csv or md, got %q", *reportFmt))
	}
	if *margins < 0 {
		usage(fmt.Sprintf("-margins must be non-negative, got %d", *margins))
	}
	if *margins != 0 && *reportFmt == "" {
		usage("-margins only applies to the -report audit bundle")
	}
	// -report replaces stdout with the bundle; combining it with the other
	// output modes would silently drop them, so reject the combination.
	if *reportFmt != "" && (*sweepSpec != "" || *cfSpec != "" || *explain || *testIn != "") {
		usage("-report writes the audit bundle alone; drop -sweep/-counterfactual/-explain/-test")
	}
	if *sweepSpec != "" && (*cfSpec != "" || *explain || *testIn != "") {
		usage("-sweep prints the trade-off CSV alone; drop -counterfactual/-explain/-test")
	}

	d, err := fairrank.ReadCSVFile(*in)
	if err != nil {
		fatal(err)
	}

	if weights == nil {
		weights = fairrank.EqualWeights(d.NumScore())
	} else if len(weights) != d.NumScore() {
		fatal(fmt.Errorf("%d weights for %d score columns", len(weights), d.NumScore()))
	}
	scorer := fairrank.WeightedSum{Weights: weights}

	opts := fairrank.DefaultOptions()
	opts.SampleSize = *sampleSize
	opts.Seed = *seed
	opts.Granularity = *granularity
	opts.MaxBonus = *maxBonus
	if *adverse {
		opts.Polarity = fairrank.Adverse
	}

	res, err := fairrank.Train(d, scorer, obj, opts)
	if err != nil {
		fatal(err)
	}

	pol := fairrank.Beneficial
	if *adverse {
		pol = fairrank.Adverse
	}
	ev := fairrank.NewEvaluator(d, scorer, pol)

	// -rankstats goes to stderr so it composes with the -sweep and
	// -report modes, whose stdout is machine-readable.
	if *rankStats {
		if st, ok := ev.RunStats(); ok {
			fmt.Fprintf(os.Stderr, "rankstats: combo runs g=%d, run len min/med/max=%d/%d/%d, pre-sorted in %s\n",
				st.Runs, st.MinLen, st.MedianLen, st.MaxLen, st.BuildCost)
		} else {
			fmt.Fprintln(os.Stderr, "rankstats: full-sort ranking path (no combo runs)")
		}
	}

	if *reportFmt != "" {
		bundle, err := fairrank.BuildAuditBundle(ev, fairrank.AuditConfig{
			Dataset:    *in,
			Bonus:      res.Bonus,
			K:          *k,
			Margins:    *margins,
			IncludeFPR: d.HasOutcomes(),
		})
		if err != nil {
			fatal(err)
		}
		if err := bundle.Render(os.Stdout, *reportFmt); err != nil {
			fatal(err)
		}
		return
	}

	if sweepKs != nil {
		if err := writeSweepCSV(d, ev, res.Bonus, sweepKs); err != nil {
			fatal(err)
		}
		return
	}

	before, err := ev.Disparity(nil, *k)
	if err != nil {
		fatal(err)
	}
	after, err := ev.Disparity(res.Bonus, *k)
	if err != nil {
		fatal(err)
	}
	ndcg, err := ev.NDCG(res.Bonus, *k)
	if err != nil {
		fatal(err)
	}

	headers := append([]string{""}, d.FairNames()...)
	headers = append(headers, "Norm")
	t := &report.Table{Title: fmt.Sprintf("DCA on %s (k=%g, objective=%s, %d objects, %s)", *in, *k, *objective, d.N(), res.Elapsed), Headers: headers}
	cells := []string{"Bonus Points"}
	for _, b := range res.Bonus {
		cells = append(cells, report.Float(b))
	}
	cells = append(cells, "-")
	t.Rows = append(t.Rows, cells)
	t.AddFloatRow("Disparity before", append(append([]float64(nil), before...), metrics.Norm(before))...)
	t.AddFloatRow("Disparity after", append(append([]float64(nil), after...), metrics.Norm(after))...)
	if err := t.Render(os.Stdout); err != nil {
		fatal(err)
	}
	fmt.Printf("\nnDCG@%g = %s (1 = ranking unchanged)\n", *k, report.Float(ndcg))

	if *explain {
		exp, err := ev.Explain(res.Bonus, *k)
		if err != nil {
			fatal(err)
		}
		fmt.Println("\nTransparency report")
		fmt.Println("-------------------")
		for _, line := range exp.Summary() {
			fmt.Println(line)
		}
	}

	if cfObjs != nil {
		cfs, err := ev.CounterfactualBatch(res.Bonus, *k, cfObjs)
		if err != nil {
			fatal(err)
		}
		ct := &report.Table{
			Title:   "\nCounterfactuals (minimal change that flips selection)",
			Headers: []string{"Object", "Rank", "Selected", "Effective", "Cutoff", "ScoreDelta", "BonusDelta"},
		}
		for _, cf := range cfs {
			if !cf.Feasible {
				ct.AddRow(strconv.Itoa(cf.Object), strconv.Itoa(cf.Rank), fmt.Sprint(cf.Selected),
					report.Float(cf.Effective), "-", "infeasible", "infeasible")
				continue
			}
			ct.AddRow(strconv.Itoa(cf.Object), strconv.Itoa(cf.Rank), fmt.Sprint(cf.Selected),
				report.Float(cf.Effective), report.Float(cf.Cutoff),
				strconv.FormatFloat(cf.ScoreDelta, 'g', 6, 64),
				strconv.FormatFloat(cf.BonusDelta, 'g', 6, 64))
		}
		if err := ct.Render(os.Stdout); err != nil {
			fatal(err)
		}
	}

	if *testIn != "" {
		testD, err := fairrank.ReadCSVFile(*testIn)
		if err != nil {
			fatal(err)
		}
		testEv := fairrank.NewEvaluator(testD, scorer, pol)
		tb, err := testEv.Disparity(nil, *k)
		if err != nil {
			fatal(err)
		}
		ta, err := testEv.Disparity(res.Bonus, *k)
		if err != nil {
			fatal(err)
		}
		tt := &report.Table{Title: fmt.Sprintf("\nHeld-out evaluation on %s (%d objects)", *testIn, testD.N()), Headers: headers}
		tt.AddFloatRow("Disparity before", append(append([]float64(nil), tb...), metrics.Norm(tb))...)
		tt.AddFloatRow("Disparity after", append(append([]float64(nil), ta...), metrics.Norm(ta))...)
		if err := tt.Render(os.Stdout); err != nil {
			fatal(err)
		}
	}
}

// parseObjectSpec parses the -counterfactual object list: comma-separated
// non-negative ids. Range checking against the population happens after
// the CSV is loaded. It returns nil for the empty spec.
func parseObjectSpec(spec string) ([]int, error) {
	if spec == "" {
		return nil, nil
	}
	parts := strings.Split(spec, ",")
	objs := make([]int, len(parts))
	for i, p := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil {
			return nil, fmt.Errorf("-counterfactual object %q: %v", p, err)
		}
		if v < 0 {
			return nil, fmt.Errorf("-counterfactual object %d is negative", v)
		}
		objs[i] = v
	}
	return objs, nil
}

// parseSweepSpec parses the -sweep k-grid: either comma-separated
// fractions ("0.05,0.1,0.25") or an inclusive range "lo:hi:step". It
// returns nil for the empty spec (sweeping disabled).
func parseSweepSpec(spec string) ([]float64, error) {
	if spec == "" {
		return nil, nil
	}
	var ks []float64
	if strings.Contains(spec, ":") {
		parts := strings.Split(spec, ":")
		if len(parts) != 3 {
			return nil, fmt.Errorf("-sweep range must be lo:hi:step, got %q", spec)
		}
		var bounds [3]float64
		for i, p := range parts {
			v, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
			if err != nil {
				return nil, fmt.Errorf("-sweep range %q: %v", spec, err)
			}
			bounds[i] = v
		}
		lo, hi, step := bounds[0], bounds[1], bounds[2]
		if math.IsNaN(step) || step <= 0 {
			return nil, fmt.Errorf("-sweep step must be positive, got %v", step)
		}
		if lo > hi {
			return nil, fmt.Errorf("-sweep range %q has lo > hi", spec)
		}
		if math.IsNaN(lo) || math.IsNaN(hi) || lo <= 0 || hi > 1 {
			return nil, fmt.Errorf("-sweep range %q outside (0,1]", spec)
		}
		for i := 0; ; i++ {
			k := lo + float64(i)*step
			if k > hi+1e-9 {
				break
			}
			// Min clamps float accumulation noise only; hi <= 1 is checked.
			ks = append(ks, math.Min(k, 1))
		}
	} else {
		for _, p := range strings.Split(spec, ",") {
			v, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
			if err != nil {
				return nil, fmt.Errorf("-sweep fraction %q: %v", p, err)
			}
			ks = append(ks, v)
		}
	}
	for _, k := range ks {
		if math.IsNaN(k) || k <= 0 || k > 1 {
			return nil, fmt.Errorf("-sweep fraction %v outside (0,1]", k)
		}
	}
	if len(ks) == 0 {
		return nil, fmt.Errorf("-sweep %q produced no fractions", spec)
	}
	return ks, nil
}

// writeSweepCSV evaluates the trained vector over the k-grid — one
// ranking per metric, every k from prefix aggregates — and prints the
// trade-off curve: k, nDCG, the disparity vector and norm, the
// disparate-impact vector, (with outcomes) the FPR-difference vector,
// and (with all-binary fairness attributes) the per-capita exposure
// vector with its DDP, the top-k share deltas, and (when outcomes are
// also present) the exposure/merit ratios.
func writeSweepCSV(d *fairrank.Dataset, ev *fairrank.Evaluator, bonus []float64, ks []float64) error {
	points := make([]fairrank.SweepPoint, len(ks))
	for i, k := range ks {
		points[i] = fairrank.SweepPoint{Bonus: bonus, K: k}
	}
	ndcg, err := ev.NDCGSweep(points)
	if err != nil {
		return err
	}
	disp, err := ev.DisparitySweep(points)
	if err != nil {
		return err
	}
	di, err := ev.DisparateImpactSweep(points)
	if err != nil {
		return err
	}
	var fpr [][]float64
	if d.HasOutcomes() {
		fpr, err = ev.FPRDiffSweep(points)
		if err != nil {
			return err
		}
	}
	var expo, topk, ratio [][]float64
	binaryFair, _ := d.BinaryFairColumns()
	if binaryFair && d.NumFair() > 0 {
		if expo, err = ev.ExposureSweep(points); err != nil {
			return err
		}
		if topk, err = ev.TopKSweep(points); err != nil {
			return err
		}
		if d.HasOutcomes() {
			if ratio, err = ev.ExpRatioSweep(points); err != nil {
				return err
			}
		}
	}

	// Exposure groups are the binary attributes plus the trailing "rest"
	// group (objects belonging to none).
	expoNames := append(append([]string(nil), d.FairNames()...), "rest")
	cols := []string{"k", "ndcg"}
	for _, n := range d.FairNames() {
		cols = append(cols, "disparity:"+n)
	}
	cols = append(cols, "disparity_norm")
	for _, n := range d.FairNames() {
		cols = append(cols, "di:"+n)
	}
	if fpr != nil {
		for _, n := range d.FairNames() {
			cols = append(cols, "fpr:"+n)
		}
	}
	if expo != nil {
		for _, n := range expoNames {
			cols = append(cols, "exposure:"+n)
		}
		cols = append(cols, "exposure_ddp")
		for _, n := range d.FairNames() {
			cols = append(cols, "topk:"+n)
		}
	}
	if ratio != nil {
		for _, n := range d.FairNames() {
			cols = append(cols, "expratio:"+n)
		}
	}
	fmt.Println(strings.Join(cols, ","))
	for i, k := range ks {
		row := make([]string, 0, len(cols))
		row = append(row, strconv.FormatFloat(k, 'g', -1, 64), strconv.FormatFloat(ndcg[i], 'g', -1, 64))
		for _, v := range disp[i] {
			row = append(row, strconv.FormatFloat(v, 'g', -1, 64))
		}
		row = append(row, strconv.FormatFloat(metrics.Norm(disp[i]), 'g', -1, 64))
		for _, v := range di[i] {
			row = append(row, strconv.FormatFloat(v, 'g', -1, 64))
		}
		if fpr != nil {
			for _, v := range fpr[i] {
				row = append(row, strconv.FormatFloat(v, 'g', -1, 64))
			}
		}
		if expo != nil {
			for _, v := range expo[i] {
				row = append(row, strconv.FormatFloat(v, 'g', -1, 64))
			}
			ddp, err := metrics.DDPFromPerCapita(expo[i])
			if err != nil {
				return err
			}
			row = append(row, strconv.FormatFloat(ddp, 'g', -1, 64))
			for _, v := range topk[i] {
				row = append(row, strconv.FormatFloat(v, 'g', -1, 64))
			}
		}
		if ratio != nil {
			for _, v := range ratio[i] {
				row = append(row, strconv.FormatFloat(v, 'g', -1, 64))
			}
		}
		fmt.Println(strings.Join(row, ","))
	}
	return nil
}

func usage(msg string) {
	fmt.Fprintln(os.Stderr, "dca:", msg)
	flag.Usage()
	os.Exit(2)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "dca:", err)
	os.Exit(1)
}
