// Command dca trains a compensatory bonus-point vector on a CSV dataset
// and reports the disparity before and after.
//
// The input follows the csvio convention: score attributes prefixed
// "score:", fairness attributes "fair:", optional "outcome" column. The
// ranking function is a weighted sum over the score columns (-weights,
// comma separated, default: equal weights).
//
// Usage:
//
//	dca -in school.csv -k 0.05 [-weights 0.55,0.45] [-objective disparity]
//	    [-adverse] [-granularity 0.5] [-max-bonus 0] [-sample 500] [-seed 1]
//	dca -in compas.csv -k 0.2 -adverse -objective fpr
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"fairrank"
	"fairrank/internal/metrics"
	"fairrank/internal/report"
)

func main() {
	var (
		in          = flag.String("in", "", "training CSV (required)")
		testIn      = flag.String("test", "", "optional held-out CSV evaluated with the trained vector")
		k           = flag.Float64("k", 0.05, "selection fraction in (0,1]")
		weightsFlag = flag.String("weights", "", "comma-separated score weights (default: equal)")
		objective   = flag.String("objective", "disparity", "objective: disparity, logdisc, di, fpr")
		adverse     = flag.Bool("adverse", false, "adverse selection (bonus lowers the score, e.g. risk flagging)")
		granularity = flag.Float64("granularity", 0.5, "bonus point granularity (0 disables rounding)")
		maxBonus    = flag.Float64("max-bonus", 0, "maximum bonus per dimension (0 = unlimited)")
		sampleSize  = flag.Int("sample", 500, "DCA sample size")
		seed        = flag.Int64("seed", 1, "sampling seed")
		explain     = flag.Bool("explain", false, "print the transparency report (cutoff, per-group counts, beneficiaries)")
	)
	flag.Parse()
	if *in == "" {
		flag.Usage()
		os.Exit(2)
	}

	f, err := os.Open(*in)
	if err != nil {
		fatal(err)
	}
	d, err := fairrank.ReadCSV(f)
	f.Close()
	if err != nil {
		fatal(err)
	}

	weights := make([]float64, d.NumScore())
	if *weightsFlag == "" {
		for j := range weights {
			weights[j] = 1 / float64(len(weights))
		}
	} else {
		parts := strings.Split(*weightsFlag, ",")
		if len(parts) != d.NumScore() {
			fatal(fmt.Errorf("%d weights for %d score columns", len(parts), d.NumScore()))
		}
		for j, p := range parts {
			w, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
			if err != nil {
				fatal(err)
			}
			weights[j] = w
		}
	}
	scorer := fairrank.WeightedSum{Weights: weights}

	var obj fairrank.Objective
	switch *objective {
	case "disparity":
		obj = fairrank.DisparityObjective(*k)
	case "logdisc":
		step := 0.1
		if *k < step {
			step = *k // ensure at least one evaluation point
		}
		obj = fairrank.LogDiscountedDisparity(step, *k)
	case "di":
		obj = fairrank.DisparateImpactObjective(*k)
	case "fpr":
		obj = fairrank.FPRObjective(*k)
	default:
		fatal(fmt.Errorf("unknown objective %q", *objective))
	}

	opts := fairrank.DefaultOptions()
	opts.SampleSize = *sampleSize
	opts.Seed = *seed
	opts.Granularity = *granularity
	opts.MaxBonus = *maxBonus
	if *adverse {
		opts.Polarity = fairrank.Adverse
	}

	res, err := fairrank.Train(d, scorer, obj, opts)
	if err != nil {
		fatal(err)
	}

	pol := fairrank.Beneficial
	if *adverse {
		pol = fairrank.Adverse
	}
	ev := fairrank.NewEvaluator(d, scorer, pol)
	before, err := ev.Disparity(nil, *k)
	if err != nil {
		fatal(err)
	}
	after, err := ev.Disparity(res.Bonus, *k)
	if err != nil {
		fatal(err)
	}
	ndcg, err := ev.NDCG(res.Bonus, *k)
	if err != nil {
		fatal(err)
	}

	headers := append([]string{""}, d.FairNames()...)
	headers = append(headers, "Norm")
	t := &report.Table{Title: fmt.Sprintf("DCA on %s (k=%g, objective=%s, %d objects, %s)", *in, *k, *objective, d.N(), res.Elapsed), Headers: headers}
	cells := []string{"Bonus Points"}
	for _, b := range res.Bonus {
		cells = append(cells, report.Float(b))
	}
	cells = append(cells, "-")
	t.Rows = append(t.Rows, cells)
	t.AddFloatRow("Disparity before", append(append([]float64(nil), before...), metrics.Norm(before))...)
	t.AddFloatRow("Disparity after", append(append([]float64(nil), after...), metrics.Norm(after))...)
	if err := t.Render(os.Stdout); err != nil {
		fatal(err)
	}
	fmt.Printf("\nnDCG@%g = %s (1 = ranking unchanged)\n", *k, report.Float(ndcg))

	if *explain {
		exp, err := ev.Explain(res.Bonus, *k)
		if err != nil {
			fatal(err)
		}
		fmt.Println("\nTransparency report")
		fmt.Println("-------------------")
		for _, line := range exp.Summary() {
			fmt.Println(line)
		}
	}

	if *testIn != "" {
		tf, err := os.Open(*testIn)
		if err != nil {
			fatal(err)
		}
		testD, err := fairrank.ReadCSV(tf)
		tf.Close()
		if err != nil {
			fatal(err)
		}
		testEv := fairrank.NewEvaluator(testD, scorer, pol)
		tb, err := testEv.Disparity(nil, *k)
		if err != nil {
			fatal(err)
		}
		ta, err := testEv.Disparity(res.Bonus, *k)
		if err != nil {
			fatal(err)
		}
		tt := &report.Table{Title: fmt.Sprintf("\nHeld-out evaluation on %s (%d objects)", *testIn, testD.N()), Headers: headers}
		tt.AddFloatRow("Disparity before", append(append([]float64(nil), tb...), metrics.Norm(tb))...)
		tt.AddFloatRow("Disparity after", append(append([]float64(nil), ta...), metrics.Norm(ta))...)
		if err := tt.Render(os.Stdout); err != nil {
			fatal(err)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "dca:", err)
	os.Exit(1)
}
