// Command fairlint is the project's custom static-analysis suite. It
// mechanically enforces the invariants six PRs of speedups rely on:
//
//	rankonce    — no ad-hoc sorting/heap selection in exactness-pinned
//	              packages; rankings flow through internal/rank via the
//	              single Evaluator.rankedPrefixWS seam.
//	intoalloc   — *Into functions allocate nothing (the zero-allocation
//	              naming contract behind the AllocsPerRun assertions).
//	determinism — exactness-pinned packages stay bit-reproducible: no
//	              map-iteration-order-dependent results, no math/rand,
//	              no time.Now.
//	wsalias     — no slice aliasing pooled engine.Workspace scratch
//	              escapes outside the documented *WS seams.
//
// fairlint is a go/analysis unitchecker, so it plugs into the build
// exactly like vet:
//
//	cd tools/fairlint && go build -o fairlint .
//	go vet -vettool=tools/fairlint/fairlint ./...
//
// Justified exceptions carry //fairlint:allow <analyzer> -- <reason>
// directives; a directive without a reason suppresses nothing and is
// itself a diagnostic. The module vendors the golang.org/x/tools
// analysis framework so the root module stays dependency-free.
package main

import (
	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/unitchecker"

	"fairrank/tools/fairlint/determinism"
	"fairrank/tools/fairlint/intoalloc"
	"fairrank/tools/fairlint/rankonce"
	"fairrank/tools/fairlint/wsalias"
)

// Suite lists every registered analyzer. scripts/checkdocs.sh requires
// each one to be documented in the "Enforced invariants" table of
// docs/ARCHITECTURE.md.
func Suite() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		rankonce.Analyzer,
		intoalloc.Analyzer,
		determinism.Analyzer,
		wsalias.Analyzer,
	}
}

func main() { unitchecker.Main(Suite()...) }
