package main

import (
	"os"
	"os/exec"
	"path/filepath"
	"testing"
)

// TestRepoLintsClean builds the fairlint binary and runs it over the
// whole repository through go vet, asserting zero diagnostics: every
// violation introduced by a PR is either fixed or carries a justified
// //fairlint:allow directive before it can merge.
func TestRepoLintsClean(t *testing.T) {
	root, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(root, "go.mod")); err != nil {
		t.Skipf("repository root not found at %s: %v", root, err)
	}
	bin := filepath.Join(t.TempDir(), "fairlint")
	build := exec.Command("go", "build", "-o", bin, ".")
	out, err := build.CombinedOutput()
	if err != nil {
		t.Fatalf("building fairlint: %v\n%s", err, out)
	}
	vet := exec.Command("go", "vet", "-vettool="+bin, "./...")
	vet.Dir = root
	out, err = vet.CombinedOutput()
	if err != nil {
		t.Errorf("fairlint reports diagnostics on the repository:\n%s", out)
	}
}
