// Package rankonce enforces the rank-once invariant: exactness-pinned
// engine packages must not sort or heap-select cohort-sized score data
// themselves. Every ranking flows through the single
// Evaluator.rankedPrefixWS seam (internal/rank does the actual
// sorting), so sweeps, bundles, and counterfactuals provably share
// ranked passes — the property the differential harnesses and the
// ranking-count budget assertions pin.
//
// Flagged in matching packages (non-test files): sort.Slice,
// sort.SliceStable, sort.Sort, sort.Stable, the slices.Sort* family,
// and container/heap operations. sort.Ints / sort.Float64s /
// sort.Strings stay legal: the engine uses them to canonicalize small
// id lists for stable output, never to rank scores.
package rankonce

import (
	"go/ast"

	"fairrank/tools/fairlint/internal/directive"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"
	"golang.org/x/tools/go/types/typeutil"
)

var Analyzer = &analysis.Analyzer{
	Name:     "rankonce",
	Doc:      "forbid ad-hoc sorting/heap selection in exactness-pinned packages; rankings must flow through internal/rank (Evaluator.rankedPrefixWS)",
	Requires: []*analysis.Analyzer{inspect.Analyzer},
	Run:      run,
}

var packagesFlag *string

func init() {
	packagesFlag = Analyzer.Flags.String("packages", "internal/core,internal/service,internal/report,internal/metrics",
		"comma-separated package path patterns the invariant applies to")
}

// banned maps package path -> function names whose call sites violate
// the invariant.
var banned = map[string]map[string]bool{
	"sort": {
		"Slice": true, "SliceStable": true, "SliceIsSorted": false,
		"Sort": true, "Stable": true,
	},
	"slices": {
		"Sort": true, "SortFunc": true, "SortStableFunc": true,
		"Sorted": true, "SortedFunc": true, "SortedStableFunc": true,
	},
	"container/heap": {
		"Init": true, "Push": true, "Pop": true, "Fix": true,
	},
}

func run(pass *analysis.Pass) (any, error) {
	if !directive.PackageMatch(pass.Pkg.Path(), *packagesFlag) {
		return nil, nil
	}
	sup := directive.New(pass)
	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)
	ins.Preorder([]ast.Node{(*ast.CallExpr)(nil)}, func(n ast.Node) {
		call := n.(*ast.CallExpr)
		if directive.TestFile(pass, call.Pos()) {
			return
		}
		fn := typeutil.Callee(pass.TypesInfo, call)
		if fn == nil || fn.Pkg() == nil {
			return
		}
		if banned[fn.Pkg().Path()][fn.Name()] {
			sup.Reportf(pass, call.Pos(),
				"%s.%s in exactness-pinned package %s: rankings must flow through internal/rank (Evaluator.rankedPrefixWS); annotate //fairlint:allow rankonce -- <reason> if this provably does not rank score data",
				fn.Pkg().Name(), fn.Name(), pass.Pkg.Path())
		}
	})
	return nil, nil
}
