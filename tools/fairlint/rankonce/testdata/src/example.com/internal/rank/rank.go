// Fixture: internal/rank is where sorting legitimately lives; the
// rankonce analyzer must not fire here at all.
package rank

import "sort"

func Order(scores []float64, order []int) {
	sort.Slice(order, func(i, j int) bool { return scores[order[i]] > scores[order[j]] })
}
