// Fixture for the rankonce analyzer: the package path ends in
// internal/core, so the exactness-pinned rules apply.
package core

import (
	"container/heap"
	"slices"
	"sort"
)

type byScore struct{ scores []float64 }

func (b byScore) Len() int           { return len(b.scores) }
func (b byScore) Less(i, j int) bool { return b.scores[i] > b.scores[j] }
func (b byScore) Swap(i, j int)      { b.scores[i], b.scores[j] = b.scores[j], b.scores[i] }

type intHeap []int

func (h intHeap) Len() int           { return len(h) }
func (h intHeap) Less(i, j int) bool { return h[i] < h[j] }
func (h intHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *intHeap) Push(x any)        { *h = append(*h, x.(int)) }
func (h *intHeap) Pop() any          { old := *h; n := len(old); x := old[n-1]; *h = old[:n-1]; return x }

func adHocRank(scores []float64, order []int) {
	sort.Slice(order, func(i, j int) bool { return scores[order[i]] > scores[order[j]] }) // want `sort\.Slice in exactness-pinned package`
	sort.SliceStable(order, func(i, j int) bool { return order[i] < order[j] })           // want `sort\.SliceStable in exactness-pinned package`
	sort.Sort(byScore{scores})                                                            // want `sort\.Sort in exactness-pinned package`
	slices.Sort(scores)                                                                   // want `slices\.Sort in exactness-pinned package`
	slices.SortFunc(order, func(a, b int) int { return a - b })                           // want `slices\.SortFunc in exactness-pinned package`
}

func manualHeap(h *intHeap) int {
	heap.Init(h)             // want `heap\.Init in exactness-pinned package`
	heap.Push(h, 1)          // want `heap\.Push in exactness-pinned package`
	return heap.Pop(h).(int) // want `heap\.Pop in exactness-pinned package`
}

// Canonicalizing small id lists for stable output is not ranking and
// stays legal.
func canonicalizeIDs(admitted []int) {
	sort.Ints(admitted)
}

// A justified directive suppresses the finding in place.
func differentialCheck(scores []float64) {
	//fairlint:allow rankonce -- differential cross-check against the engine's merge path; not a serving code path
	slices.Sort(scores)
}

// A directive without a reason suppresses nothing and is itself
// reported.
func unjustified(scores []float64) {
	slices.Sort(scores) //fairlint:allow rankonce
	// want^ `no justification` `slices\.Sort in exactness-pinned package`
}
