package rankonce_test

import (
	"testing"

	"fairrank/tools/fairlint/internal/antest"
	"fairrank/tools/fairlint/rankonce"
)

func TestRankOnce(t *testing.T) {
	antest.Run(t, "testdata", rankonce.Analyzer,
		"example.com/internal/core",
		"example.com/internal/rank",
	)
}
