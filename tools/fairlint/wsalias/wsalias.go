// Package wsalias polices pooled-workspace aliasing, the bug class the
// Evaluator's sync.Pool makes catastrophic: a slice view of
// engine.Workspace scratch that survives the workspace's release is
// silently overwritten by the next request on the pool.
//
// The engine's documented convention: only functions whose name ends
// in "WS" (orderWS, rankedPrefixWS, selectWS, counterfactualsWS, ...)
// may return workspace-aliasing slices — their callers hold the
// workspace and must copy before releasing it. This analyzer makes the
// convention mechanical. In non-test files it flags:
//
//   - a function NOT named *WS returning a slice that traces to
//     workspace scratch (a field or buffer-accessor result of a
//     workspace-typed parameter or local, directly or through local
//     assignments, slicing, or buffer-filling calls);
//   - ANY function (including *WS seams) storing such a slice into
//     memory that outlives the workspace: a field of a non-workspace
//     value or a package-level variable.
//
// The tracking is intraprocedural; results of calls are treated as
// aliasing when the callee follows the *WS naming convention or is
// passed an aliasing buffer of the same type it returns (the
// rank.OrderInto(eff, ws.Ord(n)) shape). Copies via
// append(nil-or-fresh, src...) or copy() stay clean.
package wsalias

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"fairrank/tools/fairlint/internal/directive"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"
)

var Analyzer = &analysis.Analyzer{
	Name:     "wsalias",
	Doc:      "forbid returning or storing slices that alias pooled engine.Workspace scratch outside the documented *WS seams",
	Requires: []*analysis.Analyzer{inspect.Analyzer},
	Run:      run,
}

var workspaceFlag *string

func init() {
	workspaceFlag = Analyzer.Flags.String("workspace", "engine.Workspace",
		"workspace type as pkgpath.TypeName; pkgpath is suffix-matched")
}

func run(pass *analysis.Pass) (any, error) {
	pat := *workspaceFlag
	dot := strings.LastIndex(pat, ".")
	if dot < 0 {
		return nil, nil
	}
	c := &checker{pass: pass, pkgPat: pat[:dot], typeName: pat[dot+1:], sup: directive.New(pass)}
	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)
	ins.Preorder([]ast.Node{(*ast.FuncDecl)(nil)}, func(n ast.Node) {
		fd := n.(*ast.FuncDecl)
		if fd.Body == nil || directive.TestFile(pass, fd.Pos()) {
			return
		}
		// Methods on the workspace type itself are the accessor
		// contract (Eff, Ord, ... hand out scratch by design).
		if fd.Recv != nil && len(fd.Recv.List) == 1 && c.isWorkspaceType(pass.TypesInfo.TypeOf(fd.Recv.List[0].Type)) {
			return
		}
		c.checkFunc(fd)
	})
	return nil, nil
}

type checker struct {
	pass     *analysis.Pass
	sup      *directive.Suppressor
	pkgPat   string
	typeName string
	tainted  map[types.Object]bool
}

func (c *checker) isWorkspaceType(t types.Type) bool {
	if t == nil {
		return false
	}
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok || n.Obj().Pkg() == nil {
		return false
	}
	return n.Obj().Name() == c.typeName && directive.PackageMatch(n.Obj().Pkg().Path(), c.pkgPat)
}

func (c *checker) isWorkspaceExpr(e ast.Expr) bool {
	return c.isWorkspaceType(c.pass.TypesInfo.TypeOf(e))
}

func (c *checker) checkFunc(fd *ast.FuncDecl) {
	c.tainted = map[types.Object]bool{}
	// Fixpoint: locals assigned workspace-aliasing values are aliasing.
	for changed := true; changed; {
		changed = false
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			as, ok := n.(*ast.AssignStmt)
			if !ok || len(as.Lhs) != len(as.Rhs) {
				return true
			}
			for i, lhs := range as.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok {
					continue
				}
				obj := c.pass.TypesInfo.Defs[id]
				if obj == nil {
					obj = c.pass.TypesInfo.Uses[id]
				}
				if obj == nil || c.tainted[obj] {
					continue
				}
				if c.aliases(as.Rhs[i]) {
					c.tainted[obj] = true
					changed = true
				}
			}
			return true
		})
	}
	// Returns inside closures are the closure's contract with its
	// in-function consumer, not the function's API; only stores are
	// checked inside them.
	var funcLits []*ast.FuncLit
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if fl, ok := n.(*ast.FuncLit); ok {
			funcLits = append(funcLits, fl)
		}
		return true
	})
	inFuncLit := func(pos token.Pos) bool {
		for _, fl := range funcLits {
			if pos >= fl.Pos() && pos < fl.End() {
				return true
			}
		}
		return false
	}
	seam := strings.HasSuffix(fd.Name.Name, "WS")
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.ReturnStmt:
			if seam || inFuncLit(n.Pos()) {
				return true
			}
			for _, res := range n.Results {
				c.checkReturned(fd.Name.Name, res)
			}
		case *ast.AssignStmt:
			for i, lhs := range n.Lhs {
				if i >= len(n.Rhs) {
					break
				}
				if !c.aliases(n.Rhs[i]) {
					continue
				}
				switch l := lhs.(type) {
				case *ast.SelectorExpr:
					if !c.isWorkspaceExpr(l.X) && !c.aliases(l.X) {
						c.sup.Reportf(c.pass, n.Pos(), "%s stores a slice aliasing pooled workspace scratch into %s, which outlives the workspace; copy it instead", fd.Name.Name, types.ExprString(l))
					}
				case *ast.Ident:
					if obj := c.pass.TypesInfo.Uses[l]; obj != nil && obj.Parent() == obj.Pkg().Scope() {
						c.sup.Reportf(c.pass, n.Pos(), "%s stores a slice aliasing pooled workspace scratch into package variable %s; copy it instead", fd.Name.Name, l.Name)
					}
				}
			}
		}
		return true
	})
}

// checkReturned flags aliasing slices in a returned expression,
// looking through composite literals (Result{Scores: ws.Eff(n)}).
func (c *checker) checkReturned(fn string, e ast.Expr) {
	if c.aliases(e) {
		c.sup.Reportf(c.pass, e.Pos(), "%s returns a slice aliasing pooled workspace scratch; copy into caller-owned memory, or adopt the *WS naming convention to declare the caller-owns-workspace seam", fn)
		return
	}
	if lit, ok := e.(*ast.CompositeLit); ok {
		for _, el := range lit.Elts {
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				c.checkReturned(fn, kv.Value)
			} else {
				c.checkReturned(fn, el)
			}
		}
	}
	if u, ok := e.(*ast.UnaryExpr); ok {
		if lit, ok := u.X.(*ast.CompositeLit); ok {
			c.checkReturned(fn, lit)
		}
	}
}

// aliases reports whether the expression's value is a view of
// workspace scratch memory.
func (c *checker) aliases(e ast.Expr) bool {
	switch e := e.(type) {
	case *ast.Ident:
		obj := c.pass.TypesInfo.Uses[e]
		if obj == nil {
			obj = c.pass.TypesInfo.Defs[e]
		}
		return obj != nil && c.tainted[obj]
	case *ast.ParenExpr:
		return c.aliases(e.X)
	case *ast.SelectorExpr:
		return c.sliceTyped(e) && (c.isWorkspaceExpr(e.X) || c.aliases(e.X))
	case *ast.SliceExpr:
		return c.aliases(e.X)
	case *ast.IndexExpr:
		return c.sliceTyped(e) && c.aliases(e.X)
	case *ast.CallExpr:
		return c.callAliases(e)
	}
	return false
}

func (c *checker) callAliases(call *ast.CallExpr) bool {
	// append propagates its destination's backing store.
	if id, ok := call.Fun.(*ast.Ident); ok {
		if b, ok := c.pass.TypesInfo.Uses[id].(*types.Builtin); ok {
			return b.Name() == "append" && len(call.Args) > 0 && c.aliases(call.Args[0])
		}
	}
	if !c.sliceOfBasic(c.pass.TypesInfo.TypeOf(call)) {
		return false
	}
	// Buffer accessor on a workspace (ws.Eff(n)) or on an already
	// aliasing value.
	callee := ""
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
		if c.isWorkspaceExpr(sel.X) || c.aliases(sel.X) {
			return true
		}
		callee = sel.Sel.Name
	} else if id, ok := call.Fun.(*ast.Ident); ok {
		callee = id.Name
	}
	// A *WS-named callee handed a workspace (or an aliasing buffer)
	// returns ws-aliasing data by convention.
	wsArg := false
	for _, a := range call.Args {
		if c.isWorkspaceExpr(a) || c.aliases(a) {
			wsArg = true
			break
		}
	}
	if !wsArg {
		return false
	}
	if strings.HasSuffix(callee, "WS") {
		return true
	}
	// Fill-and-return shape: an aliasing buffer of the result's own
	// type goes in (rank.OrderInto(eff, ws.Ord(n))), so the result is
	// (a prefix of) that buffer.
	rt := c.pass.TypesInfo.TypeOf(call)
	for _, a := range call.Args {
		if c.aliases(a) && types.Identical(c.pass.TypesInfo.TypeOf(a), rt) {
			return true
		}
	}
	return false
}

func (c *checker) sliceTyped(e ast.Expr) bool {
	t := c.pass.TypesInfo.TypeOf(e)
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Slice)
	return ok
}

func (c *checker) sliceOfBasic(t types.Type) bool {
	if t == nil {
		return false
	}
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	_, ok = s.Elem().Underlying().(*types.Basic)
	return ok
}
