package wsalias_test

import (
	"testing"

	"fairrank/tools/fairlint/internal/antest"
	"fairrank/tools/fairlint/wsalias"
)

func TestWSAlias(t *testing.T) {
	antest.Run(t, "testdata", wsalias.Analyzer,
		"example.com/engine",
		"example.com/internal/core",
	)
}
