// Fixture stand-in for the real internal/engine: a pooled Workspace
// whose accessor methods hand out scratch buffers by design (the
// analyzer exempts methods on the workspace type itself).
package engine

type Workspace struct {
	eff []float64
	ord []int
}

func NewWorkspace() *Workspace { return &Workspace{} }

func (w *Workspace) Eff(n int) []float64 {
	if cap(w.eff) < n {
		w.eff = make([]float64, n)
	}
	return w.eff[:n]
}

func (w *Workspace) Ord(n int) []int {
	if cap(w.ord) < n {
		w.ord = make([]int, n)
	}
	return w.ord[:n]
}
