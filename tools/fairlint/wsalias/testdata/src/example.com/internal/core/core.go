// Fixture for the wsalias analyzer: consumers of the pooled workspace.
package core

import "example.com/engine"

// Result stands in for a response struct that outlives the workspace.
type Result struct{ Scores []float64 }

var leaked []float64

// orderWS follows the *WS naming convention: returning
// workspace-aliasing data is its documented contract.
func orderWS(ws *engine.Workspace, n int) []int {
	return ws.Ord(n)
}

// fillRanked stands in for rank.OrderInto: it fills and returns the
// caller's index buffer.
func fillRanked(eff []float64, idx []int) []int {
	for i := range idx {
		idx[i] = i
	}
	return idx
}

func returnsScratch(ws *engine.Workspace) []float64 {
	eff := ws.Eff(8)
	return eff // want `returnsScratch returns a slice aliasing pooled workspace scratch`
}

func returnsScratchSlice(ws *engine.Workspace) []float64 {
	return ws.Eff(8)[:4] // want `returnsScratchSlice returns a slice aliasing pooled workspace scratch`
}

func returnsSeamResult(ws *engine.Workspace) []int {
	order := orderWS(ws, 8)
	return order // want `returnsSeamResult returns a slice aliasing pooled workspace scratch`
}

func returnsFilledBuffer(ws *engine.Workspace) []int {
	return fillRanked(ws.Eff(8), ws.Ord(8)) // want `returnsFilledBuffer returns a slice aliasing pooled workspace scratch`
}

func returnsInStruct(ws *engine.Workspace) Result {
	return Result{Scores: ws.Eff(8)} // want `returnsInStruct returns a slice aliasing pooled workspace scratch`
}

func storesScratch(ws *engine.Workspace, out *Result) {
	out.Scores = ws.Eff(8) // want `storesScratch stores a slice aliasing pooled workspace scratch into out\.Scores`
}

func storesScratchGlobal(ws *engine.Workspace) {
	leaked = ws.Eff(8) // want `storesScratchGlobal stores a slice aliasing pooled workspace scratch into package variable leaked`
}

// copies returns caller-owned memory: copying out of scratch is the
// documented fix.
func copies(ws *engine.Workspace) []float64 {
	eff := ws.Eff(8)
	out := make([]float64, len(eff))
	copy(out, eff)
	return out
}

// copiesAppend copies via the append-to-nil idiom.
func copiesAppend(ws *engine.Workspace) []int {
	return append([]int(nil), orderWS(ws, 8)...)
}

// consumesLocally hands scratch to an in-function consumer through a
// closure; nothing escapes.
func consumesLocally(ws *engine.Workspace, visit func(func() []float64)) {
	visit(func() []float64 { return ws.Eff(8) })
}

// pinned carries a justified suppression: the caller is documented to
// copy before releasing the workspace.
func pinned(ws *engine.Workspace) []float64 {
	//fairlint:allow wsalias -- caller holds the workspace and copies before release; measured hot path
	return ws.Eff(8)
}

// unjustified shows a directive without a reason: it suppresses
// nothing and is itself reported.
func unjustified(ws *engine.Workspace) []float64 {
	return ws.Eff(8) //fairlint:allow wsalias
	// want^ `no justification` `unjustified returns a slice aliasing pooled workspace scratch`
}
