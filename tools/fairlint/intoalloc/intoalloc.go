// Package intoalloc enforces the *Into naming contract: a function
// whose name ends in "Into" writes results into caller-provided memory
// and allocates nothing on the steady-state path. The AllocsPerRun
// assertions pin a handful of hot functions at runtime; this analyzer
// checks every *Into function at vet time.
//
// Flagged inside *Into bodies (non-test files): make, new, slice/map/
// channel composite literals, &T{...} literals, string concatenation,
// any call into package fmt, and append to a slice that is not derived
// from a parameter or receiver (appends to caller-owned buffers are
// capacity-managed by the caller and stay amortized-zero-alloc; appends
// to fresh locals grow).
package intoalloc

import (
	"go/ast"
	"go/token"
	"go/types"

	"fairrank/tools/fairlint/internal/directive"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"
	"golang.org/x/tools/go/types/typeutil"
	"strings"
)

var Analyzer = &analysis.Analyzer{
	Name:     "intoalloc",
	Doc:      "forbid allocating constructs inside *Into functions (the zero-allocation naming contract)",
	Requires: []*analysis.Analyzer{inspect.Analyzer},
	Run:      run,
}

func run(pass *analysis.Pass) (any, error) {
	sup := directive.New(pass)
	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)
	ins.Preorder([]ast.Node{(*ast.FuncDecl)(nil)}, func(n ast.Node) {
		fd := n.(*ast.FuncDecl)
		if fd.Body == nil || !strings.HasSuffix(fd.Name.Name, "Into") {
			return
		}
		if directive.TestFile(pass, fd.Pos()) {
			return
		}
		checkFunc(pass, sup, fd)
	})
	return nil, nil
}

func checkFunc(pass *analysis.Pass, sup *directive.Suppressor, fd *ast.FuncDecl) {
	name := fd.Name.Name
	owned := callerOwned(pass, fd)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			checkCall(pass, sup, name, owned, n)
		case *ast.CompositeLit:
			switch pass.TypesInfo.TypeOf(n).Underlying().(type) {
			case *types.Slice, *types.Map, *types.Chan:
				sup.Reportf(pass, n.Pos(), "composite literal allocates inside %s: *Into functions are allocation-free by contract", name)
			}
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if _, ok := n.X.(*ast.CompositeLit); ok {
					sup.Reportf(pass, n.Pos(), "&composite literal escapes to the heap inside %s: *Into functions are allocation-free by contract", name)
				}
			}
		case *ast.BinaryExpr:
			if n.Op == token.ADD && isString(pass, n.X) {
				sup.Reportf(pass, n.Pos(), "string concatenation allocates inside %s: *Into functions are allocation-free by contract", name)
			}
		case *ast.AssignStmt:
			if n.Tok == token.ADD_ASSIGN && isString(pass, n.Lhs[0]) {
				sup.Reportf(pass, n.Pos(), "string concatenation allocates inside %s: *Into functions are allocation-free by contract", name)
			}
		}
		return true
	})
}

func checkCall(pass *analysis.Pass, sup *directive.Suppressor, name string, owned map[types.Object]bool, call *ast.CallExpr) {
	if id, ok := call.Fun.(*ast.Ident); ok {
		if b, ok := pass.TypesInfo.Uses[id].(*types.Builtin); ok {
			switch b.Name() {
			case "make":
				sup.Reportf(pass, call.Pos(), "make allocates inside %s: *Into functions are allocation-free by contract", name)
			case "new":
				sup.Reportf(pass, call.Pos(), "new allocates inside %s: *Into functions are allocation-free by contract", name)
			case "append":
				if len(call.Args) > 0 && !derived(pass, owned, call.Args[0]) {
					sup.Reportf(pass, call.Pos(), "append to a slice not derived from a parameter or receiver inside %s: growing appends allocate; write into caller-provided capacity", name)
				}
			}
			return
		}
	}
	if fn := typeutil.Callee(pass.TypesInfo, call); fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == "fmt" {
		sup.Reportf(pass, call.Pos(), "fmt.%s allocates inside %s: *Into functions are allocation-free by contract", fn.Name(), name)
	}
}

func isString(pass *analysis.Pass, e ast.Expr) bool {
	t := pass.TypesInfo.TypeOf(e)
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

// callerOwned returns the set of objects holding caller-provided
// memory: the receiver, every parameter, and — by fixpoint over the
// body's assignments — every local derived from one (h := buf[:0],
// s.heap = append(s.heap, e), out := dst[:cap(dst)], ...).
func callerOwned(pass *analysis.Pass, fd *ast.FuncDecl) map[types.Object]bool {
	owned := map[types.Object]bool{}
	addField := func(fl *ast.FieldList) {
		if fl == nil {
			return
		}
		for _, f := range fl.List {
			for _, id := range f.Names {
				if obj := pass.TypesInfo.Defs[id]; obj != nil {
					owned[obj] = true
				}
			}
		}
	}
	addField(fd.Recv)
	addField(fd.Type.Params)
	for changed := true; changed; {
		changed = false
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			as, ok := n.(*ast.AssignStmt)
			if !ok || len(as.Lhs) != len(as.Rhs) {
				return true
			}
			for i, lhs := range as.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok {
					continue
				}
				obj := pass.TypesInfo.Defs[id]
				if obj == nil {
					obj = pass.TypesInfo.Uses[id]
				}
				if obj == nil || owned[obj] {
					continue
				}
				if derived(pass, owned, as.Rhs[i]) {
					owned[obj] = true
					changed = true
				}
			}
			return true
		})
	}
	return owned
}

// derived reports whether the expression's backing memory traces to a
// caller-owned object.
func derived(pass *analysis.Pass, owned map[types.Object]bool, e ast.Expr) bool {
	switch e := e.(type) {
	case *ast.Ident:
		obj := pass.TypesInfo.Uses[e]
		if obj == nil {
			obj = pass.TypesInfo.Defs[e]
		}
		return obj != nil && owned[obj]
	case *ast.SelectorExpr:
		return derived(pass, owned, e.X)
	case *ast.IndexExpr:
		return derived(pass, owned, e.X)
	case *ast.SliceExpr:
		return derived(pass, owned, e.X)
	case *ast.ParenExpr:
		return derived(pass, owned, e.X)
	case *ast.StarExpr:
		return derived(pass, owned, e.X)
	case *ast.CallExpr:
		if id, ok := e.Fun.(*ast.Ident); ok {
			if b, ok := pass.TypesInfo.Uses[id].(*types.Builtin); ok && b.Name() == "append" && len(e.Args) > 0 {
				return derived(pass, owned, e.Args[0])
			}
		}
		// Method call on a caller-owned value returning its own
		// buffer (ws.Eff(n) and friends).
		if sel, ok := e.Fun.(*ast.SelectorExpr); ok {
			return derived(pass, owned, sel.X)
		}
		return false
	}
	return false
}
