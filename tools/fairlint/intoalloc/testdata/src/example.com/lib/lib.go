// Fixture for the intoalloc analyzer: the *Into naming contract is
// package-independent, so any import path works.
package lib

import "fmt"

// Scratch stands in for caller-owned reusable state.
type Scratch struct {
	heap []int
	name string
}

// SumInto is a clean *Into function: it only writes through
// caller-provided memory.
func SumInto(dst, a, b []float64) []float64 {
	for i := range dst {
		dst[i] = a[i] + b[i]
	}
	return dst
}

// AppendOwnedInto appends into caller-provided capacity: the
// destination slices derive from parameters and the receiver, so the
// appends stay amortized-allocation-free.
func (s *Scratch) AppendOwnedInto(dst []int, n int) []int {
	out := dst[:0]
	s.heap = s.heap[:0]
	for i := 0; i < n; i++ {
		out = append(out, i)
		s.heap = append(s.heap, i)
	}
	return out
}

func allocInto(n int) []float64 {
	out := make([]float64, n) // want `make allocates inside allocInto`
	p := new(int)             // want `new allocates inside allocInto`
	_ = p
	lit := []int{1, 2, 3} // want `composite literal allocates inside allocInto`
	_ = lit
	m := map[string]int{} // want `composite literal allocates inside allocInto`
	_ = m
	sp := &Scratch{} // want `&composite literal escapes to the heap inside allocInto`
	_ = sp
	return out
}

func growInto(dst []int, n int) []int {
	var grown []int
	for i := 0; i < n; i++ {
		grown = append(grown, i) // want `append to a slice not derived from a parameter or receiver inside growInto`
	}
	copy(dst, grown)
	return dst
}

func formatInto(s *Scratch, n int) {
	s.name = fmt.Sprintf("run-%d", n) // want `fmt\.Sprintf allocates inside formatInto`
	s.name = s.name + "!"             // want `string concatenation allocates inside formatInto`
	s.name += "?"                     // want `string concatenation allocates inside formatInto`
}

// notSuffixed is not an *Into function; allocations are fine.
func notSuffixed(n int) []int {
	return make([]int, n)
}

var table []float64

// lazyInto demonstrates a justified suppression: the one-time lazy
// init is annotated, the steady-state path stays checked.
func lazyInto(dst []float64) []float64 {
	//fairlint:allow intoalloc -- one-time lazy table init; steady-state calls allocate nothing
	if table == nil {
		table = make([]float64, 16)
	}
	copy(dst, table)
	return dst
}

// unjustifiedInto shows a directive without a reason: it suppresses
// nothing and is itself reported.
func unjustifiedInto(n int) []int {
	return make([]int, n) //fairlint:allow intoalloc
	// want^ `no justification` `make allocates inside unjustifiedInto`
}
