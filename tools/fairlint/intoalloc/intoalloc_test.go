package intoalloc_test

import (
	"testing"

	"fairrank/tools/fairlint/internal/antest"
	"fairrank/tools/fairlint/intoalloc"
)

func TestIntoAlloc(t *testing.T) {
	antest.Run(t, "testdata", intoalloc.Analyzer, "example.com/lib")
}
