package determinism_test

import (
	"testing"

	"fairrank/tools/fairlint/determinism"
	"fairrank/tools/fairlint/internal/antest"
)

func TestDeterminism(t *testing.T) {
	antest.Run(t, "testdata", determinism.Analyzer,
		"example.com/internal/metrics",
		"example.com/internal/service",
	)
}
