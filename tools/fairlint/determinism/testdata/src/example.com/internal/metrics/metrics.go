// Fixture for the determinism analyzer: the package path ends in
// internal/metrics, so the exactness-pinned rules apply.
package metrics

import (
	"fmt"
	"math/rand" // want `math/rand in exactness-pinned package`
	"sort"
	"time"
)

var _ = rand.Int

// sumScores accumulates floats in map order: the rounding of the sum
// depends on iteration order, which Go randomizes.
func sumScores(m map[string]float64) float64 {
	var sum float64
	for _, v := range m {
		sum += v // want `float accumulation into sum inside a map range`
	}
	return sum
}

// keysSorted is the canonical collect-then-sort idiom and stays legal.
func keysSorted(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// keysUnsorted leaks map iteration order into the result.
func keysUnsorted(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k) // want `append to keys inside a map range without sorting it afterwards`
	}
	return keys
}

// dump emits output in map iteration order.
func dump(m map[string]int) {
	for k, v := range m {
		fmt.Println(k, v) // want `fmt\.Println inside a map range`
	}
}

// countTotal accumulates ints, which are exact under reordering; not
// flagged.
func countTotal(m map[string]int) int {
	n := 0
	for _, v := range m {
		n += v
	}
	return n
}

// keyedWrites assign through the map key, so order cannot reach the
// result; not flagged.
func keyedWrites(src map[int]float64, dst []float64) {
	for k, v := range src {
		dst[k] = v * 2
	}
}

func stamp() time.Duration {
	t0 := time.Now() // want `time\.Now in exactness-pinned package`
	return time.Since(t0)
}

// stampAllowed carries the justification in place.
func stampAllowed() time.Time {
	return time.Now() //fairlint:allow determinism -- pure observability; the value never reaches pinned output
}

// sumAllowed shows a block-form suppression covering the whole loop.
func sumAllowed(m map[string]float64) float64 {
	var sum float64
	//fairlint:allow determinism -- inputs are exact powers of two, so the sum is associative here
	for _, v := range m {
		sum += v
	}
	return sum
}
