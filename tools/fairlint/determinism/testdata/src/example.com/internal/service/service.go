// Fixture: internal/service is not exactness-pinned for determinism;
// the analyzer must not fire here.
package service

import "time"

func stamp(m map[string]float64) float64 {
	_ = time.Now()
	var sum float64
	for _, v := range m {
		sum += v
	}
	return sum
}
