// Package determinism polices the exactness-pinned packages: their
// outputs are pinned bit-for-bit by hex goldens and differential
// harnesses, so nothing in them may depend on Go's randomized map
// iteration order, the clock, or a random stream.
//
// Flagged in matching packages (non-test files):
//
//   - ranging over a map while accumulating floats into, or appending
//     to, state declared outside the loop (iteration order reaches the
//     result), or while writing output (fmt/io) from the loop body.
//     Appending keys that are sorted afterwards in the same function —
//     the canonical collect-then-sort idiom — is recognized and legal.
//   - importing math/rand or math/rand/v2.
//   - calling time.Now. Wall-clock timing of phases is legitimate
//     observability; such sites carry //fairlint:allow determinism --
//     <reason> making the "never in ranked output" argument in place.
package determinism

import (
	"go/ast"
	"go/token"
	"go/types"

	"fairrank/tools/fairlint/internal/directive"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"
	"golang.org/x/tools/go/types/typeutil"
)

var Analyzer = &analysis.Analyzer{
	Name:     "determinism",
	Doc:      "forbid map-iteration-order-dependent results, math/rand, and time.Now in exactness-pinned packages",
	Requires: []*analysis.Analyzer{inspect.Analyzer},
	Run:      run,
}

var packagesFlag *string

func init() {
	packagesFlag = Analyzer.Flags.String("packages", "internal/core,internal/rank,internal/metrics,internal/report",
		"comma-separated package path patterns the invariant applies to")
}

func run(pass *analysis.Pass) (any, error) {
	if !directive.PackageMatch(pass.Pkg.Path(), *packagesFlag) {
		return nil, nil
	}
	sup := directive.New(pass)
	for _, file := range pass.Files {
		if directive.TestFile(pass, file.Pos()) {
			continue
		}
		for _, imp := range file.Imports {
			switch imp.Path.Value {
			case `"math/rand"`, `"math/rand/v2"`:
				sup.Reportf(pass, imp.Pos(), "math/rand in exactness-pinned package %s: pinned outputs must be reproducible; plumb a seeded source from outside the package", pass.Pkg.Path())
			}
		}
	}
	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)
	ins.Preorder([]ast.Node{(*ast.CallExpr)(nil)}, func(n ast.Node) {
		call := n.(*ast.CallExpr)
		if directive.TestFile(pass, call.Pos()) {
			return
		}
		fn := typeutil.Callee(pass.TypesInfo, call)
		if fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == "time" && fn.Name() == "Now" {
			sup.Reportf(pass, call.Pos(), "time.Now in exactness-pinned package %s: pinned outputs must not read the clock; annotate //fairlint:allow determinism -- <reason> for pure observability", pass.Pkg.Path())
		}
	})
	// Map ranges are checked per enclosing function so the
	// collect-then-sort idiom can look past the loop.
	ins.Preorder([]ast.Node{(*ast.FuncDecl)(nil)}, func(n ast.Node) {
		fd := n.(*ast.FuncDecl)
		if fd.Body == nil || directive.TestFile(pass, fd.Pos()) {
			return
		}
		checkMapRanges(pass, sup, fd.Body)
	})
	return nil, nil
}

func checkMapRanges(pass *analysis.Pass, sup *directive.Suppressor, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		rng, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		t := pass.TypesInfo.TypeOf(rng.X)
		if t == nil {
			return true
		}
		if _, isMap := t.Underlying().(*types.Map); !isMap {
			return true
		}
		checkMapRangeBody(pass, sup, body, rng)
		return true
	})
}

// checkMapRangeBody flags order-dependent effects inside one map-range
// body. fn is the whole enclosing function body, used to look for a
// subsequent sort of an appended-to slice.
func checkMapRangeBody(pass *analysis.Pass, sup *directive.Suppressor, fn *ast.BlockStmt, rng *ast.RangeStmt) {
	outside := func(e ast.Expr) (types.Object, bool) {
		obj := rootObject(pass, e)
		if obj == nil {
			return nil, false
		}
		return obj, obj.Pos() < rng.Pos() || obj.Pos() >= rng.End()
	}
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if n.Tok == token.ASSIGN || n.Tok == token.ADD_ASSIGN || n.Tok == token.SUB_ASSIGN ||
				n.Tok == token.MUL_ASSIGN || n.Tok == token.QUO_ASSIGN {
				for _, lhs := range n.Lhs {
					if !isFloat(pass, lhs) {
						continue
					}
					// Writes keyed by the map key (m2[k] = v) are
					// order-independent; accumulation into one outer
					// float cell is not, and for ASSIGN only reads of
					// the cell on the RHS make it an accumulation.
					if _, isIdx := lhs.(*ast.IndexExpr); isIdx && n.Tok == token.ASSIGN {
						continue
					}
					if obj, out := outside(lhs); out {
						if n.Tok == token.ASSIGN && !mentions(pass, n.Rhs, obj) {
							continue
						}
						sup.Reportf(pass, n.Pos(), "float accumulation into %s inside a map range: iteration order reaches the rounded result; sort the keys first or annotate //fairlint:allow determinism -- <reason>", obj.Name())
					}
				}
			}
		case *ast.CallExpr:
			if id, ok := n.Fun.(*ast.Ident); ok {
				if b, ok := pass.TypesInfo.Uses[id].(*types.Builtin); ok && b.Name() == "append" && len(n.Args) > 0 {
					if obj, out := outside(n.Args[0]); out && !sortedAfter(pass, fn, rng, obj) {
						sup.Reportf(pass, n.Pos(), "append to %s inside a map range without sorting it afterwards: element order follows map iteration; sort after the loop or annotate //fairlint:allow determinism -- <reason>", obj.Name())
					}
					return true
				}
			}
			if fn := typeutil.Callee(pass.TypesInfo, n); fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == "fmt" {
				sup.Reportf(pass, n.Pos(), "fmt.%s inside a map range emits output in map iteration order; sort the keys first or annotate //fairlint:allow determinism -- <reason>", fn.Name())
			}
		}
		return true
	})
}

// sortedAfter reports whether obj is passed to a sort call after the
// range statement in the same function body (the collect-then-sort
// idiom).
func sortedAfter(pass *analysis.Pass, fn *ast.BlockStmt, rng *ast.RangeStmt, obj types.Object) bool {
	found := false
	ast.Inspect(fn, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rng.End() || found {
			return true
		}
		callee := typeutil.Callee(pass.TypesInfo, call)
		if callee == nil || callee.Pkg() == nil {
			return true
		}
		switch callee.Pkg().Path() {
		case "sort", "slices":
		default:
			return true
		}
		for _, arg := range call.Args {
			if rootObject(pass, arg) == obj {
				found = true
			}
		}
		return true
	})
	return found
}

// rootObject resolves the base object of an lvalue-ish expression
// (x, x.f, x[i], *x → x's object).
func rootObject(pass *analysis.Pass, e ast.Expr) types.Object {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			if obj := pass.TypesInfo.Uses[x]; obj != nil {
				return obj
			}
			return pass.TypesInfo.Defs[x]
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// mentions reports whether obj is read anywhere in the expressions.
func mentions(pass *analysis.Pass, exprs []ast.Expr, obj types.Object) bool {
	for _, e := range exprs {
		hit := false
		ast.Inspect(e, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok && pass.TypesInfo.Uses[id] == obj {
				hit = true
			}
			return !hit
		})
		if hit {
			return true
		}
	}
	return false
}

func isFloat(pass *analysis.Pass, e ast.Expr) bool {
	t := pass.TypesInfo.TypeOf(e)
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}
