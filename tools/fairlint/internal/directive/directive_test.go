package directive

import "testing"

func TestPackageMatch(t *testing.T) {
	cases := []struct {
		path, patterns string
		want           bool
	}{
		{"fairrank/internal/core", "internal/core", true},
		{"example.com/internal/core", "internal/core,internal/report", true},
		{"internal/core", "internal/core", true},
		{"fairrank/internal/coreutil", "internal/core", false},
		{"fairrank/internal/rank", "internal/core,internal/report", false},
		{"fairrank/internal/core/sub", "internal/core", true},
		{"engine", "engine", true},
		{"fairrank/internal/engine", "engine", true},
		{"fairrank/internal/rank", "", false},
		{"fairrank/internal/rank", " , ", false},
	}
	for _, c := range cases {
		if got := PackageMatch(c.path, c.patterns); got != c.want {
			t.Errorf("PackageMatch(%q, %q) = %v, want %v", c.path, c.patterns, got, c.want)
		}
	}
}

func TestDirectiveNames(t *testing.T) {
	cases := []struct {
		list, name string
		want       bool
	}{
		{"rankonce", "rankonce", true},
		{"rankonce,determinism", "determinism", true},
		{"rankonce, determinism", "determinism", true},
		{"rankonce determinism", "determinism", true},
		{"rankonce", "determinism", false},
		{"rankonces", "rankonce", false},
		{"", "rankonce", false},
	}
	for _, c := range cases {
		if got := directiveNames(c.list, c.name); got != c.want {
			t.Errorf("directiveNames(%q, %q) = %v, want %v", c.list, c.name, got, c.want)
		}
	}
}
