// Package directive parses fairlint suppression comments.
//
// A site that legitimately violates an invariant carries
//
//	//fairlint:allow <analyzer>[,<analyzer>...] -- <reason>
//
// either trailing the offending line or on its own line immediately
// above the offending statement (in which case it covers that whole
// statement, including any nested block). The reason is mandatory: a
// directive without "-- <reason>" suppresses nothing and is itself
// reported, so every exception in the tree is justified in place.
package directive

import (
	"go/ast"
	"go/token"
	"strings"

	"golang.org/x/tools/go/analysis"
)

const prefix = "//fairlint:allow"

// span is a half-open position interval suppressed for one analyzer.
type span struct {
	start, end token.Pos
}

// Suppressor reports whether diagnostics of the named analyzer are
// suppressed at a given position in this pass. Building it also reports
// malformed directives (missing reason, missing analyzer list) that
// mention the analyzer, so an unjustified //fairlint:allow fails the
// build instead of silently suppressing.
type Suppressor struct {
	spans []span
}

// New scans the pass's files for //fairlint:allow directives naming the
// analyzer and returns the resulting Suppressor. Malformed directives
// are reported through pass.Report.
func New(pass *analysis.Pass) *Suppressor {
	s := &Suppressor{}
	for _, file := range pass.Files {
		for _, cg := range file.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, prefix)
				if !ok {
					continue
				}
				names, reason, hasReason := strings.Cut(text, "--")
				names = strings.TrimSpace(names)
				reason = strings.TrimSpace(reason)
				mentions := directiveNames(names, pass.Analyzer.Name)
				if names == "" {
					pass.Reportf(c.Pos(), "fairlint:allow directive names no analyzer (want //fairlint:allow %s -- <reason>)", pass.Analyzer.Name)
					continue
				}
				if !mentions {
					continue
				}
				if !hasReason || reason == "" {
					pass.Reportf(c.Pos(), "fairlint:allow %s has no justification (want //fairlint:allow %s -- <reason>); the directive is ignored", pass.Analyzer.Name, pass.Analyzer.Name)
					continue
				}
				s.spans = append(s.spans, directiveSpan(pass.Fset, file, c))
			}
		}
	}
	return s
}

// directiveNames reports whether the comma/space separated analyzer
// list mentions name.
func directiveNames(list, name string) bool {
	for _, f := range strings.FieldsFunc(list, func(r rune) bool { return r == ',' || r == ' ' || r == '\t' }) {
		if f == name {
			return true
		}
	}
	return false
}

// directiveSpan computes the source interval a directive covers: its
// own line (trailing-comment form), plus — when a statement or
// declaration starts on the following line — that node's full extent
// (leading-comment form).
func directiveSpan(fset *token.FileSet, file *ast.File, c *ast.Comment) span {
	line := fset.Position(c.Pos()).Line
	tf := fset.File(c.Pos())
	sp := span{start: tf.LineStart(line), end: lineEnd(tf, line)}
	// Widest statement/decl starting on the next line.
	var best ast.Node
	ast.Inspect(file, func(n ast.Node) bool {
		if n == nil {
			return false
		}
		switch n.(type) {
		case ast.Stmt, ast.Decl:
			if fset.Position(n.Pos()).Line == line+1 {
				if best == nil || (n.Pos() <= best.Pos() && n.End() >= best.End()) {
					best = n
				}
			}
		}
		return true
	})
	if best != nil {
		if best.End() > sp.end {
			sp.end = best.End()
		}
		if best.Pos() < sp.start {
			sp.start = best.Pos()
		}
	}
	return sp
}

// lineEnd returns the position just past the last character of line.
func lineEnd(tf *token.File, line int) token.Pos {
	if line >= tf.LineCount() {
		return token.Pos(tf.Base() + tf.Size())
	}
	return tf.LineStart(line + 1)
}

// Suppressed reports whether pos falls inside a justified allow span.
func (s *Suppressor) Suppressed(pos token.Pos) bool {
	for _, sp := range s.spans {
		if pos >= sp.start && pos < sp.end {
			return true
		}
	}
	return false
}

// Reportf emits the diagnostic unless the position is suppressed.
func (s *Suppressor) Reportf(pass *analysis.Pass, pos token.Pos, format string, args ...any) {
	if s.Suppressed(pos) {
		return
	}
	pass.Reportf(pos, format, args...)
}

// TestFile reports whether the file containing pos is a _test.go file.
// fairlint's invariants police production code; differential tests and
// fixtures deliberately full-sort, allocate, and iterate maps.
func TestFile(pass *analysis.Pass, pos token.Pos) bool {
	return strings.HasSuffix(pass.Fset.Position(pos).Filename, "_test.go")
}

// PackageMatch reports whether the package import path matches any of
// the comma-separated patterns. A pattern matches when it equals the
// path, is a path-suffix of it, or names a directory on it — so
// "internal/core" matches both "fairrank/internal/core" and fixture
// paths like "example.com/internal/core".
func PackageMatch(path, patterns string) bool {
	for _, pat := range strings.Split(patterns, ",") {
		pat = strings.TrimSpace(pat)
		if pat == "" {
			continue
		}
		if path == pat || strings.HasSuffix(path, "/"+pat) ||
			strings.HasPrefix(path, pat+"/") || strings.Contains(path, "/"+pat+"/") {
			return true
		}
	}
	return false
}
