// Package antest is a minimal analysistest-style fixture harness.
//
// The real golang.org/x/tools/go/analysis/analysistest depends on
// go/packages, which is not vendored with the Go toolchain; this
// harness type-checks fixture trees with the standard library's source
// importer instead, so the fairlint module needs nothing beyond the
// analysis framework itself.
//
// Fixtures live under testdata/src/<import path>/*.go. Expectations
// use the analysistest comment convention:
//
//	sort.Slice(x, less) // want `sort\.Slice`
//
// where each backquoted or quoted string is a regexp that must match a
// diagnostic reported on that line. A comment line of the form
// "// want^ `re` ..." attaches the expectations to the PREVIOUS line —
// needed when the diagnostic position is itself inside a comment (an
// unjustified //fairlint:allow directive cannot carry a trailing
// comment of its own). Every diagnostic must be matched by an
// expectation and vice versa.
package antest

import (
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"testing"

	"golang.org/x/tools/go/analysis"
)

// fset and stdImporter are shared across runs so the source importer's
// stdlib type-checking work is paid once per test binary.
var (
	fset        = token.NewFileSet()
	stdImporter = importer.ForCompiler(fset, "source", nil)
	fixturePkgs = map[string]*types.Package{}
)

// pkg bundles one type-checked fixture package.
type pkg struct {
	path  string
	files []*ast.File
	types *types.Package
	info  *types.Info
}

type fixtureImporter struct{}

func (fixtureImporter) Import(path string) (*types.Package, error) {
	if p, ok := fixturePkgs[path]; ok {
		return p, nil
	}
	return stdImporter.Import(path)
}

// Run type-checks the fixture packages named by pkgPaths (dependencies
// first) under testdata/src, applies the analyzer to each, and
// compares diagnostics with the // want expectations.
func Run(t *testing.T, testdata string, a *analysis.Analyzer, pkgPaths ...string) {
	t.Helper()
	var pkgs []*pkg
	for _, path := range pkgPaths {
		pkgs = append(pkgs, load(t, filepath.Join(testdata, "src", filepath.FromSlash(path)), path))
	}
	var diags []analysis.Diagnostic
	for _, p := range pkgs {
		diags = append(diags, runAnalyzer(t, a, p)...)
	}
	check(t, pkgs, diags)
}

// load parses and type-checks one fixture package.
func load(t *testing.T, dir, path string) *pkg {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("reading fixture dir: %v", err)
	}
	p := &pkg{path: path}
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			t.Fatalf("parsing fixture: %v", err)
		}
		p.files = append(p.files, f)
	}
	if len(p.files) == 0 {
		t.Fatalf("no fixture files in %s", dir)
	}
	p.info = &types.Info{
		Types:        map[ast.Expr]types.TypeAndValue{},
		Instances:    map[*ast.Ident]types.Instance{},
		Defs:         map[*ast.Ident]types.Object{},
		Uses:         map[*ast.Ident]types.Object{},
		Implicits:    map[ast.Node]types.Object{},
		Selections:   map[*ast.SelectorExpr]*types.Selection{},
		Scopes:       map[ast.Node]*types.Scope{},
		FileVersions: map[*ast.File]string{},
	}
	conf := types.Config{Importer: fixtureImporter{}}
	tp, err := conf.Check(path, fset, p.files, p.info)
	if err != nil {
		t.Fatalf("type-checking fixture %s: %v", path, err)
	}
	p.types = tp
	fixturePkgs[path] = tp
	return p
}

// runAnalyzer executes the analyzer (and its Requires closure) on one
// package, returning its diagnostics.
func runAnalyzer(t *testing.T, a *analysis.Analyzer, p *pkg) []analysis.Diagnostic {
	t.Helper()
	var diags []analysis.Diagnostic
	results := map[*analysis.Analyzer]any{}
	var exec func(a *analysis.Analyzer, record bool)
	exec = func(a *analysis.Analyzer, record bool) {
		if _, done := results[a]; done {
			return
		}
		for _, req := range a.Requires {
			exec(req, false)
		}
		pass := &analysis.Pass{
			Analyzer:   a,
			Fset:       fset,
			Files:      p.files,
			Pkg:        p.types,
			TypesInfo:  p.info,
			TypesSizes: types.SizesFor("gc", runtime.GOARCH),
			ResultOf:   results,
			ReadFile:   os.ReadFile,
			Report: func(d analysis.Diagnostic) {
				if record {
					diags = append(diags, d)
				}
			},
		}
		res, err := a.Run(pass)
		if err != nil {
			t.Fatalf("running %s on %s: %v", a.Name, p.path, err)
		}
		results[a] = res
	}
	exec(a, true)
	return diags
}

// wantRE extracts the expectation strings of one want comment.
var wantRE = regexp.MustCompile("\"(?:[^\"\\\\]|\\\\.)*\"|`[^`]*`")

// key identifies one source line.
type key struct {
	file string
	line int
}

// check matches diagnostics against want expectations.
func check(t *testing.T, pkgs []*pkg, diags []analysis.Diagnostic) {
	t.Helper()
	type want struct {
		re      *regexp.Regexp
		matched bool
	}
	wants := map[key][]*want{}
	for _, p := range pkgs {
		for _, f := range p.files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					text := strings.TrimPrefix(c.Text, "//")
					text = strings.TrimSpace(text)
					rest, prev := "", false
					switch {
					case strings.HasPrefix(text, "want^"):
						rest, prev = text[len("want^"):], true
					case strings.HasPrefix(text, "want "), text == "want":
						rest = text[len("want"):]
					default:
						continue
					}
					pos := fset.Position(c.Pos())
					k := key{pos.Filename, pos.Line}
					if prev {
						k.line--
					}
					for _, q := range wantRE.FindAllString(rest, -1) {
						pat := q[1 : len(q)-1]
						if q[0] == '"' {
							var err error
							pat, err = strconv.Unquote(q)
							if err != nil {
								t.Fatalf("%s: bad want pattern %s: %v", pos, q, err)
							}
						}
						re, err := regexp.Compile(pat)
						if err != nil {
							t.Fatalf("%s: bad want regexp %q: %v", pos, pat, err)
						}
						wants[k] = append(wants[k], &want{re: re})
					}
				}
			}
		}
	}
	for _, d := range diags {
		pos := fset.Position(d.Pos)
		k := key{pos.Filename, pos.Line}
		matched := false
		for _, w := range wants[k] {
			if !w.matched && w.re.MatchString(d.Message) {
				w.matched = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("%s: unexpected diagnostic: %s", pos, d.Message)
		}
	}
	var lines []string
	for k, ws := range wants {
		for _, w := range ws {
			if !w.matched {
				lines = append(lines, k.file+":"+strconv.Itoa(k.line)+": expected diagnostic matching "+w.re.String())
			}
		}
	}
	sort.Strings(lines)
	for _, l := range lines {
		t.Error(l)
	}
}
