// Package fairrank is a Go implementation of "Explainable Disparity
// Compensation for Efficient Fair Ranking" (Gale & Marian, ICDE 2024): a
// data-driven, explainable fairness intervention for score-based ranking
// functions.
//
// # The idea
//
// A ranking process selects the top k% of objects by a score f(o). When the
// underlying data is biased, the selection under- or over-represents
// protected groups; the disparity vector (Disparity) measures that gap as
// the centroid difference between the selected set and the population, one
// dimension per fairness attribute, each in [-1, 1] with 0 at statistical
// parity.
//
// Instead of opaquely re-ranking, fairrank computes compensatory bonus
// points: a vector B >= 0, one entry per fairness attribute, applied as
// f_b(o) = f(o) + A_f(o)·B (or subtracted for adverse selections such as
// risk flagging). Bonus points are transparent — they can be published in
// advance, compose across overlapping groups, and are directly
// interpretable ("English learners receive 11.5 points").
//
// The Disparity Compensation Algorithm (Train) finds B by a sampling-based
// descent that never touches the full dataset: its cost depends on the
// sample size max(1/k, 1/r), not on the population, making it sub-linear
// and fast enough for interactive what-if iteration.
//
// # The engine layer
//
// Underneath the training entry points sits internal/engine: a reusable,
// allocation-free selection and evaluation engine. Every descent step runs
// through a preallocated engine workspace (effective-score buffer,
// selection index buffer, per-dimension objective accumulators) and a
// single shared descent loop parameterized by a sample source and an
// update rule, so a step allocates nothing; objectives are validated once
// at bind time, not per step. Concurrency follows the same shape: ensemble
// training and the Evaluator's sweep methods fan out over a worker pool
// with one workspace per goroutine, and an Evaluator is safe for
// concurrent use. Results are bit-identical to a naive single-threaded
// implementation — aggregation is always done in deterministic order.
//
// Hold a Trainer to reuse the workspace across repeated runs on the same
// dataset (the interactive what-if loop); one-shot calls can keep using
// Train/TrainCore/TrainFull.
//
// # Quick start
//
//	d, _ := fairrank.GenerateSchool(fairrank.DefaultSchoolConfig())
//	scorer := fairrank.WeightedSum{Weights: fairrank.SchoolScoreWeights()}
//	res, _ := fairrank.Train(d, scorer, fairrank.DisparityObjective(0.05), fairrank.DefaultOptions())
//	fmt.Println(res.Bonus) // e.g. [1 11.5 12 12] for Low-Income, ELL, ENI, Special-Ed
//
// See the examples/ directory for complete programs, and internal/
// packages for the substrates (statistics, optimizers, baselines, deferred
// acceptance matching) the library is built on.
package fairrank

import (
	"fmt"
	"io"
	"math"
	"os"
	"strconv"
	"strings"

	"fairrank/internal/core"
	"fairrank/internal/csvio"
	"fairrank/internal/dataset"
	"fairrank/internal/matching"
	"fairrank/internal/metrics"
	"fairrank/internal/rank"
	"fairrank/internal/report"
	"fairrank/internal/service"
	"fairrank/internal/synth"
)

// Dataset is a columnar population of objects with score attributes,
// fairness attributes in [0, 1], and optional ground-truth outcomes.
type Dataset = dataset.Dataset

// Builder accumulates dataset rows.
type Builder = dataset.Builder

// NewBuilder returns a Builder for datasets with the given score and
// fairness attribute names.
func NewBuilder(scoreNames, fairNames []string) *Builder {
	return dataset.NewBuilder(scoreNames, fairNames)
}

// NewDataset assembles a dataset from column-major data; see
// dataset.New for the validation rules.
func NewDataset(scoreNames, fairNames []string, score, fair [][]float64, outcome []bool) (*Dataset, error) {
	return dataset.New(scoreNames, fairNames, score, fair, outcome)
}

// Scorer computes base (uncompensated) scores for every object.
type Scorer = rank.Scorer

// WeightedSum is a weighted-sum ranking function over score attributes.
type WeightedSum = rank.WeightedSum

// Precomputed wraps externally computed scores (e.g. a black-box model).
type Precomputed = rank.Precomputed

// Polarity states whether selection is beneficial (bonus added) or adverse
// (bonus subtracted; e.g. recidivism flagging).
type Polarity = rank.Polarity

// Selection polarities.
const (
	Beneficial = rank.Beneficial
	Adverse    = rank.Adverse
)

// Options configures a DCA run; see DefaultOptions for the paper's
// settings.
type Options = core.Options

// Result is the outcome of a DCA run: the rounded bonus vector plus
// diagnostics.
type Result = core.Result

// Objective is a pluggable fairness objective; DCA drives its vector to
// zero.
type Objective = core.Objective

// PrefixMetric is a per-selection fairness vector usable at a fixed k or
// under logarithmic discounting.
type PrefixMetric = core.PrefixMetric

// Evaluator measures the effect of bonus vectors on a full dataset.
type Evaluator = core.Evaluator

// DefaultOptions returns the paper's empirical DCA settings (sample size
// 500, learning-rate ladder {1.0, 0.1} x 100 steps, 100 Adam refinement
// steps, 0.5-point granularity).
func DefaultOptions() Options { return core.DefaultOptions() }

// Trainer runs DCA repeatedly over one dataset and ranking function,
// reusing the engine workspace and the precomputed base scores across
// runs — the cheapest way to drive interactive what-if iteration. Not
// safe for concurrent use; create one per goroutine.
type Trainer = core.Trainer

// NewTrainer returns a Trainer for the dataset under the given ranking
// function.
func NewTrainer(d *Dataset, scorer Scorer) *Trainer { return core.NewTrainer(d, scorer) }

// SweepPoint is one (bonus vector, selection fraction) evaluation of an
// Evaluator sweep; the sweep methods fan points over a worker pool.
type SweepPoint = core.SweepPoint

// Train runs the full DCA pipeline (Algorithm 1, Algorithm 2, rounding)
// and returns the bonus-point vector minimizing the objective.
func Train(d *Dataset, scorer Scorer, obj Objective, opts Options) (Result, error) {
	return core.Run(d, scorer, obj, opts)
}

// TrainCore runs Algorithm 1 only (no Adam refinement) — faster, rougher.
func TrainCore(d *Dataset, scorer Scorer, obj Objective, opts Options) (Result, error) {
	return core.CoreDCA(d, scorer, obj, opts)
}

// TrainFull runs the whole-dataset variant (Section IV-C), which satisfies
// the Theorem 4.1 swap guarantee exactly; O(n log n) per step.
func TrainFull(d *Dataset, scorer Scorer, obj Objective, opts Options) (Result, error) {
	return core.FullDCA(d, scorer, obj, opts)
}

// DisparityObjective returns the paper's primary objective: the disparity
// of the top-k selection (k a fraction in (0, 1]).
func DisparityObjective(k float64) Objective { return core.DisparityObjective(k) }

// ObjectiveByName constructs one of the named objectives at selection
// fraction k: "disparity", "logdisc", "di" or "fpr". It is the textual
// vocabulary shared by cmd/dca and the fairrankd service; validation (name
// and fraction) happens here, before any dataset is touched.
func ObjectiveByName(name string, k float64) (Objective, error) {
	return core.ObjectiveByName(name, k)
}

// ObjectiveNames lists the objective names ObjectiveByName understands.
func ObjectiveNames() []string { return core.ObjectiveNames() }

// LogDiscountedDisparity returns the whole-ranking objective of
// Section IV-E for unknown selection sizes, evaluated at fractions
// {step, 2*step, ..., maxK}.
func LogDiscountedDisparity(step, maxK float64) Objective {
	return core.LogDiscountedDisparity(step, maxK)
}

// DisparateImpactObjective returns the scaled disparate-impact objective
// at selection fraction k (binary fairness attributes only).
func DisparateImpactObjective(k float64) Objective { return core.DisparateImpactObjective(k) }

// FPRObjective returns the equalized-odds objective at selection fraction
// k: per-group false positive rates are driven toward the population FPR.
// The dataset must carry outcomes.
func FPRObjective(k float64) Objective { return core.FPRObjective(k) }

// RankStats summarizes an Evaluator's combo-run merge structure: the
// number of distinct fairness-combination runs g, the run-length spread,
// and the one-time partition + pre-sort cost paid at registration. Read
// it with Evaluator.RunStats or Service.RankStats; ok=false means the
// evaluator serves requests off the full-sort path instead.
type RankStats = rank.RunStats

// NewEvaluator builds an evaluator for measuring bonus vectors on a full
// dataset: disparity, nDCG utility, disparate impact, FPR differences, and
// nDCG-targeted proportional scaling.
func NewEvaluator(d *Dataset, scorer Scorer, pol Polarity) *Evaluator {
	return core.NewEvaluator(d, scorer, pol)
}

// ScaleBonus multiplies a bonus vector by w and rounds it to granularity —
// the utility/fairness trade-off knob of Section VI-A2.
func ScaleBonus(b []float64, w, granularity float64) []float64 {
	return core.Scale(b, w, granularity)
}

// Explanation is the transparency report of a bonus vector: the published
// cutoff, per-group selection counts, and the objects admitted or
// displaced by the compensation.
type Explanation = core.Explanation

// ObjectExplanation breaks one object's effective score into its published
// components.
type ObjectExplanation = core.ObjectExplanation

// Counterfactual is one object's answer to "what is the smallest change
// that flips my selection?": its standing against the published cutoff
// and the minimal score/bonus-point deltas, exact at float64 resolution.
// Compute one with Evaluator.Counterfactual, or many from a single
// ranking with Evaluator.CounterfactualBatch.
type Counterfactual = core.Counterfactual

// DisparityAttribution is the group-level leave-one-attribute-out
// decomposition of a bonus vector's disparity reduction, from
// Evaluator.AttributeDisparity.
type DisparityAttribution = core.Attribution

// AuditBundle is the versioned audit bundle of a bonus-point policy:
// published cutoff, per-attribute policy lines with attribution,
// beneficiary lists, and counterfactual margins at the cutoff. Render it
// as JSON, CSV, or Markdown.
type AuditBundle = report.Bundle

// AuditConfig parameterizes BuildAuditBundle.
type AuditConfig = report.BundleConfig

// AuditBundleVersion is the schema version BuildAuditBundle stamps into
// bundles.
const AuditBundleVersion = report.BundleVersion

// BuildAuditBundle assembles the audit bundle for a bonus policy at
// fraction cfg.K on the evaluator's dataset. It rejects empty datasets,
// missing or all-zero policies, and FPR requests without outcomes — an
// audit must have something real to audit.
func BuildAuditBundle(ev *Evaluator, cfg AuditConfig) (*AuditBundle, error) {
	return report.BuildBundle(ev, cfg)
}

// EnsembleResult aggregates DCA runs across independent seeds.
type EnsembleResult = core.EnsembleResult

// TrainEnsemble runs DCA under `runs` consecutive seeds and returns the
// per-dimension mean/std of the raw vectors plus the stabilized cross-seed
// bonus vector.
func TrainEnsemble(d *Dataset, scorer Scorer, obj Objective, opts Options, runs int) (EnsembleResult, error) {
	return core.Ensemble(d, scorer, obj, opts, runs)
}

// Disparity returns the disparity vector of a selection over the dataset
// (Definition 3 of the paper).
func Disparity(d *Dataset, selected []int) []float64 { return metrics.Disparity(d, selected) }

// Norm returns the L2 norm of a fairness vector, the scalar DCA minimizes.
func Norm(v []float64) float64 { return metrics.Norm(v) }

// SchoolConfig parameterizes the synthetic NYC-schools-like generator.
type SchoolConfig = synth.SchoolConfig

// CompasConfig parameterizes the synthetic COMPAS-like generator.
type CompasConfig = synth.CompasConfig

// DefaultSchoolConfig returns the generator configuration calibrated to
// the paper's Table I baseline disparity.
func DefaultSchoolConfig() SchoolConfig { return synth.DefaultSchoolConfig() }

// DefaultCompasConfig returns the generator configuration calibrated to
// the published COMPAS marginals.
func DefaultCompasConfig() CompasConfig { return synth.DefaultCompasConfig() }

// GenerateSchool synthesizes a school cohort; see the synth package for
// the substitution rationale (the original records are IRB-protected).
func GenerateSchool(cfg SchoolConfig) (*Dataset, error) { return synth.GenerateSchool(cfg) }

// GenerateCompas synthesizes a recidivism dataset with ground-truth
// outcomes.
func GenerateCompas(cfg CompasConfig) (*Dataset, error) { return synth.GenerateCompas(cfg) }

// SchoolScoreWeights is the paper's admission rubric over the school score
// columns: f = 0.55*GPA + 0.45*TestScores.
func SchoolScoreWeights() []float64 { return synth.SchoolScoreWeights() }

// CompasScoreWeights ranks by decile score with an infinitesimal
// tie-break.
func CompasScoreWeights() []float64 { return synth.CompasScoreWeights() }

// WriteCSV serializes a dataset with the self-describing score:/fair:
// header convention.
func WriteCSV(w io.Writer, d *Dataset) error { return csvio.Write(w, d) }

// ReadCSV parses a dataset written by WriteCSV.
func ReadCSV(r io.Reader) (*Dataset, error) { return csvio.Read(r) }

// ParseWeights parses a comma-separated score-weight list (the -weights
// flag vocabulary of cmd/dca and cmd/fairrankd) into a WeightedSum weight
// vector, rejecting non-finite entries: a single NaN or Inf weight would
// silently poison every base score. An empty spec returns nil (callers
// substitute equal weights).
func ParseWeights(spec string) ([]float64, error) {
	if spec == "" {
		return nil, nil
	}
	parts := strings.Split(spec, ",")
	out := make([]float64, len(parts))
	for j, p := range parts {
		v, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil {
			return nil, fmt.Errorf("fairrank: bad weight %q: %w", p, err)
		}
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return nil, fmt.Errorf("fairrank: weight %q is not finite", p)
		}
		out[j] = v
	}
	return out, nil
}

// EqualWeights returns the uniform weight vector over n score columns.
func EqualWeights(n int) []float64 {
	w := make([]float64, n)
	for j := range w {
		w[j] = 1 / float64(n)
	}
	return w
}

// ReadCSVFile loads a dataset from a CSV file, propagating the Close
// error when the parse succeeded (a failed close can mean truncated reads
// on some filesystems).
func ReadCSVFile(path string) (*Dataset, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	d, err := csvio.Read(f)
	if cerr := f.Close(); err == nil && cerr != nil {
		err = fmt.Errorf("fairrank: closing %s: %w", path, cerr)
	}
	return d, err
}

// Service is the HTTP layer behind cmd/fairrankd: a registry of datasets
// (each with a shared concurrent Evaluator and a pooled set of Trainers),
// an LRU cache of deterministic train results, and JSON handlers for
// what-if training, evaluation sweeps, and transparency reports. Embed it
// to mount fair-ranking endpoints inside an existing server:
//
//	s := fairrank.NewService(fairrank.ServiceConfig{})
//	s.Register("school", d, scorer, fairrank.Beneficial)
//	http.ListenAndServe(":8080", s.Handler())
type Service = service.Server

// ServiceConfig parameterizes a Service; the zero value is usable.
type ServiceConfig = service.Config

// ServiceTimeouts carries the per-endpoint request deadlines of a
// ServiceConfig; zero fields mean no deadline for that endpoint.
type ServiceTimeouts = service.Timeouts

// NewService returns a Service with no datasets registered.
func NewService(cfg ServiceConfig) *Service { return service.New(cfg) }

// School is one school in a deferred-acceptance match: a capacity, an
// optional number of set-aside seats, and a rubric score per student.
// Bonus-adjusted rubrics are expressed by passing adjusted scores.
type School = matching.School

// Match is the outcome of a deferred-acceptance run.
type Match = matching.Match

// DeferredAcceptance runs student-proposing deferred acceptance — the NYC
// admissions mechanism of the paper's motivating scenario — over the
// students' preference lists and the schools' (possibly bonus-adjusted)
// rubrics. Because the mechanism decides how far down each school's list
// admission reaches, the selection fraction k is unknown in advance; pair
// it with LogDiscountedDisparity.
func DeferredAcceptance(prefs [][]int, schools []School, disadvantaged []bool) (Match, error) {
	return matching.DeferredAcceptance(prefs, schools, disadvantaged)
}

// BlockingPair reports a student-school pair violating stability of a
// match, or (-1, -1) if the match is stable.
func BlockingPair(prefs [][]int, schools []School, disadvantaged []bool, m Match) (student, school int) {
	return matching.BlockingPair(prefs, schools, disadvantaged, m)
}
