#!/usr/bin/env bash
# checkdocs.sh — documentation consistency gate, run by the CI docs job.
#
# Fails when:
#   1. a package under internal/ is missing from the README package map,
#      or the README names an internal package that does not exist;
#   2. a relative markdown link in README.md or docs/ARCHITECTURE.md
#      points at a file that does not exist;
#   3. an /v1 endpoint routed in internal/service/service.go is not
#      documented in both README.md and docs/ARCHITECTURE.md;
#   4. an internal package has no doc.go package comment;
#   5. an analyzer registered in tools/fairlint's Suite() is missing a
#      row in the docs/ARCHITECTURE.md "Enforced invariants" table;
#   6. a fault-injection site in internal/faultinject/sites.go is missing
#      a row in the docs/ARCHITECTURE.md "Fault injection" hook map;
#   7. a metric registered in internal/service/metrics.go is missing a
#      row in the docs/ARCHITECTURE.md "sweep metric registry" table.
set -u
cd "$(dirname "$0")/.."
fail=0

err() {
    echo "checkdocs: $*" >&2
    fail=1
}

# 1. README package map <-> ls internal/
for dir in internal/*/; do
    pkg=${dir%/}
    grep -q "\`$pkg\`" README.md || err "README package map is missing $pkg"
done
# Every `internal/...` mention in the README must exist on disk.
for pkg in $(grep -o '`internal/[a-z]*`' README.md | tr -d '\`' | sort -u); do
    [ -d "$pkg" ] || err "README names $pkg, which does not exist"
done

# 2. Relative markdown links resolve (http links are skipped).
check_links() {
    local doc=$1 dir target
    dir=$(dirname "$doc")
    # Extract link targets from [text](target), strip #fragments.
    grep -o '](\([^)]*\))' "$doc" | sed 's/^](//; s/)$//; s/#.*//' | while read -r target; do
        [ -z "$target" ] && continue
        case "$target" in
        http://*|https://*) continue ;;
        esac
        [ -e "$dir/$target" ] || echo "$doc links to $target, which does not exist"
    done
}
for doc in README.md docs/ARCHITECTURE.md; do
    [ -f "$doc" ] || { err "$doc does not exist"; continue; }
    broken=$(check_links "$doc")
    if [ -n "$broken" ]; then
        err "$broken"
    fi
done

# 3. Every routed /v1 endpoint (and /healthz) is documented.
for ep in $(grep -o '"\(GET\|POST\) /[^"]*"' internal/service/service.go | awk '{print $2}' | tr -d '"'); do
    grep -q -- "$ep" README.md || err "endpoint $ep is not documented in README.md"
    grep -q -- "$ep" docs/ARCHITECTURE.md || err "endpoint $ep is not documented in docs/ARCHITECTURE.md"
done

# 4. Every internal package carries a doc.go with a package comment.
for dir in internal/*/; do
    if [ ! -f "$dir/doc.go" ] || ! grep -q '^// Package' "$dir/doc.go"; then
        err "$dir has no doc.go package comment"
    fi
done

# 5. Every analyzer registered in the fairlint suite has a row in the
#    "Enforced invariants" table. Names come from the Name: field of
#    each Analyzer definition; a table row starts "| `<name>` |".
if [ -d tools/fairlint ]; then
    names=$(grep -h '^	Name:' tools/fairlint/*/[a-z]*.go | sed 's/.*"\([a-z]*\)".*/\1/' | sort -u)
    [ -n "$names" ] || err "found no analyzer Name: fields under tools/fairlint"
    for name in $names; do
        grep -q "^| \`$name\` |" docs/ARCHITECTURE.md \
            || err "analyzer $name has no row in the ARCHITECTURE.md invariants table"
    done
else
    err "tools/fairlint does not exist"
fi

# 6. Every fault-injection site constant has a row in the
#    ARCHITECTURE.md "Fault injection" hook map (| `site.name` | ...).
sites=$(grep -o '= "[a-z]*\.[a-z]*"' internal/faultinject/sites.go | tr -d '="' | tr -d ' ')
[ -n "$sites" ] || err "found no site constants in internal/faultinject/sites.go"
for site in $sites; do
    grep -q "^| \`$site\` |" docs/ARCHITECTURE.md \
        || err "faultinject site $site has no row in the ARCHITECTURE.md hook map"
done

# 7. Every metric in the service registry has a row in the
#    ARCHITECTURE.md sweep metric registry table (| `name` | ...).
metrics=$(grep -o 'name: "[a-z]*"' internal/service/metrics.go | sed 's/name: "\([a-z]*\)"/\1/' | sort -u)
[ -n "$metrics" ] || err "found no metric name: fields in internal/service/metrics.go"
for metric in $metrics; do
    grep -q "^| \`$metric\` |" docs/ARCHITECTURE.md \
        || err "metric $metric has no row in the ARCHITECTURE.md sweep metric registry table"
done

if [ "$fail" -ne 0 ]; then
    exit 1
fi
echo "checkdocs: ok"
