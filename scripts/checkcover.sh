#!/usr/bin/env bash
# checkcover.sh — total-coverage ratchet, run by the CI coverage job.
#
# Runs the whole test suite with a coverage profile and fails when total
# statement coverage drops below the floor recorded in covermin.txt. The
# floor only moves up: when a PR raises coverage meaningfully, raise the
# recorded floor with it (leave ~1 point of slack for run-to-run noise
# from timing-dependent paths).
set -eu
cd "$(dirname "$0")/.."

floor=$(cat scripts/covermin.txt)
profile=$(mktemp)
trap 'rm -f "$profile"' EXIT

go test -coverprofile="$profile" ./... > /dev/null

total=$(go tool cover -func="$profile" | awk '/^total:/ {sub(/%/, "", $3); print $3}')
if [ -z "$total" ]; then
    echo "checkcover: could not read total coverage from the profile" >&2
    exit 1
fi

echo "checkcover: total statement coverage ${total}% (floor ${floor}%)"
if awk -v t="$total" -v f="$floor" 'BEGIN { exit !(t < f) }'; then
    echo "checkcover: coverage ${total}% fell below the recorded floor ${floor}% (scripts/covermin.txt)" >&2
    exit 1
fi
