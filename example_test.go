package fairrank_test

import (
	"fmt"
	"math"
	"math/rand"

	"fairrank"
)

// ExampleTrain shows the core workflow: build a biased population, train
// compensatory bonus points, and verify the disparity collapses.
func ExampleTrain() {
	rng := rand.New(rand.NewSource(7))
	b := fairrank.NewBuilder([]string{"score"}, []string{"protected"})
	for i := 0; i < 4000; i++ {
		p := 0.0
		if rng.Float64() < 0.4 {
			p = 1
		}
		// The protected group carries a structural 5-point penalty.
		b.Add([]float64{60 + 10*rng.NormFloat64() - 5*p}, []float64{p})
	}
	d, err := b.Build()
	if err != nil {
		panic(err)
	}
	scorer := fairrank.WeightedSum{Weights: []float64{1}}

	res, err := fairrank.Train(d, scorer, fairrank.DisparityObjective(0.1), fairrank.DefaultOptions())
	if err != nil {
		panic(err)
	}
	ev := fairrank.NewEvaluator(d, scorer, fairrank.Beneficial)
	before, _ := ev.Disparity(nil, 0.1)
	after, _ := ev.Disparity(res.Bonus, 0.1)
	fmt.Printf("bonus recovers the penalty: %t\n", res.Bonus[0] >= 3.5 && res.Bonus[0] <= 6.5)
	fmt.Printf("disparity reduced: %t\n", fairrank.Norm(after) < fairrank.Norm(before)/3)
	// Output:
	// bonus recovers the penalty: true
	// disparity reduced: true
}

// ExampleNewEvaluator demonstrates the utility/fairness trade-off knob:
// scaling the bonus proportionally trades disparity for nDCG.
func ExampleNewEvaluator() {
	rng := rand.New(rand.NewSource(11))
	b := fairrank.NewBuilder([]string{"score"}, []string{"protected"})
	for i := 0; i < 4000; i++ {
		p := 0.0
		if rng.Float64() < 0.4 {
			p = 1
		}
		b.Add([]float64{60 + 10*rng.NormFloat64() - 5*p}, []float64{p})
	}
	d, _ := b.Build()
	scorer := fairrank.WeightedSum{Weights: []float64{1}}
	ev := fairrank.NewEvaluator(d, scorer, fairrank.Beneficial)

	full := []float64{5}
	half := fairrank.ScaleBonus(full, 0.5, 0.5)
	nFull, _ := ev.Disparity(full, 0.1)
	nHalf, _ := ev.Disparity(half, 0.1)
	uFull, _ := ev.NDCG(full, 0.1)
	uHalf, _ := ev.NDCG(half, 0.1)
	fmt.Printf("half bonus leaves more disparity: %t\n", fairrank.Norm(nHalf) > fairrank.Norm(nFull))
	fmt.Printf("half bonus keeps more utility: %t\n", uHalf > uFull)
	// Output:
	// half bonus leaves more disparity: true
	// half bonus keeps more utility: true
}

// exampleCohort builds the small deterministic population the evaluator
// examples share: a protected group carrying a structural score penalty.
func exampleCohort() *fairrank.Dataset {
	rng := rand.New(rand.NewSource(3))
	b := fairrank.NewBuilder([]string{"score"}, []string{"protected"})
	for i := 0; i < 2000; i++ {
		p := 0.0
		if rng.Float64() < 0.3 {
			p = 1
		}
		b.Add([]float64{60 + 10*rng.NormFloat64() - 5*p}, []float64{p})
	}
	d, err := b.Build()
	if err != nil {
		panic(err)
	}
	return d
}

// ExampleEvaluator_DisparitySweep shows the sweep engine: points sharing
// a bonus vector are ranked once, and every selection fraction is
// answered from prefix aggregates of that single ranking.
func ExampleEvaluator_DisparitySweep() {
	d := exampleCohort()
	ev := fairrank.NewEvaluator(d, fairrank.WeightedSum{Weights: []float64{1}}, fairrank.Beneficial)

	bonus := []float64{5}
	points := []fairrank.SweepPoint{
		{Bonus: bonus, K: 0.05}, {Bonus: bonus, K: 0.1}, {Bonus: bonus, K: 0.2},
	}
	disps, err := ev.DisparitySweep(points) // one ranking, three answers
	if err != nil {
		panic(err)
	}
	base, _ := ev.Disparity(nil, 0.1)
	fmt.Printf("compensation shrinks disparity at every k: %t\n",
		math.Abs(disps[0][0]) < math.Abs(base[0]) &&
			math.Abs(disps[1][0]) < math.Abs(base[0]) &&
			math.Abs(disps[2][0]) < math.Abs(base[0]))
	// Output:
	// compensation shrinks disparity at every k: true
}

// ExampleEvaluator_Explain publishes the transparency report of a bonus
// policy: the cutoff any applicant can compare their score against, and
// the per-group selection counts.
func ExampleEvaluator_Explain() {
	d := exampleCohort()
	ev := fairrank.NewEvaluator(d, fairrank.WeightedSum{Weights: []float64{1}}, fairrank.Beneficial)

	exp, err := ev.Explain([]float64{5}, 0.1)
	if err != nil {
		panic(err)
	}
	fmt.Printf("selected %d of %d\n", exp.Selected, d.N())
	// The published cutoff is in effective-score space: with bonus points
	// added it sits above the uncompensated cutoff.
	fmt.Printf("cutoff published alongside the policy: %t\n", exp.Cutoff >= exp.BaseCutoff)
	fmt.Printf("protected members selected: %d (was %d)\n", exp.GroupCounts[0], exp.BaseGroupCounts[0])
	// Output:
	// selected 200 of 2000
	// cutoff published alongside the policy: true
	// protected members selected: 68 (was 41)
}

// ExampleEvaluator_Counterfactual asks the audit question: what is the
// smallest change that flips an object's selection? The returned delta is
// minimal at float64 resolution — applying it flips, anything smaller
// does not.
func ExampleEvaluator_Counterfactual() {
	d := exampleCohort()
	ev := fairrank.NewEvaluator(d, fairrank.WeightedSum{Weights: []float64{1}}, fairrank.Beneficial)

	bonus := []float64{5}
	order := ev.Order(bonus)
	sel, _ := ev.Select(bonus, 0.1)
	first := order[len(sel)] // best-ranked excluded object

	cf, err := ev.Counterfactual(bonus, 0.1, first)
	if err != nil {
		panic(err)
	}
	fmt.Printf("selected: %t, rank %d\n", cf.Selected, cf.Rank)
	fmt.Printf("needs a positive score delta to enter: %t\n", cf.ScoreDelta > 0)
	fmt.Printf("delta is within one ranking step of the cutoff: %t\n",
		cf.Effective+cf.ScoreDelta >= cf.Cutoff)
	// Output:
	// selected: false, rank 200
	// needs a positive score delta to enter: true
	// delta is within one ranking step of the cutoff: true
}

// ExampleDeferredAcceptance runs the matching substrate of the paper's
// NYC scenario with one reserved seat.
func ExampleDeferredAcceptance() {
	prefs := [][]int{{0}, {0}, {0}}
	schools := []fairrank.School{{Capacity: 2, Reserved: 1, Scores: []float64{9, 8, 7}}}
	disadvantaged := []bool{false, false, true}
	m, err := fairrank.DeferredAcceptance(prefs, schools, disadvantaged)
	if err != nil {
		panic(err)
	}
	fmt.Println("assignments:", m.Assigned)
	// Output:
	// assignments: [0 -1 0]
}
