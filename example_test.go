package fairrank_test

import (
	"fmt"
	"math/rand"

	"fairrank"
)

// ExampleTrain shows the core workflow: build a biased population, train
// compensatory bonus points, and verify the disparity collapses.
func ExampleTrain() {
	rng := rand.New(rand.NewSource(7))
	b := fairrank.NewBuilder([]string{"score"}, []string{"protected"})
	for i := 0; i < 4000; i++ {
		p := 0.0
		if rng.Float64() < 0.4 {
			p = 1
		}
		// The protected group carries a structural 5-point penalty.
		b.Add([]float64{60 + 10*rng.NormFloat64() - 5*p}, []float64{p})
	}
	d, err := b.Build()
	if err != nil {
		panic(err)
	}
	scorer := fairrank.WeightedSum{Weights: []float64{1}}

	res, err := fairrank.Train(d, scorer, fairrank.DisparityObjective(0.1), fairrank.DefaultOptions())
	if err != nil {
		panic(err)
	}
	ev := fairrank.NewEvaluator(d, scorer, fairrank.Beneficial)
	before, _ := ev.Disparity(nil, 0.1)
	after, _ := ev.Disparity(res.Bonus, 0.1)
	fmt.Printf("bonus recovers the penalty: %t\n", res.Bonus[0] >= 3.5 && res.Bonus[0] <= 6.5)
	fmt.Printf("disparity reduced: %t\n", fairrank.Norm(after) < fairrank.Norm(before)/3)
	// Output:
	// bonus recovers the penalty: true
	// disparity reduced: true
}

// ExampleNewEvaluator demonstrates the utility/fairness trade-off knob:
// scaling the bonus proportionally trades disparity for nDCG.
func ExampleNewEvaluator() {
	rng := rand.New(rand.NewSource(11))
	b := fairrank.NewBuilder([]string{"score"}, []string{"protected"})
	for i := 0; i < 4000; i++ {
		p := 0.0
		if rng.Float64() < 0.4 {
			p = 1
		}
		b.Add([]float64{60 + 10*rng.NormFloat64() - 5*p}, []float64{p})
	}
	d, _ := b.Build()
	scorer := fairrank.WeightedSum{Weights: []float64{1}}
	ev := fairrank.NewEvaluator(d, scorer, fairrank.Beneficial)

	full := []float64{5}
	half := fairrank.ScaleBonus(full, 0.5, 0.5)
	nFull, _ := ev.Disparity(full, 0.1)
	nHalf, _ := ev.Disparity(half, 0.1)
	uFull, _ := ev.NDCG(full, 0.1)
	uHalf, _ := ev.NDCG(half, 0.1)
	fmt.Printf("half bonus leaves more disparity: %t\n", fairrank.Norm(nHalf) > fairrank.Norm(nFull))
	fmt.Printf("half bonus keeps more utility: %t\n", uHalf > uFull)
	// Output:
	// half bonus leaves more disparity: true
	// half bonus keeps more utility: true
}

// ExampleDeferredAcceptance runs the matching substrate of the paper's
// NYC scenario with one reserved seat.
func ExampleDeferredAcceptance() {
	prefs := [][]int{{0}, {0}, {0}}
	schools := []fairrank.School{{Capacity: 2, Reserved: 1, Scores: []float64{9, 8, 7}}}
	disadvantaged := []bool{false, false, true}
	m, err := fairrank.DeferredAcceptance(prefs, schools, disadvantaged)
	if err != nil {
		panic(err)
	}
	fmt.Println("assignments:", m.Assigned)
	// Output:
	// assignments: [0 -1 0]
}
