package fairrank_test

import (
	"bytes"
	"math"
	"math/rand"
	"testing"

	"fairrank"
)

// buildPool creates a small biased population through the public API.
func buildPool(t testing.TB, n int, seed int64) *fairrank.Dataset {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	b := fairrank.NewBuilder([]string{"score"}, []string{"protected"})
	for i := 0; i < n; i++ {
		p := 0.0
		if rng.Float64() < 0.35 {
			p = 1
		}
		b.Add([]float64{60 + 10*rng.NormFloat64() - 6*p}, []float64{p})
	}
	d, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// TestPublicAPIEndToEnd exercises the documented workflow: build, train,
// evaluate, scale, explain, serialize.
func TestPublicAPIEndToEnd(t *testing.T) {
	d := buildPool(t, 5000, 1)
	scorer := fairrank.WeightedSum{Weights: []float64{1}}
	const k = 0.1

	res, err := fairrank.Train(d, scorer, fairrank.DisparityObjective(k), fairrank.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	ev := fairrank.NewEvaluator(d, scorer, fairrank.Beneficial)
	before, err := ev.Disparity(nil, k)
	if err != nil {
		t.Fatal(err)
	}
	after, err := ev.Disparity(res.Bonus, k)
	if err != nil {
		t.Fatal(err)
	}
	if fairrank.Norm(after) > fairrank.Norm(before)/3 {
		t.Errorf("norm %v -> %v: insufficient reduction", fairrank.Norm(before), fairrank.Norm(after))
	}
	// The 6-point structural penalty should be roughly recovered.
	if res.Bonus[0] < 3 || res.Bonus[0] > 10 {
		t.Errorf("bonus = %v, want ≈ 6", res.Bonus[0])
	}

	// Scaling halves the intervention.
	half := fairrank.ScaleBonus(res.Bonus, 0.5, 0.5)
	if math.Abs(half[0]-res.Bonus[0]/2) > 0.5 {
		t.Errorf("half-scaled bonus = %v", half)
	}

	// The transparency report is consistent.
	exp, err := ev.Explain(res.Bonus, k)
	if err != nil {
		t.Fatal(err)
	}
	if exp.GroupCounts[0] <= exp.BaseGroupCounts[0] {
		t.Error("bonus did not admit more protected members")
	}

	// CSV round trip through the public API.
	var buf bytes.Buffer
	if err := fairrank.WriteCSV(&buf, d); err != nil {
		t.Fatal(err)
	}
	back, err := fairrank.ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.N() != d.N() {
		t.Errorf("round trip N = %d, want %d", back.N(), d.N())
	}
}

func TestPublicTrainVariants(t *testing.T) {
	d := buildPool(t, 3000, 2)
	scorer := fairrank.WeightedSum{Weights: []float64{1}}
	opts := fairrank.DefaultOptions()

	if _, err := fairrank.TrainCore(d, scorer, fairrank.DisparityObjective(0.1), opts); err != nil {
		t.Errorf("TrainCore: %v", err)
	}
	if _, err := fairrank.TrainFull(d, scorer, fairrank.DisparityObjective(0.1), opts); err != nil {
		t.Errorf("TrainFull: %v", err)
	}
	if _, err := fairrank.Train(d, scorer, fairrank.LogDiscountedDisparity(0.1, 0.5), opts); err != nil {
		t.Errorf("log-discounted: %v", err)
	}
	if _, err := fairrank.Train(d, scorer, fairrank.DisparateImpactObjective(0.1), opts); err != nil {
		t.Errorf("disparate impact: %v", err)
	}
	ens, err := fairrank.TrainEnsemble(d, scorer, fairrank.DisparityObjective(0.1), opts, 3)
	if err != nil {
		t.Fatalf("ensemble: %v", err)
	}
	if len(ens.Runs) != 3 {
		t.Errorf("ensemble runs = %d", len(ens.Runs))
	}
}

func TestPublicSyntheticGenerators(t *testing.T) {
	school, err := fairrank.GenerateSchool(func() fairrank.SchoolConfig {
		cfg := fairrank.DefaultSchoolConfig()
		cfg.N = 2000
		return cfg
	}())
	if err != nil {
		t.Fatal(err)
	}
	if school.N() != 2000 || school.NumFair() != 4 {
		t.Errorf("school shape: %d/%d", school.N(), school.NumFair())
	}
	compas, err := fairrank.GenerateCompas(func() fairrank.CompasConfig {
		cfg := fairrank.DefaultCompasConfig()
		cfg.N = 2000
		return cfg
	}())
	if err != nil {
		t.Fatal(err)
	}
	if !compas.HasOutcomes() {
		t.Error("compas should carry outcomes")
	}
	// Adverse training through the public API.
	opts := fairrank.DefaultOptions()
	opts.Polarity = fairrank.Adverse
	opts.SampleSize = 1000
	if _, err := fairrank.Train(compas, fairrank.WeightedSum{Weights: fairrank.CompasScoreWeights()},
		fairrank.FPRObjective(0.2), opts); err != nil {
		t.Errorf("adverse FPR training: %v", err)
	}
}

func TestPublicDeferredAcceptance(t *testing.T) {
	prefs := [][]int{{0}, {0}, {0}}
	schools := []fairrank.School{{Capacity: 2, Reserved: 1, Scores: []float64{9, 8, 7}}}
	disadvantaged := []bool{false, false, true}
	m, err := fairrank.DeferredAcceptance(prefs, schools, disadvantaged)
	if err != nil {
		t.Fatal(err)
	}
	if m.Assigned[2] != 0 {
		t.Errorf("reserved seat not honored: %v", m.Assigned)
	}
	if st, sc := fairrank.BlockingPair(prefs, schools, disadvantaged, m); st != -1 {
		t.Errorf("blocking pair (%d, %d)", st, sc)
	}
}

func TestPublicDatasetConstructor(t *testing.T) {
	d, err := fairrank.NewDataset([]string{"s"}, []string{"f"},
		[][]float64{{1, 2}}, [][]float64{{0, 1}}, []bool{true, false})
	if err != nil {
		t.Fatal(err)
	}
	if d.N() != 2 || !d.HasOutcomes() {
		t.Error("NewDataset lost data")
	}
	if _, err := fairrank.NewDataset([]string{"s"}, []string{"f"},
		[][]float64{{1}}, [][]float64{{2}}, nil); err == nil {
		t.Error("invalid fairness value: expected error")
	}
}
