package optimize

import (
	"math"
	"testing"
)

func TestAdamFirstStepIsSignedLR(t *testing.T) {
	// With bias correction, the very first Adam step has magnitude ≈ LR in
	// the direction of the gradient sign, regardless of gradient scale.
	for _, g := range []float64{0.001, 1, 1000} {
		a := NewAdam(1, 0.1)
		p := []float64{5}
		a.Step(p, []float64{g})
		if got := 5 - p[0]; math.Abs(got-0.1) > 1e-6 {
			t.Errorf("first step with grad %v moved %v, want ≈ 0.1", g, got)
		}
	}
	// Negative gradient moves the parameter up.
	a := NewAdam(1, 0.1)
	p := []float64{5}
	a.Step(p, []float64{-3})
	if p[0] <= 5 {
		t.Errorf("negative gradient should increase the parameter, got %v", p[0])
	}
}

func TestAdamConvergesOnQuadratic(t *testing.T) {
	// f(x) = (x-3)^2, grad = 2(x-3).
	a := NewAdam(1, 0.1)
	p := []float64{-4}
	for i := 0; i < 2000; i++ {
		a.Step(p, []float64{2 * (p[0] - 3)})
	}
	if math.Abs(p[0]-3) > 0.05 {
		t.Errorf("Adam ended at %v, want ≈ 3", p[0])
	}
	if a.Steps() != 2000 {
		t.Errorf("Steps() = %d, want 2000", a.Steps())
	}
}

func TestAdamPerParameterAdaptivity(t *testing.T) {
	// Two dimensions with wildly different gradient scales should both make
	// progress — the property the paper cites for choosing Adam.
	a := NewAdam(2, 0.05)
	p := []float64{10, 10}
	for i := 0; i < 1500; i++ {
		a.Step(p, []float64{1000 * (p[0] - 1), 0.001 * (p[1] - 1)})
	}
	if math.Abs(p[0]-1) > 0.1 {
		t.Errorf("large-gradient dimension at %v, want ≈ 1", p[0])
	}
	if p[1] >= 10 {
		t.Errorf("small-gradient dimension did not move: %v", p[1])
	}
}

func TestAdamResetClearsState(t *testing.T) {
	a := NewAdam(1, 0.1)
	p := []float64{0}
	a.Step(p, []float64{1})
	a.Reset()
	if a.Steps() != 0 {
		t.Errorf("Steps after reset = %d", a.Steps())
	}
	// After reset the next step behaves like a first step again.
	p2 := []float64{5}
	a.Step(p2, []float64{1e6})
	if got := 5 - p2[0]; math.Abs(got-0.1) > 1e-6 {
		t.Errorf("post-reset first step = %v, want ≈ 0.1", got)
	}
}

func TestAdamDimensionMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic on dimension mismatch")
		}
	}()
	NewAdam(2, 0.1).Step([]float64{1}, []float64{1})
}

func TestSGDStepAndMomentum(t *testing.T) {
	s := NewSGD(1, 0.5, 0)
	p := []float64{1}
	s.Step(p, []float64{2})
	if p[0] != 0 {
		t.Errorf("plain SGD step = %v, want 0", p[0])
	}
	// With momentum, a repeated unit gradient accelerates.
	m := NewSGD(1, 0.1, 0.9)
	q := []float64{0}
	m.Step(q, []float64{1})
	first := -q[0]
	m.Step(q, []float64{1})
	second := -q[0] - first
	if second <= first {
		t.Errorf("momentum did not accelerate: first %v, second %v", first, second)
	}
}

func TestLadderValidate(t *testing.T) {
	tests := []struct {
		name    string
		l       Ladder
		wantErr bool
	}{
		{"default", DefaultLadder(), false},
		{"empty", Ladder{}, true},
		{"zero rate", Ladder{{LR: 0, Steps: 10}}, true},
		{"zero steps", Ladder{{LR: 1, Steps: 0}}, true},
		{"non-decreasing", Ladder{{LR: 0.1, Steps: 1}, {LR: 1, Steps: 1}}, true},
		{"equal rates", Ladder{{LR: 1, Steps: 1}, {LR: 1, Steps: 1}}, true},
		{"single", Ladder{{LR: 0.5, Steps: 3}}, false},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.l.Validate()
			if (err != nil) != tc.wantErr {
				t.Errorf("Validate() error = %v, wantErr %t", err, tc.wantErr)
			}
		})
	}
	if got := DefaultLadder().TotalSteps(); got != 200 {
		t.Errorf("default ladder TotalSteps = %d, want 200", got)
	}
}

func TestNelderMeadQuadraticBowl(t *testing.T) {
	f := func(x []float64) float64 {
		return (x[0]-2)*(x[0]-2) + (x[1]+1)*(x[1]+1)
	}
	res := NelderMead(f, []float64{10, 10}, NelderMeadOptions{MaxIterations: 500, Tolerance: 1e-10})
	if !res.Converged {
		t.Fatalf("did not converge: %v", res)
	}
	if math.Abs(res.X[0]-2) > 1e-3 || math.Abs(res.X[1]+1) > 1e-3 {
		t.Errorf("minimum at %v, want (2, -1)", res.X)
	}
	if res.Evaluations <= 0 {
		t.Error("evaluation counter not incremented")
	}
}

func TestNelderMeadRespectsLowerBounds(t *testing.T) {
	// Unconstrained minimum at (-3, -3); the zero lower bound must pin the
	// solution at the origin.
	f := func(x []float64) float64 {
		return (x[0]+3)*(x[0]+3) + (x[1]+3)*(x[1]+3)
	}
	res := NelderMead(f, []float64{1, 1}, NelderMeadOptions{
		MaxIterations: 500,
		Lower:         []float64{0, 0},
	})
	for i, v := range res.X {
		if v < 0 {
			t.Errorf("X[%d] = %v violates lower bound", i, v)
		}
		if v > 0.05 {
			t.Errorf("X[%d] = %v, want ≈ 0", i, v)
		}
	}
}

func TestNelderMeadRosenbrock(t *testing.T) {
	f := func(x []float64) float64 {
		a := 1 - x[0]
		b := x[1] - x[0]*x[0]
		return a*a + 100*b*b
	}
	res := NelderMead(f, []float64{-1.2, 1}, NelderMeadOptions{MaxIterations: 5000, Tolerance: 1e-12, InitialStep: 0.5})
	if math.Abs(res.X[0]-1) > 0.01 || math.Abs(res.X[1]-1) > 0.01 {
		t.Errorf("Rosenbrock minimum at %v, want (1, 1); %v", res.X, res)
	}
}

func TestNelderMeadZeroDimensional(t *testing.T) {
	res := NelderMead(func([]float64) float64 { return 42 }, nil, NelderMeadOptions{})
	if res.F != 42 || !res.Converged {
		t.Errorf("zero-dim result = %+v", res)
	}
}
