package optimize

import (
	"fmt"
	"math"
)

// Adam implements the Adam update rule of Kingma & Ba with bias-corrected
// first and second moment estimates. DCA feeds it the (sample) disparity
// vector in place of a gradient.
type Adam struct {
	// LR is the base step size alpha. Beta1, Beta2 and Eps follow the
	// conventional defaults when zero (0.9, 0.999, 1e-8).
	LR    float64
	Beta1 float64
	Beta2 float64
	Eps   float64

	t int
	m []float64
	v []float64
}

// NewAdam returns an Adam optimizer for dim parameters with step size lr
// and standard defaults for the moment decay rates.
func NewAdam(dim int, lr float64) *Adam {
	return &Adam{
		LR:    lr,
		Beta1: 0.9,
		Beta2: 0.999,
		Eps:   1e-8,
		m:     make([]float64, dim),
		v:     make([]float64, dim),
	}
}

// Step applies one Adam update to params in place using grad as the descent
// direction (params ← params − step(grad)). It returns params. The lengths
// of params and grad must equal the dimension the optimizer was created
// with.
func (a *Adam) Step(params, grad []float64) []float64 {
	if len(params) != len(a.m) || len(grad) != len(a.m) {
		panic(fmt.Sprintf("optimize: Adam dimension mismatch: params=%d grad=%d state=%d", len(params), len(grad), len(a.m)))
	}
	b1, b2 := a.Beta1, a.Beta2
	if b1 == 0 {
		b1 = 0.9
	}
	if b2 == 0 {
		b2 = 0.999
	}
	eps := a.Eps
	if eps == 0 {
		eps = 1e-8
	}
	a.t++
	c1 := 1 - math.Pow(b1, float64(a.t))
	c2 := 1 - math.Pow(b2, float64(a.t))
	for i := range params {
		a.m[i] = b1*a.m[i] + (1-b1)*grad[i]
		a.v[i] = b2*a.v[i] + (1-b2)*grad[i]*grad[i]
		mHat := a.m[i] / c1
		vHat := a.v[i] / c2
		params[i] -= a.LR * mHat / (math.Sqrt(vHat) + eps)
	}
	return params
}

// Steps reports how many updates have been applied.
func (a *Adam) Steps() int { return a.t }

// Reset clears the moment estimates and the step counter.
func (a *Adam) Reset() {
	a.t = 0
	for i := range a.m {
		a.m[i] = 0
		a.v[i] = 0
	}
}
