// Package optimize provides the optimizers behind DCA: the Adam adaptive
// step rule used by the refinement pass (Algorithm 2), plain SGD with
// momentum, learning-rate ladders for the core pass (Algorithm 1), and a
// from-scratch Nelder-Mead simplex minimizer used as the derivative-free
// comparator the paper argues against (challenge #4: such methods re-rank
// the data hundreds of times).
package optimize
