package optimize

import (
	"fmt"
	"math"
	"sort"
)

// NelderMeadResult reports the outcome of a simplex minimization.
type NelderMeadResult struct {
	X           []float64 // best point found
	F           float64   // objective value at X
	Evaluations int       // number of objective evaluations (= dataset re-rankings in the DCA comparison)
	Iterations  int
	Converged   bool
}

// NelderMeadOptions tunes the simplex search. Zero values select the
// conventional coefficients.
type NelderMeadOptions struct {
	MaxIterations int     // default 400
	Tolerance     float64 // simplex f-spread convergence threshold, default 1e-6
	InitialStep   float64 // simplex edge length around the start point, default 1
	// Lower bounds the parameters elementwise (projected simplex); nil
	// disables. DCA's comparison uses a zero lower bound (bonuses >= 0).
	Lower []float64
}

// NelderMead minimizes f starting from x0 with the downhill simplex method
// (reflection/expansion/contraction/shrink). It exists as the
// derivative-free baseline of the paper's challenge #4: every evaluation of
// f re-ranks the dataset, and the ablation benchmark counts exactly how
// many evaluations the simplex needs compared to DCA's fixed sample budget.
func NelderMead(f func([]float64) float64, x0 []float64, opts NelderMeadOptions) NelderMeadResult {
	n := len(x0)
	if n == 0 {
		return NelderMeadResult{X: nil, F: f(nil), Evaluations: 1, Converged: true}
	}
	maxIter := opts.MaxIterations
	if maxIter == 0 {
		maxIter = 400
	}
	tol := opts.Tolerance
	if tol == 0 {
		tol = 1e-6
	}
	step := opts.InitialStep
	if step == 0 {
		step = 1
	}
	project := func(x []float64) []float64 {
		if opts.Lower != nil {
			for i := range x {
				if x[i] < opts.Lower[i] {
					x[i] = opts.Lower[i]
				}
			}
		}
		return x
	}

	evals := 0
	eval := func(x []float64) float64 {
		evals++
		return f(x)
	}

	// Build the initial simplex: x0 plus one perturbed vertex per axis.
	simplex := make([][]float64, n+1)
	fvals := make([]float64, n+1)
	simplex[0] = project(append([]float64(nil), x0...))
	fvals[0] = eval(simplex[0])
	for i := 1; i <= n; i++ {
		v := append([]float64(nil), x0...)
		v[i-1] += step
		simplex[i] = project(v)
		fvals[i] = eval(simplex[i])
	}

	const (
		alpha = 1.0 // reflection
		gamma = 2.0 // expansion
		rho   = 0.5 // contraction
		sigma = 0.5 // shrink
	)

	order := make([]int, n+1)
	centroid := make([]float64, n)
	var iter int
	for iter = 0; iter < maxIter; iter++ {
		for i := range order {
			order[i] = i
		}
		sort.Slice(order, func(a, b int) bool { return fvals[order[a]] < fvals[order[b]] })
		best, worst := order[0], order[n]
		if math.Abs(fvals[worst]-fvals[best]) < tol {
			return NelderMeadResult{
				X: append([]float64(nil), simplex[best]...), F: fvals[best],
				Evaluations: evals, Iterations: iter, Converged: true,
			}
		}
		// Centroid of all but the worst vertex.
		for j := range centroid {
			centroid[j] = 0
		}
		for _, i := range order[:n] {
			for j := range centroid {
				centroid[j] += simplex[i][j]
			}
		}
		for j := range centroid {
			centroid[j] /= float64(n)
		}
		combine := func(a float64) []float64 {
			v := make([]float64, n)
			for j := range v {
				v[j] = centroid[j] + a*(centroid[j]-simplex[worst][j])
			}
			return project(v)
		}
		reflected := combine(alpha)
		fr := eval(reflected)
		switch {
		case fr < fvals[best]:
			expanded := combine(gamma)
			fe := eval(expanded)
			if fe < fr {
				simplex[worst], fvals[worst] = expanded, fe
			} else {
				simplex[worst], fvals[worst] = reflected, fr
			}
		case fr < fvals[order[n-1]]:
			simplex[worst], fvals[worst] = reflected, fr
		default:
			contracted := combine(-rho)
			fc := eval(contracted)
			if fc < fvals[worst] {
				simplex[worst], fvals[worst] = contracted, fc
			} else {
				// Shrink toward the best vertex.
				for _, i := range order[1:] {
					for j := range simplex[i] {
						simplex[i][j] = simplex[best][j] + sigma*(simplex[i][j]-simplex[best][j])
					}
					project(simplex[i])
					fvals[i] = eval(simplex[i])
				}
			}
		}
	}
	bi := 0
	for i, v := range fvals {
		if v < fvals[bi] {
			bi = i
		}
		_ = v
	}
	return NelderMeadResult{
		X: append([]float64(nil), simplex[bi]...), F: fvals[bi],
		Evaluations: evals, Iterations: iter, Converged: false,
	}
}

// String implements fmt.Stringer for quick experiment logs.
func (r NelderMeadResult) String() string {
	return fmt.Sprintf("f=%.6g evals=%d iters=%d converged=%t", r.F, r.Evaluations, r.Iterations, r.Converged)
}
