package optimize

import "fmt"

// SGD is plain stochastic gradient descent with optional momentum. The core
// DCA pass (Algorithm 1) is SGD with zero momentum and a fixed step per
// ladder stage; the momentum variant is provided for ablations.
type SGD struct {
	LR       float64
	Momentum float64

	vel []float64
}

// NewSGD returns an SGD optimizer for dim parameters.
func NewSGD(dim int, lr, momentum float64) *SGD {
	return &SGD{LR: lr, Momentum: momentum, vel: make([]float64, dim)}
}

// Step applies params ← params − lr*grad (with momentum when configured)
// in place and returns params.
func (s *SGD) Step(params, grad []float64) []float64 {
	if len(params) != len(s.vel) || len(grad) != len(s.vel) {
		panic(fmt.Sprintf("optimize: SGD dimension mismatch: params=%d grad=%d state=%d", len(params), len(grad), len(s.vel)))
	}
	for i := range params {
		s.vel[i] = s.Momentum*s.vel[i] + s.LR*grad[i]
		params[i] -= s.vel[i]
	}
	return params
}

// Stage is one rung of a learning-rate ladder: Steps updates at rate LR.
type Stage struct {
	LR    float64
	Steps int
}

// Ladder is the decreasing sequence of learning rates of Algorithm 1. The
// paper's default is {1.0 × 100 steps, 0.1 × 100 steps}.
type Ladder []Stage

// DefaultLadder returns the paper's empirical setting.
func DefaultLadder() Ladder {
	return Ladder{{LR: 1.0, Steps: 100}, {LR: 0.1, Steps: 100}}
}

// TotalSteps returns the number of updates the ladder performs.
func (l Ladder) TotalSteps() int {
	var n int
	for _, s := range l {
		n += s.Steps
	}
	return n
}

// Validate checks that rates are positive and decreasing and step counts
// positive.
func (l Ladder) Validate() error {
	if len(l) == 0 {
		return fmt.Errorf("optimize: empty learning-rate ladder")
	}
	prev := 0.0
	for i, s := range l {
		if s.LR <= 0 {
			return fmt.Errorf("optimize: ladder stage %d has rate %v", i, s.LR)
		}
		if s.Steps <= 0 {
			return fmt.Errorf("optimize: ladder stage %d has %d steps", i, s.Steps)
		}
		if i > 0 && s.LR >= prev {
			return fmt.Errorf("optimize: ladder rates must decrease: stage %d has %v after %v", i, s.LR, prev)
		}
		prev = s.LR
	}
	return nil
}
