package stats

import (
	"math"
	"sort"
)

// Pearson returns the Pearson correlation coefficient of xs and ys, which
// must have equal length. It returns 0 when either input has zero variance
// or fewer than two points.
func Pearson(xs, ys []float64) float64 {
	n := len(xs)
	if n < 2 || n != len(ys) {
		return 0
	}
	mx := Mean(xs)
	my := Mean(ys)
	var sxy, sxx, syy float64
	for i := range xs {
		dx := xs[i] - mx
		dy := ys[i] - my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return 0
	}
	return sxy / math.Sqrt(sxx*syy)
}

// Spearman returns the Spearman rank correlation of xs and ys (Pearson
// correlation of the mid-ranks, robust to monotone transformations).
func Spearman(xs, ys []float64) float64 {
	return Pearson(Ranks(xs), Ranks(ys))
}

// Ranks returns the 1-based mid-ranks of xs: ties receive the average of
// the ranks they span.
func Ranks(xs []float64) []float64 {
	n := len(xs)
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return xs[idx[a]] < xs[idx[b]] })
	ranks := make([]float64, n)
	for i := 0; i < n; {
		j := i
		for j+1 < n && xs[idx[j+1]] == xs[idx[i]] {
			j++
		}
		// Average rank of the tie block [i, j].
		avg := float64(i+j)/2 + 1
		for k := i; k <= j; k++ {
			ranks[idx[k]] = avg
		}
		i = j + 1
	}
	return ranks
}
