package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNormalCDFKnownValues(t *testing.T) {
	n := StdNormal
	tests := []struct {
		x, want float64
	}{
		{0, 0.5},
		{1.959963985, 0.975},
		{-1.959963985, 0.025},
		{1, 0.8413447461},
		{-3, 0.0013498980},
	}
	for _, tc := range tests {
		if got := n.CDF(tc.x); !almostEqual(got, tc.want, 1e-8) {
			t.Errorf("CDF(%v) = %.10f, want %.10f", tc.x, got, tc.want)
		}
	}
}

func TestNormalQuantileRoundTrip(t *testing.T) {
	n := Normal{Mu: 2, Sigma: 3}
	for p := 0.001; p < 1; p += 0.013 {
		x := n.Quantile(p)
		if got := n.CDF(x); !almostEqual(got, p, 1e-9) {
			t.Errorf("CDF(Quantile(%v)) = %v", p, got)
		}
	}
	if !math.IsInf(n.Quantile(0), -1) || !math.IsInf(n.Quantile(1), 1) {
		t.Error("Quantile(0)/Quantile(1) should be infinite")
	}
	if !math.IsNaN(n.Quantile(-0.1)) || !math.IsNaN(n.Quantile(1.1)) {
		t.Error("Quantile outside [0,1] should be NaN")
	}
}

func TestNormalPDFIntegratesToCDF(t *testing.T) {
	n := Normal{Mu: -1, Sigma: 0.5}
	// Trapezoidal integration of the PDF from far left to 0.
	const steps = 20000
	lo, hi := -6.0, 0.0
	h := (hi - lo) / steps
	var area float64
	for i := 0; i <= steps; i++ {
		w := 1.0
		if i == 0 || i == steps {
			w = 0.5
		}
		area += w * n.PDF(lo+float64(i)*h)
	}
	area *= h
	if want := n.CDF(hi) - n.CDF(lo); !almostEqual(area, want, 1e-6) {
		t.Errorf("integral = %v, CDF difference = %v", area, want)
	}
}

func TestNormalSampleMoments(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	n := Normal{Mu: 10, Sigma: 2}
	xs := make([]float64, 50000)
	for i := range xs {
		xs[i] = n.Sample(rng)
	}
	m, v := MeanVar(xs)
	if !almostEqual(m, 10, 0.05) {
		t.Errorf("sample mean = %v, want ≈ 10", m)
	}
	if !almostEqual(math.Sqrt(v), 2, 0.05) {
		t.Errorf("sample sd = %v, want ≈ 2", math.Sqrt(v))
	}
}

func TestBinomialPMFSumsToOne(t *testing.T) {
	for _, b := range []Binomial{{N: 10, P: 0.3}, {N: 50, P: 0.07}, {N: 1, P: 0.99}, {N: 200, P: 0.5}} {
		var sum float64
		for k := 0; k <= b.N; k++ {
			sum += b.PMF(k)
		}
		if !almostEqual(sum, 1, 1e-9) {
			t.Errorf("PMF(%+v) sums to %v", b, sum)
		}
	}
}

func TestBinomialDegenerate(t *testing.T) {
	b := Binomial{N: 5, P: 0}
	if b.PMF(0) != 1 || b.PMF(1) != 0 {
		t.Error("P=0 should concentrate at k=0")
	}
	b = Binomial{N: 5, P: 1}
	if b.PMF(5) != 1 || b.PMF(4) != 0 {
		t.Error("P=1 should concentrate at k=N")
	}
	if b.PMF(-1) != 0 || b.PMF(6) != 0 {
		t.Error("PMF outside support should be 0")
	}
}

func TestBinomialCDFMonotoneAndQuantileInverse(t *testing.T) {
	b := Binomial{N: 40, P: 0.22}
	prev := -1.0
	for k := -1; k <= b.N; k++ {
		c := b.CDF(k)
		if c < prev-1e-12 {
			t.Fatalf("CDF not monotone at %d: %v < %v", k, c, prev)
		}
		prev = c
	}
	if b.CDF(b.N) != 1 {
		t.Errorf("CDF(N) = %v, want 1", b.CDF(b.N))
	}
	for _, alpha := range []float64{0.01, 0.1, 0.5, 0.9} {
		q, err := b.Quantile(alpha)
		if err != nil {
			t.Fatal(err)
		}
		if b.CDF(q) < alpha {
			t.Errorf("CDF(Quantile(%v)) = %v < %v", alpha, b.CDF(q), alpha)
		}
		if q > 0 && b.CDF(q-1) >= alpha {
			t.Errorf("Quantile(%v) = %d is not minimal", alpha, q)
		}
	}
	if _, err := b.Quantile(-0.5); err == nil {
		t.Error("Quantile(-0.5): expected error")
	}
}

func TestBinomialMoments(t *testing.T) {
	b := Binomial{N: 30, P: 0.4}
	var mean, second float64
	for k := 0; k <= b.N; k++ {
		p := b.PMF(k)
		mean += float64(k) * p
		second += float64(k) * float64(k) * p
	}
	if !almostEqual(mean, b.Mean(), 1e-9) {
		t.Errorf("empirical mean %v vs Mean() %v", mean, b.Mean())
	}
	if v := second - mean*mean; !almostEqual(v, b.Variance(), 1e-8) {
		t.Errorf("empirical variance %v vs Variance() %v", v, b.Variance())
	}
}

func TestMultinomialCDFMatchesBinomialWhenTwoGroups(t *testing.T) {
	// With two categories, P(X_1 <= c) must equal the binomial CDF.
	m := Multinomial{N: 25, P: []float64{0.3, 0.7}}
	b := Binomial{N: 25, P: 0.3}
	for c := 0; c <= 25; c += 3 {
		got, err := m.CDF([]int{c, 25})
		if err != nil {
			t.Fatal(err)
		}
		if want := b.CDF(c); !almostEqual(got, want, 1e-9) {
			t.Errorf("CDF([%d, n]) = %v, want binomial %v", c, got, want)
		}
	}
}

func TestMultinomialCDFAgainstMonteCarlo(t *testing.T) {
	m := Multinomial{N: 30, P: []float64{0.5, 0.3, 0.15, 0.05}}
	bounds := []int{30, 10, 5, 2}
	exact, err := m.CDF(bounds)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(11))
	const trials = 200000
	hits := 0
	counts := make([]int, 4)
	for tr := 0; tr < trials; tr++ {
		for i := range counts {
			counts[i] = 0
		}
		for i := 0; i < m.N; i++ {
			u := rng.Float64()
			switch {
			case u < 0.5:
				counts[0]++
			case u < 0.8:
				counts[1]++
			case u < 0.95:
				counts[2]++
			default:
				counts[3]++
			}
		}
		ok := true
		for g, c := range counts {
			if c > bounds[g] {
				ok = false
				break
			}
		}
		if ok {
			hits++
		}
	}
	mc := float64(hits) / trials
	if !almostEqual(exact, mc, 0.01) {
		t.Errorf("exact CDF %v vs Monte Carlo %v", exact, mc)
	}
}

func TestMultinomialCDFEdges(t *testing.T) {
	m := Multinomial{N: 10, P: []float64{0.6, 0.4}}
	if p, err := m.CDF([]int{10, 10}); err != nil || !almostEqual(p, 1, 1e-12) {
		t.Errorf("unconstrained CDF = %v, %v; want 1", p, err)
	}
	if p, err := m.CDF([]int{-1, 10}); err != nil || p != 0 {
		t.Errorf("negative bound CDF = %v, %v; want 0", p, err)
	}
	if _, err := m.CDF([]int{1}); err == nil {
		t.Error("bound length mismatch: expected error")
	}
	bad := Multinomial{N: 10, P: []float64{0.6, 0.6}}
	if _, err := bad.CDF([]int{5, 5}); err == nil {
		t.Error("probabilities not summing to 1: expected error")
	}
}

func TestMultinomialPMF(t *testing.T) {
	m := Multinomial{N: 4, P: []float64{0.5, 0.5}}
	p, err := m.PMF([]int{2, 2})
	if err != nil {
		t.Fatal(err)
	}
	// C(4,2) * 0.5^4 = 6/16
	if !almostEqual(p, 0.375, 1e-12) {
		t.Errorf("PMF([2 2]) = %v, want 0.375", p)
	}
	if p, _ := m.PMF([]int{1, 2}); p != 0 {
		t.Errorf("PMF with wrong total = %v, want 0", p)
	}
	if p, _ := m.PMF([]int{-1, 5}); p != 0 {
		t.Errorf("PMF with negative count = %v, want 0", p)
	}
}

// The multinomial PMF must sum to one over the full simplex.
func TestMultinomialPMFSumsToOne(t *testing.T) {
	m := Multinomial{N: 12, P: []float64{0.2, 0.5, 0.3}}
	var sum float64
	for a := 0; a <= m.N; a++ {
		for b := 0; a+b <= m.N; b++ {
			p, err := m.PMF([]int{a, b, m.N - a - b})
			if err != nil {
				t.Fatal(err)
			}
			sum += p
		}
	}
	if !almostEqual(sum, 1, 1e-9) {
		t.Errorf("PMF sums to %v", sum)
	}
}

// CDF must be monotone in every bound.
func TestMultinomialCDFMonotoneProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := []float64{0.4, 0.35, 0.25}
		n := 5 + rng.Intn(20)
		m := Multinomial{N: n, P: p}
		c := []int{rng.Intn(n + 1), rng.Intn(n + 1), rng.Intn(n + 1)}
		base, err := m.CDF(c)
		if err != nil {
			return false
		}
		for g := range c {
			c2 := append([]int(nil), c...)
			c2[g]++
			higher, err := m.CDF(c2)
			if err != nil {
				return false
			}
			if higher < base-1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
