package stats

import (
	"errors"
	"math"
	"sort"
)

// ErrEmpty is returned by statistics that are undefined on empty inputs.
var ErrEmpty = errors.New("stats: empty input")

// Sum returns the sum of xs.
func Sum(xs []float64) float64 {
	var s float64
	for _, x := range xs {
		s += x
	}
	return s
}

// Mean returns the arithmetic mean of xs. It returns 0 for empty input.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	return Sum(xs) / float64(len(xs))
}

// MeanVar returns the mean and the unbiased sample variance of xs in a
// single pass (Welford's algorithm). Variance is 0 when len(xs) < 2.
func MeanVar(xs []float64) (mean, variance float64) {
	var m, m2 float64
	for i, x := range xs {
		delta := x - m
		m += delta / float64(i+1)
		m2 += delta * (x - m)
	}
	if len(xs) < 2 {
		return m, 0
	}
	return m, m2 / float64(len(xs)-1)
}

// Variance returns the unbiased sample variance of xs.
func Variance(xs []float64) float64 {
	_, v := MeanVar(xs)
	return v
}

// StdDev returns the unbiased sample standard deviation of xs.
func StdDev(xs []float64) float64 {
	return math.Sqrt(Variance(xs))
}

// MinMax returns the smallest and largest values in xs. It returns
// (0, 0, ErrEmpty) for empty input.
func MinMax(xs []float64) (lo, hi float64, err error) {
	if len(xs) == 0 {
		return 0, 0, ErrEmpty
	}
	lo, hi = xs[0], xs[0]
	for _, x := range xs[1:] {
		if x < lo {
			lo = x
		}
		if x > hi {
			hi = x
		}
	}
	return lo, hi, nil
}

// Quantile returns the q-quantile (0 <= q <= 1) of xs using linear
// interpolation between order statistics (the "type 7" estimator used by
// most statistical environments). The input is copied and sorted.
func Quantile(xs []float64, q float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	return QuantileSorted(sorted, q)
}

// QuantileSorted is Quantile for already-sorted ascending input.
func QuantileSorted(sorted []float64, q float64) (float64, error) {
	n := len(sorted)
	if n == 0 {
		return 0, ErrEmpty
	}
	if math.IsNaN(q) {
		return 0, errors.New("stats: NaN quantile")
	}
	if q <= 0 {
		return sorted[0], nil
	}
	if q >= 1 {
		return sorted[n-1], nil
	}
	pos := q * float64(n-1)
	lo := int(math.Floor(pos))
	frac := pos - float64(lo)
	if lo+1 >= n {
		return sorted[n-1], nil
	}
	return sorted[lo]*(1-frac) + sorted[lo+1]*frac, nil
}

// Clamp limits v to the closed interval [lo, hi].
func Clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// Norm2 returns the L2 norm of v (the magnitude used to summarize the
// disparity vector).
func Norm2(v []float64) float64 {
	var s float64
	for _, x := range v {
		s += x * x
	}
	return math.Sqrt(s)
}

// Dot returns the inner product of a and b, which must have equal length.
func Dot(a, b []float64) float64 {
	var s float64
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}
