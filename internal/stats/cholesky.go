package stats

import (
	"fmt"
	"math"
	"math/rand"
)

// Cholesky returns the lower-triangular factor L of the symmetric
// positive-definite matrix a (row major, n x n) such that L L^T = a. The
// synthetic data generators use it to draw correlated latent traits
// (academic ability, poverty exposure, language status).
func Cholesky(a [][]float64) ([][]float64, error) {
	n := len(a)
	for i, row := range a {
		if len(row) != n {
			return nil, fmt.Errorf("stats: cholesky row %d has %d columns, want %d", i, len(row), n)
		}
	}
	l := make([][]float64, n)
	for i := range l {
		l[i] = make([]float64, n)
	}
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			sum := a[i][j]
			for k := 0; k < j; k++ {
				sum -= l[i][k] * l[j][k]
			}
			if i == j {
				if sum <= 0 {
					return nil, fmt.Errorf("stats: cholesky pivot %d is %v; matrix not positive definite", i, sum)
				}
				l[i][j] = math.Sqrt(sum)
			} else {
				l[i][j] = sum / l[j][j]
			}
		}
	}
	return l, nil
}

// CorrelatedNormals draws standard normal vectors whose correlation matrix
// is corr. The zero value is not usable; construct with NewCorrelatedNormals.
type CorrelatedNormals struct {
	l [][]float64
	z []float64
}

// NewCorrelatedNormals factors the correlation matrix once so that each
// Sample costs O(d^2).
func NewCorrelatedNormals(corr [][]float64) (*CorrelatedNormals, error) {
	l, err := Cholesky(corr)
	if err != nil {
		return nil, err
	}
	return &CorrelatedNormals{l: l, z: make([]float64, len(corr))}, nil
}

// Sample fills dst (length d) with one correlated standard normal draw and
// returns it. Not safe for concurrent use.
func (c *CorrelatedNormals) Sample(rng *rand.Rand, dst []float64) []float64 {
	d := len(c.l)
	for i := 0; i < d; i++ {
		c.z[i] = rng.NormFloat64()
	}
	for i := 0; i < d; i++ {
		var s float64
		for k := 0; k <= i; k++ {
			s += c.l[i][k] * c.z[k]
		}
		dst[i] = s
	}
	return dst
}
