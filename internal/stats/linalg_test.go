package stats

import (
	"math"
	"math/rand"
	"testing"
)

func TestCholeskyReconstructs(t *testing.T) {
	a := [][]float64{
		{4, 2, 0.6},
		{2, 3, 0.4},
		{0.6, 0.4, 2},
	}
	l, err := Cholesky(a)
	if err != nil {
		t.Fatal(err)
	}
	n := len(a)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			var s float64
			for k := 0; k < n; k++ {
				s += l[i][k] * l[j][k]
			}
			if !almostEqual(s, a[i][j], 1e-9) {
				t.Errorf("(LL^T)[%d][%d] = %v, want %v", i, j, s, a[i][j])
			}
		}
	}
	// Upper triangle must be zero.
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if l[i][j] != 0 {
				t.Errorf("L[%d][%d] = %v, want 0", i, j, l[i][j])
			}
		}
	}
}

func TestCholeskyRejectsNonPD(t *testing.T) {
	if _, err := Cholesky([][]float64{{1, 2}, {2, 1}}); err == nil {
		t.Error("indefinite matrix: expected error")
	}
	if _, err := Cholesky([][]float64{{1, 0}, {0}}); err == nil {
		t.Error("ragged matrix: expected error")
	}
	if _, err := Cholesky([][]float64{{0}}); err == nil {
		t.Error("zero pivot: expected error")
	}
}

func TestCorrelatedNormalsAchieveTargetCorrelation(t *testing.T) {
	corr := [][]float64{
		{1, 0.7},
		{0.7, 1},
	}
	cn, err := NewCorrelatedNormals(corr)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(21))
	const n = 40000
	xs := make([]float64, n)
	ys := make([]float64, n)
	v := make([]float64, 2)
	for i := 0; i < n; i++ {
		cn.Sample(rng, v)
		xs[i], ys[i] = v[0], v[1]
	}
	if r := Pearson(xs, ys); !almostEqual(r, 0.7, 0.02) {
		t.Errorf("sample correlation = %v, want ≈ 0.7", r)
	}
	mx, vx := MeanVar(xs)
	if !almostEqual(mx, 0, 0.03) || !almostEqual(vx, 1, 0.05) {
		t.Errorf("marginal not standard normal: mean=%v var=%v", mx, vx)
	}
}

func TestPearsonKnownCases(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	if r := Pearson(xs, xs); !almostEqual(r, 1, 1e-12) {
		t.Errorf("self correlation = %v, want 1", r)
	}
	neg := []float64{5, 4, 3, 2, 1}
	if r := Pearson(xs, neg); !almostEqual(r, -1, 1e-12) {
		t.Errorf("reversed correlation = %v, want -1", r)
	}
	if r := Pearson(xs, []float64{2, 2, 2, 2, 2}); r != 0 {
		t.Errorf("zero-variance correlation = %v, want 0", r)
	}
	if r := Pearson(xs, xs[:3]); r != 0 {
		t.Errorf("length mismatch correlation = %v, want 0", r)
	}
}

func TestSpearmanMonotoneTransformInvariance(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	xs := make([]float64, 500)
	ys := make([]float64, 500)
	for i := range xs {
		xs[i] = rng.NormFloat64()
		ys[i] = math.Exp(xs[i]) // strictly monotone transform
	}
	if r := Spearman(xs, ys); !almostEqual(r, 1, 1e-12) {
		t.Errorf("Spearman of monotone transform = %v, want 1", r)
	}
}

func TestRanksWithTies(t *testing.T) {
	got := Ranks([]float64{10, 20, 20, 30})
	want := []float64{1, 2.5, 2.5, 4}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Ranks = %v, want %v", got, want)
		}
	}
}

func TestKSSameDistribution(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	a := make([]float64, 3000)
	b := make([]float64, 3000)
	for i := range a {
		a[i] = rng.NormFloat64()
		b[i] = rng.NormFloat64()
	}
	d, p := KSTwoSample(a, b)
	if d > 0.05 {
		t.Errorf("KS statistic %v too large for same distribution", d)
	}
	if p < 0.01 {
		t.Errorf("KS p-value %v rejects same distribution", p)
	}
}

func TestKSDifferentDistributions(t *testing.T) {
	rng := rand.New(rand.NewSource(45))
	a := make([]float64, 2000)
	b := make([]float64, 2000)
	for i := range a {
		a[i] = rng.NormFloat64()
		b[i] = rng.NormFloat64() + 0.5
	}
	d, p := KSTwoSample(a, b)
	if d < 0.1 {
		t.Errorf("KS statistic %v too small for shifted distributions", d)
	}
	if p > 1e-6 {
		t.Errorf("KS p-value %v fails to reject shifted distributions", p)
	}
}

func TestKSEmptyInputs(t *testing.T) {
	if d, p := KSTwoSample(nil, []float64{1}); d != 0 || p != 1 {
		t.Errorf("KS with empty input = (%v, %v), want (0, 1)", d, p)
	}
}

func TestHistogram(t *testing.T) {
	counts, width := Histogram([]float64{0.1, 0.2, 0.9, -5, 99}, 0, 1, 4)
	if width != 0.25 {
		t.Errorf("width = %v, want 0.25", width)
	}
	// -5 clamps into bin 0; 99 clamps into bin 3.
	want := []int{3, 0, 0, 2}
	for i := range want {
		if counts[i] != want[i] {
			t.Fatalf("counts = %v, want %v", counts, want)
		}
	}
	counts, width = Histogram([]float64{1}, 1, 1, 3)
	if width != 0 || len(counts) != 3 {
		t.Errorf("degenerate range: counts=%v width=%v", counts, width)
	}
}
