package stats

import (
	"fmt"
	"math"
)

// Multinomial is the joint distribution of category counts when N items are
// assigned independently to len(P) categories with probabilities P (which
// must sum to 1). It backs the multinomial ranked-group-fairness test of
// the Multinomial FA*IR baseline (Zehlike et al. 2022).
type Multinomial struct {
	N int
	P []float64
}

// Validate checks that the probability vector is well formed.
func (m Multinomial) Validate() error {
	if m.N < 0 {
		return fmt.Errorf("stats: multinomial with negative N %d", m.N)
	}
	var s float64
	for _, p := range m.P {
		if math.IsNaN(p) || p < 0 || p > 1 {
			return fmt.Errorf("stats: multinomial probability %v outside [0,1]", p)
		}
		s += p
	}
	if math.Abs(s-1) > 1e-9 {
		return fmt.Errorf("stats: multinomial probabilities sum to %v, want 1", s)
	}
	return nil
}

// CDF returns P(X_g <= c_g for every category g), the rectangular
// ("all counts at most c") multinomial CDF.
//
// The computation uses the sequential-binomial decomposition of the
// multinomial: X_1 ~ Bin(N, p_1), and conditionally on the first g-1 counts
// the next one is Bin(remaining, p_g / (p_g + ... + p_G)). A dynamic program
// over the number of items still unassigned makes the cost O(G * N^2),
// which is what lets the FA*IR baseline test every ranking prefix exactly
// instead of resorting to Monte Carlo.
func (m Multinomial) CDF(c []int) (float64, error) {
	if err := m.Validate(); err != nil {
		return 0, err
	}
	if len(c) != len(m.P) {
		return 0, fmt.Errorf("stats: CDF with %d bounds for %d categories", len(c), len(m.P))
	}
	g := len(m.P)
	if g == 0 {
		return 1, nil
	}
	// tail[j] = p_j + p_{j+1} + ... + p_{G-1}
	tail := make([]float64, g+1)
	for j := g - 1; j >= 0; j-- {
		tail[j] = tail[j+1] + m.P[j]
	}
	// cur[rem] = probability that the first j categories respect their
	// bounds and leave exactly rem items for the remaining categories.
	cur := make([]float64, m.N+1)
	next := make([]float64, m.N+1)
	cur[m.N] = 1
	for j := 0; j < g-1; j++ {
		for i := range next {
			next[i] = 0
		}
		var q float64
		if tail[j] > 0 {
			q = m.P[j] / tail[j]
		}
		for rem := 0; rem <= m.N; rem++ {
			pr := cur[rem]
			if pr == 0 {
				continue
			}
			b := Binomial{N: rem, P: q}
			hi := c[j]
			if hi > rem {
				hi = rem
			}
			if hi < 0 {
				continue
			}
			// Incremental PMF walk: pmf(x+1) = pmf(x) * (rem-x)/(x+1) * q/(1-q).
			pmf := b.PMF(0)
			for x := 0; x <= hi; x++ {
				next[rem-x] += pr * pmf
				if x < hi {
					if q >= 1 {
						pmf = 0
						if x+1 == rem {
							pmf = 1 // all mass at x = rem when q = 1
						}
					} else {
						pmf *= float64(rem-x) / float64(x+1) * q / (1 - q)
					}
				}
			}
		}
		cur, next = next, cur
	}
	// Everything still unassigned lands in the last category.
	var total float64
	for rem := 0; rem <= m.N && rem <= c[g-1]; rem++ {
		total += cur[rem]
	}
	if total > 1 {
		total = 1
	}
	return total, nil
}

// PMF returns the joint probability of the exact count vector c, which must
// sum to N.
func (m Multinomial) PMF(c []int) (float64, error) {
	if err := m.Validate(); err != nil {
		return 0, err
	}
	if len(c) != len(m.P) {
		return 0, fmt.Errorf("stats: PMF with %d counts for %d categories", len(c), len(m.P))
	}
	sum := 0
	for _, v := range c {
		if v < 0 {
			return 0, nil
		}
		sum += v
	}
	if sum != m.N {
		return 0, nil
	}
	lg := func(v float64) float64 {
		r, _ := math.Lgamma(v)
		return r
	}
	logp := lg(float64(m.N) + 1)
	for g, v := range c {
		if m.P[g] == 0 {
			if v != 0 {
				return 0, nil
			}
			continue
		}
		logp += float64(v)*math.Log(m.P[g]) - lg(float64(v)+1)
	}
	return math.Exp(logp), nil
}
