package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol
}

func TestMean(t *testing.T) {
	tests := []struct {
		name string
		in   []float64
		want float64
	}{
		{"empty", nil, 0},
		{"single", []float64{3}, 3},
		{"pair", []float64{1, 3}, 2},
		{"negatives", []float64{-2, -4, -6}, -4},
		{"mixed", []float64{-1, 0, 1}, 0},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			if got := Mean(tc.in); !almostEqual(got, tc.want, 1e-12) {
				t.Errorf("Mean(%v) = %v, want %v", tc.in, got, tc.want)
			}
		})
	}
}

func TestMeanVarMatchesTwoPass(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	xs := make([]float64, 1000)
	for i := range xs {
		xs[i] = rng.NormFloat64()*3 + 7
	}
	m, v := MeanVar(xs)
	// Two-pass reference.
	var sum float64
	for _, x := range xs {
		sum += x
	}
	refMean := sum / float64(len(xs))
	var ss float64
	for _, x := range xs {
		ss += (x - refMean) * (x - refMean)
	}
	refVar := ss / float64(len(xs)-1)
	if !almostEqual(m, refMean, 1e-9) {
		t.Errorf("mean = %v, want %v", m, refMean)
	}
	if !almostEqual(v, refVar, 1e-9) {
		t.Errorf("variance = %v, want %v", v, refVar)
	}
}

func TestVarianceEdgeCases(t *testing.T) {
	if v := Variance(nil); v != 0 {
		t.Errorf("Variance(nil) = %v, want 0", v)
	}
	if v := Variance([]float64{5}); v != 0 {
		t.Errorf("Variance(single) = %v, want 0", v)
	}
	if v := Variance([]float64{2, 2, 2, 2}); !almostEqual(v, 0, 1e-12) {
		t.Errorf("Variance(constant) = %v, want 0", v)
	}
}

func TestMinMax(t *testing.T) {
	lo, hi, err := MinMax([]float64{3, -1, 4, -1, 5})
	if err != nil {
		t.Fatal(err)
	}
	if lo != -1 || hi != 5 {
		t.Errorf("MinMax = (%v, %v), want (-1, 5)", lo, hi)
	}
	if _, _, err := MinMax(nil); err == nil {
		t.Error("MinMax(nil): expected error")
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	tests := []struct {
		q    float64
		want float64
	}{
		{0, 1}, {1, 5}, {0.5, 3}, {0.25, 2}, {0.75, 4}, {0.125, 1.5},
	}
	for _, tc := range tests {
		got, err := Quantile(xs, tc.q)
		if err != nil {
			t.Fatal(err)
		}
		if !almostEqual(got, tc.want, 1e-12) {
			t.Errorf("Quantile(%v) = %v, want %v", tc.q, got, tc.want)
		}
	}
	if _, err := Quantile(nil, 0.5); err == nil {
		t.Error("Quantile(empty): expected error")
	}
	if _, err := Quantile(xs, math.NaN()); err == nil {
		t.Error("Quantile(NaN): expected error")
	}
}

// Quantiles must be monotone in q and bounded by the sample extremes.
func TestQuantileMonotoneProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(50)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = rng.NormFloat64()
		}
		prev := math.Inf(-1)
		for q := 0.0; q <= 1.0; q += 0.05 {
			v, err := Quantile(xs, q)
			if err != nil {
				return false
			}
			if v < prev {
				return false
			}
			prev = v
		}
		lo, hi, _ := MinMax(xs)
		first, _ := Quantile(xs, 0)
		last, _ := Quantile(xs, 1)
		return first == lo && last == hi
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestClamp(t *testing.T) {
	if got := Clamp(5, 0, 1); got != 1 {
		t.Errorf("Clamp(5,0,1) = %v", got)
	}
	if got := Clamp(-5, 0, 1); got != 0 {
		t.Errorf("Clamp(-5,0,1) = %v", got)
	}
	if got := Clamp(0.5, 0, 1); got != 0.5 {
		t.Errorf("Clamp(0.5,0,1) = %v", got)
	}
}

func TestNorm2AndDot(t *testing.T) {
	if got := Norm2([]float64{3, 4}); !almostEqual(got, 5, 1e-12) {
		t.Errorf("Norm2 = %v, want 5", got)
	}
	if got := Norm2(nil); got != 0 {
		t.Errorf("Norm2(nil) = %v, want 0", got)
	}
	if got := Dot([]float64{1, 2, 3}, []float64{4, 5, 6}); got != 32 {
		t.Errorf("Dot = %v, want 32", got)
	}
}
