package stats

import (
	"fmt"
	"math"
)

// Binomial is the distribution of the number of successes in N independent
// Bernoulli(P) trials. It backs the FA*IR mtable construction (the minimum
// number of protected candidates required in every ranking prefix).
type Binomial struct {
	N int
	P float64
}

// PMF returns P(X = k). Computation goes through log-gamma so it is stable
// for large N.
func (b Binomial) PMF(k int) float64 {
	if k < 0 || k > b.N {
		return 0
	}
	switch b.P {
	case 0:
		if k == 0 {
			return 1
		}
		return 0
	case 1:
		if k == b.N {
			return 1
		}
		return 0
	}
	return math.Exp(b.logPMF(k))
}

func (b Binomial) logPMF(k int) float64 {
	n := float64(b.N)
	x := float64(k)
	lg := func(v float64) float64 {
		r, _ := math.Lgamma(v)
		return r
	}
	return lg(n+1) - lg(x+1) - lg(n-x+1) + x*math.Log(b.P) + (n-x)*math.Log1p(-b.P)
}

// CDF returns P(X <= k) by direct summation from the smaller tail.
func (b Binomial) CDF(k int) float64 {
	if k < 0 {
		return 0
	}
	if k >= b.N {
		return 1
	}
	// Sum the lighter tail for accuracy.
	mean := float64(b.N) * b.P
	if float64(k) <= mean {
		var s float64
		for i := 0; i <= k; i++ {
			s += b.PMF(i)
		}
		return math.Min(s, 1)
	}
	var s float64
	for i := k + 1; i <= b.N; i++ {
		s += b.PMF(i)
	}
	return math.Max(0, 1-s)
}

// Quantile returns the smallest k with CDF(k) >= p. This is the inverse CDF
// used to derive FA*IR's mtable: with significance alpha, the minimum
// protected count in a prefix of length N is Quantile(alpha).
func (b Binomial) Quantile(p float64) (int, error) {
	if math.IsNaN(p) || p < 0 || p > 1 {
		return 0, fmt.Errorf("stats: binomial quantile probability %v outside [0,1]", p)
	}
	cum := 0.0
	for k := 0; k <= b.N; k++ {
		cum += b.PMF(k)
		if cum >= p {
			return k, nil
		}
	}
	return b.N, nil
}

// Mean returns N*P.
func (b Binomial) Mean() float64 { return float64(b.N) * b.P }

// Variance returns N*P*(1-P).
func (b Binomial) Variance() float64 { return float64(b.N) * b.P * (1 - b.P) }
