package stats

import (
	"math"
	"sort"
)

// KSTwoSample returns the two-sample Kolmogorov-Smirnov statistic D (the
// supremum distance between the empirical CDFs of a and b) and the
// asymptotic p-value for the hypothesis that both samples come from the
// same distribution. The synthetic-data tests use it to check that two
// cohorts drawn from the same generator configuration are statistically
// indistinguishable.
func KSTwoSample(a, b []float64) (d, pvalue float64) {
	if len(a) == 0 || len(b) == 0 {
		return 0, 1
	}
	sa := append([]float64(nil), a...)
	sb := append([]float64(nil), b...)
	sort.Float64s(sa)
	sort.Float64s(sb)
	na, nb := len(sa), len(sb)
	var i, j int
	for i < na && j < nb {
		x := math.Min(sa[i], sb[j])
		for i < na && sa[i] <= x {
			i++
		}
		for j < nb && sb[j] <= x {
			j++
		}
		diff := math.Abs(float64(i)/float64(na) - float64(j)/float64(nb))
		if diff > d {
			d = diff
		}
	}
	ne := float64(na) * float64(nb) / float64(na+nb)
	lambda := (math.Sqrt(ne) + 0.12 + 0.11/math.Sqrt(ne)) * d
	return d, ksQ(lambda)
}

// ksQ is the Kolmogorov distribution survival function
// Q(lambda) = 2 * sum_{j>=1} (-1)^{j-1} exp(-2 j^2 lambda^2).
func ksQ(lambda float64) float64 {
	if lambda <= 0 {
		return 1
	}
	var sum float64
	sign := 1.0
	for j := 1; j <= 100; j++ {
		term := sign * math.Exp(-2*float64(j*j)*lambda*lambda)
		sum += term
		if math.Abs(term) < 1e-12 {
			break
		}
		sign = -sign
	}
	p := 2 * sum
	return Clamp(p, 0, 1)
}

// Histogram counts xs into bins equal-width bins over [lo, hi]. Values
// outside the range are clamped into the first/last bin. It returns the bin
// counts and the bin width.
func Histogram(xs []float64, lo, hi float64, bins int) (counts []int, width float64) {
	counts = make([]int, bins)
	if bins == 0 || hi <= lo {
		return counts, 0
	}
	width = (hi - lo) / float64(bins)
	for _, x := range xs {
		b := int((x - lo) / width)
		if b < 0 {
			b = 0
		}
		if b >= bins {
			b = bins - 1
		}
		counts[b]++
	}
	return counts, width
}
