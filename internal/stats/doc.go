// Package stats is the statistics substrate for the reproduction.
//
// The paper's algorithm (DCA) rests on the Central Limit Theorem and the
// Quantile Central Limit Theorem, its baselines need binomial and
// multinomial CDFs (Multinomial FA*IR), and the synthetic data generators
// need correlated normal draws and goodness-of-fit checks. Go's standard
// library provides only math primitives (Erf, Lgamma), so this package
// implements the rest from scratch: descriptive statistics, empirical
// quantiles, the normal distribution with an inverse CDF, binomial and
// multinomial distributions, Cholesky factorization, rank correlation, and
// the two-sample Kolmogorov-Smirnov test.
package stats
