package baselines

import (
	"fmt"

	"fairrank/internal/dataset"
	"fairrank/internal/rank"
)

// Quota implements the real-world single set-aside: a fraction of the
// selection is reserved for members of any of the listed (binary) fairness
// attributes, mirroring how the NYC school system applies one quota across
// all dimensions of disadvantage.
type Quota struct {
	// Reserve is the fraction of selected seats set aside for disadvantaged
	// objects, in [0, 1].
	Reserve float64
	// MemberCols are the binary fairness attribute columns whose union
	// defines "disadvantaged".
	MemberCols []int
}

// Select returns the selected objects for a top-frac selection over the
// base scores: open seats go to the highest scorers overall, reserved
// seats to the highest-scoring disadvantaged objects not already admitted.
// If there are not enough disadvantaged candidates the unused reserved
// seats revert to open competition (a soft quota).
func (q Quota) Select(d *dataset.Dataset, base []float64, frac float64) ([]int, error) {
	return q.SelectOrdered(d, rank.Order(base), frac)
}

// SelectOrdered is Select over a precomputed descending ranking of the
// base scores, e.g. a core.Evaluator's cached original order. Sweeps over
// many selection fractions reuse one ranking instead of re-sorting the
// population per fraction.
func (q Quota) SelectOrdered(d *dataset.Dataset, order []int, frac float64) ([]int, error) {
	if q.Reserve < 0 || q.Reserve > 1 {
		return nil, fmt.Errorf("baselines: quota reserve %v outside [0,1]", q.Reserve)
	}
	total, err := rank.SelectCount(d.N(), frac)
	if err != nil {
		return nil, err
	}
	reserved := int(q.Reserve*float64(total) + 0.5)
	open := total - reserved

	member := make([]bool, d.N())
	for _, c := range q.MemberCols {
		col := d.FairColumn(c)
		for i, v := range col {
			if v > 0.5 {
				member[i] = true
			}
		}
	}

	selected := make([]int, 0, total)
	taken := make([]bool, d.N())
	// Pass 1: open seats by pure rank.
	for _, i := range order {
		if len(selected) >= open {
			break
		}
		selected = append(selected, i)
		taken[i] = true
	}
	// Pass 2: reserved seats to the best remaining disadvantaged objects.
	for _, i := range order {
		if len(selected) >= total {
			break
		}
		if !taken[i] && member[i] {
			selected = append(selected, i)
			taken[i] = true
		}
	}
	// Pass 3: unused reserve reverts to open competition.
	for _, i := range order {
		if len(selected) >= total {
			break
		}
		if !taken[i] {
			selected = append(selected, i)
			taken[i] = true
		}
	}
	return selected, nil
}
