package baselines

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"fairrank/internal/dataset"
	"fairrank/internal/metrics"
)

func quotaDataset(t testing.TB, n int, seed int64) (*dataset.Dataset, []float64) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	fair := make([]float64, n)
	score := make([]float64, n)
	for i := 0; i < n; i++ {
		if rng.Float64() < 0.3 {
			fair[i] = 1
		}
		score[i] = 50 + 10*rng.NormFloat64() - 8*fair[i]
	}
	d, err := dataset.New([]string{"s"}, []string{"f"}, [][]float64{score}, [][]float64{fair}, nil)
	if err != nil {
		t.Fatal(err)
	}
	return d, score
}

func TestQuotaSelectsExactCount(t *testing.T) {
	d, score := quotaDataset(t, 1000, 1)
	q := Quota{Reserve: 0.3, MemberCols: []int{0}}
	sel, err := q.Select(d, score, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if len(sel) != 100 {
		t.Fatalf("selected %d, want 100", len(sel))
	}
	seen := make(map[int]bool)
	for _, i := range sel {
		if seen[i] {
			t.Fatalf("duplicate selection %d", i)
		}
		seen[i] = true
	}
}

func TestQuotaReserveBinds(t *testing.T) {
	d, score := quotaDataset(t, 2000, 2)
	// Without quota, members are underrepresented.
	plain, err := (Quota{Reserve: 0, MemberCols: []int{0}}).Select(d, score, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	withQuota, err := (Quota{Reserve: 0.3, MemberCols: []int{0}}).Select(d, score, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	count := func(sel []int) int {
		c := 0
		for _, i := range sel {
			if d.Fair(i, 0) > 0.5 {
				c++
			}
		}
		return c
	}
	if count(withQuota) < 30 {
		t.Errorf("reserve of 30 seats not honored: %d members", count(withQuota))
	}
	if count(withQuota) <= count(plain) {
		t.Errorf("quota did not increase representation: %d vs %d", count(withQuota), count(plain))
	}
	// Disparity improves.
	if metrics.Norm(metrics.Disparity(d, withQuota)) >= metrics.Norm(metrics.Disparity(d, plain)) {
		t.Error("quota did not reduce disparity norm")
	}
}

func TestQuotaUnfilledReserveReverts(t *testing.T) {
	// Only 2 disadvantaged objects but a 50% reserve on 10 seats: the 3
	// unfilled reserved seats go to open competition.
	fair := make([]float64, 100)
	fair[0], fair[1] = 1, 1
	score := make([]float64, 100)
	for i := range score {
		score[i] = float64(100 - i)
	}
	d, err := dataset.New([]string{"s"}, []string{"f"}, [][]float64{score}, [][]float64{fair}, nil)
	if err != nil {
		t.Fatal(err)
	}
	sel, err := (Quota{Reserve: 0.5, MemberCols: []int{0}}).Select(d, score, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if len(sel) != 10 {
		t.Fatalf("selected %d, want 10", len(sel))
	}
}

func TestQuotaInvalidReserve(t *testing.T) {
	d, score := quotaDataset(t, 10, 3)
	if _, err := (Quota{Reserve: -0.1}).Select(d, score, 0.5); err == nil {
		t.Error("negative reserve: expected error")
	}
	if _, err := (Quota{Reserve: 1.1}).Select(d, score, 0.5); err == nil {
		t.Error("reserve > 1: expected error")
	}
	if _, err := (Quota{Reserve: 0.5}).Select(d, score, 0); err == nil {
		t.Error("zero selection fraction: expected error")
	}
}

func TestMTableMonotoneAndVerified(t *testing.T) {
	fa := FAStarIR{Proportions: []float64{0.55, 0.25, 0.15, 0.05}, Alpha: 0.1}
	const tau = 60
	mt, err := fa.MTable(tau)
	if err != nil {
		t.Fatal(err)
	}
	for n := 1; n <= tau; n++ {
		for g := 1; g < 4; g++ {
			if mt[n][g] < mt[n-1][g] {
				t.Fatalf("mtable not monotone at n=%d g=%d", n, g)
			}
			if mt[n][g] > n {
				t.Fatalf("mtable requires more than the prefix at n=%d g=%d", n, g)
			}
		}
		if mt[n][0] != 0 {
			t.Fatalf("non-protected group has a requirement at n=%d", n)
		}
	}
	// Requirements approach the proportional share for large prefixes.
	if mt[tau][1] == 0 {
		t.Error("25% group has no requirement at prefix 60")
	}
}

func TestFAStarReRankSatisfiesMTableAndVerify(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	fa := FAStarIR{Proportions: []float64{0.6, 0.25, 0.15}, Alpha: 0.1}
	// Candidates sorted by score; protected groups concentrated at the
	// bottom (a biased ranking).
	n := 400
	groups := make([]int, n)
	for i := range groups {
		switch {
		case rng.Float64() < 0.25*float64(i)/float64(n)*2:
			groups[i] = 1
		case rng.Float64() < 0.15*float64(i)/float64(n)*2:
			groups[i] = 2
		}
	}
	const tau = 80
	positions, err := fa.ReRank(groups, tau)
	if err != nil {
		t.Fatal(err)
	}
	if len(positions) != tau {
		t.Fatalf("re-ranked %d, want %d", len(positions), tau)
	}
	// No duplicates; each position valid.
	seen := make(map[int]bool)
	outGroups := make([]int, tau)
	for r, p := range positions {
		if p < 0 || p >= n || seen[p] {
			t.Fatalf("bad position %d at rank %d", p, r)
		}
		seen[p] = true
		outGroups[r] = groups[p]
	}
	// mtable satisfied at every prefix.
	mt, err := fa.MTable(tau)
	if err != nil {
		t.Fatal(err)
	}
	counts := make([]int, 3)
	for r := 0; r < tau; r++ {
		counts[outGroups[r]]++
		for g := 1; g < 3; g++ {
			if counts[g] < mt[r+1][g] {
				t.Fatalf("prefix %d has %d of group %d, mtable requires %d", r+1, counts[g], g, mt[r+1][g])
			}
		}
	}
	// And the exact multinomial test passes.
	failAt, err := fa.Verify(outGroups)
	if err != nil {
		t.Fatal(err)
	}
	if failAt != 0 {
		t.Errorf("verification fails at prefix %d", failAt)
	}
}

func TestFAStarVerifyRejectsExclusion(t *testing.T) {
	fa := FAStarIR{Proportions: []float64{0.5, 0.5}, Alpha: 0.1}
	// 30 positions, zero protected: mcdf = 0.5^n drops below 0.1 fast.
	groups := make([]int, 30)
	failAt, err := fa.Verify(groups)
	if err != nil {
		t.Fatal(err)
	}
	if failAt == 0 || failAt > 10 {
		t.Errorf("all-unprotected prefix should fail early, failed at %d", failAt)
	}
}

func TestFAStarErrors(t *testing.T) {
	if _, err := (FAStarIR{Proportions: []float64{1}, Alpha: 0.1}).MTable(5); err == nil {
		t.Error("single group: expected error")
	}
	if _, err := (FAStarIR{Proportions: []float64{0.5, 0.5}, Alpha: 0}).MTable(5); err == nil {
		t.Error("alpha 0: expected error")
	}
	fa := FAStarIR{Proportions: []float64{0.5, 0.5}, Alpha: 0.1}
	if _, err := fa.ReRank([]int{0, 1}, 3); err == nil {
		t.Error("tau > candidates: expected error")
	}
	if _, err := fa.ReRank([]int{0, 7}, 2); err == nil {
		t.Error("out-of-range group: expected error")
	}
	if _, err := fa.Verify([]int{0, 9}); err == nil {
		t.Error("out-of-range group in Verify: expected error")
	}
}

func TestBonferroniWeakerThanExact(t *testing.T) {
	fa := FAStarIR{Proportions: []float64{0.5, 0.3, 0.2}, Alpha: 0.1}
	exact, err := fa.MTable(40)
	if err != nil {
		t.Fatal(err)
	}
	bonf, err := fa.MTableBonferroni(40)
	if err != nil {
		t.Fatal(err)
	}
	// The Bonferroni per-group construction never demands more than the
	// exact joint construction in total.
	for n := 1; n <= 40; n++ {
		sumE, sumB := 0, 0
		for g := 1; g < 3; g++ {
			sumE += exact[n][g]
			sumB += bonf[n][g]
		}
		if sumB > sumE {
			t.Fatalf("Bonferroni total requirement %d exceeds exact %d at n=%d", sumB, sumE, n)
		}
	}
}

func TestCelisGreedyRespectsCaps(t *testing.T) {
	types := []int{0, 0, 1, 0, 1, 1, 0, 1}
	c := CelisGreedy{Caps: []int{2, 2}}
	got, err := c.ReRank(types, 4)
	if err != nil {
		t.Fatal(err)
	}
	counts := make([]int, 2)
	for _, p := range got {
		counts[types[p]]++
	}
	if counts[0] != 2 || counts[1] != 2 {
		t.Errorf("composition = %v, want [2 2]", counts)
	}
	// Greedy keeps the best available: positions 0,1 (type 0) then 2,4
	// (type 1).
	want := []int{0, 1, 2, 4}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("ReRank = %v, want %v", got, want)
	}
}

func TestCelisGreedyInfeasible(t *testing.T) {
	c := CelisGreedy{Caps: []int{1, 0}}
	if _, err := c.ReRank([]int{0, 1, 1}, 2); err == nil {
		t.Error("exhausted caps: expected error")
	}
	if _, err := c.ReRank([]int{0, 5}, 1); err == nil {
		t.Error("unknown type: expected error")
	}
	if _, err := c.ReRank([]int{0}, 2); err == nil {
		t.Error("tau too large: expected error")
	}
}

func TestCelisUnconstrainedCapsKeepTopTau(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 5 + rng.Intn(50)
		types := make([]int, n)
		for i := range types {
			types[i] = rng.Intn(3)
		}
		tau := rng.Intn(n + 1)
		c := CelisGreedy{Caps: []int{n, n, n}}
		got, err := c.ReRank(types, tau)
		if err != nil {
			return false
		}
		for i := 0; i < tau; i++ {
			if got[i] != i {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestUtilityLoss(t *testing.T) {
	scores := []float64{10, 9, 8, 7, 6}
	if got := UtilityLoss(scores, []int{0, 1, 2}); got != 0 {
		t.Errorf("loss of unconstrained top = %v, want 0", got)
	}
	loss := UtilityLoss(scores, []int{0, 1, 4})
	if loss <= 0 || loss >= 1 {
		t.Errorf("loss = %v, want in (0,1)", loss)
	}
	if got := UtilityLoss(nil, nil); got != 0 {
		t.Errorf("empty loss = %v", got)
	}
}

func TestCellPatternsAndAssignment(t *testing.T) {
	pats := CellPatterns(2)
	if len(pats) != 4 {
		t.Fatalf("patterns = %v", pats)
	}
	memberships := [][]bool{
		{false, false},
		{true, false},
		{true, true},
	}
	protected := [][]bool{{true, true}, {true, false}}
	got := SubgroupAssignment(memberships, protected)
	want := []int{0, 2, 1}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("assignment = %v, want %v", got, want)
	}
}

func TestRankCellsByDisparity(t *testing.T) {
	// Cell {true}: 4 members, 0 selected. Cell {false}: 4 members, 2
	// selected. Most discriminated first = {true}.
	memberships := [][]bool{
		{true}, {true}, {true}, {true},
		{false}, {false}, {false}, {false},
	}
	selected := []bool{false, false, false, false, true, true, false, false}
	cells := RankCellsByDisparity(memberships, selected)
	if len(cells) != 2 {
		t.Fatalf("cells = %v", cells)
	}
	if !cells[0][0] {
		t.Errorf("most discriminated cell should be {true}, got %v", cells)
	}
}
