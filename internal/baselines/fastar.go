package baselines

import (
	"fmt"
	"sort"

	"fairrank/internal/stats"
)

// FAStarIR implements Multinomial FA*IR (Zehlike, Sühr, Baeza-Yates,
// Bonchi, Castillo, Hajian: "Fair top-k ranking with multiple protected
// groups", IP&M 2022), the post-processing comparison system of Table II.
//
// The method re-ranks the top-τ of a score ranking so that every prefix
// passes a ranked group fairness test: under the null hypothesis that each
// position is drawn i.i.d. from the population group proportions, the
// observed protected-group counts must not be statistically significantly
// below expectation at level Alpha.
//
// Construction uses per-group minimum-count tables (the mtable) built from
// inverse binomial CDFs with a Bonferroni-adjusted significance Alpha/G —
// one of the multinomial constructions discussed by Zehlike et al. — and
// the final ranking is verified with the exact multinomial CDF test
// (implemented in internal/stats via a sequential-binomial dynamic
// program).
//
// Groups must be non-overlapping; group 0 denotes the non-protected
// remainder and has no minimum. This is the structural limitation the
// paper contrasts with DCA: overlapping attributes must be flattened into
// a Cartesian product of subgroups first.
type FAStarIR struct {
	// Proportions are the target minimal proportions per group, indexed by
	// group id; Proportions[0] (non-protected) is ignored. Typically the
	// population shares.
	Proportions []float64
	// Alpha is the significance level of the fairness test (paper default
	// 0.1).
	Alpha float64
}

// MTable returns, for each prefix length 1..tau, minimum required counts
// per protected group such that every prefix passes the exact multinomial
// ranked group fairness test (Verify). Rows are built incrementally: while
// the joint multinomial CDF at the current minima is at most Alpha, the
// count of the protected group whose increment raises the CDF the most is
// increased — a greedy walk to a corner point of the inverse multinomial
// CDF, the construction Zehlike et al. describe.
func (f FAStarIR) MTable(tau int) ([][]int, error) {
	if f.Alpha <= 0 || f.Alpha >= 1 {
		return nil, fmt.Errorf("baselines: FA*IR alpha %v outside (0,1)", f.Alpha)
	}
	g := len(f.Proportions)
	if g < 2 {
		return nil, fmt.Errorf("baselines: FA*IR needs at least one protected group")
	}
	table := make([][]int, tau+1)
	table[0] = make([]int, g)
	counts := make([]int, g)
	bounds := make([]int, g)
	for n := 1; n <= tau; n++ {
		m := stats.Multinomial{N: n, P: f.Proportions}
		for {
			copy(bounds, counts)
			bounds[0] = n // the non-protected group is unbounded
			p, err := m.CDF(bounds)
			if err != nil {
				return nil, err
			}
			if p > f.Alpha {
				break
			}
			// Raise the bound whose increment helps the joint CDF most.
			best, bestP := -1, -1.0
			for grp := 1; grp < g; grp++ {
				if counts[grp] >= n {
					continue
				}
				copy(bounds, counts)
				bounds[0] = n
				bounds[grp]++
				cand, err := m.CDF(bounds)
				if err != nil {
					return nil, err
				}
				if cand > bestP {
					bestP = cand
					best = grp
				}
			}
			if best == -1 {
				return nil, fmt.Errorf("baselines: FA*IR mtable infeasible at prefix %d", n)
			}
			counts[best]++
		}
		row := make([]int, g)
		copy(row, counts)
		table[n] = row
	}
	return table, nil
}

// MTableBonferroni returns the cheaper per-group approximation: mtable[n][g]
// is the smallest count of group g in the top n that passes a binomial test
// at the Bonferroni-adjusted significance Alpha/(G-1). It is weaker than
// the exact multinomial construction (rankings built from it can fail
// Verify) and is kept for the construction-strategy ablation.
func (f FAStarIR) MTableBonferroni(tau int) ([][]int, error) {
	if f.Alpha <= 0 || f.Alpha >= 1 {
		return nil, fmt.Errorf("baselines: FA*IR alpha %v outside (0,1)", f.Alpha)
	}
	g := len(f.Proportions)
	if g < 2 {
		return nil, fmt.Errorf("baselines: FA*IR needs at least one protected group")
	}
	adjusted := f.Alpha / float64(g-1)
	table := make([][]int, tau+1)
	table[0] = make([]int, g)
	for n := 1; n <= tau; n++ {
		row := make([]int, g)
		for grp := 1; grp < g; grp++ {
			b := stats.Binomial{N: n, P: f.Proportions[grp]}
			q, err := b.Quantile(adjusted)
			if err != nil {
				return nil, err
			}
			row[grp] = q
		}
		table[n] = row
	}
	return table, nil
}

// ReRank produces a fair top-tau ranking from candidates already sorted by
// descending score, with groups[i] the group id of the i-th candidate. It
// greedily emits the best remaining candidate unless some protected group
// is behind its mtable requirement at the next position, in which case the
// best remaining candidate of the most-behind group is emitted instead
// (the generalized FA*IR greedy). It returns positions into the candidate
// slice.
func (f FAStarIR) ReRank(groups []int, tau int) ([]int, error) {
	if tau < 0 || tau > len(groups) {
		return nil, fmt.Errorf("baselines: FA*IR tau %d outside [0,%d]", tau, len(groups))
	}
	mtable, err := f.MTable(tau)
	if err != nil {
		return nil, err
	}
	g := len(f.Proportions)
	// Per-group queues of candidate positions in score order.
	queues := make([][]int, g)
	for i, grp := range groups {
		if grp < 0 || grp >= g {
			return nil, fmt.Errorf("baselines: candidate %d has group %d outside [0,%d)", i, grp, g)
		}
		queues[grp] = append(queues[grp], i)
	}
	heads := make([]int, g)
	counts := make([]int, g)
	out := make([]int, 0, tau)
	for pos := 1; pos <= tau; pos++ {
		need := mtable[pos]
		// Most-behind protected group with candidates left.
		pick := -1
		worst := 0
		for grp := 1; grp < g; grp++ {
			short := need[grp] - counts[grp]
			if short > worst && heads[grp] < len(queues[grp]) {
				worst = short
				pick = grp
			}
		}
		if pick == -1 {
			// No constraint pending: take the globally best remaining.
			best := -1
			for grp := 0; grp < g; grp++ {
				if heads[grp] < len(queues[grp]) {
					cand := queues[grp][heads[grp]]
					if best == -1 || cand < best {
						best = cand
						pick = grp
					}
				}
			}
			if pick == -1 {
				return nil, fmt.Errorf("baselines: FA*IR ran out of candidates at position %d", pos)
			}
		}
		out = append(out, queues[pick][heads[pick]])
		heads[pick]++
		counts[pick]++
	}
	return out, nil
}

// Verify checks the final ranking with the exact multinomial ranked group
// fairness test: for every prefix, the joint probability (under the
// population proportions) of seeing protected counts at most the observed
// ones must exceed Alpha. groups are the group ids in ranked order. It
// returns the first failing prefix length, or 0 if the ranking is fair.
func (f FAStarIR) Verify(groups []int) (int, error) {
	g := len(f.Proportions)
	counts := make([]int, g)
	bounds := make([]int, g)
	for n := 1; n <= len(groups); n++ {
		grp := groups[n-1]
		if grp < 0 || grp >= g {
			return 0, fmt.Errorf("baselines: group %d outside [0,%d)", grp, g)
		}
		counts[grp]++
		// Protected groups are bounded by their observed counts; the
		// non-protected group is unbounded.
		for i := range bounds {
			bounds[i] = counts[i]
		}
		bounds[0] = n
		m := stats.Multinomial{N: n, P: f.Proportions}
		p, err := m.CDF(bounds)
		if err != nil {
			return 0, err
		}
		if p <= f.Alpha {
			return n, nil
		}
	}
	return 0, nil
}

// SubgroupAssignment flattens overlapping binary attributes into
// non-overlapping groups for FA*IR: the `protected` list gives, per group
// id 1..len(protected), the exact attribute-membership pattern of that
// subgroup (a Cartesian-product cell); everything else is group 0. The
// paper picks the three most-discriminated cells as suggested by Zehlike
// et al.
func SubgroupAssignment(memberships [][]bool, protected [][]bool) []int {
	out := make([]int, len(memberships))
	for i, m := range memberships {
		for gid, pattern := range protected {
			if equalBools(m, pattern) {
				out[i] = gid + 1
				break
			}
		}
	}
	return out
}

func equalBools(a, b []bool) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// CellPatterns enumerates all 2^d membership patterns over d binary
// attributes, in a stable order (LSB = attribute 0).
func CellPatterns(d int) [][]bool {
	n := 1 << d
	out := make([][]bool, n)
	for v := 0; v < n; v++ {
		p := make([]bool, d)
		for j := 0; j < d; j++ {
			p[j] = v&(1<<j) != 0
		}
		out[v] = p
	}
	return out
}

// RankCellsByDisparity orders cell patterns by how underrepresented their
// members are in the selection relative to the population (most
// discriminated first): the per-cell disparity share(selected) -
// share(population). memberships holds per-object attribute memberships;
// selected flags the selected objects. Cells with no members are skipped.
func RankCellsByDisparity(memberships [][]bool, selected []bool) [][]bool {
	d := 0
	if len(memberships) > 0 {
		d = len(memberships[0])
	}
	patterns := CellPatterns(d)
	type cell struct {
		pattern   []bool
		disparity float64
		size      int
	}
	var cells []cell
	nSel := 0
	for _, s := range selected {
		if s {
			nSel++
		}
	}
	for _, p := range patterns {
		var tot, sel int
		for i, m := range memberships {
			if equalBools(m, p) {
				tot++
				if selected[i] {
					sel++
				}
			}
		}
		if tot == 0 || nSel == 0 {
			continue
		}
		popShare := float64(tot) / float64(len(memberships))
		selShare := float64(sel) / float64(nSel)
		cells = append(cells, cell{pattern: p, disparity: selShare - popShare, size: tot})
	}
	sort.Slice(cells, func(a, b int) bool { return cells[a].disparity < cells[b].disparity })
	out := make([][]bool, len(cells))
	for i, c := range cells {
		out[i] = c.pattern
	}
	return out
}
