package baselines

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestFAIRMTableMonotone(t *testing.T) {
	f := FAIR{P: 0.3, Alpha: 0.1}
	m, err := f.MTable(100, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	for n := 1; n <= 100; n++ {
		if m[n] < m[n-1] {
			t.Fatalf("mtable not monotone at %d: %d < %d", n, m[n], m[n-1])
		}
		if m[n] > n {
			t.Fatalf("mtable demands %d of %d", m[n], n)
		}
	}
	// Requirements grow toward the proportional share for long prefixes.
	if m[100] < 15 || m[100] > 30 {
		t.Errorf("m[100] = %d, want near 30*0.3 minus slack", m[100])
	}
}

func TestFAIRFailProbability(t *testing.T) {
	f := FAIR{P: 0.3, Alpha: 0.1}
	// The zero mtable never rejects.
	zero := make([]int, 51)
	p, err := f.FailProbability(zero)
	if err != nil {
		t.Fatal(err)
	}
	if p > 1e-9 {
		t.Errorf("zero mtable fail probability = %v, want ≈ 0", p)
	}
	// An unadjusted mtable over many prefixes rejects a fair ranking more
	// often than alpha (the multiple-testing problem).
	m, err := f.MTable(50, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	p, err = f.FailProbability(m)
	if err != nil {
		t.Fatal(err)
	}
	if p <= 0.1 {
		t.Errorf("unadjusted fail probability = %v, expected > alpha", p)
	}
	// Monte Carlo agreement.
	rng := rand.New(rand.NewSource(6))
	const trials = 40000
	fails := 0
	for tr := 0; tr < trials; tr++ {
		count := 0
		for n := 1; n <= 50; n++ {
			if rng.Float64() < 0.3 {
				count++
			}
			if count < m[n] {
				fails++
				break
			}
		}
	}
	mc := float64(fails) / trials
	if diff := p - mc; diff > 0.01 || diff < -0.01 {
		t.Errorf("exact fail probability %v vs Monte Carlo %v", p, mc)
	}
}

func TestFAIRAdjustAlphaControlsFamilywiseError(t *testing.T) {
	f := FAIR{P: 0.3, Alpha: 0.1}
	alphaC, m, err := f.AdjustAlpha(60)
	if err != nil {
		t.Fatal(err)
	}
	if alphaC >= f.Alpha || alphaC <= 0 {
		t.Errorf("adjusted alpha = %v, want in (0, %v)", alphaC, f.Alpha)
	}
	p, err := f.FailProbability(m)
	if err != nil {
		t.Fatal(err)
	}
	if p > f.Alpha+1e-9 {
		t.Errorf("adjusted mtable fail probability %v exceeds alpha %v", p, f.Alpha)
	}
	// And it is close to the target, not trivially lax.
	if p < f.Alpha/4 {
		t.Errorf("adjusted mtable fail probability %v far below alpha %v", p, f.Alpha)
	}
}

func TestFAIRReRankSatisfiesMTable(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	f := FAIR{P: 0.3, Alpha: 0.1}
	_, m, err := f.AdjustAlpha(80)
	if err != nil {
		t.Fatal(err)
	}
	// Biased candidate list: protected concentrated toward the bottom.
	protected := make([]bool, 500)
	for i := range protected {
		protected[i] = rng.Float64() < 0.3*2*float64(i)/500
	}
	positions, err := f.ReRank(protected, 80, m)
	if err != nil {
		t.Fatal(err)
	}
	flags := make([]bool, len(positions))
	seen := make(map[int]bool)
	for r, p := range positions {
		if seen[p] {
			t.Fatalf("duplicate position %d", p)
		}
		seen[p] = true
		flags[r] = protected[p]
	}
	if at := f.Verify(flags, m); at != 0 {
		t.Errorf("re-ranked list violates mtable at prefix %d", at)
	}
	// Positions within each class stay score-ordered (greedy never skips a
	// better candidate of the same class).
	var lastProt, lastOpen = -1, -1
	for _, p := range positions {
		if protected[p] {
			if p < lastProt {
				t.Fatalf("protected candidates out of score order")
			}
			lastProt = p
		} else {
			if p < lastOpen {
				t.Fatalf("open candidates out of score order")
			}
			lastOpen = p
		}
	}
}

func TestFAIRReRankNoConstraint(t *testing.T) {
	// P tiny -> mtable all zeros -> output is the unconstrained top-tau.
	f := FAIR{P: 0.05, Alpha: 0.1}
	m, err := f.MTable(10, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	protected := []bool{false, true, false, false, true, false, false, false, false, false, false, false}
	positions, err := f.ReRank(protected, 10, m)
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range positions {
		if p != i {
			t.Fatalf("positions = %v, want identity prefix", positions)
		}
	}
}

func TestFAIRErrors(t *testing.T) {
	if _, err := (FAIR{P: 0, Alpha: 0.1}).MTable(5, 0.1); err == nil {
		t.Error("P=0: expected error")
	}
	if _, err := (FAIR{P: 0.3, Alpha: 1}).MTable(5, 0.1); err == nil {
		t.Error("alpha=1: expected error")
	}
	f := FAIR{P: 0.9, Alpha: 0.1}
	m, err := f.MTable(4, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	// Not enough protected candidates to satisfy a demanding mtable.
	if _, err := f.ReRank([]bool{false, false, false, false}, 4, m); err == nil {
		t.Error("expected error when protected candidates run out")
	}
	if _, err := f.ReRank([]bool{true}, 4, m); err == nil {
		t.Error("tau > candidates: expected error")
	}
	if _, err := f.ReRank([]bool{true, true}, 2, []int{0}); err == nil {
		t.Error("short mtable: expected error")
	}
}

// Property: for any P and alpha, the adjusted mtable never demands more
// than the unadjusted one (alpha_c <= alpha shrinks requirements).
func TestFAIRAdjustedNeverStricter(t *testing.T) {
	fn := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		f := FAIR{P: 0.1 + 0.6*rng.Float64(), Alpha: 0.05 + 0.1*rng.Float64()}
		const tau = 30
		plain, err := f.MTable(tau, f.Alpha)
		if err != nil {
			return false
		}
		_, adjusted, err := f.AdjustAlpha(tau)
		if err != nil {
			return false
		}
		for n := 1; n <= tau; n++ {
			if adjusted[n] > plain[n] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(fn, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}
