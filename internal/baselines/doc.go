// Package baselines implements the comparison systems of the paper's
// Section VI-C: the single set-aside quota used by real school districts
// (Figure 6), the Multinomial FA*IR post-processing re-ranker of Zehlike et
// al. 2022 (Table II), and the (Δ+2)-approximation greedy re-ranker of
// Celis et al. (Figure 7).
package baselines
