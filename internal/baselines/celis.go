package baselines

import (
	"fmt"
	"math"
)

// CelisGreedy implements the (Δ+2)-approximation algorithm of Celis,
// Straszak & Vishnoi ("Ranking with fairness constraints"), the faster
// post-processing comparison of Figure 7. The algorithm considers
// (position, item) pairs and greedily commits the pair with the largest
// utility gain that does not violate preset upper bounds on the number of
// items of each type in any ranking prefix.
//
// Because the DCG position discount is monotonically decreasing, the
// greedy order is equivalent to filling positions first to last, each time
// with the best-scored remaining item whose type still has headroom —
// which is how the implementation proceeds.
type CelisGreedy struct {
	// Caps bounds how many items of each type may appear in the selection
	// (the paper feeds it the composition achieved by DCA so both systems
	// target the same fairness level). Index by type id.
	Caps []int
}

// ReRank selects and orders tau items from candidates sorted by descending
// score, where types[i] is the type id of the i-th candidate. It returns
// positions into the candidate slice. An error is returned when the caps
// make tau unreachable.
func (c CelisGreedy) ReRank(types []int, tau int) ([]int, error) {
	if tau < 0 || tau > len(types) {
		return nil, fmt.Errorf("baselines: celis tau %d outside [0,%d]", tau, len(types))
	}
	for i, ty := range types {
		if ty < 0 || ty >= len(c.Caps) {
			return nil, fmt.Errorf("baselines: candidate %d has type %d outside [0,%d)", i, ty, len(c.Caps))
		}
	}
	used := make([]int, len(c.Caps))
	out := make([]int, 0, tau)
	taken := make([]bool, len(types))
	for pos := 0; pos < tau; pos++ {
		picked := -1
		for i := 0; i < len(types); i++ {
			if taken[i] {
				continue
			}
			if used[types[i]] < c.Caps[types[i]] {
				picked = i
				break
			}
		}
		if picked == -1 {
			return nil, fmt.Errorf("baselines: celis caps exhausted at position %d of %d", pos, tau)
		}
		taken[picked] = true
		used[types[picked]]++
		out = append(out, picked)
	}
	return out, nil
}

// UtilityLoss reports the relative DCG loss of the re-ranked selection
// against the unconstrained top-tau, using the candidate scores (already
// in descending candidate order): 1 - DCG(selected)/DCG(top-tau).
func UtilityLoss(scores []float64, selected []int) float64 {
	tau := len(selected)
	var ideal, got float64
	for pos := 0; pos < tau; pos++ {
		disc := 1 / math.Log2(float64(pos)+2)
		ideal += scores[pos] * disc
		got += scores[selected[pos]] * disc
	}
	if ideal == 0 {
		return 0
	}
	return 1 - got/ideal
}
