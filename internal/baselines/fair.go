package baselines

import (
	"fmt"

	"fairrank/internal/stats"
)

// FAIR implements the original binomial FA*IR algorithm (Zehlike, Bonchi,
// Castillo, Hajian, Megahed, Baeza-Yates, CIKM 2017 — reference [15] of
// the paper), the single-protected-group predecessor of Multinomial FA*IR.
// It is included both as a baseline in its own right and to expose the
// paper's point that single-group methods cannot address multi-dimensional
// disparity.
//
// A top-tau ranking is "fair" when, for every prefix of length n, the
// count of protected candidates is not significantly below what i.i.d.
// Bernoulli(P) positions would produce: count >= m_alpha(n) with
// m_alpha(n) the alpha-quantile of Binomial(n, P).
//
// Because the test is applied to every prefix, the family-wise type-I
// error exceeds alpha; AdjustAlpha computes the corrected per-test
// significance alpha_c (Zehlike et al.'s "model adjustment") such that a
// genuinely fair ranking fails *any* of the tau tests with probability
// alpha overall, using an exact dynamic program over the reachable
// (prefix, protected-count) states.
type FAIR struct {
	// P is the minimum target proportion of protected candidates
	// (typically their population share).
	P float64
	// Alpha is the desired overall (family-wise) significance.
	Alpha float64
}

func (f FAIR) validate() error {
	if f.P <= 0 || f.P >= 1 {
		return fmt.Errorf("baselines: FA*IR proportion %v outside (0,1)", f.P)
	}
	if f.Alpha <= 0 || f.Alpha >= 1 {
		return fmt.Errorf("baselines: FA*IR alpha %v outside (0,1)", f.Alpha)
	}
	return nil
}

// MTable returns the minimum protected counts m[1..tau] at per-test
// significance alpha: m[n] is the smallest m with BinomialCDF(m; n, P)
// >= alpha. (Pass the output of AdjustAlpha for family-wise control.)
func (f FAIR) MTable(tau int, alpha float64) ([]int, error) {
	if err := f.validate(); err != nil {
		return nil, err
	}
	m := make([]int, tau+1)
	for n := 1; n <= tau; n++ {
		b := stats.Binomial{N: n, P: f.P}
		q, err := b.Quantile(alpha)
		if err != nil {
			return nil, err
		}
		m[n] = q
	}
	return m, nil
}

// FailProbability returns the exact probability that a ranking whose
// positions are i.i.d. protected with probability P fails at least one of
// the tau prefix tests of the given mtable. This is the family-wise
// type-I error of the test series, computed by a dynamic program over the
// surviving (prefix, protected-count) states.
func (f FAIR) FailProbability(mtable []int) (float64, error) {
	if err := f.validate(); err != nil {
		return 0, err
	}
	tau := len(mtable) - 1
	// alive[c] = probability of reaching prefix n with c protected so far
	// without having failed any earlier test.
	alive := make([]float64, tau+2)
	next := make([]float64, tau+2)
	alive[0] = 1
	surviving := 1.0
	for n := 1; n <= tau; n++ {
		for i := range next {
			next[i] = 0
		}
		for c, pr := range alive[:n] {
			if pr == 0 {
				continue
			}
			next[c+1] += pr * f.P
			next[c] += pr * (1 - f.P)
		}
		// Kill states below the requirement.
		req := mtable[n]
		var aliveMass float64
		for c := 0; c <= n; c++ {
			if c < req {
				next[c] = 0
			} else {
				aliveMass += next[c]
			}
		}
		surviving = aliveMass
		alive, next = next, alive
	}
	return 1 - surviving, nil
}

// AdjustAlpha binary-searches the corrected per-test significance alpha_c
// whose mtable has family-wise failure probability Alpha over tau
// prefixes. It returns alpha_c and the corresponding mtable.
func (f FAIR) AdjustAlpha(tau int) (alphaC float64, mtable []int, err error) {
	if err := f.validate(); err != nil {
		return 0, nil, err
	}
	lo, hi := 0.0, f.Alpha
	var bestM []int
	bestA := 0.0
	for iter := 0; iter < 40; iter++ {
		mid := (lo + hi) / 2
		if mid == 0 {
			break
		}
		m, err := f.MTable(tau, mid)
		if err != nil {
			return 0, nil, err
		}
		p, err := f.FailProbability(m)
		if err != nil {
			return 0, nil, err
		}
		if p <= f.Alpha {
			bestA, bestM = mid, m
			lo = mid
		} else {
			hi = mid
		}
	}
	if bestM == nil {
		// Even tiny alpha_c over-rejects (can happen for extreme P); fall
		// back to the trivial mtable of zeros, which never rejects.
		bestM = make([]int, tau+1)
		bestA = 0
	}
	return bestA, bestM, nil
}

// ReRank produces a fair top-tau ranking from candidates sorted by
// descending score, with protected[i] marking the protected candidates.
// The greedy emits the best remaining candidate unless the mtable
// requirement at the next position is unmet, in which case the best
// remaining protected candidate is emitted. It returns positions into the
// candidate slice. The mtable must come from MTable or AdjustAlpha.
func (f FAIR) ReRank(protected []bool, tau int, mtable []int) ([]int, error) {
	if tau < 0 || tau > len(protected) {
		return nil, fmt.Errorf("baselines: FA*IR tau %d outside [0,%d]", tau, len(protected))
	}
	if len(mtable) < tau+1 {
		return nil, fmt.Errorf("baselines: mtable covers %d prefixes, need %d", len(mtable)-1, tau)
	}
	var protQ, openQ []int
	for i, p := range protected {
		if p {
			protQ = append(protQ, i)
		} else {
			openQ = append(openQ, i)
		}
	}
	var hp, ho, count int
	out := make([]int, 0, tau)
	for pos := 1; pos <= tau; pos++ {
		needProtected := count < mtable[pos]
		switch {
		case needProtected && hp < len(protQ):
			out = append(out, protQ[hp])
			hp++
			count++
		case needProtected:
			return nil, fmt.Errorf("baselines: FA*IR ran out of protected candidates at position %d", pos)
		default:
			// Best remaining candidate overall.
			switch {
			case hp < len(protQ) && (ho >= len(openQ) || protQ[hp] < openQ[ho]):
				out = append(out, protQ[hp])
				hp++
				count++
			case ho < len(openQ):
				out = append(out, openQ[ho])
				ho++
			default:
				return nil, fmt.Errorf("baselines: FA*IR ran out of candidates at position %d", pos)
			}
		}
	}
	return out, nil
}

// Verify reports the first prefix at which the ranking (protected flags in
// ranked order) violates the mtable, or 0 if it satisfies every prefix.
func (f FAIR) Verify(protected []bool, mtable []int) int {
	count := 0
	for n := 1; n <= len(protected) && n < len(mtable); n++ {
		if protected[n-1] {
			count++
		}
		if count < mtable[n] {
			return n
		}
	}
	return 0
}
