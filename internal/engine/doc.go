// Package engine provides the reusable score→select→measure machinery
// behind DCA: a preallocated scratch Workspace, a single descent loop
// parameterized by a sample source and an update rule, and a worker pool
// that gives every goroutine its own Workspace.
//
// The paper's efficiency claim — sampling-based DCA is sub-linear and fast
// enough for interactive what-if iteration — only holds if the per-step
// cost is dominated by arithmetic, not by allocation and hashing. The
// engine therefore owns every buffer of the hot path (effective scores,
// selection indices, per-dimension objective accumulators) and exposes
// in-place variants of the objective API so a descent step allocates
// nothing.
//
// Layering: engine sits below core. It depends only on dataset, rank,
// metrics, sample and optimize; core binds its objectives to the engine's
// Objective interface and drives the loop.
package engine
