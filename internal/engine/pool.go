package engine

import (
	"runtime"
	"sync"
)

// ForEach runs fn for every index 0..n-1 across min(GOMAXPROCS, n) worker
// goroutines, handing each goroutine its own fresh Workspace over dims
// fairness dimensions. fn must record results and errors into
// index-addressed slices it owns, which keeps aggregation deterministic
// regardless of scheduling. ForEach returns after every task has
// completed.
func ForEach(n, dims int, fn func(ws *Workspace, i int)) {
	ForEachWS(n,
		func() *Workspace { return NewWorkspace(dims) },
		func(*Workspace) {},
		fn)
}

// ForEachWS is ForEach with caller-controlled workspace acquisition: each
// worker goroutine gets one workspace from get and returns it through put
// when its share of the work is done. Callers with a long-lived workspace
// pool (e.g. an Evaluator's sync.Pool) use this to recycle buffers across
// calls.
func ForEachWS(n int, get func() *Workspace, put func(*Workspace), fn func(ws *Workspace, i int)) {
	if n <= 0 {
		return
	}
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	if workers == 1 {
		ws := get()
		defer put(ws)
		for i := 0; i < n; i++ {
			fn(ws, i)
		}
		return
	}
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ws := get()
			defer put(ws)
			for i := range next {
				fn(ws, i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		next <- i
	}
	close(next)
	wg.Wait()
}
