package engine

import (
	"context"
	"runtime"
	"sync"
)

// ForEach runs fn for every index 0..n-1 across min(GOMAXPROCS, n) worker
// goroutines, handing each goroutine its own fresh Workspace over dims
// fairness dimensions. fn must record results and errors into
// index-addressed slices it owns, which keeps aggregation deterministic
// regardless of scheduling. ForEach returns after every task has
// completed.
func ForEach(n, dims int, fn func(ws *Workspace, i int)) {
	ForEachWS(n,
		func() *Workspace { return NewWorkspace(dims) },
		func(*Workspace) {},
		fn)
}

// ForEachWS is ForEach with caller-controlled workspace acquisition: each
// worker goroutine gets one workspace from get and returns it through put
// when its share of the work is done. Callers with a long-lived workspace
// pool (e.g. an Evaluator's sync.Pool) use this to recycle buffers across
// calls.
func ForEachWS(n int, get func() *Workspace, put func(*Workspace), fn func(ws *Workspace, i int)) {
	// context.Background is never canceled, so the error is statically nil.
	_ = ForEachWSCtx(context.Background(), n, get, put, fn)
}

// ForEachWSCtx is ForEachWS with cooperative cancellation: once ctx is
// done, no further index is dispatched and ForEachWSCtx returns ctx's
// error after the in-flight tasks finish. Tasks already handed to a worker
// always run to completion — long tasks are expected to poll ctx at their
// own checkpoints — so index-addressed result slices never hold a value
// from a half-finished fn. All worker goroutines have exited by the time
// ForEachWSCtx returns, canceled or not.
func ForEachWSCtx(ctx context.Context, n int, get func() *Workspace, put func(*Workspace), fn func(ws *Workspace, i int)) error {
	if n <= 0 {
		return ctx.Err()
	}
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	done := ctx.Done()
	if workers == 1 {
		ws := get()
		defer put(ws)
		for i := 0; i < n; i++ {
			if done != nil {
				if err := ctx.Err(); err != nil {
					return err
				}
			}
			fn(ws, i)
		}
		return nil
	}
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ws := get()
			defer put(ws)
			for i := range next {
				fn(ws, i)
			}
		}()
	}
	// A receive from a nil done channel blocks forever, so with a
	// background context this select degenerates to the plain send. The
	// explicit Err check matters when both cases are ready: select picks
	// randomly, so without it a canceled context with idle workers would
	// keep dispatching about half the time.
dispatch:
	for i := 0; i < n; i++ {
		if done != nil && ctx.Err() != nil {
			break dispatch
		}
		select {
		case next <- i:
		case <-done:
			break dispatch
		}
	}
	close(next)
	wg.Wait()
	return ctx.Err()
}
