package engine

import (
	"context"

	"fairrank/internal/dataset"
	"fairrank/internal/optimize"
	"fairrank/internal/rank"
)

// CancelCheckInterval is the number of descent steps between cooperative
// cancellation checkpoints in Descend. Polling ctx.Err() is cheap but not
// free; amortizing it over a power-of-two stride keeps the steady-state
// step loop allocation-free and off the benchguard radar while still
// bounding how long a canceled caller waits for its worker.
const CancelCheckInterval = 16

// Objective is a fairness objective bound to a dataset and specialized for
// repeated, allocation-free evaluation. Implementations are produced by a
// one-time bind stage that performs all dataset validation (outcome
// presence, evaluation points), so EvalInto can run on every descent step
// without re-checking.
//
// EvalInto receives the sample (absolute object indices), the effective
// bonus-adjusted scores aligned with the sample, and writes one value per
// fairness dimension into dst, using ws for every intermediate buffer.
type Objective interface {
	EvalInto(ws *Workspace, sampleIdx []int, eff []float64, dst []float64) error
	Name() string
}

// TraceStep is one observed descent step.
type TraceStep struct {
	Stage     string // "core", "refine" or "full"
	Step      int    // step index within the stage sequence
	LR        float64
	Bonus     []float64 // copy of the bonus vector after the update
	Objective []float64 // objective vector measured before the update
}

// Updater applies one measured objective vector to the bonus vector. It is
// the pluggable update rule of the shared descent loop: the ladder SGD of
// Algorithm 1 and the Adam refinement of Algorithm 2 are both Updaters.
type Updater interface {
	// Apply mutates b in place given the objective vector of 0-based step i
	// and returns the learning rate used, for tracing.
	Apply(b, dvec []float64, i int) float64
	// AfterClamp observes b after the non-negativity/cap clamp of step i
	// (e.g. for trailing-average accumulation over clamped iterates).
	AfterClamp(b []float64, i int)
}

// Loop is the reusable descent loop of the engine. One Loop serves
// Algorithm 1, the Adam refinement of Algorithm 2, and the whole-dataset
// variant of Section IV-C; they differ only in the sample source and the
// Updater handed to Descend.
type Loop struct {
	D        *dataset.Dataset
	Base     []float64 // base scores, indexed by absolute object id
	Obj      Objective
	Polarity rank.Polarity
	MaxBonus float64
	WS       *Workspace
	Trace    func(TraceStep)

	// Ctx, when non-nil, is polled every CancelCheckInterval steps;
	// Descend returns early with the context's error once it is done.
	// A nil Ctx (the default) adds no per-step work.
	Ctx context.Context
}

// Descend runs steps descent steps, mutating b. next returns the sample of
// the current step (absolute object indices; the engine does not retain
// it past the step). stage tags trace records, whose step counter is
// 1-based within the stage. It returns the number of steps completed.
// When l.Ctx is canceled, Descend stops at the next checkpoint (at most
// CancelCheckInterval steps later) and returns the context's error.
func (l *Loop) Descend(b []float64, steps int, next func() []int, upd Updater, stage string) (int, error) {
	for i := 0; i < steps; i++ {
		if l.Ctx != nil && i%CancelCheckInterval == 0 {
			if err := l.Ctx.Err(); err != nil {
				return i, err
			}
		}
		idx := next()
		eff := rank.EffectiveScores(l.D, l.Base, idx, b, l.Polarity, l.WS.Eff(len(idx)))
		dvec := l.WS.Objective()
		if err := l.Obj.EvalInto(l.WS, idx, eff, dvec); err != nil {
			return i, err
		}
		lr := upd.Apply(b, dvec, i)
		ClampBonus(b, l.MaxBonus)
		upd.AfterClamp(b, i)
		if l.Trace != nil {
			l.Trace(TraceStep{
				Stage: stage, Step: i + 1, LR: lr,
				Bonus:     append([]float64(nil), b...),
				Objective: append([]float64(nil), dvec...),
			})
		}
	}
	return steps, nil
}

// ClampBonus enforces b >= 0 (the paper's "no penalties" requirement) and
// the optional per-dimension cap.
func ClampBonus(b []float64, maxBonus float64) {
	for j := range b {
		if b[j] < 0 {
			b[j] = 0
		}
		if maxBonus > 0 && b[j] > maxBonus {
			b[j] = maxBonus
		}
	}
}

// LadderUpdater is the update rule of Algorithm 1: plain descent along the
// objective vector with the decreasing learning-rate ladder. Apply must be
// called with consecutive step indices.
type LadderUpdater struct {
	Ladder optimize.Ladder
	Sign   float64 // polarity sign: +1 beneficial, -1 adverse

	stage int
	used  int
}

// NewLadderUpdater returns a ladder updater for the given schedule and
// polarity sign.
func NewLadderUpdater(ladder optimize.Ladder, sign float64) *LadderUpdater {
	return &LadderUpdater{Ladder: ladder, Sign: sign}
}

// Apply implements Updater.
func (u *LadderUpdater) Apply(b, dvec []float64, i int) float64 {
	for u.stage < len(u.Ladder) && u.used >= u.Ladder[u.stage].Steps {
		u.stage++
		u.used = 0
	}
	lr := u.Ladder[u.stage].LR
	u.used++
	for j := range b {
		b[j] -= u.Sign * lr * dvec[j]
	}
	return lr
}

// AfterClamp implements Updater (no-op for the ladder).
func (u *LadderUpdater) AfterClamp([]float64, int) {}

// AdamUpdater is the update rule of Algorithm 2: Adam steps on the
// objective vector plus a trailing average of the clamped iterates
// ("the rolling average of the last window points").
type AdamUpdater struct {
	adam   *optimize.Adam
	sign   float64
	steps  int
	window int
	grad   []float64
	sum    []float64
	count  int
}

// NewAdamUpdater returns an Adam updater over dims dimensions running for
// steps total steps, averaging the trailing window iterates (window <= 0
// or > steps means all of them).
func NewAdamUpdater(dims int, lr, sign float64, steps, window int) *AdamUpdater {
	if window <= 0 || window > steps {
		window = steps
	}
	return &AdamUpdater{
		adam:   optimize.NewAdam(dims, lr),
		sign:   sign,
		steps:  steps,
		window: window,
		grad:   make([]float64, dims),
		sum:    make([]float64, dims),
	}
}

// Apply implements Updater.
func (u *AdamUpdater) Apply(b, dvec []float64, i int) float64 {
	for j := range u.grad {
		u.grad[j] = u.sign * dvec[j]
	}
	u.adam.Step(b, u.grad)
	return u.adam.LR
}

// AfterClamp implements Updater: accumulates the trailing average over the
// clamped iterates.
func (u *AdamUpdater) AfterClamp(b []float64, i int) {
	if i >= u.steps-u.window {
		for j := range u.sum {
			u.sum[j] += b[j]
		}
		u.count++
	}
}

// Average overwrites b with the trailing average of the accumulated
// iterates; it is a no-op when no iterate was accumulated.
func (u *AdamUpdater) Average(b []float64) {
	if u.count == 0 {
		return
	}
	for j := range b {
		b[j] = u.sum[j] / float64(u.count)
	}
}
