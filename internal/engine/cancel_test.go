package engine

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"

	"fairrank/internal/dataset"
	"fairrank/internal/optimize"
)

// countingObjective is a trivial Objective for loop-mechanics tests: it
// writes zeros and counts evaluations.
type countingObjective struct{ evals int }

func (o *countingObjective) EvalInto(ws *Workspace, idx []int, eff []float64, dst []float64) error {
	o.evals++
	for j := range dst {
		dst[j] = 0
	}
	return nil
}

func (o *countingObjective) Name() string { return "counting" }

func cancelTestLoop(t *testing.T, obj Objective, ctx context.Context) *Loop {
	t.Helper()
	b := dataset.NewBuilder([]string{"s"}, []string{"f"})
	b.Add([]float64{1}, []float64{0})
	b.Add([]float64{2}, []float64{1})
	b.Add([]float64{3}, []float64{0})
	d, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return &Loop{
		D:        d,
		Base:     []float64{1, 2, 3},
		Obj:      obj,
		WS:       NewWorkspace(1),
		MaxBonus: 0,
		Ctx:      ctx,
	}
}

// TestDescendCancelCheckpoint pins the cancellation contract of the step
// loop: after the context dies mid-descent, Descend stops at the next
// checkpoint — within CancelCheckInterval steps — and reports how many
// steps actually ran.
func TestDescendCancelCheckpoint(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	obj := &countingObjective{}
	l := cancelTestLoop(t, obj, ctx)

	const cancelAt = 19 // not a checkpoint multiple: the loop must overrun to the next one
	step := 0
	next := func() []int {
		step++
		if step == cancelAt {
			cancel()
		}
		return []int{0}
	}
	upd := NewLadderUpdater(optimize.Ladder{{LR: 0.1, Steps: 1 << 20}}, 1)
	b := []float64{0}
	done, err := l.Descend(b, 10_000, next, upd, "core")
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("Descend error = %v, want context.Canceled", err)
	}
	if done < cancelAt || done > cancelAt+CancelCheckInterval {
		t.Errorf("Descend ran %d steps after cancel at %d; want within %d of it",
			done, cancelAt, CancelCheckInterval)
	}
	if obj.evals != done {
		t.Errorf("objective evaluated %d times for %d completed steps", obj.evals, done)
	}
}

// TestDescendNilCtxRunsToCompletion pins the default: without a context,
// the loop has no checkpoint branch and always finishes its budget.
func TestDescendNilCtxRunsToCompletion(t *testing.T) {
	obj := &countingObjective{}
	l := cancelTestLoop(t, obj, nil)
	upd := NewLadderUpdater(optimize.Ladder{{LR: 0.1, Steps: 1 << 20}}, 1)
	b := []float64{0}
	done, err := l.Descend(b, 100, func() []int { return []int{0} }, upd, "core")
	if err != nil || done != 100 {
		t.Fatalf("Descend = (%d, %v), want (100, nil)", done, err)
	}
}

// TestDescendPreCanceledRunsNothing: a context that is already dead costs
// zero steps (checkpoint at i=0).
func TestDescendPreCanceledRunsNothing(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	obj := &countingObjective{}
	l := cancelTestLoop(t, obj, ctx)
	upd := NewLadderUpdater(optimize.Ladder{{LR: 0.1, Steps: 1 << 20}}, 1)
	done, err := l.Descend([]float64{0}, 100, func() []int { return []int{0} }, upd, "core")
	if !errors.Is(err, context.Canceled) || done != 0 || obj.evals != 0 {
		t.Fatalf("pre-canceled Descend = (%d, %v) with %d evals; want (0, Canceled, 0)", done, err, obj.evals)
	}
}

// TestForEachWSCtxCancel pins the pool contract under cancellation: no
// new index is dispatched after the context dies, every dispatched task
// runs exactly once to completion, every worker returns its workspace,
// and the call reports the context error.
func TestForEachWSCtxCancel(t *testing.T) {
	const n = 10_000
	ctx, cancel := context.WithCancel(context.Background())
	var ran atomic.Int64
	hits := make([]atomic.Int32, n)

	var gets, puts atomic.Int64
	get := func() *Workspace { gets.Add(1); return NewWorkspace(1) }
	put := func(*Workspace) { puts.Add(1) }

	err := ForEachWSCtx(ctx, n, get, put, func(ws *Workspace, i int) {
		hits[i].Add(1)
		if ran.Add(1) == 64 {
			cancel()
		}
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("error = %v, want context.Canceled", err)
	}
	total := ran.Load()
	if total == n {
		t.Error("cancellation did not stop dispatch: every task ran")
	}
	for i := range hits {
		if h := hits[i].Load(); h > 1 {
			t.Fatalf("task %d ran %d times", i, h)
		}
	}
	if gets.Load() != puts.Load() {
		t.Errorf("workspace leak: %d gets, %d puts", gets.Load(), puts.Load())
	}
}

// TestForEachWSCtxPreCanceled: a dead context dispatches nothing but
// still balances workspace acquisition.
func TestForEachWSCtxPreCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var ran atomic.Int64
	var gets, puts atomic.Int64
	err := ForEachWSCtx(ctx, 128,
		func() *Workspace { gets.Add(1); return NewWorkspace(1) },
		func(*Workspace) { puts.Add(1) },
		func(ws *Workspace, i int) { ran.Add(1) })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("error = %v, want context.Canceled", err)
	}
	// Workers may each grab a workspace before seeing the closed channel;
	// the invariant is balance, not zero.
	if gets.Load() != puts.Load() {
		t.Errorf("workspace leak: %d gets, %d puts", gets.Load(), puts.Load())
	}
	if ran.Load() != 0 {
		// The dispatch loop checks done before every send, so nothing
		// should have been handed out.
		t.Errorf("%d tasks ran under a pre-canceled context", ran.Load())
	}
}
