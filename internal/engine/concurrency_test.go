package engine_test

// Concurrency and allocation tests for the engine through its real
// consumer, the core package (an external test package, so no import
// cycle). Run with -race to exercise the shared-Evaluator guarantees.

import (
	"sync"
	"testing"

	"fairrank/internal/core"
	"fairrank/internal/rank"
	"fairrank/internal/synth"
)

// TestConcurrentEnsembleAndSweeps trains an ensemble while several
// goroutines hammer one shared Evaluator with parallel sweeps — the
// -race exercise of the ISSUE: one workspace per goroutine, a pooled
// workspace per evaluator caller, no shared mutable state.
func TestConcurrentEnsembleAndSweeps(t *testing.T) {
	cfg := synth.DefaultSchoolConfig()
	cfg.N = 3000
	cfg.Seed = 123
	d, err := synth.GenerateSchool(cfg)
	if err != nil {
		t.Fatal(err)
	}
	scorer := rank.WeightedSum{Weights: synth.SchoolScoreWeights()}
	ev := core.NewEvaluator(d, scorer, rank.Beneficial)
	obj := core.DisparityObjective(0.05)
	opts := core.DefaultOptions()
	opts.SampleSize = 200

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		if _, err := core.Ensemble(d, scorer, obj, opts, 6); err != nil {
			t.Errorf("ensemble: %v", err)
		}
	}()

	bonus := []float64{1, 11.5, 12, 12}
	points := []core.SweepPoint{
		{Bonus: nil, K: 0.05},
		{Bonus: bonus, K: 0.05},
		{Bonus: bonus, K: 0.15},
		{Bonus: bonus, K: 0.30},
		{Bonus: bonus, K: 0.50},
	}
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for iter := 0; iter < 5; iter++ {
				if _, err := ev.DisparitySweep(points); err != nil {
					t.Errorf("disparity sweep: %v", err)
					return
				}
				if _, err := ev.NDCGSweep(points); err != nil {
					t.Errorf("ndcg sweep: %v", err)
					return
				}
				if _, err := ev.FindScaleForNDCG(bonus, 0.05, 0.95, 0.5); err != nil {
					t.Errorf("find scale: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()
}

// TestDescentStepAllocations asserts the headline engine property: the
// per-step allocation count of the descent loop is ~0. Two core-only runs
// differing just in ladder length isolate the per-step cost from the fixed
// per-run setup.
func TestDescentStepAllocations(t *testing.T) {
	if testing.Short() {
		t.Skip("allocation accounting under -short")
	}
	cfg := synth.DefaultSchoolConfig()
	cfg.N = 5000
	cfg.Seed = 123
	d, err := synth.GenerateSchool(cfg)
	if err != nil {
		t.Fatal(err)
	}
	scorer := rank.WeightedSum{Weights: synth.SchoolScoreWeights()}
	obj := core.DisparityObjective(0.05)

	runWith := func(steps int) func() {
		return func() {
			opts := core.DefaultOptions()
			opts.Seed = 5
			opts.RefineSteps = 0
			opts.Ladder[0].Steps = steps
			opts.Ladder[1].Steps = steps
			if _, err := core.Run(d, scorer, obj, opts); err != nil {
				t.Fatal(err)
			}
		}
	}

	short := testing.AllocsPerRun(3, runWith(50)) // 100 descent steps
	long := testing.AllocsPerRun(3, runWith(200)) // 400 descent steps
	perStep := (long - short) / 300
	if perStep > 0.05 {
		t.Errorf("descent step allocates %.3f objects/step (short=%v, long=%v); want ~0", perStep, short, long)
	}
}

// TestTrainerSteadyStateAllocations bounds the fixed cost too: a warm
// Trainer running a full core pass (200 steps) must stay under a handful
// of allocations total — result slices, sampler state, updater — not the
// thousands the pre-engine implementation made.
func TestTrainerSteadyStateAllocations(t *testing.T) {
	if testing.Short() {
		t.Skip("allocation accounting under -short")
	}
	cfg := synth.DefaultSchoolConfig()
	cfg.N = 5000
	cfg.Seed = 123
	d, err := synth.GenerateSchool(cfg)
	if err != nil {
		t.Fatal(err)
	}
	scorer := rank.WeightedSum{Weights: synth.SchoolScoreWeights()}
	obj := core.DisparityObjective(0.05)
	tr := core.NewTrainer(d, scorer)
	opts := core.DefaultOptions()
	opts.Seed = 5
	if _, err := tr.TrainCore(obj, opts); err != nil { // warm buffers
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(5, func() {
		if _, err := tr.TrainCore(obj, opts); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 40 {
		t.Errorf("warm 200-step TrainCore allocates %v objects; want <= 40", allocs)
	}
}
