package engine

import (
	"testing"

	"fairrank/internal/optimize"
)

func TestWorkspaceBuffersGrowAndReuse(t *testing.T) {
	ws := NewWorkspace(3)
	if ws.Dims() != 3 {
		t.Fatalf("Dims = %d, want 3", ws.Dims())
	}
	eff := ws.Eff(10)
	if len(eff) != 10 {
		t.Fatalf("Eff(10) length = %d", len(eff))
	}
	eff[5] = 42
	again := ws.Eff(8)
	if len(again) != 8 || again[5] != 42 {
		t.Fatalf("Eff(8) should reuse storage: len=%d, [5]=%v", len(again), again[5])
	}
	if len(ws.Objective()) != 3 || len(ws.Metric()) != 3 || len(ws.Pop()) != 3 {
		t.Fatal("dimension buffers must have length dims")
	}
	if got := len(ws.Sel(4)); got != 4 {
		t.Fatalf("Sel(4) length = %d", got)
	}
	if got := len(ws.Abs(6)); got != 6 {
		t.Fatalf("Abs(6) length = %d", got)
	}
	if got := len(ws.Ord(7)); got != 7 {
		t.Fatalf("Ord(7) length = %d", got)
	}
	if got := len(ws.SampleBuf(9)); got != 9 {
		t.Fatalf("SampleBuf(9) length = %d", got)
	}
	marks := ws.Marks(20)
	if len(marks) != 20 {
		t.Fatalf("Marks(20) length = %d", len(marks))
	}
	for i, m := range marks {
		if m {
			t.Fatalf("Marks must start all-false, mark[%d] set", i)
		}
	}
}

func TestLadderUpdaterWalksStages(t *testing.T) {
	ladder := optimize.Ladder{{LR: 1.0, Steps: 2}, {LR: 0.1, Steps: 3}}
	u := NewLadderUpdater(ladder, 1)
	b := []float64{10}
	dvec := []float64{1}
	wantLRs := []float64{1.0, 1.0, 0.1, 0.1, 0.1}
	want := 10.0
	for i, wantLR := range wantLRs {
		if got := u.Apply(b, dvec, i); got != wantLR {
			t.Fatalf("step %d: LR = %v, want %v", i, got, wantLR)
		}
		want -= wantLR * dvec[0]
	}
	if b[0] != want {
		t.Fatalf("bonus after ladder = %v, want %v", b[0], want)
	}
}

func TestAdamUpdaterTrailingAverage(t *testing.T) {
	u := NewAdamUpdater(1, 0.5, 1, 4, 2)
	b := []float64{1}
	// Only the last 2 of 4 steps enter the average.
	for i := 0; i < 4; i++ {
		u.Apply(b, []float64{0.1}, i)
		ClampBonus(b, 0)
		u.AfterClamp(b, i)
	}
	snapshot := b[0]
	u.Average(b)
	if b[0] == snapshot && u.count != 0 {
		// Average of trailing iterates rarely equals the final iterate; the
		// real assertion is that exactly two iterates were accumulated.
	}
	if u.count != 2 {
		t.Fatalf("trailing-average count = %d, want 2", u.count)
	}
}

func TestClampBonus(t *testing.T) {
	b := []float64{-1, 0.5, 9}
	ClampBonus(b, 3)
	if b[0] != 0 || b[1] != 0.5 || b[2] != 3 {
		t.Fatalf("ClampBonus = %v", b)
	}
	b2 := []float64{-2, 7}
	ClampBonus(b2, 0) // no cap
	if b2[0] != 0 || b2[1] != 7 {
		t.Fatalf("ClampBonus uncapped = %v", b2)
	}
}

func TestForEachCoversAllTasksDeterministically(t *testing.T) {
	const n = 137
	hits := make([]int, n)
	dims := make([]int, n)
	ForEach(n, 5, func(ws *Workspace, i int) {
		hits[i]++
		dims[i] = ws.Dims()
	})
	for i := 0; i < n; i++ {
		if hits[i] != 1 {
			t.Fatalf("task %d ran %d times", i, hits[i])
		}
		if dims[i] != 5 {
			t.Fatalf("task %d saw workspace dims %d", i, dims[i])
		}
	}
	ForEach(0, 1, func(*Workspace, int) { t.Fatal("ForEach(0) must not run tasks") })
}
