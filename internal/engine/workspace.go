package engine

import "fairrank/internal/rank"

// Workspace owns the scratch buffers of one descent or evaluation
// goroutine. All buffers grow on demand and are reused across steps, so
// the steady-state allocation count of a descent step is zero.
//
// A Workspace is not safe for concurrent use: create one per goroutine
// (see ForEach, which does exactly that).
type Workspace struct {
	dims int

	eff  []float64 // effective-score buffer, one entry per sampled object
	obj  []float64 // objective accumulator, one entry per fairness dim
	met  []float64 // per-prefix metric scratch (log-discounted objectives)
	pop  []float64 // sample-centroid scratch
	agg  []float64 // prefix-aggregate rows (sweep engine: one row per cut)
	sel  []int     // selection (top-k) index buffer
	abs  []int     // absolute-object-index buffer
	ord  []int     // full-ordering buffer
	smp  []int     // per-step sample index buffer
	cnt  []int     // prefix-count rows (sweep engine: group counts per cut)
	mark []bool    // absolute-id membership marks (kept all-false between uses)

	merge rank.MergeScratch // combo-run merge state (heap, cursors, offsets)
}

// NewWorkspace returns a workspace for objectives over dims fairness
// dimensions. Buffers are allocated lazily on first use.
func NewWorkspace(dims int) *Workspace {
	return &Workspace{
		dims: dims,
		obj:  make([]float64, dims),
		met:  make([]float64, dims),
		pop:  make([]float64, dims),
	}
}

// Dims reports the fairness dimensionality the workspace was created for.
func (w *Workspace) Dims() int { return w.dims }

// Eff returns the effective-score buffer resized to n.
func (w *Workspace) Eff(n int) []float64 {
	w.eff = growFloats(w.eff, n)
	return w.eff
}

// Objective returns the per-dimension objective accumulator.
func (w *Workspace) Objective() []float64 { return w.obj }

// Metric returns the per-dimension scratch used for intermediate metric
// vectors (e.g. one prefix of a log-discounted objective).
func (w *Workspace) Metric() []float64 { return w.met }

// Pop returns the per-dimension centroid scratch.
func (w *Workspace) Pop() []float64 { return w.pop }

// PopN returns the centroid scratch resized to n. The exposure sweep uses
// it for running sums over NumFair+1 groups (the named groups plus the
// unprotected rest), one entry wider than the per-dimension default.
func (w *Workspace) PopN(n int) []float64 {
	w.pop = growFloats(w.pop, n)
	return w.pop
}

// Sel returns the selection index buffer resized to n.
func (w *Workspace) Sel(n int) []int {
	w.sel = growInts(w.sel, n)
	return w.sel
}

// Abs returns the absolute-index buffer resized to n.
func (w *Workspace) Abs(n int) []int {
	w.abs = growInts(w.abs, n)
	return w.abs
}

// Ord returns the ordering buffer resized to n.
func (w *Workspace) Ord(n int) []int {
	w.ord = growInts(w.ord, n)
	return w.ord
}

// Agg returns the prefix-aggregate scratch resized to n. The sweep engine
// carves it into per-cut aggregate rows (prefix centroids, prefix DCG
// values), so an S-point sweep reuses one buffer across every cut.
func (w *Workspace) Agg(n int) []float64 {
	w.agg = growFloats(w.agg, n)
	return w.agg
}

// Cnts returns the prefix-count scratch resized to n. The sweep engine
// carves it into per-cut integer rows (group membership and false-positive
// counts).
func (w *Workspace) Cnts(n int) []int {
	w.cnt = growInts(w.cnt, n)
	return w.cnt
}

// SampleBuf returns the per-step sample index buffer resized to n. It is
// distinct from Sel/Abs/Ord because the sample must stay live while the
// objective evaluation uses those buffers.
func (w *Workspace) SampleBuf(n int) []int {
	w.smp = growInts(w.smp, n)
	return w.smp
}

// Merge returns the combo-run merge scratch. Like every other buffer it
// is sized on demand (by the merge itself) and reused across requests,
// so steady-state merges allocate nothing.
func (w *Workspace) Merge() *rank.MergeScratch { return &w.merge }

// Marks returns the membership-mark buffer sized for a universe of n
// absolute object ids. Callers must reset every mark they set before
// returning, so the buffer stays all-false between uses.
func (w *Workspace) Marks(n int) []bool {
	if cap(w.mark) < n {
		w.mark = make([]bool, n)
	}
	return w.mark[:n]
}

func growFloats(b []float64, n int) []float64 {
	if cap(b) < n {
		return make([]float64, n)
	}
	return b[:n]
}

func growInts(b []int, n int) []int {
	if cap(b) < n {
		return make([]int, n)
	}
	return b[:n]
}
