package service

import (
	"fmt"
	"sync"
	"testing"
)

func TestLRUEviction(t *testing.T) {
	c := newLRU(2)
	c.put("a", 1)
	c.put("b", 2)
	c.put("c", 3) // evicts a
	if _, ok := c.get("a"); ok {
		t.Error("a survived eviction")
	}
	if v, ok := c.get("b"); !ok || v.(int) != 2 {
		t.Error("b lost")
	}
	if v, ok := c.get("c"); !ok || v.(int) != 3 {
		t.Error("c lost")
	}
	if c.len() != 2 {
		t.Errorf("len = %d, want 2", c.len())
	}
}

func TestLRURecencyOrder(t *testing.T) {
	c := newLRU(2)
	c.put("a", 1)
	c.put("b", 2)
	c.get("a")    // a is now most recent
	c.put("c", 3) // evicts b, not a
	if _, ok := c.get("a"); !ok {
		t.Error("recently used entry evicted")
	}
	if _, ok := c.get("b"); ok {
		t.Error("least recently used entry survived")
	}
}

func TestLRURefresh(t *testing.T) {
	c := newLRU(2)
	c.put("a", 1)
	c.put("a", 10)
	if v, _ := c.get("a"); v.(int) != 10 {
		t.Errorf("refresh lost: %v", v)
	}
	if c.len() != 1 {
		t.Errorf("len = %d, want 1", c.len())
	}
}

func TestLRUDisabled(t *testing.T) {
	c := newLRU(-1)
	c.put("a", 1)
	if _, ok := c.get("a"); ok {
		t.Error("disabled cache cached")
	}
}

func TestLRUConcurrent(t *testing.T) {
	c := newLRU(64)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				key := fmt.Sprintf("k%d", (w*31+i)%100)
				if i%2 == 0 {
					c.put(key, i)
				} else {
					c.get(key)
				}
			}
		}(w)
	}
	wg.Wait()
	if c.len() > 64 {
		t.Errorf("capacity exceeded: %d", c.len())
	}
}

func TestCacheKeyCanonicalization(t *testing.T) {
	key := func(req TrainRequest) string {
		p, err := req.normalize()
		if err != nil {
			t.Fatal(err)
		}
		return p.cacheKey()
	}
	n100, n200, n50 := 100, 200, 50
	// Mode "whole" ignores sample_size and refine_steps; "core" ignores
	// refine_steps. Requests differing only in ignored fields must share
	// one cache entry.
	if key(TrainRequest{Dataset: "school", K: 0.05, Mode: ModeWhole, SampleSize: n100}) !=
		key(TrainRequest{Dataset: "school", K: 0.05, Mode: ModeWhole, SampleSize: n200}) {
		t.Error("whole-mode keys differ on ignored sample_size")
	}
	if key(TrainRequest{Dataset: "school", K: 0.05, Mode: ModeCore, RefineSteps: &n50}) !=
		key(TrainRequest{Dataset: "school", K: 0.05, Mode: ModeCore}) {
		t.Error("core-mode keys differ on ignored refine_steps")
	}
	// Meaningful fields must still split the key.
	if key(TrainRequest{Dataset: "school", K: 0.05}) == key(TrainRequest{Dataset: "school", K: 0.05, Seed: 2}) {
		t.Error("different seeds share a key")
	}
	if key(TrainRequest{Dataset: "school", K: 0.05}) == key(TrainRequest{Dataset: "school", K: 0.1}) {
		t.Error("different fractions share a key")
	}
	if key(TrainRequest{Dataset: "school", K: 0.05, Mode: ModeFull, SampleSize: n100}) ==
		key(TrainRequest{Dataset: "school", K: 0.05, Mode: ModeFull, SampleSize: n200}) {
		t.Error("full-mode sample_size ignored in key")
	}
}
