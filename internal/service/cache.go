package service

import (
	"container/list"
	"sync"
)

// lruCache is a mutex-guarded LRU for train results. Training is
// deterministic given the normalized request, so entries never go stale;
// eviction only bounds memory. A negative capacity disables the cache.
type lruCache struct {
	mu    sync.Mutex
	max   int
	ll    *list.List
	items map[string]*list.Element
}

type lruEntry struct {
	key string
	val any
}

func newLRU(max int) *lruCache {
	return &lruCache{max: max, ll: list.New(), items: make(map[string]*list.Element)}
}

// get returns the cached value and marks it most recently used.
func (c *lruCache) get(key string) (any, bool) {
	if c.max < 0 {
		return nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		return nil, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*lruEntry).val, true
}

// put inserts or refreshes a value, evicting the least recently used
// entry beyond capacity.
func (c *lruCache) put(key string, v any) {
	if c.max < 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		el.Value.(*lruEntry).val = v
		c.ll.MoveToFront(el)
		return
	}
	c.items[key] = c.ll.PushFront(&lruEntry{key: key, val: v})
	for c.ll.Len() > c.max {
		tail := c.ll.Back()
		c.ll.Remove(tail)
		delete(c.items, tail.Value.(*lruEntry).key)
	}
}

// len reports the number of cached entries.
func (c *lruCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}
