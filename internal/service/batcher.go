package service

import (
	"context"
	"fmt"
	"net/http"
	"slices"
	"sync"
	"sync/atomic"
	"time"

	"fairrank/internal/core"
	"fairrank/internal/faultinject"
	"fairrank/internal/report"
)

// Cross-request micro-batching. Singleflight coalesces byte-identical
// requests; the batcher goes one step further and coalesces concurrent
// DISTINCT requests that share a (dataset, canonical bonus bits) pair —
// the exact sharing unit of the paper's additive design, under which any
// k, object list, or metric is answerable from one ranked pass. Requests
// joining a window wait for companions up to BatchMaxWait (or until
// BatchSize of them have gathered), then one core.AnswerBatchCtx pass
// sized to the batch's max-cut union answers everyone, and the answers
// fan out over per-caller channels. Each caller's response is
// byte-identical to the unbatched path; the cost per request drops with
// load instead of rising.

// DefaultBatchSize is the size threshold applied when batching is
// enabled (BatchMaxWait set) without an explicit BatchSize.
const DefaultBatchSize = 16

// DefaultBatchWait is the window applied when batching is enabled
// (BatchSize set) without an explicit BatchMaxWait. Two milliseconds is
// far below any ranked pass on a population worth batching, so the
// added latency is noise, while a concurrent burst lands well within it.
const DefaultBatchWait = 2 * time.Millisecond

// batcher collects concurrent same-bonus requests into windows and runs
// one shared pass per window. It sits UNDER the per-request cache probes
// and singleflight (only cache-missing work joins a window) and ABOVE
// the core entry point.
type batcher struct {
	size    int
	wait    time.Duration
	onPanic func()

	mu     sync.Mutex
	groups map[string]*batchGroup

	// Gauges for /healthz: windows flushed, member requests served
	// through a batch, and the high-water batch size.
	flushes atomic.Int64
	batched atomic.Int64
	largest atomic.Int64
}

func newBatcher(size int, wait time.Duration, onPanic func()) *batcher {
	return &batcher{size: size, wait: wait, onPanic: onPanic, groups: make(map[string]*batchGroup)}
}

// batchGroup is one open window: every call that joined, the entry and
// bonus they share, and the timer that flushes the window if the size
// threshold never arrives.
type batchGroup struct {
	key     string
	entry   *Entry
	bonus   []float64
	timer   *time.Timer
	calls   []*batchCall
	fired   bool // a size-threshold flush goroutine has been spawned
	flushed bool // a flush has claimed the group (idempotency latch)
}

type batchCall struct {
	ctx     context.Context
	queries []core.BatchQuery
	done    chan batchOutcome // buffered: a flush never blocks on a gone caller
}

type batchOutcome struct {
	answers []core.BatchAnswer
	err     error
}

// batchKey is the window identity: dataset plus the canonical bonus-bits
// signature — the same canonicalization the cache keys use, so "0" and
// an all-zero vector share a window just as they share cache rows.
func batchKey(dataset string, bonus []float64) string {
	b := make([]byte, 0, 64)
	b = append(b, "batch|"...)
	b = append(b, dataset...)
	b = append(b, '|')
	b = appendBonusSig(b, bonus)
	return string(b)
}

// stats snapshots the gauges plus the number of currently open windows.
func (b *batcher) stats() (flushes, batched, largest int64, windows int) {
	b.mu.Lock()
	windows = len(b.groups)
	b.mu.Unlock()
	return b.flushes.Load(), b.batched.Load(), b.largest.Load(), windows
}

// submit enqueues queries under the (dataset, bonus) window and blocks
// until the batch answers or the caller's own ctx dies. The returned
// answers are the caller's sub-range of the batch, in query order. A
// caller whose ctx dies mid-window returns its raw context error
// immediately (the handler maps it to 499/504) without stalling the
// window: the flush skips members whose context is already dead.
func (b *batcher) submit(ctx context.Context, e *Entry, bonus []float64, queries []core.BatchQuery) ([]core.BatchAnswer, error) {
	call := &batchCall{ctx: ctx, queries: queries, done: make(chan batchOutcome, 1)}
	key := batchKey(e.name, bonus)
	b.mu.Lock()
	g, ok := b.groups[key]
	if !ok {
		g = &batchGroup{key: key, entry: e, bonus: append([]float64(nil), bonus...)}
		b.groups[key] = g
		g.timer = time.AfterFunc(b.wait, func() { b.flush(g) })
	}
	g.calls = append(g.calls, call)
	trigger := !g.fired && len(g.calls) >= b.size
	if trigger {
		g.fired = true
	}
	b.mu.Unlock()
	if trigger {
		g.timer.Stop()
		go b.flush(g)
	}
	select {
	case out := <-call.done:
		return out.answers, out.err
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// flush claims the group (idempotent: the timer and the size trigger can
// both arrive), drops it from the window map so late arrivals open a new
// window, and runs one shared pass for every caller still listening.
func (b *batcher) flush(g *batchGroup) {
	b.mu.Lock()
	if g.flushed {
		b.mu.Unlock()
		return
	}
	g.flushed = true
	delete(b.groups, g.key)
	calls := g.calls
	b.mu.Unlock()

	live := make([]*batchCall, 0, len(calls))
	for _, c := range calls {
		if c.ctx.Err() != nil {
			continue // the caller already answered from its own context error
		}
		live = append(live, c)
	}
	if len(live) == 0 {
		return
	}
	b.flushes.Add(1)
	b.batched.Add(int64(len(live)))
	for {
		old := b.largest.Load()
		if int64(len(live)) <= old || b.largest.CompareAndSwap(old, int64(len(live))) {
			break
		}
	}
	g.entry.batchFlushes.Add(1)
	g.entry.batchedRequests.Add(int64(len(live)))

	// The pass runs under the BATCH's context, canceled only when every
	// member has gone: one caller's disconnect never poisons the answers
	// of the rest, while a fully abandoned batch stops at the engine's
	// next cancellation checkpoint instead of computing for nobody. The
	// watcher goroutines exit through finished once the pass returns.
	bctx, cancel := context.WithCancel(context.Background())
	finished := make(chan struct{})
	var gone atomic.Int64
	for _, c := range live {
		go func(c *batchCall) {
			select {
			case <-c.ctx.Done():
				if gone.Add(1) == int64(len(live)) {
					cancel()
				}
			case <-finished:
			}
		}(c)
	}

	answers, err := b.run(bctx, g, live)
	close(finished)
	cancel()

	off := 0
	for _, c := range live {
		out := batchOutcome{err: err}
		if err == nil {
			out.answers = answers[off : off+len(c.queries)]
		}
		off += len(c.queries)
		c.done <- out
	}
}

// run executes the shared pass behind a panic shield: a panic (injected
// at batcher.flush or real) is converted to the same 500 the recovery
// middleware answers, every waiter is released with it, and the panic
// counter ticks exactly once per batch. Nothing reaches any cache from
// here — members cache their own rows only after their submit returns
// success, so a failed batch leaves every member's keys cold.
func (b *batcher) run(ctx context.Context, g *batchGroup, live []*batchCall) (answers []core.BatchAnswer, err error) {
	defer func() {
		if v := recover(); v != nil {
			b.onPanic()
			answers, err = nil, errBatchPanic
		}
	}()
	if err := faultinject.Fire(ctx, faultinject.SiteBatcherFlush); err != nil {
		return nil, err
	}
	total := 0
	for _, c := range live {
		total += len(c.queries)
	}
	qs := make([]core.BatchQuery, 0, total)
	for _, c := range live {
		qs = append(qs, c.queries...)
	}
	return g.entry.eval.AnswerBatchCtx(ctx, g.bonus, qs)
}

// errBatchPanic mirrors the recovery middleware's panic answer. Batch
// members wait on a channel rather than in the frame that panicked, so
// the conversion to a response happens here instead of in recovered.
var errBatchPanic = &httpError{status: http.StatusInternalServerError, msg: "internal error"}

func isZeroBonus(b []float64) bool {
	for _, v := range b {
		if v != 0 {
			return false
		}
	}
	return true
}

// batchableSweep reports whether a sweep's missing points can ride a
// micro-batch: batching must be enabled and every point must share one
// non-zero bonus vector. A zero bonus is answered from the cached base
// order for free (nothing to share), and a multi-bonus sweep already
// fans its per-bonus groups over the engine worker pool.
func (s *Server) batchableSweep(pts []core.SweepPoint) ([]float64, bool) {
	if s.batch == nil || len(pts) == 0 {
		return nil, false
	}
	first := pts[0].Bonus
	if isZeroBonus(first) {
		return nil, false
	}
	for _, pt := range pts[1:] {
		if !slices.Equal(first, pt.Bonus) {
			return nil, false
		}
	}
	return first, true
}

// batchSweep answers one single-bonus sweep through the micro-batcher:
// each point becomes one batch query, and the shared pass returns rows
// bit-identical to the direct sweep engine — both resume the same prefix
// folds over the same ranked prefix.
func (s *Server) batchSweep(ctx context.Context, e *Entry, metric string, bonus []float64, pts []core.SweepPoint) ([][]float64, []float64, error) {
	// The kind comes from the metric registry. An unmapped metric used to
	// fall through a switch with no default, zero-valuing the kind into
	// BatchDisparity and silently serving disparity rows under the wrong
	// metric name; now it refuses loudly before any query is built.
	spec, ok := metricByName(metric)
	if !ok {
		return nil, nil, fmt.Errorf("metric %q has no batch kind in the service registry", metric)
	}
	qs := make([]core.BatchQuery, len(pts))
	for i, pt := range pts {
		qs[i] = core.BatchQuery{Kind: spec.kind, K: pt.K}
	}
	answers, err := s.batch.submit(ctx, e, bonus, qs)
	if err != nil {
		return nil, nil, err
	}
	// Per-query errors (ndcg's missing outcomes at a cut, exposure's
	// degenerate prefixes) fail the whole sweep in the exact shape the
	// direct engine reports: missing-local point index plus fraction.
	for i, a := range answers {
		if a.Err != nil {
			return nil, nil, fmt.Errorf("core: sweep point %d (k=%g): %w", i, pts[i].K, a.Err)
		}
	}
	if spec.scalar {
		vals := make([]float64, len(pts))
		for i, a := range answers {
			vals[i] = a.Value
		}
		return nil, vals, nil
	}
	vecs := make([][]float64, len(pts))
	for i, a := range answers {
		vecs[i] = a.Vector
	}
	return vecs, nil, nil
}

// batchReport builds one audit bundle's stats through the micro-batcher.
// Validation mirrors the direct path exactly — the same report-layer
// function, run before the window — so a malformed request is rejected
// with byte-identical errors and never joins a batch, and the margin
// normalization matches BuildBundleStats' (zero maps to the default).
func (s *Server) batchReport(ctx context.Context, e *Entry, cfg report.BundleConfig) (*core.BundleStats, error) {
	margins, err := report.ValidateBundleConfig(e.eval, cfg)
	if err != nil {
		return nil, err
	}
	bcfg := &core.BundleStatsConfig{
		Bonus:           cfg.Bonus,
		K:               cfg.K,
		Margins:         margins,
		IncludeFPR:      cfg.IncludeFPR,
		IncludeExposure: cfg.IncludeExposure,
	}
	answers, err := s.batch.submit(ctx, e, cfg.Bonus, []core.BatchQuery{
		{Kind: core.BatchBundle, Bundle: bcfg},
	})
	if err != nil {
		return nil, err
	}
	if answers[0].Err != nil {
		return nil, answers[0].Err
	}
	return answers[0].Bundle, nil
}
