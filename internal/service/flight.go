package service

import (
	"context"
	"fmt"
	"sync"
)

// flightGroup coalesces concurrent duplicate work: while one caller (the
// leader) runs fn for a key, every other caller with the same key blocks
// and shares the leader's result instead of re-running the pipeline. The
// server wraps the cold paths of /v1/train and /v1/evaluate in it, so a
// thundering herd of identical what-if requests — N dashboards refreshing
// the same query — costs one training run, not N.
//
// Unlike a cache, a flight lives only as long as its computation: the
// result itself is stored in the LRU by fn, and late arrivals find it
// there. fn must therefore populate the cache before returning (the
// handlers' fns do), or re-check it first, so the delete-after-done window
// cannot duplicate work.
type flightGroup struct {
	mu sync.Mutex
	m  map[string]*flight
}

type flight struct {
	done chan struct{}
	val  any
	err  error
}

// Do runs fn once per key among concurrent callers. It reports whether the
// result was shared from another caller's execution.
//
// ctx governs only the *waiting*: a follower whose own request is
// canceled or times out stops waiting and gets its context error back,
// while the leader keeps running for everyone else. The leader's fn sees
// cancellation through whatever context fn itself captured.
func (g *flightGroup) Do(ctx context.Context, key string, fn func() (any, error)) (val any, shared bool, err error) {
	g.mu.Lock()
	if g.m == nil {
		g.m = make(map[string]*flight)
	}
	if f, ok := g.m[key]; ok {
		g.mu.Unlock()
		select {
		case <-f.done:
			return f.val, true, f.err
		case <-ctx.Done():
			return nil, true, ctx.Err()
		}
	}
	f := &flight{done: make(chan struct{})}
	g.m[key] = f
	g.mu.Unlock()

	committed := false
	defer func() {
		if !committed { // fn panicked: release waiters, then let it propagate
			f.err = fmt.Errorf("service: coalesced request failed")
			close(f.done)
		}
		g.mu.Lock()
		delete(g.m, key)
		g.mu.Unlock()
	}()
	f.val, f.err = fn()
	committed = true
	close(f.done)
	return f.val, false, f.err
}
