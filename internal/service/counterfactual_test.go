package service

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"net/http"
	"net/url"
	"reflect"
	"strings"
	"sync"
	"testing"

	"fairrank/internal/report"
)

// TestCounterfactualMatchesCore pins the endpoint's central contract: the
// HTTP answer is exactly the core engine's answer for the registered
// evaluator.
func TestCounterfactualMatchesCore(t *testing.T) {
	s, ts := newTestServer(t)
	bonus := []float64{2, 10.5, 9, 12}
	objs := []int{0, 17, 500, 1234, 2499}
	var resp CounterfactualResponse
	code, body := postJSON(t, ts.URL+"/v1/counterfactual",
		CounterfactualRequest{Dataset: "school", Bonus: bonus, K: 0.05, Objects: objs}, &resp)
	if code != 200 {
		t.Fatalf("counterfactual: %d %s", code, body)
	}
	if len(resp.Results) != len(objs) || resp.CachedObjects != 0 {
		t.Fatalf("shape: %d results, %d cached", len(resp.Results), resp.CachedObjects)
	}
	e, _ := s.reg.Get("school")
	want, err := e.eval.CounterfactualBatch(bonus, 0.05, objs)
	if err != nil {
		t.Fatal(err)
	}
	for i, got := range resp.Results {
		w := want[i]
		if got.Object != w.Object || got.Selected != w.Selected || got.Rank != w.Rank ||
			got.Effective != w.Effective || got.Cutoff != w.Cutoff || got.Competitor != w.Competitor ||
			got.ScoreDelta != w.ScoreDelta || got.BonusDelta != w.BonusDelta ||
			got.Feasible != w.Feasible || !reflect.DeepEqual(got.PerAttribute, w.PerAttribute) {
			t.Errorf("result %d = %+v, core says %+v", i, got, w)
		}
	}
}

// TestCounterfactualValidationHTTP covers the request rejections: unknown
// dataset, bad fraction, empty/oversized object lists, out-of-range
// objects, mis-sized and non-finite bonus vectors, unknown fields.
func TestCounterfactualValidationHTTP(t *testing.T) {
	_, ts := newTestServer(t)
	post := func(body string) (int, string) {
		t.Helper()
		resp, err := http.Post(ts.URL+"/v1/counterfactual", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var sb strings.Builder
		buf := make([]byte, 4096)
		for {
			n, err := resp.Body.Read(buf)
			sb.Write(buf[:n])
			if err != nil {
				break
			}
		}
		return resp.StatusCode, sb.String()
	}
	cases := []struct {
		name, body string
		code       int
	}{
		{"unknown dataset", `{"dataset":"nope","k":0.1,"objects":[0]}`, 404},
		{"bad fraction", `{"dataset":"school","k":0,"objects":[0]}`, 400},
		{"no objects", `{"dataset":"school","k":0.1,"objects":[]}`, 400},
		{"negative object", `{"dataset":"school","k":0.1,"objects":[-1]}`, 400},
		{"out of range", `{"dataset":"school","k":0.1,"objects":[2500]}`, 400},
		{"mis-sized bonus", `{"dataset":"school","k":0.1,"objects":[0],"bonus":[1]}`, 400},
		{"negative bonus", `{"dataset":"school","k":0.1,"objects":[0],"bonus":[-1,0,0,0]}`, 400},
		{"unknown field", `{"dataset":"school","k":0.1,"objects":[0],"granularity":2}`, 400},
	}
	for _, tc := range cases {
		if code, body := post(tc.body); code != tc.code {
			t.Errorf("%s: %d %s, want %d", tc.name, code, body, tc.code)
		}
	}
}

// TestCounterfactualPerObjectCache pins the per-object LRU: a second
// request covering a subset of earlier objects is answered without
// ranking, and a widened list ranks only the new objects.
func TestCounterfactualPerObjectCache(t *testing.T) {
	s, ts := newTestServer(t)
	bonus := []float64{2, 10.5, 9, 12}
	req := func(objs ...int) CounterfactualRequest {
		return CounterfactualRequest{Dataset: "school", Bonus: bonus, K: 0.05, Objects: objs}
	}
	var first CounterfactualResponse
	if code, body := postJSON(t, ts.URL+"/v1/counterfactual", req(1, 2, 3, 4), &first); code != 200 {
		t.Fatalf("cold: %d %s", code, body)
	}
	if got := s.cfExecs.Load(); got != 1 {
		t.Fatalf("cold executions = %d, want 1", got)
	}

	// A reordered, duplicated subset is pure cache.
	var sub CounterfactualResponse
	if code, body := postJSON(t, ts.URL+"/v1/counterfactual", req(3, 1, 3), &sub); code != 200 {
		t.Fatalf("subset: %d %s", code, body)
	}
	if sub.CachedObjects != 3 || s.cfExecs.Load() != 1 {
		t.Errorf("subset: cached=%d execs=%d, want 3 and 1", sub.CachedObjects, s.cfExecs.Load())
	}
	if !reflect.DeepEqual(mustResult(t, sub, 3), mustResult(t, first, 3)) ||
		!reflect.DeepEqual(mustResult(t, sub, 1), mustResult(t, first, 1)) {
		t.Error("subset rows differ from the original answers")
	}

	// A widened list computes only the new objects.
	var wide CounterfactualResponse
	if code, body := postJSON(t, ts.URL+"/v1/counterfactual", req(1, 2, 7, 8), &wide); code != 200 {
		t.Fatalf("widened: %d %s", code, body)
	}
	if wide.CachedObjects != 2 || s.cfExecs.Load() != 2 {
		t.Errorf("widened: cached=%d execs=%d, want 2 and 2", wide.CachedObjects, s.cfExecs.Load())
	}

	// A different k is a different audit: cold again.
	other := req(1)
	other.K = 0.1
	var cold CounterfactualResponse
	if code, body := postJSON(t, ts.URL+"/v1/counterfactual", other, &cold); code != 200 {
		t.Fatalf("other-k: %d %s", code, body)
	}
	if cold.CachedObjects != 0 {
		t.Errorf("other-k reports %d cached objects, want 0", cold.CachedObjects)
	}
}

// mustResult digs object obj's row out of a response by id; PerAttribute
// is flattened for comparability as a struct value.
func mustResult(t *testing.T, resp CounterfactualResponse, obj int) CounterfactualResult {
	t.Helper()
	for _, r := range resp.Results {
		if r.Object == obj {
			r.PerAttribute = nil
			return r
		}
	}
	t.Fatalf("object %d not in response", obj)
	return CounterfactualResult{}
}

// TestCounterfactualCoalescing: identical concurrent cold requests rank
// once and share the results. Run under -race in CI.
func TestCounterfactualCoalescing(t *testing.T) {
	s, ts := newTestServer(t)
	req := CounterfactualRequest{Dataset: "school", Bonus: []float64{1, 2, 3, 4}, K: 0.07,
		Objects: []int{5, 50, 500}}
	const workers = 12
	start := make(chan struct{})
	resps := make([]CounterfactualResponse, workers)
	fails := make([]string, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			<-start
			code, body := postJSON(t, ts.URL+"/v1/counterfactual", req, &resps[w])
			if code != 200 {
				fails[w] = fmt.Sprintf("worker %d: %d %s", w, code, body)
			}
		}(w)
	}
	close(start)
	wg.Wait()
	for _, f := range fails {
		if f != "" {
			t.Fatal(f)
		}
	}
	if got := s.cfExecs.Load(); got != 1 {
		t.Errorf("cold batch executed %d times for %d identical concurrent requests, want 1", got, workers)
	}
	for w := 1; w < workers; w++ {
		if !reflect.DeepEqual(resps[w].Results, resps[0].Results) {
			t.Errorf("worker %d got different results than worker 0", w)
		}
	}
}

// reportURL builds a /v1/report query.
func reportURL(ts string, params map[string]string) string {
	q := url.Values{}
	for k, v := range params {
		q.Set(k, v)
	}
	return ts + "/v1/report?" + q.Encode()
}

// TestReportEndpointFormats: the bundle answers in all three formats with
// the right content types, and the JSON form matches a directly built
// bundle.
func TestReportEndpointFormats(t *testing.T) {
	s, ts := newTestServer(t)
	base := map[string]string{"dataset": "school", "k": "0.05", "bonus": "2,10.5,9,12"}

	resp, err := http.Get(reportURL(ts.URL, base))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 || !strings.HasPrefix(resp.Header.Get("Content-Type"), "application/json") {
		t.Fatalf("json report: %d %s", resp.StatusCode, resp.Header.Get("Content-Type"))
	}
	var got report.Bundle
	if err := json.NewDecoder(resp.Body).Decode(&got); err != nil {
		t.Fatal(err)
	}
	e, _ := s.reg.Get("school")
	want, err := report.BuildBundle(e.eval, report.BundleConfig{
		Dataset: "school", Bonus: []float64{2, 10.5, 9, 12}, K: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	if got.Version != want.Version || got.Selected != want.Selected || got.Cutoff != want.Cutoff ||
		!reflect.DeepEqual(got.Policy, want.Policy) || !reflect.DeepEqual(got.Margins, want.Margins) {
		t.Errorf("HTTP bundle differs from direct build:\n got %+v\nwant %+v", got, *want)
	}

	for format, ctype := range map[string]string{"csv": "text/csv", "md": "text/markdown", "markdown": "text/markdown"} {
		p := map[string]string{"format": format}
		for k, v := range base {
			p[k] = v
		}
		r2, err := http.Get(reportURL(ts.URL, p))
		if err != nil {
			t.Fatal(err)
		}
		if r2.StatusCode != 200 || !strings.HasPrefix(r2.Header.Get("Content-Type"), ctype) {
			t.Errorf("%s report: %d %s", format, r2.StatusCode, r2.Header.Get("Content-Type"))
		}
		if format == "csv" {
			cr := csv.NewReader(r2.Body)
			cr.FieldsPerRecord = -1 // sections have different widths
			rows, err := cr.ReadAll()
			if err != nil || len(rows) == 0 {
				t.Errorf("csv report does not parse: %v", err)
			}
		}
		r2.Body.Close()
	}
}

// TestReportCachesBundleAcrossFormats: the built bundle is cached
// independently of the rendering format — three formats, one build.
func TestReportCachesBundleAcrossFormats(t *testing.T) {
	s, ts := newTestServer(t)
	base := map[string]string{"dataset": "school", "k": "0.05", "bonus": "1,2,3,4"}
	for _, format := range []string{"json", "csv", "md", "json"} {
		p := map[string]string{"format": format}
		for k, v := range base {
			p[k] = v
		}
		resp, err := http.Get(reportURL(ts.URL, p))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != 200 {
			t.Fatalf("%s report: %d", format, resp.StatusCode)
		}
	}
	if got := s.reportExecs.Load(); got != 1 {
		t.Errorf("bundle built %d times for 4 requests in 3 formats, want 1", got)
	}
}

// TestReportValidationHTTP covers the rejections: missing/zero bonus, bad
// fraction, bad margins, forced FPR on an outcome-less dataset, unknown
// format. compas (outcomes) must include FPR by default; school must not.
func TestReportValidationHTTP(t *testing.T) {
	_, ts := newTestServer(t)
	get := func(params map[string]string) (int, string) {
		t.Helper()
		resp, err := http.Get(reportURL(ts.URL, params))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var sb strings.Builder
		buf := make([]byte, 8192)
		for {
			n, err := resp.Body.Read(buf)
			sb.Write(buf[:n])
			if err != nil {
				break
			}
		}
		return resp.StatusCode, sb.String()
	}
	cases := []struct {
		name   string
		params map[string]string
		code   int
		want   string
	}{
		{"missing bonus", map[string]string{"dataset": "school", "k": "0.05"}, 400, "missing bonus"},
		{"zero bonus", map[string]string{"dataset": "school", "k": "0.05", "bonus": "0,0,0,0"}, 400, "all zero"},
		{"bad k", map[string]string{"dataset": "school", "k": "1.5", "bonus": "1,2,3,4"}, 400, "fraction"},
		{"bad margins", map[string]string{"dataset": "school", "k": "0.05", "bonus": "1,2,3,4", "margins": "-2"}, 400, "margins"},
		{"oversized margins", map[string]string{"dataset": "school", "k": "0.05", "bonus": "1,2,3,4", "margins": "100000000"}, 400, "limit"},
		{"fpr without outcomes", map[string]string{"dataset": "school", "k": "0.05", "bonus": "1,2,3,4", "fpr": "1"}, 400, "outcomes"},
		{"unknown format", map[string]string{"dataset": "school", "k": "0.05", "bonus": "1,2,3,4", "format": "xml"}, 400, "format"},
		{"unknown dataset", map[string]string{"dataset": "nope", "k": "0.05", "bonus": "1"}, 404, "unknown dataset"},
	}
	for _, tc := range cases {
		code, body := get(tc.params)
		if code != tc.code || !strings.Contains(body, tc.want) {
			t.Errorf("%s: %d %s, want %d mentioning %q", tc.name, code, body, tc.code, tc.want)
		}
	}

	// Default FPR behavior: present with outcomes, absent without.
	code, body := get(map[string]string{"dataset": "compas", "k": "0.2", "bonus": "1,1,1,1,1,1"})
	if code != 200 || !strings.Contains(body, `"fpr_diff"`) {
		t.Errorf("compas report lacks fpr_diff: %d %s", code, body[:min(len(body), 300)])
	}
	code, body = get(map[string]string{"dataset": "school", "k": "0.05", "bonus": "1,2,3,4"})
	if code != 200 || strings.Contains(body, `"fpr_diff"`) {
		t.Errorf("school report unexpectedly carries fpr_diff: %d", code)
	}
	// fpr=0 opts an outcome-bearing dataset out.
	code, body = get(map[string]string{"dataset": "compas", "k": "0.2", "bonus": "1,1,1,1,1,1", "fpr": "0"})
	if code != 200 || strings.Contains(body, `"fpr_diff"`) {
		t.Errorf("fpr=0 still carries fpr_diff: %d", code)
	}
}

// TestReportCoalescing: identical concurrent cold report requests build
// the bundle exactly once. Run under -race in CI.
func TestReportCoalescing(t *testing.T) {
	s, ts := newTestServer(t)
	u := reportURL(ts.URL, map[string]string{"dataset": "school", "k": "0.06", "bonus": "2,2,2,2"})
	const workers = 12
	start := make(chan struct{})
	fails := make([]string, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			<-start
			resp, err := http.Get(u)
			if err != nil {
				fails[w] = err.Error()
				return
			}
			resp.Body.Close()
			if resp.StatusCode != 200 {
				fails[w] = fmt.Sprintf("worker %d: %d", w, resp.StatusCode)
			}
		}(w)
	}
	close(start)
	wg.Wait()
	for _, f := range fails {
		if f != "" {
			t.Fatal(f)
		}
	}
	if got := s.reportExecs.Load(); got != 1 {
		t.Errorf("bundle built %d times for %d identical concurrent requests, want 1", got, workers)
	}
}
