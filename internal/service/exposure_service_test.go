package service

import (
	"context"
	"net/http"
	"strings"
	"testing"
	"time"

	"fairrank/internal/core"
	"fairrank/internal/metrics"
)

// TestEvaluateExposureFamily pins the serving seam of the exposure
// family: /v1/evaluate rows for exposure, expratio and topk are
// bit-identical to the pointwise evaluator calls, exposure norms are the
// DDP recovered from the cached per-capita vector, and a replay answers
// entirely from the per-point cache with the same bytes.
func TestEvaluateExposureFamily(t *testing.T) {
	s, ts := newTestServer(t)
	e, ok := s.reg.Get("compas")
	if !ok {
		t.Fatal("compas not registered")
	}
	bonus := []float64{2, 0, 1.5, 3, 0, 1}
	points := []SweepPointRequest{
		{Bonus: nil, K: 0.05},
		{Bonus: bonus, K: 0.05},
		{Bonus: bonus, K: 0.31},
		{Bonus: bonus, K: 1},
	}
	dims := e.d.NumFair()

	var expo EvaluateResponse
	if code, body := postJSON(t, ts.URL+"/v1/evaluate", EvaluateRequest{Dataset: "compas", Metric: "exposure", Points: points}, &expo); code != 200 {
		t.Fatalf("exposure sweep: %d %s", code, body)
	}
	if len(expo.Vectors) != len(points) || len(expo.Norms) != len(points) || expo.Values != nil {
		t.Fatalf("exposure shape: %d vectors, %d norms, values %v", len(expo.Vectors), len(expo.Norms), expo.Values)
	}
	for i, pt := range points {
		wantVec, wantDDP, err := e.eval.ExposureCtx(context.Background(), pt.Bonus, pt.K)
		if err != nil {
			t.Fatalf("pointwise exposure %d: %v", i, err)
		}
		if len(expo.Vectors[i]) != dims+1 {
			t.Fatalf("exposure row %d is %d wide, want %d (binary groups + rest)", i, len(expo.Vectors[i]), dims+1)
		}
		for j, v := range expo.Vectors[i] {
			if v != wantVec[j] {
				t.Errorf("exposure[%d][%d] = %v, pointwise %v", i, j, v, wantVec[j])
			}
		}
		if expo.Norms[i] != wantDDP {
			t.Errorf("exposure norm %d = %v, pointwise DDP %v", i, expo.Norms[i], wantDDP)
		}
		if ddp, err := metrics.DDPFromPerCapita(expo.Vectors[i]); err != nil || ddp != expo.Norms[i] {
			t.Errorf("norm %d not recoverable from the served vector: (%v, %v)", i, ddp, err)
		}
	}

	for _, metric := range []string{"expratio", "topk"} {
		var resp EvaluateResponse
		if code, body := postJSON(t, ts.URL+"/v1/evaluate", EvaluateRequest{Dataset: "compas", Metric: metric, Points: points}, &resp); code != 200 {
			t.Fatalf("%s sweep: %d %s", metric, code, body)
		}
		if len(resp.Vectors) != len(points) || len(resp.Norms) != len(points) {
			t.Fatalf("%s shape: %d vectors, %d norms", metric, len(resp.Vectors), len(resp.Norms))
		}
		for i, pt := range points {
			var want []float64
			var err error
			if metric == "expratio" {
				want, err = e.eval.ExposureRatioCtx(context.Background(), pt.Bonus, pt.K)
			} else {
				want, err = e.eval.TopKShareCtx(context.Background(), pt.Bonus, pt.K)
			}
			if err != nil {
				t.Fatalf("pointwise %s %d: %v", metric, i, err)
			}
			for j, v := range resp.Vectors[i] {
				if v != want[j] {
					t.Errorf("%s[%d][%d] = %v, pointwise %v", metric, i, j, v, want[j])
				}
			}
			if resp.Norms[i] != metrics.Norm(want) {
				t.Errorf("%s norm %d = %v, want L2 %v", metric, i, resp.Norms[i], metrics.Norm(want))
			}
		}
	}

	// Replay: every point answers from the per-point cache with the same
	// norms (recomputed from the cached vector at gather time).
	var again EvaluateResponse
	if code, body := postJSON(t, ts.URL+"/v1/evaluate", EvaluateRequest{Dataset: "compas", Metric: "exposure", Points: points}, &again); code != 200 {
		t.Fatalf("exposure replay: %d %s", code, body)
	}
	if again.CachedPoints != len(points) {
		t.Errorf("replay cached %d of %d points", again.CachedPoints, len(points))
	}
	for i := range points {
		if again.Norms[i] != expo.Norms[i] {
			t.Errorf("replay norm %d = %v, first answer %v", i, again.Norms[i], expo.Norms[i])
		}
	}
}

// TestExposureCapabilityGuards pins the registry's dataset-capability
// checks: the exposure family refuses the school cohort (its ENI column
// is continuous) with a 400 naming the offending column and the escape
// hatch, and the unknown-metric message lists the full registry.
func TestExposureCapabilityGuards(t *testing.T) {
	_, ts := newTestServer(t)
	points := []SweepPointRequest{{K: 0.1}}
	for _, metric := range []string{"exposure", "expratio", "topk"} {
		code, body := postJSON(t, ts.URL+"/v1/evaluate", EvaluateRequest{Dataset: "school", Metric: metric, Points: points}, nil)
		if code != http.StatusBadRequest {
			t.Fatalf("%s on school: %d %s", metric, code, body)
		}
		for _, want := range []string{"ENI", "WithFairColumns", metric} {
			if !strings.Contains(body, want) {
				t.Errorf("%s rejection %q does not mention %q", metric, body, want)
			}
		}
	}
	code, body := postJSON(t, ts.URL+"/v1/evaluate", EvaluateRequest{Dataset: "school", Metric: "entropy", Points: points}, nil)
	if code != http.StatusBadRequest || !strings.Contains(body, "disparity, ndcg, di, fpr, exposure, expratio or topk") {
		t.Errorf("unknown metric answer: %d %s", code, body)
	}
}

// TestExposureDegenerateSweepAnswers400 pins the degenerate-group path
// end to end: a cut so small that only one group is populated fails the
// sweep with the offending point's index and fraction, identically on
// the direct and the micro-batched path, and caches nothing.
func TestExposureDegenerateSweepAnswers400(t *testing.T) {
	req := EvaluateRequest{Dataset: "compas", Metric: "exposure", Points: []SweepPointRequest{
		{Bonus: []float64{1, 0, 2, 1, 0, 3}, K: 0.2},
		{Bonus: []float64{1, 0, 2, 1, 0, 3}, K: 1.0 / testCohortN}, // top-1 prefix: one populated group
	}}
	_, plain := newDiffServer(t, Config{})
	_, batched := newDiffServer(t, Config{BatchSize: 64, BatchMaxWait: time.Millisecond})
	for name, ts := range map[string]string{"direct": plain.URL, "batched": batched.URL} {
		code, body := postJSON(t, ts+"/v1/evaluate", req, nil)
		if code != http.StatusBadRequest {
			t.Fatalf("%s degenerate sweep: %d %s", name, code, body)
		}
		for _, want := range []string{"sweep point 1", "fewer than two populated exposure groups"} {
			if !strings.Contains(body, want) {
				t.Errorf("%s degenerate answer %q does not mention %q", name, body, want)
			}
		}
		// The good point must not have been cached by the failed sweep.
		good := EvaluateRequest{Dataset: req.Dataset, Metric: req.Metric, Points: req.Points[:1]}
		var resp EvaluateResponse
		if code, body := postJSON(t, ts+"/v1/evaluate", good, &resp); code != 200 {
			t.Fatalf("%s good point after failure: %d %s", name, code, body)
		}
		if resp.CachedPoints != 0 {
			t.Errorf("%s: failed sweep leaked %d points into the cache", name, resp.CachedPoints)
		}
	}
}

// TestReportExposureSection pins the audit-bundle seam: the exposure
// section appears by default exactly when the dataset's fairness
// attributes are all binary, exposure=0 opts out, exposure=1 on a
// continuous-attribute dataset is a 400 naming the column, and the two
// defaults key separate cache entries.
func TestReportExposureSection(t *testing.T) {
	_, ts := newTestServer(t)

	code, body := getJSON(t, ts.URL+"/v1/report?dataset=compas&bonus=1,0,2,1,0,3&k=0.2&format=markdown", nil)
	if code != 200 {
		t.Fatalf("compas report: %d %s", code, body)
	}
	if !strings.Contains(body, "## Exposure") {
		t.Errorf("compas report (all-binary attributes) lacks the exposure section:\n%s", body)
	}

	code, body = getJSON(t, ts.URL+"/v1/report?dataset=compas&bonus=1,0,2,1,0,3&k=0.2&format=markdown&exposure=0", nil)
	if code != 200 {
		t.Fatalf("compas report exposure=0: %d %s", code, body)
	}
	if strings.Contains(body, "## Exposure") {
		t.Errorf("exposure=0 still rendered the section:\n%s", body)
	}

	code, body = getJSON(t, ts.URL+"/v1/report?dataset=school&bonus=1,2,3,4&k=0.2", nil)
	if code != 200 {
		t.Fatalf("school report: %d %s", code, body)
	}
	if strings.Contains(body, "exposure") {
		t.Errorf("school report (continuous ENI) includes an exposure section:\n%s", body)
	}

	code, body = getJSON(t, ts.URL+"/v1/report?dataset=school&bonus=1,2,3,4&k=0.2&exposure=1", nil)
	if code != http.StatusBadRequest || !strings.Contains(body, "ENI") {
		t.Errorf("exposure=1 on school: %d %s, want 400 naming ENI", code, body)
	}

	if code, body = getJSON(t, ts.URL+"/v1/report?dataset=school&bonus=1,2,3,4&k=0.2&exposure=2", nil); code != http.StatusBadRequest {
		t.Errorf("exposure=2: %d %s, want 400", code, body)
	}
}

// TestBatchSweepUnknownMetricFailsLoudly is the regression test for the
// silent metric-kind misrouting: batchSweep used to map unknown metrics
// through a switch with no default, so the zero-valued BatchKind served
// DISPARITY rows under whatever name the caller passed. It must refuse
// instead.
func TestBatchSweepUnknownMetricFailsLoudly(t *testing.T) {
	s, _ := newDiffServer(t, Config{BatchSize: 4, BatchMaxWait: time.Millisecond})
	e, ok := s.reg.Get("compas")
	if !ok {
		t.Fatal("compas not registered")
	}
	pts := []core.SweepPoint{{Bonus: []float64{1, 1, 1, 1, 1, 1}, K: 0.1}}
	vecs, vals, err := s.batchSweep(context.Background(), e, "entropy", []float64{1, 1, 1, 1, 1, 1}, pts)
	if err == nil {
		t.Fatalf("unmapped metric answered (vecs %v, vals %v), want an error", vecs, vals)
	}
	if !strings.Contains(err.Error(), `"entropy"`) || !strings.Contains(err.Error(), "registry") {
		t.Errorf("error %q does not name the metric and the registry", err)
	}
	if vecs != nil || vals != nil {
		t.Errorf("failed lookup still returned rows: %v %v", vecs, vals)
	}
}
