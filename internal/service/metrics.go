package service

import (
	"fmt"
	"strings"

	"fairrank/internal/core"
)

// The metric registry is the single source of truth for every sweep
// metric /v1/evaluate serves. Request validation, the dataset-capability
// guard, the direct sweep dispatch, the micro-batch kind mapping, and
// the norm gather all consult this table, so adding a metric is one new
// row here plus one arm in sweepDirect — nothing else to keep in sync.
// (scripts/checkdocs.sh greps the name: fields below to demand that the
// ARCHITECTURE.md metric table documents every registered metric.)

// metricSpec describes one sweep metric end to end.
type metricSpec struct {
	// name is the wire name accepted by /v1/evaluate and cmd/dca -sweep.
	name string
	// kind is the micro-batch query kind the metric maps to. Every
	// registered metric MUST be batchable: batchSweep fails loudly if a
	// row is ever added without one, instead of zero-valuing into
	// BatchDisparity and silently serving the wrong metric.
	kind core.BatchKind
	// scalar metrics answer with Values; vector metrics with
	// Vectors + Norms.
	scalar bool
	// ddpNorm metrics norm with the demographic-disparity finisher
	// (max − min over populated groups, recovered from the cached
	// per-capita vector) instead of the L2 norm.
	ddpNorm bool
	// check guards dataset capabilities the metric needs (outcomes,
	// binary fairness attributes). Nil means any dataset qualifies.
	check func(e *Entry) error
}

var metricSpecs = []metricSpec{
	{name: "disparity", kind: core.BatchDisparity},
	{name: "ndcg", kind: core.BatchNDCG, scalar: true},
	{name: "di", kind: core.BatchDisparateImpact},
	{name: "fpr", kind: core.BatchFPRDiff, check: needsOutcomes("fpr")},
	{name: "exposure", kind: core.BatchExposure, ddpNorm: true, check: needsBinaryFair("exposure")},
	{name: "expratio", kind: core.BatchExpRatio, check: checkAll(needsBinaryFair("expratio"), needsOutcomes("expratio"))},
	{name: "topk", kind: core.BatchTopK, check: needsBinaryFair("topk")},
}

// metricByName resolves a wire name against the registry.
func metricByName(name string) (metricSpec, bool) {
	for _, s := range metricSpecs {
		if s.name == name {
			return s, true
		}
	}
	return metricSpec{}, false
}

// metricWantList renders the registered names for the unknown-metric
// error: "disparity, ndcg, di, fpr, exposure, expratio or topk".
func metricWantList() string {
	names := make([]string, len(metricSpecs))
	for i, s := range metricSpecs {
		names[i] = s.name
	}
	return strings.Join(names[:len(names)-1], ", ") + " or " + names[len(names)-1]
}

// needsOutcomes guards metrics that compare against ground truth.
func needsOutcomes(metric string) func(e *Entry) error {
	return func(e *Entry) error {
		if !e.d.HasOutcomes() {
			return fmt.Errorf("dataset %q has no outcomes; %s sweeps require them", e.name, metric)
		}
		return nil
	}
}

// needsBinaryFair guards the exposure family, whose group membership is
// only defined for binary fairness attributes.
func needsBinaryFair(metric string) func(e *Entry) error {
	return func(e *Entry) error {
		if e.d.NumFair() == 0 {
			return fmt.Errorf("dataset %q has no fairness attributes; %s sweeps require binary ones", e.name, metric)
		}
		if ok, offending := e.d.BinaryFairColumns(); !ok {
			return fmt.Errorf("dataset %q: %s sweeps require binary fairness attributes; %q is continuous (register a WithFairColumns view of the binary columns)", e.name, metric, offending)
		}
		return nil
	}
}

func checkAll(checks ...func(e *Entry) error) func(e *Entry) error {
	return func(e *Entry) error {
		for _, c := range checks {
			if err := c(e); err != nil {
				return err
			}
		}
		return nil
	}
}
