package service

import (
	"context"
	"net/http"
	"sync/atomic"
	"time"
)

// Admission-control defaults. MaxInFlight bounds concurrently admitted
// /v1 requests; AdmitWait is how long an over-limit request queues for a
// slot before it is shed with 429. The ceiling is deliberately generous —
// admission control exists to keep an overloaded server answering
// *something* (fast 429s instead of an unbounded goroutine pile-up), not
// to pace normal traffic.
const (
	DefaultMaxInFlight = 1024
	DefaultAdmitWait   = 50 * time.Millisecond
)

// errShed is the load-shed answer: the slot table is full and stayed full
// for the whole admission wait. Transient by construction, hence the
// Retry-After.
var errShed = &httpError{
	status:     http.StatusTooManyRequests,
	msg:        "server at capacity; retry shortly",
	retryAfter: 1,
}

// admission is a channel semaphore bounding in-flight /v1 requests. A
// request either takes a slot immediately, waits up to wait for one, or
// is shed. Slots are freed by release; len(slots) is the live in-flight
// gauge.
type admission struct {
	slots chan struct{}
	wait  time.Duration
	shed  atomic.Int64
}

func newAdmission(max int, wait time.Duration) *admission {
	return &admission{slots: make(chan struct{}, max), wait: wait}
}

// acquire takes an in-flight slot, queueing at most a.wait for one. It
// returns errShed when the table stays full and the caller's context
// error when the client gives up while queued.
func (a *admission) acquire(ctx context.Context) error {
	select {
	case a.slots <- struct{}{}:
		return nil
	default:
	}
	if a.wait <= 0 {
		a.shed.Add(1)
		return errShed
	}
	t := time.NewTimer(a.wait)
	defer t.Stop()
	select {
	case a.slots <- struct{}{}:
		return nil
	case <-t.C:
		a.shed.Add(1)
		return errShed
	case <-ctx.Done():
		return ctx.Err()
	}
}

// release frees a slot taken by acquire.
func (a *admission) release() { <-a.slots }

// inFlight reports the number of currently admitted requests.
func (a *admission) inFlight() int { return len(a.slots) }
