package service

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"fairrank/internal/core"
	"fairrank/internal/rank"
	"fairrank/internal/synth"
)

// testCohortN keeps test datasets small enough that a full train request
// stays in the low milliseconds.
const testCohortN = 2500

func schoolConfig() synth.SchoolConfig {
	cfg := synth.DefaultSchoolConfig()
	cfg.N = testCohortN
	cfg.Seed = 42
	return cfg
}

func newTestServer(t testing.TB) (*Server, *httptest.Server) {
	t.Helper()
	school, err := synth.GenerateSchool(schoolConfig())
	if err != nil {
		t.Fatal(err)
	}
	compasCfg := synth.DefaultCompasConfig()
	compasCfg.N = testCohortN
	compasCfg.Seed = 7
	compas, err := synth.GenerateCompas(compasCfg)
	if err != nil {
		t.Fatal(err)
	}
	s := New(Config{})
	if err := s.Register("school", school, rank.WeightedSum{Weights: synth.SchoolScoreWeights()}, rank.Beneficial); err != nil {
		t.Fatal(err)
	}
	if err := s.Register("compas", compas, rank.WeightedSum{Weights: synth.CompasScoreWeights()}, rank.Adverse); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

func postJSON(t testing.TB, url string, body any, out any) (int, string) {
	t.Helper()
	raw, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	if out != nil && resp.StatusCode == http.StatusOK {
		if err := json.Unmarshal(buf.Bytes(), out); err != nil {
			t.Fatalf("decoding %q: %v", buf.String(), err)
		}
	}
	return resp.StatusCode, buf.String()
}

func getJSON(t testing.TB, url string, out any) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	if out != nil && resp.StatusCode == http.StatusOK {
		if err := json.Unmarshal(buf.Bytes(), out); err != nil {
			t.Fatalf("decoding %q: %v", buf.String(), err)
		}
	}
	return resp.StatusCode, buf.String()
}

func TestHealthAndDatasets(t *testing.T) {
	s, ts := newTestServer(t)
	var h HealthResponse
	if code, body := getJSON(t, ts.URL+"/healthz", &h); code != 200 {
		t.Fatalf("healthz: %d %s", code, body)
	}
	if h.Status != "ok" || h.Datasets != 2 {
		t.Errorf("health = %+v", h)
	}
	var ds []DatasetInfo
	if code, body := getJSON(t, ts.URL+"/v1/datasets", &ds); code != 200 {
		t.Fatalf("datasets: %d %s", code, body)
	}
	if len(ds) != 2 || ds[0].Name != "school" || ds[1].Name != "compas" {
		t.Fatalf("datasets = %+v", ds)
	}
	if ds[0].N != testCohortN || ds[0].Polarity != "beneficial" || ds[0].HasOutcomes {
		t.Errorf("school info = %+v", ds[0])
	}
	if ds[1].Polarity != "adverse" || !ds[1].HasOutcomes {
		t.Errorf("compas info = %+v", ds[1])
	}
	// Both synthetic cohorts have discrete fairness rows, so each
	// evaluator carries a combo-run partition and the listing surfaces
	// its stats for observability — mirrored by Server.RankStats.
	for i, name := range []string{"school", "compas"} {
		rs := ds[i].RankStats
		if rs == nil {
			t.Fatalf("%s: rank_stats missing from listing", name)
		}
		if rs.Runs < 2 || rs.MinRunLen < 1 || rs.MedianRunLen < rs.MinRunLen || rs.MaxRunLen < rs.MedianRunLen {
			t.Errorf("%s rank_stats = %+v", name, rs)
		}
		st, ok := s.RankStats(name)
		if !ok {
			t.Fatalf("Server.RankStats(%q) reported no combo runs", name)
		}
		if st.Runs != rs.Runs || st.MinLen != rs.MinRunLen || st.MedianLen != rs.MedianRunLen || st.MaxLen != rs.MaxRunLen {
			t.Errorf("%s: Server.RankStats %+v disagrees with listing %+v", name, st, rs)
		}
	}
	if _, ok := s.RankStats("nope"); ok {
		t.Error("RankStats on an unknown dataset reported ok")
	}
}

// TestTrainBitIdenticalToLibrary pins the service's central contract: a
// /v1/train request returns exactly the vector the library produces for
// the same dataset, objective, options, and seed — the HTTP layer adds
// caching and pooling, never drift.
func TestTrainBitIdenticalToLibrary(t *testing.T) {
	_, ts := newTestServer(t)
	school, err := synth.GenerateSchool(schoolConfig())
	if err != nil {
		t.Fatal(err)
	}
	scorer := rank.WeightedSum{Weights: synth.SchoolScoreWeights()}

	for _, seed := range []int64{1, 5, 99} {
		var got TrainResponse
		req := TrainRequest{Dataset: "school", K: 0.05, Seed: seed}
		if code, body := postJSON(t, ts.URL+"/v1/train", req, &got); code != 200 {
			t.Fatalf("train seed %d: %d %s", seed, code, body)
		}
		opts := core.DefaultOptions()
		opts.Seed = seed
		obj, err := core.ObjectiveByName("disparity", 0.05)
		if err != nil {
			t.Fatal(err)
		}
		want, err := core.Run(school, scorer, obj, opts)
		if err != nil {
			t.Fatal(err)
		}
		if len(got.Bonus) != len(want.Bonus) {
			t.Fatalf("seed %d: bonus length %d vs %d", seed, len(got.Bonus), len(want.Bonus))
		}
		for j := range want.Bonus {
			if got.Bonus[j] != want.Bonus[j] || got.Raw[j] != want.Raw[j] {
				t.Errorf("seed %d dimension %d: service (%v, %v) != library (%v, %v)",
					seed, j, got.Bonus[j], got.Raw[j], want.Bonus[j], want.Raw[j])
			}
		}
		if got.Steps != want.Steps {
			t.Errorf("seed %d: steps %d != %d", seed, got.Steps, want.Steps)
		}
		if got.Cached {
			t.Errorf("seed %d: first request claims cached", seed)
		}
		if got.NormAfter >= got.NormBefore {
			t.Errorf("seed %d: compensation did not reduce disparity: %v -> %v", seed, got.NormBefore, got.NormAfter)
		}
	}
}

func TestTrainModesAndObjectives(t *testing.T) {
	_, ts := newTestServer(t)
	cases := []TrainRequest{
		{Dataset: "school", K: 0.05, Mode: ModeCore},
		{Dataset: "school", K: 0.05, Mode: ModeWhole},
		{Dataset: "school", K: 0.3, Objective: "logdisc"},
		{Dataset: "school", K: 0.05, Objective: "di"},
		{Dataset: "compas", K: 0.2, Objective: "fpr"},
	}
	for _, req := range cases {
		name := fmt.Sprintf("%s-%s-%s", req.Dataset, req.Objective, req.Mode)
		t.Run(name, func(t *testing.T) {
			var got TrainResponse
			if code, body := postJSON(t, ts.URL+"/v1/train", req, &got); code != 200 {
				t.Fatalf("%d %s", code, body)
			}
			if len(got.Bonus) == 0 {
				t.Fatal("empty bonus")
			}
			for j, b := range got.Bonus {
				if b < 0 {
					t.Errorf("negative bonus dimension %d: %v", j, b)
				}
			}
		})
	}
}

func TestTrainCache(t *testing.T) {
	s, ts := newTestServer(t)
	req := TrainRequest{Dataset: "school", K: 0.1, Seed: 3}
	var first, second TrainResponse
	if code, body := postJSON(t, ts.URL+"/v1/train", req, &first); code != 200 {
		t.Fatalf("%d %s", code, body)
	}
	if first.Cached {
		t.Error("first request served from cache")
	}
	// One train populates two entries: the result and the memoized
	// baseline disparity for (dataset, k).
	if s.cache.len() != 2 {
		t.Errorf("cache has %d entries, want 2", s.cache.len())
	}
	if code, body := postJSON(t, ts.URL+"/v1/train", req, &second); code != 200 {
		t.Fatalf("%d %s", code, body)
	}
	if !second.Cached {
		t.Error("identical request missed the cache")
	}
	for j := range first.Bonus {
		if first.Bonus[j] != second.Bonus[j] {
			t.Errorf("cached bonus diverged at %d", j)
		}
	}
	// A different seed is a different what-if: distinct cache entry.
	req.Seed = 4
	var third TrainResponse
	if code, body := postJSON(t, ts.URL+"/v1/train", req, &third); code != 200 {
		t.Fatalf("%d %s", code, body)
	}
	if third.Cached {
		t.Error("different seed hit the cache")
	}
}

func TestEvaluateSweeps(t *testing.T) {
	_, ts := newTestServer(t)
	var trained TrainResponse
	if code, body := postJSON(t, ts.URL+"/v1/train", TrainRequest{Dataset: "school", K: 0.05}, &trained); code != 200 {
		t.Fatalf("%d %s", code, body)
	}
	points := []SweepPointRequest{
		{Bonus: nil, K: 0.05},
		{Bonus: trained.Bonus, K: 0.05},
		{Bonus: trained.Bonus, K: 0.1},
		{Bonus: trained.Bonus, K: 0.2},
	}
	var disp EvaluateResponse
	if code, body := postJSON(t, ts.URL+"/v1/evaluate", EvaluateRequest{Dataset: "school", Metric: "disparity", Points: points}, &disp); code != 200 {
		t.Fatalf("disparity sweep: %d %s", code, body)
	}
	if len(disp.Vectors) != 4 || len(disp.Norms) != 4 {
		t.Fatalf("sweep shape: %d vectors, %d norms", len(disp.Vectors), len(disp.Norms))
	}
	if disp.Norms[1] >= disp.Norms[0] {
		t.Errorf("trained vector did not reduce disparity: %v -> %v", disp.Norms[0], disp.Norms[1])
	}
	var ndcg EvaluateResponse
	if code, body := postJSON(t, ts.URL+"/v1/evaluate", EvaluateRequest{Dataset: "school", Metric: "ndcg", Points: points}, &ndcg); code != 200 {
		t.Fatalf("ndcg sweep: %d %s", code, body)
	}
	if len(ndcg.Values) != 4 {
		t.Fatalf("ndcg shape: %d values", len(ndcg.Values))
	}
	if ndcg.Values[0] != 1 {
		t.Errorf("uncompensated nDCG = %v, want 1", ndcg.Values[0])
	}
	for i, v := range ndcg.Values {
		if v <= 0 || v > 1 {
			t.Errorf("nDCG[%d] = %v outside (0,1]", i, v)
		}
	}
	var di EvaluateResponse
	if code, body := postJSON(t, ts.URL+"/v1/evaluate", EvaluateRequest{Dataset: "school", Metric: "di", Points: points}, &di); code != 200 {
		t.Fatalf("di sweep: %d %s", code, body)
	}
	if len(di.Vectors) != 4 {
		t.Fatalf("di shape: %d vectors", len(di.Vectors))
	}
}

func TestExplainEndpoint(t *testing.T) {
	_, ts := newTestServer(t)
	var trained TrainResponse
	if code, body := postJSON(t, ts.URL+"/v1/train", TrainRequest{Dataset: "school", K: 0.05}, &trained); code != 200 {
		t.Fatalf("%d %s", code, body)
	}
	bonusParam := make([]string, len(trained.Bonus))
	for j, b := range trained.Bonus {
		bonusParam[j] = fmt.Sprintf("%g", b)
	}
	url := fmt.Sprintf("%s/v1/explain?dataset=school&k=0.05&bonus=%s", ts.URL, strings.Join(bonusParam, ","))
	var exp ExplainResponse
	if code, body := getJSON(t, url, &exp); code != 200 {
		t.Fatalf("explain: %d %s", code, body)
	}
	if exp.Selected == 0 || exp.Cutoff == 0 || len(exp.Summary) == 0 {
		t.Errorf("thin explanation: %+v", exp)
	}
	if len(exp.GroupCounts) != len(exp.FairNames) {
		t.Errorf("group counts misaligned: %d vs %d", len(exp.GroupCounts), len(exp.FairNames))
	}
	if len(exp.AdmittedByBonus) == 0 {
		t.Error("compensation admitted nobody — expected beneficiaries")
	}
	// Per-object breakdown for the first beneficiary.
	withObj := fmt.Sprintf("%s&object=%d", url, exp.AdmittedByBonus[0])
	var exp2 ExplainResponse
	if code, body := getJSON(t, withObj, &exp2); code != 200 {
		t.Fatalf("explain object: %d %s", code, body)
	}
	if exp2.Object == nil || !exp2.Object.Selected {
		t.Fatalf("beneficiary not selected in breakdown: %+v", exp2.Object)
	}
	if exp2.Object.Margin < 0 {
		t.Errorf("selected beneficiary has negative margin %v", exp2.Object.Margin)
	}
}

func TestRequestValidation(t *testing.T) {
	_, ts := newTestServer(t)
	post := func(path, body string) (int, string) {
		resp, err := http.Post(ts.URL+path, "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var buf bytes.Buffer
		buf.ReadFrom(resp.Body)
		return resp.StatusCode, buf.String()
	}
	cases := []struct {
		name string
		path string
		body string
		want int
		msg  string
	}{
		{"train unknown dataset", "/v1/train", `{"dataset":"nope","k":0.05}`, 404, "unknown dataset"},
		{"train missing dataset", "/v1/train", `{"k":0.05}`, 400, "missing dataset"},
		{"train bad k", "/v1/train", `{"dataset":"school","k":0}`, 400, "(0,1]"},
		{"train k above 1", "/v1/train", `{"dataset":"school","k":1.5}`, 400, "(0,1]"},
		{"train bad objective", "/v1/train", `{"dataset":"school","k":0.05,"objective":"banana"}`, 400, "banana"},
		{"train bad mode", "/v1/train", `{"dataset":"school","k":0.05,"mode":"warp"}`, 400, "mode"},
		{"train negative sample", "/v1/train", `{"dataset":"school","k":0.05,"sample_size":-5}`, 400, "sample_size"},
		{"train negative granularity", "/v1/train", `{"dataset":"school","k":0.05,"granularity":-1}`, 400, "granularity"},
		{"train negative refine", "/v1/train", `{"dataset":"school","k":0.05,"refine_steps":-1}`, 400, "refine_steps"},
		{"train unknown field", "/v1/train", `{"dataset":"school","k":0.05,"granularty":0.5}`, 400, "granularty"},
		{"train trailing garbage", "/v1/train", `{"dataset":"school","k":0.05}{"x":1}`, 400, "trailing"},
		{"train not json", "/v1/train", `hello`, 400, ""},
		{"train fpr without outcomes", "/v1/train", `{"dataset":"school","k":0.05,"objective":"fpr"}`, 400, "outcomes"},
		{"evaluate bad metric", "/v1/evaluate", `{"dataset":"school","metric":"entropy","points":[{"k":0.05}]}`, 400, "metric"},
		{"evaluate no points", "/v1/evaluate", `{"dataset":"school","metric":"disparity","points":[]}`, 400, "points"},
		{"evaluate bad fraction", "/v1/evaluate", `{"dataset":"school","metric":"disparity","points":[{"k":2}]}`, 400, "(0,1]"},
		{"evaluate wrong dims", "/v1/evaluate", `{"dataset":"school","metric":"disparity","points":[{"k":0.05,"bonus":[1,2]}]}`, 400, "dimensions"},
		{"evaluate negative bonus", "/v1/evaluate", `{"dataset":"school","metric":"disparity","points":[{"k":0.05,"bonus":[1,-2,0,0]}]}`, 400, "non-negative"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			code, body := post(tc.path, tc.body)
			if code != tc.want {
				t.Fatalf("status %d, want %d (%s)", code, tc.want, body)
			}
			if tc.msg != "" && !strings.Contains(body, tc.msg) {
				t.Errorf("body %q does not mention %q", body, tc.msg)
			}
			var e ErrorResponse
			if err := json.Unmarshal([]byte(body), &e); err != nil || e.Error == "" {
				t.Errorf("error body is not ErrorResponse JSON: %q", body)
			}
		})
	}
	// GET endpoints.
	if code, _ := getJSON(t, ts.URL+"/v1/explain?dataset=school&k=0.05", nil); code != 400 {
		t.Errorf("explain without bonus: %d, want 400", code)
	}
	if code, _ := getJSON(t, ts.URL+"/v1/explain?dataset=school&k=0.05&bonus=1,NaN,2,3", nil); code != 400 {
		t.Errorf("explain with NaN bonus: %d, want 400", code)
	}
	if code, _ := getJSON(t, ts.URL+"/v1/explain?dataset=ghost&k=0.05&bonus=1", nil); code != 404 {
		t.Errorf("explain unknown dataset: %d, want 404", code)
	}
	// Method mismatches answer 405 via the mux method patterns.
	if code, _ := getJSON(t, ts.URL+"/v1/train", nil); code != http.StatusMethodNotAllowed {
		t.Errorf("GET /v1/train: %d, want 405", code)
	}
}

// TestConcurrentTrainAndEvaluate is the race-cleanliness exercise: many
// goroutines mix cache-hitting and cache-missing train requests with
// evaluate sweeps and explain queries against one server. Run under
// -race; correctness is pinned by comparing every train response against
// the single-threaded reference for its seed.
func TestConcurrentTrainAndEvaluate(t *testing.T) {
	_, ts := newTestServer(t)
	school, err := synth.GenerateSchool(schoolConfig())
	if err != nil {
		t.Fatal(err)
	}
	scorer := rank.WeightedSum{Weights: synth.SchoolScoreWeights()}
	obj, err := core.ObjectiveByName("disparity", 0.05)
	if err != nil {
		t.Fatal(err)
	}
	const seeds = 4
	want := make([][]float64, seeds)
	for s := 0; s < seeds; s++ {
		opts := core.DefaultOptions()
		opts.Seed = int64(s + 1)
		res, err := core.Run(school, scorer, obj, opts)
		if err != nil {
			t.Fatal(err)
		}
		want[s] = res.Bonus
	}

	const workers = 8
	const perWorker = 6
	var wg sync.WaitGroup
	errc := make(chan error, workers*perWorker)
	for wkr := 0; wkr < workers; wkr++ {
		wg.Add(1)
		go func(wkr int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				seed := (wkr + i) % seeds
				switch i % 3 {
				case 0, 1: // train (half of these hit the cache)
					var got TrainResponse
					code, body := postJSON(t, ts.URL+"/v1/train", TrainRequest{Dataset: "school", K: 0.05, Seed: int64(seed + 1)}, &got)
					if code != 200 {
						errc <- fmt.Errorf("worker %d: train %d %s", wkr, code, body)
						continue
					}
					for j := range want[seed] {
						if got.Bonus[j] != want[seed][j] {
							errc <- fmt.Errorf("worker %d seed %d: bonus[%d] = %v, want %v", wkr, seed+1, j, got.Bonus[j], want[seed][j])
							break
						}
					}
				case 2: // evaluate sweep against the reference vector
					req := EvaluateRequest{Dataset: "school", Metric: "disparity", Points: []SweepPointRequest{
						{Bonus: want[seed], K: 0.05}, {Bonus: nil, K: 0.1},
					}}
					var got EvaluateResponse
					code, body := postJSON(t, ts.URL+"/v1/evaluate", req, &got)
					if code != 200 {
						errc <- fmt.Errorf("worker %d: evaluate %d %s", wkr, code, body)
						continue
					}
					if len(got.Vectors) != 2 {
						errc <- fmt.Errorf("worker %d: evaluate returned %d vectors", wkr, len(got.Vectors))
					}
				}
			}
		}(wkr)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}
}

func TestRegistry(t *testing.T) {
	school, err := synth.GenerateSchool(schoolConfig())
	if err != nil {
		t.Fatal(err)
	}
	scorer := rank.WeightedSum{Weights: synth.SchoolScoreWeights()}
	s := New(Config{TrainerPoolSize: 2})
	if err := s.Register("", school, scorer, rank.Beneficial); err == nil {
		t.Error("empty name accepted")
	}
	if err := s.Register("school", school, scorer, rank.Beneficial); err != nil {
		t.Fatal(err)
	}
	if err := s.Register("school", school, scorer, rank.Beneficial); err == nil {
		t.Error("duplicate name accepted")
	}
	e, ok := s.reg.Get("school")
	if !ok {
		t.Fatal("lookup failed")
	}
	// Pool: a released trainer is handed back out; beyond capacity,
	// trainers are dropped rather than blocking.
	ctx := context.Background()
	mustAcquire := func() *core.Trainer {
		t.Helper()
		tr, err := e.acquire(ctx)
		if err != nil {
			t.Fatal(err)
		}
		return tr
	}
	t1, t2, t3 := mustAcquire(), mustAcquire(), mustAcquire()
	e.release(t1)
	e.release(t2)
	e.release(t3) // pool cap 2: dropped, must not block
	if got := mustAcquire(); got != t1 {
		t.Error("pool did not return the first released trainer")
	}
	if got := mustAcquire(); got != t2 {
		t.Error("pool did not return the second released trainer")
	}
	if got := mustAcquire(); got == t3 {
		t.Error("over-capacity trainer was retained")
	}
	// Live bound: with every token in the table taken, the next acquire
	// is shed, and freeing one token reopens admission.
	for len(e.live) < cap(e.live) {
		e.live <- struct{}{}
	}
	if _, err := e.acquire(ctx); err != errTrainersBusy {
		t.Errorf("over-bound acquire returned %v, want errTrainersBusy", err)
	}
	<-e.live
	e.release(mustAcquire())
}
