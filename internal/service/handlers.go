package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"runtime"
	"strconv"
	"strings"
	"time"

	"fairrank/internal/core"
	"fairrank/internal/faultinject"
	"fairrank/internal/metrics"
	"fairrank/internal/rank"
	"fairrank/internal/report"
)

// statusClientClosedRequest is nginx's 499: the client disconnected
// before the response. Nobody reads the body, but access logs do, and it
// keeps client-gone distinct from server-fault in the status counters.
const statusClientClosedRequest = 499

// maxBodyBytes bounds a request body; the largest legitimate payload (a
// MaxSweepPoints evaluate sweep) stays well under it.
const maxBodyBytes = 8 << 20

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(v) // the status line is already out; nothing left to do on error
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, ErrorResponse{Error: fmt.Sprintf(format, args...)})
}

// decodeJSON strictly parses a request body: size-capped, unknown fields
// rejected (a typo'd option silently ignored is a wrong what-if answer),
// trailing garbage rejected.
func decodeJSON(w http.ResponseWriter, r *http.Request, dst any) error {
	body := http.MaxBytesReader(w, r.Body, maxBodyBytes)
	dec := json.NewDecoder(body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(dst); err != nil {
		return err
	}
	if dec.More() {
		return errors.New("trailing data after JSON body")
	}
	return nil
}

// entryOr404 resolves the dataset or answers 404.
func (s *Server) entryOr404(w http.ResponseWriter, name string) (*Entry, bool) {
	if name == "" {
		writeError(w, http.StatusBadRequest, "missing dataset")
		return nil, false
	}
	e, ok := s.reg.Get(name)
	if !ok {
		writeError(w, http.StatusNotFound, "unknown dataset %q", name)
		return nil, false
	}
	return e, true
}

func (s *Server) handleTrain(w http.ResponseWriter, r *http.Request) {
	var req TrainRequest
	if err := decodeJSON(w, r, &req); err != nil {
		writeError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	p, err := req.normalize()
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	e, ok := s.entryOr404(w, p.req.Dataset)
	if !ok {
		return
	}

	key := p.cacheKey()
	if v, ok := s.cache.get(key); ok {
		resp := v.(TrainResponse)
		resp.Cached = true
		writeJSON(w, http.StatusOK, resp)
		return
	}

	// Cold: coalesce concurrent identical requests so a thundering herd
	// runs the pipeline once. Followers (shared=true) report Cached.
	ctx := r.Context()
	v, shared, err := s.flights.Do(ctx, "train|"+key, func() (any, error) {
		return s.runTrain(ctx, e, p, key)
	})
	if err != nil {
		writeHTTPError(w, r, err)
		return
	}
	resp := v.(TrainResponse)
	resp.Cached = resp.Cached || shared
	writeJSON(w, http.StatusOK, resp)
}

// writeHTTPError maps a pipeline failure to a response. Status-carrying
// errors answer with their own status (plus Retry-After when they say
// so). Context errors are split by *whose* context died: the request's
// own deadline is 504 and its own disconnect is 499, while a leader's
// context error reaching a healthy follower through a coalesced flight is
// 503 + Retry-After — the follower's retry will either find the cache
// warm or become the new leader. Anything else is an internal failure.
func writeHTTPError(w http.ResponseWriter, r *http.Request, err error) {
	var he *httpError
	if errors.As(err, &he) {
		if he.retryAfter > 0 {
			w.Header().Set("Retry-After", strconv.Itoa(he.retryAfter))
		}
		writeError(w, he.status, "%s", he.msg)
		return
	}
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		if r.Context().Err() != nil {
			writeError(w, http.StatusGatewayTimeout, "request deadline exceeded")
			return
		}
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusServiceUnavailable, "coalesced computation timed out; retry shortly")
	case errors.Is(err, context.Canceled):
		if r.Context().Err() != nil {
			writeError(w, statusClientClosedRequest, "client closed request")
			return
		}
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusServiceUnavailable, "coalesced computation canceled; retry shortly")
	default:
		writeError(w, http.StatusInternalServerError, "%v", err)
	}
}

// pipelineErr classifies an error out of a compute pipeline: context
// errors pass through untouched so writeHTTPError can apply the
// cancellation mapping; anything else was the request's mistake (or, for
// status 5xx, the server's) and is wrapped with the given status.
func pipelineErr(err error, status int) error {
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return err
	}
	return &httpError{status: status, msg: err.Error()}
}

// runTrain is the cold train pipeline: train, evaluate the diagnostics,
// cache the response. It runs inside a flight; the leading cache re-check
// closes the race where a request misses the LRU just as another flight
// for the same key completes.
func (s *Server) runTrain(ctx context.Context, e *Entry, p *trainParams, key string) (TrainResponse, error) {
	if v, ok := s.cache.get(key); ok {
		resp := v.(TrainResponse)
		resp.Cached = true
		return resp, nil
	}
	if err := faultinject.Fire(ctx, faultinject.SiteTrainStart); err != nil {
		return TrainResponse{}, err
	}
	s.trainExecs.Add(1)

	opts := p.opts
	opts.Polarity = e.pol
	t, err := e.acquire(ctx)
	if err != nil {
		return TrainResponse{}, err
	}
	var res core.Result
	switch p.mode {
	case ModeCore:
		res, err = t.TrainCoreCtx(ctx, p.obj, opts)
	case ModeWhole:
		res, err = t.TrainFullCtx(ctx, p.obj, opts)
	default:
		res, err = t.TrainCtx(ctx, p.obj, opts)
	}
	e.release(t)
	if err != nil {
		// Training fails on request/dataset mismatches the bind stage
		// rejects (e.g. an outcome-dependent objective on an outcome-less
		// dataset) — the caller's choice, not ours — or on cancellation,
		// which pipelineErr passes through for the context mapping.
		return TrainResponse{}, pipelineErr(err, http.StatusBadRequest)
	}

	// The baseline disparity depends only on (dataset, k), not on the
	// trained vector — memoize it in the same bounded LRU so iterative
	// what-if sessions at one k don't repay a full-population ranking per
	// request. Handlers only read the cached slice.
	beforeKey := fmt.Sprintf("before|%s|%g", p.req.Dataset, p.req.K)
	var before []float64
	if v, ok := s.cache.get(beforeKey); ok {
		before = v.([]float64)
	} else {
		before, err = e.eval.DisparityCtx(ctx, nil, p.req.K)
		if err != nil {
			return TrainResponse{}, pipelineErr(fmt.Errorf("evaluating trained vector: %w", err), http.StatusInternalServerError)
		}
		s.cache.put(beforeKey, before)
	}
	after, err := e.eval.DisparityCtx(ctx, res.Bonus, p.req.K)
	if err != nil {
		return TrainResponse{}, pipelineErr(fmt.Errorf("evaluating trained vector: %w", err), http.StatusInternalServerError)
	}
	ndcg, err := e.eval.NDCGCtx(ctx, res.Bonus, p.req.K)
	if err != nil {
		return TrainResponse{}, pipelineErr(fmt.Errorf("evaluating trained vector: %w", err), http.StatusInternalServerError)
	}
	resp := TrainResponse{
		Dataset:         p.req.Dataset,
		Objective:       p.req.Objective,
		K:               p.req.K,
		Mode:            p.mode,
		Seed:            p.req.Seed,
		Polarity:        e.pol.String(),
		FairNames:       e.d.FairNames(),
		Bonus:           res.Bonus,
		Raw:             res.Raw,
		CoreBonus:       res.CoreBonus,
		Steps:           res.Steps,
		DisparityBefore: before,
		DisparityAfter:  after,
		NormBefore:      metrics.Norm(before),
		NormAfter:       metrics.Norm(after),
		NDCG:            ndcg,
		ElapsedMicros:   res.Elapsed.Microseconds(),
	}
	s.cache.put(key, resp)
	return resp, nil
}

func (s *Server) handleEvaluate(w http.ResponseWriter, r *http.Request) {
	var req EvaluateRequest
	if err := decodeJSON(w, r, &req); err != nil {
		writeError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	e, ok := s.entryOr404(w, req.Dataset)
	if !ok {
		return
	}
	if err := req.validate(e.d.NumFair()); err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	// Dataset-capability guard from the metric registry: fpr needs
	// outcomes, the exposure family needs binary fairness attributes.
	if spec, ok := metricByName(req.Metric); ok && spec.check != nil {
		if err := spec.check(e); err != nil {
			writeError(w, http.StatusBadRequest, "%v", err)
			return
		}
	}
	// Coalesce concurrent identical sweeps; the leader probes the
	// per-point cache and computes only the missing rows.
	ctx := r.Context()
	v, _, err := s.flights.Do(ctx, req.requestKey(), func() (any, error) {
		return s.evaluateSweep(ctx, e, req)
	})
	if err != nil {
		writeHTTPError(w, r, err)
		return
	}
	writeJSON(w, http.StatusOK, v.(EvaluateResponse))
}

// evaluateSweep answers a sweep from the per-point row cache plus one
// prefix-sweep computation over the missing points. Rows are cached under
// (dataset, metric, bonus bits, k bits), so any earlier sweep that covered
// a point answers it — a subset of a cached k-grid costs len(points) map
// lookups, and a widened grid ranks once for just the new cuts.
func (s *Server) evaluateSweep(ctx context.Context, e *Entry, req EvaluateRequest) (EvaluateResponse, error) {
	if err := faultinject.Fire(ctx, faultinject.SiteEvaluateStart); err != nil {
		return EvaluateResponse{}, err
	}
	resp := EvaluateResponse{Dataset: req.Dataset, Metric: req.Metric, FairNames: e.d.FairNames()}
	n := len(req.Points)
	spec, ok := metricByName(req.Metric)
	if !ok {
		// validate() already rejected unknown names; reaching here means a
		// caller skipped it. Fail loudly rather than guess a metric.
		return EvaluateResponse{}, pipelineErr(fmt.Errorf("metric %q missing from the service registry", req.Metric), http.StatusBadRequest)
	}
	vector := !spec.scalar
	if vector {
		resp.Vectors = make([][]float64, n)
	} else {
		resp.Values = make([]float64, n)
	}
	keys := make([]string, n)
	// missing is a request-index slice, appended in request order, so the
	// scatter/gather loops below are deterministic regardless of cache
	// state (pinned by TestEvaluateGatherOrderIndependent). Keep it a
	// slice: a map here would reintroduce iteration-order nondeterminism.
	var missing []int
	for i, pt := range req.Points {
		keys[i] = pointKey(req.Dataset, req.Metric, pt)
		v, ok := s.cache.get(keys[i])
		if !ok {
			missing = append(missing, i)
			continue
		}
		if vector {
			resp.Vectors[i] = v.([]float64)
		} else {
			resp.Values[i] = v.(float64)
		}
	}
	resp.CachedPoints = n - len(missing)

	if len(missing) > 0 {
		s.sweepExecs.Add(1)
		pts := make([]core.SweepPoint, len(missing))
		for r, i := range missing {
			pts[r] = core.SweepPoint{Bonus: req.Points[i].Bonus, K: req.Points[i].K}
		}
		var vecs [][]float64
		var vals []float64
		var err error
		if bonus, ok := s.batchableSweep(pts); ok {
			// Single non-zero bonus: the whole sweep rides the micro-batch
			// window, sharing one ranked pass with every other concurrent
			// request on the same (dataset, bonus).
			vecs, vals, err = s.batchSweep(ctx, e, req.Metric, bonus, pts)
		} else {
			switch req.Metric {
			case "disparity":
				vecs, err = e.eval.DisparitySweepCtx(ctx, pts)
			case "di":
				vecs, err = e.eval.DisparateImpactSweepCtx(ctx, pts)
			case "fpr":
				vecs, err = e.eval.FPRDiffSweepCtx(ctx, pts)
			case "ndcg":
				vals, err = e.eval.NDCGSweepCtx(ctx, pts)
			case "exposure":
				vecs, err = e.eval.ExposureSweepCtx(ctx, pts)
			case "expratio":
				vecs, err = e.eval.ExpRatioSweepCtx(ctx, pts)
			case "topk":
				vecs, err = e.eval.TopKSweepCtx(ctx, pts)
			default:
				// Registry row without a sweep arm: a wiring bug, not a
				// user error. Refuse instead of serving the wrong metric.
				err = fmt.Errorf("metric %q has no sweep dispatch", req.Metric)
			}
		}
		if err != nil {
			// Nothing is cached on failure: rows reach the LRU only below,
			// after the whole sweep (batched or not) succeeded, so a failed
			// or canceled request cannot poison the per-point cache with
			// partial results — and a failed BATCH leaves every member's
			// keys cold, since each member caches only its own rows here.
			var he *httpError
			if errors.As(err, &he) {
				return EvaluateResponse{}, err // batch shed/panic keeps its own status
			}
			return EvaluateResponse{}, pipelineErr(err, http.StatusBadRequest)
		}
		for r, i := range missing {
			if vector {
				resp.Vectors[i] = vecs[r]
				s.cache.put(keys[i], vecs[r])
			} else {
				resp.Values[i] = vals[r]
				s.cache.put(keys[i], vals[r])
			}
		}
	}
	if vector {
		resp.Norms = make([]float64, n)
		for i, v := range resp.Vectors {
			if spec.ddpNorm {
				// Exposure rows are per-capita vectors; their norm is the
				// demographic-disparity finisher, recoverable from the row
				// alone (per-capita > 0 iff populated). Rows only enter the
				// cache from successful sweeps, which already rejected
				// degenerate prefixes, so the error arm is unreachable.
				resp.Norms[i], _ = metrics.DDPFromPerCapita(v)
			} else {
				resp.Norms[i] = metrics.Norm(v)
			}
		}
	}
	return resp, nil
}

// parseBonusParam parses the comma-separated ?bonus= vector.
func parseBonusParam(raw string, dims int) ([]float64, error) {
	parts := strings.Split(raw, ",")
	if len(parts) != dims {
		return nil, fmt.Errorf("bonus has %d dimensions, dataset has %d", len(parts), dims)
	}
	out := make([]float64, dims)
	for j, p := range parts {
		v, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil {
			return nil, fmt.Errorf("bonus dimension %d: %v", j, err)
		}
		if math.IsNaN(v) || math.IsInf(v, 0) || v < 0 {
			return nil, fmt.Errorf("bonus dimension %d is %v, want finite and non-negative", j, v)
		}
		out[j] = v
	}
	return out, nil
}

func (s *Server) handleExplain(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	e, ok := s.entryOr404(w, q.Get("dataset"))
	if !ok {
		return
	}
	k, err := strconv.ParseFloat(q.Get("k"), 64)
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad k %q: %v", q.Get("k"), err)
		return
	}
	if err := rank.CheckFraction(k); err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if q.Get("bonus") == "" {
		writeError(w, http.StatusBadRequest, "missing bonus (comma-separated, one value per fairness attribute)")
		return
	}
	bonus, err := parseBonusParam(q.Get("bonus"), e.d.NumFair())
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	ctx := r.Context()
	if err := faultinject.Fire(ctx, faultinject.SiteExplainStart); err != nil {
		writeHTTPError(w, r, err)
		return
	}
	exp, err := e.eval.ExplainCtx(ctx, bonus, k)
	if err != nil {
		writeHTTPError(w, r, pipelineErr(err, http.StatusBadRequest))
		return
	}
	resp := ExplainResponse{
		Dataset:          e.name,
		K:                exp.K,
		Selected:         exp.Selected,
		Cutoff:           exp.Cutoff,
		BaseCutoff:       exp.BaseCutoff,
		Bonus:            exp.Bonus,
		FairNames:        exp.FairNames,
		GroupCounts:      exp.GroupCounts,
		BaseGroupCounts:  exp.BaseGroupCounts,
		AdmittedByBonus:  exp.AdmittedByBonus,
		DisplacedByBonus: exp.DisplacedByBonus,
		Summary:          exp.Summary(),
	}
	if objRaw := q.Get("object"); objRaw != "" {
		obj, err := strconv.Atoi(objRaw)
		if err != nil {
			writeError(w, http.StatusBadRequest, "bad object %q: %v", objRaw, err)
			return
		}
		oe, err := e.eval.ExplainObject(exp, obj)
		if err != nil {
			writeError(w, http.StatusBadRequest, "%v", err)
			return
		}
		resp.Object = &ObjectExplainResponse{
			Object:       oe.Object,
			BaseScore:    oe.BaseScore,
			BonusTotal:   oe.BonusTotal,
			PerAttribute: oe.PerAttribute,
			Effective:    oe.Effective,
			Selected:     oe.Selected,
			Margin:       oe.Margin,
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleCounterfactual(w http.ResponseWriter, r *http.Request) {
	var req CounterfactualRequest
	if err := decodeJSON(w, r, &req); err != nil {
		writeError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	e, ok := s.entryOr404(w, req.Dataset)
	if !ok {
		return
	}
	if err := req.validate(e.d.NumFair()); err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	for i, obj := range req.Objects {
		if obj < 0 || obj >= e.d.N() {
			writeError(w, http.StatusBadRequest, "object %d (index %d) outside [0,%d)", obj, i, e.d.N())
			return
		}
	}
	// Coalesce concurrent identical requests; the leader probes the
	// per-object cache and ranks only when objects are missing.
	ctx := r.Context()
	v, _, err := s.flights.Do(ctx, req.requestKey(), func() (any, error) {
		return s.runCounterfactual(ctx, e, req)
	})
	if err != nil {
		writeHTTPError(w, r, err)
		return
	}
	writeJSON(w, http.StatusOK, v.(CounterfactualResponse))
}

// runCounterfactual answers a counterfactual request from the per-object
// cache plus one ranked batch over the missing objects. Like sweep rows,
// each (dataset, bonus, k, object) answer is its own LRU entry, so any
// earlier request that covered an object answers it regardless of how the
// object lists were batched.
func (s *Server) runCounterfactual(ctx context.Context, e *Entry, req CounterfactualRequest) (CounterfactualResponse, error) {
	if err := faultinject.Fire(ctx, faultinject.SiteCounterfactualStart); err != nil {
		return CounterfactualResponse{}, err
	}
	resp := CounterfactualResponse{
		Dataset:   req.Dataset,
		K:         req.K,
		FairNames: e.d.FairNames(),
		Results:   make([]CounterfactualResult, len(req.Objects)),
	}
	keys := make([]string, len(req.Objects))
	// Request-index slice in request order; see the note in runEvaluate.
	// Pinned by TestCounterfactualGatherOrderIndependent.
	var missing []int
	for i, obj := range req.Objects {
		keys[i] = req.objectKey(obj)
		if v, ok := s.cache.get(keys[i]); ok {
			resp.Results[i] = v.(CounterfactualResult)
			continue
		}
		missing = append(missing, i)
	}
	resp.CachedObjects = len(req.Objects) - len(missing)

	if len(missing) > 0 {
		s.cfExecs.Add(1)
		objs := make([]int, len(missing))
		for r, i := range missing {
			objs[r] = req.Objects[i]
		}
		var cfs []core.Counterfactual
		var err error
		if s.batch != nil && !isZeroBonus(req.Bonus) {
			// The request becomes one query of a shared-bonus micro-batch;
			// a zero bonus skips the window (the cached base order answers
			// it for free, so there is nothing to share).
			var answers []core.BatchAnswer
			answers, err = s.batch.submit(ctx, e, req.Bonus, []core.BatchQuery{
				{Kind: core.BatchCounterfactual, K: req.K, Objects: objs},
			})
			if err == nil {
				cfs = answers[0].Counterfactuals
			}
		} else {
			cfs, err = e.eval.CounterfactualBatchCtx(ctx, req.Bonus, req.K, objs)
		}
		if err != nil {
			// As with sweeps, per-object rows are cached only after the
			// whole batch succeeded — cancellation leaves the cache clean.
			var he *httpError
			if errors.As(err, &he) {
				return CounterfactualResponse{}, err
			}
			return CounterfactualResponse{}, pipelineErr(err, http.StatusBadRequest)
		}
		for r, i := range missing {
			res := toCounterfactualResult(cfs[r])
			resp.Results[i] = res
			s.cache.put(keys[i], res)
		}
	}
	return resp, nil
}

// toCounterfactualResult shapes one engine counterfactual into the wire
// form. PerAttribute is copied: engine batches carve every row from one
// backing array, and a cached row must not pin the whole batch's backing
// in the LRU. Both the counterfactual endpoint and the report-side cache
// seeding go through here, so their cached rows are identical by
// construction.
func toCounterfactualResult(cf core.Counterfactual) CounterfactualResult {
	return CounterfactualResult{
		Object:       cf.Object,
		Selected:     cf.Selected,
		Rank:         cf.Rank,
		Effective:    cf.Effective,
		Cutoff:       cf.Cutoff,
		Competitor:   cf.Competitor,
		ScoreDelta:   cf.ScoreDelta,
		BonusDelta:   cf.BonusDelta,
		PerAttribute: append([]float64(nil), cf.PerAttribute...),
		Feasible:     cf.Feasible,
	}
}

// handleReport serves GET /v1/report: the versioned audit bundle for a
// bonus policy, rendered as JSON (default), CSV, or Markdown. The built
// bundle is cached independently of the rendering format and concurrent
// identical cold requests are coalesced, mirroring train/evaluate.
func (s *Server) handleReport(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	e, ok := s.entryOr404(w, q.Get("dataset"))
	if !ok {
		return
	}
	k, err := strconv.ParseFloat(q.Get("k"), 64)
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad k %q: %v", q.Get("k"), err)
		return
	}
	if q.Get("bonus") == "" {
		writeError(w, http.StatusBadRequest, "missing bonus (comma-separated, one value per fairness attribute)")
		return
	}
	bonus, err := parseBonusParam(q.Get("bonus"), e.d.NumFair())
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	margins := 0
	if raw := q.Get("margins"); raw != "" {
		if margins, err = strconv.Atoi(raw); err != nil {
			writeError(w, http.StatusBadRequest, "bad margins %q: %v", raw, err)
			return
		}
		if margins > MaxReportMargins {
			writeError(w, http.StatusBadRequest, "margins %d exceeds the limit of %d", margins, MaxReportMargins)
			return
		}
	}
	if margins == 0 {
		// BuildBundle maps 0 to the default; normalize before keying so an
		// absent param and an explicit default share one cache entry.
		margins = report.DefaultMargins
	}
	// FPR differences default to "whenever the dataset can answer them";
	// fpr=1 demands them (a 400 on an outcome-less dataset), fpr=0 omits.
	includeFPR := e.d.HasOutcomes()
	if raw := q.Get("fpr"); raw != "" {
		switch raw {
		case "0":
			includeFPR = false
		case "1":
			includeFPR = true
		default:
			writeError(w, http.StatusBadRequest, "bad fpr %q (want 0 or 1)", raw)
			return
		}
	}
	// The exposure section defaults to "whenever the dataset's fairness
	// attributes are all binary"; exposure=1 demands it (a 400 on a
	// continuous column, raised by the report-layer validation),
	// exposure=0 omits.
	binaryOK, _ := e.d.BinaryFairColumns()
	includeExposure := binaryOK && e.d.NumFair() > 0
	if raw := q.Get("exposure"); raw != "" {
		switch raw {
		case "0":
			includeExposure = false
		case "1":
			includeExposure = true
		default:
			writeError(w, http.StatusBadRequest, "bad exposure %q (want 0 or 1)", raw)
			return
		}
	}
	format := q.Get("format")
	if format == "" {
		format = "json"
	}
	switch format {
	case "json", "csv", "markdown", "md":
	default:
		writeError(w, http.StatusBadRequest, "unknown format %q (want json, csv or markdown)", format)
		return
	}

	key := reportKey(e.name, bonus, k, margins, includeFPR, includeExposure)
	ctx := r.Context()
	v, ok2 := s.cache.get(key)
	if !ok2 {
		v, _, err = s.flights.Do(ctx, key, func() (any, error) {
			if v, ok := s.cache.get(key); ok {
				return v, nil
			}
			if err := faultinject.Fire(ctx, faultinject.SiteReportStart); err != nil {
				return nil, err
			}
			s.reportExecs.Add(1)
			// One rank-once BundleData pass yields both the bundle and the
			// margin counterfactuals; the latter seed the per-object cache
			// so /v1/counterfactual shares the work wherever keys coincide.
			rcfg := report.BundleConfig{
				Dataset:         e.name,
				Bonus:           bonus,
				K:               k,
				Margins:         margins,
				IncludeFPR:      includeFPR,
				IncludeExposure: includeExposure,
			}
			var st *core.BundleStats
			var err error
			if s.batch != nil {
				st, err = s.batchReport(ctx, e, rcfg)
			} else {
				st, err = report.BuildBundleStatsCtx(ctx, e.eval, rcfg)
			}
			if err != nil {
				// Build rejections are request mistakes (bad fraction,
				// zero policy, FPR without outcomes), not server faults;
				// cancellation passes through to the context mapping. The
				// bundle and the margin seeds reach the cache only on
				// success, so an abandoned build caches nothing.
				var he *httpError
				if errors.As(err, &he) {
					return nil, err
				}
				return nil, pipelineErr(err, http.StatusBadRequest)
			}
			b := report.FromStats(e.eval, e.name, st)
			s.cache.put(key, b)
			s.seedMarginCounterfactuals(e, bonus, k, st.Margins)
			return b, nil
		})
		if err != nil {
			writeHTTPError(w, r, err)
			return
		}
	}
	bundle := v.(*report.Bundle)
	switch format {
	case "json":
		w.Header().Set("Content-Type", "application/json")
	case "csv":
		w.Header().Set("Content-Type", "text/csv; charset=utf-8")
	default:
		w.Header().Set("Content-Type", "text/markdown; charset=utf-8")
	}
	w.WriteHeader(http.StatusOK)
	_ = bundle.Render(w, format) // status line already out
}

// seedMarginCounterfactuals publishes the boundary-window counterfactuals
// a BundleData pass already computed into the per-object counterfactual
// cache, under exactly the keys POST /v1/counterfactual would use. A
// follow-up counterfactual request for a boundary object under the same
// (dataset, bonus, k) is then answered without any ranking: the report
// and counterfactual endpoints share one cached BundleStats pass wherever
// their keys coincide. Rows already cached are left alone — both paths
// compute bit-identical answers, so overwriting would only churn the LRU.
func (s *Server) seedMarginCounterfactuals(e *Entry, bonus []float64, k float64, margins []core.Counterfactual) {
	req := CounterfactualRequest{Dataset: e.name, Bonus: bonus, K: k}
	for _, cf := range margins {
		key := req.objectKey(cf.Object)
		if _, ok := s.cache.get(key); ok {
			continue
		}
		s.cache.put(key, toCounterfactualResult(cf))
	}
}

func (s *Server) handleDatasets(w http.ResponseWriter, r *http.Request) {
	entries := s.reg.Entries()
	out := make([]DatasetInfo, len(entries))
	for i, e := range entries {
		out[i] = DatasetInfo{
			Name:        e.name,
			N:           e.d.N(),
			ScoreNames:  e.d.ScoreNames(),
			FairNames:   e.d.FairNames(),
			Polarity:    e.pol.String(),
			HasOutcomes: e.d.HasOutcomes(),
			RankStats:   rankStatsInfo(e),
		}
	}
	writeJSON(w, http.StatusOK, out)
}

// rankStatsInfo converts an entry's combo-run statistics and batching
// counters to the listing shape; nil when the partition declined.
func rankStatsInfo(e *Entry) *RankStatsInfo {
	st, ok := e.eval.RunStats()
	if !ok {
		return nil
	}
	return &RankStatsInfo{
		Runs:            st.Runs,
		MinRunLen:       st.MinLen,
		MedianRunLen:    st.MedianLen,
		MaxRunLen:       st.MaxLen,
		BuildMicros:     st.BuildCost.Microseconds(),
		MergeCount:      e.eval.MergeCount(),
		RankingCount:    e.eval.RankingCount(),
		BatchFlushes:    e.batchFlushes.Load(),
		BatchedRequests: e.batchedRequests.Load(),
	}
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	resp := HealthResponse{
		Status:        "ok",
		UptimeMillis:  time.Since(s.start).Milliseconds(),
		Datasets:      s.reg.Len(),
		CachedResults: s.cache.len(),
		Goroutines:    runtime.NumGoroutine(),
		Draining:      s.draining.Load(),
	}
	if s.admit != nil {
		resp.InFlight = s.admit.inFlight()
		resp.ShedTotal = s.admit.shed.Load()
	}
	if s.batch != nil {
		resp.BatchFlushes, resp.BatchedRequests, resp.BatchLargest, resp.BatchWindows = s.batch.stats()
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleReady serves GET /readyz: 200 once registration finished and
// until the drain starts, 503 otherwise. Liveness stays on /healthz.
func (s *Server) handleReady(w http.ResponseWriter, r *http.Request) {
	resp := ReadyResponse{
		Ready:    s.ready.Load() && !s.draining.Load(),
		Draining: s.draining.Load(),
		Datasets: s.reg.Len(),
	}
	status := http.StatusOK
	if !resp.Ready {
		status = http.StatusServiceUnavailable
	}
	writeJSON(w, status, resp)
}
