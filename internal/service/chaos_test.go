//go:build faultinject

package service

import (
	"bytes"
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"runtime"
	"sync"
	"testing"
	"time"

	"fairrank/internal/faultinject"
	"fairrank/internal/rank"
	"fairrank/internal/synth"
)

// chaosServer builds a Server for fault-injection runs and guarantees a
// clean injection registry before and after each test.
func chaosServer(t testing.TB, cfg Config) *Server {
	t.Helper()
	faultinject.Reset()
	t.Cleanup(faultinject.Reset)
	school, err := synth.GenerateSchool(schoolConfig())
	if err != nil {
		t.Fatal(err)
	}
	s := New(cfg)
	if err := s.Register("school", school, rank.WeightedSum{Weights: synth.SchoolScoreWeights()}, rank.Beneficial); err != nil {
		t.Fatal(err)
	}
	s.MarkReady()
	return s
}

// TestFaultTrainerAcquireSheds: an injected pool-exhaustion fault at
// trainer.acquire surfaces as the real 503 + Retry-After answer.
func TestFaultTrainerAcquireSheds(t *testing.T) {
	s := chaosServer(t, Config{})
	faultinject.Set(faultinject.SiteTrainerAcquire, faultinject.Fault{Err: errTrainersBusy, Count: 1})
	w := doRequest(s.Handler(), httptest.NewRequest("POST", "/v1/train",
		bytes.NewReader([]byte(`{"dataset":"school","k":0.05}`))))
	if w.Code != http.StatusServiceUnavailable {
		t.Fatalf("injected exhaustion answered %d (%s), want 503", w.Code, w.Body)
	}
	if w.Header().Get("Retry-After") == "" {
		t.Error("503 without Retry-After")
	}
	if got := faultinject.Fired(faultinject.SiteTrainerAcquire); got != 1 {
		t.Fatalf("fault fired %d times, want 1", got)
	}
	// Count=1: the fault is spent, the next train succeeds.
	w = doRequest(s.Handler(), httptest.NewRequest("POST", "/v1/train",
		bytes.NewReader([]byte(`{"dataset":"school","k":0.05}`))))
	if w.Code != http.StatusOK {
		t.Fatalf("train after the fault spent = %d (%s)", w.Code, w.Body)
	}
}

// TestFaultSlowRankHitsDeadline: an injected delay at rank.prefix pushes
// the request past its endpoint deadline and the client sees 504 within a
// bounded wall-clock.
func TestFaultSlowRankHitsDeadline(t *testing.T) {
	s := chaosServer(t, Config{Timeouts: Timeouts{Explain: 50 * time.Millisecond}})
	faultinject.Set(faultinject.SiteRankPrefix, faultinject.Fault{Delay: 10 * time.Second})
	start := time.Now()
	w := doRequest(s.Handler(), httptest.NewRequest("GET", "/v1/explain?dataset=school&k=0.05&bonus=1,1,1,1", nil))
	elapsed := time.Since(start)
	if w.Code != http.StatusGatewayTimeout {
		t.Fatalf("slow-rank explain answered %d (%s), want 504", w.Code, w.Body)
	}
	if elapsed > 5*time.Second {
		t.Fatalf("504 took %v; the deadline must cut the injected 10s delay short", elapsed)
	}
}

// TestFaultReportPanicRecovered: a panic injected at report.start answers
// 500 through the recovery middleware, the server stays alive, and the
// same report succeeds once the fault is cleared.
func TestFaultReportPanicRecovered(t *testing.T) {
	s := chaosServer(t, Config{})
	h := s.Handler()
	const url = "/v1/report?dataset=school&k=0.05&bonus=1,11.5,12,12"
	faultinject.Set(faultinject.SiteReportStart, faultinject.Fault{Panic: "audit pipeline blew up", Count: 1})
	w := doRequest(h, httptest.NewRequest("GET", url, nil))
	if w.Code != http.StatusInternalServerError {
		t.Fatalf("panicking report answered %d (%s), want 500", w.Code, w.Body)
	}
	if s.panics.Load() != 1 {
		t.Errorf("panic counter = %d, want 1", s.panics.Load())
	}
	if w := doRequest(h, httptest.NewRequest("GET", "/healthz", nil)); w.Code != http.StatusOK {
		t.Fatal("healthz failed after a recovered panic")
	}
	if got := s.cache.len(); got != 0 {
		t.Fatalf("panicked report build left %d cache entries", got)
	}
	if w := doRequest(h, httptest.NewRequest("GET", url, nil)); w.Code != http.StatusOK {
		t.Fatalf("report after the fault spent = %d (%s)", w.Code, w.Body)
	}
}

// TestFaultEvaluateErrorDoesNotPoisonCache: an error injected at
// evaluate.start fails the sweep without caching anything.
func TestFaultEvaluateErrorDoesNotPoisonCache(t *testing.T) {
	s := chaosServer(t, Config{})
	h := s.Handler()
	faultinject.Set(faultinject.SiteEvaluateStart, faultinject.Fault{Err: errors.New("injected storage failure"), Count: 1})
	w := doRequest(h, httptest.NewRequest("POST", "/v1/evaluate", sweepBody(t, 16)))
	if w.Code != http.StatusInternalServerError {
		t.Fatalf("injected evaluate failure answered %d (%s), want 500", w.Code, w.Body)
	}
	if got := s.cache.len(); got != 0 {
		t.Fatalf("failed sweep cached %d entries", got)
	}
	w = doRequest(h, httptest.NewRequest("POST", "/v1/evaluate", sweepBody(t, 16)))
	if w.Code != http.StatusOK {
		t.Fatalf("sweep after the fault spent = %d (%s)", w.Code, w.Body)
	}
}

// TestChaosStorm is the chaos suite's centerpiece: a concurrent storm of
// requests while faults (delays, errors, panics) flicker on and off.
// Invariants: bounded wall-clock, every response is one of the declared
// statuses, surviving 200 responses are byte-identical to the clean
// answer, and the goroutine count returns to baseline.
func TestChaosStorm(t *testing.T) {
	s := chaosServer(t, Config{
		MaxInFlight: 32,
		AdmitWait:   5 * time.Millisecond,
		Timeouts: Timeouts{
			Explain:  2 * time.Second,
			Evaluate: 2 * time.Second,
			Report:   2 * time.Second,
			Train:    2 * time.Second,
		},
	})
	h := s.Handler()
	const explainURL = "/v1/explain?dataset=school&k=0.05&bonus=1,11.5,12,12"

	// Reference body from a clean run, for byte-identity of survivors.
	clean := doRequest(h, httptest.NewRequest("GET", explainURL, nil))
	if clean.Code != http.StatusOK {
		t.Fatalf("clean explain = %d (%s)", clean.Code, clean.Body)
	}
	want := clean.Body.Bytes()

	runtime.GC()
	baseline := runtime.NumGoroutine()

	stop := make(chan struct{})
	var flicker sync.WaitGroup
	flicker.Add(1)
	go func() { // fault flickerer: arm/disarm sites while the storm runs
		defer flicker.Done()
		sites := []struct {
			site string
			f    faultinject.Fault
		}{
			{faultinject.SiteExplainStart, faultinject.Fault{Delay: 3 * time.Millisecond}},
			{faultinject.SiteRankPrefix, faultinject.Fault{Err: context.DeadlineExceeded}},
			{faultinject.SiteExplainStart, faultinject.Fault{Panic: "storm panic"}},
			{faultinject.SiteTrainerAcquire, faultinject.Fault{Err: errTrainersBusy}},
		}
		i := 0
		for {
			select {
			case <-stop:
				faultinject.Reset()
				return
			default:
			}
			sc := sites[i%len(sites)]
			faultinject.Set(sc.site, sc.f)
			time.Sleep(2 * time.Millisecond)
			faultinject.Clear(sc.site)
			i++
		}
	}()

	const workers = 16
	const perWorker = 25
	statuses := make([]map[int]int, workers)
	bodies := make([][]byte, workers)
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			statuses[w] = make(map[int]int)
			for i := 0; i < perWorker; i++ {
				rec := doRequest(h, httptest.NewRequest("GET", explainURL, nil))
				statuses[w][rec.Code]++
				if rec.Code == http.StatusOK && bodies[w] == nil {
					bodies[w] = append([]byte(nil), rec.Body.Bytes()...)
				}
			}
		}(w)
	}
	wg.Wait()
	close(stop)
	flicker.Wait()
	if elapsed := time.Since(start); elapsed > 90*time.Second {
		t.Fatalf("storm took %v; latency is unbounded under faults", elapsed)
	}

	allowed := map[int]bool{
		http.StatusOK:                  true,
		http.StatusInternalServerError: true, // injected panics and generic injected errors
		http.StatusServiceUnavailable:  true, // injected exhaustion, leader-ctx faults
		http.StatusTooManyRequests:     true, // admission under the storm
		http.StatusGatewayTimeout:      true, // injected deadline overruns
	}
	total, okCount := 0, 0
	for w := range statuses {
		for code, n := range statuses[w] {
			total += n
			if code == http.StatusOK {
				okCount += n
			}
			if !allowed[code] {
				t.Errorf("storm produced status %d (%d times)", code, n)
			}
		}
	}
	if total != workers*perWorker {
		t.Errorf("storm answered %d of %d requests", total, workers*perWorker)
	}
	if okCount == 0 {
		t.Error("storm produced zero successful responses; faults were supposed to flicker, not saturate")
	}
	for w := range bodies {
		if bodies[w] != nil && !bytes.Equal(bodies[w], want) {
			t.Fatalf("surviving response diverged from the clean answer:\n got %s\nwant %s", bodies[w], want)
		}
	}

	deadline := time.Now().Add(10 * time.Second)
	for {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= baseline {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines did not settle after the storm: baseline %d, now %d", baseline, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}
}
