package service

import (
	"fmt"
	"io"
	"net/http"
	"reflect"
	"sync"
	"testing"
)

// TestReportCounterfactualSharedBundleStats pins the cross-endpoint
// sharing contract: one GET /v1/report runs one BundleData pass, and its
// margin-window counterfactuals land in the per-object cache under the
// same keys POST /v1/counterfactual uses — so auditing the boundary
// objects of a freshly built bundle costs zero additional rankings and
// returns bit-identical rows.
func TestReportCounterfactualSharedBundleStats(t *testing.T) {
	s, ts := newTestServer(t)
	const bonus = "2,10.5,9,12"
	bonusVec := []float64{2, 10.5, 9, 12}

	resp, err := http.Get(reportURL(ts.URL, map[string]string{
		"dataset": "school", "k": "0.05", "bonus": bonus, "margins": "4",
	}))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("report: %d", resp.StatusCode)
	}
	if got := s.reportExecs.Load(); got != 1 {
		t.Fatalf("bundle built %d times, want 1", got)
	}

	// The margin window at k=0.05 over 2500 objects spans ranks 121..128;
	// ask for those same boundary objects through /v1/counterfactual.
	e, _ := s.reg.Get("school")
	window := e.eval.Order(bonusVec)[121:129]
	var cf CounterfactualResponse
	code, body := postJSON(t, ts.URL+"/v1/counterfactual",
		CounterfactualRequest{Dataset: "school", Bonus: bonusVec, K: 0.05, Objects: window}, &cf)
	if code != 200 {
		t.Fatalf("counterfactual: %d %s", code, body)
	}
	if cf.CachedObjects != len(window) {
		t.Errorf("%d of %d boundary objects answered from the shared bundle pass", cf.CachedObjects, len(window))
	}
	if got := s.cfExecs.Load(); got != 0 {
		t.Errorf("counterfactual batch ran %d times after the bundle seeded the cache, want 0", got)
	}
	// The seeded rows must be exactly what the counterfactual engine
	// would compute.
	want, err := e.eval.CounterfactualBatch(bonusVec, 0.05, window)
	if err != nil {
		t.Fatal(err)
	}
	for i, got := range cf.Results {
		w := want[i]
		if got.Object != w.Object || got.Rank != w.Rank || got.ScoreDelta != w.ScoreDelta ||
			got.BonusDelta != w.BonusDelta || got.Cutoff != w.Cutoff || got.Competitor != w.Competitor ||
			got.Feasible != w.Feasible || !reflect.DeepEqual(got.PerAttribute, w.PerAttribute) {
			t.Errorf("seeded row %d = %+v, engine says %+v", i, got, w)
		}
	}
}

// TestReportCounterfactualConcurrentCold hammers GET /v1/report (two
// formats) and POST /v1/counterfactual concurrently against one cold
// dataset under -race: the report flights must coalesce into exactly one
// BundleData pass, at most one counterfactual batch may run (followers
// coalesce; after the leader, the per-object cache answers), and every
// response must be byte-identical to its format leader's.
func TestReportCounterfactualConcurrentCold(t *testing.T) {
	s, ts := newTestServer(t)
	const workers = 8
	const bonus = "2,10.5,9,12"
	bonusVec := []float64{2, 10.5, 9, 12}
	objs := []int{0, 60, 124, 125, 126, 2400}

	reportBodies := make(map[string][][]byte) // format -> bodies
	var mu sync.Mutex
	var wg sync.WaitGroup
	errs := make(chan error, 3*workers)
	for w := 0; w < workers; w++ {
		for _, format := range []string{"json", "md"} {
			wg.Add(1)
			go func(format string) {
				defer wg.Done()
				resp, err := http.Get(reportURL(ts.URL, map[string]string{
					"dataset": "school", "k": "0.05", "bonus": bonus, "format": format,
				}))
				if err != nil {
					errs <- err
					return
				}
				body, err := io.ReadAll(resp.Body)
				resp.Body.Close()
				if err != nil {
					errs <- err
					return
				}
				if resp.StatusCode != 200 {
					errs <- fmt.Errorf("report %s: %d", format, resp.StatusCode)
					return
				}
				mu.Lock()
				reportBodies[format] = append(reportBodies[format], body)
				mu.Unlock()
			}(format)
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			var cf CounterfactualResponse
			code, body := postJSON(t, ts.URL+"/v1/counterfactual",
				CounterfactualRequest{Dataset: "school", Bonus: bonusVec, K: 0.05, Objects: objs}, &cf)
			if code != 200 {
				errs <- fmt.Errorf("counterfactual: %d %s", code, body)
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	if got := s.reportExecs.Load(); got != 1 {
		t.Errorf("BundleData pass ran %d times under %d concurrent report requests, want exactly 1", got, 2*workers)
	}
	if got := s.cfExecs.Load(); got > 1 {
		t.Errorf("counterfactual batch ran %d times, want at most 1 (coalesced or cache-fed)", got)
	}
	for format, bodies := range reportBodies {
		if len(bodies) != workers {
			t.Fatalf("%s: %d responses, want %d", format, len(bodies), workers)
		}
		for i, b := range bodies[1:] {
			if string(b) != string(bodies[0]) {
				t.Errorf("%s response %d differs from the leader's", format, i+1)
			}
		}
	}
}
