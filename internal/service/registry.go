package service

import (
	"context"
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"

	"fairrank/internal/core"
	"fairrank/internal/dataset"
	"fairrank/internal/faultinject"
	"fairrank/internal/rank"
)

// Entry is one registered dataset with everything a request needs: the
// shared concurrent evaluator and a bounded pool of single-goroutine
// trainers.
type Entry struct {
	name   string
	d      *dataset.Dataset
	scorer rank.Scorer
	pol    rank.Polarity

	// eval is safe for concurrent use (pooled workspaces, parallel
	// sweeps); every handler shares this one instance so the precomputed
	// base ranking and population centroid are paid once.
	eval *core.Evaluator

	// proto owns the precomputed base scores; acquire clones it when the
	// idle pool is empty, so a burst of concurrent train requests costs
	// one workspace allocation each, never an O(n) rescore.
	proto *core.Trainer
	pool  chan *core.Trainer

	// live is the in-flight trainer token table (liveTrainerCap).
	// acquire takes a token before handing out a trainer (pooled or
	// cloned), so the total number of live trainers per dataset — and
	// with it the clone fallback's memory — is bounded; beyond the cap,
	// requests are shed with 503 instead of cloning without limit.
	live chan struct{}

	// batchFlushes counts the micro-batches flushed for this dataset and
	// batchedRequests the member requests they served; both stay zero
	// unless the server enabled micro-batching. Surfaced in the
	// /v1/datasets rank_stats block next to the ranking counters, so the
	// coalesce ratio (batchedRequests / batchFlushes) is observable per
	// dataset.
	batchFlushes    atomic.Int64
	batchedRequests atomic.Int64
}

// minLiveTrainers floors the live-trainer cap. The cap exists to stop a
// request storm from cloning trainers (each an O(n) workspace) without
// limit, not to serialize modest concurrency: on a small-GOMAXPROCS box
// 2×poolSize would shed a handful of concurrent distinct what-if
// queries that the box can happily interleave.
const minLiveTrainers = 16

// liveTrainerCap is the per-dataset bound on concurrently-out trainers:
// 2×poolSize, floored at minLiveTrainers.
func liveTrainerCap(poolSize int) int {
	if c := 2 * poolSize; c > minLiveTrainers {
		return c
	}
	return minLiveTrainers
}

// Name returns the registry key.
func (e *Entry) Name() string { return e.name }

// Dataset returns the registered dataset.
func (e *Entry) Dataset() *dataset.Dataset { return e.d }

// Polarity returns the registered selection polarity.
func (e *Entry) Polarity() rank.Polarity { return e.pol }

// Evaluator returns the shared concurrent evaluator.
func (e *Entry) Evaluator() *core.Evaluator { return e.eval }

// errTrainersBusy is the answer when a dataset's live-trainer table is
// full: every pooled trainer and every allowed clone is mid-train.
// Transient — a train finishes within one deadline — hence Retry-After.
var errTrainersBusy = &httpError{
	status:     http.StatusServiceUnavailable,
	msg:        "all trainers busy; retry shortly",
	retryAfter: 1,
}

// acquire hands out a trainer for exclusive use; pair with release. The
// idle pool answers first; when it is empty the prototype is cloned, but
// only while a live token is available — at most liveTrainerCap trainers
// exist at once, and requests beyond that are shed with errTrainersBusy
// rather than cloning unboundedly under a request storm.
func (e *Entry) acquire(ctx context.Context) (*core.Trainer, error) {
	if err := faultinject.Fire(ctx, faultinject.SiteTrainerAcquire); err != nil {
		return nil, err
	}
	select {
	case e.live <- struct{}{}:
	default:
		return nil, errTrainersBusy
	}
	select {
	case t := <-e.pool:
		return t, nil
	default:
		return e.proto.Clone(), nil
	}
}

// release returns a trainer to the idle pool, dropping it when the pool
// is full (the workspace is garbage; base scores are shared with proto),
// and frees the live token taken by acquire.
func (e *Entry) release(t *core.Trainer) {
	select {
	case e.pool <- t:
	default:
	}
	<-e.live
}

// Registry maps dataset names to entries. Registration happens at startup
// (or under test setup); lookups are concurrent.
type Registry struct {
	poolSize int

	mu      sync.RWMutex
	entries map[string]*Entry
	order   []string // registration order, for stable listings
}

// NewRegistry returns an empty registry whose entries retain at most
// poolSize idle trainers each.
func NewRegistry(poolSize int) *Registry {
	if poolSize < 1 {
		poolSize = 1
	}
	return &Registry{poolSize: poolSize, entries: make(map[string]*Entry)}
}

// Register adds a dataset under name, building its evaluator and trainer
// prototype. Empty and duplicate names are rejected.
func (r *Registry) Register(name string, d *dataset.Dataset, scorer rank.Scorer, pol rank.Polarity) error {
	if name == "" {
		return fmt.Errorf("service: empty dataset name")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.entries[name]; ok {
		return fmt.Errorf("service: dataset %q already registered", name)
	}
	r.entries[name] = &Entry{
		name:   name,
		d:      d,
		scorer: scorer,
		pol:    pol,
		eval:   core.NewEvaluator(d, scorer, pol),
		proto:  core.NewTrainer(d, scorer),
		pool:   make(chan *core.Trainer, r.poolSize),
		live:   make(chan struct{}, liveTrainerCap(r.poolSize)),
	}
	r.order = append(r.order, name)
	return nil
}

// Get returns the entry registered under name.
func (r *Registry) Get(name string) (*Entry, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	e, ok := r.entries[name]
	return e, ok
}

// Entries returns all entries in registration order.
func (r *Registry) Entries() []*Entry {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]*Entry, 0, len(r.order))
	for _, n := range r.order {
		out = append(out, r.entries[n])
	}
	return out
}

// Len reports the number of registered datasets.
func (r *Registry) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.entries)
}
