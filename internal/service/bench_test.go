package service

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"fairrank/internal/rank"
	"fairrank/internal/synth"
)

// newBenchServer serves the paper-scale synthetic school cohort (80k
// students) — the load-smoke configuration recorded in BENCH_serve.json.
func newBenchServer(b *testing.B) *httptest.Server {
	return newBenchServerCfg(b, Config{})
}

func newBenchServerCfg(b *testing.B, cfg Config) *httptest.Server {
	b.Helper()
	d, err := synth.GenerateSchool(synth.DefaultSchoolConfig())
	if err != nil {
		b.Fatal(err)
	}
	s := New(cfg)
	if err := s.Register("school", d, rank.WeightedSum{Weights: synth.SchoolScoreWeights()}, rank.Beneficial); err != nil {
		b.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	b.Cleanup(ts.Close)
	return ts
}

func benchPost(b *testing.B, client *http.Client, url string, body []byte) []byte {
	resp, err := client.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		b.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		b.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		b.Fatalf("%d %s", resp.StatusCode, buf.String())
	}
	return buf.Bytes()
}

// BenchmarkServeTrainUncached measures cold what-if throughput: every
// request carries a fresh seed, so each one runs a full DCA pipeline
// (300 ladder + 100 refinement steps on 500-object samples) plus the
// full-population diagnostics.
func BenchmarkServeTrainUncached(b *testing.B) {
	ts := newBenchServer(b)
	var seed atomic.Int64
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		client := &http.Client{}
		for pb.Next() {
			s := seed.Add(1)
			body := fmt.Appendf(nil, `{"dataset":"school","k":0.05,"seed":%d}`, s)
			benchPost(b, client, ts.URL+"/v1/train", body)
		}
	})
}

// BenchmarkServeTrainCached measures the steady-state what-if loop: the
// same request repeated, served from the result LRU.
func BenchmarkServeTrainCached(b *testing.B) {
	ts := newBenchServer(b)
	body := []byte(`{"dataset":"school","k":0.05,"seed":1}`)
	client := &http.Client{}
	benchPost(b, client, ts.URL+"/v1/train", body) // warm the cache
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		client := &http.Client{}
		for pb.Next() {
			benchPost(b, client, ts.URL+"/v1/train", body)
		}
	})
}

// BenchmarkServeEvaluateSweep measures a cold 16-point disparity sweep
// per request: every iteration asks about a previously unseen bonus
// vector, so each request pays one full-population ranking plus 16 prefix
// evaluations in the core sweep engine (never the per-point row cache).
func BenchmarkServeEvaluateSweep(b *testing.B) {
	ts := newBenchServer(b)
	client := &http.Client{}
	trained := benchPost(b, client, ts.URL+"/v1/train", []byte(`{"dataset":"school","k":0.05,"seed":1}`))
	var tr TrainResponse
	if err := json.Unmarshal(trained, &tr); err != nil {
		b.Fatal(err)
	}
	var iter atomic.Int64
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		client := &http.Client{}
		points := make([]SweepPointRequest, 16)
		for pb.Next() {
			// A distinct bonus per iteration defeats the sweep row cache.
			bonus := append([]float64(nil), tr.Bonus...)
			bonus[0] += 0.5 * float64(iter.Add(1))
			for i := range points {
				points[i] = SweepPointRequest{Bonus: bonus, K: 0.01 + 0.02*float64(i)}
			}
			body, err := json.Marshal(EvaluateRequest{Dataset: "school", Metric: "disparity", Points: points})
			if err != nil {
				b.Fatal(err)
			}
			benchPost(b, client, ts.URL+"/v1/evaluate", body)
		}
	})
}

// BenchmarkServeEvaluateSweepExposure measures a cold 16-point exposure
// sweep per request on the binary view of the school cohort (the
// continuous ENI attribute dropped via WithFairColumns, as the paper's
// exposure experiments do). Like BenchmarkServeEvaluateSweep, every
// iteration uses a previously unseen bonus vector, so each request pays
// one full-population ranking plus 16 prefix exposure folds.
func BenchmarkServeEvaluateSweepExposure(b *testing.B) {
	d, err := synth.GenerateSchool(synth.DefaultSchoolConfig())
	if err != nil {
		b.Fatal(err)
	}
	s := New(Config{})
	// Columns 0, 1, 3 are Low-Income, ELL, Special-Ed; column 2 is the
	// continuous ENI attribute the exposure family rejects.
	view := d.WithFairColumns([]int{0, 1, 3})
	if err := s.Register("school-binary", view, rank.WeightedSum{Weights: synth.SchoolScoreWeights()}, rank.Beneficial); err != nil {
		b.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	b.Cleanup(ts.Close)
	var iter atomic.Int64
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		client := &http.Client{}
		points := make([]SweepPointRequest, 16)
		for pb.Next() {
			// A distinct bonus per iteration defeats the sweep row cache.
			bonus := []float64{2, 10.5, 12}
			bonus[0] += 0.5 * float64(iter.Add(1))
			for i := range points {
				points[i] = SweepPointRequest{Bonus: bonus, K: 0.01 + 0.02*float64(i)}
			}
			body, err := json.Marshal(EvaluateRequest{Dataset: "school-binary", Metric: "exposure", Points: points})
			if err != nil {
				b.Fatal(err)
			}
			benchPost(b, client, ts.URL+"/v1/evaluate", body)
		}
	})
}

// BenchmarkServeEvaluateSweepCached measures the steady-state sweep loop:
// the same 16-point request repeated, answered row by row from the LRU.
func BenchmarkServeEvaluateSweepCached(b *testing.B) {
	ts := newBenchServer(b)
	client := &http.Client{}
	trained := benchPost(b, client, ts.URL+"/v1/train", []byte(`{"dataset":"school","k":0.05,"seed":1}`))
	var tr TrainResponse
	if err := json.Unmarshal(trained, &tr); err != nil {
		b.Fatal(err)
	}
	points := make([]SweepPointRequest, 16)
	for i := range points {
		points[i] = SweepPointRequest{Bonus: tr.Bonus, K: 0.01 + 0.02*float64(i)}
	}
	body, err := json.Marshal(EvaluateRequest{Dataset: "school", Metric: "disparity", Points: points})
	if err != nil {
		b.Fatal(err)
	}
	benchPost(b, client, ts.URL+"/v1/evaluate", body) // warm the rows
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		client := &http.Client{}
		for pb.Next() {
			benchPost(b, client, ts.URL+"/v1/evaluate", body)
		}
	})
}

// benchConcurrentDistinctK measures one round of 16 concurrent clients
// asking about the SAME previously unseen bonus vector with 16 DISTINCT
// cut fractions — the micro-batching target load. Every round uses a
// fresh bonus so neither the sweep row cache nor the result LRU can
// answer; the cost is pure ranked-pass work. With batching enabled the
// round costs one ranked pass; without it, sixteen.
func benchConcurrentDistinctK(b *testing.B, cfg Config) {
	ts := newBenchServerCfg(b, cfg)
	const clients = 16
	pool := make([]*http.Client, clients)
	for c := range pool {
		pool[c] = &http.Client{}
	}
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		bonus := []float64{1, 11.5, 12, float64(13 + n)}
		var wg sync.WaitGroup
		var firstErr atomic.Value
		for c := 0; c < clients; c++ {
			wg.Add(1)
			go func(c int) {
				defer wg.Done()
				body, err := json.Marshal(EvaluateRequest{Dataset: "school", Metric: "disparity",
					Points: []SweepPointRequest{{Bonus: bonus, K: 0.01 + 0.02*float64(c)}}})
				if err != nil {
					firstErr.CompareAndSwap(nil, err)
					return
				}
				resp, err := pool[c].Post(ts.URL+"/v1/evaluate", "application/json", bytes.NewReader(body))
				if err != nil {
					firstErr.CompareAndSwap(nil, err)
					return
				}
				var buf bytes.Buffer
				buf.ReadFrom(resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					firstErr.CompareAndSwap(nil, fmt.Errorf("%d %s", resp.StatusCode, buf.String()))
				}
			}(c)
		}
		wg.Wait()
		if err := firstErr.Load(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkServeEvaluateBatched16 is the CI-guarded batching benchmark:
// 16 concurrent distinct-k clients per round, collected into one window.
func BenchmarkServeEvaluateBatched16(b *testing.B) {
	benchConcurrentDistinctK(b, Config{BatchSize: 16, BatchMaxWait: 5 * time.Millisecond})
}

// BenchmarkServeEvaluateUnbatched16 is the same load with batching off:
// the baseline that the batched number is compared against.
func BenchmarkServeEvaluateUnbatched16(b *testing.B) {
	benchConcurrentDistinctK(b, Config{})
}

// BenchmarkServeExplain measures the transparency-report path.
func BenchmarkServeExplain(b *testing.B) {
	ts := newBenchServer(b)
	url := ts.URL + "/v1/explain?dataset=school&k=0.05&bonus=1,11.5,12,12"
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		client := &http.Client{}
		for pb.Next() {
			resp, err := client.Get(url)
			if err != nil {
				b.Fatal(err)
			}
			var buf bytes.Buffer
			buf.ReadFrom(resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				b.Fatalf("%d %s", resp.StatusCode, buf.String())
			}
		}
	})
}
