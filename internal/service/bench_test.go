package service

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"

	"fairrank/internal/rank"
	"fairrank/internal/synth"
)

// newBenchServer serves the paper-scale synthetic school cohort (80k
// students) — the load-smoke configuration recorded in BENCH_serve.json.
func newBenchServer(b *testing.B) *httptest.Server {
	b.Helper()
	d, err := synth.GenerateSchool(synth.DefaultSchoolConfig())
	if err != nil {
		b.Fatal(err)
	}
	s := New(Config{})
	if err := s.Register("school", d, rank.WeightedSum{Weights: synth.SchoolScoreWeights()}, rank.Beneficial); err != nil {
		b.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	b.Cleanup(ts.Close)
	return ts
}

func benchPost(b *testing.B, client *http.Client, url string, body []byte) []byte {
	resp, err := client.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		b.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		b.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		b.Fatalf("%d %s", resp.StatusCode, buf.String())
	}
	return buf.Bytes()
}

// BenchmarkServeTrainUncached measures cold what-if throughput: every
// request carries a fresh seed, so each one runs a full DCA pipeline
// (300 ladder + 100 refinement steps on 500-object samples) plus the
// full-population diagnostics.
func BenchmarkServeTrainUncached(b *testing.B) {
	ts := newBenchServer(b)
	var seed atomic.Int64
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		client := &http.Client{}
		for pb.Next() {
			s := seed.Add(1)
			body := fmt.Appendf(nil, `{"dataset":"school","k":0.05,"seed":%d}`, s)
			benchPost(b, client, ts.URL+"/v1/train", body)
		}
	})
}

// BenchmarkServeTrainCached measures the steady-state what-if loop: the
// same request repeated, served from the result LRU.
func BenchmarkServeTrainCached(b *testing.B) {
	ts := newBenchServer(b)
	body := []byte(`{"dataset":"school","k":0.05,"seed":1}`)
	client := &http.Client{}
	benchPost(b, client, ts.URL+"/v1/train", body) // warm the cache
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		client := &http.Client{}
		for pb.Next() {
			benchPost(b, client, ts.URL+"/v1/train", body)
		}
	})
}

// BenchmarkServeEvaluateSweep measures a cold 16-point disparity sweep
// per request: every iteration asks about a previously unseen bonus
// vector, so each request pays one full-population ranking plus 16 prefix
// evaluations in the core sweep engine (never the per-point row cache).
func BenchmarkServeEvaluateSweep(b *testing.B) {
	ts := newBenchServer(b)
	client := &http.Client{}
	trained := benchPost(b, client, ts.URL+"/v1/train", []byte(`{"dataset":"school","k":0.05,"seed":1}`))
	var tr TrainResponse
	if err := json.Unmarshal(trained, &tr); err != nil {
		b.Fatal(err)
	}
	var iter atomic.Int64
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		client := &http.Client{}
		points := make([]SweepPointRequest, 16)
		for pb.Next() {
			// A distinct bonus per iteration defeats the sweep row cache.
			bonus := append([]float64(nil), tr.Bonus...)
			bonus[0] += 0.5 * float64(iter.Add(1))
			for i := range points {
				points[i] = SweepPointRequest{Bonus: bonus, K: 0.01 + 0.02*float64(i)}
			}
			body, err := json.Marshal(EvaluateRequest{Dataset: "school", Metric: "disparity", Points: points})
			if err != nil {
				b.Fatal(err)
			}
			benchPost(b, client, ts.URL+"/v1/evaluate", body)
		}
	})
}

// BenchmarkServeEvaluateSweepCached measures the steady-state sweep loop:
// the same 16-point request repeated, answered row by row from the LRU.
func BenchmarkServeEvaluateSweepCached(b *testing.B) {
	ts := newBenchServer(b)
	client := &http.Client{}
	trained := benchPost(b, client, ts.URL+"/v1/train", []byte(`{"dataset":"school","k":0.05,"seed":1}`))
	var tr TrainResponse
	if err := json.Unmarshal(trained, &tr); err != nil {
		b.Fatal(err)
	}
	points := make([]SweepPointRequest, 16)
	for i := range points {
		points[i] = SweepPointRequest{Bonus: tr.Bonus, K: 0.01 + 0.02*float64(i)}
	}
	body, err := json.Marshal(EvaluateRequest{Dataset: "school", Metric: "disparity", Points: points})
	if err != nil {
		b.Fatal(err)
	}
	benchPost(b, client, ts.URL+"/v1/evaluate", body) // warm the rows
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		client := &http.Client{}
		for pb.Next() {
			benchPost(b, client, ts.URL+"/v1/evaluate", body)
		}
	})
}

// BenchmarkServeExplain measures the transparency-report path.
func BenchmarkServeExplain(b *testing.B) {
	ts := newBenchServer(b)
	url := ts.URL + "/v1/explain?dataset=school&k=0.05&bonus=1,11.5,12,12"
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		client := &http.Client{}
		for pb.Next() {
			resp, err := client.Get(url)
			if err != nil {
				b.Fatal(err)
			}
			var buf bytes.Buffer
			buf.ReadFrom(resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				b.Fatalf("%d %s", resp.StatusCode, buf.String())
			}
		}
	})
}
