package service

import (
	"fmt"
	"math"
	"strconv"

	"fairrank/internal/core"
	"fairrank/internal/rank"
)

// MaxSweepPoints bounds one /v1/evaluate request: enough for a dense
// trade-off curve, small enough that a single request cannot monopolize
// the worker pool.
const MaxSweepPoints = 4096

// Train modes.
const (
	// ModeFull is the paper's full pipeline: Algorithm 1 + Adam refinement
	// + rounding. The default.
	ModeFull = "full"
	// ModeCore is Algorithm 1 only — faster, rougher.
	ModeCore = "core"
	// ModeWhole is the whole-dataset variant of Section IV-C.
	ModeWhole = "whole"
)

// TrainRequest is the body of POST /v1/train: one what-if DCA run.
// Omitted fields default to the paper's settings (sample 500, seed 1,
// granularity 0.5, 100 refinement steps, objective "disparity").
type TrainRequest struct {
	Dataset   string  `json:"dataset"`
	Objective string  `json:"objective,omitempty"`
	K         float64 `json:"k"`
	Mode      string  `json:"mode,omitempty"`
	// SampleSize is the per-step sample size (ignored by mode "whole").
	SampleSize int   `json:"sample_size,omitempty"`
	Seed       int64 `json:"seed,omitempty"`
	// Granularity and RefineSteps are pointers so an explicit 0 (disable
	// rounding / skip refinement) is distinguishable from absent.
	Granularity *float64 `json:"granularity,omitempty"`
	MaxBonus    float64  `json:"max_bonus,omitempty"`
	RefineSteps *int     `json:"refine_steps,omitempty"`
}

// trainParams is a normalized, validated TrainRequest: defaults applied,
// objective constructed, ready to key the cache and drive a trainer.
type trainParams struct {
	req  TrainRequest // normalized copy (defaults filled in)
	mode string
	obj  core.Objective
	opts core.Options
}

// normalize validates the request and applies the paper defaults. All
// validation happens here — before any dataset or trainer is touched — so
// a malformed what-if query costs nothing but the parse.
func (r TrainRequest) normalize() (*trainParams, error) {
	p := &trainParams{req: r}
	if p.req.Dataset == "" {
		return nil, fmt.Errorf("missing dataset")
	}
	if p.req.Objective == "" {
		p.req.Objective = "disparity"
	}
	obj, err := core.ObjectiveByName(p.req.Objective, p.req.K)
	if err != nil {
		return nil, err
	}
	p.obj = obj
	switch p.req.Mode {
	case "", ModeFull:
		p.req.Mode = ModeFull
	case ModeCore, ModeWhole:
	default:
		return nil, fmt.Errorf("unknown mode %q (want %s, %s or %s)", p.req.Mode, ModeFull, ModeCore, ModeWhole)
	}
	p.mode = p.req.Mode

	p.opts = core.DefaultOptions()
	if p.req.SampleSize != 0 {
		if p.req.SampleSize < 0 {
			return nil, fmt.Errorf("sample_size must be positive, got %d", p.req.SampleSize)
		}
		p.opts.SampleSize = p.req.SampleSize
	}
	p.req.SampleSize = p.opts.SampleSize
	if p.req.Seed != 0 {
		p.opts.Seed = p.req.Seed
	}
	p.req.Seed = p.opts.Seed
	if p.req.Granularity != nil {
		g := *p.req.Granularity
		if math.IsNaN(g) || math.IsInf(g, 0) || g < 0 {
			return nil, fmt.Errorf("granularity must be finite and non-negative, got %v", g)
		}
		p.opts.Granularity = g
	} else {
		g := p.opts.Granularity
		p.req.Granularity = &g
	}
	if math.IsNaN(p.req.MaxBonus) || math.IsInf(p.req.MaxBonus, 0) || p.req.MaxBonus < 0 {
		return nil, fmt.Errorf("max_bonus must be finite and non-negative, got %v", p.req.MaxBonus)
	}
	p.opts.MaxBonus = p.req.MaxBonus
	if p.req.RefineSteps != nil {
		if *p.req.RefineSteps < 0 {
			return nil, fmt.Errorf("refine_steps must be non-negative, got %d", *p.req.RefineSteps)
		}
		p.opts.RefineSteps = *p.req.RefineSteps
	} else {
		rs := p.opts.RefineSteps
		p.req.RefineSteps = &rs
	}
	// Canonicalize fields the chosen mode ignores, so equal what-ifs
	// share one cache entry: "whole" trains on the entire population
	// (sample size and refinement are overridden by TrainFull), "core"
	// skips refinement.
	zero := 0
	switch p.mode {
	case ModeWhole:
		p.req.SampleSize = 0
		p.req.RefineSteps = &zero
	case ModeCore:
		p.req.RefineSteps = &zero
	}
	return p, nil
}

// cacheKey identifies a normalized request. Training is deterministic in
// these fields (plus the dataset's registered polarity, implied by the
// dataset name), so equal keys mean bit-identical results.
func (p *trainParams) cacheKey() string {
	return fmt.Sprintf("%s|%s|%g|%s|%d|%d|%g|%g|%d",
		p.req.Dataset, p.req.Objective, p.req.K, p.mode,
		p.req.SampleSize, p.req.Seed, *p.req.Granularity, p.req.MaxBonus, *p.req.RefineSteps)
}

// TrainResponse is the answer to one what-if run: the bonus vector plus
// its measured full-population effect at the requested fraction.
type TrainResponse struct {
	Dataset   string  `json:"dataset"`
	Objective string  `json:"objective"`
	K         float64 `json:"k"`
	Mode      string  `json:"mode"`
	Seed      int64   `json:"seed"`
	Polarity  string  `json:"polarity"`

	FairNames []string  `json:"fair_names"`
	Bonus     []float64 `json:"bonus"`
	Raw       []float64 `json:"raw"`
	CoreBonus []float64 `json:"core_bonus"`
	Steps     int       `json:"steps"`

	DisparityBefore []float64 `json:"disparity_before"`
	DisparityAfter  []float64 `json:"disparity_after"`
	NormBefore      float64   `json:"norm_before"`
	NormAfter       float64   `json:"norm_after"`
	NDCG            float64   `json:"ndcg"`

	ElapsedMicros int64 `json:"elapsed_us"`
	// Cached reports whether this response was served from the result
	// cache (training skipped entirely).
	Cached bool `json:"cached"`
}

// SweepPointRequest is one (bonus, k) evaluation point.
type SweepPointRequest struct {
	Bonus []float64 `json:"bonus"`
	K     float64   `json:"k"`
}

// EvaluateRequest is the body of POST /v1/evaluate: a metric sweep over
// evaluation points, answered by the prefix-sweep engine (points sharing a
// bonus vector are ranked once; every k comes from prefix aggregates).
type EvaluateRequest struct {
	Dataset string `json:"dataset"`
	// Metric names a row of the service metric registry (metrics.go):
	// "disparity", "di" (vectors + L2 norms), "ndcg" (values), "fpr"
	// (vectors + L2 norms; the dataset must carry outcomes), "exposure"
	// (per-capita vectors + DDP norms; binary fairness attributes),
	// "expratio" (vectors; binary attributes AND outcomes), or "topk"
	// (vectors; binary attributes).
	Metric string              `json:"metric"`
	Points []SweepPointRequest `json:"points"`
}

// validate checks everything that does not need the dataset; dims is the
// fairness dimensionality of the resolved dataset.
func (r EvaluateRequest) validate(dims int) error {
	if _, ok := metricByName(r.Metric); !ok {
		return fmt.Errorf("unknown metric %q (want %s)", r.Metric, metricWantList())
	}
	if len(r.Points) == 0 {
		return fmt.Errorf("no evaluation points")
	}
	if len(r.Points) > MaxSweepPoints {
		return fmt.Errorf("%d evaluation points exceed the limit of %d", len(r.Points), MaxSweepPoints)
	}
	for i, pt := range r.Points {
		if err := rank.CheckFraction(pt.K); err != nil {
			return fmt.Errorf("point %d: %v", i, err)
		}
		// A nil bonus means "the uncompensated ranking"; anything else
		// must be a full non-negative vector.
		if pt.Bonus == nil {
			continue
		}
		if len(pt.Bonus) != dims {
			return fmt.Errorf("point %d: bonus has %d dimensions, dataset has %d", i, len(pt.Bonus), dims)
		}
		for j, b := range pt.Bonus {
			if math.IsNaN(b) || math.IsInf(b, 0) || b < 0 {
				return fmt.Errorf("point %d: bonus dimension %d is %v, want finite and non-negative", i, j, b)
			}
		}
	}
	return nil
}

// EvaluateResponse carries the sweep results in point order. Vector
// metrics set Vectors and Norms ("exposure" norms are the DDP of the
// per-capita vector; every other vector metric norms with L2); scalar
// metrics ("ndcg") set Values.
type EvaluateResponse struct {
	Dataset   string      `json:"dataset"`
	Metric    string      `json:"metric"`
	FairNames []string    `json:"fair_names"`
	Vectors   [][]float64 `json:"vectors,omitempty"`
	Norms     []float64   `json:"norms,omitempty"`
	Values    []float64   `json:"values,omitempty"`
	// CachedPoints reports how many of the requested points were answered
	// from the per-point sweep cache (a cached sweep answers any subset of
	// its k-grid; only the remaining cuts are computed).
	CachedPoints int `json:"cached_points"`
}

// appendBonusSig appends the canonical signature of a bonus vector: "0"
// for nil or all-zero (both mean the uncompensated ranking), otherwise the
// exact bit pattern of every dimension. Exact bits make the sweep cache
// exact: equal signatures imply bit-identical rows.
func appendBonusSig(b []byte, bonus []float64) []byte {
	zero := true
	for _, v := range bonus {
		if v != 0 {
			zero = false
			break
		}
	}
	if zero {
		return append(b, '0')
	}
	for j, v := range bonus {
		if j > 0 {
			b = append(b, ',')
		}
		b = strconv.AppendUint(b, math.Float64bits(v), 16)
	}
	return b
}

// pointKey identifies one (dataset, metric, bonus, k) sweep row in the
// result cache.
func pointKey(dataset, metric string, pt SweepPointRequest) string {
	b := make([]byte, 0, 64)
	b = append(b, "sweep|"...)
	b = append(b, dataset...)
	b = append(b, '|')
	b = append(b, metric...)
	b = append(b, '|')
	b = appendBonusSig(b, pt.Bonus)
	b = append(b, '|')
	b = strconv.AppendUint(b, math.Float64bits(pt.K), 16)
	return string(b)
}

// requestKey identifies a whole evaluate request for coalescing: two
// requests coalesce only when dataset, metric, and every point agree
// exactly.
func (r EvaluateRequest) requestKey() string {
	b := make([]byte, 0, 64+32*len(r.Points))
	b = append(b, "eval|"...)
	b = append(b, r.Dataset...)
	b = append(b, '|')
	b = append(b, r.Metric...)
	for _, pt := range r.Points {
		b = append(b, '|')
		b = appendBonusSig(b, pt.Bonus)
		b = append(b, '@')
		b = strconv.AppendUint(b, math.Float64bits(pt.K), 16)
	}
	return string(b)
}

// MaxCounterfactualObjects bounds one /v1/counterfactual request, mirroring
// MaxSweepPoints: a request pays one ranking regardless of how many objects
// it asks about, but the response size stays bounded.
const MaxCounterfactualObjects = 4096

// MaxReportMargins bounds the ?margins= window of /v1/report on each side
// of the cutoff, so a single audit bundle cannot carry a
// population-sized margin table into the shared LRU.
const MaxReportMargins = MaxCounterfactualObjects / 2

// CounterfactualRequest is the body of POST /v1/counterfactual: for each
// listed object, the minimal score/bonus change that flips its selection
// under the bonus vector at fraction k. A nil bonus audits the
// uncompensated ranking.
type CounterfactualRequest struct {
	Dataset string    `json:"dataset"`
	Bonus   []float64 `json:"bonus"`
	K       float64   `json:"k"`
	Objects []int     `json:"objects"`
}

// validate checks everything that does not need the dataset; dims is the
// fairness dimensionality of the resolved dataset. Object-range checks
// need the population size and happen in the handler.
func (r CounterfactualRequest) validate(dims int) error {
	if err := rank.CheckFraction(r.K); err != nil {
		return err
	}
	if len(r.Objects) == 0 {
		return fmt.Errorf("no objects")
	}
	if len(r.Objects) > MaxCounterfactualObjects {
		return fmt.Errorf("%d objects exceed the limit of %d", len(r.Objects), MaxCounterfactualObjects)
	}
	if r.Bonus != nil {
		if len(r.Bonus) != dims {
			return fmt.Errorf("bonus has %d dimensions, dataset has %d", len(r.Bonus), dims)
		}
		for j, b := range r.Bonus {
			if math.IsNaN(b) || math.IsInf(b, 0) || b < 0 {
				return fmt.Errorf("bonus dimension %d is %v, want finite and non-negative", j, b)
			}
		}
	}
	return nil
}

// objectKey identifies one (dataset, bonus, k, object) counterfactual in
// the result cache; like sweep rows, counterfactuals are cached per object
// so any earlier request that covered an object answers it.
func (r CounterfactualRequest) objectKey(obj int) string {
	b := make([]byte, 0, 64)
	b = append(b, "cf|"...)
	b = append(b, r.Dataset...)
	b = append(b, '|')
	b = appendBonusSig(b, r.Bonus)
	b = append(b, '|')
	b = strconv.AppendUint(b, math.Float64bits(r.K), 16)
	b = append(b, '|')
	b = strconv.AppendInt(b, int64(obj), 10)
	return string(b)
}

// requestKey identifies a whole counterfactual request for coalescing.
func (r CounterfactualRequest) requestKey() string {
	b := make([]byte, 0, 64+8*len(r.Objects))
	b = append(b, "cfreq|"...)
	b = append(b, r.Dataset...)
	b = append(b, '|')
	b = appendBonusSig(b, r.Bonus)
	b = append(b, '@')
	b = strconv.AppendUint(b, math.Float64bits(r.K), 16)
	for _, obj := range r.Objects {
		b = append(b, '|')
		b = strconv.AppendInt(b, int64(obj), 10)
	}
	return string(b)
}

// CounterfactualResult is one object's answer: its standing relative to
// the published cutoff and the minimal deltas that flip it. Fields mirror
// core.Counterfactual.
type CounterfactualResult struct {
	Object       int       `json:"object"`
	Selected     bool      `json:"selected"`
	Rank         int       `json:"rank"`
	Effective    float64   `json:"effective"`
	Cutoff       float64   `json:"cutoff"`
	Competitor   int       `json:"competitor"`
	ScoreDelta   float64   `json:"score_delta"`
	BonusDelta   float64   `json:"bonus_delta"`
	PerAttribute []float64 `json:"per_attribute"`
	Feasible     bool      `json:"feasible"`
}

// CounterfactualResponse carries the per-object results in request order.
type CounterfactualResponse struct {
	Dataset   string                 `json:"dataset"`
	K         float64                `json:"k"`
	FairNames []string               `json:"fair_names"`
	Results   []CounterfactualResult `json:"results"`
	// CachedObjects reports how many objects were answered from the
	// per-object cache; only the rest paid for the shared ranking.
	CachedObjects int `json:"cached_objects"`
}

// reportKey identifies a built audit bundle in the result cache. The
// rendering format is deliberately absent: the cache stores the bundle,
// and each request renders its own format from it.
func reportKey(dataset string, bonus []float64, k float64, margins int, fpr, exposure bool) string {
	b := make([]byte, 0, 64)
	b = append(b, "report|"...)
	b = append(b, dataset...)
	b = append(b, '|')
	b = appendBonusSig(b, bonus)
	b = append(b, '|')
	b = strconv.AppendUint(b, math.Float64bits(k), 16)
	b = append(b, '|')
	b = strconv.AppendInt(b, int64(margins), 10)
	b = append(b, '|')
	if fpr {
		b = append(b, '1')
	} else {
		b = append(b, '0')
	}
	if exposure {
		b = append(b, 'e')
	}
	return string(b)
}

// httpError carries a status code through the coalescing layer, so every
// caller sharing a failed flight answers with the leader's status.
type httpError struct {
	status int
	msg    string
	// retryAfter, when positive, becomes a Retry-After header (seconds).
	// Set on load-shed and drain rejections: those are transient by
	// construction, and the header tells clients to back off instead of
	// hammering a saturated server.
	retryAfter int
}

func (e *httpError) Error() string { return e.msg }

// ObjectExplainResponse breaks one object's effective score into its
// published components (GET /v1/explain with ?object=).
type ObjectExplainResponse struct {
	Object       int       `json:"object"`
	BaseScore    float64   `json:"base_score"`
	BonusTotal   float64   `json:"bonus_total"`
	PerAttribute []float64 `json:"per_attribute"`
	Effective    float64   `json:"effective"`
	Selected     bool      `json:"selected"`
	Margin       float64   `json:"margin"`
}

// ExplainResponse is the transparency report as JSON: the published
// cutoff, per-group selection counts, and the objects admitted or
// displaced by the compensation.
type ExplainResponse struct {
	Dataset          string                 `json:"dataset"`
	K                float64                `json:"k"`
	Selected         int                    `json:"selected"`
	Cutoff           float64                `json:"cutoff"`
	BaseCutoff       float64                `json:"base_cutoff"`
	Bonus            []float64              `json:"bonus"`
	FairNames        []string               `json:"fair_names"`
	GroupCounts      []int                  `json:"group_counts"`
	BaseGroupCounts  []int                  `json:"base_group_counts"`
	AdmittedByBonus  []int                  `json:"admitted_by_bonus"`
	DisplacedByBonus []int                  `json:"displaced_by_bonus"`
	Summary          []string               `json:"summary"`
	Object           *ObjectExplainResponse `json:"object,omitempty"`
}

// DatasetInfo is one /v1/datasets listing entry.
type DatasetInfo struct {
	Name        string   `json:"name"`
	N           int      `json:"n"`
	ScoreNames  []string `json:"score_names"`
	FairNames   []string `json:"fair_names"`
	Polarity    string   `json:"polarity"`
	HasOutcomes bool     `json:"has_outcomes"`
	// RankStats describes the dataset's combo-run merge decomposition;
	// absent when the partition declined (too many distinct fairness
	// rows) and every request takes the full-sort path.
	RankStats *RankStatsInfo `json:"rank_stats,omitempty"`
}

// RankStatsInfo reports a dataset's combo-run decomposition — the
// pre-sorted run structure behind merge-served cold rankings.
type RankStatsInfo struct {
	// Runs is g, the number of distinct fairness-attribute combinations.
	Runs int `json:"runs"`
	// MinRunLen/MedianRunLen/MaxRunLen summarize run sizes.
	MinRunLen    int `json:"min_run_len"`
	MedianRunLen int `json:"median_run_len"`
	MaxRunLen    int `json:"max_run_len"`
	// BuildMicros is the one-time registration cost of the partition and
	// per-run pre-sort, in microseconds.
	BuildMicros int64 `json:"build_us"`
	// MergeCount and RankingCount are the evaluator's lifetime counters:
	// prefix requests answered by the g-way merge vs full-population
	// ranking passes.
	MergeCount   int64 `json:"merge_count"`
	RankingCount int64 `json:"ranking_count"`
	// BatchFlushes counts this dataset's micro-batch flushes and
	// BatchedRequests the member requests they served; their ratio is the
	// coalesce factor. Both stay zero with micro-batching disabled.
	BatchFlushes    int64 `json:"batch_flushes"`
	BatchedRequests int64 `json:"batched_requests"`
}

// HealthResponse is the /healthz body: liveness plus the handful of
// gauges the serve-smoke CI job and operators watch. Goroutines is the
// leak canary — it must return to its baseline once in-flight work
// drains.
type HealthResponse struct {
	Status        string `json:"status"`
	UptimeMillis  int64  `json:"uptime_ms"`
	Datasets      int    `json:"datasets"`
	CachedResults int    `json:"cached_results"`
	Goroutines    int    `json:"goroutines"`
	InFlight      int    `json:"in_flight"`
	ShedTotal     int64  `json:"shed_total"`
	// Micro-batching gauges: windows flushed, member requests served
	// through a batch, the largest batch so far, and the windows open
	// right now. All zero with batching disabled.
	BatchFlushes    int64 `json:"batch_flushes"`
	BatchedRequests int64 `json:"batched_requests"`
	BatchLargest    int64 `json:"batch_largest"`
	BatchWindows    int   `json:"batch_windows"`
	Draining        bool  `json:"draining"`
}

// ReadyResponse is the /readyz body. Ready means registration finished
// (MarkReady was called) and the server is not draining; load balancers
// route on it, so it flips to false at the first drain signal while
// /healthz stays "ok" for the whole shutdown.
type ReadyResponse struct {
	Ready    bool `json:"ready"`
	Draining bool `json:"draining"`
	Datasets int  `json:"datasets"`
}

// ErrorResponse is every non-2xx JSON body.
type ErrorResponse struct {
	Error string `json:"error"`
}
