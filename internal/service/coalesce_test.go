package service

import (
	"fmt"
	"reflect"
	"sync"
	"testing"
)

// TestTrainCoalescing pins the singleflight contract: N concurrent
// identical cold train requests run the pipeline exactly once and share
// the result. Run under -race in CI.
func TestTrainCoalescing(t *testing.T) {
	s, ts := newTestServer(t)
	const workers = 12
	req := TrainRequest{Dataset: "school", K: 0.07, Seed: 19}

	start := make(chan struct{})
	resps := make([]TrainResponse, workers)
	fails := make([]string, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			<-start
			code, body := postJSON(t, ts.URL+"/v1/train", req, &resps[w])
			if code != 200 {
				fails[w] = fmt.Sprintf("worker %d: %d %s", w, code, body)
			}
		}(w)
	}
	close(start)
	wg.Wait()
	for _, f := range fails {
		if f != "" {
			t.Fatal(f)
		}
	}
	if got := s.trainExecs.Load(); got != 1 {
		t.Errorf("cold pipeline executed %d times for %d identical concurrent requests, want 1", got, workers)
	}
	for w := 1; w < workers; w++ {
		if !reflect.DeepEqual(resps[w].Bonus, resps[0].Bonus) || !reflect.DeepEqual(resps[w].Raw, resps[0].Raw) {
			t.Errorf("worker %d got a different bonus vector than worker 0", w)
		}
	}
	// At most one response may be the leader's (Cached=false).
	leaders := 0
	for w := 0; w < workers; w++ {
		if !resps[w].Cached {
			leaders++
		}
	}
	if leaders > 1 {
		t.Errorf("%d responses claim to be the cold execution, want at most 1", leaders)
	}
}

// TestEvaluateCoalescing is the same contract for /v1/evaluate: identical
// concurrent cold sweeps rank once and share the rows.
func TestEvaluateCoalescing(t *testing.T) {
	s, ts := newTestServer(t)
	points := make([]SweepPointRequest, 16)
	for i := range points {
		points[i] = SweepPointRequest{Bonus: []float64{1, 2, 3, 4}, K: 0.01 + 0.02*float64(i)}
	}
	req := EvaluateRequest{Dataset: "school", Metric: "disparity", Points: points}

	const workers = 12
	start := make(chan struct{})
	resps := make([]EvaluateResponse, workers)
	fails := make([]string, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			<-start
			code, body := postJSON(t, ts.URL+"/v1/evaluate", req, &resps[w])
			if code != 200 {
				fails[w] = fmt.Sprintf("worker %d: %d %s", w, code, body)
			}
		}(w)
	}
	close(start)
	wg.Wait()
	for _, f := range fails {
		if f != "" {
			t.Fatal(f)
		}
	}
	if got := s.sweepExecs.Load(); got != 1 {
		t.Errorf("cold sweep executed %d times for %d identical concurrent requests, want 1", got, workers)
	}
	for w := 1; w < workers; w++ {
		if !reflect.DeepEqual(resps[w].Vectors, resps[0].Vectors) {
			t.Errorf("worker %d got different sweep vectors than worker 0", w)
		}
	}
}

// TestSweepCacheAnswersSubsets pins the extended LRU: once a sweep's rows
// are cached, any subset of its k-grid is answered without ranking, and a
// widened grid computes only the new cuts (with identical rows for the
// overlap).
func TestSweepCacheAnswersSubsets(t *testing.T) {
	s, ts := newTestServer(t)
	bonus := []float64{2, 1, 0.5, 3}
	grid := func(ks ...float64) []SweepPointRequest {
		pts := make([]SweepPointRequest, len(ks))
		for i, k := range ks {
			pts[i] = SweepPointRequest{Bonus: bonus, K: k}
		}
		return pts
	}

	var full EvaluateResponse
	code, body := postJSON(t, ts.URL+"/v1/evaluate",
		EvaluateRequest{Dataset: "school", Metric: "disparity", Points: grid(0.05, 0.1, 0.15, 0.2, 0.25, 0.3, 0.35, 0.4)}, &full)
	if code != 200 {
		t.Fatalf("cold sweep: %d %s", code, body)
	}
	if full.CachedPoints != 0 {
		t.Errorf("cold sweep reports %d cached points, want 0", full.CachedPoints)
	}
	if got := s.sweepExecs.Load(); got != 1 {
		t.Fatalf("cold sweep executed %d times, want 1", got)
	}

	// Any subset — here reordered, duplicated — is pure cache.
	var sub EvaluateResponse
	code, body = postJSON(t, ts.URL+"/v1/evaluate",
		EvaluateRequest{Dataset: "school", Metric: "disparity", Points: grid(0.2, 0.05, 0.2)}, &sub)
	if code != 200 {
		t.Fatalf("subset sweep: %d %s", code, body)
	}
	if sub.CachedPoints != 3 {
		t.Errorf("subset sweep reports %d cached points, want 3", sub.CachedPoints)
	}
	if got := s.sweepExecs.Load(); got != 1 {
		t.Errorf("subset sweep re-ranked (execs=%d), want pure cache", got)
	}
	if !reflect.DeepEqual(sub.Vectors[0], full.Vectors[3]) ||
		!reflect.DeepEqual(sub.Vectors[1], full.Vectors[0]) ||
		!reflect.DeepEqual(sub.Vectors[2], full.Vectors[3]) {
		t.Error("subset rows differ from the original sweep's rows")
	}

	// A widened grid computes only the new cuts; overlap rows are reused.
	var wide EvaluateResponse
	code, body = postJSON(t, ts.URL+"/v1/evaluate",
		EvaluateRequest{Dataset: "school", Metric: "disparity", Points: grid(0.05, 0.1, 0.45, 0.5)}, &wide)
	if code != 200 {
		t.Fatalf("widened sweep: %d %s", code, body)
	}
	if wide.CachedPoints != 2 {
		t.Errorf("widened sweep reports %d cached points, want 2", wide.CachedPoints)
	}
	if got := s.sweepExecs.Load(); got != 2 {
		t.Errorf("widened sweep executions = %d, want 2", got)
	}
	if !reflect.DeepEqual(wide.Vectors[0], full.Vectors[0]) || !reflect.DeepEqual(wide.Vectors[1], full.Vectors[1]) {
		t.Error("widened sweep's overlap rows differ from the original sweep's rows")
	}

	// A different bonus vector is a different sweep: cold again.
	other := grid(0.05)
	other[0].Bonus = []float64{9, 9, 9, 9}
	var cold EvaluateResponse
	code, body = postJSON(t, ts.URL+"/v1/evaluate",
		EvaluateRequest{Dataset: "school", Metric: "disparity", Points: other}, &cold)
	if code != 200 {
		t.Fatalf("other-bonus sweep: %d %s", code, body)
	}
	if cold.CachedPoints != 0 {
		t.Errorf("other-bonus sweep reports %d cached points, want 0", cold.CachedPoints)
	}
}

// TestEvaluateFPRMetric covers the new "fpr" sweep metric: it works on an
// outcome-bearing dataset and is rejected with a clear error otherwise.
func TestEvaluateFPRMetric(t *testing.T) {
	_, ts := newTestServer(t)
	points := []SweepPointRequest{{Bonus: nil, K: 0.2}, {Bonus: []float64{1, 1, 1, 1, 1, 1}, K: 0.1}}
	var resp EvaluateResponse
	code, body := postJSON(t, ts.URL+"/v1/evaluate",
		EvaluateRequest{Dataset: "compas", Metric: "fpr", Points: points}, &resp)
	if code != 200 {
		t.Fatalf("fpr sweep on compas: %d %s", code, body)
	}
	if len(resp.Vectors) != 2 || len(resp.Norms) != 2 {
		t.Fatalf("fpr sweep shape: %d vectors, %d norms", len(resp.Vectors), len(resp.Norms))
	}
	// school has no outcomes: a clean 400, mentioning outcomes.
	schoolPts := []SweepPointRequest{{Bonus: nil, K: 0.2}}
	code, body = postJSON(t, ts.URL+"/v1/evaluate",
		EvaluateRequest{Dataset: "school", Metric: "fpr", Points: schoolPts}, nil)
	if code != 400 {
		t.Fatalf("fpr sweep on school: %d %s, want 400", code, body)
	}
}

// TestZeroAndNilBonusShareSweepRows pins the canonical bonus signature:
// nil and the explicit zero vector are the same uncompensated ranking and
// share cache rows.
func TestZeroAndNilBonusShareSweepRows(t *testing.T) {
	s, ts := newTestServer(t)
	var first EvaluateResponse
	code, body := postJSON(t, ts.URL+"/v1/evaluate",
		EvaluateRequest{Dataset: "school", Metric: "ndcg", Points: []SweepPointRequest{{Bonus: nil, K: 0.1}}}, &first)
	if code != 200 {
		t.Fatalf("%d %s", code, body)
	}
	var second EvaluateResponse
	code, body = postJSON(t, ts.URL+"/v1/evaluate",
		EvaluateRequest{Dataset: "school", Metric: "ndcg", Points: []SweepPointRequest{{Bonus: []float64{0, 0, 0, 0}, K: 0.1}}}, &second)
	if code != 200 {
		t.Fatalf("%d %s", code, body)
	}
	if second.CachedPoints != 1 {
		t.Errorf("zero-vector point missed the nil-bonus cache row (cached=%d)", second.CachedPoints)
	}
	if got := s.sweepExecs.Load(); got != 1 {
		t.Errorf("sweep executions = %d, want 1", got)
	}
	if first.Values[0] != 1 || second.Values[0] != 1 {
		t.Errorf("uncompensated nDCG = %v / %v, want 1", first.Values[0], second.Values[0])
	}
}
