package service

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"testing"
	"time"

	"fairrank/internal/rank"
	"fairrank/internal/synth"
)

// resilienceServer builds a Server with tight, test-friendly resilience
// settings without starting a listener; requests go straight through
// Handler so tests can use cancelable request contexts.
func resilienceServer(t testing.TB, cfg Config) *Server {
	t.Helper()
	school, err := synth.GenerateSchool(schoolConfig())
	if err != nil {
		t.Fatal(err)
	}
	s := New(cfg)
	if err := s.Register("school", school, rank.WeightedSum{Weights: synth.SchoolScoreWeights()}, rank.Beneficial); err != nil {
		t.Fatal(err)
	}
	s.MarkReady()
	return s
}

func doRequest(h http.Handler, r *http.Request) *httptest.ResponseRecorder {
	w := httptest.NewRecorder()
	h.ServeHTTP(w, r)
	return w
}

func sweepBody(t testing.TB, points int) *strings.Reader {
	t.Helper()
	req := EvaluateRequest{Dataset: "school", Metric: "disparity"}
	for i := 0; i < points; i++ {
		// Every point gets a distinct bonus so nothing shares a ranking:
		// the sweep has real work to abandon.
		req.Points = append(req.Points, SweepPointRequest{
			Bonus: []float64{float64(i%97) / 7, float64(i%89) / 5, float64(i%83) / 3, float64(i % 79)},
			K:     0.05,
		})
	}
	raw, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	return strings.NewReader(string(raw))
}

// TestAdmissionShed pins the 429 path: with the slot table filled, a /v1
// request is shed with 429 and a Retry-After header, and freeing a slot
// reopens admission.
func TestAdmissionShed(t *testing.T) {
	s := resilienceServer(t, Config{MaxInFlight: 1, AdmitWait: -1})
	h := s.Handler()

	s.admit.slots <- struct{}{} // occupy the only slot
	r := httptest.NewRequest("GET", "/v1/explain?dataset=school&k=0.05&bonus=1,1,1,1", nil)
	w := doRequest(h, r)
	if w.Code != http.StatusTooManyRequests {
		t.Fatalf("status = %d, want 429; body %s", w.Code, w.Body)
	}
	if w.Header().Get("Retry-After") == "" {
		t.Error("429 without Retry-After")
	}
	<-s.admit.slots // free it
	if w := doRequest(h, r); w.Code != http.StatusOK {
		t.Fatalf("after freeing the slot: status = %d, body %s", w.Code, w.Body)
	}
	if got := s.admit.shed.Load(); got != 1 {
		t.Errorf("shed counter = %d, want 1", got)
	}
}

// TestAdmitWaitRidesOutShortBursts: a request arriving while the table is
// briefly full waits (up to AdmitWait) instead of shedding.
func TestAdmitWaitRidesOutShortBursts(t *testing.T) {
	s := resilienceServer(t, Config{MaxInFlight: 1, AdmitWait: 2 * time.Second})
	h := s.Handler()
	s.admit.slots <- struct{}{}
	go func() {
		time.Sleep(20 * time.Millisecond)
		<-s.admit.slots
	}()
	r := httptest.NewRequest("GET", "/v1/explain?dataset=school&k=0.05&bonus=1,1,1,1", nil)
	if w := doRequest(h, r); w.Code != http.StatusOK {
		t.Fatalf("status = %d, want 200 after the slot freed within AdmitWait; body %s", w.Code, w.Body)
	}
}

// TestDrainRejectsNewWork pins the drain contract: after StartDrain, /v1
// requests answer 503 + Retry-After, /readyz flips to 503, and /healthz
// keeps answering 200 (liveness is not readiness).
func TestDrainRejectsNewWork(t *testing.T) {
	s := resilienceServer(t, Config{})
	h := s.Handler()

	var ready ReadyResponse
	w := doRequest(h, httptest.NewRequest("GET", "/readyz", nil))
	if w.Code != http.StatusOK {
		t.Fatalf("/readyz before drain = %d", w.Code)
	}
	s.StartDrain()
	w = doRequest(h, httptest.NewRequest("GET", "/v1/datasets", nil))
	if w.Code != http.StatusOK {
		t.Errorf("/v1/datasets is unguarded and must keep answering during drain; got %d", w.Code)
	}
	w = doRequest(h, httptest.NewRequest("GET", "/v1/explain?dataset=school&k=0.05&bonus=1,1,1,1", nil))
	if w.Code != http.StatusServiceUnavailable || w.Header().Get("Retry-After") == "" {
		t.Errorf("guarded endpoint during drain = %d (Retry-After %q), want 503 with Retry-After",
			w.Code, w.Header().Get("Retry-After"))
	}
	w = doRequest(h, httptest.NewRequest("GET", "/readyz", nil))
	if w.Code != http.StatusServiceUnavailable {
		t.Errorf("/readyz during drain = %d, want 503", w.Code)
	}
	if err := json.Unmarshal(w.Body.Bytes(), &ready); err != nil {
		t.Fatal(err)
	}
	if ready.Ready || !ready.Draining {
		t.Errorf("readyz body = %+v, want ready=false draining=true", ready)
	}
	var health HealthResponse
	w = doRequest(h, httptest.NewRequest("GET", "/healthz", nil))
	if w.Code != http.StatusOK {
		t.Errorf("/healthz during drain = %d, want 200", w.Code)
	}
	if err := json.Unmarshal(w.Body.Bytes(), &health); err != nil {
		t.Fatal(err)
	}
	if !health.Draining {
		t.Error("healthz body does not report draining")
	}
}

// TestReadyzBeforeMarkReady: a server that has not finished registration
// is not ready.
func TestReadyzBeforeMarkReady(t *testing.T) {
	s := New(Config{})
	w := doRequest(s.Handler(), httptest.NewRequest("GET", "/readyz", nil))
	if w.Code != http.StatusServiceUnavailable {
		t.Fatalf("/readyz before MarkReady = %d, want 503", w.Code)
	}
	s.MarkReady()
	if w := doRequest(s.Handler(), httptest.NewRequest("GET", "/readyz", nil)); w.Code != http.StatusOK {
		t.Fatalf("/readyz after MarkReady = %d, want 200", w.Code)
	}
}

// TestPanicRecovery pins the recovery middleware: a panicking handler
// answers 500 with the JSON error contract, the panic counter moves, and
// the server keeps serving afterwards.
func TestPanicRecovery(t *testing.T) {
	s := resilienceServer(t, Config{})
	boom := s.recovered(http.HandlerFunc(func(http.ResponseWriter, *http.Request) {
		panic("kaboom")
	}))
	w := doRequest(boom, httptest.NewRequest("GET", "/v1/anything", nil))
	if w.Code != http.StatusInternalServerError {
		t.Fatalf("panicking handler answered %d, want 500", w.Code)
	}
	var er ErrorResponse
	if err := json.Unmarshal(w.Body.Bytes(), &er); err != nil || er.Error == "" {
		t.Errorf("panic response is not the JSON error contract: %q (%v)", w.Body, err)
	}
	if s.panics.Load() != 1 {
		t.Errorf("panic counter = %d, want 1", s.panics.Load())
	}
	// The real handler chain still works on the same server.
	if w := doRequest(s.Handler(), httptest.NewRequest("GET", "/healthz", nil)); w.Code != http.StatusOK {
		t.Fatalf("healthz after a recovered panic = %d", w.Code)
	}
}

// TestFlightLeaderPanicAnswersFollowers pins the panic contract through
// coalescing: when a flight leader panics, followers get a 500 (not a
// hang) and the leader's panic is converted by the recovery middleware.
func TestFlightLeaderPanicAnswersFollowers(t *testing.T) {
	var g flightGroup
	leaderStarted := make(chan struct{})
	release := make(chan struct{})
	leaderDone := make(chan struct{})

	go func() {
		defer close(leaderDone)
		defer func() { _ = recover() }() // stand-in for the middleware
		_, _, _ = g.Do(context.Background(), "k", func() (any, error) {
			close(leaderStarted)
			<-release
			panic("leader died")
		})
	}()
	<-leaderStarted

	// Grab the registered flight directly — this is exactly the handle a
	// follower parked in Do's select holds — so the waiter-release
	// assertion cannot race the leader's cleanup.
	g.mu.Lock()
	f := g.m["k"]
	g.mu.Unlock()
	if f == nil {
		t.Fatal("leader running but no flight registered")
	}

	close(release)
	<-leaderDone
	select {
	case <-f.done:
	default:
		t.Fatal("leader panic did not release waiters: flight still open")
	}
	if f.err == nil || !strings.Contains(f.err.Error(), "coalesced request failed") {
		t.Fatalf("waiters see err = %v, want coalesced-request failure", f.err)
	}
	// The dead flight is gone: a late arrival re-runs as a fresh leader.
	_, shared, err := g.Do(context.Background(), "k", func() (any, error) { return "fresh", nil })
	if shared || err != nil {
		t.Fatalf("late arrival after leader panic = (shared=%v, err=%v), want fresh leader", shared, err)
	}
}

// TestClientDisconnectMidSweep is the tentpole's end-to-end check: a
// client abandons a large distinct-bonus sweep mid-computation; the
// handler returns 499 promptly, and the per-point cache is not poisoned —
// the identical re-request recomputes from scratch (zero cached points)
// and succeeds.
func TestClientDisconnectMidSweep(t *testing.T) {
	school, err := synth.GenerateSchool(func() synth.SchoolConfig {
		cfg := synth.DefaultSchoolConfig()
		cfg.N = 8000
		cfg.Seed = 42
		return cfg
	}())
	if err != nil {
		t.Fatal(err)
	}
	s := New(Config{})
	if err := s.Register("school", school, rank.WeightedSum{Weights: synth.SchoolScoreWeights()}, rank.Beneficial); err != nil {
		t.Fatal(err)
	}
	s.MarkReady()
	h := s.Handler()

	ctx, cancel := context.WithCancel(context.Background())
	r := httptest.NewRequest("POST", "/v1/evaluate", sweepBody(t, 512)).WithContext(ctx)
	done := make(chan *httptest.ResponseRecorder, 1)
	go func() { done <- doRequest(h, r) }()

	// Cancel once the cold sweep has demonstrably started computing, so
	// the abandonment is mid-flight, not before or after.
	for i := 0; s.sweepExecs.Load() == 0; i++ {
		if i > 10_000 {
			t.Fatal("sweep never started")
		}
		time.Sleep(100 * time.Microsecond)
	}
	cancel()
	var w *httptest.ResponseRecorder
	select {
	case w = <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("handler did not return after client disconnect")
	}
	if w.Code == http.StatusOK {
		t.Skip("sweep finished before the cancellation landed; nothing to assert")
	}
	if w.Code != statusClientClosedRequest {
		t.Fatalf("abandoned sweep answered %d (%s), want 499", w.Code, w.Body)
	}
	if got := s.cache.len(); got != 0 {
		t.Fatalf("canceled sweep poisoned the cache with %d entries", got)
	}

	// The identical request must now recompute everything and succeed.
	w = doRequest(h, httptest.NewRequest("POST", "/v1/evaluate", sweepBody(t, 512)))
	if w.Code != http.StatusOK {
		t.Fatalf("re-request after disconnect = %d (%s)", w.Code, w.Body)
	}
	var resp EvaluateResponse
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.CachedPoints != 0 {
		t.Errorf("re-request found %d cached points from the canceled attempt", resp.CachedPoints)
	}
	if len(resp.Vectors) != 512 {
		t.Errorf("re-request returned %d vectors, want 512", len(resp.Vectors))
	}
}

// TestReportPreCanceledNotCached: a report request whose context is
// already dead answers 499 and caches nothing; the retry rebuilds and
// succeeds.
func TestReportPreCanceledNotCached(t *testing.T) {
	s := resilienceServer(t, Config{})
	h := s.Handler()
	const url = "/v1/report?dataset=school&k=0.05&bonus=1,11.5,12,12"

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	w := doRequest(h, httptest.NewRequest("GET", url, nil).WithContext(ctx))
	if w.Code != statusClientClosedRequest {
		t.Fatalf("pre-canceled report = %d (%s), want 499", w.Code, w.Body)
	}
	if got := s.cache.len(); got != 0 {
		t.Fatalf("canceled report build left %d cache entries", got)
	}
	w = doRequest(h, httptest.NewRequest("GET", url, nil))
	if w.Code != http.StatusOK {
		t.Fatalf("report retry = %d (%s)", w.Code, w.Body)
	}
	if s.reportExecs.Load() < 1 {
		t.Error("retry did not run the cold build")
	}
}

// TestTrainSheds503WhenTrainersExhausted: with every live-trainer token
// taken, a train request answers 503 + Retry-After end to end.
func TestTrainSheds503WhenTrainersExhausted(t *testing.T) {
	s := resilienceServer(t, Config{TrainerPoolSize: 1})
	h := s.Handler()
	e, ok := s.reg.Get("school")
	if !ok {
		t.Fatal("school not registered")
	}
	for i := 0; i < cap(e.live); i++ { // exhaust both live tokens
		e.live <- struct{}{}
	}
	body := `{"dataset":"school","k":0.05}`
	w := doRequest(h, httptest.NewRequest("POST", "/v1/train", strings.NewReader(body)))
	if w.Code != http.StatusServiceUnavailable {
		t.Fatalf("train with exhausted trainers = %d (%s), want 503", w.Code, w.Body)
	}
	if w.Header().Get("Retry-After") == "" {
		t.Error("503 without Retry-After")
	}
	for i := 0; i < cap(e.live); i++ {
		<-e.live
	}
	w = doRequest(h, httptest.NewRequest("POST", "/v1/train", strings.NewReader(body)))
	if w.Code != http.StatusOK {
		t.Fatalf("train after freeing trainers = %d (%s)", w.Code, w.Body)
	}
}

// TestDeadlineMapsTo504: an endpoint deadline that cannot possibly be met
// answers 504 — the request's own deadline, not a coalescing artifact.
func TestDeadlineMapsTo504(t *testing.T) {
	s := resilienceServer(t, Config{Timeouts: Timeouts{Evaluate: time.Nanosecond}})
	w := doRequest(s.Handler(), httptest.NewRequest("POST", "/v1/evaluate", sweepBody(t, 8)))
	if w.Code != http.StatusGatewayTimeout {
		t.Fatalf("hopeless deadline answered %d (%s), want 504", w.Code, w.Body)
	}
}

// TestGoroutineBaseline pins the no-leak property: after a burst of
// completed, canceled, and shed requests, the goroutine count settles
// back to its pre-burst baseline.
func TestGoroutineBaseline(t *testing.T) {
	s := resilienceServer(t, Config{MaxInFlight: 4, AdmitWait: time.Millisecond})
	h := s.Handler()

	runtime.GC()
	baseline := runtime.NumGoroutine()

	for i := 0; i < 20; i++ {
		ctx, cancel := context.WithCancel(context.Background())
		r := httptest.NewRequest("POST", "/v1/evaluate", sweepBody(t, 64)).WithContext(ctx)
		done := make(chan struct{})
		go func() { doRequest(h, r); close(done) }()
		if i%2 == 0 {
			cancel()
		}
		<-done
		cancel()
		doRequest(h, httptest.NewRequest("GET", "/v1/explain?dataset=school&k=0.05&bonus=1,1,1,1", nil))
	}

	deadline := time.Now().Add(10 * time.Second)
	for {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= baseline {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines did not settle: baseline %d, now %d", baseline, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}
}
