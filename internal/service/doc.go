// Package service implements fairrankd: an HTTP JSON layer that serves
// what-if DCA training, evaluation sweeps, transparency reports,
// counterfactual explanations, and audit bundles over a registry of
// in-memory datasets.
//
// The paper's efficiency argument — sampled DCA is cheap enough for
// interactive what-if iteration — is realized here as a request/response
// loop: a policy maker posts an objective, a selection fraction, and a
// granularity, and gets a bonus vector plus its measured effect back in
// milliseconds. The layer mirrors the deployment framing of exposure-style
// fair ranking services, where the fairness intervention must answer per
// request, not per batch.
//
// Concurrency model:
//
//   - Each registered dataset owns one shared core.Evaluator (safe for
//     concurrent use; its sweeps already fan over the engine worker pool)
//     and a bounded pool of core.Trainers (a Trainer owns a workspace and
//     is single-goroutine; the pool hands one to each in-flight train
//     request, cloning the prototype — which shares the precomputed base
//     scores — when the pool runs dry).
//   - Train results are cached in an LRU keyed by the normalized request,
//     so repeated what-if queries cost a map lookup. Training is
//     deterministic given (dataset, objective, options, seed), which makes
//     the cache exact, not heuristic.
//   - Evaluate sweeps are cached per point: each (dataset, metric, bonus,
//     k) row is its own LRU entry, so a cached sweep answers any subset of
//     its k-grid and a widened grid only computes the new cuts — on one
//     ranking, through the core prefix-sweep engine.
//   - Counterfactuals are cached per object — each (dataset, bonus, k,
//     object) answer is its own LRU entry — and audit bundles per
//     (dataset, bonus, k, margins, fpr) build, independent of the
//     rendering format: one build serves JSON, CSV, and Markdown.
//   - Concurrent identical cold requests (train, evaluate,
//     counterfactual, report) are coalesced: one leader runs the
//     pipeline, the rest share its result.
//
// Handlers:
//
//	POST /v1/train           what-if DCA run (objective, k, granularity, seed…)
//	POST /v1/evaluate        disparity/nDCG/disparate-impact/FPR sweep over points
//	POST /v1/counterfactual  per-object minimal flip deltas (cached per object)
//	GET  /v1/explain         transparency report for a bonus vector
//	GET  /v1/report          versioned audit bundle (JSON/CSV/Markdown)
//	GET  /v1/datasets        registry listing
//	GET  /healthz            liveness + registry size
package service
