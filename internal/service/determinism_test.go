package service

import (
	"encoding/json"
	"math/rand"
	"net/http/httptest"
	"testing"

	"fairrank/internal/rank"
	"fairrank/internal/synth"
)

// These tests pin the order-independence of the four scatter/gather
// loops in handlers.go (runEvaluate and runCounterfactual): the
// `missing` gather lists are index-ordered []int slices — NOT maps, so
// Go's randomized map iteration order cannot reach them — and the
// response must be invariant under every way the cache could have
// partitioned the batch. Each trial pre-warms a random subset of the
// request in random order (randomizing both the contents and the
// batching of `missing`) and asserts the final response is
// byte-identical to the cold one modulo the cache counters. If a
// future change routes the gather through a map or makes row values
// depend on batch composition, these trials fail.

// newSchoolServer registers only the school cohort: the trials below
// create many servers, and one dataset keeps them cheap.
func newSchoolServer(t *testing.T) *httptest.Server {
	t.Helper()
	school, err := synth.GenerateSchool(schoolConfig())
	if err != nil {
		t.Fatal(err)
	}
	s := New(Config{})
	if err := s.Register("school", school, rank.WeightedSum{Weights: synth.SchoolScoreWeights()}, rank.Beneficial); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return ts
}

// canonical re-marshals a response with its cache counter zeroed, so
// cold and warmed responses compare byte-for-byte.
func canonical(t *testing.T, v any) string {
	t.Helper()
	raw, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return string(raw)
}

func TestEvaluateGatherOrderIndependent(t *testing.T) {
	points := []SweepPointRequest{
		{Bonus: []float64{1, 2, 3, 4}, K: 0.05},
		{Bonus: []float64{1, 2, 3, 4}, K: 0.1},
		{Bonus: []float64{1, 2, 3, 4}, K: 0.2},
		{Bonus: []float64{2, 1, 0.5, 3}, K: 0.05},
		{Bonus: []float64{2, 1, 0.5, 3}, K: 0.15},
		{Bonus: []float64{0, 0, 0, 0}, K: 0.1},
		{Bonus: []float64{4, 4, 4, 4}, K: 0.25},
		{Bonus: []float64{1, 0, 0, 2}, K: 0.3},
	}
	full := EvaluateRequest{Dataset: "school", Metric: "disparity", Points: points}

	cold := func() string {
		ts := newSchoolServer(t)
		var resp EvaluateResponse
		if code, body := postJSON(t, ts.URL+"/v1/evaluate", full, &resp); code != 200 {
			t.Fatalf("cold evaluate: %d %s", code, body)
		}
		if resp.CachedPoints != 0 {
			t.Fatalf("cold evaluate reports %d cached points", resp.CachedPoints)
		}
		resp.CachedPoints = 0
		return canonical(t, resp)
	}()

	for trial := 0; trial < 4; trial++ {
		rng := rand.New(rand.NewSource(int64(1000 + trial)))
		ts := newSchoolServer(t)
		// Pre-warm a random subset in random order, in random batch
		// sizes: the full request's `missing` list then holds an
		// arbitrary subset of the points.
		perm := rng.Perm(len(points))
		warm := perm[:rng.Intn(len(points)+1)]
		for len(warm) > 0 {
			n := 1 + rng.Intn(len(warm))
			batch := make([]SweepPointRequest, 0, n)
			for _, i := range warm[:n] {
				batch = append(batch, points[i])
			}
			warm = warm[n:]
			if code, body := postJSON(t, ts.URL+"/v1/evaluate",
				EvaluateRequest{Dataset: "school", Metric: "disparity", Points: batch}, nil); code != 200 {
				t.Fatalf("trial %d warmup: %d %s", trial, code, body)
			}
		}
		var resp EvaluateResponse
		if code, body := postJSON(t, ts.URL+"/v1/evaluate", full, &resp); code != 200 {
			t.Fatalf("trial %d: %d %s", trial, code, body)
		}
		resp.CachedPoints = 0
		if got := canonical(t, resp); got != cold {
			t.Errorf("trial %d: response depends on cache state\ncold: %s\ngot:  %s", trial, cold, got)
		}
	}
}

func TestCounterfactualGatherOrderIndependent(t *testing.T) {
	objects := []int{3, 17, 42, 111, 256, 777, 1234, 2400}
	bonus := []float64{1.5, 0.5, 2, 1}
	full := CounterfactualRequest{Dataset: "school", Bonus: bonus, K: 0.1, Objects: objects}

	cold := func() string {
		ts := newSchoolServer(t)
		var resp CounterfactualResponse
		if code, body := postJSON(t, ts.URL+"/v1/counterfactual", full, &resp); code != 200 {
			t.Fatalf("cold counterfactual: %d %s", code, body)
		}
		if resp.CachedObjects != 0 {
			t.Fatalf("cold counterfactual reports %d cached objects", resp.CachedObjects)
		}
		resp.CachedObjects = 0
		return canonical(t, resp)
	}()

	for trial := 0; trial < 4; trial++ {
		rng := rand.New(rand.NewSource(int64(2000 + trial)))
		ts := newSchoolServer(t)
		perm := rng.Perm(len(objects))
		warm := perm[:rng.Intn(len(objects)+1)]
		for len(warm) > 0 {
			n := 1 + rng.Intn(len(warm))
			batch := make([]int, 0, n)
			for _, i := range warm[:n] {
				batch = append(batch, objects[i])
			}
			warm = warm[n:]
			if code, body := postJSON(t, ts.URL+"/v1/counterfactual",
				CounterfactualRequest{Dataset: "school", Bonus: bonus, K: 0.1, Objects: batch}, nil); code != 200 {
				t.Fatalf("trial %d warmup: %d %s", trial, code, body)
			}
		}
		var resp CounterfactualResponse
		if code, body := postJSON(t, ts.URL+"/v1/counterfactual", full, &resp); code != 200 {
			t.Fatalf("trial %d: %d %s", trial, code, body)
		}
		resp.CachedObjects = 0
		if got := canonical(t, resp); got != cold {
			t.Errorf("trial %d: response depends on cache state\ncold: %s\ngot:  %s", trial, cold, got)
		}
	}
}
