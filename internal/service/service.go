package service

import (
	"fmt"
	"net/http"
	"runtime"
	"sync/atomic"
	"time"

	"fairrank/internal/dataset"
	"fairrank/internal/rank"
)

// DefaultCacheSize is the default capacity of the train-result LRU.
const DefaultCacheSize = 1024

// Config parameterizes a Server. The zero value is usable: defaults are
// applied in New.
type Config struct {
	// CacheSize is the capacity of the train-result LRU; 0 means
	// DefaultCacheSize, negative disables caching.
	CacheSize int
	// TrainerPoolSize caps the idle trainers retained per dataset; 0 means
	// GOMAXPROCS. In-flight requests beyond the cap still get a trainer
	// (cloned on demand); only the retained idle set is bounded.
	TrainerPoolSize int
}

// Server is the HTTP service state: the dataset registry, the result
// cache, and the start time for health reporting. Create one with New,
// Register datasets, then mount Handler.
type Server struct {
	reg   *Registry
	cache *lruCache
	start time.Time

	// flights coalesces concurrent identical cold requests (train and
	// evaluate) into one pipeline execution.
	flights flightGroup

	// Execution counters observed by tests: how many times the cold train
	// pipeline, the cold sweep computation, the cold counterfactual batch,
	// and the cold audit-bundle build actually ran (coalesced and cached
	// requests don't count).
	trainExecs  atomic.Int64
	sweepExecs  atomic.Int64
	cfExecs     atomic.Int64
	reportExecs atomic.Int64
}

// New returns a Server with no datasets registered.
func New(cfg Config) *Server {
	size := cfg.CacheSize
	if size == 0 {
		size = DefaultCacheSize
	}
	pool := cfg.TrainerPoolSize
	if pool <= 0 {
		pool = runtime.GOMAXPROCS(0)
	}
	return &Server{
		reg:   NewRegistry(pool),
		cache: newLRU(size),
		start: time.Now(),
	}
}

// Register adds a dataset to the server under name. The polarity decides
// both the training direction and how bonus points enter evaluation. It
// fails on an empty or duplicate name and on datasets the trainer would
// reject (empty population, no fairness attributes).
func (s *Server) Register(name string, d *dataset.Dataset, scorer rank.Scorer, pol rank.Polarity) error {
	if d.N() == 0 {
		return fmt.Errorf("service: dataset %q is empty", name)
	}
	if d.NumFair() == 0 {
		return fmt.Errorf("service: dataset %q has no fairness attributes", name)
	}
	return s.reg.Register(name, d, scorer, pol)
}

// RankStats reports the combo-run merge statistics of the shared
// evaluator registered under name: run count g, the run-length spread,
// and the one-time partition + pre-sort cost. ok is false when the
// dataset is unknown or its evaluator declined the partition (too many
// distinct fairness combinations) and serves requests off the full-sort
// path instead.
func (s *Server) RankStats(name string) (rank.RunStats, bool) {
	e, ok := s.reg.Get(name)
	if !ok {
		return rank.RunStats{}, false
	}
	return e.eval.RunStats()
}

// Handler returns the route table. Method mismatches get 405 from the mux
// method patterns; everything under /v1 answers JSON.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/train", s.handleTrain)
	mux.HandleFunc("POST /v1/evaluate", s.handleEvaluate)
	mux.HandleFunc("POST /v1/counterfactual", s.handleCounterfactual)
	mux.HandleFunc("GET /v1/explain", s.handleExplain)
	mux.HandleFunc("GET /v1/report", s.handleReport)
	mux.HandleFunc("GET /v1/datasets", s.handleDatasets)
	mux.HandleFunc("GET /healthz", s.handleHealth)
	return mux
}
