// Package service implements fairrankd: an HTTP JSON layer that serves
// what-if DCA training, evaluation sweeps, and transparency reports over a
// registry of in-memory datasets.
//
// The paper's efficiency argument — sampled DCA is cheap enough for
// interactive what-if iteration — is realized here as a request/response
// loop: a policy maker posts an objective, a selection fraction, and a
// granularity, and gets a bonus vector plus its measured effect back in
// milliseconds. The layer mirrors the deployment framing of exposure-style
// fair ranking services, where the fairness intervention must answer per
// request, not per batch.
//
// Concurrency model:
//
//   - Each registered dataset owns one shared core.Evaluator (safe for
//     concurrent use; its sweeps already fan over the engine worker pool)
//     and a bounded pool of core.Trainers (a Trainer owns a workspace and
//     is single-goroutine; the pool hands one to each in-flight train
//     request, cloning the prototype — which shares the precomputed base
//     scores — when the pool runs dry).
//   - Train results are cached in an LRU keyed by the normalized request,
//     so repeated what-if queries cost a map lookup. Training is
//     deterministic given (dataset, objective, options, seed), which makes
//     the cache exact, not heuristic.
//   - Evaluate sweeps are cached per point: each (dataset, metric, bonus,
//     k) row is its own LRU entry, so a cached sweep answers any subset of
//     its k-grid and a widened grid only computes the new cuts — on one
//     ranking, through the core prefix-sweep engine.
//   - Concurrent identical cold requests (train and evaluate) are
//     coalesced: one leader runs the pipeline, the rest share its result.
//
// Handlers:
//
//	POST /v1/train     what-if DCA run (objective, k, granularity, seed…)
//	POST /v1/evaluate  disparity/nDCG/disparate-impact sweep over points
//	GET  /v1/explain   transparency report for a bonus vector
//	GET  /v1/datasets  registry listing
//	GET  /healthz      liveness + registry size
package service

import (
	"fmt"
	"net/http"
	"runtime"
	"sync/atomic"
	"time"

	"fairrank/internal/dataset"
	"fairrank/internal/rank"
)

// DefaultCacheSize is the default capacity of the train-result LRU.
const DefaultCacheSize = 1024

// Config parameterizes a Server. The zero value is usable: defaults are
// applied in New.
type Config struct {
	// CacheSize is the capacity of the train-result LRU; 0 means
	// DefaultCacheSize, negative disables caching.
	CacheSize int
	// TrainerPoolSize caps the idle trainers retained per dataset; 0 means
	// GOMAXPROCS. In-flight requests beyond the cap still get a trainer
	// (cloned on demand); only the retained idle set is bounded.
	TrainerPoolSize int
}

// Server is the HTTP service state: the dataset registry, the result
// cache, and the start time for health reporting. Create one with New,
// Register datasets, then mount Handler.
type Server struct {
	reg   *Registry
	cache *lruCache
	start time.Time

	// flights coalesces concurrent identical cold requests (train and
	// evaluate) into one pipeline execution.
	flights flightGroup

	// Execution counters observed by tests: how many times the cold train
	// pipeline and the cold sweep computation actually ran (coalesced and
	// cached requests don't count).
	trainExecs atomic.Int64
	sweepExecs atomic.Int64
}

// New returns a Server with no datasets registered.
func New(cfg Config) *Server {
	size := cfg.CacheSize
	if size == 0 {
		size = DefaultCacheSize
	}
	pool := cfg.TrainerPoolSize
	if pool <= 0 {
		pool = runtime.GOMAXPROCS(0)
	}
	return &Server{
		reg:   NewRegistry(pool),
		cache: newLRU(size),
		start: time.Now(),
	}
}

// Register adds a dataset to the server under name. The polarity decides
// both the training direction and how bonus points enter evaluation. It
// fails on an empty or duplicate name and on datasets the trainer would
// reject (empty population, no fairness attributes).
func (s *Server) Register(name string, d *dataset.Dataset, scorer rank.Scorer, pol rank.Polarity) error {
	if d.N() == 0 {
		return fmt.Errorf("service: dataset %q is empty", name)
	}
	if d.NumFair() == 0 {
		return fmt.Errorf("service: dataset %q has no fairness attributes", name)
	}
	return s.reg.Register(name, d, scorer, pol)
}

// Handler returns the route table. Method mismatches get 405 from the mux
// method patterns; everything under /v1 answers JSON.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/train", s.handleTrain)
	mux.HandleFunc("POST /v1/evaluate", s.handleEvaluate)
	mux.HandleFunc("GET /v1/explain", s.handleExplain)
	mux.HandleFunc("GET /v1/datasets", s.handleDatasets)
	mux.HandleFunc("GET /healthz", s.handleHealth)
	return mux
}
