package service

import (
	"context"
	"fmt"
	"net/http"
	"runtime"
	"sync/atomic"
	"time"

	"fairrank/internal/dataset"
	"fairrank/internal/rank"
)

// DefaultCacheSize is the default capacity of the train-result LRU.
const DefaultCacheSize = 1024

// Timeouts carries the per-endpoint request deadlines. A zero field means
// no deadline for that endpoint: the request runs until it finishes or the
// client disconnects (cancellation still propagates through the engine
// either way). fairrankd sets all five from flags.
type Timeouts struct {
	Train          time.Duration
	Evaluate       time.Duration
	Counterfactual time.Duration
	Report         time.Duration
	Explain        time.Duration
}

// Config parameterizes a Server. The zero value is usable: defaults are
// applied in New.
type Config struct {
	// CacheSize is the capacity of the train-result LRU; 0 means
	// DefaultCacheSize, negative disables caching.
	CacheSize int
	// TrainerPoolSize caps the idle trainers retained per dataset; 0 means
	// GOMAXPROCS. Live trainers (in-flight requests) are bounded at twice
	// this; beyond that, train requests are shed with 503.
	TrainerPoolSize int
	// MaxInFlight caps concurrently admitted /v1 requests; 0 means
	// DefaultMaxInFlight, negative disables admission control.
	MaxInFlight int
	// AdmitWait is how long an over-limit request queues for an admission
	// slot before being shed with 429; 0 means DefaultAdmitWait, negative
	// means shed immediately.
	AdmitWait time.Duration
	// BatchSize is the micro-batch size threshold: once this many
	// concurrent same-(dataset, bonus) requests have joined a window, the
	// batch flushes immediately. Zero leaves micro-batching disabled
	// unless BatchMaxWait is set (then DefaultBatchSize applies).
	BatchSize int
	// BatchMaxWait is the micro-batch window: the longest a request waits
	// for companions before its batch flushes regardless of size. Zero
	// leaves micro-batching disabled unless BatchSize is set (then
	// DefaultBatchWait applies).
	BatchMaxWait time.Duration
	// Timeouts are the per-endpoint deadlines; zero fields mean none.
	Timeouts Timeouts
}

// Server is the HTTP service state: the dataset registry, the result
// cache, the admission controller, and the start time for health
// reporting. Create one with New, Register datasets, call MarkReady, then
// mount Handler.
type Server struct {
	cfg   Config
	reg   *Registry
	cache *lruCache
	start time.Time

	// admit bounds in-flight /v1 requests; nil when admission control is
	// disabled (MaxInFlight < 0).
	admit *admission

	// ready flips once at startup (MarkReady, after registration);
	// draining flips once at shutdown (StartDrain). /readyz reports both;
	// the guard rejects new work with 503 while draining so a rolling
	// restart sheds cleanly even on kept-alive connections.
	ready    atomic.Bool
	draining atomic.Bool

	// panics counts handler panics converted to 500s by the recovery
	// middleware — a nonzero value means a bug survived to production,
	// but the process did not die for it.
	panics atomic.Int64

	// flights coalesces concurrent identical cold requests (train and
	// evaluate) into one pipeline execution.
	flights flightGroup

	// batch coalesces concurrent DISTINCT evaluate/counterfactual/report
	// requests that share a (dataset, bonus) pair into one core pass; nil
	// when micro-batching is disabled (neither BatchSize nor BatchMaxWait
	// set).
	batch *batcher

	// Execution counters observed by tests: how many times the cold train
	// pipeline, the cold sweep computation, the cold counterfactual batch,
	// and the cold audit-bundle build actually ran (coalesced and cached
	// requests don't count).
	trainExecs  atomic.Int64
	sweepExecs  atomic.Int64
	cfExecs     atomic.Int64
	reportExecs atomic.Int64
}

// New returns a Server with no datasets registered.
func New(cfg Config) *Server {
	size := cfg.CacheSize
	if size == 0 {
		size = DefaultCacheSize
	}
	pool := cfg.TrainerPoolSize
	if pool <= 0 {
		pool = runtime.GOMAXPROCS(0)
	}
	s := &Server{
		cfg:   cfg,
		reg:   NewRegistry(pool),
		cache: newLRU(size),
		start: time.Now(),
	}
	if cfg.MaxInFlight >= 0 {
		max := cfg.MaxInFlight
		if max == 0 {
			max = DefaultMaxInFlight
		}
		wait := cfg.AdmitWait
		if wait == 0 {
			wait = DefaultAdmitWait
		}
		s.admit = newAdmission(max, wait)
	}
	if cfg.BatchSize > 0 || cfg.BatchMaxWait > 0 {
		bs := cfg.BatchSize
		if bs <= 0 {
			bs = DefaultBatchSize
		}
		bw := cfg.BatchMaxWait
		if bw <= 0 {
			bw = DefaultBatchWait
		}
		s.batch = newBatcher(bs, bw, func() { s.panics.Add(1) })
	}
	return s
}

// Register adds a dataset to the server under name. The polarity decides
// both the training direction and how bonus points enter evaluation. It
// fails on an empty or duplicate name and on datasets the trainer would
// reject (empty population, no fairness attributes).
func (s *Server) Register(name string, d *dataset.Dataset, scorer rank.Scorer, pol rank.Polarity) error {
	if d.N() == 0 {
		return fmt.Errorf("service: dataset %q is empty", name)
	}
	if d.NumFair() == 0 {
		return fmt.Errorf("service: dataset %q has no fairness attributes", name)
	}
	return s.reg.Register(name, d, scorer, pol)
}

// MarkReady declares registration complete: /readyz starts answering 200.
// Call it once, after the last Register.
func (s *Server) MarkReady() { s.ready.Store(true) }

// StartDrain begins a graceful shutdown: /readyz flips to 503 so load
// balancers stop routing here, and the guard rejects new /v1 work with
// 503 + Retry-After while requests already admitted run to completion.
// Pair it with http.Server.Shutdown, which waits for those in-flight
// requests.
func (s *Server) StartDrain() { s.draining.Store(true) }

// Draining reports whether StartDrain has been called.
func (s *Server) Draining() bool { return s.draining.Load() }

// RankStats reports the combo-run merge statistics of the shared
// evaluator registered under name: run count g, the run-length spread,
// and the one-time partition + pre-sort cost. ok is false when the
// dataset is unknown or its evaluator declined the partition (too many
// distinct fairness combinations) and serves requests off the full-sort
// path instead.
func (s *Server) RankStats(name string) (rank.RunStats, bool) {
	e, ok := s.reg.Get(name)
	if !ok {
		return rank.RunStats{}, false
	}
	return e.eval.RunStats()
}

// guard is the per-endpoint resilience chain, outermost first: drain
// check (503 + Retry-After), admission (429 after AdmitWait), then the
// endpoint deadline. Handlers behind it see a context that dies when the
// client disconnects, the deadline passes, or the server shuts down —
// and the engine's cancellation checkpoints turn that into a freed
// worker within one checkpoint interval.
func (s *Server) guard(timeout time.Duration, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if s.draining.Load() {
			writeHTTPError(w, r, errDraining)
			return
		}
		if s.admit != nil {
			if err := s.admit.acquire(r.Context()); err != nil {
				writeHTTPError(w, r, err)
				return
			}
			defer s.admit.release()
		}
		if timeout > 0 {
			ctx, cancel := context.WithTimeout(r.Context(), timeout)
			defer cancel()
			r = r.WithContext(ctx)
		}
		h(w, r)
	}
}

// errDraining answers requests that arrive after StartDrain.
var errDraining = &httpError{
	status:     http.StatusServiceUnavailable,
	msg:        "server is draining",
	retryAfter: 1,
}

// recovered wraps the whole route table: a panicking handler answers 500
// and the process stays up. net/http would also swallow the panic, but
// only after killing that connection without a response; converting it
// here keeps the JSON error contract and feeds the panic counter.
func (s *Server) recovered(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			v := recover()
			if v == nil {
				return
			}
			if v == http.ErrAbortHandler { //nolint:errorlint // sentinel, by contract
				panic(v)
			}
			s.panics.Add(1)
			// Best effort: if the handler already started its response the
			// status line is out and this write is dropped by net/http.
			writeError(w, http.StatusInternalServerError, "internal error")
		}()
		next.ServeHTTP(w, r)
	})
}

// Handler returns the route table. Method mismatches get 405 from the mux
// method patterns; everything under /v1 answers JSON. The /v1 endpoints
// sit behind guard (drain → admission → deadline); the health probes
// never do — a saturated or draining server must still answer them.
func (s *Server) Handler() http.Handler {
	t := s.cfg.Timeouts
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/train", s.guard(t.Train, s.handleTrain))
	mux.HandleFunc("POST /v1/evaluate", s.guard(t.Evaluate, s.handleEvaluate))
	mux.HandleFunc("POST /v1/counterfactual", s.guard(t.Counterfactual, s.handleCounterfactual))
	mux.HandleFunc("GET /v1/explain", s.guard(t.Explain, s.handleExplain))
	mux.HandleFunc("GET /v1/report", s.guard(t.Report, s.handleReport))
	mux.HandleFunc("GET /v1/datasets", s.handleDatasets)
	mux.HandleFunc("GET /healthz", s.handleHealth)
	mux.HandleFunc("GET /readyz", s.handleReady)
	return s.recovered(mux)
}
