package service

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"fairrank/internal/rank"
	"fairrank/internal/synth"
)

// newDiffServer builds the standard two-cohort registry under an
// arbitrary config — the batching-equivalence suites run the same
// request sets against a batched and a plain server built here.
func newDiffServer(t testing.TB, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	school, err := synth.GenerateSchool(schoolConfig())
	if err != nil {
		t.Fatal(err)
	}
	compasCfg := synth.DefaultCompasConfig()
	compasCfg.N = testCohortN
	compasCfg.Seed = 7
	compas, err := synth.GenerateCompas(compasCfg)
	if err != nil {
		t.Fatal(err)
	}
	s := New(cfg)
	if err := s.Register("school", school, rank.WeightedSum{Weights: synth.SchoolScoreWeights()}, rank.Beneficial); err != nil {
		t.Fatal(err)
	}
	if err := s.Register("compas", compas, rank.WeightedSum{Weights: synth.CompasScoreWeights()}, rank.Adverse); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

// diffReq is one storm request, replayable against any server: a POST
// with a pre-marshaled JSON body, or a GET when body is nil.
type diffReq struct {
	path string
	body []byte
}

type diffResult struct {
	code int
	body string
	err  error
}

// do replays the request against base; goroutine-safe (no testing.T).
func (r diffReq) do(base string) diffResult {
	var resp *http.Response
	var err error
	if r.body != nil {
		resp, err = http.Post(base+r.path, "application/json", bytes.NewReader(r.body))
	} else {
		resp, err = http.Get(base + r.path)
	}
	if err != nil {
		return diffResult{err: err}
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return diffResult{err: err}
	}
	return diffResult{code: resp.StatusCode, body: string(raw)}
}

// runStorm fires every request concurrently behind a start barrier and
// returns the results in request order.
func runStorm(reqs []diffReq, base string) []diffResult {
	results := make([]diffResult, len(reqs))
	start := make(chan struct{})
	var wg sync.WaitGroup
	for i := range reqs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-start
			results[i] = reqs[i].do(base)
		}(i)
	}
	close(start)
	wg.Wait()
	return results
}

// passCount is the dataset's total ranked passes (full or merged).
func passCount(t testing.TB, s *Server, name string) int64 {
	t.Helper()
	e, ok := s.reg.Get(name)
	if !ok {
		t.Fatalf("dataset %q not registered", name)
	}
	return e.eval.RankingCount() + e.eval.MergeCount()
}

func mustMarshal(t testing.TB, v any) []byte {
	t.Helper()
	raw, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return raw
}

// diffGroup is one (dataset, bonus) sharing unit of the storm.
type diffGroup struct {
	dataset string
	bonus   []float64
	// full marks a dataset with outcomes AND all-binary fairness
	// attributes, so fpr and the exposure family are legal sweeps.
	full bool
}

var diffGroups = []diffGroup{
	{"school", []float64{1, 2, 3, 4}, false},
	{"school", []float64{2, 10.5, 9, 12}, false},
	{"school", []float64{0.5, 0.25, 7, 1}, false},
	{"compas", []float64{1, 1, 1, 1, 1, 1}, true},
	{"compas", []float64{3, 0, 1.5, 2, 0, 4}, true},
}

// diffStormSize is requests per group; the batched server's BatchSize is
// set to exactly this so every full group flushes on its size trigger.
const diffStormSize = 8

// buildDiffStorm builds the evaluate/counterfactual storm: per group,
// six sweep requests cycling through the metrics (two points each, so
// members carry heterogeneous query counts) plus two counterfactual
// requests with distinct object lists. Every request has a unique
// (metric, bonus, k) — nothing is answerable from a cache on either
// server, so the cached_points/cached_objects fields are deterministic.
func buildDiffStorm(t testing.TB) []diffReq {
	t.Helper()
	var reqs []diffReq
	for gi, g := range diffGroups {
		metrics := []string{"disparity", "ndcg", "di"}
		if g.full {
			metrics = append(metrics, "fpr", "exposure", "expratio", "topk")
		}
		for i := 0; i < 6; i++ {
			k := 0.01 + 0.01*float64(gi*20+i*2)
			reqs = append(reqs, diffReq{
				path: "/v1/evaluate",
				body: mustMarshal(t, EvaluateRequest{
					Dataset: g.dataset,
					Metric:  metrics[i%len(metrics)],
					Points: []SweepPointRequest{
						{Bonus: g.bonus, K: k},
						{Bonus: g.bonus, K: k + 0.007},
					},
				}),
			})
		}
		for i := 6; i < diffStormSize; i++ {
			reqs = append(reqs, diffReq{
				path: "/v1/counterfactual",
				body: mustMarshal(t, CounterfactualRequest{
					Dataset: g.dataset,
					Bonus:   g.bonus,
					K:       0.03 + 0.01*float64(gi*diffStormSize+i),
					Objects: []int{3 * i, 41 + i, 97 + gi},
				}),
			})
		}
	}
	return reqs
}

// TestBatchDifferentialStorm is the tentpole's equivalence harness: a
// storm of concurrent evaluate and counterfactual requests with mixed
// k-grids, object lists, and metrics over a handful of bonus vectors,
// against a batched server. Every response must be byte-identical to a
// sequential replay on a batching-disabled server, and the batched
// server must spend at most one ranked pass per distinct (dataset,
// bonus) group — not one per request.
func TestBatchDifferentialStorm(t *testing.T) {
	batched, bts := newDiffServer(t, Config{BatchSize: diffStormSize, BatchMaxWait: 5 * time.Second})
	_, pts := newDiffServer(t, Config{})
	reqs := buildDiffStorm(t)

	groupsPer := map[string]int64{}
	for _, g := range diffGroups {
		groupsPer[g.dataset]++
	}
	before := map[string]int64{}
	for name := range groupsPer {
		before[name] = passCount(t, batched, name)
	}

	results := runStorm(reqs, bts.URL)
	for i, res := range results {
		if res.err != nil {
			t.Fatalf("request %d: %v", i, res.err)
		}
		if res.code != http.StatusOK {
			t.Fatalf("request %d answered %d: %s", i, res.code, res.body)
		}
	}

	// The coalescing guarantee: one shared pass per distinct bonus group.
	// (≤ rather than ==: a wildly delayed joiner may open a second window;
	// the 5s fallback makes that effectively impossible, but the promised
	// invariant is the bound.)
	for name, groups := range groupsPer {
		if delta := passCount(t, batched, name) - before[name]; delta > groups {
			t.Errorf("%s: storm spent %d ranked passes across %d bonus groups", name, delta, groups)
		} else if delta < 1 {
			t.Errorf("%s: storm spent no ranked passes at all", name)
		}
	}

	// Byte-identity: a sequential replay on the plain server answers every
	// request with the exact same bytes.
	for i, req := range reqs {
		plain := req.do(pts.URL)
		if plain.err != nil {
			t.Fatalf("plain replay %d: %v", i, plain.err)
		}
		if plain.code != http.StatusOK {
			t.Fatalf("plain replay %d answered %d: %s", i, plain.code, plain.body)
		}
		if results[i].body != plain.body {
			t.Fatalf("request %d diverged from the unbatched answer\nbatched: %s\nplain:   %s",
				i, results[i].body, plain.body)
		}
	}

	// Observability: the storm is visible in /healthz and the per-dataset
	// rank_stats. Every request joined exactly one window, so the batched
	// counters are exact even if a group split across windows.
	var h HealthResponse
	if code, body := getJSON(t, bts.URL+"/healthz", &h); code != 200 {
		t.Fatalf("healthz: %d %s", code, body)
	}
	if h.BatchedRequests != int64(len(reqs)) {
		t.Errorf("healthz batched_requests = %d, want %d", h.BatchedRequests, len(reqs))
	}
	if h.BatchFlushes < int64(len(diffGroups)) {
		t.Errorf("healthz batch_flushes = %d, want >= %d", h.BatchFlushes, len(diffGroups))
	}
	if h.BatchLargest < 1 || h.BatchLargest > diffStormSize {
		t.Errorf("healthz batch_largest = %d, want in [1,%d]", h.BatchLargest, diffStormSize)
	}
	if h.BatchWindows != 0 {
		t.Errorf("healthz batch_windows = %d after the storm, want 0", h.BatchWindows)
	}
	var ds []DatasetInfo
	if code, body := getJSON(t, bts.URL+"/v1/datasets", &ds); code != 200 {
		t.Fatalf("datasets: %d %s", code, body)
	}
	for _, d := range ds {
		rs := d.RankStats
		if rs == nil {
			t.Fatalf("%s: rank_stats missing", d.Name)
		}
		if want := groupsPer[d.Name] * diffStormSize; rs.BatchedRequests != want {
			t.Errorf("%s batched_requests = %d, want %d", d.Name, rs.BatchedRequests, want)
		}
		if rs.BatchFlushes < groupsPer[d.Name] {
			t.Errorf("%s batch_flushes = %d, want >= %d", d.Name, rs.BatchFlushes, groupsPer[d.Name])
		}
	}
}

// TestBatchReportDifferentialStorm extends the equivalence harness to
// /v1/report: concurrent bundle builds sharing a bonus vector ride one
// batch window, each rendered response (JSON, CSV, Markdown) is
// byte-identical to the unbatched build, and each group's ranking budget
// is one shared pass plus the shared leave-one-out fan — not one full
// bundle build per request.
func TestBatchReportDifferentialStorm(t *testing.T) {
	batched, bts := newDiffServer(t, Config{BatchSize: 3, BatchMaxWait: 5 * time.Second})
	_, pts := newDiffServer(t, Config{})

	groups := []struct {
		dataset string
		bonus   string
		nonzero int64
	}{
		{"school", "1,2,3,4", 4},
		{"school", "2,10.5,9,12", 4},
		{"compas", "3,0,1.5,2,0,4", 4},
	}
	formats := []string{"json", "csv", "markdown"}
	var reqs []diffReq
	budget := map[string]int64{}
	for gi, g := range groups {
		budget[g.dataset] += 1 + g.nonzero
		for i, format := range formats {
			reqs = append(reqs, diffReq{path: fmt.Sprintf(
				"/v1/report?dataset=%s&bonus=%s&k=%g&format=%s",
				g.dataset, g.bonus, 0.05+0.03*float64(i)+0.001*float64(gi), format)})
		}
	}

	before := map[string]int64{}
	for name := range budget {
		before[name] = passCount(t, batched, name)
	}
	results := runStorm(reqs, bts.URL)
	for i, res := range results {
		if res.err != nil {
			t.Fatalf("report %d: %v", i, res.err)
		}
		if res.code != http.StatusOK {
			t.Fatalf("report %d answered %d: %s", i, res.code, res.body)
		}
	}
	for name, want := range budget {
		if delta := passCount(t, batched, name) - before[name]; delta > want {
			t.Errorf("%s: report storm spent %d ranked passes, budget is %d", name, delta, want)
		}
	}
	for i, req := range reqs {
		plain := req.do(pts.URL)
		if plain.err != nil {
			t.Fatalf("plain report replay %d: %v", i, plain.err)
		}
		if plain.code != http.StatusOK {
			t.Fatalf("plain report replay %d answered %d: %s", i, plain.code, plain.body)
		}
		if results[i].body != plain.body {
			t.Fatalf("report %d (%s) diverged from the unbatched answer\nbatched: %s\nplain:   %s",
				i, req.path, results[i].body, plain.body)
		}
	}
}

// TestBatchRejectionsSkipTheWindow pins the validation seam: a malformed
// request against a batched server is rejected with the same status and
// body as on a plain server, immediately — it never joins a window, so
// the rejection does not wait out BatchMaxWait.
func TestBatchRejectionsSkipTheWindow(t *testing.T) {
	_, bts := newDiffServer(t, Config{BatchSize: 64, BatchMaxWait: 5 * time.Second})
	_, pts := newDiffServer(t, Config{})
	reqs := []diffReq{
		// Zero bonus policy: the report layer rejects before the window.
		{path: "/v1/report?dataset=school&bonus=0,0,0,0&k=0.1"},
		// Bad fraction.
		{path: "/v1/report?dataset=school&bonus=1,2,3,4&k=1.5"},
		// FPR sweep without outcomes.
		{body: mustMarshal(t, EvaluateRequest{Dataset: "school", Metric: "fpr",
			Points: []SweepPointRequest{{Bonus: []float64{1, 2, 3, 4}, K: 0.1}}}), path: "/v1/evaluate"},
		// Counterfactual object out of range.
		{body: mustMarshal(t, CounterfactualRequest{Dataset: "school", Bonus: []float64{1, 2, 3, 4},
			K: 0.1, Objects: []int{999999}}), path: "/v1/counterfactual"},
	}
	for i, req := range reqs {
		start := time.Now()
		got := req.do(bts.URL)
		elapsed := time.Since(start)
		want := req.do(pts.URL)
		if got.err != nil || want.err != nil {
			t.Fatalf("rejection %d: errs (%v, %v)", i, got.err, want.err)
		}
		if got.code != want.code || got.body != want.body {
			t.Errorf("rejection %d diverged: batched (%d, %s), plain (%d, %s)",
				i, got.code, got.body, want.code, want.body)
		}
		if got.code == http.StatusOK {
			t.Errorf("rejection %d unexpectedly succeeded", i)
		}
		if elapsed > 2*time.Second {
			t.Errorf("rejection %d took %v; it must not wait out the batch window", i, elapsed)
		}
	}
}

// TestBatchMemberCancelDoesNotPoisonWindow pins the cancellation seam: a
// caller disconnecting mid-window gets 499 immediately, and the
// remaining members of the same window still get correct, byte-identical
// answers — the dead member is skipped at flush, never computed for, and
// never fails the batch.
func TestBatchMemberCancelDoesNotPoisonWindow(t *testing.T) {
	s, _ := newDiffServer(t, Config{BatchSize: 3, BatchMaxWait: 3 * time.Second})
	_, pts := newDiffServer(t, Config{})
	h := s.Handler()

	runtime.GC()
	baseline := runtime.NumGoroutine()

	bonus := []float64{1, 11.5, 12, 12}
	body := func(k float64) []byte {
		return mustMarshal(t, EvaluateRequest{Dataset: "school", Metric: "disparity",
			Points: []SweepPointRequest{{Bonus: bonus, K: k}}})
	}

	// Member A joins the window, then its client disconnects.
	ctxA, cancelA := context.WithCancel(context.Background())
	defer cancelA()
	recA := make(chan *httptest.ResponseRecorder, 1)
	go func() {
		r := httptest.NewRequest("POST", "/v1/evaluate", bytes.NewReader(body(0.30))).WithContext(ctxA)
		recA <- doRequest(h, r)
	}()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, _, _, windows := s.batch.stats(); windows >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("member A never opened a batch window")
		}
		time.Sleep(time.Millisecond)
	}
	cancelA()
	a := <-recA
	if a.Code != statusClientClosedRequest {
		t.Fatalf("canceled member answered %d (%s), want 499", a.Code, a.Body)
	}
	if !strings.Contains(a.Body.String(), "client closed request") {
		t.Errorf("499 body = %s", a.Body)
	}

	// Members B and C fill the window to its size trigger; the flush must
	// skip dead A and answer both correctly.
	recBC := make(chan *httptest.ResponseRecorder, 2)
	for _, k := range []float64{0.31, 0.32} {
		go func(k float64) {
			recBC <- doRequest(h, httptest.NewRequest("POST", "/v1/evaluate", bytes.NewReader(body(k))))
		}(k)
	}
	for i := 0; i < 2; i++ {
		rec := <-recBC
		if rec.Code != http.StatusOK {
			t.Fatalf("surviving member answered %d (%s)", rec.Code, rec.Body)
		}
	}

	// Byte-identity of the survivors: the k=0.31 and 0.32 rows were
	// computed through the flush that skipped A; re-reading them must
	// match a plain server's answer.
	for _, k := range []float64{0.31, 0.32} {
		batchedRec := doRequest(h, httptest.NewRequest("POST", "/v1/evaluate", bytes.NewReader(body(k))))
		plain := (diffReq{path: "/v1/evaluate", body: body(k)}).do(pts.URL)
		if plain.err != nil || plain.code != http.StatusOK {
			t.Fatalf("plain reference (k=%g): (%v, %d)", k, plain.err, plain.code)
		}
		// The batched server answers from its per-point cache now; the
		// cached row is the one the flush computed. Normalize the cache
		// counter before comparing.
		gotNorm := strings.Replace(batchedRec.Body.String(), `"cached_points":1`, `"cached_points":0`, 1)
		if gotNorm != plain.body {
			t.Errorf("survivor row (k=%g) diverged\nbatched: %s\nplain:   %s", k, batchedRec.Body, plain.body)
		}
	}

	// A was never computed for: only B and C were batched.
	flushes, batchedN, _, windows := s.batch.stats()
	if flushes != 1 || batchedN != 2 || windows != 0 {
		t.Errorf("batcher stats after cancel = (flushes %d, batched %d, windows %d), want (1, 2, 0)",
			flushes, batchedN, windows)
	}

	// Everything (waiters, watchers, timers) settles. The plain-reference
	// requests above went over real HTTP; drop their kept-alive
	// connections so only this server's goroutines are measured.
	settle := time.Now().Add(10 * time.Second)
	for {
		http.DefaultClient.CloseIdleConnections()
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= baseline {
			break
		}
		if time.Now().After(settle) {
			t.Fatalf("goroutines did not settle: baseline %d, now %d", baseline, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}
}
