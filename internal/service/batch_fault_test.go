//go:build faultinject

package service

import (
	"bytes"
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"regexp"
	"runtime"
	"sync"
	"testing"
	"time"

	"fairrank/internal/faultinject"
)

// batchStormBody is one single-point disparity sweep; distinct k values
// give distinct cache keys while sharing the (dataset, bonus) window.
func batchStormBody(t testing.TB, bonus []float64, k float64) []byte {
	t.Helper()
	return mustMarshal(t, EvaluateRequest{Dataset: "school", Metric: "disparity",
		Points: []SweepPointRequest{{Bonus: bonus, K: k}}})
}

// concurrentEvaluates fires the bodies concurrently against the handler
// and returns the recorders in completion order.
func concurrentEvaluates(h http.Handler, bodies [][]byte) []*httptest.ResponseRecorder {
	recs := make(chan *httptest.ResponseRecorder, len(bodies))
	start := make(chan struct{})
	var wg sync.WaitGroup
	for _, b := range bodies {
		wg.Add(1)
		go func(b []byte) {
			defer wg.Done()
			<-start
			recs <- doRequest(h, httptest.NewRequest("POST", "/v1/evaluate", bytes.NewReader(b)))
		}(b)
	}
	close(start)
	wg.Wait()
	close(recs)
	out := make([]*httptest.ResponseRecorder, 0, len(bodies))
	for rec := range recs {
		out = append(out, rec)
	}
	return out
}

// TestFaultBatchFlushPanicReleasesAllWaiters: a panic injected at
// batcher.flush is converted to the recovery middleware's 500 for EVERY
// member of the window — no waiter stalls, the panic counter ticks once
// per batch, nothing reaches the cache, and the batcher keeps serving
// once the fault is spent.
func TestFaultBatchFlushPanicReleasesAllWaiters(t *testing.T) {
	const members = 4
	s := chaosServer(t, Config{BatchSize: members, BatchMaxWait: 2 * time.Second})
	h := s.Handler()
	runtime.GC()
	baseline := runtime.NumGoroutine()

	bonus := []float64{1, 11.5, 12, 12}
	bodies := make([][]byte, members)
	for i := range bodies {
		bodies[i] = batchStormBody(t, bonus, 0.05+0.02*float64(i))
	}
	faultinject.Set(faultinject.SiteBatcherFlush, faultinject.Fault{Panic: "batch flush blew up", Count: 1})

	for _, rec := range concurrentEvaluates(h, bodies) {
		if rec.Code != http.StatusInternalServerError {
			t.Fatalf("member of a panicked batch answered %d (%s), want 500", rec.Code, rec.Body)
		}
		if got := rec.Body.String(); got != "{\"error\":\"internal error\"}\n" {
			t.Errorf("panicked batch body = %q; must match the recovery middleware's answer", got)
		}
	}
	if got := s.panics.Load(); got != 1 {
		t.Errorf("panic counter = %d after one panicked batch, want 1", got)
	}
	if got := s.cache.len(); got != 0 {
		t.Fatalf("panicked batch left %d cache entries; every member key must stay cold", got)
	}
	if got := faultinject.Fired(faultinject.SiteBatcherFlush); got != 1 {
		t.Fatalf("fault fired %d times, want 1", got)
	}

	// The fault is spent: the same requests succeed, through a new window.
	for _, rec := range concurrentEvaluates(h, bodies) {
		if rec.Code != http.StatusOK {
			t.Fatalf("evaluate after the fault spent = %d (%s)", rec.Code, rec.Body)
		}
	}

	deadline := time.Now().Add(10 * time.Second)
	for {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= baseline {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines did not settle: baseline %d, now %d", baseline, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestFaultBatchFlushErrorLeavesMemberCachesCold is the unpoisoned-cache
// regression for batching: a failed batch fails every member with the
// injected error and leaves ALL member cache keys cold — each member
// caches its own rows only after its submit returned success.
func TestFaultBatchFlushErrorLeavesMemberCachesCold(t *testing.T) {
	const members = 4
	s := chaosServer(t, Config{BatchSize: members, BatchMaxWait: 2 * time.Second})
	h := s.Handler()

	bonus := []float64{2, 10.5, 9, 12}
	bodies := make([][]byte, members)
	for i := range bodies {
		bodies[i] = batchStormBody(t, bonus, 0.04+0.03*float64(i))
	}
	faultinject.Set(faultinject.SiteBatcherFlush, faultinject.Fault{Err: errors.New("injected batch failure"), Count: 1})

	for _, rec := range concurrentEvaluates(h, bodies) {
		if rec.Code != http.StatusBadRequest {
			t.Fatalf("member of a failed batch answered %d (%s), want 400", rec.Code, rec.Body)
		}
		if got := rec.Body.String(); !regexp.MustCompile(`injected batch failure`).MatchString(got) {
			t.Errorf("failed batch body = %q; must carry the injected error", got)
		}
	}
	if got := s.cache.len(); got != 0 {
		t.Fatalf("failed batch left %d cache entries; every member key must stay cold", got)
	}

	// Retried cleanly, every member computes and caches its row.
	for _, rec := range concurrentEvaluates(h, bodies) {
		if rec.Code != http.StatusOK {
			t.Fatalf("evaluate after the fault spent = %d (%s)", rec.Code, rec.Body)
		}
	}
	if got := s.cache.len(); got != members {
		t.Errorf("clean retry cached %d rows, want %d", got, members)
	}
}

// TestChaosStormBatched extends the chaos storm to a batching-enabled
// server: concurrent same-bonus evaluate storms while delays, errors, and
// panics flicker at evaluate.start, rank.prefix, and batcher.flush. The
// invariants are the storm's usual four — bounded wall-clock, declared
// statuses only, surviving 200s byte-identical to the clean answers
// (modulo the cache counter), goroutines settle — plus one more: the
// batcher was actually exercised.
func TestChaosStormBatched(t *testing.T) {
	s := chaosServer(t, Config{
		BatchSize:    8,
		BatchMaxWait: 2 * time.Millisecond,
		MaxInFlight:  32,
		AdmitWait:    5 * time.Millisecond,
		Timeouts:     Timeouts{Evaluate: 2 * time.Second},
	})
	h := s.Handler()

	// 32 distinct request bodies over 4 bonus groups; clean references
	// computed before any fault is armed.
	bonuses := [][]float64{
		{1, 11.5, 12, 12},
		{1, 2, 3, 4},
		{0.5, 0.25, 7, 1},
		{2, 10.5, 9, 12},
	}
	var bodies [][]byte
	for bi, bonus := range bonuses {
		for i := 0; i < 8; i++ {
			bodies = append(bodies, batchStormBody(t, bonus, 0.02+0.01*float64(bi*8+i)))
		}
	}
	cachedRe := regexp.MustCompile(`"cached_points":\d+`)
	norm := func(b []byte) string {
		return cachedRe.ReplaceAllString(string(b), `"cached_points":0`)
	}
	want := make([]string, len(bodies))
	for i, b := range bodies {
		rec := doRequest(h, httptest.NewRequest("POST", "/v1/evaluate", bytes.NewReader(b)))
		if rec.Code != http.StatusOK {
			t.Fatalf("clean evaluate %d = %d (%s)", i, rec.Code, rec.Body)
		}
		want[i] = norm(rec.Body.Bytes())
	}

	runtime.GC()
	baseline := runtime.NumGoroutine()

	stop := make(chan struct{})
	var flicker sync.WaitGroup
	flicker.Add(1)
	go func() {
		defer flicker.Done()
		sites := []struct {
			site string
			f    faultinject.Fault
		}{
			{faultinject.SiteEvaluateStart, faultinject.Fault{Delay: 3 * time.Millisecond}},
			{faultinject.SiteBatcherFlush, faultinject.Fault{Panic: "storm batch panic"}},
			{faultinject.SiteRankPrefix, faultinject.Fault{Err: context.DeadlineExceeded}},
			{faultinject.SiteBatcherFlush, faultinject.Fault{Err: errTrainersBusy}},
			{faultinject.SiteBatcherFlush, faultinject.Fault{Delay: 3 * time.Millisecond}},
		}
		i := 0
		for {
			select {
			case <-stop:
				faultinject.Reset()
				return
			default:
			}
			sc := sites[i%len(sites)]
			faultinject.Set(sc.site, sc.f)
			time.Sleep(2 * time.Millisecond)
			faultinject.Clear(sc.site)
			i++
		}
	}()

	const workers = 16
	const perWorker = 25
	statuses := make([]map[int]int, workers)
	got := make([]string, len(bodies)) // first surviving 200 per body, normalized
	var gotMu sync.Mutex
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			statuses[w] = make(map[int]int)
			for i := 0; i < perWorker; i++ {
				bi := (w*perWorker + i) % len(bodies)
				rec := doRequest(h, httptest.NewRequest("POST", "/v1/evaluate", bytes.NewReader(bodies[bi])))
				statuses[w][rec.Code]++
				if rec.Code == http.StatusOK {
					gotMu.Lock()
					if got[bi] == "" {
						got[bi] = norm(rec.Body.Bytes())
					}
					gotMu.Unlock()
				}
			}
		}(w)
	}
	wg.Wait()
	close(stop)
	flicker.Wait()
	if elapsed := time.Since(start); elapsed > 90*time.Second {
		t.Fatalf("batched storm took %v; latency is unbounded under faults", elapsed)
	}

	allowed := map[int]bool{
		http.StatusOK:                  true,
		http.StatusBadRequest:          true, // generic injected batch errors carry the request status
		http.StatusInternalServerError: true, // injected batch panics
		http.StatusServiceUnavailable:  true, // injected exhaustion, leader-ctx faults
		http.StatusTooManyRequests:     true, // admission under the storm
		http.StatusGatewayTimeout:      true, // deadline overruns under injected delays
	}
	total, okCount := 0, 0
	for w := range statuses {
		for code, n := range statuses[w] {
			total += n
			if code == http.StatusOK {
				okCount += n
			}
			if !allowed[code] {
				t.Errorf("batched storm produced status %d (%d times)", code, n)
			}
		}
	}
	if total != workers*perWorker {
		t.Errorf("batched storm answered %d of %d requests", total, workers*perWorker)
	}
	if okCount == 0 {
		t.Error("batched storm produced zero successful responses; faults were supposed to flicker, not saturate")
	}
	for bi := range got {
		if got[bi] != "" && got[bi] != want[bi] {
			t.Fatalf("surviving batched response %d diverged from the clean answer:\n got %s\nwant %s",
				bi, got[bi], want[bi])
		}
	}
	if flushes, _, _, _ := s.batch.stats(); flushes == 0 {
		t.Error("storm never flushed a batch; the batcher was not exercised")
	}

	deadline := time.Now().Add(10 * time.Second)
	for {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= baseline {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines did not settle after the batched storm: baseline %d, now %d", baseline, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}
}
