package simulate

import (
	"testing"

	"fairrank/internal/core"
	"fairrank/internal/rank"
	"fairrank/internal/synth"
)

func driftGen(liStep, penaltyGrowth float64) SchoolDrift {
	cfg := synth.DefaultSchoolConfig()
	cfg.N = 8000
	cfg.Seed = 500
	return SchoolDrift{Base: cfg, LowIncomeRateStep: liStep, PenaltyGrowth: penaltyGrowth}
}

func TestSchoolDriftApplies(t *testing.T) {
	g := driftGen(0.02, 0.10)
	y0, err := g.Cohort(0)
	if err != nil {
		t.Fatal(err)
	}
	y5, err := g.Cohort(5)
	if err != nil {
		t.Fatal(err)
	}
	li0 := y0.FairCentroid()[0]
	li5 := y5.FairCentroid()[0]
	if li5 < li0+0.05 {
		t.Errorf("low-income rate did not drift: %.3f -> %.3f", li0, li5)
	}
	// Worsening penalties should deepen the baseline disparity.
	scorer := rank.WeightedSum{Weights: synth.SchoolScoreWeights()}
	ev0 := core.NewEvaluator(y0, scorer, rank.Beneficial)
	ev5 := core.NewEvaluator(y5, scorer, rank.Beneficial)
	d0, err := ev0.Disparity(nil, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	d5, err := ev5.Disparity(nil, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if d5[3] > d0[3] {
		t.Errorf("Special-Ed disparity should deepen under penalty growth: %.3f -> %.3f", d0[3], d5[3])
	}
}

func TestRunPolicies(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-year simulation")
	}
	gen := driftGen(0.01, 0.08)
	scorer := rank.WeightedSum{Weights: synth.SchoolScoreWeights()}
	opts := core.DefaultOptions()
	obj := core.DisparityObjective(0.05)
	policies := []Policy{
		NoPolicy{},
		&StaticPolicy{Scorer: scorer, Objective: obj, Opts: opts},
		&RetrainPolicy{Scorer: scorer, Objective: obj, Opts: opts},
	}
	const years = 6
	out, err := Run(gen, scorer, policies, years, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 3 {
		t.Fatalf("outcomes for %d policies", len(out))
	}
	byName := map[string]PolicyOutcome{}
	for _, po := range out {
		if len(po.Years) != years {
			t.Fatalf("policy %s has %d years", po.Policy, len(po.Years))
		}
		byName[po.Policy] = po
	}

	// Year 0: no prior data, every policy runs uncompensated.
	for _, po := range out {
		if po.Years[0].Norm != byName["none"].Years[0].Norm {
			t.Errorf("policy %s differs from baseline in year 0", po.Policy)
		}
	}

	last := years - 1
	none := byName["none"].Years[last].Norm
	static := byName["static"].Years[last].Norm
	retrain := byName["retrain"].Years[last].Norm
	t.Logf("final-year norms: none=%.3f static=%.3f retrain=%.3f", none, static, retrain)
	// Any compensation beats none; retraining tracks the drift better than
	// the stale static vector.
	if static >= none {
		t.Errorf("static policy (%.3f) should beat no policy (%.3f)", static, none)
	}
	if retrain >= static {
		t.Errorf("annual retraining (%.3f) should beat the stale static vector (%.3f) under drift", retrain, static)
	}
	// The baseline should be visibly worse than both by the end.
	if none < 0.3 {
		t.Errorf("drifting baseline norm %.3f unexpectedly small", none)
	}
}

func TestRunValidation(t *testing.T) {
	gen := driftGen(0, 0)
	scorer := rank.WeightedSum{Weights: synth.SchoolScoreWeights()}
	if _, err := Run(gen, scorer, []Policy{NoPolicy{}}, 0, 0.05); err == nil {
		t.Error("zero years: expected error")
	}
	if _, err := Run(gen, scorer, nil, 3, 0.05); err == nil {
		t.Error("no policies: expected error")
	}
}
