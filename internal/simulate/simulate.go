package simulate

import (
	"fmt"
	"math"

	"fairrank/internal/core"
	"fairrank/internal/dataset"
	"fairrank/internal/metrics"
	"fairrank/internal/rank"
	"fairrank/internal/synth"
)

// CohortGenerator produces the population observed in a given year.
type CohortGenerator interface {
	Cohort(year int) (*dataset.Dataset, error)
}

// SchoolDrift generates school cohorts whose demographics and structural
// bias drift linearly over the years.
type SchoolDrift struct {
	// Base is the year-0 configuration.
	Base synth.SchoolConfig
	// LowIncomeRateStep is added to the low-income rate each year
	// (clamped to [0, 1]).
	LowIncomeRateStep float64
	// PenaltyGrowth multiplies all structural penalties by
	// (1+PenaltyGrowth)^year — bias worsening (positive) or easing
	// (negative) over time.
	PenaltyGrowth float64
	// SeedStep separates the cohort seeds across years.
	SeedStep int64
}

// Cohort implements CohortGenerator.
func (g SchoolDrift) Cohort(year int) (*dataset.Dataset, error) {
	cfg := g.Base
	cfg.Seed = g.Base.Seed + int64(year)*g.seedStep()
	cfg.LowIncomeRate = clamp01(cfg.LowIncomeRate + float64(year)*g.LowIncomeRateStep)
	growth := math.Pow(1+g.PenaltyGrowth, float64(year))
	cfg.PenaltyLowIncome *= growth
	cfg.PenaltyELL *= growth
	cfg.PenaltySpecialEd *= growth
	cfg.PenaltyENI *= growth
	return synth.GenerateSchool(cfg)
}

func (g SchoolDrift) seedStep() int64 {
	if g.SeedStep == 0 {
		return 1
	}
	return g.SeedStep
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}

// Policy decides the bonus vector applied to each year's cohort. prior is
// the previous year's cohort (the most recent data available at decision
// time); it is nil in year 0 for policies that have no training data yet.
type Policy interface {
	PolicyName() string
	Vector(year int, prior *dataset.Dataset) ([]float64, error)
}

// NoPolicy applies no compensation — the drifting baseline.
type NoPolicy struct{}

// PolicyName implements Policy.
func (NoPolicy) PolicyName() string { return "none" }

// Vector implements Policy.
func (NoPolicy) Vector(int, *dataset.Dataset) ([]float64, error) { return nil, nil }

// StaticPolicy trains once on the first cohort it sees and reuses the
// vector forever — the set-and-forget failure mode under drift.
type StaticPolicy struct {
	Scorer    rank.Scorer
	Objective core.Objective
	Opts      core.Options

	trained []float64
}

// PolicyName implements Policy.
func (p *StaticPolicy) PolicyName() string { return "static" }

// Vector implements Policy.
func (p *StaticPolicy) Vector(year int, prior *dataset.Dataset) ([]float64, error) {
	if p.trained != nil {
		return p.trained, nil
	}
	if prior == nil {
		return nil, nil // nothing to train on yet
	}
	res, err := core.Run(prior, p.Scorer, p.Objective, p.Opts)
	if err != nil {
		return nil, err
	}
	p.trained = res.Bonus
	return p.trained, nil
}

// RetrainPolicy retrains on the previous cohort every year — the paper's
// "quickly and easily adjusted to new data and scenarios" mode, viable
// because DCA runs in milliseconds.
type RetrainPolicy struct {
	Scorer    rank.Scorer
	Objective core.Objective
	Opts      core.Options
}

// PolicyName implements Policy.
func (p *RetrainPolicy) PolicyName() string { return "retrain" }

// Vector implements Policy.
func (p *RetrainPolicy) Vector(year int, prior *dataset.Dataset) ([]float64, error) {
	if prior == nil {
		return nil, nil
	}
	res, err := core.Run(prior, p.Scorer, p.Objective, p.Opts)
	if err != nil {
		return nil, err
	}
	return res.Bonus, nil
}

// YearOutcome records one policy-year.
type YearOutcome struct {
	Year  int
	Bonus []float64
	// Disparity of the year's top-K selection under the applied vector.
	Disparity []float64
	Norm      float64
	NDCG      float64
}

// PolicyOutcome is a policy's trajectory over the simulation horizon.
type PolicyOutcome struct {
	Policy string
	Years  []YearOutcome
}

// Run simulates `years` consecutive cohorts. Every policy sees the same
// cohorts; vectors are chosen using only the previous year's data (no
// look-ahead).
func Run(gen CohortGenerator, scorer rank.Scorer, policies []Policy, years int, k float64) ([]PolicyOutcome, error) {
	if years < 1 {
		return nil, fmt.Errorf("simulate: %d years", years)
	}
	if len(policies) == 0 {
		return nil, fmt.Errorf("simulate: no policies")
	}
	out := make([]PolicyOutcome, len(policies))
	for i, p := range policies {
		out[i] = PolicyOutcome{Policy: p.PolicyName()}
	}
	var prior *dataset.Dataset
	for year := 0; year < years; year++ {
		cohort, err := gen.Cohort(year)
		if err != nil {
			return nil, fmt.Errorf("simulate: year %d cohort: %w", year, err)
		}
		ev := core.NewEvaluator(cohort, scorer, rank.Beneficial)
		for i, p := range policies {
			bonus, err := p.Vector(year, prior)
			if err != nil {
				return nil, fmt.Errorf("simulate: year %d policy %s: %w", year, p.PolicyName(), err)
			}
			disp, err := ev.Disparity(bonus, k)
			if err != nil {
				return nil, err
			}
			ndcg, err := ev.NDCG(bonus, k)
			if err != nil {
				return nil, err
			}
			out[i].Years = append(out[i].Years, YearOutcome{
				Year:      year,
				Bonus:     append([]float64(nil), bonus...),
				Disparity: disp,
				Norm:      metrics.Norm(disp),
				NDCG:      ndcg,
			})
		}
		prior = cohort
	}
	return out, nil
}
