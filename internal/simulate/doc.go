// Package simulate runs multi-year policy simulations over drifting
// populations.
//
// The paper frames DCA's training data as "a sample drawn from an
// underlying distribution": bonus points are set today to prevent
// disparate outcomes in *future* decisions. This package makes that
// operational: each simulated year draws a fresh cohort (optionally with
// demographic or bias drift), a policy chooses the bonus vector to apply
// (none, a static vector trained once, or annual retraining on the
// previous cohort), and the year's selection disparity and utility are
// recorded. The `ablation-drift` experiment uses it to show when the
// paper's "can be quickly and easily adjusted to new data" matters.
package simulate
