package core

import (
	"math"
	"testing"

	"fairrank/internal/dataset"
	"fairrank/internal/metrics"
	"fairrank/internal/rank"
	"fairrank/internal/synth"
)

func schoolFixture(t testing.TB, n int) (*dataset.Dataset, rank.Scorer) {
	t.Helper()
	cfg := synth.DefaultSchoolConfig()
	cfg.N = n
	d, err := synth.GenerateSchool(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return d, rank.WeightedSum{Weights: synth.SchoolScoreWeights()}
}

// TestRunReducesSchoolDisparity is the headline reproduction of Table I:
// DCA-trained bonus points drive the top-5% disparity norm from ≈ 0.37 to
// near zero on the training cohort and on an independent test cohort.
func TestRunReducesSchoolDisparity(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end DCA run")
	}
	d, scorer := schoolFixture(t, 40000)
	obj := DisparityObjective(0.05)
	res, err := Run(d, scorer, obj, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("bonus=%v raw=%v steps=%d elapsed=%s", res.Bonus, res.Raw, res.Steps, res.Elapsed)

	ev := NewEvaluator(d, scorer, rank.Beneficial)
	before, err := ev.Disparity(nil, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	after, err := ev.Disparity(res.Bonus, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("train disparity before=%v (norm %.3f) after=%v (norm %.3f)",
		before, metrics.Norm(before), after, metrics.Norm(after))
	if n := metrics.Norm(after); n > 0.08 {
		t.Errorf("train disparity norm after DCA = %.3f, want < 0.08", n)
	}

	// Independent test cohort (different seed = different school year).
	cfg := synth.DefaultSchoolConfig()
	cfg.N = 40000
	cfg.Seed = 2018
	testD, err := synth.GenerateSchool(cfg)
	if err != nil {
		t.Fatal(err)
	}
	evT := NewEvaluator(testD, scorer, rank.Beneficial)
	afterT, err := evT.Disparity(res.Bonus, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("test disparity after=%v (norm %.3f)", afterT, metrics.Norm(afterT))
	if n := metrics.Norm(afterT); n > 0.10 {
		t.Errorf("test disparity norm after DCA = %.3f, want < 0.10", n)
	}

	// Bonus shape of Table I: ELL/ENI/Special-Ed bonuses are an order of
	// magnitude larger than the Low-Income bonus, which the ENI dimension
	// largely absorbs.
	if res.Bonus[0] > 5 {
		t.Errorf("Low-Income bonus = %v, expected small (paper: 1.0)", res.Bonus[0])
	}
	for _, j := range []int{1, 2, 3} {
		if res.Bonus[j] < 5 {
			t.Errorf("bonus[%d] = %v, expected ≈ 10-15 points", j, res.Bonus[j])
		}
	}
	// Granularity: every bonus is a multiple of 0.5.
	for j, b := range res.Bonus {
		if r := math.Mod(b, 0.5); r > 1e-9 && r < 0.5-1e-9 {
			t.Errorf("bonus[%d] = %v not a multiple of 0.5", j, b)
		}
	}
}

// TestCoreDCAWithoutRefinement checks that Algorithm 1 alone lands close
// (the paper reports roughly 3x worse norms than refined DCA but still a
// large reduction from baseline).
func TestCoreDCAWithoutRefinement(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end DCA run")
	}
	d, scorer := schoolFixture(t, 40000)
	res, err := CoreDCA(d, scorer, DisparityObjective(0.05), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	ev := NewEvaluator(d, scorer, rank.Beneficial)
	after, err := ev.Disparity(RoundTo(append([]float64(nil), res.Raw...), 0.5), 0.05)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("core-only bonus=%v disparity after=%v (norm %.3f)", res.Bonus, after, metrics.Norm(after))
	if n := metrics.Norm(after); n > 0.15 {
		t.Errorf("core-only disparity norm = %.3f, want < 0.15", n)
	}
}
