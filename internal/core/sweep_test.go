package core

import (
	"math/rand"
	"strings"
	"testing"

	"fairrank/internal/dataset"
	"fairrank/internal/rank"
)

// sweepDataset builds a population with one binary, one continuous, and
// one skewed fairness attribute plus ground-truth outcomes, so every sweep
// metric (including FPR differences) is exercised on non-trivial values.
func sweepDataset(t testing.TB, n int, seed int64) *dataset.Dataset {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	b := dataset.NewBuilder([]string{"s1", "s2"}, []string{"binary", "eni", "rare"})
	for i := 0; i < n; i++ {
		bin := float64(rng.Intn(2))
		eni := rng.Float64()
		rare := 0.0
		if rng.Float64() < 0.07 {
			rare = 1
		}
		// Correlate the score with the attributes so compensation moves
		// the ranking (disparity is non-zero and bonus-sensitive).
		score := []float64{rng.NormFloat64() - 2*bin - eni, rng.Float64()}
		b.AddWithOutcome(score, []float64{bin, eni, rare}, rng.Float64() < 0.4)
	}
	d, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// randomBonus draws a bonus vector; with some probability it is nil or
// all-zero, the two spellings of "the uncompensated ranking".
func randomBonus(rng *rand.Rand, dims int) []float64 {
	switch rng.Intn(6) {
	case 0:
		return nil
	case 1:
		return make([]float64, dims)
	}
	b := make([]float64, dims)
	for j := range b {
		b[j] = rng.Float64() * 4
	}
	return b
}

// randomKGrid draws a k-grid including duplicates, unsorted order, and the
// extremes k→1/n and k=1.0.
func randomKGrid(rng *rand.Rand, n, size int) []float64 {
	ks := make([]float64, 0, size)
	ks = append(ks, 0.5/float64(n), 1.0) // count 1 and the whole population
	for len(ks) < size {
		k := rng.Float64()
		if k == 0 {
			k = 0.5
		}
		ks = append(ks, k)
		if rng.Intn(3) == 0 { // duplicate on purpose
			ks = append(ks, k)
		}
	}
	rng.Shuffle(len(ks), func(i, j int) { ks[i], ks[j] = ks[j], ks[i] })
	return ks
}

// TestSweepBitIdenticalToPointwise is the property test of the prefix-sweep
// engine: for random bonus vectors, polarities, and k-grids (duplicated,
// unsorted, k=1/n and k=1.0 included), every sweep output must equal the
// pointwise evaluator bit for bit — both for homogeneous sweeps (one bonus,
// many k's: the rank-once path) and heterogeneous ones (every point its own
// bonus: the per-point fallback).
func TestSweepBitIdenticalToPointwise(t *testing.T) {
	d := sweepDataset(t, 1500, 401)
	scorer := rank.WeightedSum{Weights: []float64{0.7, 0.3}}
	for _, pol := range []rank.Polarity{rank.Beneficial, rank.Adverse} {
		ev := NewEvaluator(d, scorer, pol)
		rng := rand.New(rand.NewSource(17 + int64(pol)))
		for trial := 0; trial < 12; trial++ {
			var points []SweepPoint
			if trial%3 == 2 { // heterogeneous: every point its own bonus
				ks := randomKGrid(rng, d.N(), 6)
				for _, k := range ks {
					points = append(points, SweepPoint{Bonus: randomBonus(rng, d.NumFair()), K: k})
				}
			} else { // homogeneous: one bonus, many k's
				bonus := randomBonus(rng, d.NumFair())
				for _, k := range randomKGrid(rng, d.N(), 9) {
					points = append(points, SweepPoint{Bonus: bonus, K: k})
				}
			}
			checkSweepMatchesPointwise(t, ev, points)
			if t.Failed() {
				t.Fatalf("trial %d (polarity %v) diverged", trial, pol)
			}
		}
	}
}

func checkSweepMatchesPointwise(t *testing.T, ev *Evaluator, points []SweepPoint) {
	t.Helper()
	disp, err := ev.DisparitySweep(points)
	if err != nil {
		t.Fatalf("DisparitySweep: %v", err)
	}
	ndcg, err := ev.NDCGSweep(points)
	if err != nil {
		t.Fatalf("NDCGSweep: %v", err)
	}
	di, err := ev.DisparateImpactSweep(points)
	if err != nil {
		t.Fatalf("DisparateImpactSweep: %v", err)
	}
	fpr, err := ev.FPRDiffSweep(points)
	if err != nil {
		t.Fatalf("FPRDiffSweep: %v", err)
	}
	for i, pt := range points {
		wantDisp, err := ev.Disparity(pt.Bonus, pt.K)
		if err != nil {
			t.Fatal(err)
		}
		wantNDCG, err := ev.NDCG(pt.Bonus, pt.K)
		if err != nil {
			t.Fatal(err)
		}
		wantDI, err := ev.DisparateImpact(pt.Bonus, pt.K)
		if err != nil {
			t.Fatal(err)
		}
		wantFPR, err := ev.FPRDiff(pt.Bonus, pt.K)
		if err != nil {
			t.Fatal(err)
		}
		if ndcg[i] != wantNDCG {
			t.Errorf("point %d (k=%g): sweep nDCG %v != pointwise %v", i, pt.K, ndcg[i], wantNDCG)
		}
		for j := range wantDisp {
			if disp[i][j] != wantDisp[j] {
				t.Errorf("point %d (k=%g) dim %d: sweep disparity %v != pointwise %v", i, pt.K, j, disp[i][j], wantDisp[j])
			}
			if di[i][j] != wantDI[j] {
				t.Errorf("point %d (k=%g) dim %d: sweep DI %v != pointwise %v", i, pt.K, j, di[i][j], wantDI[j])
			}
			if fpr[i][j] != wantFPR[j] {
				t.Errorf("point %d (k=%g) dim %d: sweep FPR %v != pointwise %v", i, pt.K, j, fpr[i][j], wantFPR[j])
			}
		}
	}
}

func TestSweepErrors(t *testing.T) {
	d := tinyDataset(t, 200, 21)
	ev := NewEvaluator(d, rank.WeightedSum{Weights: []float64{1}}, rank.Beneficial)

	// Empty sweeps are empty answers, not errors.
	if out, err := ev.DisparitySweep(nil); err != nil || len(out) != 0 {
		t.Errorf("empty DisparitySweep = (%v, %v)", out, err)
	}
	if out, err := ev.NDCGSweep(nil); err != nil || len(out) != 0 {
		t.Errorf("empty NDCGSweep = (%v, %v)", out, err)
	}

	// An invalid fraction is reported with its point index.
	bad := []SweepPoint{{K: 0.5}, {K: 0}, {K: 0.1}}
	for name, call := range map[string]func([]SweepPoint) error{
		"disparity": func(p []SweepPoint) error { _, err := ev.DisparitySweep(p); return err },
		"ndcg":      func(p []SweepPoint) error { _, err := ev.NDCGSweep(p); return err },
		"di":        func(p []SweepPoint) error { _, err := ev.DisparateImpactSweep(p); return err },
	} {
		err := call(bad)
		if err == nil {
			t.Fatalf("%s sweep accepted k=0", name)
		}
		if !strings.Contains(err.Error(), "sweep point 1") || !strings.Contains(err.Error(), "(0,1]") {
			t.Errorf("%s sweep error %q does not locate point 1", name, err)
		}
	}

	// FPR sweeps need outcomes (tinyDataset has none).
	if _, err := ev.FPRDiffSweep([]SweepPoint{{K: 0.1}}); err == nil || !strings.Contains(err.Error(), "outcomes") {
		t.Errorf("FPRDiffSweep without outcomes = %v", err)
	}
}

// TestSweepAllocations pins the satellite fix: result rows are carved from
// one backing slice and prefix scratch lives in the workspace, so a
// 16-point single-bonus sweep performs a small constant number of
// allocations — strictly fewer than one per point.
func TestSweepAllocations(t *testing.T) {
	if raceEnabled {
		t.Skip("race mode drops sync.Pool items, inflating pooled-workspace alloc counts")
	}
	d := sweepDataset(t, 4000, 77)
	ev := NewEvaluator(d, rank.WeightedSum{Weights: []float64{0.7, 0.3}}, rank.Beneficial)
	bonus := []float64{1, 0.5, 2}
	points := make([]SweepPoint, 16)
	for i := range points {
		points[i] = SweepPoint{Bonus: bonus, K: 0.01 + 0.02*float64(i)}
	}
	for name, call := range map[string]func(){
		"DisparitySweep":       func() { _, _ = ev.DisparitySweep(points) },
		"NDCGSweep":            func() { _, _ = ev.NDCGSweep(points) },
		"DisparateImpactSweep": func() { _, _ = ev.DisparateImpactSweep(points) },
		"FPRDiffSweep":         func() { _, _ = ev.FPRDiffSweep(points) },
	} {
		call() // warm the workspace pool
		allocs := testing.AllocsPerRun(10, call)
		if perPoint := allocs / float64(len(points)); perPoint >= 1 {
			t.Errorf("%s: %.1f allocs for %d points (%.2f per point), want < 1 per point",
				name, allocs, len(points), perPoint)
		}
	}
}
