package core

import (
	"errors"
	"math/rand"
	"strings"
	"testing"

	"fairrank/internal/dataset"
	"fairrank/internal/metrics"
	"fairrank/internal/rank"
)

// binarySweepDataset is sweepDataset's binary-attributes-only sibling: the
// exposure family refuses continuous attributes, so its differential tests
// need a cohort where every fairness column is {0, 1}. Outcomes are
// present so the exposure/merit ratio is exercised too.
func binarySweepDataset(t testing.TB, n int, seed int64) *dataset.Dataset {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	b := dataset.NewBuilder([]string{"s1", "s2"}, []string{"binary", "rare"})
	for i := 0; i < n; i++ {
		bin := float64(rng.Intn(2))
		rare := 0.0
		if rng.Float64() < 0.07 {
			rare = 1
		}
		score := []float64{rng.NormFloat64() - 2*bin - rare, rng.Float64()}
		b.AddWithOutcome(score, []float64{bin, rare}, rng.Float64() < 0.4)
	}
	d, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// exposureKGrid is randomKGrid with a floor: a count-1 prefix populates a
// single group, which is the (separately pinned) degenerate case, not a
// comparison point — the ndcg-style contract fails the whole sweep on it.
// Duplicates, unsorted order, and k=1.0 are still exercised.
func exposureKGrid(rng *rand.Rand, size int) []float64 {
	ks := []float64{0.05, 1.0}
	for len(ks) < size {
		k := 0.05 + 0.95*rng.Float64()
		ks = append(ks, k)
		if rng.Intn(3) == 0 {
			ks = append(ks, k)
		}
	}
	rng.Shuffle(len(ks), func(i, j int) { ks[i], ks[j] = ks[j], ks[i] })
	return ks
}

// TestExposureSweepBitIdenticalToPointwise is the exposure family's
// instance of the sweep property test: for random bonus vectors and
// k-grids (duplicated, unsorted, k=1/n and k=1.0 included), every sweep
// output — per-capita exposure rows, exposure/merit ratios, top-K shares —
// must equal the pointwise evaluator bit for bit, on the homogeneous
// rank-once path and the heterogeneous per-point fallback alike. The DDP
// recovered from the sweep row must match the pointwise DDP too (the row
// cache depends on that recovery).
func TestExposureSweepBitIdenticalToPointwise(t *testing.T) {
	d := binarySweepDataset(t, 1500, 907)
	scorer := rank.WeightedSum{Weights: []float64{0.7, 0.3}}
	for _, pol := range []rank.Polarity{rank.Beneficial, rank.Adverse} {
		ev := NewEvaluator(d, scorer, pol)
		rng := rand.New(rand.NewSource(29 + int64(pol)))
		for trial := 0; trial < 8; trial++ {
			var points []SweepPoint
			if trial%3 == 2 {
				ks := exposureKGrid(rng, 6)
				for _, k := range ks {
					points = append(points, SweepPoint{Bonus: randomBonus(rng, d.NumFair()), K: k})
				}
			} else {
				bonus := randomBonus(rng, d.NumFair())
				for _, k := range exposureKGrid(rng, 9) {
					points = append(points, SweepPoint{Bonus: bonus, K: k})
				}
			}
			checkExposureSweepMatchesPointwise(t, ev, points)
			if t.Failed() {
				t.Fatalf("trial %d (polarity %v) diverged", trial, pol)
			}
		}
	}
}

func checkExposureSweepMatchesPointwise(t *testing.T, ev *Evaluator, points []SweepPoint) {
	t.Helper()
	// Pointwise first: a degenerate-group point (one populated group in the
	// prefix — data-dependent, e.g. a strong bonus making the whole prefix
	// one group) must fail the sweep the same way, so it is a first-class
	// outcome of the property, not a case to dodge.
	wantExpo := make([][]float64, len(points))
	wantDDP := make([]float64, len(points))
	degenerate := false
	for i, pt := range points {
		v, ddp, err := ev.Exposure(pt.Bonus, pt.K)
		if errors.Is(err, metrics.ErrDegenerateGroups) {
			degenerate = true
			continue
		}
		if err != nil {
			t.Fatal(err)
		}
		wantExpo[i], wantDDP[i] = v, ddp
	}
	expo, err := ev.ExposureSweep(points)
	switch {
	case degenerate:
		if !errors.Is(err, metrics.ErrDegenerateGroups) {
			t.Fatalf("pointwise degenerate but ExposureSweep err = %v", err)
		}
	case err != nil:
		t.Fatalf("ExposureSweep: %v", err)
	default:
		for i, pt := range points {
			for j := range wantExpo[i] {
				if expo[i][j] != wantExpo[i][j] {
					t.Errorf("point %d (k=%g) group %d: sweep exposure %v != pointwise %v", i, pt.K, j, expo[i][j], wantExpo[i][j])
				}
			}
			gotDDP, err := metrics.DDPFromPerCapita(expo[i])
			if err != nil {
				t.Fatalf("point %d (k=%g): DDPFromPerCapita on sweep row: %v", i, pt.K, err)
			}
			if gotDDP != wantDDP[i] {
				t.Errorf("point %d (k=%g): recovered DDP %v != pointwise %v", i, pt.K, gotDDP, wantDDP[i])
			}
		}
	}

	// The ratio and share metrics map degenerate denominators to 0, so they
	// compare point for point unconditionally.
	ratio, err := ev.ExpRatioSweep(points)
	if err != nil {
		t.Fatalf("ExpRatioSweep: %v", err)
	}
	topk, err := ev.TopKSweep(points)
	if err != nil {
		t.Fatalf("TopKSweep: %v", err)
	}
	for i, pt := range points {
		wantRatio, err := ev.ExposureRatio(pt.Bonus, pt.K)
		if err != nil {
			t.Fatal(err)
		}
		wantTopK, err := ev.TopKShare(pt.Bonus, pt.K)
		if err != nil {
			t.Fatal(err)
		}
		for j := range wantRatio {
			if ratio[i][j] != wantRatio[j] {
				t.Errorf("point %d (k=%g) dim %d: sweep expratio %v != pointwise %v", i, pt.K, j, ratio[i][j], wantRatio[j])
			}
			if topk[i][j] != wantTopK[j] {
				t.Errorf("point %d (k=%g) dim %d: sweep topk %v != pointwise %v", i, pt.K, j, topk[i][j], wantTopK[j])
			}
		}
	}
}

// TestExposureBatchMatchesSweep pins the shared batch pass to the sweep
// engine for the three new kinds: heterogeneous same-bonus queries
// answered by AnswerBatch must be bit-identical to the per-request sweeps,
// and a BatchExposure answer carries the DDP in Value.
func TestExposureBatchMatchesSweep(t *testing.T) {
	d := binarySweepDataset(t, 1200, 911)
	ev := NewEvaluator(d, rank.WeightedSum{Weights: []float64{0.7, 0.3}}, rank.Beneficial)
	bonus := []float64{1.5, 0.25}
	ks := []float64{0.02, 0.5, 0.02, 0.91, 1.0}
	var qs []BatchQuery
	var pts []SweepPoint
	for _, k := range ks {
		qs = append(qs,
			BatchQuery{Kind: BatchExposure, K: k},
			BatchQuery{Kind: BatchExpRatio, K: k},
			BatchQuery{Kind: BatchTopK, K: k},
		)
		pts = append(pts, SweepPoint{Bonus: bonus, K: k})
	}
	answers, err := ev.AnswerBatch(bonus, qs)
	if err != nil {
		t.Fatal(err)
	}
	expo, err := ev.ExposureSweep(pts)
	if err != nil {
		t.Fatal(err)
	}
	ratio, err := ev.ExpRatioSweep(pts)
	if err != nil {
		t.Fatal(err)
	}
	topk, err := ev.TopKSweep(pts)
	if err != nil {
		t.Fatal(err)
	}
	for i := range ks {
		ea, ra, ta := answers[3*i], answers[3*i+1], answers[3*i+2]
		if ea.Err != nil || ra.Err != nil || ta.Err != nil {
			t.Fatalf("k=%g: batch errors %v %v %v", ks[i], ea.Err, ra.Err, ta.Err)
		}
		wantDDP, err := metrics.DDPFromPerCapita(expo[i])
		if err != nil {
			t.Fatal(err)
		}
		if ea.Value != wantDDP {
			t.Errorf("k=%g: batch DDP %v != sweep-recovered %v", ks[i], ea.Value, wantDDP)
		}
		for j := range ea.Vector {
			if ea.Vector[j] != expo[i][j] {
				t.Errorf("k=%g group %d: batch exposure %v != sweep %v", ks[i], j, ea.Vector[j], expo[i][j])
			}
		}
		for j := range ra.Vector {
			if ra.Vector[j] != ratio[i][j] {
				t.Errorf("k=%g dim %d: batch expratio %v != sweep %v", ks[i], j, ra.Vector[j], ratio[i][j])
			}
			if ta.Vector[j] != topk[i][j] {
				t.Errorf("k=%g dim %d: batch topk %v != sweep %v", ks[i], j, ta.Vector[j], topk[i][j])
			}
		}
	}
}

// TestExposureGuards pins the capability errors: continuous fairness
// attributes are refused up front with the offending column named (never
// silently thresholded), and the exposure/merit ratio requires outcomes.
func TestExposureGuards(t *testing.T) {
	// sweepDataset's "eni" column is continuous.
	cont := sweepDataset(t, 300, 5)
	ev := NewEvaluator(cont, rank.WeightedSum{Weights: []float64{0.7, 0.3}}, rank.Beneficial)
	if _, _, err := ev.Exposure(nil, 0.5); err == nil || !strings.Contains(err.Error(), `"eni"`) {
		t.Errorf("Exposure on continuous attrs = %v, want error naming eni", err)
	}
	for name, call := range map[string]func() error{
		"ExposureSweep": func() error { _, err := ev.ExposureSweep([]SweepPoint{{K: 0.5}}); return err },
		"ExpRatioSweep": func() error { _, err := ev.ExpRatioSweep([]SweepPoint{{K: 0.5}}); return err },
		"TopKSweep":     func() error { _, err := ev.TopKSweep([]SweepPoint{{K: 0.5}}); return err },
		"batch": func() error {
			_, err := ev.AnswerBatch(nil, []BatchQuery{{Kind: BatchExposure, K: 0.5}})
			return err
		},
		"bundle": func() error {
			_, err := ev.BundleStats(BundleStatsConfig{K: 0.5, IncludeExposure: true})
			return err
		},
	} {
		if err := call(); err == nil || !strings.Contains(err.Error(), "continuous") {
			t.Errorf("%s on continuous attrs = %v, want continuous-attribute error", name, err)
		}
	}

	// tinyDataset is binary but has no outcomes: the ratio refuses, the
	// other two family members work.
	bin := tinyDataset(t, 200, 9)
	ev2 := NewEvaluator(bin, rank.WeightedSum{Weights: []float64{1}}, rank.Beneficial)
	if _, err := ev2.ExposureRatio(nil, 0.5); err == nil || !strings.Contains(err.Error(), "outcomes") {
		t.Errorf("ExposureRatio without outcomes = %v", err)
	}
	if _, err := ev2.ExpRatioSweep([]SweepPoint{{K: 0.5}}); err == nil || !strings.Contains(err.Error(), "outcomes") {
		t.Errorf("ExpRatioSweep without outcomes = %v", err)
	}
	if _, err := ev2.AnswerBatch(nil, []BatchQuery{{Kind: BatchExpRatio, K: 0.5}}); err == nil || !strings.Contains(err.Error(), "outcomes") {
		t.Errorf("BatchExpRatio without outcomes = %v", err)
	}
	if _, _, err := ev2.Exposure(nil, 0.5); err != nil {
		t.Errorf("Exposure on outcome-less binary dataset: %v", err)
	}
	if _, err := ev2.TopKShare(nil, 0.5); err != nil {
		t.Errorf("TopKShare on outcome-less binary dataset: %v", err)
	}

	// An invalid fraction is reported with its point index.
	if _, err := ev2.ExposureSweep([]SweepPoint{{K: 0.5}, {K: 0}}); err == nil || !strings.Contains(err.Error(), "sweep point 1") {
		t.Errorf("ExposureSweep k=0 error = %v, want point-1 location", err)
	}
}

// TestExposureDegenerateIsolation pins satellite 2's serving contract: a
// selection whose prefix populates fewer than two groups is the POINT's
// failure. The sweep wraps it with the point index (the ndcg model); the
// batch isolates it to the query's own Err while batchmates still answer.
func TestExposureDegenerateIsolation(t *testing.T) {
	// Everyone is in group "f": the rest group is empty at every cut, so
	// only one group is ever populated.
	n := 60
	score := make([]float64, n)
	fair := make([]float64, n)
	for i := range score {
		score[i] = float64(i)
		fair[i] = 1
	}
	d, err := dataset.New([]string{"s"}, []string{"f"}, [][]float64{score}, [][]float64{fair}, nil)
	if err != nil {
		t.Fatal(err)
	}
	ev := NewEvaluator(d, rank.WeightedSum{Weights: []float64{1}}, rank.Beneficial)

	if _, _, err := ev.Exposure(nil, 0.5); !errors.Is(err, metrics.ErrDegenerateGroups) {
		t.Errorf("pointwise degenerate = %v, want ErrDegenerateGroups", err)
	}
	_, err = ev.ExposureSweep([]SweepPoint{{K: 0.5}})
	if !errors.Is(err, metrics.ErrDegenerateGroups) || !strings.Contains(err.Error(), "sweep point 0") {
		t.Errorf("sweep degenerate = %v, want located ErrDegenerateGroups", err)
	}

	answers, err := ev.AnswerBatch(nil, []BatchQuery{
		{Kind: BatchExposure, K: 0.5},
		{Kind: BatchDisparity, K: 0.5},
	})
	if err != nil {
		t.Fatalf("AnswerBatch: %v", err)
	}
	if !errors.Is(answers[0].Err, metrics.ErrDegenerateGroups) {
		t.Errorf("batch exposure Err = %v, want ErrDegenerateGroups", answers[0].Err)
	}
	if answers[1].Err != nil || answers[1].Vector == nil {
		t.Errorf("degenerate batchmate poisoned the disparity query: %+v", answers[1])
	}

	if _, err := ev.BundleStats(BundleStatsConfig{K: 0.5, IncludeExposure: true}); !errors.Is(err, metrics.ErrDegenerateGroups) {
		t.Errorf("bundle degenerate = %v, want ErrDegenerateGroups", err)
	}
}

// TestBundleExposureMatchesPointwise pins the bundle's exposure section to
// the pointwise evaluator on both sides, through the direct pass and the
// shared batch pass.
func TestBundleExposureMatchesPointwise(t *testing.T) {
	d := binarySweepDataset(t, 900, 913)
	ev := NewEvaluator(d, rank.WeightedSum{Weights: []float64{0.7, 0.3}}, rank.Beneficial)
	bonus := []float64{2, 0.5}
	const k = 0.17
	cfg := BundleStatsConfig{Bonus: bonus, K: k, IncludeExposure: true}

	wantExpo, wantDDP, err := ev.Exposure(bonus, k)
	if err != nil {
		t.Fatal(err)
	}
	wantBase, wantBaseDDP, err := ev.Exposure(nil, k)
	if err != nil {
		t.Fatal(err)
	}

	st, err := ev.BundleStats(cfg)
	if err != nil {
		t.Fatal(err)
	}
	answers, err := ev.AnswerBatch(bonus, []BatchQuery{{Kind: BatchBundle, Bundle: &cfg}})
	if err != nil {
		t.Fatal(err)
	}
	if answers[0].Err != nil {
		t.Fatal(answers[0].Err)
	}
	for name, got := range map[string]*BundleStats{"direct": st, "batched": answers[0].Bundle} {
		if got.ExposureDDP != wantDDP || got.BaseExposureDDP != wantBaseDDP {
			t.Errorf("%s: DDP (%v, %v) != pointwise (%v, %v)", name, got.ExposureDDP, got.BaseExposureDDP, wantDDP, wantBaseDDP)
		}
		for j := range wantExpo {
			if got.Exposure[j] != wantExpo[j] {
				t.Errorf("%s group %d: exposure %v != pointwise %v", name, j, got.Exposure[j], wantExpo[j])
			}
			if got.BaseExposure[j] != wantBase[j] {
				t.Errorf("%s group %d: base exposure %v != pointwise %v", name, j, got.BaseExposure[j], wantBase[j])
			}
		}
	}

	// Not requested -> absent entirely.
	plain, err := ev.BundleStats(BundleStatsConfig{Bonus: bonus, K: k})
	if err != nil {
		t.Fatal(err)
	}
	if plain.Exposure != nil || plain.BaseExposure != nil || plain.ExposureDDP != 0 {
		t.Errorf("exposure fields set without IncludeExposure: %+v", plain)
	}
}

// TestExposureSweepAllocations extends the sweep allocation pin to the
// exposure family: rows carved from one backing slice, prefix scratch
// (exposure rows, count rows, running sums) in the pooled workspace —
// strictly fewer than one allocation per sweep point.
func TestExposureSweepAllocations(t *testing.T) {
	if raceEnabled {
		t.Skip("race mode drops sync.Pool items, inflating pooled-workspace alloc counts")
	}
	d := binarySweepDataset(t, 4000, 929)
	ev := NewEvaluator(d, rank.WeightedSum{Weights: []float64{0.7, 0.3}}, rank.Beneficial)
	bonus := []float64{1, 0.5}
	points := make([]SweepPoint, 16)
	for i := range points {
		points[i] = SweepPoint{Bonus: bonus, K: 0.05 + 0.02*float64(i)}
	}
	for name, call := range map[string]func(){
		"ExposureSweep": func() { _, _ = ev.ExposureSweep(points) },
		"ExpRatioSweep": func() { _, _ = ev.ExpRatioSweep(points) },
		"TopKSweep":     func() { _, _ = ev.TopKSweep(points) },
	} {
		call() // warm the workspace pool
		allocs := testing.AllocsPerRun(10, call)
		if perPoint := allocs / float64(len(points)); perPoint >= 1 {
			t.Errorf("%s: %.1f allocs for %d points (%.2f per point), want < 1 per point",
				name, allocs, len(points), perPoint)
		}
	}
}
