package core

import (
	"math"
	"math/rand"
	"reflect"
	"testing"

	"fairrank/internal/dataset"
	"fairrank/internal/metrics"
	"fairrank/internal/optimize"
	"fairrank/internal/rank"
)

func tinyDataset(t testing.TB, n int, seed int64) *dataset.Dataset {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	fair := make([]float64, n)
	score := make([]float64, n)
	for i := 0; i < n; i++ {
		if rng.Float64() < 0.3 {
			fair[i] = 1
		}
		score[i] = 50 + 10*rng.NormFloat64() - 5*fair[i]
	}
	d, err := dataset.New([]string{"s"}, []string{"f"}, [][]float64{score}, [][]float64{fair}, nil)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestRunRejectsInvalidOptions(t *testing.T) {
	d := tinyDataset(t, 100, 1)
	scorer := rank.WeightedSum{Weights: []float64{1}}
	obj := DisparityObjective(0.1)

	cases := []struct {
		name   string
		mutate func(*Options)
	}{
		{"zero sample", func(o *Options) { o.SampleSize = 0 }},
		{"empty ladder", func(o *Options) { o.Ladder = nil }},
		{"negative refine steps", func(o *Options) { o.RefineSteps = -1 }},
		{"refine without lr", func(o *Options) { o.RefineSteps = 10; o.RefineLR = 0 }},
		{"negative granularity", func(o *Options) { o.Granularity = -0.5 }},
		{"negative cap", func(o *Options) { o.MaxBonus = -1 }},
		{"init bonus wrong dims", func(o *Options) { o.InitBonus = []float64{1, 2} }},
		{"increasing ladder", func(o *Options) {
			o.Ladder = optimize.Ladder{{LR: 0.1, Steps: 1}, {LR: 1, Steps: 1}}
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			opts := DefaultOptions()
			tc.mutate(&opts)
			if _, err := Run(d, scorer, obj, opts); err == nil {
				t.Error("expected error")
			}
		})
	}
}

func TestRunRejectsDegenerateDatasets(t *testing.T) {
	scorer := rank.WeightedSum{Weights: []float64{1}}
	obj := DisparityObjective(0.1)
	empty, err := dataset.New([]string{"s"}, []string{"f"}, [][]float64{{}}, [][]float64{{}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Run(empty, scorer, obj, DefaultOptions()); err == nil {
		t.Error("empty dataset: expected error")
	}
	noFair, err := dataset.New([]string{"s"}, nil, [][]float64{{1, 2}}, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Run(noFair, scorer, obj, DefaultOptions()); err == nil {
		t.Error("no fairness attributes: expected error")
	}
}

func TestRunSampleSizeCappedAtN(t *testing.T) {
	d := tinyDataset(t, 80, 2)
	opts := DefaultOptions()
	opts.SampleSize = 10_000 // larger than the dataset
	if _, err := Run(d, rank.WeightedSum{Weights: []float64{1}}, DisparityObjective(0.2), opts); err != nil {
		t.Fatalf("oversized sample should be capped, got %v", err)
	}
}

func TestRunRespectsMaxBonus(t *testing.T) {
	d := tinyDataset(t, 2000, 3)
	opts := DefaultOptions()
	opts.MaxBonus = 2
	res, err := Run(d, rank.WeightedSum{Weights: []float64{1}}, DisparityObjective(0.1), opts)
	if err != nil {
		t.Fatal(err)
	}
	for j, b := range res.Bonus {
		if b > 2 {
			t.Errorf("bonus[%d] = %v exceeds cap 2", j, b)
		}
		if b < 0 {
			t.Errorf("bonus[%d] = %v negative", j, b)
		}
	}
	// The structural penalty is 5 points: the cap must bind.
	if res.Bonus[0] != 2 {
		t.Errorf("bonus = %v, expected the cap to bind at 2", res.Bonus[0])
	}
}

func TestRunGranularity(t *testing.T) {
	d := tinyDataset(t, 2000, 4)
	opts := DefaultOptions()
	opts.Granularity = 0.25
	res, err := Run(d, rank.WeightedSum{Weights: []float64{1}}, DisparityObjective(0.1), opts)
	if err != nil {
		t.Fatal(err)
	}
	for j, b := range res.Bonus {
		m := math.Mod(b, 0.25)
		if m > 1e-9 && m < 0.25-1e-9 {
			t.Errorf("bonus[%d] = %v not a multiple of 0.25", j, b)
		}
	}
	// Granularity 0 disables rounding: Raw == Bonus.
	opts.Granularity = 0
	res, err = Run(d, rank.WeightedSum{Weights: []float64{1}}, DisparityObjective(0.1), opts)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res.Raw, res.Bonus) {
		t.Errorf("granularity 0: Raw %v != Bonus %v", res.Raw, res.Bonus)
	}
}

func TestRunDeterministicBySeed(t *testing.T) {
	d := tinyDataset(t, 3000, 5)
	scorer := rank.WeightedSum{Weights: []float64{1}}
	opts := DefaultOptions()
	opts.Seed = 42
	a, err := Run(d, scorer, DisparityObjective(0.1), opts)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(d, scorer, DisparityObjective(0.1), opts)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.Bonus, b.Bonus) || !reflect.DeepEqual(a.Raw, b.Raw) {
		t.Errorf("same seed diverged: %v vs %v", a.Raw, b.Raw)
	}
}

func TestRunInitBonusIsUsedAndNotMutated(t *testing.T) {
	d := tinyDataset(t, 1000, 6)
	init := []float64{3}
	opts := DefaultOptions()
	opts.InitBonus = init
	if _, err := Run(d, rank.WeightedSum{Weights: []float64{1}}, DisparityObjective(0.1), opts); err != nil {
		t.Fatal(err)
	}
	if init[0] != 3 {
		t.Errorf("InitBonus mutated to %v", init)
	}
}

func TestRunTraceObservesAllSteps(t *testing.T) {
	d := tinyDataset(t, 1000, 7)
	var coreSteps, refineSteps int
	opts := DefaultOptions()
	opts.Trace = func(s TraceStep) {
		switch s.Stage {
		case "core":
			coreSteps++
		case "refine":
			refineSteps++
		}
		if len(s.Bonus) != 1 || len(s.Objective) != 1 {
			t.Errorf("trace step with wrong dims: %+v", s)
		}
		if s.Objective[0] < -1 || s.Objective[0] > 1 {
			t.Errorf("objective %v outside [-1,1]", s.Objective[0])
		}
	}
	res, err := Run(d, rank.WeightedSum{Weights: []float64{1}}, DisparityObjective(0.1), opts)
	if err != nil {
		t.Fatal(err)
	}
	if coreSteps != opts.Ladder.TotalSteps() {
		t.Errorf("core trace steps = %d, want %d", coreSteps, opts.Ladder.TotalSteps())
	}
	if refineSteps != opts.RefineSteps {
		t.Errorf("refine trace steps = %d, want %d", refineSteps, opts.RefineSteps)
	}
	if res.Steps != coreSteps+refineSteps {
		t.Errorf("Steps = %d, want %d", res.Steps, coreSteps+refineSteps)
	}
}

func TestAdversePolarityReducesOverflagging(t *testing.T) {
	// Risk scores where the protected group is systematically scored 2
	// points higher; selection = top (flagged). Adverse DCA should award
	// points that cancel the overflagging.
	rng := rand.New(rand.NewSource(9))
	n := 4000
	fair := make([]float64, n)
	score := make([]float64, n)
	for i := 0; i < n; i++ {
		if rng.Float64() < 0.4 {
			fair[i] = 1
		}
		score[i] = 5 + 2*rng.NormFloat64() + 2*fair[i]
	}
	d, err := dataset.New([]string{"risk"}, []string{"f"}, [][]float64{score}, [][]float64{fair}, nil)
	if err != nil {
		t.Fatal(err)
	}
	scorer := rank.WeightedSum{Weights: []float64{1}}
	opts := DefaultOptions()
	opts.Polarity = rank.Adverse
	res, err := Run(d, scorer, DisparityObjective(0.2), opts)
	if err != nil {
		t.Fatal(err)
	}
	ev := NewEvaluator(d, scorer, rank.Adverse)
	before, err := ev.Disparity(nil, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	after, err := ev.Disparity(res.Bonus, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	if before[0] < 0.1 {
		t.Fatalf("setup broken: baseline disparity %v should be strongly positive", before[0])
	}
	if math.Abs(after[0]) > 0.05 {
		t.Errorf("adverse DCA left disparity %v (bonus %v)", after[0], res.Bonus)
	}
	if res.Bonus[0] < 1 || res.Bonus[0] > 3.5 {
		t.Errorf("adverse bonus = %v, want ≈ 2", res.Bonus[0])
	}
}

func TestRoundToAndScale(t *testing.T) {
	b := []float64{1.24, 3.76}
	got := RoundTo(append([]float64(nil), b...), 0.5)
	if got[0] != 1 || got[1] != 4 {
		t.Errorf("RoundTo = %v", got)
	}
	if got := RoundTo([]float64{1.3}, 0); got[0] != 1.3 {
		t.Errorf("RoundTo granularity 0 = %v", got)
	}
	s := Scale([]float64{10, 5}, 0.5, 0.5)
	if s[0] != 5 || s[1] != 2.5 {
		t.Errorf("Scale = %v", s)
	}
	if metrics.Norm(Scale([]float64{10, 5}, 0, 0.5)) != 0 {
		t.Error("Scale by 0 should zero the vector")
	}
}
