package core

import (
	"context"
	"errors"
	"math/rand"
	"slices"
	"testing"

	"fairrank/internal/dataset"
	"fairrank/internal/metrics"
	"fairrank/internal/rank"
)

// bundleCohort builds a random audit cohort. ties draws base scores from
// a coarse integer grid so the selection cutoff lands inside a tie run;
// singleGroup makes fairness attribute 0 cover the entire population
// (its disparity is structurally zero — a degenerate column the bundle
// must survive).
func bundleCohort(t testing.TB, rng *rand.Rand, n, dims int, outcomes, ties, singleGroup bool) *dataset.Dataset {
	t.Helper()
	fairNames := make([]string, dims)
	for j := range fairNames {
		fairNames[j] = string(rune('a' + j))
	}
	b := dataset.NewBuilder([]string{"s"}, fairNames)
	for i := 0; i < n; i++ {
		var score float64
		if ties {
			score = float64(1 + rng.Intn(4))
		} else {
			score = 50 + 10*rng.NormFloat64()
		}
		fair := make([]float64, dims)
		for j := range fair {
			if j == 0 && singleGroup {
				fair[j] = 1
				continue
			}
			if rng.Float64() < 0.4 {
				fair[j] = 1
			}
		}
		if outcomes {
			b.AddWithOutcome([]float64{score}, fair, rng.Float64() < 0.5)
		} else {
			b.Add([]float64{score}, fair)
		}
	}
	d, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// checkBundleStatsAgainstPointwise asserts, field by field and bit for
// bit, that one BundleStats pass agrees with the independent pointwise
// evaluators it replaces: Explain, AttributeDisparity, NDCG, FPRDiff,
// and CounterfactualBatch over the boundary window of the full sorted
// order. Any float compared here is compared with ==; "close" is a bug.
func checkBundleStatsAgainstPointwise(t *testing.T, ev *Evaluator, cfg BundleStatsConfig) {
	t.Helper()
	st, err := ev.BundleStats(cfg)
	if err != nil {
		t.Fatalf("BundleStats(%+v): %v", cfg, err)
	}

	exp, err := ev.Explain(cfg.Bonus, cfg.K)
	if err != nil {
		t.Fatal(err)
	}
	if st.Selected != exp.Selected || st.Cutoff != exp.Cutoff || st.BaseCutoff != exp.BaseCutoff {
		t.Errorf("cutoffs: stats (%d %v %v) vs Explain (%d %v %v)",
			st.Selected, st.Cutoff, st.BaseCutoff, exp.Selected, exp.Cutoff, exp.BaseCutoff)
	}
	if !slices.Equal(st.GroupCounts, exp.GroupCounts) || !slices.Equal(st.BaseGroupCounts, exp.BaseGroupCounts) {
		t.Errorf("group counts: stats %v/%v vs Explain %v/%v",
			st.GroupCounts, st.BaseGroupCounts, exp.GroupCounts, exp.BaseGroupCounts)
	}
	if !slices.Equal(st.AdmittedByBonus, exp.AdmittedByBonus) || !slices.Equal(st.DisplacedByBonus, exp.DisplacedByBonus) {
		t.Errorf("beneficiary sets: stats %v/%v vs Explain %v/%v",
			st.AdmittedByBonus, st.DisplacedByBonus, exp.AdmittedByBonus, exp.DisplacedByBonus)
	}

	att, err := ev.AttributeDisparity(cfg.Bonus, cfg.K)
	if err != nil {
		t.Fatal(err)
	}
	if st.NormBefore != att.NormBase || st.NormAfter != att.NormFull || st.Reduction != att.Reduction {
		t.Errorf("norms: stats (%v %v %v) vs AttributeDisparity (%v %v %v)",
			st.NormBefore, st.NormAfter, st.Reduction, att.NormBase, att.NormFull, att.Reduction)
	}
	if !slices.Equal(st.LeaveOneOut, att.LeaveOneOut) {
		t.Errorf("leave-one-out: stats %v vs AttributeDisparity %v", st.LeaveOneOut, att.LeaveOneOut)
	}
	if !slices.Equal(st.Contribution, att.Contribution) {
		t.Errorf("contribution: stats %v vs AttributeDisparity %v", st.Contribution, att.Contribution)
	}

	ndcg, err := ev.NDCG(cfg.Bonus, cfg.K)
	if err != nil {
		t.Fatal(err)
	}
	if st.NDCG != ndcg {
		t.Errorf("nDCG: stats %v vs pointwise %v", st.NDCG, ndcg)
	}

	if cfg.IncludeFPR {
		fpr, err := ev.FPRDiff(cfg.Bonus, cfg.K)
		if err != nil {
			t.Fatal(err)
		}
		if !slices.Equal(st.FPRDiff, fpr) {
			t.Errorf("FPR diff: stats %v vs pointwise %v", st.FPRDiff, fpr)
		}
	} else if st.FPRDiff != nil {
		t.Errorf("FPRDiff = %v without being requested", st.FPRDiff)
	}

	// Margins against CounterfactualBatch over the window of the full
	// sorted order — the batch path sorts the entire population, so this
	// also pins the ranked prefix against the full sort.
	n := ev.Dataset().N()
	cnt, err := rank.SelectCount(n, cfg.K)
	if err != nil {
		t.Fatal(err)
	}
	lo, hi := cnt-cfg.Margins, cnt+cfg.Margins
	if lo < 0 {
		lo = 0
	}
	if hi > n {
		hi = n
	}
	window := append([]int(nil), ev.Order(cfg.Bonus)[lo:hi]...)
	want, err := ev.CounterfactualBatch(cfg.Bonus, cfg.K, window)
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Margins) != len(want) {
		t.Fatalf("margin window has %d lines, want %d", len(st.Margins), len(want))
	}
	for i, got := range st.Margins {
		w := want[i]
		if got.Object != w.Object || got.Rank != w.Rank || got.Selected != w.Selected ||
			got.Effective != w.Effective || got.Cutoff != w.Cutoff || got.Competitor != w.Competitor ||
			got.ScoreDelta != w.ScoreDelta || got.BonusDelta != w.BonusDelta || got.Feasible != w.Feasible ||
			!slices.Equal(got.PerAttribute, w.PerAttribute) {
			t.Errorf("margin %d: stats %+v vs CounterfactualBatch %+v", i, got, w)
		}
	}
}

// TestBundleStatsDifferential pins the shared-order BundleData pass
// against the independent pointwise evaluators on fixed representative
// cohorts: with and without outcomes, both polarities, tied scores at the
// cutoff, a single-group attribute, and a one-object population.
func TestBundleStatsDifferential(t *testing.T) {
	cases := []struct {
		name        string
		n, dims     int
		outcomes    bool
		ties        bool
		singleGroup bool
		pol         rank.Polarity
		cfg         BundleStatsConfig
	}{
		{"beneficial", 600, 3, false, false, false, rank.Beneficial,
			BundleStatsConfig{Bonus: []float64{4, 0, 1.5}, K: 0.1, Margins: 5}},
		{"adverse with outcomes", 600, 3, true, false, false, rank.Adverse,
			BundleStatsConfig{Bonus: []float64{2, 1, 0.5}, K: 0.2, Margins: 3, IncludeFPR: true}},
		{"tied scores at the cutoff", 400, 2, false, true, false, rank.Beneficial,
			BundleStatsConfig{Bonus: []float64{1, 2}, K: 0.25, Margins: 6}},
		{"single-group attribute", 300, 2, true, false, true, rank.Beneficial,
			BundleStatsConfig{Bonus: []float64{3, 1}, K: 0.1, Margins: 4, IncludeFPR: true}},
		{"one object", 1, 2, false, false, false, rank.Beneficial,
			BundleStatsConfig{Bonus: []float64{1, 1}, K: 1, Margins: 2}},
		{"k=1 covers everyone", 120, 2, false, false, false, rank.Beneficial,
			BundleStatsConfig{Bonus: []float64{5, 2}, K: 1, Margins: 2}},
		{"single non-zero bonus (leave-one-out hits the zero vector)", 500, 2, false, false, false, rank.Adverse,
			BundleStatsConfig{Bonus: []float64{0, 7}, K: 0.05, Margins: 2}},
		{"zero bonus", 200, 2, false, false, false, rank.Beneficial,
			BundleStatsConfig{Bonus: []float64{0, 0}, K: 0.1, Margins: 3}},
		{"no margins requested", 200, 2, false, false, false, rank.Beneficial,
			BundleStatsConfig{Bonus: []float64{2, 1}, K: 0.1}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(int64(len(tc.name)) * 77))
			d := bundleCohort(t, rng, tc.n, tc.dims, tc.outcomes, tc.ties, tc.singleGroup)
			ev := NewEvaluator(d, rank.WeightedSum{Weights: []float64{1}}, tc.pol)
			checkBundleStatsAgainstPointwise(t, ev, tc.cfg)
		})
	}
}

// TestBundleStatsProperty is the randomized form of the differential:
// random cohorts, polarities, outcome availability, tie structure, bonus
// sparsity, margin widths, and a k-grid that always includes the k=1/n
// and k=1.0 extremes. Every trial must agree with the pointwise
// evaluators bit for bit, and must stay within the rank-once budget of
// dims+1 ranking passes (asserted through the engine's ranking-count
// hook).
func TestBundleStatsProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(20260730))
	for trial := 0; trial < 60; trial++ {
		n := 1 + rng.Intn(250)
		dims := 1 + rng.Intn(5)
		outcomes := rng.Intn(2) == 0
		ties := rng.Intn(3) == 0
		singleGroup := rng.Intn(4) == 0
		pol := rank.Beneficial
		if rng.Intn(2) == 0 {
			pol = rank.Adverse
		}
		d := bundleCohort(t, rng, n, dims, outcomes, ties, singleGroup)
		ev := NewEvaluator(d, rank.WeightedSum{Weights: []float64{1}}, pol)

		bonus := make([]float64, dims)
		nonzero := 0
		for j := range bonus {
			if rng.Intn(3) > 0 { // ~2/3 of the dimensions carry points
				bonus[j] = float64(rng.Intn(8)) / 2
			}
			if bonus[j] != 0 {
				nonzero++
			}
		}
		ks := []float64{1.0 / float64(2*n), 1, rng.Float64()}
		for _, k := range ks {
			if k <= 0 {
				k = 0.5
			}
			cfg := BundleStatsConfig{
				Bonus:      bonus,
				K:          k,
				Margins:    rng.Intn(6),
				IncludeFPR: outcomes && rng.Intn(2) == 0,
			}
			checkBundleStatsAgainstPointwise(t, ev, cfg)
			// The pointwise evaluators the check compares against perform
			// many rankings of their own, so the rank-once budget is
			// asserted on a fresh, identical evaluator.
			fresh := NewEvaluator(d, rank.WeightedSum{Weights: []float64{1}}, pol)
			if _, err := fresh.BundleStats(cfg); err != nil {
				t.Fatal(err)
			}
			if got, budget := fresh.RankingCount(), int64(1+nonzero); got > budget {
				t.Fatalf("trial %d k=%v: cold bundle performed %d rankings, budget %d (dims=%d)",
					trial, k, got, budget, dims)
			}
		}
	}
}

// TestBundleStatsNilBonusAligned: a nil config bonus audits the
// uncompensated ranking, and the result's Bonus copy must still be dims
// long (the zero vector) so every per-dimension slice stays aligned for
// consumers that index them in lockstep (report.FromStats).
func TestBundleStatsNilBonusAligned(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	d := bundleCohort(t, rng, 40, 3, false, false, false)
	ev := NewEvaluator(d, rank.WeightedSum{Weights: []float64{1}}, rank.Beneficial)
	st, err := ev.BundleStats(BundleStatsConfig{Bonus: nil, K: 0.5, Margins: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Bonus) != d.NumFair() {
		t.Fatalf("Bonus has %d dimensions for a nil config bonus, want %d", len(st.Bonus), d.NumFair())
	}
	for j, b := range st.Bonus {
		if b != 0 {
			t.Errorf("Bonus[%d] = %v, want 0", j, b)
		}
	}
	if st.NormAfter != st.NormBefore || len(st.AdmittedByBonus) != 0 || len(st.DisplacedByBonus) != 0 {
		t.Errorf("nil bonus changed the selection: %+v", st)
	}
}

// TestBundleStatsValidation covers the pass's own rejections (the report
// layer screens audit-policy mistakes; these are the evaluator-level
// ones) and the zero-ideal-DCG propagation.
func TestBundleStatsValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	d := bundleCohort(t, rng, 50, 2, false, false, false)
	ev := NewEvaluator(d, rank.WeightedSum{Weights: []float64{1}}, rank.Beneficial)

	if _, err := ev.BundleStats(BundleStatsConfig{Bonus: []float64{1}, K: 0.1}); err == nil {
		t.Error("mis-sized bonus accepted")
	}
	if _, err := ev.BundleStats(BundleStatsConfig{Bonus: []float64{1, 1}, K: 0}); err == nil {
		t.Error("zero fraction accepted")
	}
	if _, err := ev.BundleStats(BundleStatsConfig{Bonus: []float64{1, 1}, K: 0.1, Margins: -1}); err == nil {
		t.Error("negative margins accepted")
	}
	if _, err := ev.BundleStats(BundleStatsConfig{Bonus: []float64{1, 1}, K: 0.1, IncludeFPR: true}); err == nil {
		t.Error("FPR without outcomes accepted")
	}

	// All-zero base scores make the ideal DCG zero; the pass must surface
	// the same sentinel the pointwise NDCG returns.
	zb := dataset.NewBuilder([]string{"s"}, []string{"g"})
	for i := 0; i < 10; i++ {
		zb.Add([]float64{0}, []float64{float64(i % 2)})
	}
	zd, err := zb.Build()
	if err != nil {
		t.Fatal(err)
	}
	zev := NewEvaluator(zd, rank.WeightedSum{Weights: []float64{1}}, rank.Beneficial)
	if _, err := zev.BundleStats(BundleStatsConfig{Bonus: []float64{1}, K: 0.5}); !errors.Is(err, metrics.ErrZeroIdealDCG) {
		t.Errorf("zero ideal DCG: err = %v, want ErrZeroIdealDCG", err)
	}
}

// TestRankedPrefixMatchesFullSort pins the bounded-heap prefix selection
// against the full sort for every prefix length on a tie-heavy cohort —
// the comparator is a total order, so the prefix must be the full order's
// leading segment element for element.
func TestRankedPrefixMatchesFullSort(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	d := bundleCohort(t, rng, 120, 2, false, true, false)
	ev := NewEvaluator(d, rank.WeightedSum{Weights: []float64{1}}, rank.Beneficial)
	bonus := []float64{1.5, 0.5}
	full := ev.Order(bonus)
	ws := ev.ws()
	defer ev.put(ws)
	for p := 1; p <= d.N(); p++ {
		got, err := ev.rankedPrefixWS(context.Background(), ws, bonus, p)
		if err != nil {
			t.Fatal(err)
		}
		if !slices.Equal(got, full[:p]) {
			t.Fatalf("prefix %d diverges from the full sort:\n got %v\nwant %v", p, got, full[:p])
		}
	}
}
