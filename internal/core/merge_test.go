package core

import (
	"context"
	"math/rand"
	"reflect"
	"testing"

	"fairrank/internal/dataset"
	"fairrank/internal/metrics"
	"fairrank/internal/rank"
	"fairrank/internal/synth"
)

// mergeEvaluator builds an evaluator over a cohort whose fairness rows
// are discrete (quantized ENI), so the combo-run partition succeeds and
// the merge path is live.
func mergeEvaluator(t testing.TB, n int) *Evaluator {
	t.Helper()
	cfg := synth.DefaultSchoolConfig()
	cfg.N = n
	cfg.Seed = 41
	cfg.ENILevels = 11 // tenths: few hundred combos on a small cohort
	d, err := synth.GenerateSchool(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ev := NewEvaluator(d, rank.WeightedSum{Weights: synth.SchoolScoreWeights()}, rank.Beneficial)
	if _, ok := ev.RunStats(); !ok {
		t.Fatal("quantized school cohort built no combo runs")
	}
	return ev
}

// TestMergeRouting pins the crossover policy through the counter hooks:
// eligible prefix requests go to the combo-run merge (MergeCount moves,
// RankingCount does not); heterogeneous cohorts and large-k requests
// keep the full-scan route.
func TestMergeRouting(t *testing.T) {
	bonus := []float64{2, 11, 10.5, 12.5}

	t.Run("eligible small-k goes to merge", func(t *testing.T) {
		ev := mergeEvaluator(t, 4000)
		r0, m0 := ev.RankingCount(), ev.MergeCount()
		if _, err := ev.Select(bonus, 0.05); err != nil {
			t.Fatal(err)
		}
		if got := ev.RankingCount() - r0; got != 0 {
			t.Errorf("small-k select performed %d full rankings, want 0", got)
		}
		if got := ev.MergeCount() - m0; got != 1 {
			t.Errorf("small-k select performed %d merges, want 1", got)
		}
	})

	t.Run("large-k keeps the full-scan route", func(t *testing.T) {
		ev := mergeEvaluator(t, 4000)
		r0, m0 := ev.RankingCount(), ev.MergeCount()
		if _, err := ev.Select(bonus, 0.9); err != nil { // p > 3n/4
			t.Fatal(err)
		}
		if got := ev.MergeCount() - m0; got != 0 {
			t.Errorf("large-k select performed %d merges, want 0", got)
		}
		if got := ev.RankingCount() - r0; got != 1 {
			t.Errorf("large-k select performed %d full rankings, want 1", got)
		}
	})

	t.Run("heterogeneous cohort never merges", func(t *testing.T) {
		// Nearly one distinct fairness row per object: the partition is
		// within the construction cap, but runs of ~1 member fail the
		// g*4 <= n eligibility gate.
		n := 400
		b := dataset.NewBuilder([]string{"s"}, []string{"f"})
		rng := rand.New(rand.NewSource(5))
		for i := 0; i < n; i++ {
			b.Add([]float64{rng.Float64() * 100}, []float64{float64(i) / float64(n-1)})
		}
		d, err := b.Build()
		if err != nil {
			t.Fatal(err)
		}
		ev := NewEvaluator(d, rank.Column{Index: 0}, rank.Beneficial)
		if st, ok := ev.RunStats(); !ok || st.Runs*4 <= n {
			t.Fatalf("cohort not heterogeneous enough: stats %+v ok=%v", st, ok)
		}
		m0, r0 := ev.MergeCount(), ev.RankingCount()
		if _, err := ev.Select([]float64{3}, 0.05); err != nil {
			t.Fatal(err)
		}
		if got := ev.MergeCount() - m0; got != 0 {
			t.Errorf("heterogeneous select performed %d merges, want 0", got)
		}
		if got := ev.RankingCount() - r0; got != 1 {
			t.Errorf("heterogeneous select performed %d full rankings, want 1", got)
		}
	})

	t.Run("zero bonus is free on every route", func(t *testing.T) {
		ev := mergeEvaluator(t, 4000)
		r0, m0 := ev.RankingCount(), ev.MergeCount()
		if _, err := ev.Select(nil, 0.05); err != nil {
			t.Fatal(err)
		}
		if ev.RankingCount() != r0 || ev.MergeCount() != m0 {
			t.Errorf("zero-bonus select moved the counters (rankings %d→%d, merges %d→%d)",
				r0, ev.RankingCount(), m0, ev.MergeCount())
		}
	})
}

// TestMergeSelectDifferential pins the merge-served selection prefix
// bit-identical to the full sort's leading segment across fractions,
// polarities, and sparse bonuses on a merge-eligible cohort.
func TestMergeSelectDifferential(t *testing.T) {
	ev := mergeEvaluator(t, 3000)
	bonuses := [][]float64{
		{2, 11, 10.5, 12.5},
		{0, 7, 0, 0},
		{-3, 2, -1, 4},
	}
	for _, bonus := range bonuses {
		full := ev.Order(bonus) // always the full-sort path
		for _, k := range []float64{0.001, 0.05, 0.33, 0.74} {
			cnt, err := rank.SelectCount(ev.Dataset().N(), k)
			if err != nil {
				t.Fatal(err)
			}
			sel, err := ev.Select(bonus, k)
			if err != nil {
				t.Fatal(err)
			}
			for r := range sel {
				if sel[r] != full[r] {
					t.Fatalf("bonus %v k=%g: rank %d: merge=%d full=%d", bonus, k, r, sel[r], full[r])
				}
			}
			if len(sel) != cnt {
				t.Fatalf("bonus %v k=%g: %d selected, want %d", bonus, k, len(sel), cnt)
			}
		}
	}
}

// TestMergeNDCGDifferential pins the prefix-DCG ndcgWS rewrite against
// the whole-ranking metrics.NDCGAtFrac fold on the merge path.
func TestMergeNDCGDifferential(t *testing.T) {
	ev := mergeEvaluator(t, 3000)
	bonus := []float64{2, 11, 10.5, 12.5}
	full := ev.Order(bonus)
	for _, k := range []float64{0.01, 0.05, 0.5, 1} {
		got, err := ev.NDCG(bonus, k)
		if err != nil {
			t.Fatal(err)
		}
		want, err := metrics.NDCGAtFrac(ev.BaseScores(), full, ev.origOrd, k)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Errorf("k=%g: NDCG=%v, full-ranking reference %v (not bit-identical)", k, got, want)
		}
	}
}

// TestMergeCounterfactualDifferential pins the RankOf-based batch path
// against the full-ranking counterfactualsWS on every field, and
// asserts the batch actually took the merge route.
func TestMergeCounterfactualDifferential(t *testing.T) {
	ev := mergeEvaluator(t, 3000)
	n := ev.Dataset().N()
	bonus := []float64{2, 11, 10.5, 12.5}
	for _, k := range []float64{0.01, 0.05, 0.25} {
		cnt, err := rank.SelectCount(n, k)
		if err != nil {
			t.Fatal(err)
		}
		objs := make([]int, 0, 17)
		for i := 0; i <= 16; i++ {
			objs = append(objs, (i*n)/17)
		}
		m0 := ev.MergeCount()
		got, err := ev.CounterfactualBatch(bonus, k, objs)
		if err != nil {
			t.Fatal(err)
		}
		if ev.MergeCount() == m0 {
			t.Fatalf("k=%g: batch did not take the merge route", k)
		}
		ws := ev.ws()
		order, err := ev.orderWS(context.Background(), ws, bonus)
		if err != nil {
			t.Fatal(err)
		}
		want := ev.counterfactualsWS(ws, order, bonus, cnt, objs)
		ev.put(ws)
		for r := range want {
			if !reflect.DeepEqual(got[r], want[r]) {
				t.Errorf("k=%g obj %d: merge %+v, full %+v", k, objs[r], got[r], want[r])
			}
		}
	}
}
