package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"fairrank/internal/dataset"
	"fairrank/internal/metrics"
	"fairrank/internal/rank"
)

// TestTheorem41SwapProperty verifies the paper's Theorem 4.1: at any Full
// DCA step, if removing object q from the top-k and replacing it with
// object p (outside the top-k) would reduce the overall disparity, then the
// step allocates more bonus points to p than to q.
//
// The per-object bonus-score delta of the update B ← B - L·D is
// -L * (D · F_i), so the claim is equivalent to D · (F_p - F_q) < 0
// whenever the swap reduces ||D||. The test checks the implication on
// random populations and selections.
func TestTheorem41SwapProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 20 + rng.Intn(80)
		dims := 1 + rng.Intn(4)
		fair := make([][]float64, dims)
		for j := range fair {
			col := make([]float64, n)
			for i := range col {
				if rng.Float64() < 0.4 {
					col[i] = 1
				}
			}
			fair[j] = col
		}
		score := make([]float64, n)
		for i := range score {
			score[i] = rng.NormFloat64()
		}
		names := make([]string, dims)
		for j := range names {
			names[j] = "f" + string(rune('a'+j))
		}
		d, err := dataset.New([]string{"s"}, names, [][]float64{score}, fair, nil)
		if err != nil {
			return false
		}

		k := 1 + rng.Intn(n/2)
		sel := rank.TopK(score, k)
		inTop := make([]bool, n)
		for _, i := range sel {
			inTop[i] = true
		}
		pop := d.FairCentroid()
		disp := metrics.DisparityAgainst(d, sel, pop)
		baseNorm := metrics.Norm(disp)

		fp := make([]float64, dims)
		fq := make([]float64, dims)
		// Try a handful of (p out, q in) pairs.
		for trial := 0; trial < 20; trial++ {
			p := rng.Intn(n)
			if inTop[p] {
				continue
			}
			q := sel[rng.Intn(k)]
			// Disparity after swapping q -> p.
			swapped := make([]int, 0, k)
			for _, i := range sel {
				if i != q {
					swapped = append(swapped, i)
				}
			}
			swapped = append(swapped, p)
			newNorm := metrics.Norm(metrics.DisparityAgainst(d, swapped, pop))
			if newNorm < baseNorm-1e-12 {
				// The swap reduces disparity; Theorem 4.1 demands that the
				// Full DCA step favors p: D · (F_p - F_q) < 0.
				d.FairRow(p, fp)
				d.FairRow(q, fq)
				dot := 0.0
				for j := range fp {
					dot += disp[j] * (fp[j] - fq[j])
				}
				if dot >= 0 {
					t.Logf("seed=%d n=%d k=%d: swap reduces norm (%v -> %v) but D·(Fp-Fq)=%v",
						seed, n, k, baseNorm, newNorm, dot)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// TestFullDCAReducesDisparity checks that the whole-dataset variant
// converges on a small synthetic population.
func TestFullDCAReducesDisparity(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	n := 4000
	fairCol := make([]float64, n)
	scoreCol := make([]float64, n)
	for i := 0; i < n; i++ {
		if rng.Float64() < 0.3 {
			fairCol[i] = 1
		}
		scoreCol[i] = 50 + 10*rng.NormFloat64() - 6*fairCol[i]
	}
	d, err := dataset.New([]string{"s"}, []string{"f"}, [][]float64{scoreCol}, [][]float64{fairCol}, nil)
	if err != nil {
		t.Fatal(err)
	}
	scorer := rank.WeightedSum{Weights: []float64{1}}
	opts := DefaultOptions()
	res, err := FullDCA(d, scorer, DisparityObjective(0.1), opts)
	if err != nil {
		t.Fatal(err)
	}
	ev := NewEvaluator(d, scorer, rank.Beneficial)
	before, err := ev.Disparity(nil, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	after, err := ev.Disparity(res.Bonus, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if metrics.Norm(after) > metrics.Norm(before)/3 {
		t.Errorf("FullDCA norm %v -> %v: insufficient reduction (bonus %v)",
			metrics.Norm(before), metrics.Norm(after), res.Bonus)
	}
	// The bonus should roughly recover the 6-point structural penalty.
	if res.Bonus[0] < 3 || res.Bonus[0] > 10 {
		t.Errorf("FullDCA bonus = %v, want ≈ 6", res.Bonus[0])
	}
}
