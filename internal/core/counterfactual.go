package core

import (
	"context"
	"fmt"
	"math"

	"fairrank/internal/engine"
	"fairrank/internal/metrics"
	"fairrank/internal/rank"
)

// Counterfactual answers, for one object, the question the paper's
// transparency framing invites every applicant to ask: "how far am I from
// the published cutoff, and what is the smallest change that would flip my
// outcome?" Because bonus points enter the effective score additively
// (Definition 2), the answer is exactly computable from the ranked order:
// the flip is decided against a single boundary competitor, and the
// minimal delta is found by a bit-level binary search between the object's
// effective score and the published cutoff.
type Counterfactual struct {
	// Object is the absolute object id the counterfactual explains.
	Object int
	// Selected reports whether the object is in the top-k selection under
	// the audited bonus vector.
	Selected bool
	// Rank is the object's position in the ranked order (0 = best).
	Rank int
	// Effective is the object's effective (bonus-adjusted) score.
	Effective float64
	// Cutoff is the effective score of the boundary competitor the flip is
	// decided against: the last selected object when entering, the first
	// excluded object when exiting.
	Cutoff float64
	// Competitor is that boundary object's id.
	Competitor int
	// ScoreDelta is the minimal signed change to the object's effective
	// score that flips Selected — positive to enter the selection, negative
	// to leave it. Minimality is exact at float64 resolution: applying
	// ScoreDelta flips the selection, and no smaller-magnitude float64
	// does (see TestCounterfactualConsistency).
	ScoreDelta float64
	// BonusDelta is ScoreDelta expressed in bonus points — the change to
	// the object's total awarded bonus A_f(o)·B that achieves ScoreDelta.
	// Under Adverse polarity bonus points are subtracted from the score,
	// so BonusDelta = -ScoreDelta there (more points pull the object out
	// of an adverse selection).
	BonusDelta float64
	// PerAttribute[j] is the change to published bonus B_j that would hand
	// this object BonusDelta through attribute j alone:
	// BonusDelta / A_f(o)_j. Zero marks attributes the object is not a
	// member of (no change to that attribute's bonus can move it). This is
	// the individual reading — "how many more points on attribute j would
	// this object have needed" — not a policy change, which would move
	// every group member; see Evaluator.AttributeDisparity for the
	// group-level view.
	PerAttribute []float64
	// Feasible is false when no score change can flip the object: the
	// selection covers the whole population, so nobody can enter or leave.
	Feasible bool
}

// Attribution is the group-level companion of Counterfactual: a
// leave-one-attribute-out decomposition of the disparity reduction the
// bonus vector buys. Each attribute's bonus is zeroed in turn (the other
// entries kept), and the resulting disparity norm shows what that
// attribute's compensation contributes to the whole policy.
type Attribution struct {
	// K is the selection fraction attributed.
	K float64
	// FairNames are the fairness attribute names, aligned with Bonus,
	// LeaveOneOut and Contribution.
	FairNames []string
	// Bonus is the attributed bonus vector (copied).
	Bonus []float64
	// NormBase is the disparity norm of the uncompensated selection and
	// NormFull the norm under the full bonus vector; Reduction is their
	// difference — the total effect the policy is being credited for.
	NormBase  float64
	NormFull  float64
	Reduction float64
	// LeaveOneOut[j] is the disparity norm with attribute j's bonus zeroed
	// and every other entry kept.
	LeaveOneOut []float64
	// Contribution[j] = LeaveOneOut[j] - NormFull: how much worse the
	// disparity norm gets when attribute j's compensation is withdrawn.
	// Contributions need not sum to Reduction — overlapping group
	// memberships interact — which is exactly what the decomposition
	// surfaces.
	Contribution []float64
}

// checkBonusDims validates a bonus vector's dimensionality; nil means the
// zero vector and is always valid.
func (e *Evaluator) checkBonusDims(bonus []float64) error {
	if bonus != nil && len(bonus) != e.d.NumFair() {
		return fmt.Errorf("core: bonus has %d dimensions, dataset has %d", len(bonus), e.d.NumFair())
	}
	return nil
}

// Counterfactual computes the minimal score and bonus change that flips
// one object's selection under the bonus vector at fraction k. For several
// objects use CounterfactualBatch, which ranks once.
func (e *Evaluator) Counterfactual(bonus []float64, k float64, obj int) (Counterfactual, error) {
	out, err := e.CounterfactualBatch(bonus, k, []int{obj})
	if err != nil {
		return Counterfactual{}, err
	}
	return out[0], nil
}

// CounterfactualBatch computes counterfactuals for every listed object in
// one pass: the population is ranked once (through a pooled engine
// workspace, like every evaluator path), and each object is then answered
// in O(64) comparisons against its boundary competitor — the binary search
// runs over float64 bit patterns, so the returned delta is the smallest
// representable change that flips the selection. The only allocations are
// the result slice and one backing array for the per-attribute rows.
func (e *Evaluator) CounterfactualBatch(bonus []float64, k float64, objs []int) ([]Counterfactual, error) {
	return e.CounterfactualBatchCtx(context.Background(), bonus, k, objs)
}

// CounterfactualBatchCtx is CounterfactualBatch with cooperative
// cancellation: the single ranking pass behind the batch aborts at its
// next checkpoint once ctx is done and the context's error is returned.
func (e *Evaluator) CounterfactualBatchCtx(ctx context.Context, bonus []float64, k float64, objs []int) ([]Counterfactual, error) {
	if err := e.checkBonusDims(bonus); err != nil {
		return nil, err
	}
	n := e.d.N()
	for _, obj := range objs {
		if obj < 0 || obj >= n {
			return nil, fmt.Errorf("core: object %d outside [0,%d)", obj, n)
		}
	}
	cnt, err := rank.SelectCount(n, k)
	if err != nil {
		return nil, err
	}

	ws := e.ws()
	defer e.put(ws)
	out, ok, err := e.counterfactualBatchMerge(ctx, ws, bonus, cnt, objs)
	if err != nil {
		return nil, err
	}
	if ok {
		return out, nil
	}
	order, err := e.orderWS(ctx, ws, bonus)
	if err != nil {
		return nil, err
	}
	return e.counterfactualsWS(ws, order, bonus, cnt, objs), nil
}

// counterfactualBatchMerge answers a counterfactual batch with no
// population-wide pass at all: the boundary competitors come off a
// merged prefix of cnt+1 positions (O(cnt·log g)), and each object's
// rank and effective score from per-run binary searches
// (ComboRuns.RankOf, O(g·log(n/g)) per object) — the exact rank every
// run contributes is the count of members outranking the object under
// the same total order the full sort realizes. ok is false when the
// merge cannot serve the batch — no run structure, a heterogeneous
// cohort or oversized prefix (mergeEligible), a zero bonus (the cached
// base order already answers that for free), or non-finite offsets —
// and the caller falls back to the full-ranking path. A non-nil error
// (cancellation mid-merge) means the batch must be abandoned, not
// retried on the fallback path.
func (e *Evaluator) counterfactualBatchMerge(ctx context.Context, ws *engine.Workspace, bonus []float64, cnt int, objs []int) ([]Counterfactual, bool, error) {
	n := e.d.N()
	p := cnt
	if cnt < n {
		p = cnt + 1 // the first excluded object is a boundary competitor too
	}
	if isZero(bonus) || !e.mergeEligible(p) {
		return nil, false, nil
	}
	ms := ws.Merge()
	eff := ws.Eff(n)
	order, ok, err := e.runs.MergeTopKIntoCtx(ctx, bonus, e.pol, p, ms, ws.Ord(p), eff)
	if err != nil {
		return nil, false, err
	}
	if !ok {
		return nil, false, nil
	}
	e.merges.Add(1)
	out, ok := e.counterfactualsMergeWS(ws, order, bonus, cnt, objs)
	return out, ok, nil
}

// counterfactualsMergeWS answers every listed object against a merged
// prefix order, which must have been produced by MergeTopKIntoCtx on the
// same workspace and cover at least the boundary competitors (positions
// cnt-1 and, when cnt < n, cnt). Each object's rank and effective score
// come from per-run binary searches (ComboRuns.RankOf, O(g·log(n/g)) per
// object) against the offsets the merge left in the workspace scratch —
// the exact rank every run contributes is the count of members
// outranking the object under the same total order the full sort
// realizes. Both the per-request merge batch and the cross-request
// shared pass (AnswerBatchCtx) finish through it, so their results are
// bit-identical by construction. ok is false only for non-finite
// offsets, unreachable after a merge validated them.
func (e *Evaluator) counterfactualsMergeWS(ws *engine.Workspace, order []int, bonus []float64, cnt int, objs []int) ([]Counterfactual, bool) {
	n := e.d.N()
	ms := ws.Merge()
	eff := ws.Eff(n)
	dims := e.d.NumFair()
	sign := e.pol.Sign()
	backing := make([]float64, len(objs)*dims)
	out := make([]Counterfactual, len(objs))
	for r, obj := range objs {
		pos, effObj, ok := e.runs.RankOf(obj, bonus, e.pol, ms)
		if !ok {
			return nil, false
		}
		cf := Counterfactual{
			Object:       obj,
			Rank:         pos,
			Effective:    effObj,
			Selected:     pos < cnt,
			PerAttribute: backing[r*dims : (r+1)*dims : (r+1)*dims],
		}
		if cf.Selected {
			if cnt == n {
				cf.Competitor = -1
				out[r] = cf
				continue
			}
			cf.Competitor = order[cnt]
		} else {
			cf.Competitor = order[cnt-1]
		}
		cf.Cutoff = eff[cf.Competitor]
		e.finishCounterfactual(&cf, sign)
		out[r] = cf
	}
	return out, true
}

// CounterfactualWindow computes counterfactuals for the boundary window of
// the selection — the m last selected and m first excluded objects, in
// rank order — from a single ranking. This is the audit-bundle margin
// workload: the window ids come off the same sorted order the
// counterfactuals are answered from, so the whole call pays one ranking.
func (e *Evaluator) CounterfactualWindow(bonus []float64, k float64, m int) ([]Counterfactual, error) {
	if err := e.checkBonusDims(bonus); err != nil {
		return nil, err
	}
	if m < 0 {
		return nil, fmt.Errorf("core: window size %d is negative", m)
	}
	cnt, err := rank.SelectCount(e.d.N(), k)
	if err != nil {
		return nil, err
	}
	lo := cnt - m
	if lo < 0 {
		lo = 0
	}
	hi := cnt + m
	if hi > e.d.N() {
		hi = e.d.N()
	}
	ws := e.ws()
	defer e.put(ws)
	// Only the leading hi positions are ever read (window ids, ranks, and
	// boundary competitors all live there), so a ranked prefix suffices —
	// it is bit-identical to the full order's leading segment.
	order, err := e.rankedPrefixWS(context.Background(), ws, bonus, hi)
	if err != nil {
		return nil, err
	}
	return e.counterfactualsWS(ws, order, bonus, cnt, order[lo:hi]), nil
}

// counterfactualsWS answers every listed object against the ranked order,
// which must have been produced by orderWS or rankedPrefixWS on the same
// workspace; a prefix order is sufficient as long as it covers every
// listed object and the boundary competitors (positions cnt-1 and, when
// cnt < n, cnt). objs may alias order (CounterfactualWindow passes a
// slice of it); the inverse permutation is built before any result is
// written, and nothing below mutates either buffer.
func (e *Evaluator) counterfactualsWS(ws *engine.Workspace, order []int, bonus []float64, cnt int, objs []int) []Counterfactual {
	n := e.d.N()
	// orderWS/rankedPrefixWS fill the workspace effective-score buffer
	// only for a non-zero bonus; the zero vector ranks by the cached base
	// scores.
	eff := e.base
	if !isZero(bonus) {
		eff = ws.Eff(n)
	}
	// Invert the permutation so Rank lookups are O(1); the abs buffer is
	// unused by the ranking path.
	inv := ws.Abs(n)
	for pos, o := range order {
		inv[o] = pos
	}

	dims := e.d.NumFair()
	sign := e.pol.Sign()
	backing := make([]float64, len(objs)*dims)
	out := make([]Counterfactual, len(objs))
	for r, obj := range objs {
		cf := Counterfactual{
			Object:       obj,
			Rank:         inv[obj],
			Effective:    eff[obj],
			Selected:     inv[obj] < cnt,
			PerAttribute: backing[r*dims : (r+1)*dims : (r+1)*dims],
		}
		if cf.Selected {
			// A selected object leaves only by dropping below the first
			// excluded object; with k covering everyone there is none.
			if cnt == n {
				cf.Competitor = -1
				out[r] = cf
				continue
			}
			cf.Competitor = order[cnt]
		} else {
			cf.Competitor = order[cnt-1]
		}
		cf.Cutoff = eff[cf.Competitor]
		e.finishCounterfactual(&cf, sign)
		out[r] = cf
	}
	return out
}

// finishCounterfactual computes the minimal flip delta and the
// per-attribute readings of a counterfactual whose identity fields
// (Object, Rank, Effective, Selected, Competitor, Cutoff, PerAttribute
// backing) are already set. Both the full-ranking and the merge batch
// paths go through it, so their results are bit-identical by
// construction. Feasible stays false when no finite delta flips (an
// overflowed score landed at ±Inf): the object is reported unflippable
// rather than emitting a non-finite delta that JSON cannot carry.
func (e *Evaluator) finishCounterfactual(cf *Counterfactual, sign float64) {
	delta, ok := minFlipDelta(cf.Effective, cf.Cutoff, cf.Object, cf.Competitor, cf.Selected)
	if !ok {
		return
	}
	cf.Feasible = true
	cf.ScoreDelta = delta
	cf.BonusDelta = sign * cf.ScoreDelta
	for j := 0; j < e.d.NumFair(); j++ {
		if a := e.d.Fair(cf.Object, j); a > 0 {
			cf.PerAttribute[j] = cf.BonusDelta / a
		}
	}
}

// flips reports whether moving the object's effective score to s flips it
// relative to the boundary competitor, under the evaluator's exact
// tie-break (higher score wins, ties go to the lower index). For a
// selected object the flip is falling below the first excluded object; for
// an unselected object it is overtaking the last selected one.
func flips(s, cutoff float64, obj, competitor int, selected bool) bool {
	if selected {
		return cutoff > s || (cutoff == s && competitor < obj)
	}
	return s > cutoff || (s == cutoff && obj < competitor)
}

// minFlipDelta finds the minimal-magnitude signed float64 delta d such
// that the object's effective score moved to eff+d flips its selection.
// The flip predicate is monotone in the delta's magnitude, and
// non-negative float64 values are order-isomorphic to their bit patterns,
// so a binary search over the bit space finds the exact minimal
// representable delta in at most 63 probes. This is the "binary search
// over the published cutoff" of the audit workload: no closed form is
// trusted, only the same comparison the ranking itself performs.
//
// ok is false when no finite delta flips the object — possible only when
// an effective score overflowed to ±Inf, where adding MaxFloat64 cannot
// cross the cutoff.
func minFlipDelta(eff, cutoff float64, obj, competitor int, selected bool) (d float64, ok bool) {
	dir := 1.0 // unselected objects enter by gaining score
	if selected {
		dir = -1 // selected objects leave by losing score
	}
	probe := func(m float64) bool {
		return flips(eff+dir*m, cutoff, obj, competitor, selected)
	}
	if probe(0) {
		return 0, true // already flipped — cannot happen for a consistent ranking
	}
	hi := math.Float64bits(math.MaxFloat64)
	if !probe(math.MaxFloat64) {
		return 0, false
	}
	var lo uint64 // probe(0) is false
	for hi-lo > 1 {
		mid := lo + (hi-lo)/2
		if probe(math.Float64frombits(mid)) {
			hi = mid
		} else {
			lo = mid
		}
	}
	return dir * math.Float64frombits(hi), true
}

// AttributeDisparity decomposes the disparity reduction of a bonus vector
// at fraction k by leaving each attribute's bonus out in turn. All
// dims+2 evaluations (zero vector, full vector, one leave-one-out vector
// per attribute) run through DisparitySweep, so distinct vectors fan over
// the worker pool and duplicates — an attribute whose bonus is already
// zero leaves the vector unchanged — are ranked only once.
func (e *Evaluator) AttributeDisparity(bonus []float64, k float64) (*Attribution, error) {
	if err := e.checkBonusDims(bonus); err != nil {
		return nil, err
	}
	dims := e.d.NumFair()
	points := make([]SweepPoint, dims+2)
	points[0] = SweepPoint{Bonus: nil, K: k}
	points[1] = SweepPoint{Bonus: bonus, K: k}
	looBacking := make([]float64, dims*dims)
	for j := 0; j < dims; j++ {
		loo := looBacking[j*dims : (j+1)*dims]
		copy(loo, bonus)
		loo[j] = 0
		points[2+j] = SweepPoint{Bonus: loo, K: k}
	}
	vecs, err := e.DisparitySweep(points)
	if err != nil {
		return nil, err
	}
	att := &Attribution{
		K:            k,
		FairNames:    e.d.FairNames(),
		Bonus:        append([]float64(nil), bonus...),
		NormBase:     metrics.Norm(vecs[0]),
		NormFull:     metrics.Norm(vecs[1]),
		LeaveOneOut:  make([]float64, dims),
		Contribution: make([]float64, dims),
	}
	att.Reduction = att.NormBase - att.NormFull
	for j := 0; j < dims; j++ {
		att.LeaveOneOut[j] = metrics.Norm(vecs[2+j])
		att.Contribution[j] = att.LeaveOneOut[j] - att.NormFull
	}
	return att, nil
}
