package core

import (
	"fmt"

	"fairrank/internal/dataset"
	"fairrank/internal/metrics"
	"fairrank/internal/rank"
)

// Evaluator measures the effect of a bonus vector on a full dataset. It
// precomputes the base scores, the uncompensated ranking (the nDCG ideal),
// and the population centroid so repeated evaluations — parameter sweeps
// across k, bonus scalings, per-figure series — stay cheap.
type Evaluator struct {
	d        *dataset.Dataset
	pol      rank.Polarity
	base     []float64
	origOrd  []int
	centroid []float64
	all      []int
}

// NewEvaluator builds an evaluator for the dataset under the given ranking
// function and polarity.
func NewEvaluator(d *dataset.Dataset, scorer rank.Scorer, pol rank.Polarity) *Evaluator {
	base := scorer.BaseScores(d)
	all := make([]int, d.N())
	for i := range all {
		all[i] = i
	}
	return &Evaluator{
		d:        d,
		pol:      pol,
		base:     base,
		origOrd:  rank.Order(base),
		centroid: d.FairCentroid(),
		all:      all,
	}
}

// Dataset returns the underlying dataset.
func (e *Evaluator) Dataset() *dataset.Dataset { return e.d }

// BaseScores returns the uncompensated scores (do not modify).
func (e *Evaluator) BaseScores() []float64 { return e.base }

// Order returns the full ranking under the given bonus vector (descending
// effective score). A nil or all-zero bonus reproduces the original
// ranking.
func (e *Evaluator) Order(bonus []float64) []int {
	if isZero(bonus) {
		return e.origOrd
	}
	eff := rank.EffectiveScoresAll(e.d, e.base, bonus, e.pol)
	return rank.Order(eff)
}

// Select returns the top-k fraction of the population under the bonus
// vector, in ranked order.
func (e *Evaluator) Select(bonus []float64, k float64) ([]int, error) {
	cnt, err := rank.SelectCount(e.d.N(), k)
	if err != nil {
		return nil, err
	}
	if isZero(bonus) {
		return e.origOrd[:cnt], nil
	}
	eff := rank.EffectiveScoresAll(e.d, e.base, bonus, e.pol)
	return rank.TopK(eff, cnt), nil
}

// Disparity returns the full-population disparity vector of the top-k
// selection under the bonus vector.
func (e *Evaluator) Disparity(bonus []float64, k float64) ([]float64, error) {
	sel, err := e.Select(bonus, k)
	if err != nil {
		return nil, err
	}
	return metrics.DisparityAgainst(e.d, sel, e.centroid), nil
}

// NDCG returns the utility of the compensated ranking at selection
// fraction k, with the uncompensated ranking as the ideal.
func (e *Evaluator) NDCG(bonus []float64, k float64) (float64, error) {
	return metrics.NDCGAtFrac(e.base, e.Order(bonus), e.origOrd, k)
}

// LogDiscounted returns the logarithmically discounted disparity of the
// full ranking under the bonus vector.
func (e *Evaluator) LogDiscounted(bonus []float64, ld metrics.LogDiscount) ([]float64, error) {
	return ld.Eval(e.d, e.Order(bonus))
}

// DisparateImpact returns the scaled disparate-impact vector of the top-k
// selection under the bonus vector.
func (e *Evaluator) DisparateImpact(bonus []float64, k float64) ([]float64, error) {
	sel, err := e.Select(bonus, k)
	if err != nil {
		return nil, err
	}
	return metrics.DisparateImpactWithin(e.d, e.all, sel), nil
}

// FPRDiff returns the per-group FPR difference vector of the top-k
// selection under the bonus vector. The dataset must carry outcomes.
func (e *Evaluator) FPRDiff(bonus []float64, k float64) ([]float64, error) {
	if !e.d.HasOutcomes() {
		return nil, fmt.Errorf("core: FPR evaluation requires outcomes")
	}
	sel, err := e.Select(bonus, k)
	if err != nil {
		return nil, err
	}
	return metrics.FPRDiffWithin(e.d, e.all, sel), nil
}

// FindScaleForNDCG binary-searches the proportional weight w in [0, 1] such
// that applying Scale(bonus, w) reaches the target nDCG at selection
// fraction k (Section VI-A2: "the correct proportion of bonus points to
// apply can be selected through a binary search"). nDCG decreases as w
// grows, so the search brackets the largest w whose nDCG is still at least
// target.
func (e *Evaluator) FindScaleForNDCG(bonus []float64, k, target, granularity float64) (w float64, err error) {
	lo, hi := 0.0, 1.0
	full, err := e.NDCG(Scale(bonus, 1, granularity), k)
	if err != nil {
		return 0, err
	}
	if full >= target {
		return 1, nil
	}
	for iter := 0; iter < 40; iter++ {
		mid := (lo + hi) / 2
		v, err := e.NDCG(Scale(bonus, mid, granularity), k)
		if err != nil {
			return 0, err
		}
		if v >= target {
			lo = mid
		} else {
			hi = mid
		}
	}
	return lo, nil
}

func isZero(b []float64) bool {
	for _, v := range b {
		if v != 0 {
			return false
		}
	}
	return true
}
