package core

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"

	"fairrank/internal/dataset"
	"fairrank/internal/engine"
	"fairrank/internal/faultinject"
	"fairrank/internal/metrics"
	"fairrank/internal/rank"
)

// Evaluator measures the effect of a bonus vector on a full dataset. It
// precomputes the base scores, the uncompensated ranking (the nDCG ideal),
// and the population centroid so repeated evaluations — parameter sweeps
// across k, bonus scalings, per-figure series — stay cheap.
//
// An Evaluator is safe for concurrent use: scratch buffers come from an
// internal pool of engine workspaces, one per active goroutine, and the
// Sweep methods fan their points over a worker pool.
type Evaluator struct {
	d        *dataset.Dataset
	pol      rank.Polarity
	base     []float64
	origOrd  []int
	centroid []float64
	all      []int
	pool     sync.Pool // *engine.Workspace

	// Population constants of the prefix-sweep engine: per-dimension group
	// sizes (attribute > 0.5), and — when outcomes are present — the
	// ground-truth-negative totals overall and per group. They depend only
	// on the dataset, never on a bonus vector or selection fraction.
	groupTot []int
	negTot   []int
	negAll   int

	// runs is the combo-run merge structure: the population partitioned by
	// distinct fairness row, each run pre-sorted by base score at
	// construction, so any cold top-p prefix is an O(p log g) merge instead
	// of an O(n log n) sort (a bonus vector shifts each run by one constant
	// offset and can never reorder it internally). nil when the partition
	// declined — too many distinct rows for the merge to pay off.
	runs *rank.ComboRuns

	// rankings counts the full-population ranking passes the evaluator has
	// performed (score evaluation + ordering; the cached uncompensated
	// order is free and never counted). This is the engine's ranking-count
	// hook: the rank-once tests pin their ranking budgets on deltas of it.
	// merges is its combo-run counterpart: prefix requests answered by the
	// g-way merge, which touches only O(p + g) elements and is therefore
	// never a full-population pass.
	rankings atomic.Int64
	merges   atomic.Int64
}

// NewEvaluator builds an evaluator for the dataset under the given ranking
// function and polarity.
func NewEvaluator(d *dataset.Dataset, scorer rank.Scorer, pol rank.Polarity) *Evaluator {
	base := scorer.BaseScores(d)
	all := make([]int, d.N())
	for i := range all {
		all[i] = i
	}
	e := &Evaluator{
		d:        d,
		pol:      pol,
		base:     base,
		origOrd:  rank.Order(base),
		centroid: d.FairCentroid(),
		all:      all,
		groupTot: make([]int, d.NumFair()),
	}
	for j := range e.groupTot {
		e.groupTot[j] = d.GroupSize(j)
	}
	if d.HasOutcomes() {
		e.negTot = make([]int, d.NumFair())
		cols := d.FairColumns()
		for i := 0; i < d.N(); i++ {
			if d.Outcome(i) {
				continue
			}
			e.negAll++
			for j, col := range cols {
				if col[i] > 0.5 {
					e.negTot[j]++
				}
			}
		}
	}
	e.runs = rank.NewComboRuns(d, base, 0)
	e.pool.New = func() any { return engine.NewWorkspace(d.NumFair()) }
	return e
}

// Dataset returns the underlying dataset.
func (e *Evaluator) Dataset() *dataset.Dataset { return e.d }

// Polarity returns the selection polarity the evaluator was built with.
func (e *Evaluator) Polarity() rank.Polarity { return e.pol }

// BaseScores returns the uncompensated scores (do not modify).
func (e *Evaluator) BaseScores() []float64 { return e.base }

func (e *Evaluator) ws() *engine.Workspace   { return e.pool.Get().(*engine.Workspace) }
func (e *Evaluator) put(w *engine.Workspace) { e.pool.Put(w) }

// RankingCount reports how many full-population ranking passes the
// evaluator has performed so far. Tests assert rank-once invariants by
// taking the difference across a call ("a cold bundle costs at most
// dims+2 rankings"); it is safe to read concurrently.
func (e *Evaluator) RankingCount() int64 { return e.rankings.Load() }

// MergeCount reports how many prefix requests the evaluator has answered
// through the combo-run merge instead of a full-population ranking pass.
// Together with RankingCount it pins the routing: the merge-path tests
// assert a cold 80k bundle performs zero full rankings and exactly its
// per-order budget of merges.
func (e *Evaluator) MergeCount() int64 { return e.merges.Load() }

// RunStats reports the combo-run decomposition statistics (g, run-length
// spread, one-time construction cost). ok is false when the partition
// declined and every request takes the full-sort path.
func (e *Evaluator) RunStats() (rank.RunStats, bool) {
	if e.runs == nil {
		return rank.RunStats{}, false
	}
	return e.runs.Stats(), true
}

// mergeEligible reports whether the combo-run merge should answer a
// prefix request of length p. The merge pays O(g) setup (offsets +
// heapify) and ~log2(g) heap compares per emitted position; the
// full-scan paths pay an O(n) scoring pass plus n·log2(p) bounded-heap
// work (or n·log2(n) for a full sort). The thresholds are
// benchmark-derived (see BENCH_rank.json): a heterogeneous cohort whose
// runs average fewer than ~4 members cannot amortize its heap entries,
// and once the prefix covers most of the population the heavily
// optimized full sort catches the merge's per-position heap work — both
// shapes keep their existing full-scan route, so the merge never
// regresses a worst case.
func (e *Evaluator) mergeEligible(p int) bool {
	if e.runs == nil {
		return false
	}
	n := e.d.N()
	g := e.runs.Runs()
	return g*4 <= n && 4*p <= 3*n
}

// orderWS returns the full ranking under bonus using workspace buffers;
// the result aliases ws (or the cached original order) and must not be
// retained past the workspace. ctx is polled once before the scoring
// pass: one full ranking is the cancellation granularity of this path.
func (e *Evaluator) orderWS(ctx context.Context, ws *engine.Workspace, bonus []float64) ([]int, error) {
	if isZero(bonus) {
		return e.origOrd, nil
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	// EffectiveScores over the cached identity indices takes the unrolled
	// low-dimension dot-product fast path.
	eff := rank.EffectiveScores(e.d, e.base, e.all, bonus, e.pol, ws.Eff(e.d.N()))
	e.rankings.Add(1)
	return rank.OrderInto(eff, ws.Ord(e.d.N())), nil
}

// rankedPrefixWS returns the first p positions of the full ranking under
// bonus (descending effective score, ties by ascending index) using
// workspace buffers; like orderWS, the result aliases ws (or the cached
// original order) and must not be retained past the workspace. When p is
// well below the population size, the prefix comes from a bounded-heap
// selection followed by a sort of just those p indices — O(n log p)
// instead of O(n log n) — and because the ranking comparator is a total
// order, the result is bit-identical to orderWS(ctx, ws, bonus)[:p].
// Cancellation surfaces either from the combo-run merge's amortized
// checkpoint or from the single poll ahead of a full scoring pass; a
// non-nil error means no prefix was produced. The faultinject rank.prefix
// site fires on every non-zero-bonus call, so chaos tests can make each
// ranking pass arbitrarily slow without touching real data.
func (e *Evaluator) rankedPrefixWS(ctx context.Context, ws *engine.Workspace, bonus []float64, p int) ([]int, error) {
	n := e.d.N()
	if isZero(bonus) {
		return e.origOrd[:p], nil
	}
	if err := faultinject.Fire(ctx, faultinject.SiteRankPrefix); err != nil {
		return nil, err
	}
	if e.mergeEligible(p) {
		// Combo-run merge: O(p log g) pops over the pre-sorted runs, no
		// population-wide scoring or sorting at all. The merge fills the
		// workspace effective-score buffer for every emitted id, exactly
		// the entries downstream prefix consumers read. It declines (and
		// falls through to the scan paths) only for non-finite offsets.
		pre, ok, err := e.runs.MergeTopKIntoCtx(ctx, bonus, e.pol, p, ws.Merge(), ws.Ord(p), ws.Eff(n))
		if err != nil {
			return nil, err
		}
		if ok {
			e.merges.Add(1)
			return pre, nil
		}
	}
	if p >= n/2 {
		// Selecting most of the population saves nothing over sorting it.
		ord, err := e.orderWS(ctx, ws, bonus)
		if err != nil {
			return nil, err
		}
		return ord[:p], nil
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	eff := rank.EffectiveScores(e.d, e.base, e.all, bonus, e.pol, ws.Eff(n))
	e.rankings.Add(1)
	pre := rank.TopKHeapInto(eff, p, ws.Ord(p))
	rank.SortRanked(eff, pre)
	return pre, nil
}

// selectWS returns the top-k prefix under bonus; same aliasing rules as
// orderWS. It routes through rankedPrefixWS, so a selection needing only
// the leading cnt positions takes the combo-run merge or bounded-heap
// path instead of a full sort.
func (e *Evaluator) selectWS(ctx context.Context, ws *engine.Workspace, bonus []float64, k float64) ([]int, error) {
	cnt, err := rank.SelectCount(e.d.N(), k)
	if err != nil {
		return nil, err
	}
	return e.rankedPrefixWS(ctx, ws, bonus, cnt)
}

// Order returns the full ranking under the given bonus vector (descending
// effective score). A nil or all-zero bonus reproduces the original
// ranking.
func (e *Evaluator) Order(bonus []float64) []int {
	if isZero(bonus) {
		return e.origOrd
	}
	ws := e.ws()
	defer e.put(ws)
	eff := rank.EffectiveScores(e.d, e.base, e.all, bonus, e.pol, ws.Eff(e.d.N()))
	e.rankings.Add(1)
	return rank.OrderInto(eff, make([]int, e.d.N()))
}

// Select returns the top-k fraction of the population under the bonus
// vector, in ranked order.
func (e *Evaluator) Select(bonus []float64, k float64) ([]int, error) {
	return e.SelectCtx(context.Background(), bonus, k)
}

// SelectCtx is Select with cooperative cancellation.
func (e *Evaluator) SelectCtx(ctx context.Context, bonus []float64, k float64) ([]int, error) {
	ws := e.ws()
	defer e.put(ws)
	sel, err := e.selectWS(ctx, ws, bonus, k)
	if err != nil {
		return nil, err
	}
	out := make([]int, len(sel))
	copy(out, sel)
	return out, nil
}

// disparityInto writes the full-population disparity vector of the top-k
// selection under bonus into dst.
func (e *Evaluator) disparityInto(ctx context.Context, ws *engine.Workspace, bonus []float64, k float64, dst []float64) error {
	sel, err := e.selectWS(ctx, ws, bonus, k)
	if err != nil {
		return err
	}
	e.d.FairCentroidInto(sel, dst)
	for j := range dst {
		dst[j] -= e.centroid[j]
	}
	return nil
}

// Disparity returns the full-population disparity vector of the top-k
// selection under the bonus vector.
func (e *Evaluator) Disparity(bonus []float64, k float64) ([]float64, error) {
	return e.DisparityCtx(context.Background(), bonus, k)
}

// DisparityCtx is Disparity with cooperative cancellation.
func (e *Evaluator) DisparityCtx(ctx context.Context, bonus []float64, k float64) ([]float64, error) {
	ws := e.ws()
	defer e.put(ws)
	out := make([]float64, e.d.NumFair())
	if err := e.disparityInto(ctx, ws, bonus, k, out); err != nil {
		return nil, err
	}
	return out, nil
}

// ndcgWS computes NDCG using workspace buffers. Only the leading cut
// positions of the compensated order contribute to the DCG sum, so the
// order comes from rankedPrefixWS and the value from the same prefix-DCG
// fold the sweep engine runs — bit-identical to
// metrics.NDCGAtFrac(base, fullOrder, origOrd, k), which resolves the
// cut through the identical metrics.PrefixCount arithmetic.
func (e *Evaluator) ndcgWS(ctx context.Context, ws *engine.Workspace, bonus []float64, k float64) (float64, error) {
	cut, err := metrics.PrefixCount(e.d.N(), k)
	if err != nil {
		return 0, err
	}
	order, err := e.rankedPrefixWS(ctx, ws, bonus, cut)
	if err != nil {
		return 0, err
	}
	cuts := ws.Cnts(1)
	cuts[0] = cut
	agg := ws.Agg(2)
	corrected := metrics.PrefixDCGInto(e.base, order, cuts, agg[:1])
	ideal := metrics.PrefixDCGInto(e.base, e.origOrd, cuts, agg[1:])
	if ideal[0] == 0 {
		return 0, metrics.ErrZeroIdealDCG
	}
	return corrected[0] / ideal[0], nil
}

// NDCG returns the utility of the compensated ranking at selection
// fraction k, with the uncompensated ranking as the ideal.
func (e *Evaluator) NDCG(bonus []float64, k float64) (float64, error) {
	return e.NDCGCtx(context.Background(), bonus, k)
}

// NDCGCtx is NDCG with cooperative cancellation.
func (e *Evaluator) NDCGCtx(ctx context.Context, bonus []float64, k float64) (float64, error) {
	ws := e.ws()
	defer e.put(ws)
	return e.ndcgWS(ctx, ws, bonus, k)
}

// LogDiscounted returns the logarithmically discounted disparity of the
// full ranking under the bonus vector.
func (e *Evaluator) LogDiscounted(bonus []float64, ld metrics.LogDiscount) ([]float64, error) {
	ws := e.ws()
	defer e.put(ws)
	ord, err := e.orderWS(context.Background(), ws, bonus)
	if err != nil {
		return nil, err
	}
	return ld.Eval(e.d, ord)
}

// DisparateImpact returns the scaled disparate-impact vector of the top-k
// selection under the bonus vector.
func (e *Evaluator) DisparateImpact(bonus []float64, k float64) ([]float64, error) {
	ws := e.ws()
	defer e.put(ws)
	sel, err := e.selectWS(context.Background(), ws, bonus, k)
	if err != nil {
		return nil, err
	}
	out := make([]float64, e.d.NumFair())
	return metrics.DisparateImpactWithinInto(e.d, e.all, sel, ws.Marks(e.d.N()), out), nil
}

// FPRDiff returns the per-group FPR difference vector of the top-k
// selection under the bonus vector. The dataset must carry outcomes.
func (e *Evaluator) FPRDiff(bonus []float64, k float64) ([]float64, error) {
	if !e.d.HasOutcomes() {
		return nil, fmt.Errorf("core: FPR evaluation requires outcomes")
	}
	ws := e.ws()
	defer e.put(ws)
	sel, err := e.selectWS(context.Background(), ws, bonus, k)
	if err != nil {
		return nil, err
	}
	out := make([]float64, e.d.NumFair())
	return metrics.FPRDiffWithinInto(e.d, e.all, sel, ws.Marks(e.d.N()), out), nil
}

// parallel fans n point evaluations over the engine worker pool, each
// goroutine holding one pooled workspace for its whole share of the work.
func (e *Evaluator) parallel(n int, fn func(ws *engine.Workspace, i int)) {
	engine.ForEachWS(n, e.ws, e.put, fn)
}

// parallelCtx is parallel with cooperative cancellation: once ctx is
// done, no further index is dispatched and the context's error is
// returned after in-flight tasks finish.
func (e *Evaluator) parallelCtx(ctx context.Context, n int, fn func(ws *engine.Workspace, i int)) error {
	return engine.ForEachWSCtx(ctx, n, e.ws, e.put, fn)
}

// scaleProbes interior points per multisection round shrink the bracket by
// a factor of scaleProbes+1; 18 rounds of 4 probes reach a bracket below
// 2^-41, finer than the 40 bisection steps they replace.
const (
	scaleProbes = 4
	scaleRounds = 18
)

// FindScaleForNDCG searches for the proportional weight w in [0, 1] such
// that applying Scale(bonus, w) reaches the target nDCG at selection
// fraction k (Section VI-A2: "the correct proportion of bonus points to
// apply can be selected through a binary search"). nDCG decreases as w
// grows, so the search brackets the largest w whose nDCG is still at least
// target. Each round evaluates its interior probe points through
// NDCGSweep, which groups probes whose granularity-rounded vectors
// coincide — common in late rounds, when the bracket is narrower than the
// granularity — so every distinct scaled vector is ranked exactly once per
// round. The probe count is fixed, so the result is deterministic
// regardless of parallelism.
func (e *Evaluator) FindScaleForNDCG(bonus []float64, k, target, granularity float64) (w float64, err error) {
	full, err := e.NDCG(Scale(bonus, 1, granularity), k)
	if err != nil {
		return 0, err
	}
	if full >= target {
		return 1, nil
	}
	lo, hi := 0.0, 1.0
	probes := make([]SweepPoint, scaleProbes)
	for round := 0; round < scaleRounds; round++ {
		width := hi - lo
		for i := range probes {
			p := lo + width*float64(i+1)/float64(scaleProbes+1)
			probes[i] = SweepPoint{Bonus: Scale(bonus, p, granularity), K: k}
		}
		vals, err := e.NDCGSweep(probes)
		if err != nil {
			return 0, err
		}
		// Keep the rightmost sub-bracket whose left end still meets the
		// target: [probe_m, probe_m+1) with m the largest passing probe.
		m := -1
		for i := 0; i < scaleProbes; i++ {
			if vals[i] >= target {
				m = i
			}
		}
		newLo := lo
		if m >= 0 {
			newLo = lo + width*float64(m+1)/float64(scaleProbes+1)
		}
		hi = lo + width*float64(m+2)/float64(scaleProbes+1)
		lo = newLo
	}
	return lo, nil
}

func isZero(b []float64) bool {
	for _, v := range b {
		if v != 0 {
			return false
		}
	}
	return true
}
