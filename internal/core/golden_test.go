package core

import (
	"strconv"
	"testing"

	"fairrank/internal/rank"
	"fairrank/internal/synth"
)

// The engine refactor (workspace buffers, bound objectives, shared descent
// loop) must not change a single bit of any trained vector: these hex
// goldens were captured from the pre-engine implementation on a fixed
// synthetic cohort and pin Run, CoreDCA, FullDCA, the log-discounted and
// capped variants, and the ensemble aggregation exactly.

func goldenDataset(t *testing.T) (*synth.SchoolConfig, rank.Scorer) {
	t.Helper()
	cfg := synth.DefaultSchoolConfig()
	cfg.N = 4000
	cfg.Seed = 99
	return &cfg, rank.WeightedSum{Weights: synth.SchoolScoreWeights()}
}

func hexVec(strs []string) []float64 {
	out := make([]float64, len(strs))
	for i, s := range strs {
		v, err := strconv.ParseFloat(s, 64)
		if err != nil {
			panic(err)
		}
		out[i] = v
	}
	return out
}

func requireExact(t *testing.T, label string, got []float64, wantHex []string) {
	t.Helper()
	want := hexVec(wantHex)
	if len(got) != len(want) {
		t.Fatalf("%s: got %d dims, want %d", label, len(got), len(want))
	}
	for j := range want {
		if got[j] != want[j] {
			t.Errorf("%s[%d] = %s, want %s (not bit-identical)",
				label, j, strconv.FormatFloat(got[j], 'x', -1, 64), wantHex[j])
		}
	}
}

func TestGoldenBitIdentical(t *testing.T) {
	cfg, scorer := goldenDataset(t)
	d, err := synth.GenerateSchool(*cfg)
	if err != nil {
		t.Fatal(err)
	}
	opts := DefaultOptions()
	opts.Seed = 7

	run, err := Run(d, scorer, DisparityObjective(0.05), opts)
	if err != nil {
		t.Fatal(err)
	}
	requireExact(t, "Run.Raw", run.Raw,
		[]string{"0x1.0664043f94e33p+01", "0x1.5fcbfaed779c1p+03", "0x1.59f7a2e3064f6p+03", "0x1.828679e03e8efp+03"})
	requireExact(t, "Run.CoreBonus", run.CoreBonus,
		[]string{"0x1.51d453524a383p+01", "0x1.3b206acba3f7ap+03", "0x1.2fbdbbd4e3892p+03", "0x1.8169c6cad4b61p+03"})
	requireExact(t, "Run.Bonus", run.Bonus,
		[]string{"0x1p+01", "0x1.6p+03", "0x1.6p+03", "0x1.8p+03"})

	coreRes, err := CoreDCA(d, scorer, DisparityObjective(0.05), opts)
	if err != nil {
		t.Fatal(err)
	}
	requireExact(t, "CoreDCA.Raw", coreRes.Raw,
		[]string{"0x1.51d453524a383p+01", "0x1.3b206acba3f7ap+03", "0x1.2fbdbbd4e3892p+03", "0x1.8169c6cad4b61p+03"})

	full, err := FullDCA(d, scorer, DisparityObjective(0.05), opts)
	if err != nil {
		t.Fatal(err)
	}
	requireExact(t, "FullDCA.Raw", full.Raw,
		[]string{"0x1.2b0ee5f54f8b6p+01", "0x1.41a1d9cc0cd2bp+03", "0x1.2917603a3daddp+03", "0x1.7eac8a94c37fbp+03"})

	ld, err := Run(d, scorer, LogDiscountedDisparity(0.1, 0.5), opts)
	if err != nil {
		t.Fatal(err)
	}
	requireExact(t, "LogDiscounted.Raw", ld.Raw,
		[]string{"0x1.0cdae287b6868p+01", "0x1.1d3fc411f1f8p+03", "0x1.e8354888c11fcp+02", "0x1.3d744c6fe953cp+03"})

	capped := opts
	capped.MaxBonus = 3
	cp, err := Run(d, scorer, DisparityObjective(0.10), capped)
	if err != nil {
		t.Fatal(err)
	}
	requireExact(t, "Capped.Raw", cp.Raw,
		[]string{"0x1.8p+01", "0x1.8p+01", "0x1.8p+01", "0x1.8p+01"})
}

func TestGoldenEnsembleBitIdentical(t *testing.T) {
	cfg, scorer := goldenDataset(t)
	d, err := synth.GenerateSchool(*cfg)
	if err != nil {
		t.Fatal(err)
	}
	opts := DefaultOptions()
	opts.Seed = 7
	ens, err := Ensemble(d, scorer, DisparityObjective(0.05), opts, 4)
	if err != nil {
		t.Fatal(err)
	}
	requireExact(t, "Ensemble.Mean", ens.Mean,
		[]string{"0x1.010814898c614p+01", "0x1.611fa4a7d0636p+03", "0x1.56037e3c3bbb7p+03", "0x1.81563ba5f3801p+03"})
	requireExact(t, "Ensemble.Std", ens.Std,
		[]string{"0x1.7f38c6cf013d4p-05", "0x1.4aaa5b387724fp-04", "0x1.8b26984b5b115p-03", "0x1.4ad3565c67e72p-04"})
}

// TestTrainerReuseMatchesOneShot pins the workspace-reuse contract: a
// Trainer run twice (buffers warm) must reproduce the one-shot result
// exactly, and FullDCA through a reused Trainer must match the package
// function.
func TestTrainerReuseMatchesOneShot(t *testing.T) {
	cfg, scorer := goldenDataset(t)
	d, err := synth.GenerateSchool(*cfg)
	if err != nil {
		t.Fatal(err)
	}
	opts := DefaultOptions()
	opts.Seed = 11
	obj := DisparityObjective(0.05)

	oneShot, err := Run(d, scorer, obj, opts)
	if err != nil {
		t.Fatal(err)
	}
	tr := NewTrainer(d, scorer)
	if _, err := tr.Train(obj, opts); err != nil { // warm the buffers
		t.Fatal(err)
	}
	warm, err := tr.Train(obj, opts)
	if err != nil {
		t.Fatal(err)
	}
	for j := range oneShot.Raw {
		if warm.Raw[j] != oneShot.Raw[j] {
			t.Fatalf("warm Trainer Raw = %v, one-shot = %v", warm.Raw, oneShot.Raw)
		}
	}

	fullPkg, err := FullDCA(d, scorer, obj, opts)
	if err != nil {
		t.Fatal(err)
	}
	fullWarm, err := tr.TrainFull(obj, opts)
	if err != nil {
		t.Fatal(err)
	}
	for j := range fullPkg.Raw {
		if fullWarm.Raw[j] != fullPkg.Raw[j] {
			t.Fatalf("warm TrainFull Raw = %v, package FullDCA = %v", fullWarm.Raw, fullPkg.Raw)
		}
	}
}
