package core

import (
	"fmt"
	"strconv"
	"testing"

	"fairrank/internal/rank"
	"fairrank/internal/synth"
)

// The engine refactor (workspace buffers, bound objectives, shared descent
// loop) must not change a single bit of any trained vector: these hex
// goldens were captured from the pre-engine implementation on a fixed
// synthetic cohort and pin Run, CoreDCA, FullDCA, the log-discounted and
// capped variants, and the ensemble aggregation exactly.

func goldenDataset(t *testing.T) (*synth.SchoolConfig, rank.Scorer) {
	t.Helper()
	cfg := synth.DefaultSchoolConfig()
	cfg.N = 4000
	cfg.Seed = 99
	// The goldens were captured before the generator learned to round ENI
	// onto the published grid; keep this cohort continuous so every hex
	// value below stays valid. (This also exercises the full-sort path:
	// a continuous attribute defeats the combo-run partition, so these
	// bit-exact pins cover the code the merge falls back to.)
	cfg.ENILevels = 0
	return &cfg, rank.WeightedSum{Weights: synth.SchoolScoreWeights()}
}

func hexVec(strs []string) []float64 {
	out := make([]float64, len(strs))
	for i, s := range strs {
		v, err := strconv.ParseFloat(s, 64)
		if err != nil {
			panic(err)
		}
		out[i] = v
	}
	return out
}

func requireExact(t *testing.T, label string, got []float64, wantHex []string) {
	t.Helper()
	want := hexVec(wantHex)
	if len(got) != len(want) {
		t.Fatalf("%s: got %d dims, want %d", label, len(got), len(want))
	}
	for j := range want {
		if got[j] != want[j] {
			t.Errorf("%s[%d] = %s, want %s (not bit-identical)",
				label, j, strconv.FormatFloat(got[j], 'x', -1, 64), wantHex[j])
		}
	}
}

func TestGoldenBitIdentical(t *testing.T) {
	cfg, scorer := goldenDataset(t)
	d, err := synth.GenerateSchool(*cfg)
	if err != nil {
		t.Fatal(err)
	}
	opts := DefaultOptions()
	opts.Seed = 7

	run, err := Run(d, scorer, DisparityObjective(0.05), opts)
	if err != nil {
		t.Fatal(err)
	}
	requireExact(t, "Run.Raw", run.Raw,
		[]string{"0x1.0664043f94e33p+01", "0x1.5fcbfaed779c1p+03", "0x1.59f7a2e3064f6p+03", "0x1.828679e03e8efp+03"})
	requireExact(t, "Run.CoreBonus", run.CoreBonus,
		[]string{"0x1.51d453524a383p+01", "0x1.3b206acba3f7ap+03", "0x1.2fbdbbd4e3892p+03", "0x1.8169c6cad4b61p+03"})
	requireExact(t, "Run.Bonus", run.Bonus,
		[]string{"0x1p+01", "0x1.6p+03", "0x1.6p+03", "0x1.8p+03"})

	coreRes, err := CoreDCA(d, scorer, DisparityObjective(0.05), opts)
	if err != nil {
		t.Fatal(err)
	}
	requireExact(t, "CoreDCA.Raw", coreRes.Raw,
		[]string{"0x1.51d453524a383p+01", "0x1.3b206acba3f7ap+03", "0x1.2fbdbbd4e3892p+03", "0x1.8169c6cad4b61p+03"})

	full, err := FullDCA(d, scorer, DisparityObjective(0.05), opts)
	if err != nil {
		t.Fatal(err)
	}
	requireExact(t, "FullDCA.Raw", full.Raw,
		[]string{"0x1.2b0ee5f54f8b6p+01", "0x1.41a1d9cc0cd2bp+03", "0x1.2917603a3daddp+03", "0x1.7eac8a94c37fbp+03"})

	ld, err := Run(d, scorer, LogDiscountedDisparity(0.1, 0.5), opts)
	if err != nil {
		t.Fatal(err)
	}
	requireExact(t, "LogDiscounted.Raw", ld.Raw,
		[]string{"0x1.0cdae287b6868p+01", "0x1.1d3fc411f1f8p+03", "0x1.e8354888c11fcp+02", "0x1.3d744c6fe953cp+03"})

	capped := opts
	capped.MaxBonus = 3
	cp, err := Run(d, scorer, DisparityObjective(0.10), capped)
	if err != nil {
		t.Fatal(err)
	}
	requireExact(t, "Capped.Raw", cp.Raw,
		[]string{"0x1.8p+01", "0x1.8p+01", "0x1.8p+01", "0x1.8p+01"})
}

func TestGoldenEnsembleBitIdentical(t *testing.T) {
	cfg, scorer := goldenDataset(t)
	d, err := synth.GenerateSchool(*cfg)
	if err != nil {
		t.Fatal(err)
	}
	opts := DefaultOptions()
	opts.Seed = 7
	ens, err := Ensemble(d, scorer, DisparityObjective(0.05), opts, 4)
	if err != nil {
		t.Fatal(err)
	}
	requireExact(t, "Ensemble.Mean", ens.Mean,
		[]string{"0x1.010814898c614p+01", "0x1.611fa4a7d0636p+03", "0x1.56037e3c3bbb7p+03", "0x1.81563ba5f3801p+03"})
	requireExact(t, "Ensemble.Std", ens.Std,
		[]string{"0x1.7f38c6cf013d4p-05", "0x1.4aaa5b387724fp-04", "0x1.8b26984b5b115p-03", "0x1.4ad3565c67e72p-04"})
}

// TestGoldenSweepBitIdentical pins the prefix-sweep engine two ways: the
// evaluation metrics of the golden trained vector are frozen as hex
// goldens (captured from the pointwise evaluators), and the sweep engine —
// which ranks once per bonus vector and answers every k from prefix
// aggregates — must reproduce each of them bit for bit at every point of
// a duplicated, unsorted k-grid.
func TestGoldenSweepBitIdentical(t *testing.T) {
	cfg, scorer := goldenDataset(t)
	d, err := synth.GenerateSchool(*cfg)
	if err != nil {
		t.Fatal(err)
	}
	opts := DefaultOptions()
	opts.Seed = 7
	run, err := Run(d, scorer, DisparityObjective(0.05), opts)
	if err != nil {
		t.Fatal(err)
	}
	ev := NewEvaluator(d, scorer, rank.Beneficial)

	goldens := []struct {
		k    float64
		disp []string
		ndcg string
		di   []string
	}{
		{0.01,
			[]string{"0x1.0b4395810625p-04", "-0x1.e353f7ced9168p-05", "-0x1.af33090c030cp-06", "-0x1.a2d0e56041894p-04"},
			"0x1.edf3159b2e447p-01",
			[]string{"0x1.1a984296a2d12p-02", "-0x1.23b94b47923b9p-01", "-0x1.83af96894aaecp-03", "-0x1.1f9bdd430cd56p-01"}},
		{0.05,
			[]string{"0x1.4fdf3b645a1cp-07", "-0x1.26e978d4fdf38p-07", "-0x1.17329663960cp-06", "-0x1.26e978d4fdf4p-09"},
			"0x1.eaddde3400207p-01",
			[]string{"0x1.7f3e22a10eefp-05", "-0x1.77c7a20e177c8p-04", "-0x1.5d40b08a1973p-03", "-0x1.c7ac75b73804p-07"}},
		{0.5,
			[]string{"0x1.28f5c28f5c29p-05", "0x1.ba5e353f7cedcp-06", "0x1.d507eaf1668cp-07", "0x1.83126e978d4fcp-05"},
			"0x1.f0d86c83f10adp-01",
			[]string{"0x1.469fa65206a1p-03", "0x1.c853f6df99c88p-03", "0x1.55b586e41c3ep-04", "0x1.e62d4f597e4e4p-03"}},
	}

	// A duplicated, unsorted grid over the golden cuts: the sweep engine
	// must answer every occurrence identically.
	var points []SweepPoint
	for _, i := range []int{1, 0, 2, 1, 2, 0, 1} {
		points = append(points, SweepPoint{Bonus: run.Bonus, K: goldens[i].k})
	}
	disp, err := ev.DisparitySweep(points)
	if err != nil {
		t.Fatal(err)
	}
	ndcg, err := ev.NDCGSweep(points)
	if err != nil {
		t.Fatal(err)
	}
	di, err := ev.DisparateImpactSweep(points)
	if err != nil {
		t.Fatal(err)
	}
	for p, i := range []int{1, 0, 2, 1, 2, 0, 1} {
		g := goldens[i]
		label := fmt.Sprintf("sweep[%d] (k=%g)", p, g.k)
		requireExact(t, label+".disparity", disp[p], g.disp)
		requireExact(t, label+".ndcg", []float64{ndcg[p]}, []string{g.ndcg})
		requireExact(t, label+".di", di[p], g.di)

		// And the pointwise path answers the same goldens.
		pd, err := ev.Disparity(run.Bonus, g.k)
		if err != nil {
			t.Fatal(err)
		}
		pn, err := ev.NDCG(run.Bonus, g.k)
		if err != nil {
			t.Fatal(err)
		}
		pi, err := ev.DisparateImpact(run.Bonus, g.k)
		if err != nil {
			t.Fatal(err)
		}
		requireExact(t, label+".pointwise.disparity", pd, g.disp)
		requireExact(t, label+".pointwise.ndcg", []float64{pn}, []string{g.ndcg})
		requireExact(t, label+".pointwise.di", pi, g.di)
	}
}

// TestGoldenFPRSweepMatchesPointwise pins FPRDiffSweep against the
// pointwise FPRDiff on an outcome-bearing synthetic cohort under adverse
// polarity, bit for bit.
func TestGoldenFPRSweepMatchesPointwise(t *testing.T) {
	cfg := synth.DefaultCompasConfig()
	cfg.N = 4000
	cfg.Seed = 99
	d, err := synth.GenerateCompas(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ev := NewEvaluator(d, rank.WeightedSum{Weights: synth.CompasScoreWeights()}, rank.Adverse)
	bonus := make([]float64, d.NumFair())
	for j := range bonus {
		bonus[j] = 0.5 * float64(j+1)
	}
	points := []SweepPoint{{Bonus: bonus, K: 0.2}, {Bonus: bonus, K: 0.05}, {Bonus: nil, K: 0.2}, {Bonus: bonus, K: 1}}
	got, err := ev.FPRDiffSweep(points)
	if err != nil {
		t.Fatal(err)
	}
	for p, pt := range points {
		want, err := ev.FPRDiff(pt.Bonus, pt.K)
		if err != nil {
			t.Fatal(err)
		}
		for j := range want {
			if got[p][j] != want[j] {
				t.Errorf("point %d (k=%g) dim %d: sweep FPR %v != pointwise %v (not bit-identical)",
					p, pt.K, j, got[p][j], want[j])
			}
		}
	}
}

// TestTrainerReuseMatchesOneShot pins the workspace-reuse contract: a
// Trainer run twice (buffers warm) must reproduce the one-shot result
// exactly, and FullDCA through a reused Trainer must match the package
// function.
func TestTrainerReuseMatchesOneShot(t *testing.T) {
	cfg, scorer := goldenDataset(t)
	d, err := synth.GenerateSchool(*cfg)
	if err != nil {
		t.Fatal(err)
	}
	opts := DefaultOptions()
	opts.Seed = 11
	obj := DisparityObjective(0.05)

	oneShot, err := Run(d, scorer, obj, opts)
	if err != nil {
		t.Fatal(err)
	}
	tr := NewTrainer(d, scorer)
	if _, err := tr.Train(obj, opts); err != nil { // warm the buffers
		t.Fatal(err)
	}
	warm, err := tr.Train(obj, opts)
	if err != nil {
		t.Fatal(err)
	}
	for j := range oneShot.Raw {
		if warm.Raw[j] != oneShot.Raw[j] {
			t.Fatalf("warm Trainer Raw = %v, one-shot = %v", warm.Raw, oneShot.Raw)
		}
	}

	fullPkg, err := FullDCA(d, scorer, obj, opts)
	if err != nil {
		t.Fatal(err)
	}
	fullWarm, err := tr.TrainFull(obj, opts)
	if err != nil {
		t.Fatal(err)
	}
	for j := range fullPkg.Raw {
		if fullWarm.Raw[j] != fullPkg.Raw[j] {
			t.Fatalf("warm TrainFull Raw = %v, package FullDCA = %v", fullWarm.Raw, fullPkg.Raw)
		}
	}
}
