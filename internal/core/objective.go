package core

import (
	"fmt"
	"strings"

	"fairrank/internal/dataset"
	"fairrank/internal/engine"
	"fairrank/internal/metrics"
	"fairrank/internal/rank"
)

// Objective measures the unfairness of a ranking outcome on a sample. Eval
// receives the sample (absolute object indices into the dataset) together
// with the effective, bonus-adjusted scores aligned with that sample, and
// returns a vector with one dimension per fairness attribute in [-1, 1]
// (0 = parity). DCA drives this vector toward zero.
type Objective interface {
	Eval(d *dataset.Dataset, sampleIdx []int, eff []float64) ([]float64, error)
	Name() string
}

// PrefixMetric computes a fairness vector for one selected prefix of a
// sample. sampleIdx is the whole sample, selIdx ⊆ sampleIdx the selection;
// both hold absolute object indices. Implementations must return one
// dimension per fairness attribute, each in [-1, 1] with 0 at parity.
type PrefixMetric interface {
	EvalPrefix(d *dataset.Dataset, sampleIdx, selIdx []int) []float64
	MetricName() string
}

// PrefixMetricInto is the in-place variant of PrefixMetric: EvalPrefixInto
// writes the fairness vector into dst (length NumFair) drawing every
// intermediate buffer from ws, so a call allocates nothing. All metrics in
// this package implement it; third-party metrics that do not are adapted
// through their allocating EvalPrefix.
type PrefixMetricInto interface {
	PrefixMetric
	EvalPrefixInto(ws *engine.Workspace, d *dataset.Dataset, sampleIdx, selIdx []int, dst []float64)
}

// Binder is implemented by objectives that support the engine's one-time
// bind stage: Bind performs every dataset validation Eval would (outcome
// presence, evaluation points) exactly once and returns an allocation-free
// bound form, so no validation error can surface mid-run after a
// successful bind.
type Binder interface {
	Bind(d *dataset.Dataset) (engine.Objective, error)
}

// BindObjective binds obj to d for repeated evaluation through the engine.
// Objectives implementing Binder get their allocation-free bound form; any
// other Objective is adapted by copying its Eval result — correct, but
// allocating per step.
func BindObjective(obj Objective, d *dataset.Dataset) (engine.Objective, error) {
	if b, ok := obj.(Binder); ok {
		return b.Bind(d)
	}
	return legacyBound{obj: obj, d: d}, nil
}

// legacyBound adapts a plain Objective to the engine interface.
type legacyBound struct {
	obj Objective
	d   *dataset.Dataset
}

// Name implements engine.Objective.
func (l legacyBound) Name() string { return l.obj.Name() }

// EvalInto implements engine.Objective.
func (l legacyBound) EvalInto(_ *engine.Workspace, sampleIdx []int, eff []float64, dst []float64) error {
	v, err := l.obj.Eval(l.d, sampleIdx, eff)
	if err != nil {
		return err
	}
	return copyObjectiveVec(dst, v, l.obj.Name())
}

// copyObjectiveVec copies a measured objective vector into the engine's
// accumulator, failing loudly on a dimension mismatch — a silent partial
// copy would leave stale values from the previous step in the tail.
func copyObjectiveVec(dst, v []float64, name string) error {
	if len(v) != len(dst) {
		return fmt.Errorf("core: objective %s returned %d dimensions, dataset has %d", name, len(v), len(dst))
	}
	copy(dst, v)
	return nil
}

// DisparityMetric is the paper's primary metric: the disparity vector of
// Definition 3 computed within the sample.
type DisparityMetric struct{}

// MetricName implements PrefixMetric.
func (DisparityMetric) MetricName() string { return "disparity" }

// EvalPrefix implements PrefixMetric.
func (DisparityMetric) EvalPrefix(d *dataset.Dataset, sampleIdx, selIdx []int) []float64 {
	return metrics.DisparityWithin(d, sampleIdx, selIdx)
}

// EvalPrefixInto implements PrefixMetricInto.
func (DisparityMetric) EvalPrefixInto(ws *engine.Workspace, d *dataset.Dataset, sampleIdx, selIdx []int, dst []float64) {
	metrics.DisparityWithinInto(d, sampleIdx, selIdx, ws.Pop(), dst)
}

// DisparateImpactMetric is the scaled disparate impact of Section VI-C5.
// Only meaningful for binary fairness attributes.
type DisparateImpactMetric struct{}

// MetricName implements PrefixMetric.
func (DisparateImpactMetric) MetricName() string { return "disparate-impact" }

// EvalPrefix implements PrefixMetric.
func (DisparateImpactMetric) EvalPrefix(d *dataset.Dataset, sampleIdx, selIdx []int) []float64 {
	return metrics.DisparateImpactWithin(d, sampleIdx, selIdx)
}

// EvalPrefixInto implements PrefixMetricInto.
func (DisparateImpactMetric) EvalPrefixInto(ws *engine.Workspace, d *dataset.Dataset, sampleIdx, selIdx []int, dst []float64) {
	metrics.DisparateImpactWithinInto(d, sampleIdx, selIdx, ws.Marks(d.N()), dst)
}

// FPRMetric is the per-group false positive rate difference (the
// equalized-odds extension used on COMPAS, Figure 10b). Datasets must
// carry ground-truth outcomes.
type FPRMetric struct{}

// outcomeDependent marks metrics that are undefined on datasets without
// ground-truth outcomes; the objective wrappers reject such datasets
// eagerly instead of silently optimizing a zero vector.
type outcomeDependent interface {
	requiresOutcomes()
}

func (FPRMetric) requiresOutcomes() {}

func checkOutcomes(d *dataset.Dataset, m PrefixMetric) error {
	if _, ok := m.(outcomeDependent); ok && !d.HasOutcomes() {
		return fmt.Errorf("core: objective %s requires a dataset with outcomes", m.MetricName())
	}
	return nil
}

// MetricName implements PrefixMetric.
func (FPRMetric) MetricName() string { return "fpr-diff" }

// EvalPrefix implements PrefixMetric.
func (FPRMetric) EvalPrefix(d *dataset.Dataset, sampleIdx, selIdx []int) []float64 {
	return metrics.FPRDiffWithin(d, sampleIdx, selIdx)
}

// EvalPrefixInto implements PrefixMetricInto.
func (FPRMetric) EvalPrefixInto(ws *engine.Workspace, d *dataset.Dataset, sampleIdx, selIdx []int, dst []float64) {
	metrics.FPRDiffWithinInto(d, sampleIdx, selIdx, ws.Marks(d.N()), dst)
}

// AtK optimizes a prefix metric at a single known selection fraction K.
type AtK struct {
	K      float64
	Metric PrefixMetric
}

// DisparityObjective returns the paper's default objective: disparity of
// the top-k selection.
func DisparityObjective(k float64) AtK { return AtK{K: k, Metric: DisparityMetric{}} }

// DisparateImpactObjective returns the disparate-impact objective at k.
func DisparateImpactObjective(k float64) AtK { return AtK{K: k, Metric: DisparateImpactMetric{}} }

// FPRObjective returns the false-positive-rate objective at k.
func FPRObjective(k float64) AtK { return AtK{K: k, Metric: FPRMetric{}} }

// Name implements Objective.
func (o AtK) Name() string { return fmt.Sprintf("%s@%g", o.Metric.MetricName(), o.K) }

// Eval implements Objective.
func (o AtK) Eval(d *dataset.Dataset, sampleIdx []int, eff []float64) ([]float64, error) {
	if err := checkOutcomes(d, o.Metric); err != nil {
		return nil, err
	}
	sel, err := topAbs(sampleIdx, eff, o.K)
	if err != nil {
		return nil, err
	}
	return o.Metric.EvalPrefix(d, sampleIdx, sel), nil
}

// Bind implements Binder: outcome and selection-fraction validation
// happens here, once, instead of on every descent step.
func (o AtK) Bind(d *dataset.Dataset) (engine.Objective, error) {
	if err := checkOutcomes(d, o.Metric); err != nil {
		return nil, err
	}
	if err := rank.CheckFraction(o.K); err != nil {
		return nil, err
	}
	b := &boundAtK{AtK: o, d: d}
	b.into, _ = o.Metric.(PrefixMetricInto)
	return b, nil
}

// boundAtK is the allocation-free bound form of AtK.
type boundAtK struct {
	AtK
	d    *dataset.Dataset
	into PrefixMetricInto // nil when the metric only supports EvalPrefix
}

// EvalInto implements engine.Objective. The bounded-heap selection and the
// sample→absolute index mapping run entirely in workspace buffers; the
// heap insertion sequence matches topAbs exactly, so the measured vector
// is bit-identical to the legacy Eval path.
func (o *boundAtK) EvalInto(ws *engine.Workspace, sampleIdx []int, eff []float64, dst []float64) error {
	cnt, err := rank.SelectCount(len(sampleIdx), o.K)
	if err != nil {
		return err
	}
	pos := rank.TopKHeapInto(eff, cnt, ws.Sel(cnt))
	abs := ws.Abs(len(pos))
	for r, p := range pos {
		abs[r] = sampleIdx[p]
	}
	if o.into != nil {
		o.into.EvalPrefixInto(ws, o.d, sampleIdx, abs, dst)
		return nil
	}
	return copyObjectiveVec(dst, o.Metric.EvalPrefix(o.d, sampleIdx, abs), o.Metric.MetricName())
}

// LogDiscounted optimizes a prefix metric over the whole ranking with the
// logarithmic discounting of Section IV-E: the objective becomes
// (1/Z) Σ_i metric(prefix_i) / log2(i+1) over the evaluation fractions in
// Points, weighting small selections (early ranks) more. It is the mode
// for applications where the selection size is unknown at
// bonus-assignment time, such as school matching waitlists.
type LogDiscounted struct {
	Points []float64
	Metric PrefixMetric
}

// LogDiscountedDisparity returns the log-discounted disparity objective
// evaluated at {step, 2*step, ..., maxK} (paper default step = 0.10).
func LogDiscountedDisparity(step, maxK float64) LogDiscounted {
	return LogDiscounted{Points: metrics.DefaultPoints(step, maxK), Metric: DisparityMetric{}}
}

// Name implements Objective.
func (o LogDiscounted) Name() string {
	if len(o.Points) == 0 {
		return fmt.Sprintf("logdisc-%s(empty)", o.Metric.MetricName())
	}
	return fmt.Sprintf("logdisc-%s@%g..%g", o.Metric.MetricName(), o.Points[0], o.Points[len(o.Points)-1])
}

// Eval implements Objective.
func (o LogDiscounted) Eval(d *dataset.Dataset, sampleIdx []int, eff []float64) ([]float64, error) {
	if len(o.Points) == 0 {
		return nil, fmt.Errorf("core: log-discounted objective with no evaluation points")
	}
	if err := checkOutcomes(d, o.Metric); err != nil {
		return nil, err
	}
	order := rank.Order(eff)
	abs := make([]int, len(order))
	for r, p := range order {
		abs[r] = sampleIdx[p]
	}
	ld := metrics.LogDiscount{Points: o.Points}
	dims := d.NumFair()
	acc := make([]float64, dims)
	var z float64
	for _, f := range o.Points {
		cnt, err := rank.SelectCount(len(abs), f)
		if err != nil {
			return nil, err
		}
		w := ld.Weight(f)
		z += w
		v := o.Metric.EvalPrefix(d, abs, abs[:cnt])
		for j := range acc {
			acc[j] += w * v[j]
		}
	}
	for j := range acc {
		acc[j] /= z
	}
	return acc, nil
}

// Bind implements Binder: the evaluation points and outcome requirements
// are validated here, once, instead of on every descent step.
func (o LogDiscounted) Bind(d *dataset.Dataset) (engine.Objective, error) {
	if len(o.Points) == 0 {
		return nil, fmt.Errorf("core: log-discounted objective with no evaluation points")
	}
	for _, f := range o.Points {
		if err := rank.CheckFraction(f); err != nil {
			return nil, err
		}
	}
	if err := checkOutcomes(d, o.Metric); err != nil {
		return nil, err
	}
	b := &boundLogDiscounted{LogDiscounted: o, d: d, ld: metrics.LogDiscount{Points: o.Points}}
	b.into, _ = o.Metric.(PrefixMetricInto)
	return b, nil
}

// boundLogDiscounted is the allocation-free bound form of LogDiscounted.
type boundLogDiscounted struct {
	LogDiscounted
	d    *dataset.Dataset
	ld   metrics.LogDiscount
	into PrefixMetricInto // nil when the metric only supports EvalPrefix
}

// EvalInto implements engine.Objective. The full-sample ordering, the
// absolute index mapping and every per-prefix metric vector live in
// workspace buffers; the accumulation order matches the legacy Eval path,
// so results are bit-identical.
func (o *boundLogDiscounted) EvalInto(ws *engine.Workspace, sampleIdx []int, eff []float64, dst []float64) error {
	order := rank.OrderInto(eff, ws.Ord(len(eff)))
	abs := ws.Abs(len(order))
	for r, p := range order {
		abs[r] = sampleIdx[p]
	}
	for j := range dst {
		dst[j] = 0
	}
	tmp := ws.Metric()
	var z float64
	for _, f := range o.Points {
		cnt, err := rank.SelectCount(len(abs), f)
		if err != nil {
			return err
		}
		w := o.ld.Weight(f)
		z += w
		if o.into != nil {
			o.into.EvalPrefixInto(ws, o.d, abs, abs[:cnt], tmp)
		} else if err := copyObjectiveVec(tmp, o.Metric.EvalPrefix(o.d, abs, abs[:cnt]), o.Metric.MetricName()); err != nil {
			return err
		}
		for j := range dst {
			dst[j] += w * tmp[j]
		}
	}
	for j := range dst {
		dst[j] /= z
	}
	return nil
}

// ObjectiveNames lists the objective names understood by ObjectiveByName,
// in documentation order.
func ObjectiveNames() []string { return []string{"disparity", "logdisc", "di", "fpr"} }

// ObjectiveByName constructs the named objective at selection fraction k.
// It is the single source of truth for the textual objective names shared
// by cmd/dca and the fairrankd service, so both surfaces accept the same
// vocabulary and fail the same way on an unknown name or a bad fraction —
// before any dataset is loaded.
func ObjectiveByName(name string, k float64) (Objective, error) {
	if err := rank.CheckFraction(k); err != nil {
		return nil, err
	}
	switch name {
	case "disparity":
		return DisparityObjective(k), nil
	case "logdisc":
		step := 0.1
		if k < step {
			step = k // ensure at least one evaluation point
		}
		return LogDiscountedDisparity(step, k), nil
	case "di":
		return DisparateImpactObjective(k), nil
	case "fpr":
		return FPRObjective(k), nil
	}
	return nil, fmt.Errorf("core: unknown objective %q (want one of %s)", name, strings.Join(ObjectiveNames(), ", "))
}

// topAbs selects the top fraction k of the sample by effective score and
// returns absolute object indices.
func topAbs(sampleIdx []int, eff []float64, k float64) ([]int, error) {
	cnt, err := rank.SelectCount(len(sampleIdx), k)
	if err != nil {
		return nil, err
	}
	pos := rank.TopKHeap(eff, cnt)
	abs := make([]int, len(pos))
	for r, p := range pos {
		abs[r] = sampleIdx[p]
	}
	return abs, nil
}
