// Package core implements the paper's primary contribution: the Disparity
// Compensation Algorithm (DCA).
//
// DCA searches for a vector of compensatory bonus points B >= 0 that, when
// combined with the fairness attributes of each object
// (f_b(o) = f(o) ± A_f·B, Definition 2), minimizes the L2 norm of a
// fairness objective vector. The search cannot use gradients — top-k
// selection makes the objective a step function — so DCA descends along the
// objective vector itself, evaluated on small random samples:
//
//   - CoreDCA (Algorithm 1): a ladder of decreasing learning rates; each
//     step draws a fresh sample, measures the objective of the top-k
//     selection under the current bonus vector, and moves the vector
//     against it.
//   - Refine (Algorithm 2): Adam-driven steps on epoch samples followed by
//     a rolling average of the iterates and rounding to a stakeholder
//     granularity.
//   - Run: the full pipeline (Core + Refine + rounding) the paper calls
//     "DCA".
//   - FullDCA: the whole-dataset variant of Section IV-C, which satisfies
//     the swap guarantee of Theorem 4.1 and is used to validate the sampled
//     algorithm.
//
// The objective is pluggable (Section VI-C5). Any PrefixMetric — a
// fairness vector of a selected prefix, one dimension per fairness
// attribute, bounded in [-1, 1] and zero at parity — can be optimized at a
// fixed selection fraction or under the logarithmic discounting of
// Section IV-E, which covers every combination the paper evaluates:
// disparity@k, log-discounted disparity, disparate impact, and false
// positive rate differences.
package core

import (
	"fmt"

	"fairrank/internal/dataset"
	"fairrank/internal/metrics"
	"fairrank/internal/rank"
)

// Objective measures the unfairness of a ranking outcome on a sample. Eval
// receives the sample (absolute object indices into the dataset) together
// with the effective, bonus-adjusted scores aligned with that sample, and
// returns a vector with one dimension per fairness attribute in [-1, 1]
// (0 = parity). DCA drives this vector toward zero.
type Objective interface {
	Eval(d *dataset.Dataset, sampleIdx []int, eff []float64) ([]float64, error)
	Name() string
}

// PrefixMetric computes a fairness vector for one selected prefix of a
// sample. sampleIdx is the whole sample, selIdx ⊆ sampleIdx the selection;
// both hold absolute object indices. Implementations must return one
// dimension per fairness attribute, each in [-1, 1] with 0 at parity.
type PrefixMetric interface {
	EvalPrefix(d *dataset.Dataset, sampleIdx, selIdx []int) []float64
	MetricName() string
}

// DisparityMetric is the paper's primary metric: the disparity vector of
// Definition 3 computed within the sample.
type DisparityMetric struct{}

// MetricName implements PrefixMetric.
func (DisparityMetric) MetricName() string { return "disparity" }

// EvalPrefix implements PrefixMetric.
func (DisparityMetric) EvalPrefix(d *dataset.Dataset, sampleIdx, selIdx []int) []float64 {
	return metrics.DisparityWithin(d, sampleIdx, selIdx)
}

// DisparateImpactMetric is the scaled disparate impact of Section VI-C5.
// Only meaningful for binary fairness attributes.
type DisparateImpactMetric struct{}

// MetricName implements PrefixMetric.
func (DisparateImpactMetric) MetricName() string { return "disparate-impact" }

// EvalPrefix implements PrefixMetric.
func (DisparateImpactMetric) EvalPrefix(d *dataset.Dataset, sampleIdx, selIdx []int) []float64 {
	return metrics.DisparateImpactWithin(d, sampleIdx, selIdx)
}

// FPRMetric is the per-group false positive rate difference (the
// equalized-odds extension used on COMPAS, Figure 10b). Datasets must
// carry ground-truth outcomes.
type FPRMetric struct{}

// outcomeDependent marks metrics that are undefined on datasets without
// ground-truth outcomes; the objective wrappers reject such datasets
// eagerly instead of silently optimizing a zero vector.
type outcomeDependent interface {
	requiresOutcomes()
}

func (FPRMetric) requiresOutcomes() {}

func checkOutcomes(d *dataset.Dataset, m PrefixMetric) error {
	if _, ok := m.(outcomeDependent); ok && !d.HasOutcomes() {
		return fmt.Errorf("core: objective %s requires a dataset with outcomes", m.MetricName())
	}
	return nil
}

// MetricName implements PrefixMetric.
func (FPRMetric) MetricName() string { return "fpr-diff" }

// EvalPrefix implements PrefixMetric.
func (FPRMetric) EvalPrefix(d *dataset.Dataset, sampleIdx, selIdx []int) []float64 {
	return metrics.FPRDiffWithin(d, sampleIdx, selIdx)
}

// AtK optimizes a prefix metric at a single known selection fraction K.
type AtK struct {
	K      float64
	Metric PrefixMetric
}

// DisparityObjective returns the paper's default objective: disparity of
// the top-k selection.
func DisparityObjective(k float64) AtK { return AtK{K: k, Metric: DisparityMetric{}} }

// DisparateImpactObjective returns the disparate-impact objective at k.
func DisparateImpactObjective(k float64) AtK { return AtK{K: k, Metric: DisparateImpactMetric{}} }

// FPRObjective returns the false-positive-rate objective at k.
func FPRObjective(k float64) AtK { return AtK{K: k, Metric: FPRMetric{}} }

// Name implements Objective.
func (o AtK) Name() string { return fmt.Sprintf("%s@%g", o.Metric.MetricName(), o.K) }

// Eval implements Objective.
func (o AtK) Eval(d *dataset.Dataset, sampleIdx []int, eff []float64) ([]float64, error) {
	if err := checkOutcomes(d, o.Metric); err != nil {
		return nil, err
	}
	sel, err := topAbs(sampleIdx, eff, o.K)
	if err != nil {
		return nil, err
	}
	return o.Metric.EvalPrefix(d, sampleIdx, sel), nil
}

// LogDiscounted optimizes a prefix metric over the whole ranking with the
// logarithmic discounting of Section IV-E: the objective becomes
// (1/Z) Σ_i metric(prefix_i) / log2(i+1) over the evaluation fractions in
// Points, weighting small selections (early ranks) more. It is the mode
// for applications where the selection size is unknown at
// bonus-assignment time, such as school matching waitlists.
type LogDiscounted struct {
	Points []float64
	Metric PrefixMetric
}

// LogDiscountedDisparity returns the log-discounted disparity objective
// evaluated at {step, 2*step, ..., maxK} (paper default step = 0.10).
func LogDiscountedDisparity(step, maxK float64) LogDiscounted {
	return LogDiscounted{Points: metrics.DefaultPoints(step, maxK), Metric: DisparityMetric{}}
}

// Name implements Objective.
func (o LogDiscounted) Name() string {
	if len(o.Points) == 0 {
		return fmt.Sprintf("logdisc-%s(empty)", o.Metric.MetricName())
	}
	return fmt.Sprintf("logdisc-%s@%g..%g", o.Metric.MetricName(), o.Points[0], o.Points[len(o.Points)-1])
}

// Eval implements Objective.
func (o LogDiscounted) Eval(d *dataset.Dataset, sampleIdx []int, eff []float64) ([]float64, error) {
	if len(o.Points) == 0 {
		return nil, fmt.Errorf("core: log-discounted objective with no evaluation points")
	}
	if err := checkOutcomes(d, o.Metric); err != nil {
		return nil, err
	}
	order := rank.Order(eff)
	abs := make([]int, len(order))
	for r, p := range order {
		abs[r] = sampleIdx[p]
	}
	ld := metrics.LogDiscount{Points: o.Points}
	dims := d.NumFair()
	acc := make([]float64, dims)
	var z float64
	for _, f := range o.Points {
		cnt, err := rank.SelectCount(len(abs), f)
		if err != nil {
			return nil, err
		}
		w := ld.Weight(f)
		z += w
		v := o.Metric.EvalPrefix(d, abs, abs[:cnt])
		for j := range acc {
			acc[j] += w * v[j]
		}
	}
	for j := range acc {
		acc[j] /= z
	}
	return acc, nil
}

// topAbs selects the top fraction k of the sample by effective score and
// returns absolute object indices.
func topAbs(sampleIdx []int, eff []float64, k float64) ([]int, error) {
	cnt, err := rank.SelectCount(len(sampleIdx), k)
	if err != nil {
		return nil, err
	}
	pos := rank.TopKHeap(eff, cnt)
	abs := make([]int, len(pos))
	for r, p := range pos {
		abs[r] = sampleIdx[p]
	}
	return abs, nil
}
