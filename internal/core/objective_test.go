package core

import (
	"math"
	"strings"
	"testing"

	"fairrank/internal/dataset"
	"fairrank/internal/metrics"
)

func objDataset(t testing.TB, fair []float64, outcomes []bool) *dataset.Dataset {
	t.Helper()
	score := make([]float64, len(fair))
	d, err := dataset.New([]string{"s"}, []string{"f"}, [][]float64{score}, [][]float64{fair}, outcomes)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestAtKDisparityEval(t *testing.T) {
	// Sample of 10: 40% protected. Effective scores place two protected
	// objects in the top-5 selection -> selection 40% protected -> parity.
	fair := []float64{1, 1, 1, 1, 0, 0, 0, 0, 0, 0}
	d := objDataset(t, fair, nil)
	sample := []int{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}
	eff := []float64{9, 8, 1, 1, 7, 6, 5, 0, 0, 0}
	got, err := DisparityObjective(0.5).Eval(d, sample, eff)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got[0]) > 1e-12 {
		t.Errorf("disparity = %v, want 0", got[0])
	}
	// Push all protected out of the selection: -0.4.
	eff = []float64{0, 0, 0, 0, 9, 8, 7, 6, 5, 0}
	got, err = DisparityObjective(0.5).Eval(d, sample, eff)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got[0]-(-0.4)) > 1e-12 {
		t.Errorf("disparity = %v, want -0.4", got[0])
	}
}

func TestAtKInvalidK(t *testing.T) {
	d := objDataset(t, []float64{1, 0}, nil)
	if _, err := DisparityObjective(0).Eval(d, []int{0, 1}, []float64{1, 2}); err == nil {
		t.Error("k=0: expected error")
	}
	if _, err := DisparityObjective(1.5).Eval(d, []int{0, 1}, []float64{1, 2}); err == nil {
		t.Error("k>1: expected error")
	}
}

func TestObjectiveNames(t *testing.T) {
	checks := map[string]Objective{
		"disparity@0.05":        DisparityObjective(0.05),
		"disparate-impact@0.1":  DisparateImpactObjective(0.1),
		"fpr-diff@0.2":          FPRObjective(0.2),
		"logdisc-disparity@0.1": LogDiscountedDisparity(0.1, 0.5),
	}
	for prefix, obj := range checks {
		if !strings.HasPrefix(obj.Name(), prefix) {
			t.Errorf("Name() = %q, want prefix %q", obj.Name(), prefix)
		}
	}
	if name := (LogDiscounted{Metric: DisparityMetric{}}).Name(); !strings.Contains(name, "empty") {
		t.Errorf("empty logdisc name = %q", name)
	}
}

func TestFPRObjectiveRequiresOutcomes(t *testing.T) {
	d := objDataset(t, []float64{1, 0}, nil)
	if _, err := FPRObjective(0.5).Eval(d, []int{0, 1}, []float64{1, 2}); err == nil {
		t.Error("expected error without outcomes")
	}
	withOut := objDataset(t, []float64{1, 0, 1, 0}, []bool{false, false, true, true})
	if _, err := FPRObjective(0.5).Eval(withOut, []int{0, 1, 2, 3}, []float64{4, 3, 2, 1}); err != nil {
		t.Errorf("unexpected error: %v", err)
	}
}

func TestLogDiscountedEvalMatchesManualAggregation(t *testing.T) {
	fair := []float64{1, 0, 1, 0, 1, 0, 1, 0, 1, 0}
	d := objDataset(t, fair, nil)
	sample := []int{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}
	eff := []float64{10, 9, 8, 7, 6, 5, 4, 3, 2, 1}
	obj := LogDiscounted{Points: []float64{0.2, 0.4}, Metric: DisparityMetric{}}
	got, err := obj.Eval(d, sample, eff)
	if err != nil {
		t.Fatal(err)
	}
	// Manual: order is 0..9. Prefix 20% = {0,1}: centroid 0.5, pop 0.5 -> 0.
	// Prefix 40% = {0,1,2,3}: centroid 0.5 -> 0. Aggregate 0.
	if math.Abs(got[0]) > 1e-12 {
		t.Errorf("aggregate = %v, want 0", got[0])
	}

	// Skewed scores: protected (even indices) first.
	eff = []float64{10, 1, 9, 1, 8, 1, 7, 1, 6, 1}
	got, err = obj.Eval(d, sample, eff)
	if err != nil {
		t.Fatal(err)
	}
	ld := metrics.LogDiscount{Points: []float64{0.2, 0.4}}
	w1, w2 := ld.Weight(0.2), ld.Weight(0.4)
	want := (w1*0.5 + w2*0.5) / (w1 + w2) // both prefixes fully protected: +0.5
	if math.Abs(got[0]-want) > 1e-12 {
		t.Errorf("aggregate = %v, want %v", got[0], want)
	}
}

func TestLogDiscountedNoPoints(t *testing.T) {
	d := objDataset(t, []float64{1, 0}, nil)
	obj := LogDiscounted{Metric: DisparityMetric{}}
	if _, err := obj.Eval(d, []int{0, 1}, []float64{1, 2}); err == nil {
		t.Error("expected error with no points")
	}
}

func TestMetricNames(t *testing.T) {
	if (DisparityMetric{}).MetricName() != "disparity" ||
		(DisparateImpactMetric{}).MetricName() != "disparate-impact" ||
		(FPRMetric{}).MetricName() != "fpr-diff" {
		t.Error("unexpected metric names")
	}
}
