package core

import (
	"context"
	"fmt"
	"slices"
	"sort"

	"fairrank/internal/engine"
	"fairrank/internal/faultinject"
	"fairrank/internal/metrics"
	"fairrank/internal/rank"
)

// Cross-request batch pass. Because bonus points enter the effective
// score additively (Definition 2), the ranked order under a (dataset,
// bonus) pair does not depend on the selection fraction, the metric, or
// the object ids being asked about — so any number of concurrent
// requests that share a bonus vector are answerable from ONE ranked
// prefix sized to their maximum cut. AnswerBatch is that entry point:
// the service micro-batcher collects heterogeneous (k, ids, metric)
// queries behind one window and this pass answers them all.
//
// Every answer is bit-identical to the corresponding per-request
// evaluator (the sweep engines, CounterfactualBatch, BundleStats): the
// prefix aggregates resume the same left-to-right folds over the same
// total order — a fold's value at a cut does not depend on which other
// cuts share the grid — and the counterfactual and bundle finishers are
// the same functions the per-request paths call. The batching-equivalence
// suites (core batch_test.go, service batch_differential_test.go) pin
// this byte-for-byte.

// BatchKind selects what one BatchQuery asks of the shared pass.
type BatchKind int

const (
	// BatchDisparity asks for the full-population disparity vector of the
	// top-K selection.
	BatchDisparity BatchKind = iota
	// BatchNDCG asks for the utility retained at fraction K.
	BatchNDCG
	// BatchDisparateImpact asks for the scaled disparate-impact vector of
	// the top-K selection.
	BatchDisparateImpact
	// BatchFPRDiff asks for the per-group FPR difference vector of the
	// top-K selection; the dataset must carry outcomes.
	BatchFPRDiff
	// BatchCounterfactual asks for the minimal flip deltas of Objects at
	// fraction K.
	BatchCounterfactual
	// BatchBundle asks for a full BundleStats audit pass; Bundle carries
	// the config, whose bonus must canonically equal the batch's.
	BatchBundle
	// BatchExposure asks for the per-capita exposure vector of the top-K
	// selection (named groups plus the unprotected rest) together with its
	// DDP scalar; fairness attributes must be binary.
	BatchExposure
	// BatchExpRatio asks for the exposure/merit ratio vector of the top-K
	// selection; fairness attributes must be binary and the dataset must
	// carry outcomes.
	BatchExpRatio
	// BatchTopK asks for the top-K rank-fairness share vector of the top-K
	// selection; fairness attributes must be binary.
	BatchTopK
)

// BatchQuery is one member request of a shared-bonus batch.
type BatchQuery struct {
	Kind BatchKind
	// K is the selection fraction (unused by BatchBundle, which reads
	// Bundle.K).
	K float64
	// Objects are the ids a BatchCounterfactual query explains.
	Objects []int
	// Bundle parameterizes a BatchBundle query.
	Bundle *BundleStatsConfig
}

// BatchAnswer is one query's result. The payload fields matching the query
// kind are set — exactly one for most kinds; a BatchExposure answer sets
// both Vector (the per-capita row) and Value (the DDP) — unless Err is
// set, which carries the data-dependent failures the per-request path
// reports per point (metrics.ErrZeroIdealDCG,
// metrics.ErrDegenerateGroups): a bad query never poisons its batchmates.
type BatchAnswer struct {
	// Vector holds disparity / disparate-impact / FPR-difference /
	// exposure-family rows.
	Vector []float64
	// Value holds the nDCG scalar, or a BatchExposure query's DDP.
	Value float64
	// Counterfactuals holds a BatchCounterfactual query's results.
	Counterfactuals []Counterfactual
	// Bundle holds a BatchBundle query's results.
	Bundle *BundleStats
	// Err is the query's own failure; the other fields are zero.
	Err error
}

// batchGeom is the per-query pass geometry resolved during validation.
type batchGeom struct {
	cut     int // leading positions of the shared order this query reads
	cnt     int // selection count (all kinds but BatchNDCG)
	ndcgCut int // bundle utility cut
}

// AnswerBatch answers every query from one shared ranked pass under the
// bonus vector. See AnswerBatchCtx.
func (e *Evaluator) AnswerBatch(bonus []float64, qs []BatchQuery) ([]BatchAnswer, error) {
	return e.AnswerBatchCtx(context.Background(), bonus, qs)
}

// AnswerBatchCtx validates every query up front (a batch-wide error, so
// the service layer can keep malformed requests out of the window), then
// acquires one ranked prefix sized to the batch's maximum cut and answers
// each query from it: metric queries through the sweep engine's prefix
// folds over per-kind cut grids, counterfactual queries through the
// combo-run rank lookups (merged pass) or the shared full order,
// bundle queries through the BundleStats finishers plus one shared
// leave-one-out fan. The ranking budget is one pass for the whole batch
// — plus, when bundles are present, one leave-one-out prefix per
// attribute with a non-zero bonus, shared across every bundle — instead
// of one per request; a zero bonus is answered from the cached base
// order for free.
//
// Cancellation is cooperative per PR 8's contract: ctx is the BATCH's
// context, not any one caller's — the batcher cancels it only when every
// member is gone, so one caller's disconnect never poisons the rest. A
// non-nil error means no answers were produced.
func (e *Evaluator) AnswerBatchCtx(ctx context.Context, bonus []float64, qs []BatchQuery) ([]BatchAnswer, error) {
	if err := e.checkBonusDims(bonus); err != nil {
		return nil, err
	}
	n := e.d.N()
	if n == 0 {
		return nil, fmt.Errorf("core: cannot evaluate an empty dataset")
	}
	if len(qs) == 0 {
		return nil, nil
	}
	bonus = canonBonus(bonus)

	geom := make([]batchGeom, len(qs))
	maxCut := 0
	hasCF := false
	for i := range qs {
		q := &qs[i]
		g := &geom[i]
		switch q.Kind {
		case BatchDisparity, BatchDisparateImpact, BatchFPRDiff:
			if q.Kind == BatchFPRDiff && !e.d.HasOutcomes() {
				return nil, fmt.Errorf("core: FPR evaluation requires outcomes")
			}
			cnt, err := rank.SelectCount(n, q.K)
			if err != nil {
				return nil, fmt.Errorf("core: batch query %d (k=%g): %w", i, q.K, err)
			}
			g.cnt, g.cut = cnt, cnt
		case BatchExposure, BatchExpRatio, BatchTopK:
			if err := e.exposureGuard(); err != nil {
				return nil, err
			}
			if q.Kind == BatchExpRatio && !e.d.HasOutcomes() {
				return nil, fmt.Errorf("core: exposure/merit ratio requires outcomes")
			}
			cnt, err := rank.SelectCount(n, q.K)
			if err != nil {
				return nil, fmt.Errorf("core: batch query %d (k=%g): %w", i, q.K, err)
			}
			g.cnt, g.cut = cnt, cnt
		case BatchNDCG:
			cut, err := metrics.PrefixCount(n, q.K)
			if err != nil {
				return nil, fmt.Errorf("core: batch query %d (k=%g): %w", i, q.K, err)
			}
			g.cut = cut
		case BatchCounterfactual:
			cnt, err := rank.SelectCount(n, q.K)
			if err != nil {
				return nil, fmt.Errorf("core: batch query %d (k=%g): %w", i, q.K, err)
			}
			for _, obj := range q.Objects {
				if obj < 0 || obj >= n {
					return nil, fmt.Errorf("core: batch query %d: object %d outside [0,%d)", i, obj, n)
				}
			}
			g.cnt, g.cut = cnt, cnt
			if cnt < n {
				g.cut = cnt + 1 // the first excluded object is a boundary competitor too
			}
			hasCF = true
		case BatchBundle:
			b := q.Bundle
			if b == nil {
				return nil, fmt.Errorf("core: batch query %d: bundle query without a config", i)
			}
			if !slices.Equal(canonBonus(b.Bonus), bonus) {
				return nil, fmt.Errorf("core: batch query %d: bundle bonus differs from the batch bonus", i)
			}
			if b.Margins < 0 {
				return nil, fmt.Errorf("core: margin window %d is negative", b.Margins)
			}
			if b.IncludeFPR && !e.d.HasOutcomes() {
				return nil, fmt.Errorf("core: FPR evaluation requires outcomes")
			}
			if b.IncludeExposure {
				if err := e.exposureGuard(); err != nil {
					return nil, err
				}
			}
			cnt, err := rank.SelectCount(n, b.K)
			if err != nil {
				return nil, fmt.Errorf("core: batch query %d (k=%g): %w", i, b.K, err)
			}
			ndcgCut, err := metrics.PrefixCount(n, b.K)
			if err != nil {
				return nil, fmt.Errorf("core: batch query %d (k=%g): %w", i, b.K, err)
			}
			g.cnt, g.ndcgCut = cnt, ndcgCut
			p := cnt + b.Margins
			if p > n {
				p = n
			}
			g.cut = p
			if ndcgCut > g.cut {
				g.cut = ndcgCut
			}
		default:
			return nil, fmt.Errorf("core: batch query %d: unknown kind %d", i, q.Kind)
		}
		if g.cut > maxCut {
			maxCut = g.cut
		}
	}

	ws := e.ws()
	defer e.put(ws)

	// One shared pass sized to the batch's maximum cut, routed exactly as
	// rankedPrefixWS routes a single request — written out here because
	// the counterfactual answers need to know WHICH route was taken: a
	// merged prefix keeps the MergeScratch live for per-object RankOf
	// lookups, while a non-merged pass with counterfactual queries must be
	// a full order (arbitrary object ids live anywhere in it).
	var (
		order  []int
		eff    []float64
		merged bool
	)
	if bonus == nil {
		// The cached uncompensated order answers the whole batch for free.
		order, eff = e.origOrd, e.base
	} else {
		if err := faultinject.Fire(ctx, faultinject.SiteRankPrefix); err != nil {
			return nil, err
		}
		if e.mergeEligible(maxCut) {
			pre, ok, err := e.runs.MergeTopKIntoCtx(ctx, bonus, e.pol, maxCut, ws.Merge(), ws.Ord(maxCut), ws.Eff(n))
			if err != nil {
				return nil, err
			}
			if ok {
				e.merges.Add(1)
				order, eff, merged = pre, ws.Eff(n), true
			}
		}
		if order == nil {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			eff = rank.EffectiveScores(e.d, e.base, e.all, bonus, e.pol, ws.Eff(n))
			e.rankings.Add(1)
			if hasCF || maxCut >= n/2 {
				order = rank.OrderInto(eff, ws.Ord(n))
			} else {
				order = rank.TopKHeapInto(eff, maxCut, ws.Ord(maxCut))
				rank.SortRanked(eff, order)
			}
		}
	}

	answers := make([]BatchAnswer, len(qs))
	dims := e.d.NumFair()

	// Metric queries: per-kind ascending cut grids through the exact
	// prefix folds the sweep engine runs. A fold's value at a cut is
	// independent of the rest of the grid, so sharing a grid (and a
	// longer-than-necessary order) changes nothing bit-wise.
	if idx, cuts, pos := batchGrid(qs, geom, BatchDisparity); len(idx) > 0 {
		cent := metrics.PrefixCentroidInto(e.d, order, cuts, ws.Pop(), ws.Agg(len(cuts)*dims))
		for r, qi := range idx {
			row := cent[pos[r]*dims : (pos[r]+1)*dims]
			dst := make([]float64, dims)
			for j := range dst {
				dst[j] = row[j] - e.centroid[j]
			}
			answers[qi].Vector = dst
		}
	}
	if idx, cuts, pos := batchGrid(qs, geom, BatchNDCG); len(idx) > 0 {
		nc := len(cuts)
		agg := ws.Agg(2 * nc)
		corrected := metrics.PrefixDCGInto(e.base, order, cuts, agg[:nc])
		ideal := metrics.PrefixDCGInto(e.base, e.origOrd, cuts, agg[nc:])
		for r, qi := range idx {
			c := pos[r]
			if ideal[c] == 0 {
				answers[qi].Err = metrics.ErrZeroIdealDCG
				continue
			}
			answers[qi].Value = corrected[c] / ideal[c]
		}
	}
	if idx, cuts, pos := batchGrid(qs, geom, BatchDisparateImpact); len(idx) > 0 {
		counts := metrics.PrefixGroupCountsInto(e.d, order, cuts, ws.Cnts(len(cuts)*dims))
		for r, qi := range idx {
			c := pos[r]
			row := counts[c*dims : (c+1)*dims]
			sel := cuts[c]
			dst := make([]float64, dims)
			for j := range dst {
				dst[j] = metrics.ImpactFromCounts(row[j], e.groupTot[j], sel-row[j], n-e.groupTot[j])
			}
			answers[qi].Vector = dst
		}
	}
	if idx, cuts, pos := batchGrid(qs, geom, BatchFPRDiff); len(idx) > 0 {
		nc := len(cuts)
		cnts := ws.Cnts(nc*dims + nc)
		rows, all := cnts[:nc*dims], cnts[nc*dims:]
		metrics.PrefixFPCountsInto(e.d, order, cuts, rows, all)
		for r, qi := range idx {
			c := pos[r]
			dst := make([]float64, dims)
			if e.negAll != 0 {
				overall := float64(all[c]) / float64(e.negAll)
				row := rows[c*dims : (c+1)*dims]
				for j := range dst {
					if e.negTot[j] != 0 {
						dst[j] = float64(row[j])/float64(e.negTot[j]) - overall
					}
				}
			}
			answers[qi].Vector = dst
		}
	}
	if idx, cuts, pos := batchGrid(qs, geom, BatchExposure); len(idx) > 0 {
		gw := dims + 1
		nc := len(cuts)
		expo := metrics.PrefixExposureInto(e.d, order, cuts, ws.PopN(gw), ws.Agg(nc*gw))
		sizes := metrics.PrefixExposureCountsInto(e.d, order, cuts, ws.Cnts(nc*gw))
		for r, qi := range idx {
			c := pos[r]
			row, szs := expo[c*gw:(c+1)*gw], sizes[c*gw:(c+1)*gw]
			ddp, err := metrics.DDPFromExposure(row, szs)
			if err != nil {
				answers[qi].Err = err
				continue
			}
			dst := make([]float64, gw)
			metrics.ExposurePerCapitaInto(row, szs, dst)
			answers[qi].Vector = dst
			answers[qi].Value = ddp
		}
	}
	if idx, cuts, pos := batchGrid(qs, geom, BatchExpRatio); len(idx) > 0 {
		gw := dims + 1
		nc := len(cuts)
		expo := metrics.PrefixExposureInto(e.d, order, cuts, ws.PopN(gw), ws.Agg(nc*gw))
		counts := metrics.PrefixGroupCountsInto(e.d, order, cuts, ws.Cnts(nc*dims))
		for r, qi := range idx {
			c := pos[r]
			erow := expo[c*gw : c*gw+dims]
			crow := counts[c*dims : (c+1)*dims]
			dst := make([]float64, dims)
			for j := range dst {
				dst[j] = metrics.ExpRatioFromCounts(erow[j], crow[j], e.groupTot[j]-e.negTot[j], e.groupTot[j])
			}
			answers[qi].Vector = dst
		}
	}
	if idx, cuts, pos := batchGrid(qs, geom, BatchTopK); len(idx) > 0 {
		counts := metrics.PrefixGroupCountsInto(e.d, order, cuts, ws.Cnts(len(cuts)*dims))
		for r, qi := range idx {
			c := pos[r]
			row := counts[c*dims : (c+1)*dims]
			sel := cuts[c]
			dst := make([]float64, dims)
			for j := range dst {
				dst[j] = metrics.TopKFromCounts(row[j], sel, e.groupTot[j], n)
			}
			answers[qi].Vector = dst
		}
	}

	// Counterfactual queries. A merged pass answers objects through the
	// per-run rank lookups (the scratch retains the merge offsets); the
	// full-order paths invert the shared permutation. Both finish through
	// finishCounterfactual, so the results are bit-identical to
	// CounterfactualBatch by construction.
	for i := range qs {
		if qs[i].Kind != BatchCounterfactual {
			continue
		}
		if merged {
			cfs, ok := e.counterfactualsMergeWS(ws, order, bonus, geom[i].cnt, qs[i].Objects)
			if !ok {
				return nil, fmt.Errorf("core: batch rank lookup failed after a validated merge")
			}
			answers[i].Counterfactuals = cfs
		} else {
			answers[i].Counterfactuals = e.counterfactualsWS(ws, order, bonus, geom[i].cnt, qs[i].Objects)
		}
	}

	// Bundle queries: the compensated-order and base-order quantities come
	// from the shared pass; the leave-one-out fan below is shared across
	// every bundle in the batch (they all audit the batch bonus).
	var bundles []int
	for i := range qs {
		if qs[i].Kind == BatchBundle {
			bundles = append(bundles, i)
		}
	}
	for _, qi := range bundles {
		cfg := qs[qi].Bundle
		g := &geom[qi]
		bcopy := make([]float64, dims)
		copy(bcopy, cfg.Bonus)
		st := &BundleStats{
			K:               cfg.K,
			Selected:        g.cnt,
			FairNames:       e.d.FairNames(),
			Bonus:           bcopy,
			GroupCounts:     make([]int, dims),
			BaseGroupCounts: make([]int, dims),
			LeaveOneOut:     make([]float64, dims),
			Contribution:    make([]float64, dims),
		}
		if err := e.bundleFromShared(ws, order, eff, cfg, st, g.cnt, g.ndcgCut); err != nil {
			answers[qi].Err = err
			continue
		}
		answers[qi].Bundle = st
	}
	if len(bundles) > 0 && bonus != nil {
		var looJobs []int
		for j, b := range bonus {
			if b != 0 {
				looJobs = append(looJobs, j)
			}
		}
		bcuts := make([]int, 0, len(bundles))
		for _, qi := range bundles {
			if answers[qi].Bundle != nil {
				bcuts = append(bcuts, geom[qi].cnt)
			}
		}
		sort.Ints(bcuts)
		bcuts = slices.Compact(bcuts)
		if len(looJobs) > 0 && len(bcuts) > 0 {
			looBacking := make([]float64, len(looJobs)*dims)
			looNorms := make([]float64, len(looJobs)*len(bcuts))
			terrs := make([]error, len(looJobs))
			perr := e.parallelCtx(ctx, len(looJobs), func(lws *engine.Workspace, r int) {
				vec := looBacking[r*dims : (r+1)*dims]
				copy(vec, bonus)
				vec[looJobs[r]] = 0
				ord, err := e.rankedPrefixWS(ctx, lws, vec, bcuts[len(bcuts)-1])
				if err != nil {
					terrs[r] = err
					return
				}
				cent := metrics.PrefixCentroidInto(e.d, ord, bcuts, lws.Pop(), lws.Agg(len(bcuts)*dims))
				for c := range bcuts {
					looNorms[r*len(bcuts)+c] = normAgainst(cent[c*dims:(c+1)*dims], e.centroid)
				}
			})
			if err := firstErr(perr, terrs); err != nil {
				return nil, err
			}
			for _, qi := range bundles {
				st := answers[qi].Bundle
				if st == nil {
					continue
				}
				c, _ := slices.BinarySearch(bcuts, geom[qi].cnt)
				for r, j := range looJobs {
					st.LeaveOneOut[j] = looNorms[r*len(bcuts)+c]
				}
			}
		}
	}
	for _, qi := range bundles {
		st := answers[qi].Bundle
		if st == nil {
			continue
		}
		st.Reduction = st.NormBefore - st.NormAfter
		for j := 0; j < dims; j++ {
			if bonus == nil || bonus[j] == 0 {
				st.LeaveOneOut[j] = st.NormAfter
			}
			st.Contribution[j] = st.LeaveOneOut[j] - st.NormAfter
		}
	}
	return answers, nil
}

// batchGrid collects the queries of one kind and deduplicates their cuts
// into an ascending grid, exactly as groupPoints does for a sweep group:
// idx lists the query indices, cuts the grid, and pos[r] locates idx[r]'s
// cut within it. The geometry cut doubles as the fold cut for every
// metric kind (for BatchNDCG it is the PrefixCount cut; for the selection
// metrics the SelectCount).
func batchGrid(qs []BatchQuery, geom []batchGeom, kind BatchKind) (idx, cuts, pos []int) {
	for i := range qs {
		if qs[i].Kind == kind {
			idx = append(idx, i)
		}
	}
	if len(idx) == 0 {
		return nil, nil, nil
	}
	gridOf := func(qi int) int {
		if kind == BatchNDCG {
			return geom[qi].cut
		}
		return geom[qi].cnt
	}
	cuts = make([]int, len(idx))
	for r, qi := range idx {
		cuts[r] = gridOf(qi)
	}
	sort.Ints(cuts)
	cuts = slices.Compact(cuts)
	pos = make([]int, len(idx))
	for r, qi := range idx {
		p, _ := slices.BinarySearch(cuts, gridOf(qi))
		pos[r] = p
	}
	return idx, cuts, pos
}

// bundleFromShared fills one bundle's shared-order quantities from the
// batch pass, mirroring bundleFullPass field-for-field (plus the
// base-order side that BundleStatsCtx computes as its second parallel
// task): cutoff, group counts, disparity norms, nDCG, FPR differences,
// beneficiary sets, and the counterfactual margin window. order must
// cover the bundle's own prefix (cnt + margins, clamped) and the nDCG
// cut; eff must be the effective scores the order was ranked by. Only
// the zero-ideal-DCG failure is possible, and it is the query's own.
func (e *Evaluator) bundleFromShared(ws *engine.Workspace, order []int, eff []float64, cfg *BundleStatsConfig, st *BundleStats, cnt, ndcgCut int) error {
	n := e.d.N()
	dims := e.d.NumFair()
	p := cnt + cfg.Margins
	if p > n {
		p = n
	}
	st.Cutoff = eff[order[cnt-1]]

	cuts := []int{cnt}
	copy(st.GroupCounts, metrics.PrefixGroupCountsInto(e.d, order, cuts, ws.Cnts(dims)))

	cent := metrics.PrefixCentroidInto(e.d, order, cuts, ws.Pop(), ws.Agg(dims))
	st.NormAfter = normAgainst(cent, e.centroid)

	// The centroid row has been consumed, so the aggregate scratch can be
	// re-carved — same sequencing as bundleFullPass.
	ndcgCuts := []int{ndcgCut}
	agg := ws.Agg(2)
	corrected := metrics.PrefixDCGInto(e.base, order, ndcgCuts, agg[:1])
	ideal := metrics.PrefixDCGInto(e.base, e.origOrd, ndcgCuts, agg[1:])
	if ideal[0] == 0 {
		return metrics.ErrZeroIdealDCG
	}
	st.NDCG = corrected[0] / ideal[0]

	if cfg.IncludeFPR {
		cnts := ws.Cnts(dims + 1)
		rows, all := cnts[:dims], cnts[dims:]
		metrics.PrefixFPCountsInto(e.d, order, cuts, rows, all)
		st.FPRDiff = make([]float64, dims)
		if e.negAll != 0 {
			overall := float64(all[0]) / float64(e.negAll)
			for j := range st.FPRDiff {
				if e.negTot[j] == 0 {
					continue
				}
				st.FPRDiff[j] = float64(rows[j])/float64(e.negTot[j]) - overall
			}
		}
	}

	if cfg.IncludeExposure {
		var err error
		if st.Exposure, st.ExposureDDP, err = e.exposureSideWS(ws, order, cuts); err != nil {
			return err
		}
	}

	marks := ws.Marks(n)
	for _, o := range e.origOrd[:cnt] {
		marks[o] = true
	}
	for _, o := range order[:cnt] {
		if marks[o] {
			marks[o] = false
		} else {
			st.AdmittedByBonus = append(st.AdmittedByBonus, o)
		}
	}
	for _, o := range e.origOrd[:cnt] {
		if marks[o] {
			st.DisplacedByBonus = append(st.DisplacedByBonus, o)
			marks[o] = false
		}
	}
	sort.Ints(st.AdmittedByBonus)
	sort.Ints(st.DisplacedByBonus)

	if cfg.Margins > 0 {
		lo := cnt - cfg.Margins
		if lo < 0 {
			lo = 0
		}
		st.Margins = e.counterfactualsWS(ws, order, cfg.Bonus, cnt, order[lo:p])
	}

	// Base-order side: free off the cached uncompensated ranking.
	st.BaseCutoff = e.base[e.origOrd[cnt-1]]
	copy(st.BaseGroupCounts, metrics.PrefixGroupCountsInto(e.d, e.origOrd, cuts, ws.Cnts(dims)))
	bcent := metrics.PrefixCentroidInto(e.d, e.origOrd, cuts, ws.Pop(), ws.Agg(dims))
	st.NormBefore = normAgainst(bcent, e.centroid)
	if cfg.IncludeExposure {
		var err error
		if st.BaseExposure, st.BaseExposureDDP, err = e.exposureSideWS(ws, e.origOrd, cuts); err != nil {
			return err
		}
	}
	return nil
}
