// Package core implements the paper's primary contribution: the Disparity
// Compensation Algorithm (DCA).
//
// DCA searches for a vector of compensatory bonus points B >= 0 that, when
// combined with the fairness attributes of each object
// (f_b(o) = f(o) ± A_f·B, Definition 2), minimizes the L2 norm of a
// fairness objective vector. The search cannot use gradients — top-k
// selection makes the objective a step function — so DCA descends along the
// objective vector itself, evaluated on small random samples:
//
//   - CoreDCA (Algorithm 1): a ladder of decreasing learning rates; each
//     step draws a fresh sample, measures the objective of the top-k
//     selection under the current bonus vector, and moves the vector
//     against it.
//   - Refine (Algorithm 2): Adam-driven steps on epoch samples followed by
//     a rolling average of the iterates and rounding to a stakeholder
//     granularity.
//   - Run: the full pipeline (Core + Refine + rounding) the paper calls
//     "DCA".
//   - FullDCA: the whole-dataset variant of Section IV-C, which satisfies
//     the swap guarantee of Theorem 4.1 and is used to validate the sampled
//     algorithm.
//
// The objective is pluggable (Section VI-C5). Any PrefixMetric — a
// fairness vector of a selected prefix, one dimension per fairness
// attribute, bounded in [-1, 1] and zero at parity — can be optimized at a
// fixed selection fraction or under the logarithmic discounting of
// Section IV-E, which covers every combination the paper evaluates:
// disparity@k, log-discounted disparity, disparate impact, and false
// positive rate differences.
//
// # Evaluation and explanation
//
// Measuring a bonus vector's full-population effect goes through the
// Evaluator, which precomputes the base scores and the uncompensated
// ranking once and is safe for concurrent use (pooled engine workspaces).
// Its sweep methods (DisparitySweep, NDCGSweep, DisparateImpactSweep,
// FPRDiffSweep) implement the prefix-sweep engine of sweep.go: points
// sharing a bonus vector are ranked once and every selection fraction is
// answered from prefix aggregates, bit-identically to the pointwise
// methods.
//
// The explainability workloads build on the same rankings:
//
//   - Explain publishes the transparency report of Section III-C (cutoff,
//     per-group counts, beneficiaries); ExplainObject breaks one object's
//     effective score into its published components.
//   - Counterfactual and CounterfactualBatch answer "what is the smallest
//     score or bonus change that flips this object's selection?" exactly:
//     the flip is decided against a single boundary competitor in the
//     ranked order, and a binary search over float64 bit patterns returns
//     the smallest representable delta that flips (counterfactual.go).
//   - AttributeDisparity decomposes the policy's disparity reduction by
//     leaving each attribute's bonus out in turn — the group-level
//     attribution behind the audit bundles of internal/report.
package core
