package core

import (
	"math"
	"math/rand"
	"testing"

	"fairrank/internal/dataset"
	"fairrank/internal/rank"
)

// cfDataset builds a small cohort with deliberately quantized scores so
// exact ties — the hardest case for a minimal flip delta, where the
// index tie-break decides — occur often.
func cfDataset(t testing.TB, rng *rand.Rand, n int) *dataset.Dataset {
	t.Helper()
	b := dataset.NewBuilder([]string{"s"}, []string{"binary", "eni", "rare"})
	for i := 0; i < n; i++ {
		bin := float64(rng.Intn(2))
		eni := rng.Float64()
		rare := 0.0
		if rng.Float64() < 0.1 {
			rare = 1
		}
		// Quarter-point scores force score collisions.
		score := math.Round(4*(10*rng.NormFloat64()-5*bin-2*eni)) / 4
		b.AddWithOutcome([]float64{score}, []float64{bin, eni, rare}, rng.Float64() < 0.3)
	}
	d, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// membership re-derives an object's selection status from first
// principles: effective scores via the public rank API, a full sort, and a
// prefix check. It shares no code with the counterfactual's boundary
// predicate, so agreement is a genuine consistency check.
func membership(d *dataset.Dataset, base []float64, bonus []float64, pol rank.Polarity, patchObj int, patchDelta float64, cnt, obj int) bool {
	eff := append([]float64(nil), base...)
	if bonus != nil {
		eff = rank.EffectiveScoresAll(d, base, bonus, pol, nil)
	}
	eff[patchObj] += patchDelta
	for _, o := range rank.Order(eff)[:cnt] {
		if o == obj {
			return true
		}
	}
	return false
}

// TestCounterfactualConsistency is the acceptance property of the
// counterfactual engine: over random cohorts, polarities, bonus vectors
// and selection fractions, applying the returned minimal ScoreDelta flips
// the object's selection, and the next-smaller representable float64 does
// not. The flip is verified by re-ranking the full modified score vector,
// not by the engine's own boundary predicate.
func TestCounterfactualConsistency(t *testing.T) {
	rng := rand.New(rand.NewSource(91))
	for trial := 0; trial < 25; trial++ {
		n := 40 + rng.Intn(300)
		d := cfDataset(t, rng, n)
		pol := rank.Beneficial
		if rng.Intn(2) == 1 {
			pol = rank.Adverse
		}
		scorer := rank.WeightedSum{Weights: []float64{1}}
		ev := NewEvaluator(d, scorer, pol)
		base := scorer.BaseScores(d)
		bonus := randomBonus(rng, d.NumFair())
		k := rng.Float64()
		if k == 0 {
			k = 0.5
		}
		if trial%5 == 0 {
			k = 1 // whole population: every selected object is infeasible
		}
		cnt, err := rank.SelectCount(n, k)
		if err != nil {
			t.Fatal(err)
		}

		objs := make([]int, 16)
		for i := range objs {
			objs[i] = rng.Intn(n)
		}
		cfs, err := ev.CounterfactualBatch(bonus, k, objs)
		if err != nil {
			t.Fatal(err)
		}
		sign := pol.Sign()
		for i, cf := range cfs {
			obj := objs[i]
			if cf.Object != obj {
				t.Fatalf("trial %d: result %d explains object %d, want %d", trial, i, cf.Object, obj)
			}
			was := membership(d, base, bonus, pol, obj, 0, cnt, obj)
			if cf.Selected != was {
				t.Fatalf("trial %d obj %d: Selected=%t, re-ranking says %t", trial, obj, cf.Selected, was)
			}
			if !cf.Feasible {
				if cnt != n || !cf.Selected {
					t.Fatalf("trial %d obj %d: infeasible outside the cnt==n selected case (cnt=%d n=%d selected=%t)",
						trial, obj, cnt, n, cf.Selected)
				}
				continue
			}
			if cf.Selected && cf.ScoreDelta >= 0 || !cf.Selected && cf.ScoreDelta <= 0 {
				t.Fatalf("trial %d obj %d: ScoreDelta %v has the wrong sign for selected=%t",
					trial, obj, cf.ScoreDelta, cf.Selected)
			}
			// The minimal delta flips the selection...
			if got := membership(d, base, bonus, pol, obj, cf.ScoreDelta, cnt, obj); got != !was {
				t.Fatalf("trial %d obj %d: applying ScoreDelta %v did not flip selection (still %t)",
					trial, obj, cf.ScoreDelta, got)
			}
			// ...and the next-smaller representable delta does not.
			smaller := math.Nextafter(cf.ScoreDelta, 0)
			if got := membership(d, base, bonus, pol, obj, smaller, cnt, obj); got != was {
				t.Fatalf("trial %d obj %d: sub-minimal delta %v (< %v) already flips selection",
					trial, obj, smaller, cf.ScoreDelta)
			}
			// Neither does a random fraction of it.
			if got := membership(d, base, bonus, pol, obj, cf.ScoreDelta*rng.Float64()*0.99, cnt, obj); got != was {
				t.Fatalf("trial %d obj %d: fractional delta flips selection", trial, obj)
			}
			if want := sign * cf.ScoreDelta; cf.BonusDelta != want {
				t.Fatalf("trial %d obj %d: BonusDelta=%v, want sign*ScoreDelta=%v", trial, obj, cf.BonusDelta, want)
			}
			for j, pa := range cf.PerAttribute {
				a := d.Fair(obj, j)
				switch {
				case a == 0 && pa != 0:
					t.Fatalf("trial %d obj %d: non-member attribute %d has delta %v", trial, obj, j, pa)
				case a == 1 && pa != cf.BonusDelta:
					t.Fatalf("trial %d obj %d: binary attribute %d delta %v != BonusDelta %v",
						trial, obj, j, pa, cf.BonusDelta)
				case a > 0 && pa != cf.BonusDelta/a:
					t.Fatalf("trial %d obj %d: attribute %d delta %v != BonusDelta/a %v",
						trial, obj, j, pa, cf.BonusDelta/a)
				}
			}
		}
	}
}

// TestCounterfactualSingleMatchesBatch pins the one-object convenience
// wrapper to the batch path.
func TestCounterfactualSingleMatchesBatch(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	d := cfDataset(t, rng, 200)
	ev := NewEvaluator(d, rank.WeightedSum{Weights: []float64{1}}, rank.Beneficial)
	bonus := []float64{2, 1, 0.5}
	batch, err := ev.CounterfactualBatch(bonus, 0.1, []int{3, 77, 150})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range batch {
		got, err := ev.Counterfactual(bonus, 0.1, want.Object)
		if err != nil {
			t.Fatal(err)
		}
		if got.Object != want.Object || got.ScoreDelta != want.ScoreDelta ||
			got.Rank != want.Rank || got.Selected != want.Selected ||
			got.Competitor != want.Competitor || got.Cutoff != want.Cutoff {
			t.Errorf("Counterfactual(%d) = %+v, batch = %+v", want.Object, got, want)
		}
	}
}

// TestCounterfactualWindowMatchesBatch pins the single-ranking window
// path: it must return exactly what CounterfactualBatch returns for the
// boundary objects of the ranked order, clamped at the population edges.
func TestCounterfactualWindowMatchesBatch(t *testing.T) {
	rng := rand.New(rand.NewSource(47))
	d := cfDataset(t, rng, 300)
	ev := NewEvaluator(d, rank.WeightedSum{Weights: []float64{1}}, rank.Adverse)
	bonus := []float64{1.5, 0.5, 2}
	for _, tc := range []struct {
		k    float64
		m    int
		want int
	}{
		{0.1, 3, 6},
		{1.0 / 300, 5, 6}, // cnt=1: left side clamps to one selected object
		{1, 4, 4},         // cnt=n: right side clamps to the selected tail
		{0.5, 1000, 300},  // window wider than the population
	} {
		win, err := ev.CounterfactualWindow(bonus, tc.k, tc.m)
		if err != nil {
			t.Fatalf("k=%g m=%d: %v", tc.k, tc.m, err)
		}
		if len(win) != tc.want {
			t.Fatalf("k=%g m=%d: window has %d lines, want %d", tc.k, tc.m, len(win), tc.want)
		}
		objs := make([]int, len(win))
		for i, cf := range win {
			objs[i] = cf.Object
		}
		batch, err := ev.CounterfactualBatch(bonus, tc.k, objs)
		if err != nil {
			t.Fatal(err)
		}
		prev := -1
		for i := range win {
			if win[i].Rank != batch[i].Rank || win[i].ScoreDelta != batch[i].ScoreDelta ||
				win[i].Selected != batch[i].Selected || win[i].Feasible != batch[i].Feasible {
				t.Errorf("k=%g m=%d line %d: window %+v != batch %+v", tc.k, tc.m, i, win[i], batch[i])
			}
			if win[i].Rank <= prev {
				t.Errorf("k=%g m=%d: window not in rank order at line %d", tc.k, tc.m, i)
			}
			prev = win[i].Rank
		}
	}
	if _, err := ev.CounterfactualWindow(bonus, 0.1, -1); err == nil {
		t.Error("negative window size accepted")
	}
}

// TestCounterfactualValidation covers the error paths: out-of-range
// objects, mis-sized bonus vectors, bad fractions.
func TestCounterfactualValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	d := cfDataset(t, rng, 50)
	ev := NewEvaluator(d, rank.WeightedSum{Weights: []float64{1}}, rank.Beneficial)
	if _, err := ev.CounterfactualBatch(nil, 0.1, []int{-1}); err == nil {
		t.Error("negative object accepted")
	}
	if _, err := ev.CounterfactualBatch(nil, 0.1, []int{50}); err == nil {
		t.Error("out-of-range object accepted")
	}
	if _, err := ev.CounterfactualBatch([]float64{1}, 0.1, []int{0}); err == nil {
		t.Error("mis-sized bonus accepted")
	}
	if _, err := ev.CounterfactualBatch(nil, 0, []int{0}); err == nil {
		t.Error("k=0 accepted")
	}
	if _, err := ev.AttributeDisparity([]float64{1, 2}, 0.1); err == nil {
		t.Error("mis-sized bonus accepted by AttributeDisparity")
	}
	if _, err := ev.AttributeDisparity([]float64{1, 2, 3}, math.NaN()); err == nil {
		t.Error("NaN fraction accepted by AttributeDisparity")
	}
}

// TestCounterfactualTies exercises the index tie-break explicitly: two
// objects with exactly equal effective scores on either side of the
// cutoff. The lower index wins a tie, so the minimal delta to overtake a
// lower-indexed competitor must be strictly positive while a
// higher-indexed competitor is overtaken at delta exactly closing the gap.
func TestCounterfactualTies(t *testing.T) {
	b := dataset.NewBuilder([]string{"s"}, []string{"g"})
	scores := []float64{10, 9, 8, 8, 7} // objects 2 and 3 tie at the cutoff
	for _, s := range scores {
		b.Add([]float64{s}, []float64{0})
	}
	d, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	ev := NewEvaluator(d, rank.WeightedSum{Weights: []float64{1}}, rank.Beneficial)
	// k=0.6 selects 3 of 5: objects 0, 1, 2 (2 beats 3 on the index tie).
	cfs, err := ev.CounterfactualBatch(nil, 0.6, []int{2, 3})
	if err != nil {
		t.Fatal(err)
	}
	in, out := cfs[0], cfs[1]
	if !in.Selected || out.Selected {
		t.Fatalf("tie-break order wrong: %+v %+v", in, out)
	}
	// Object 3 must strictly exceed 8 to pass object 2, so its delta is
	// positive but at most one ulp of the cutoff — possibly less, when
	// round-half-even pushes a sub-ulp sum onto the next float. The exact
	// value is whatever the float arithmetic of the ranking decides; the
	// contract is only minimality, which the binary search guarantees.
	ulp := math.Nextafter(8, math.Inf(1)) - 8
	if out.ScoreDelta <= 0 || out.ScoreDelta > ulp {
		t.Errorf("enter delta across a losing tie = %v, want in (0, %v]", out.ScoreDelta, ulp)
	}
	if 8+out.ScoreDelta <= 8 {
		t.Errorf("enter delta %v does not clear the tied cutoff", out.ScoreDelta)
	}
	if prev := math.Nextafter(out.ScoreDelta, 0); 8+prev > 8 {
		t.Errorf("enter delta %v is not minimal: %v also clears the cutoff", out.ScoreDelta, prev)
	}
	// Object 2 must drop strictly below 8 (at equality the lower index
	// still ranks first): a negative sub-ulp delta.
	if in.ScoreDelta >= 0 || in.ScoreDelta < -ulp {
		t.Errorf("exit delta across a winning tie = %v, want in [-%v, 0)", in.ScoreDelta, ulp)
	}
	if 8+in.ScoreDelta >= 8 {
		t.Errorf("exit delta %v does not drop below the tied cutoff", in.ScoreDelta)
	}
	if prev := math.Nextafter(in.ScoreDelta, 0); 8+prev < 8 {
		t.Errorf("exit delta %v is not minimal: %v also drops below", in.ScoreDelta, prev)
	}
}

// TestCounterfactualAllocations pins the hot path: after the one ranking
// (pooled workspace scratch), a 16-object batch allocates only the result
// slice and the per-attribute backing array.
func TestCounterfactualAllocations(t *testing.T) {
	if raceEnabled {
		t.Skip("race mode drops sync.Pool items, inflating pooled-workspace alloc counts")
	}
	rng := rand.New(rand.NewSource(23))
	d := cfDataset(t, rng, 4000)
	ev := NewEvaluator(d, rank.WeightedSum{Weights: []float64{1}}, rank.Beneficial)
	bonus := []float64{2, 1, 0.5}
	objs := make([]int, 16)
	for i := range objs {
		objs[i] = rng.Intn(d.N())
	}
	call := func() { _, _ = ev.CounterfactualBatch(bonus, 0.05, objs) }
	call() // warm the workspace pool
	if allocs := testing.AllocsPerRun(10, call); allocs > 3 {
		t.Errorf("CounterfactualBatch: %.0f allocs per 16-object batch, want <= 3", allocs)
	}
}

// TestAttributeDisparity checks the leave-one-out decomposition against
// directly evaluated norms and its structural identities.
func TestAttributeDisparity(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	d := cfDataset(t, rng, 1200)
	ev := NewEvaluator(d, rank.WeightedSum{Weights: []float64{1}}, rank.Beneficial)
	bonus := []float64{3, 1.5, 0}
	const k = 0.1
	att, err := ev.AttributeDisparity(bonus, k)
	if err != nil {
		t.Fatal(err)
	}
	norm := func(b []float64) float64 {
		v, err := ev.Disparity(b, k)
		if err != nil {
			t.Fatal(err)
		}
		s := 0.0
		for _, x := range v {
			s += x * x
		}
		return math.Sqrt(s)
	}
	if got, want := att.NormBase, norm(nil); got != want {
		t.Errorf("NormBase = %v, want %v", got, want)
	}
	if got, want := att.NormFull, norm(bonus); got != want {
		t.Errorf("NormFull = %v, want %v", got, want)
	}
	if att.Reduction != att.NormBase-att.NormFull {
		t.Errorf("Reduction = %v, want NormBase-NormFull = %v", att.Reduction, att.NormBase-att.NormFull)
	}
	for j := range att.LeaveOneOut {
		loo := append([]float64(nil), bonus...)
		loo[j] = 0
		if got, want := att.LeaveOneOut[j], norm(loo); got != want {
			t.Errorf("LeaveOneOut[%d] = %v, want %v", j, got, want)
		}
		if att.Contribution[j] != att.LeaveOneOut[j]-att.NormFull {
			t.Errorf("Contribution[%d] = %v, want %v", j, att.Contribution[j], att.LeaveOneOut[j]-att.NormFull)
		}
	}
	// Attribute 2 carries no bonus: withdrawing it changes nothing.
	if att.Contribution[2] != 0 {
		t.Errorf("zero-bonus attribute contributes %v, want 0", att.Contribution[2])
	}
	// The compensated attributes must matter on this correlated cohort.
	if att.Contribution[0] <= 0 {
		t.Errorf("dominant attribute contributes %v, want > 0", att.Contribution[0])
	}
}
