package core

import (
	"context"
	"errors"
	"reflect"
	"testing"

	"fairrank/internal/rank"
	"fairrank/internal/synth"
)

// TestTrainCtxCancelMidTrain pins the trainer's cancellation contract:
// canceling mid-descent stops the run with context.Canceled, and the same
// trainer instance afterwards produces a result bit-identical to a fresh
// trainer's — an abandoned run must not leak state into the next one.
func TestTrainCtxCancelMidTrain(t *testing.T) {
	cfg := synth.DefaultSchoolConfig()
	cfg.N = 2000
	cfg.Seed = 17
	d, err := synth.GenerateSchool(cfg)
	if err != nil {
		t.Fatal(err)
	}
	scorer := rank.WeightedSum{Weights: synth.SchoolScoreWeights()}
	obj := DisparityObjective(0.05)

	tr := NewTrainer(d, scorer)
	ctx, cancel := context.WithCancel(context.Background())
	opts := DefaultOptions()
	steps := 0
	opts.Trace = func(TraceStep) {
		steps++
		if steps == 30 {
			cancel()
		}
	}
	if _, err := tr.TrainCtx(ctx, obj, opts); !errors.Is(err, context.Canceled) {
		t.Fatalf("TrainCtx error = %v, want context.Canceled", err)
	}

	// Same trainer, fresh run: must match a brand-new trainer exactly.
	got, err := tr.Train(obj, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	want, err := NewTrainer(d, scorer).Train(obj, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Bonus, want.Bonus) || got.Steps != want.Steps {
		t.Errorf("post-cancel train diverged: got %v (%d steps), want %v (%d steps)",
			got.Bonus, got.Steps, want.Bonus, want.Steps)
	}
}

// TestTrainCtxPreCanceled: an already-dead context trains zero steps.
func TestTrainCtxPreCanceled(t *testing.T) {
	ev := mergeEvaluator(t, 1500)
	tr := NewTrainer(ev.Dataset(), rank.WeightedSum{Weights: synth.SchoolScoreWeights()})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	opts := DefaultOptions()
	ran := false
	opts.Trace = func(TraceStep) { ran = true }
	if _, err := tr.TrainCtx(ctx, DisparityObjective(0.05), opts); !errors.Is(err, context.Canceled) {
		t.Fatalf("TrainCtx error = %v, want context.Canceled", err)
	}
	if ran {
		t.Error("pre-canceled TrainCtx executed descent steps")
	}
}

// TestEvaluatorCtxPreCanceled sweeps every context-aware evaluator entry
// point with a dead context: each must fail with context.Canceled and
// leave the evaluator fully usable (the following background-context call
// succeeds and matches the non-ctx API).
func TestEvaluatorCtxPreCanceled(t *testing.T) {
	ev := mergeEvaluator(t, 2000)
	bonus := []float64{2, 11, 10.5, 12.5}
	pts := []SweepPoint{{Bonus: bonus, K: 0.05}, {Bonus: nil, K: 0.1}}
	dead, cancel := context.WithCancel(context.Background())
	cancel()

	calls := map[string]func(ctx context.Context) error{
		"SelectCtx":            func(ctx context.Context) error { _, err := ev.SelectCtx(ctx, bonus, 0.05); return err },
		"DisparityCtx":         func(ctx context.Context) error { _, err := ev.DisparityCtx(ctx, bonus, 0.05); return err },
		"NDCGCtx":              func(ctx context.Context) error { _, err := ev.NDCGCtx(ctx, bonus, 0.05); return err },
		"ExplainCtx":           func(ctx context.Context) error { _, err := ev.ExplainCtx(ctx, bonus, 0.05); return err },
		"DisparitySweepCtx":    func(ctx context.Context) error { _, err := ev.DisparitySweepCtx(ctx, pts); return err },
		"NDCGSweepCtx":         func(ctx context.Context) error { _, err := ev.NDCGSweepCtx(ctx, pts); return err },
		"DisparateImpactSweep": func(ctx context.Context) error { _, err := ev.DisparateImpactSweepCtx(ctx, pts); return err },
		"CounterfactualBatchCtx": func(ctx context.Context) error {
			_, err := ev.CounterfactualBatchCtx(ctx, bonus, 0.05, []int{0, 7, 99})
			return err
		},
		"BundleStatsCtx": func(ctx context.Context) error {
			_, err := ev.BundleStatsCtx(ctx, BundleStatsConfig{Bonus: bonus, K: 0.05, Margins: 5})
			return err
		},
	}
	for name, call := range calls {
		if err := call(dead); !errors.Is(err, context.Canceled) {
			t.Errorf("%s with dead context: error = %v, want context.Canceled", name, err)
		}
		if err := call(context.Background()); err != nil {
			t.Errorf("%s after cancellation: %v", name, err)
		}
	}
}

// TestCtxVariantsBitIdentical pins that the background-context entries
// answer bit-identically to the original APIs — the cancellation seams
// must be invisible when no one cancels.
func TestCtxVariantsBitIdentical(t *testing.T) {
	ev := mergeEvaluator(t, 2000)
	bonus := []float64{2, 11, 10.5, 12.5}
	ctx := context.Background()

	selA, errA := ev.Select(bonus, 0.05)
	selB, errB := ev.SelectCtx(ctx, bonus, 0.05)
	if errA != nil || errB != nil || !reflect.DeepEqual(selA, selB) {
		t.Errorf("SelectCtx diverged (errs %v, %v)", errA, errB)
	}
	dA, errA := ev.Disparity(bonus, 0.05)
	dB, errB := ev.DisparityCtx(ctx, bonus, 0.05)
	if errA != nil || errB != nil || !reflect.DeepEqual(dA, dB) {
		t.Errorf("DisparityCtx diverged (errs %v, %v)", errA, errB)
	}
	nA, errA := ev.NDCG(bonus, 0.05)
	nB, errB := ev.NDCGCtx(ctx, bonus, 0.05)
	if errA != nil || errB != nil || nA != nB {
		t.Errorf("NDCGCtx diverged: %v vs %v (errs %v, %v)", nA, nB, errA, errB)
	}
	cfA, errA := ev.CounterfactualBatch(bonus, 0.05, []int{3, 44, 500})
	cfB, errB := ev.CounterfactualBatchCtx(ctx, bonus, 0.05, []int{3, 44, 500})
	if errA != nil || errB != nil || !reflect.DeepEqual(cfA, cfB) {
		t.Errorf("CounterfactualBatchCtx diverged (errs %v, %v)", errA, errB)
	}
}
