package core

import (
	"sync"
	"testing"

	"fairrank/internal/dataset"
	"fairrank/internal/rank"
	"fairrank/internal/synth"
)

// Registration-cost benchmarks for the combo-run merge ranking: the
// partition + per-run pre-sort happens once, inside NewEvaluator, and
// buys every later cold prefix request its O(p log g) merge. These
// names are guarded against regression by cmd/benchguard in CI
// (reference: BENCH_rank.json), alongside the now-merge-served cold
// sweep / bundle / counterfactual workloads.

var benchRegState struct {
	once       sync.Once
	discrete   *dataset.Dataset // quantized ENI: combo runs build (g ≈ 700)
	continuous *dataset.Dataset // continuous ENI: partition declines
	err        error
}

func benchRegDatasets(b *testing.B) (*dataset.Dataset, *dataset.Dataset) {
	b.Helper()
	s := &benchRegState
	s.once.Do(func() {
		cfg := synth.DefaultSchoolConfig() // 80k students, quantized ENI
		if s.discrete, s.err = synth.GenerateSchool(cfg); s.err != nil {
			return
		}
		cfg.ENILevels = 0 // continuous ENI: ~73k distinct fairness rows
		s.continuous, s.err = synth.GenerateSchool(cfg)
	})
	if s.err != nil {
		b.Fatal(s.err)
	}
	return s.discrete, s.continuous
}

func benchScorer() rank.Scorer {
	return rank.WeightedSum{Weights: synth.SchoolScoreWeights()}
}

// BenchmarkEvaluatorRegistration80k is the full registration cost on the
// merge-capable cohort: base scoring, the cached uncompensated ranking,
// and the combo-run partition + per-run pre-sort.
func BenchmarkEvaluatorRegistration80k(b *testing.B) {
	d, _ := benchRegDatasets(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ev := NewEvaluator(d, benchScorer(), rank.Beneficial)
		if _, ok := ev.RunStats(); !ok {
			b.Fatal("registration built no combo runs")
		}
	}
}

// BenchmarkEvaluatorRegistration80kNoRuns is the before-side reference:
// the same registration on a continuous-attribute cohort, where the
// partition scans, declines, and leaves only the pre-merge work.
func BenchmarkEvaluatorRegistration80kNoRuns(b *testing.B) {
	_, d := benchRegDatasets(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ev := NewEvaluator(d, benchScorer(), rank.Beneficial)
		if _, ok := ev.RunStats(); ok {
			b.Fatal("continuous cohort unexpectedly built combo runs")
		}
	}
}

// BenchmarkComboRunsBuild80k isolates the merge structure's own
// construction: fairness-row partition, counting sort into runs, and the
// per-run (base desc, id asc) pre-sort.
func BenchmarkComboRunsBuild80k(b *testing.B) {
	d, _ := benchRegDatasets(b)
	base := benchScorer().BaseScores(d)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if rank.NewComboRuns(d, base, 0) == nil {
			b.Fatal("combo-run construction declined")
		}
	}
}
