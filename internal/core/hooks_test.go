package core

import (
	"strings"
	"sync"
	"testing"

	"fairrank/internal/dataset"
	"fairrank/internal/rank"
	"fairrank/internal/synth"
)

func hooksDataset(t *testing.T, seed int64) *dataset.Dataset {
	t.Helper()
	cfg := synth.DefaultSchoolConfig()
	cfg.N = 3000
	cfg.Seed = seed
	d, err := synth.GenerateSchool(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestObjectiveByName(t *testing.T) {
	for _, name := range ObjectiveNames() {
		obj, err := ObjectiveByName(name, 0.05)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if obj.Name() == "" {
			t.Errorf("%s: empty objective name", name)
		}
	}
	if _, err := ObjectiveByName("banana", 0.05); err == nil || !strings.Contains(err.Error(), "banana") {
		t.Errorf("unknown objective: err = %v", err)
	}
	for _, k := range []float64{0, -0.1, 1.5} {
		if _, err := ObjectiveByName("disparity", k); err == nil {
			t.Errorf("k=%v accepted", k)
		}
	}
	// logdisc must stay valid below its default step.
	if _, err := ObjectiveByName("logdisc", 0.05); err != nil {
		t.Errorf("logdisc@0.05: %v", err)
	}
}

func TestTrainerCloneBitIdentical(t *testing.T) {
	d := hooksDataset(t, 42)
	scorer := rank.WeightedSum{Weights: synth.SchoolScoreWeights()}
	opts := DefaultOptions()
	opts.SampleSize = 200
	obj := DisparityObjective(0.05)

	proto := NewTrainer(d, scorer)
	want, err := proto.Train(obj, opts)
	if err != nil {
		t.Fatal(err)
	}

	// Clones run concurrently; every one must reproduce the prototype's
	// vector bit for bit (same seed, independent workspaces).
	const clones = 4
	results := make([]Result, clones)
	errs := make([]error, clones)
	var wg sync.WaitGroup
	for c := 0; c < clones; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			results[c], errs[c] = proto.Clone().Train(obj, opts)
		}(c)
	}
	wg.Wait()
	for c := 0; c < clones; c++ {
		if errs[c] != nil {
			t.Fatalf("clone %d: %v", c, errs[c])
		}
		for j := range want.Raw {
			if results[c].Raw[j] != want.Raw[j] {
				t.Fatalf("clone %d dimension %d: %v != %v", c, j, results[c].Raw[j], want.Raw[j])
			}
		}
	}
}

func TestTrainerReset(t *testing.T) {
	a := hooksDataset(t, 1)
	b := hooksDataset(t, 2)
	scorer := rank.WeightedSum{Weights: synth.SchoolScoreWeights()}
	opts := DefaultOptions()
	opts.SampleSize = 200
	obj := DisparityObjective(0.05)

	tr := NewTrainer(a, scorer)
	if _, err := tr.Train(obj, opts); err != nil {
		t.Fatal(err)
	}
	tr.Reset(b, scorer)
	got, err := tr.Train(obj, opts)
	if err != nil {
		t.Fatal(err)
	}
	want, err := NewTrainer(b, scorer).Train(obj, opts)
	if err != nil {
		t.Fatal(err)
	}
	for j := range want.Raw {
		if got.Raw[j] != want.Raw[j] {
			t.Fatalf("reset trainer diverged at dimension %d: %v != %v", j, got.Raw[j], want.Raw[j])
		}
	}
	if tr.Dataset() != b {
		t.Error("Reset did not repoint the dataset")
	}
}

func TestTrainerResetChangesDimensions(t *testing.T) {
	a := hooksDataset(t, 3) // 4 fairness dims
	narrow := a.WithFairColumns([]int{0, 1})
	scorer := rank.WeightedSum{Weights: synth.SchoolScoreWeights()}
	opts := DefaultOptions()
	opts.SampleSize = 200
	obj := DisparityObjective(0.05)

	tr := NewTrainer(a, scorer)
	if _, err := tr.Train(obj, opts); err != nil {
		t.Fatal(err)
	}
	tr.Reset(narrow, scorer)
	got, err := tr.Train(obj, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Bonus) != 2 {
		t.Fatalf("bonus has %d dimensions after reset, want 2", len(got.Bonus))
	}
	want, err := NewTrainer(narrow, scorer).Train(obj, opts)
	if err != nil {
		t.Fatal(err)
	}
	for j := range want.Raw {
		if got.Raw[j] != want.Raw[j] {
			t.Fatalf("dimension-changing reset diverged at %d: %v != %v", j, got.Raw[j], want.Raw[j])
		}
	}
}
