package core

import (
	"context"
	"fmt"
	"math"
	"sort"

	"fairrank/internal/engine"
	"fairrank/internal/metrics"
	"fairrank/internal/rank"
)

// BundleData pass. Because bonus points enter the effective score
// additively (Definition 2), every fixed-(bonus, k) audit quantity — the
// published cutoff, per-group selection counts, disparity norms, nDCG,
// FPR differences, the beneficiary and displaced sets, and the
// counterfactual margin window — is a deterministic function of one
// ranked order per score vector. BundleStats therefore ranks the
// compensated order once, reuses the cached uncompensated order for the
// base side, folds the leave-one-attribute-out attribution's extra
// vectors into the same fan-out, and answers everything else from prefix
// aggregates of those shared orders (metrics.PrefixCentroid /
// PrefixGroupCounts / PrefixFPCounts / PrefixDCG): a cold audit bundle
// costs at most dims+1 ranking passes instead of the ~dims+5 the
// one-metric-at-a-time evaluators pay, and — since only the leading
// cnt+margins positions of each order are ever read — each pass is a
// bounded-heap prefix selection (O(n log p)), not a full sort.
//
// Results are bit-identical to the independent pointwise evaluators
// (Explain, AttributeDisparity, NDCG, FPRDiff, CounterfactualWindow):
// the prefix aggregates resume the same left-to-right folds, the prefix
// selection reproduces the full sort's leading segment exactly (the
// comparator is a total order), and the scalar finishers share their
// formulas with the pointwise implementations. See
// TestBundleStatsDifferential and TestBundleStatsProperty.

// BundleStatsConfig parameterizes one BundleStats pass.
type BundleStatsConfig struct {
	// Bonus is the audited bonus vector; nil or all-zero audits the
	// uncompensated ranking (the compensated side degenerates to the base
	// order and the attribution is flat).
	Bonus []float64
	// K is the audited selection fraction, in (0, 1].
	K float64
	// Margins is how many objects on each side of the cutoff receive
	// counterfactual margin lines (0 = none); the window is clamped to
	// the population.
	Margins int
	// IncludeFPR adds the per-group false-positive-rate differences; the
	// dataset must carry ground-truth outcomes.
	IncludeFPR bool
	// IncludeExposure adds the per-capita exposure rows and DDP scalars for
	// both the compensated and the uncompensated selection; every fairness
	// attribute must be binary (see Evaluator.Exposure).
	IncludeExposure bool
}

// BundleStats is every fixed-(bonus, k) audit quantity of one bonus
// policy, computed from shared ranked orders by Evaluator.BundleStats.
// It is the data layer of report.BuildBundle; the service layer also
// reuses its Margins to answer per-object counterfactual requests.
type BundleStats struct {
	// K is the audited selection fraction; Selected the resulting count.
	K        float64
	Selected int

	// Cutoff is the effective score of the last selected object under the
	// policy; BaseCutoff the same for the uncompensated ranking.
	Cutoff     float64
	BaseCutoff float64

	// FairNames are the fairness attribute names; Bonus the audited vector
	// (copied), aligned with every per-dimension slice below.
	FairNames []string
	Bonus     []float64

	// GroupCounts[j] counts selected members of binary fairness attribute
	// j (value > 0.5) under the policy; BaseGroupCounts is the same for
	// the uncompensated selection.
	GroupCounts     []int
	BaseGroupCounts []int

	// AdmittedByBonus lists objects selected under the policy but not in
	// the uncompensated selection, ascending; DisplacedByBonus the
	// reverse.
	AdmittedByBonus  []int
	DisplacedByBonus []int

	// NormBefore/NormAfter are the disparity norms without and with the
	// policy; Reduction their difference. LeaveOneOut[j] is the norm with
	// attribute j's bonus withdrawn and Contribution[j] how much worse
	// that is than NormAfter — the leave-one-attribute-out attribution.
	NormBefore   float64
	NormAfter    float64
	Reduction    float64
	LeaveOneOut  []float64
	Contribution []float64

	// NDCG is the utility retained relative to the uncompensated ranking.
	NDCG float64

	// FPRDiff carries the per-group false-positive-rate differences under
	// the policy when the config asked for them; nil otherwise.
	FPRDiff []float64

	// Exposure/BaseExposure carry the per-capita exposure rows (NumFair
	// named groups plus the unprotected rest, so one entry wider than the
	// other per-dimension slices) of the compensated and uncompensated
	// selections when the config asked for them; nil otherwise.
	// ExposureDDP/BaseExposureDDP are the matching maximum pairwise
	// per-capita gaps.
	Exposure        []float64
	ExposureDDP     float64
	BaseExposure    []float64
	BaseExposureDDP float64

	// Margins are exact counterfactuals for the boundary window — the
	// Margins last selected and Margins first excluded objects, in rank
	// order.
	Margins []Counterfactual
}

// BundleStats computes every audit-bundle quantity for a bonus vector at
// selection fraction k in one shared-order pass: the compensated prefix,
// the cached base order, and one leave-one-out prefix per attribute with
// a non-zero bonus, fanned over the engine worker pool. See the package
// comment above for the cost model and the bit-identity contract.
func (e *Evaluator) BundleStats(cfg BundleStatsConfig) (*BundleStats, error) {
	return e.BundleStatsCtx(context.Background(), cfg)
}

// BundleStatsCtx is BundleStats with cooperative cancellation: once ctx
// is done, no further ranking task is dispatched, in-flight tasks stop at
// their next checkpoint, and the context's error is returned — no partial
// bundle escapes.
func (e *Evaluator) BundleStatsCtx(ctx context.Context, cfg BundleStatsConfig) (*BundleStats, error) {
	if err := e.checkBonusDims(cfg.Bonus); err != nil {
		return nil, err
	}
	n := e.d.N()
	if n == 0 {
		return nil, fmt.Errorf("core: cannot audit an empty dataset")
	}
	if cfg.Margins < 0 {
		return nil, fmt.Errorf("core: margin window %d is negative", cfg.Margins)
	}
	if cfg.IncludeFPR && !e.d.HasOutcomes() {
		return nil, fmt.Errorf("core: FPR evaluation requires outcomes")
	}
	if cfg.IncludeExposure {
		if err := e.exposureGuard(); err != nil {
			return nil, err
		}
	}
	cnt, err := rank.SelectCount(n, cfg.K)
	if err != nil {
		return nil, err
	}
	// The nDCG cut resolves through the metric package's own fraction
	// arithmetic, exactly as the pointwise NDCG does. (Both round
	// half-up and clamp to [1, n], so the cuts coincide; going through
	// metrics.PrefixCount keeps that an implementation detail of the
	// metric, not an assumption of this pass.)
	ndcgCut, err := metrics.PrefixCount(n, cfg.K)
	if err != nil {
		return nil, err
	}
	dims := e.d.NumFair()

	// The Bonus copy is always dims long (a nil config bonus means the
	// zero vector), so every per-dimension slice in the result is
	// aligned — consumers like report.FromStats index them in lockstep.
	bonus := make([]float64, dims)
	copy(bonus, cfg.Bonus)
	st := &BundleStats{
		K:               cfg.K,
		Selected:        cnt,
		FairNames:       e.d.FairNames(),
		Bonus:           bonus,
		GroupCounts:     make([]int, dims),
		BaseGroupCounts: make([]int, dims),
		LeaveOneOut:     make([]float64, dims),
		Contribution:    make([]float64, dims),
	}

	// Leave-one-out jobs: one ranking per attribute whose bonus is
	// non-zero. An attribute already at zero leaves the vector unchanged,
	// so its leave-one-out norm IS the full policy's norm — no ranking.
	var looJobs []int
	for j, b := range cfg.Bonus {
		if b != 0 {
			looJobs = append(looJobs, j)
		}
	}
	looBacking := make([]float64, len(looJobs)*dims)
	looVecs := make([][]float64, len(looJobs))
	for r, j := range looJobs {
		vec := looBacking[r*dims : (r+1)*dims]
		copy(vec, cfg.Bonus)
		vec[j] = 0
		looVecs[r] = vec
	}

	// cuts is shared read-only by every prefix aggregation below.
	cuts := []int{cnt}
	ndcgCuts := []int{ndcgCut}
	terrs := make([]error, 2+len(looJobs))

	// Task 0 answers everything addressed by the compensated order; task
	// 1 the base-order side; tasks 2.. one leave-one-out norm each. On a
	// multicore box the distinct rankings overlap; on one core the fan-out
	// degenerates to a loop over one pooled workspace.
	perr := e.parallelCtx(ctx, 2+len(looJobs), func(ws *engine.Workspace, i int) {
		switch i {
		case 0:
			terrs[0] = e.bundleFullPass(ctx, ws, cfg, st, cnt, cuts, ndcgCuts)
		case 1:
			st.BaseCutoff = e.base[e.origOrd[cnt-1]]
			copy(st.BaseGroupCounts, metrics.PrefixGroupCountsInto(e.d, e.origOrd, cuts, ws.Cnts(dims)))
			cent := metrics.PrefixCentroidInto(e.d, e.origOrd, cuts, ws.Pop(), ws.Agg(dims))
			st.NormBefore = normAgainst(cent, e.centroid)
			if cfg.IncludeExposure {
				st.BaseExposure, st.BaseExposureDDP, terrs[1] = e.exposureSideWS(ws, e.origOrd, cuts)
			}
		default:
			r := i - 2
			order, err := e.rankedPrefixWS(ctx, ws, looVecs[r], cnt)
			if err != nil {
				terrs[i] = err
				return
			}
			cent := metrics.PrefixCentroidInto(e.d, order, cuts, ws.Pop(), ws.Agg(dims))
			st.LeaveOneOut[looJobs[r]] = normAgainst(cent, e.centroid)
		}
	})
	if err := firstErr(perr, terrs); err != nil {
		return nil, err
	}

	st.Reduction = st.NormBefore - st.NormAfter
	for j := 0; j < dims; j++ {
		if len(cfg.Bonus) == 0 || cfg.Bonus[j] == 0 {
			st.LeaveOneOut[j] = st.NormAfter
		}
		st.Contribution[j] = st.LeaveOneOut[j] - st.NormAfter
	}
	return st, nil
}

// bundleFullPass computes every quantity addressed by the compensated
// order from one ranked prefix: cutoff, group counts, disparity norm,
// nDCG, FPR differences, the beneficiary/displaced sets, and the
// counterfactual margin window. Only it can fail (zero ideal DCG).
func (e *Evaluator) bundleFullPass(ctx context.Context, ws *engine.Workspace, cfg BundleStatsConfig, st *BundleStats, cnt int, cuts, ndcgCuts []int) error {
	n := e.d.N()
	dims := e.d.NumFair()
	p := cnt + cfg.Margins
	if p > n {
		p = n
	}
	order, err := e.rankedPrefixWS(ctx, ws, cfg.Bonus, p)
	if err != nil {
		return err
	}
	eff := e.base
	if !isZero(cfg.Bonus) {
		eff = ws.Eff(n) // filled by rankedPrefixWS
	}
	st.Cutoff = eff[order[cnt-1]]

	copy(st.GroupCounts, metrics.PrefixGroupCountsInto(e.d, order, cuts, ws.Cnts(dims)))

	cent := metrics.PrefixCentroidInto(e.d, order, cuts, ws.Pop(), ws.Agg(dims))
	st.NormAfter = normAgainst(cent, e.centroid)

	// nDCG from prefix DCG sums over the compensated and original orders;
	// the centroid row above has been consumed, so the aggregate scratch
	// can be re-carved.
	agg := ws.Agg(2)
	corrected := metrics.PrefixDCGInto(e.base, order, ndcgCuts, agg[:1])
	ideal := metrics.PrefixDCGInto(e.base, e.origOrd, ndcgCuts, agg[1:])
	if ideal[0] == 0 {
		return metrics.ErrZeroIdealDCG
	}
	st.NDCG = corrected[0] / ideal[0]

	if cfg.IncludeFPR {
		cnts := ws.Cnts(dims + 1)
		rows, all := cnts[:dims], cnts[dims:]
		metrics.PrefixFPCountsInto(e.d, order, cuts, rows, all)
		st.FPRDiff = make([]float64, dims)
		if e.negAll != 0 {
			overall := float64(all[0]) / float64(e.negAll)
			for j := range st.FPRDiff {
				if e.negTot[j] == 0 {
					continue
				}
				st.FPRDiff[j] = float64(rows[j])/float64(e.negTot[j]) - overall
			}
		}
	}

	if cfg.IncludeExposure {
		var err error
		if st.Exposure, st.ExposureDDP, err = e.exposureSideWS(ws, order, cuts); err != nil {
			return err
		}
	}

	// Beneficiary sets: symmetric difference of the two selections via
	// the membership-mark buffer (reset to all-false on every path).
	marks := ws.Marks(n)
	for _, o := range e.origOrd[:cnt] {
		marks[o] = true
	}
	for _, o := range order[:cnt] {
		if marks[o] {
			marks[o] = false
		} else {
			st.AdmittedByBonus = append(st.AdmittedByBonus, o)
		}
	}
	for _, o := range e.origOrd[:cnt] {
		if marks[o] {
			st.DisplacedByBonus = append(st.DisplacedByBonus, o)
			marks[o] = false
		}
	}
	sort.Ints(st.AdmittedByBonus)
	sort.Ints(st.DisplacedByBonus)

	if cfg.Margins > 0 {
		lo := cnt - cfg.Margins
		if lo < 0 {
			lo = 0
		}
		st.Margins = e.counterfactualsWS(ws, order, cfg.Bonus, cnt, order[lo:p])
	}
	return nil
}

// normAgainst returns the L2 norm of (cent - ref), the disparity norm of
// a selection centroid against the population centroid. The fold —
// ascending dimension, square-accumulate, one final sqrt — is exactly
// metrics.Norm over the subtracted vector, so the value is bit-identical
// to the pointwise Disparity+Norm path.
func normAgainst(cent, ref []float64) float64 {
	var s float64
	for j := range cent {
		x := cent[j] - ref[j]
		s += x * x
	}
	return math.Sqrt(s)
}
