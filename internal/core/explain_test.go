package core

import (
	"math"
	"strings"
	"testing"

	"fairrank/internal/rank"
)

func TestExplainReport(t *testing.T) {
	d := tinyDataset(t, 2000, 21)
	scorer := rank.WeightedSum{Weights: []float64{1}}
	ev := NewEvaluator(d, scorer, rank.Beneficial)
	bonus := []float64{5} // the generator's structural penalty

	exp, err := ev.Explain(bonus, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if exp.Selected != 200 {
		t.Errorf("Selected = %d, want 200", exp.Selected)
	}
	// The compensated selection admits more protected members.
	if exp.GroupCounts[0] <= exp.BaseGroupCounts[0] {
		t.Errorf("bonus did not raise group count: %d vs %d", exp.GroupCounts[0], exp.BaseGroupCounts[0])
	}
	// Beneficiaries and displaced balance exactly (same selection size).
	if len(exp.AdmittedByBonus) != len(exp.DisplacedByBonus) {
		t.Errorf("admitted %d != displaced %d", len(exp.AdmittedByBonus), len(exp.DisplacedByBonus))
	}
	if len(exp.AdmittedByBonus) == 0 {
		t.Error("a binding bonus must admit someone new")
	}
	// Every beneficiary is protected (only they receive points here).
	for _, i := range exp.AdmittedByBonus {
		if d.Fair(i, 0) < 0.5 {
			t.Errorf("beneficiary %d is not protected", i)
		}
	}
	if exp.Cutoff == exp.BaseCutoff {
		t.Error("cutoffs should differ under a binding bonus")
	}

	// Summary mentions the key numbers.
	text := strings.Join(exp.Summary(), "\n")
	for _, want := range []string{"cutoff", "bonus points", "admitted"} {
		if !strings.Contains(text, want) {
			t.Errorf("summary missing %q:\n%s", want, text)
		}
	}
}

func TestExplainObjectBreakdown(t *testing.T) {
	d := tinyDataset(t, 2000, 22)
	scorer := rank.WeightedSum{Weights: []float64{1}}
	ev := NewEvaluator(d, scorer, rank.Beneficial)
	bonus := []float64{5}
	exp, err := ev.Explain(bonus, 0.1)
	if err != nil {
		t.Fatal(err)
	}

	sel, err := ev.Select(bonus, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	inSel := make(map[int]bool)
	for _, i := range sel {
		inSel[i] = true
	}
	for _, obj := range []int{sel[0], sel[len(sel)-1], exp.AdmittedByBonus[0]} {
		oe, err := ev.ExplainObject(exp, obj)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(oe.Effective-(oe.BaseScore+oe.BonusTotal)) > 1e-12 {
			t.Errorf("effective %v != base %v + bonus %v", oe.Effective, oe.BaseScore, oe.BonusTotal)
		}
		if oe.Selected != inSel[obj] {
			t.Errorf("object %d Selected = %t, want %t (margin %v)", obj, oe.Selected, inSel[obj], oe.Margin)
		}
		if d.Fair(obj, 0) > 0.5 && oe.PerAttribute[0] != 5 {
			t.Errorf("protected object %d attribute contribution = %v, want 5", obj, oe.PerAttribute[0])
		}
		if d.Fair(obj, 0) < 0.5 && oe.BonusTotal != 0 {
			t.Errorf("unprotected object %d received bonus %v", obj, oe.BonusTotal)
		}
	}
	// Everyone with a positive margin is selected and vice versa.
	for obj := 0; obj < d.N(); obj += 97 {
		oe, err := ev.ExplainObject(exp, obj)
		if err != nil {
			t.Fatal(err)
		}
		if oe.Margin > 1e-9 && !inSel[obj] {
			t.Errorf("object %d above cutoff (margin %v) but not selected", obj, oe.Margin)
		}
		if oe.Margin < -1e-9 && inSel[obj] {
			t.Errorf("object %d below cutoff (margin %v) but selected", obj, oe.Margin)
		}
	}
	if _, err := ev.ExplainObject(exp, -1); err == nil {
		t.Error("negative object id: expected error")
	}
	if _, err := ev.ExplainObject(exp, d.N()); err == nil {
		t.Error("out-of-range object id: expected error")
	}
}

func TestExplainAdversePolarity(t *testing.T) {
	d := tinyDataset(t, 1000, 23)
	scorer := rank.WeightedSum{Weights: []float64{1}}
	ev := NewEvaluator(d, scorer, rank.Adverse)
	exp, err := ev.Explain([]float64{3}, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	// Under adverse polarity the per-attribute contribution is negative
	// for protected objects.
	var protectedObj int = -1
	for i := 0; i < d.N(); i++ {
		if d.Fair(i, 0) > 0.5 {
			protectedObj = i
			break
		}
	}
	oe, err := ev.ExplainObject(exp, protectedObj)
	if err != nil {
		t.Fatal(err)
	}
	if oe.PerAttribute[0] != -3 {
		t.Errorf("adverse contribution = %v, want -3", oe.PerAttribute[0])
	}
}

func TestEnsembleStability(t *testing.T) {
	d := tinyDataset(t, 4000, 24)
	scorer := rank.WeightedSum{Weights: []float64{1}}
	opts := DefaultOptions()
	res, err := Ensemble(d, scorer, DisparityObjective(0.1), opts, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Runs) != 5 {
		t.Fatalf("runs = %d", len(res.Runs))
	}
	// The generator's penalty is 5: the cross-seed mean should sit nearby
	// with modest spread.
	if res.Mean[0] < 3 || res.Mean[0] > 7 {
		t.Errorf("ensemble mean = %v, want ≈ 5", res.Mean[0])
	}
	if res.Std[0] > 2 {
		t.Errorf("ensemble std = %v, suspiciously unstable", res.Std[0])
	}
	if m := math.Mod(res.Bonus[0], 0.5); m > 1e-9 && m < 0.5-1e-9 {
		t.Errorf("ensemble bonus %v not rounded to granularity", res.Bonus[0])
	}
	if _, err := Ensemble(d, scorer, DisparityObjective(0.1), opts, 0); err == nil {
		t.Error("zero runs: expected error")
	}
}

func TestEnsembleSingleRunMatchesRun(t *testing.T) {
	d := tinyDataset(t, 1000, 25)
	scorer := rank.WeightedSum{Weights: []float64{1}}
	opts := DefaultOptions()
	opts.Seed = 77
	ens, err := Ensemble(d, scorer, DisparityObjective(0.1), opts, 1)
	if err != nil {
		t.Fatal(err)
	}
	single, err := Run(d, scorer, DisparityObjective(0.1), opts)
	if err != nil {
		t.Fatal(err)
	}
	if ens.Mean[0] != single.Raw[0] {
		t.Errorf("single-run ensemble mean %v != run raw %v", ens.Mean[0], single.Raw[0])
	}
	if ens.Std[0] != 0 {
		t.Errorf("single-run std = %v, want 0", ens.Std[0])
	}
}
