package core

import (
	"fmt"
	"math"

	"fairrank/internal/dataset"
	"fairrank/internal/engine"
	"fairrank/internal/rank"
)

// EnsembleResult aggregates DCA runs across independent seeds. The paper's
// refinement pass exists to tame sampling noise (Section VI-A5); the
// ensemble quantifies the residual seed-to-seed variability and offers the
// cross-seed mean as a further-stabilized vector.
type EnsembleResult struct {
	// Bonus is the cross-seed mean of the raw (unrounded) vectors, rounded
	// to the option granularity.
	Bonus []float64
	// Mean and Std are the per-dimension statistics of the raw vectors.
	Mean []float64
	Std  []float64
	// Runs holds the individual results, in seed order.
	Runs []Result
}

// Ensemble runs DCA with seeds opts.Seed, opts.Seed+1, ..., opts.Seed+runs-1
// and aggregates the raw bonus vectors. Runs execute on the engine's
// worker pool with one workspace per goroutine, sharing the precomputed
// base scores (they are independent and the dataset is read-only); the
// result is deterministic regardless of scheduling because aggregation
// happens in seed order. runs must be at least 1.
func Ensemble(d *dataset.Dataset, scorer rank.Scorer, obj Objective, opts Options, runs int) (EnsembleResult, error) {
	if runs < 1 {
		return EnsembleResult{}, fmt.Errorf("core: ensemble of %d runs", runs)
	}
	results := make([]Result, runs)
	errs := make([]error, runs)
	base := scorer.BaseScores(d) // shared, read-only across workers
	engine.ForEach(runs, d.NumFair(), func(ws *engine.Workspace, r int) {
		o := opts
		o.Seed = opts.Seed + int64(r)
		o.Trace = nil // trace hooks are not safe to share across goroutines
		t := &Trainer{d: d, scorer: scorer, base: base, ws: ws}
		results[r], errs[r] = t.Train(obj, o)
	})

	dims := d.NumFair()
	sum := make([]float64, dims)
	sumSq := make([]float64, dims)
	out := EnsembleResult{Runs: make([]Result, 0, runs)}
	for r := 0; r < runs; r++ {
		if errs[r] != nil {
			return EnsembleResult{}, fmt.Errorf("core: ensemble run %d: %w", r, errs[r])
		}
		for j, v := range results[r].Raw {
			sum[j] += v
			sumSq[j] += v * v
		}
		out.Runs = append(out.Runs, results[r])
	}
	out.Mean = make([]float64, dims)
	out.Std = make([]float64, dims)
	for j := 0; j < dims; j++ {
		m := sum[j] / float64(runs)
		out.Mean[j] = m
		if runs > 1 {
			v := (sumSq[j] - float64(runs)*m*m) / float64(runs-1)
			if v < 0 {
				v = 0
			}
			out.Std[j] = math.Sqrt(v)
		}
	}
	out.Bonus = RoundTo(append([]float64(nil), out.Mean...), opts.Granularity)
	clampBonus(out.Bonus, opts.MaxBonus)
	return out, nil
}
