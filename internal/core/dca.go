package core

import (
	"context"
	"fmt"
	"math"
	"time"

	"fairrank/internal/dataset"
	"fairrank/internal/engine"
	"fairrank/internal/optimize"
	"fairrank/internal/rank"
	"fairrank/internal/sample"
)

// Options configures a DCA run. The zero value is not usable; start from
// DefaultOptions, which encodes the paper's empirical settings
// (Section V-B).
type Options struct {
	// SampleSize is the number of objects drawn per descent step. The paper
	// derives a lower bound of max(1/k, 1/r) * 30 with r the frequency of
	// the rarest group and uses 500 for the school data.
	SampleSize int
	// Ladder is the decreasing learning-rate schedule of Algorithm 1.
	Ladder optimize.Ladder
	// RefineSteps is the number of Adam steps in Algorithm 2; 0 disables
	// refinement (Core DCA).
	RefineSteps int
	// RefineLR is Adam's base step size during refinement.
	RefineLR float64
	// AverageWindow is how many trailing refinement iterates are averaged
	// ("the rolling average of the last 100 points"). Capped at
	// RefineSteps; 0 means all of them.
	AverageWindow int
	// Granularity rounds the final bonus points to a stakeholder-friendly
	// multiple (paper: 0.5). 0 disables rounding.
	Granularity float64
	// MaxBonus caps every bonus dimension (Section VI-A4); 0 means
	// unlimited. The cap is enforced at every step, which lets correlated
	// uncapped attributes absorb the residual.
	MaxBonus float64
	// Polarity states whether selection is beneficial (school admission,
	// bonus added) or adverse (recidivism flagging, bonus subtracted).
	Polarity rank.Polarity
	// Seed drives all sampling and the random initialization.
	Seed int64
	// InitBonus optionally fixes the starting vector (copied); otherwise
	// initialization is uniform in [0, 1) per dimension, as in Algorithm 1.
	InitBonus []float64
	// Trace, when non-nil, observes every descent step.
	Trace func(TraceStep)
}

// TraceStep is one observed descent step.
type TraceStep = engine.TraceStep

// DefaultOptions returns the paper's settings: sample size 500, learning
// rates {1.0, 0.1} for 100 steps each, 100 Adam refinement steps averaged
// over the trailing 100 iterates, and 0.5-point granularity.
func DefaultOptions() Options {
	return Options{
		SampleSize:    500,
		Ladder:        optimize.DefaultLadder(),
		RefineSteps:   100,
		RefineLR:      0.05,
		AverageWindow: 100,
		Granularity:   0.5,
		Polarity:      rank.Beneficial,
		Seed:          1,
	}
}

// Result is the outcome of a full DCA run.
type Result struct {
	// Bonus is the final bonus-point vector, rounded to Granularity,
	// indexed by fairness attribute.
	Bonus []float64
	// Raw is the unrounded vector after refinement averaging.
	Raw []float64
	// CoreBonus is the vector after Algorithm 1, before refinement.
	CoreBonus []float64
	// Steps is the total number of descent steps taken.
	Steps int
	// Elapsed is the wall-clock duration of the run.
	Elapsed time.Duration
}

func (o *Options) validate(d *dataset.Dataset) error {
	if d.N() == 0 {
		return fmt.Errorf("core: empty dataset")
	}
	if d.NumFair() == 0 {
		return fmt.Errorf("core: dataset has no fairness attributes")
	}
	if o.SampleSize <= 0 {
		return fmt.Errorf("core: sample size %d", o.SampleSize)
	}
	if o.SampleSize > d.N() {
		o.SampleSize = d.N()
	}
	if err := o.Ladder.Validate(); err != nil {
		return err
	}
	if o.RefineSteps < 0 {
		return fmt.Errorf("core: negative refinement steps %d", o.RefineSteps)
	}
	// The non-finite checks matter: NaN passes every `< 0` comparison, and
	// a NaN granularity or cap would silently poison the whole bonus
	// vector (Round(b/NaN)*NaN) instead of failing the run.
	if o.RefineSteps > 0 && (!(o.RefineLR > 0) || math.IsInf(o.RefineLR, 1)) {
		return fmt.Errorf("core: refinement enabled with step size %v", o.RefineLR)
	}
	if o.Granularity < 0 || math.IsNaN(o.Granularity) || math.IsInf(o.Granularity, 0) {
		return fmt.Errorf("core: granularity %v, want finite and non-negative", o.Granularity)
	}
	if o.MaxBonus < 0 || math.IsNaN(o.MaxBonus) || math.IsInf(o.MaxBonus, 0) {
		return fmt.Errorf("core: bonus cap %v, want finite and non-negative", o.MaxBonus)
	}
	if o.InitBonus != nil {
		if len(o.InitBonus) != d.NumFair() {
			return fmt.Errorf("core: initial bonus has %d dimensions, dataset has %d", len(o.InitBonus), d.NumFair())
		}
		for j, v := range o.InitBonus {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return fmt.Errorf("core: initial bonus dimension %d: non-finite value %v", j, v)
			}
		}
	}
	return nil
}

// clampBonus enforces b >= 0 (the paper's "no penalties" requirement) and
// the optional per-dimension cap.
func clampBonus(b []float64, maxBonus float64) {
	engine.ClampBonus(b, maxBonus)
}

// RoundTo rounds every dimension of b to the nearest multiple of
// granularity (no-op when granularity is 0) and returns b.
func RoundTo(b []float64, granularity float64) []float64 {
	if granularity <= 0 {
		return b
	}
	for j := range b {
		b[j] = math.Round(b[j]/granularity) * granularity
	}
	return b
}

// Scale returns a copy of b multiplied by w and rounded to granularity —
// the proportional bonus reduction of Figures 2 and 3.
func Scale(b []float64, w, granularity float64) []float64 {
	out := make([]float64, len(b))
	for j := range b {
		out[j] = b[j] * w
	}
	return RoundTo(out, granularity)
}

// Trainer runs DCA repeatedly over one dataset and ranking function. It
// precomputes the base scores and owns an engine.Workspace, so repeated
// runs — the interactive what-if iteration of the paper, ensemble members,
// parameter sweeps — share buffers and allocate (almost) nothing per
// descent step.
//
// A Trainer is not safe for concurrent use: it owns a single workspace.
// Create one per goroutine (Ensemble does exactly that).
type Trainer struct {
	d      *dataset.Dataset
	scorer rank.Scorer
	base   []float64
	ws     *engine.Workspace
}

// NewTrainer returns a trainer for the dataset under the given ranking
// function. Base scores are computed once, here.
func NewTrainer(d *dataset.Dataset, scorer rank.Scorer) *Trainer {
	return &Trainer{
		d:      d,
		scorer: scorer,
		base:   scorer.BaseScores(d),
		ws:     engine.NewWorkspace(d.NumFair()),
	}
}

// Clone returns a new Trainer over the same dataset and ranking function
// that shares the precomputed base scores but owns a fresh workspace, so
// the clone can train on another goroutine. A per-dataset trainer pool
// (the fairrankd service) clones its prototype instead of paying the
// O(n) base-score computation per worker.
func (t *Trainer) Clone() *Trainer {
	return &Trainer{d: t.d, scorer: t.scorer, base: t.base, ws: engine.NewWorkspace(t.d.NumFair())}
}

// Reset repoints the trainer at a new dataset and ranking function: base
// scores are recomputed, and the workspace is kept when the fairness
// dimensionality matches (its buffers grow on demand) and reallocated
// otherwise. It serves interactive what-if loops where the data itself
// changes — a revised cohort, an edited rubric — letting the caller keep
// one long-lived Trainer instead of rebuilding scratch state per revision.
func (t *Trainer) Reset(d *dataset.Dataset, scorer rank.Scorer) {
	t.d = d
	t.scorer = scorer
	t.base = scorer.BaseScores(d)
	if t.ws.Dims() != d.NumFair() {
		t.ws = engine.NewWorkspace(d.NumFair())
	}
}

// Dataset returns the underlying dataset.
func (t *Trainer) Dataset() *dataset.Dataset { return t.d }

// BaseScores returns the precomputed uncompensated scores (do not modify).
func (t *Trainer) BaseScores() []float64 { return t.base }

// Train executes the full DCA pipeline of the paper: Algorithm 1 (ladder
// descent over random samples), Algorithm 2 (Adam refinement over epoch
// samples with trailing-average smoothing) when RefineSteps > 0, and final
// rounding to Granularity. obj is the fairness objective to drive to zero.
func (t *Trainer) Train(obj Objective, opts Options) (Result, error) {
	return t.TrainCtx(context.Background(), obj, opts)
}

// TrainCtx is Train with cooperative cancellation: the descent loop polls
// ctx every engine.CancelCheckInterval steps and returns the context's
// error, so a canceled caller gets its trainer back within one checkpoint
// interval. A background context reproduces Train bit for bit.
func (t *Trainer) TrainCtx(ctx context.Context, obj Objective, opts Options) (Result, error) {
	start := time.Now() //fairlint:allow determinism -- wall-clock Elapsed is pure observability; it never enters the trained bonus or any ranked output
	if err := opts.validate(t.d); err != nil {
		return Result{}, err
	}
	bound, err := BindObjective(obj, t.d)
	if err != nil {
		return Result{}, err
	}
	smp := sample.New(t.d.N(), opts.Seed)
	b := initBonus(t.d, smp, opts)
	loop := t.loop(ctx, bound, opts)

	sampleBuf := t.ws.SampleBuf(opts.SampleSize)
	ladder := engine.NewLadderUpdater(opts.Ladder, opts.Polarity.Sign())
	steps, err := loop.Descend(b, opts.Ladder.TotalSteps(),
		func() []int { return smp.UniformInto(sampleBuf) }, ladder, "core")
	if err != nil {
		return Result{}, err
	}
	res := Result{CoreBonus: append([]float64(nil), b...), Steps: steps}

	if opts.RefineSteps > 0 {
		adam := engine.NewAdamUpdater(t.d.NumFair(), opts.RefineLR, opts.Polarity.Sign(), opts.RefineSteps, opts.AverageWindow)
		rsteps, err := loop.Descend(b, opts.RefineSteps,
			func() []int { return smp.Next(opts.SampleSize) }, adam, "refine")
		if err != nil {
			return Result{}, err
		}
		adam.Average(b)
		clampBonus(b, opts.MaxBonus)
		res.Steps += rsteps
	}
	res.Raw = append([]float64(nil), b...)
	res.Bonus = RoundTo(b, opts.Granularity)
	clampBonus(res.Bonus, opts.MaxBonus)
	res.Elapsed = time.Since(start)
	return res, nil
}

// TrainCore executes Algorithm 1 only (no refinement, no rounding); see
// CoreDCA.
func (t *Trainer) TrainCore(obj Objective, opts Options) (Result, error) {
	opts.RefineSteps = 0
	return t.Train(obj, opts)
}

// TrainCoreCtx is TrainCore with cooperative cancellation.
func (t *Trainer) TrainCoreCtx(ctx context.Context, obj Objective, opts Options) (Result, error) {
	opts.RefineSteps = 0
	return t.TrainCtx(ctx, obj, opts)
}

// TrainFull executes the whole-dataset variant of Section IV-C; see
// FullDCA.
func (t *Trainer) TrainFull(obj Objective, opts Options) (Result, error) {
	return t.TrainFullCtx(context.Background(), obj, opts)
}

// TrainFullCtx is TrainFull with cooperative cancellation.
func (t *Trainer) TrainFullCtx(ctx context.Context, obj Objective, opts Options) (Result, error) {
	start := time.Now() //fairlint:allow determinism -- wall-clock Elapsed is pure observability; it never enters the trained bonus or any ranked output
	opts.SampleSize = t.d.N()
	opts.RefineSteps = 0
	if err := opts.validate(t.d); err != nil {
		return Result{}, err
	}
	bound, err := BindObjective(obj, t.d)
	if err != nil {
		return Result{}, err
	}
	smp := sample.New(t.d.N(), opts.Seed)
	b := initBonus(t.d, smp, opts)

	all := t.ws.SampleBuf(t.d.N())
	for i := range all {
		all[i] = i
	}
	loop := t.loop(ctx, bound, opts)
	ladder := engine.NewLadderUpdater(opts.Ladder, opts.Polarity.Sign())
	steps, err := loop.Descend(b, opts.Ladder.TotalSteps(),
		func() []int { return all }, ladder, "full")
	if err != nil {
		return Result{}, err
	}
	res := Result{
		CoreBonus: append([]float64(nil), b...),
		Raw:       append([]float64(nil), b...),
		Bonus:     RoundTo(append([]float64(nil), b...), opts.Granularity),
		Steps:     steps,
		Elapsed:   time.Since(start),
	}
	clampBonus(res.Bonus, opts.MaxBonus)
	return res, nil
}

func (t *Trainer) loop(ctx context.Context, bound engine.Objective, opts Options) *engine.Loop {
	l := &engine.Loop{
		D:        t.d,
		Base:     t.base,
		Obj:      bound,
		Polarity: opts.Polarity,
		MaxBonus: opts.MaxBonus,
		WS:       t.ws,
		Trace:    opts.Trace,
	}
	// Background contexts stay out of the Loop so the step loop skips the
	// checkpoint branch entirely on the uncancellable paths.
	if ctx != context.Background() {
		l.Ctx = ctx
	}
	return l
}

// Run executes the full DCA pipeline on a one-shot Trainer; see
// Trainer.Train. Callers training repeatedly on the same dataset should
// hold a Trainer to reuse its buffers.
func Run(d *dataset.Dataset, scorer rank.Scorer, obj Objective, opts Options) (Result, error) {
	return NewTrainer(d, scorer).Train(obj, opts)
}

// CoreDCA executes Algorithm 1 only (no refinement, no rounding) and
// returns the raw bonus vector. The paper reports it as "Core DCA"; Table I
// applies granularity rounding to its output, which callers get via
// RoundTo.
func CoreDCA(d *dataset.Dataset, scorer rank.Scorer, obj Objective, opts Options) (Result, error) {
	opts.RefineSteps = 0
	return Run(d, scorer, obj, opts)
}

// FullDCA is the whole-dataset variant of Section IV-C: identical to
// Algorithm 1 but every step evaluates the objective on the entire
// population instead of a sample. It is O(ladder steps × n log n) and
// exists to validate the sampled algorithm (Theorem 4.1's swap guarantee
// holds exactly for it).
func FullDCA(d *dataset.Dataset, scorer rank.Scorer, obj Objective, opts Options) (Result, error) {
	return NewTrainer(d, scorer).TrainFull(obj, opts)
}

func initBonus(d *dataset.Dataset, smp *sample.Sampler, opts Options) []float64 {
	b := make([]float64, d.NumFair())
	if opts.InitBonus != nil {
		copy(b, opts.InitBonus)
	} else {
		for j := range b {
			b[j] = smp.Rand().Float64()
		}
	}
	clampBonus(b, opts.MaxBonus)
	return b
}
