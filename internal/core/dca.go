package core

import (
	"fmt"
	"math"
	"time"

	"fairrank/internal/dataset"
	"fairrank/internal/optimize"
	"fairrank/internal/rank"
	"fairrank/internal/sample"
)

// Options configures a DCA run. The zero value is not usable; start from
// DefaultOptions, which encodes the paper's empirical settings
// (Section V-B).
type Options struct {
	// SampleSize is the number of objects drawn per descent step. The paper
	// derives a lower bound of max(1/k, 1/r) * 30 with r the frequency of
	// the rarest group and uses 500 for the school data.
	SampleSize int
	// Ladder is the decreasing learning-rate schedule of Algorithm 1.
	Ladder optimize.Ladder
	// RefineSteps is the number of Adam steps in Algorithm 2; 0 disables
	// refinement (Core DCA).
	RefineSteps int
	// RefineLR is Adam's base step size during refinement.
	RefineLR float64
	// AverageWindow is how many trailing refinement iterates are averaged
	// ("the rolling average of the last 100 points"). Capped at
	// RefineSteps; 0 means all of them.
	AverageWindow int
	// Granularity rounds the final bonus points to a stakeholder-friendly
	// multiple (paper: 0.5). 0 disables rounding.
	Granularity float64
	// MaxBonus caps every bonus dimension (Section VI-A4); 0 means
	// unlimited. The cap is enforced at every step, which lets correlated
	// uncapped attributes absorb the residual.
	MaxBonus float64
	// Polarity states whether selection is beneficial (school admission,
	// bonus added) or adverse (recidivism flagging, bonus subtracted).
	Polarity rank.Polarity
	// Seed drives all sampling and the random initialization.
	Seed int64
	// InitBonus optionally fixes the starting vector (copied); otherwise
	// initialization is uniform in [0, 1) per dimension, as in Algorithm 1.
	InitBonus []float64
	// Trace, when non-nil, observes every descent step.
	Trace func(TraceStep)
}

// TraceStep is one observed descent step.
type TraceStep struct {
	Stage     string // "core" or "refine"
	Step      int    // step index within the stage sequence
	LR        float64
	Bonus     []float64 // copy of the bonus vector after the update
	Objective []float64 // objective vector measured before the update
}

// DefaultOptions returns the paper's settings: sample size 500, learning
// rates {1.0, 0.1} for 100 steps each, 100 Adam refinement steps averaged
// over the trailing 100 iterates, and 0.5-point granularity.
func DefaultOptions() Options {
	return Options{
		SampleSize:    500,
		Ladder:        optimize.DefaultLadder(),
		RefineSteps:   100,
		RefineLR:      0.05,
		AverageWindow: 100,
		Granularity:   0.5,
		Polarity:      rank.Beneficial,
		Seed:          1,
	}
}

// Result is the outcome of a full DCA run.
type Result struct {
	// Bonus is the final bonus-point vector, rounded to Granularity,
	// indexed by fairness attribute.
	Bonus []float64
	// Raw is the unrounded vector after refinement averaging.
	Raw []float64
	// CoreBonus is the vector after Algorithm 1, before refinement.
	CoreBonus []float64
	// Steps is the total number of descent steps taken.
	Steps int
	// Elapsed is the wall-clock duration of the run.
	Elapsed time.Duration
}

func (o *Options) validate(d *dataset.Dataset) error {
	if d.N() == 0 {
		return fmt.Errorf("core: empty dataset")
	}
	if d.NumFair() == 0 {
		return fmt.Errorf("core: dataset has no fairness attributes")
	}
	if o.SampleSize <= 0 {
		return fmt.Errorf("core: sample size %d", o.SampleSize)
	}
	if o.SampleSize > d.N() {
		o.SampleSize = d.N()
	}
	if err := o.Ladder.Validate(); err != nil {
		return err
	}
	if o.RefineSteps < 0 {
		return fmt.Errorf("core: negative refinement steps %d", o.RefineSteps)
	}
	if o.RefineSteps > 0 && o.RefineLR <= 0 {
		return fmt.Errorf("core: refinement enabled with step size %v", o.RefineLR)
	}
	if o.Granularity < 0 {
		return fmt.Errorf("core: negative granularity %v", o.Granularity)
	}
	if o.MaxBonus < 0 {
		return fmt.Errorf("core: negative bonus cap %v", o.MaxBonus)
	}
	if o.InitBonus != nil && len(o.InitBonus) != d.NumFair() {
		return fmt.Errorf("core: initial bonus has %d dimensions, dataset has %d", len(o.InitBonus), d.NumFair())
	}
	return nil
}

// clampBonus enforces b >= 0 (the paper's "no penalties" requirement) and
// the optional per-dimension cap.
func clampBonus(b []float64, maxBonus float64) {
	for j := range b {
		if b[j] < 0 {
			b[j] = 0
		}
		if maxBonus > 0 && b[j] > maxBonus {
			b[j] = maxBonus
		}
	}
}

// RoundTo rounds every dimension of b to the nearest multiple of
// granularity (no-op when granularity is 0) and returns b.
func RoundTo(b []float64, granularity float64) []float64 {
	if granularity <= 0 {
		return b
	}
	for j := range b {
		b[j] = math.Round(b[j]/granularity) * granularity
	}
	return b
}

// Scale returns a copy of b multiplied by w and rounded to granularity —
// the proportional bonus reduction of Figures 2 and 3.
func Scale(b []float64, w, granularity float64) []float64 {
	out := make([]float64, len(b))
	for j := range b {
		out[j] = b[j] * w
	}
	return RoundTo(out, granularity)
}

// Run executes the full DCA pipeline of the paper: Algorithm 1 (ladder
// descent over random samples), Algorithm 2 (Adam refinement over epoch
// samples with trailing-average smoothing) when RefineSteps > 0, and final
// rounding to Granularity.
//
// scorer provides the base ranking function f; obj is the fairness
// objective to drive to zero.
func Run(d *dataset.Dataset, scorer rank.Scorer, obj Objective, opts Options) (Result, error) {
	start := time.Now()
	if err := opts.validate(d); err != nil {
		return Result{}, err
	}
	base := scorer.BaseScores(d)
	smp := sample.New(d.N(), opts.Seed)

	b := initBonus(d, smp, opts)
	steps, err := coreDescent(d, base, obj, b, smp, opts)
	if err != nil {
		return Result{}, err
	}
	res := Result{CoreBonus: append([]float64(nil), b...), Steps: steps}

	if opts.RefineSteps > 0 {
		rsteps, err := refine(d, base, obj, b, smp, opts)
		if err != nil {
			return Result{}, err
		}
		res.Steps += rsteps
	}
	res.Raw = append([]float64(nil), b...)
	res.Bonus = RoundTo(b, opts.Granularity)
	clampBonus(res.Bonus, opts.MaxBonus)
	res.Elapsed = time.Since(start)
	return res, nil
}

// CoreDCA executes Algorithm 1 only (no refinement, no rounding) and
// returns the raw bonus vector. The paper reports it as "Core DCA"; Table I
// applies granularity rounding to its output, which callers get via
// RoundTo.
func CoreDCA(d *dataset.Dataset, scorer rank.Scorer, obj Objective, opts Options) (Result, error) {
	opts.RefineSteps = 0
	return Run(d, scorer, obj, opts)
}

func initBonus(d *dataset.Dataset, smp *sample.Sampler, opts Options) []float64 {
	b := make([]float64, d.NumFair())
	if opts.InitBonus != nil {
		copy(b, opts.InitBonus)
	} else {
		for j := range b {
			b[j] = smp.Rand().Float64()
		}
	}
	clampBonus(b, opts.MaxBonus)
	return b
}

// coreDescent runs the learning-rate ladder of Algorithm 1, mutating b.
func coreDescent(d *dataset.Dataset, base []float64, obj Objective, b []float64, smp *sample.Sampler, opts Options) (int, error) {
	sign := opts.Polarity.Sign()
	eff := make([]float64, opts.SampleSize)
	steps := 0
	for _, stage := range opts.Ladder {
		for x := 0; x < stage.Steps; x++ {
			idx := smp.Uniform(opts.SampleSize)
			rank.EffectiveScores(d, base, idx, b, opts.Polarity, eff)
			dvec, err := obj.Eval(d, idx, eff)
			if err != nil {
				return steps, err
			}
			for j := range b {
				b[j] -= sign * stage.LR * dvec[j]
			}
			clampBonus(b, opts.MaxBonus)
			steps++
			if opts.Trace != nil {
				opts.Trace(TraceStep{
					Stage: "core", Step: steps, LR: stage.LR,
					Bonus: append([]float64(nil), b...), Objective: dvec,
				})
			}
		}
	}
	return steps, nil
}

// refine runs Algorithm 2, mutating b to the trailing average of the Adam
// iterates.
func refine(d *dataset.Dataset, base []float64, obj Objective, b []float64, smp *sample.Sampler, opts Options) (int, error) {
	sign := opts.Polarity.Sign()
	dims := len(b)
	adam := optimize.NewAdam(dims, opts.RefineLR)
	eff := make([]float64, opts.SampleSize)
	grad := make([]float64, dims)
	avg := make([]float64, dims)
	window := opts.AverageWindow
	if window <= 0 || window > opts.RefineSteps {
		window = opts.RefineSteps
	}
	count := 0
	for x := 0; x < opts.RefineSteps; x++ {
		idx := smp.Next(opts.SampleSize)
		rank.EffectiveScores(d, base, idx, b, opts.Polarity, eff)
		dvec, err := obj.Eval(d, idx, eff)
		if err != nil {
			return x, err
		}
		for j := range grad {
			grad[j] = sign * dvec[j]
		}
		adam.Step(b, grad)
		clampBonus(b, opts.MaxBonus)
		if x >= opts.RefineSteps-window {
			for j := range avg {
				avg[j] += b[j]
			}
			count++
		}
		if opts.Trace != nil {
			opts.Trace(TraceStep{
				Stage: "refine", Step: x + 1, LR: opts.RefineLR,
				Bonus: append([]float64(nil), b...), Objective: dvec,
			})
		}
	}
	if count > 0 {
		for j := range b {
			b[j] = avg[j] / float64(count)
		}
	}
	clampBonus(b, opts.MaxBonus)
	return opts.RefineSteps, nil
}

// FullDCA is the whole-dataset variant of Section IV-C: identical to
// Algorithm 1 but every step evaluates the objective on the entire
// population instead of a sample. It is O(ladder steps × n log n) and
// exists to validate the sampled algorithm (Theorem 4.1's swap guarantee
// holds exactly for it).
func FullDCA(d *dataset.Dataset, scorer rank.Scorer, obj Objective, opts Options) (Result, error) {
	start := time.Now()
	opts.SampleSize = d.N()
	opts.RefineSteps = 0
	if err := opts.validate(d); err != nil {
		return Result{}, err
	}
	base := scorer.BaseScores(d)
	smp := sample.New(d.N(), opts.Seed)
	b := initBonus(d, smp, opts)

	all := make([]int, d.N())
	for i := range all {
		all[i] = i
	}
	sign := opts.Polarity.Sign()
	eff := make([]float64, d.N())
	steps := 0
	for _, stage := range opts.Ladder {
		for x := 0; x < stage.Steps; x++ {
			rank.EffectiveScores(d, base, all, b, opts.Polarity, eff)
			dvec, err := obj.Eval(d, all, eff)
			if err != nil {
				return Result{}, err
			}
			for j := range b {
				b[j] -= sign * stage.LR * dvec[j]
			}
			clampBonus(b, opts.MaxBonus)
			steps++
			if opts.Trace != nil {
				opts.Trace(TraceStep{
					Stage: "full", Step: steps, LR: stage.LR,
					Bonus: append([]float64(nil), b...), Objective: dvec,
				})
			}
		}
	}
	res := Result{
		CoreBonus: append([]float64(nil), b...),
		Raw:       append([]float64(nil), b...),
		Bonus:     RoundTo(append([]float64(nil), b...), opts.Granularity),
		Steps:     steps,
		Elapsed:   time.Since(start),
	}
	clampBonus(res.Bonus, opts.MaxBonus)
	return res, nil
}
