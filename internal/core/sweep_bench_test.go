package core

import (
	"sync"
	"testing"

	"fairrank/internal/rank"
	"fairrank/internal/synth"
)

// Sweep-engine benchmarks at the paper's production scale: a 16-point
// k-grid over one trained-shaped bonus vector on the 80k synthetic school
// cohort. Each op is one whole sweep — one full-population ranking plus 16
// prefix evaluations — so ns/op here is directly comparable to the
// serve-level BenchmarkServeEvaluateSweep minus HTTP. These names are
// guarded against regression by cmd/benchguard in CI (reference:
// BENCH_sweep.json).

var benchSweepState struct {
	once sync.Once
	ev   *Evaluator
	pts  []SweepPoint
	err  error
}

func benchSweep(b *testing.B) (*Evaluator, []SweepPoint) {
	b.Helper()
	s := &benchSweepState
	s.once.Do(func() {
		cfg := synth.DefaultSchoolConfig() // 80k students, 4 fairness dims
		d, err := synth.GenerateSchool(cfg)
		if err != nil {
			s.err = err
			return
		}
		s.ev = NewEvaluator(d, rank.WeightedSum{Weights: synth.SchoolScoreWeights()}, rank.Beneficial)
		bonus := []float64{2, 11, 10.5, 12.5} // the shape a trained vector takes on this cohort
		s.pts = make([]SweepPoint, 16)
		for i := range s.pts {
			s.pts[i] = SweepPoint{Bonus: bonus, K: 0.01 + 0.02*float64(i)}
		}
	})
	if s.err != nil {
		b.Fatal(s.err)
	}
	return s.ev, s.pts
}

func BenchmarkDisparitySweep16(b *testing.B) {
	ev, pts := benchSweep(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ev.DisparitySweep(pts); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkNDCGSweep16(b *testing.B) {
	ev, pts := benchSweep(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ev.NDCGSweep(pts); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDisparateImpactSweep16(b *testing.B) {
	ev, pts := benchSweep(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ev.DisparateImpactSweep(pts); err != nil {
			b.Fatal(err)
		}
	}
}
