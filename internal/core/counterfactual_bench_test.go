package core

import (
	"testing"
)

// Counterfactual-engine benchmarks at the same production scale as the
// sweep benchmarks: the 80k synthetic school cohort with a trained-shaped
// bonus vector. One BenchmarkCounterfactualBatch16 op is a full audit
// answer — one population ranking plus 16 bit-level binary searches — and
// one BenchmarkAttributeDisparity op is the dims+2-point leave-one-out
// sweep. Both names are guarded against regression by cmd/benchguard in CI
// (reference: BENCH_explain.json).

func BenchmarkCounterfactualBatch16(b *testing.B) {
	ev, pts := benchSweep(b)
	bonus := pts[0].Bonus
	n := ev.Dataset().N()
	objs := make([]int, 16)
	for i := range objs {
		// Spread requests across the population, boundary included.
		objs[i] = (i * n) / 17
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ev.CounterfactualBatch(bonus, 0.05, objs); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAttributeDisparity(b *testing.B) {
	ev, pts := benchSweep(b)
	bonus := pts[0].Bonus
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ev.AttributeDisparity(bonus, 0.05); err != nil {
			b.Fatal(err)
		}
	}
}
