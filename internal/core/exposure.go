package core

import (
	"context"
	"fmt"

	"fairrank/internal/engine"
	"fairrank/internal/metrics"
	"fairrank/internal/rank"
)

// Exposure-family evaluators (Section VI-C4/C5): per-capita exposure with
// its demographic disparity (DDP), the exposure/merit ratio, and the top-K
// rank-fairness share. All three are group metrics over the member sets of
// binary fairness attributes plus the unprotected rest, so they refuse
// continuous attributes up front instead of silently thresholding them —
// the paper drops the continuous ENI column for its exposure experiment,
// and callers do the same here by registering a dataset.WithFairColumns
// view restricted to the binary columns.
//
// The sweep variants follow the prefix-sweep engine contract (see
// sweep.go): points sharing a bonus vector are ranked once, every k is
// answered from prefix-resumed exposure sums and membership counts, and
// the finishers are shared with the pointwise evaluators — bit-identical
// answers on both paths.

// exposureGuard validates the dataset capability every exposure-family
// metric needs: at least one fairness attribute, and all of them binary.
func (e *Evaluator) exposureGuard() error {
	if e.d.NumFair() == 0 {
		return fmt.Errorf("core: exposure metrics require at least one fairness attribute")
	}
	if ok, off := e.d.BinaryFairColumns(); !ok {
		return fmt.Errorf("core: exposure metrics require binary fairness attributes; %q is continuous (register a WithFairColumns view of the binary columns)", off)
	}
	return nil
}

// exposureSideWS computes one order's per-capita exposure row and DDP at
// the single cut in cuts using workspace scratch — the shared finisher of
// the bundle passes (compensated and base side alike).
func (e *Evaluator) exposureSideWS(ws *engine.Workspace, order []int, cuts []int) ([]float64, float64, error) {
	gw := e.d.NumFair() + 1
	sizes := ws.Cnts(gw)
	metrics.PrefixExposureCountsInto(e.d, order, cuts, sizes)
	expo := metrics.PrefixExposureInto(e.d, order, cuts, ws.PopN(gw), ws.Agg(gw))
	ddp, err := metrics.DDPFromExposure(expo, sizes)
	if err != nil {
		return nil, 0, err
	}
	out := make([]float64, gw)
	metrics.ExposurePerCapitaInto(expo, sizes, out)
	return out, ddp, nil
}

// Exposure returns the per-capita exposure vector of the top-k selection
// under the bonus vector — one entry per named group plus a trailing entry
// for the unprotected rest — together with the DDP, the maximum pairwise
// per-capita gap. Unpopulated groups map to 0; when fewer than two groups
// are populated the DDP is undefined and metrics.ErrDegenerateGroups is
// returned.
func (e *Evaluator) Exposure(bonus []float64, k float64) ([]float64, float64, error) {
	return e.ExposureCtx(context.Background(), bonus, k)
}

// ExposureCtx is Exposure with cooperative cancellation.
func (e *Evaluator) ExposureCtx(ctx context.Context, bonus []float64, k float64) ([]float64, float64, error) {
	if err := e.exposureGuard(); err != nil {
		return nil, 0, err
	}
	cnt, err := rank.SelectCount(e.d.N(), k)
	if err != nil {
		return nil, 0, err
	}
	ws := e.ws()
	defer e.put(ws)
	order, err := e.rankedPrefixWS(ctx, ws, bonus, cnt)
	if err != nil {
		return nil, 0, err
	}
	g := e.d.NumFair() + 1
	cnts := ws.Cnts(1 + g)
	cuts, sizes := cnts[:1], cnts[1:]
	cuts[0] = cnt
	metrics.PrefixExposureCountsInto(e.d, order, cuts, sizes)
	expo := metrics.PrefixExposureInto(e.d, order, cuts, ws.PopN(g), ws.Agg(g))
	ddp, err := metrics.DDPFromExposure(expo, sizes)
	if err != nil {
		return nil, 0, err
	}
	out := make([]float64, g)
	metrics.ExposurePerCapitaInto(expo, sizes, out)
	return out, ddp, nil
}

// ExposureRatio returns the exposure/merit ratio vector of the top-k
// selection under the bonus vector: each named group's per-capita exposure
// within the prefix divided by its ground-truth-positive rate in the
// population. The dataset must carry outcomes. Zero denominators — a group
// absent from the prefix, empty, or without positives — yield 0, the FPR
// convention.
func (e *Evaluator) ExposureRatio(bonus []float64, k float64) ([]float64, error) {
	return e.ExposureRatioCtx(context.Background(), bonus, k)
}

// ExposureRatioCtx is ExposureRatio with cooperative cancellation.
func (e *Evaluator) ExposureRatioCtx(ctx context.Context, bonus []float64, k float64) ([]float64, error) {
	if err := e.exposureGuard(); err != nil {
		return nil, err
	}
	if !e.d.HasOutcomes() {
		return nil, fmt.Errorf("core: exposure/merit ratio requires outcomes")
	}
	cnt, err := rank.SelectCount(e.d.N(), k)
	if err != nil {
		return nil, err
	}
	ws := e.ws()
	defer e.put(ws)
	order, err := e.rankedPrefixWS(ctx, ws, bonus, cnt)
	if err != nil {
		return nil, err
	}
	dims := e.d.NumFair()
	cnts := ws.Cnts(1 + dims)
	cuts, row := cnts[:1], cnts[1:]
	cuts[0] = cnt
	metrics.PrefixGroupCountsInto(e.d, order, cuts, row)
	expo := metrics.PrefixExposureInto(e.d, order, cuts, ws.PopN(dims+1), ws.Agg(dims+1))
	out := make([]float64, dims)
	for j := range out {
		out[j] = metrics.ExpRatioFromCounts(expo[j], row[j], e.groupTot[j]-e.negTot[j], e.groupTot[j])
	}
	return out, nil
}

// TopKShare returns the top-K rank-fairness vector of the top-k selection
// under the bonus vector: each named group's share of the prefix minus its
// share of the whole cohort (positive means over-representation).
func (e *Evaluator) TopKShare(bonus []float64, k float64) ([]float64, error) {
	return e.TopKShareCtx(context.Background(), bonus, k)
}

// TopKShareCtx is TopKShare with cooperative cancellation.
func (e *Evaluator) TopKShareCtx(ctx context.Context, bonus []float64, k float64) ([]float64, error) {
	if err := e.exposureGuard(); err != nil {
		return nil, err
	}
	cnt, err := rank.SelectCount(e.d.N(), k)
	if err != nil {
		return nil, err
	}
	ws := e.ws()
	defer e.put(ws)
	order, err := e.rankedPrefixWS(ctx, ws, bonus, cnt)
	if err != nil {
		return nil, err
	}
	dims := e.d.NumFair()
	cnts := ws.Cnts(1 + dims)
	cuts, row := cnts[:1], cnts[1:]
	cuts[0] = cnt
	metrics.PrefixGroupCountsInto(e.d, order, cuts, row)
	n := e.d.N()
	out := make([]float64, dims)
	for j := range out {
		out[j] = metrics.TopKFromCounts(row[j], cnt, e.groupTot[j], n)
	}
	return out, nil
}

// ExposureSweep evaluates the per-capita exposure vector of every sweep
// point and returns the NumFair+1-wide rows in point order. Points sharing
// a bonus vector are ranked once and answered from prefix exposure sums. A
// point whose prefix populates fewer than two groups fails the sweep with
// metrics.ErrDegenerateGroups wrapped with the point's index, like the
// nDCG sweep's zero-ideal case.
func (e *Evaluator) ExposureSweep(points []SweepPoint) ([][]float64, error) {
	return e.ExposureSweepCtx(context.Background(), points)
}

// ExposureSweepCtx is ExposureSweep with cooperative cancellation.
func (e *Evaluator) ExposureSweepCtx(ctx context.Context, points []SweepPoint) ([][]float64, error) {
	if err := e.exposureGuard(); err != nil {
		return nil, err
	}
	groups, err := e.groupPoints(points, rank.SelectCount)
	if err != nil {
		return nil, err
	}
	g := e.d.NumFair() + 1
	out := e.vectorRowsW(len(points), g)
	errs := make([]error, len(points))
	gerrs := make([]error, len(groups))
	perr := e.parallelCtx(ctx, len(groups), func(ws *engine.Workspace, gi int) {
		gr := &groups[gi]
		order, err := e.rankedPrefixWS(ctx, ws, gr.bonus, gr.cuts[len(gr.cuts)-1])
		if err != nil {
			gerrs[gi] = err
			return
		}
		nc := len(gr.cuts)
		expo := metrics.PrefixExposureInto(e.d, order, gr.cuts, ws.PopN(g), ws.Agg(nc*g))
		sizes := metrics.PrefixExposureCountsInto(e.d, order, gr.cuts, ws.Cnts(nc*g))
		for r, pi := range gr.pts {
			c := gr.cutPos[r]
			row, szs := expo[c*g:(c+1)*g], sizes[c*g:(c+1)*g]
			if _, err := metrics.DDPFromExposure(row, szs); err != nil {
				errs[pi] = err
				continue
			}
			metrics.ExposurePerCapitaInto(row, szs, out[pi])
		}
	})
	if err := firstErr(perr, gerrs); err != nil {
		return nil, err
	}
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("core: sweep point %d (k=%g): %w", i, points[i].K, err)
		}
	}
	return out, nil
}

// ExpRatioSweep evaluates the exposure/merit ratio of every sweep point
// and returns the vectors in point order. The dataset must carry outcomes.
func (e *Evaluator) ExpRatioSweep(points []SweepPoint) ([][]float64, error) {
	return e.ExpRatioSweepCtx(context.Background(), points)
}

// ExpRatioSweepCtx is ExpRatioSweep with cooperative cancellation.
func (e *Evaluator) ExpRatioSweepCtx(ctx context.Context, points []SweepPoint) ([][]float64, error) {
	if err := e.exposureGuard(); err != nil {
		return nil, err
	}
	if !e.d.HasOutcomes() {
		return nil, fmt.Errorf("core: exposure/merit ratio requires outcomes")
	}
	groups, err := e.groupPoints(points, rank.SelectCount)
	if err != nil {
		return nil, err
	}
	dims := e.d.NumFair()
	g := dims + 1
	out := e.vectorRows(len(points))
	gerrs := make([]error, len(groups))
	perr := e.parallelCtx(ctx, len(groups), func(ws *engine.Workspace, gi int) {
		gr := &groups[gi]
		order, err := e.rankedPrefixWS(ctx, ws, gr.bonus, gr.cuts[len(gr.cuts)-1])
		if err != nil {
			gerrs[gi] = err
			return
		}
		nc := len(gr.cuts)
		expo := metrics.PrefixExposureInto(e.d, order, gr.cuts, ws.PopN(g), ws.Agg(nc*g))
		counts := metrics.PrefixGroupCountsInto(e.d, order, gr.cuts, ws.Cnts(nc*dims))
		for r, pi := range gr.pts {
			c := gr.cutPos[r]
			erow := expo[c*g : c*g+dims]
			crow := counts[c*dims : (c+1)*dims]
			dst := out[pi]
			for j := range dst {
				dst[j] = metrics.ExpRatioFromCounts(erow[j], crow[j], e.groupTot[j]-e.negTot[j], e.groupTot[j])
			}
		}
	})
	if err := firstErr(perr, gerrs); err != nil {
		return nil, err
	}
	return out, nil
}

// TopKSweep evaluates the top-K rank-fairness share of every sweep point
// and returns the vectors in point order.
func (e *Evaluator) TopKSweep(points []SweepPoint) ([][]float64, error) {
	return e.TopKSweepCtx(context.Background(), points)
}

// TopKSweepCtx is TopKSweep with cooperative cancellation.
func (e *Evaluator) TopKSweepCtx(ctx context.Context, points []SweepPoint) ([][]float64, error) {
	if err := e.exposureGuard(); err != nil {
		return nil, err
	}
	groups, err := e.groupPoints(points, rank.SelectCount)
	if err != nil {
		return nil, err
	}
	dims := e.d.NumFair()
	n := e.d.N()
	out := e.vectorRows(len(points))
	gerrs := make([]error, len(groups))
	perr := e.parallelCtx(ctx, len(groups), func(ws *engine.Workspace, gi int) {
		gr := &groups[gi]
		order, err := e.rankedPrefixWS(ctx, ws, gr.bonus, gr.cuts[len(gr.cuts)-1])
		if err != nil {
			gerrs[gi] = err
			return
		}
		counts := metrics.PrefixGroupCountsInto(e.d, order, gr.cuts, ws.Cnts(len(gr.cuts)*dims))
		for r, pi := range gr.pts {
			c := gr.cutPos[r]
			row := counts[c*dims : (c+1)*dims]
			sel := gr.cuts[c]
			dst := out[pi]
			for j := range dst {
				dst[j] = metrics.TopKFromCounts(row[j], sel, e.groupTot[j], n)
			}
		}
	})
	if err := firstErr(perr, gerrs); err != nil {
		return nil, err
	}
	return out, nil
}
