package core

import (
	"context"
	"fmt"
	"sort"

	"fairrank/internal/rank"
)

// Explanation is the transparency report the paper argues bonus points make
// possible (Section III-C): a published cutoff, per-attribute participation,
// and per-object score breakdowns, so that "applicants can easily assess
// their chances" and "know their score and fairness adjustments at the time
// of application".
type Explanation struct {
	// K is the selection fraction explained.
	K float64
	// Selected is the number of selected objects.
	Selected int
	// Cutoff is the effective score of the last selected object: with the
	// bonus vector published, any applicant can compare their own adjusted
	// score against it.
	Cutoff float64
	// BaseCutoff is the cutoff of the uncompensated ranking, for contrast.
	BaseCutoff float64
	// Bonus is the bonus vector the report explains (copied).
	Bonus []float64
	// FairNames are the fairness attribute names, aligned with Bonus.
	FairNames []string
	// AdmittedByBonus lists objects selected under the bonus but not in
	// the uncompensated selection (the beneficiaries).
	AdmittedByBonus []int
	// DisplacedByBonus lists objects selected without the bonus but not
	// under it.
	DisplacedByBonus []int
	// GroupCounts[j] counts selected members of binary fairness attribute
	// j (value > 0.5) under the bonus; BaseGroupCounts is the same for the
	// uncompensated selection.
	GroupCounts     []int
	BaseGroupCounts []int
}

// ObjectExplanation breaks one object's effective score into its published
// components.
type ObjectExplanation struct {
	Object     int
	BaseScore  float64
	BonusTotal float64 // signed contribution: negative under Adverse polarity
	// PerAttribute lists each fairness attribute's contribution
	// (attribute value x bonus points, signed by polarity).
	PerAttribute []float64
	Effective    float64
	Selected     bool
	// Margin is Effective - Cutoff: how far above (positive) or below
	// (negative) the published threshold the object lands.
	Margin float64
}

// Explain produces the transparency report for a bonus vector at selection
// fraction k.
func (e *Evaluator) Explain(bonus []float64, k float64) (*Explanation, error) {
	return e.ExplainCtx(context.Background(), bonus, k)
}

// ExplainCtx is Explain with cooperative cancellation: each of the two
// selections behind the report polls ctx before its ranking pass.
func (e *Evaluator) ExplainCtx(ctx context.Context, bonus []float64, k float64) (*Explanation, error) {
	selWith, err := e.SelectCtx(ctx, bonus, k)
	if err != nil {
		return nil, err
	}
	selBase, err := e.SelectCtx(ctx, nil, k)
	if err != nil {
		return nil, err
	}
	eff := rank.EffectiveScoresAll(e.d, e.base, bonus, e.pol, nil)

	exp := &Explanation{
		K:         k,
		Selected:  len(selWith),
		Bonus:     append([]float64(nil), bonus...),
		FairNames: e.d.FairNames(),
	}
	exp.Cutoff = eff[selWith[len(selWith)-1]]
	exp.BaseCutoff = e.base[selBase[len(selBase)-1]]

	inWith := make(map[int]bool, len(selWith))
	for _, i := range selWith {
		inWith[i] = true
	}
	inBase := make(map[int]bool, len(selBase))
	for _, i := range selBase {
		inBase[i] = true
	}
	for _, i := range selWith {
		if !inBase[i] {
			exp.AdmittedByBonus = append(exp.AdmittedByBonus, i)
		}
	}
	for _, i := range selBase {
		if !inWith[i] {
			exp.DisplacedByBonus = append(exp.DisplacedByBonus, i)
		}
	}
	sort.Ints(exp.AdmittedByBonus)
	sort.Ints(exp.DisplacedByBonus)

	dims := e.d.NumFair()
	exp.GroupCounts = make([]int, dims)
	exp.BaseGroupCounts = make([]int, dims)
	for j := 0; j < dims; j++ {
		col := e.d.FairColumn(j)
		for _, i := range selWith {
			if col[i] > 0.5 {
				exp.GroupCounts[j]++
			}
		}
		for _, i := range selBase {
			if col[i] > 0.5 {
				exp.BaseGroupCounts[j]++
			}
		}
	}
	return exp, nil
}

// ExplainObject breaks down one object's score against the report's
// published cutoff.
func (e *Evaluator) ExplainObject(exp *Explanation, obj int) (ObjectExplanation, error) {
	if obj < 0 || obj >= e.d.N() {
		return ObjectExplanation{}, fmt.Errorf("core: object %d outside [0,%d)", obj, e.d.N())
	}
	sign := e.pol.Sign()
	oe := ObjectExplanation{
		Object:       obj,
		BaseScore:    e.base[obj],
		PerAttribute: make([]float64, e.d.NumFair()),
	}
	for j := range oe.PerAttribute {
		c := sign * e.d.Fair(obj, j) * exp.Bonus[j]
		oe.PerAttribute[j] = c
		oe.BonusTotal += c
	}
	oe.Effective = oe.BaseScore + oe.BonusTotal
	oe.Margin = oe.Effective - exp.Cutoff
	oe.Selected = oe.Margin > 0 || (oe.Margin == 0)
	// Margin == 0 means the object sits exactly at the cutoff; whether it
	// is in depends on the tie-break, so resolve it precisely.
	if oe.Margin == 0 {
		sel, err := e.Select(exp.Bonus, exp.K)
		if err != nil {
			return ObjectExplanation{}, err
		}
		oe.Selected = false
		for _, i := range sel {
			if i == obj {
				oe.Selected = true
				break
			}
		}
	}
	return oe, nil
}

// Summary renders the report as human-readable lines.
func (exp *Explanation) Summary() []string {
	lines := []string{
		fmt.Sprintf("selection: top %.1f%% = %d objects", exp.K*100, exp.Selected),
		fmt.Sprintf("published cutoff: %.3f (uncompensated cutoff: %.3f)", exp.Cutoff, exp.BaseCutoff),
	}
	for j, name := range exp.FairNames {
		lines = append(lines, fmt.Sprintf("%s: %g bonus points; selected members %d (was %d)",
			name, exp.Bonus[j], exp.GroupCounts[j], exp.BaseGroupCounts[j]))
	}
	lines = append(lines, fmt.Sprintf("admitted through bonus points: %d; displaced: %d",
		len(exp.AdmittedByBonus), len(exp.DisplacedByBonus)))
	return lines
}
