package core

import (
	"testing"

	"fairrank/internal/dataset"
	"fairrank/internal/engine"
	"fairrank/internal/rank"
)

func outcomeDataset(t *testing.T, withOutcomes bool) *dataset.Dataset {
	t.Helper()
	b := dataset.NewBuilder([]string{"score"}, []string{"g1", "g2"})
	for i := 0; i < 64; i++ {
		score := []float64{float64(i % 17)}
		fair := []float64{float64(i % 2), float64((i / 2) % 2)}
		if withOutcomes {
			b.AddWithOutcome(score, fair, i%3 == 0)
		} else {
			b.Add(score, fair)
		}
	}
	d, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// TestBindRejectsMissingOutcomesEagerly pins the bind-stage contract: an
// outcome-dependent objective on a dataset without outcomes must fail at
// bind time, before any descent step runs — not on step one of the loop.
func TestBindRejectsMissingOutcomesEagerly(t *testing.T) {
	d := outcomeDataset(t, false)
	if _, err := BindObjective(FPRObjective(0.25), d); err == nil {
		t.Fatal("BindObjective(FPR) on a dataset without outcomes: expected error")
	}

	opts := DefaultOptions()
	opts.SampleSize = 32
	steps := 0
	opts.Trace = func(TraceStep) { steps++ }
	if _, err := Run(d, rank.Column{Index: 0}, FPRObjective(0.25), opts); err == nil {
		t.Fatal("Run with FPR objective on a dataset without outcomes: expected error")
	}
	if steps != 0 {
		t.Fatalf("validation error surfaced after %d descent steps; want 0 (bind-time rejection)", steps)
	}
}

// TestBoundObjectiveCannotFailMidRun is the regression for the old
// per-step checkOutcomes call in AtK.Eval: once Bind succeeds, repeated
// in-place evaluations must never surface a validation error, across both
// the fixed-k and log-discounted objectives.
func TestBoundObjectiveCannotFailMidRun(t *testing.T) {
	d := outcomeDataset(t, true)
	ws := engine.NewWorkspace(d.NumFair())
	scorer := rank.Column{Index: 0}
	base := scorer.BaseScores(d)

	sample := make([]int, d.N())
	for i := range sample {
		sample[i] = i
	}
	eff := rank.EffectiveScores(d, base, sample, []float64{1, 2}, rank.Beneficial, nil)
	dst := make([]float64, d.NumFair())

	for _, obj := range []Objective{FPRObjective(0.25), LogDiscountedDisparity(0.1, 0.5)} {
		bound, err := BindObjective(obj, d)
		if err != nil {
			t.Fatalf("BindObjective(%s): %v", obj.Name(), err)
		}
		for step := 0; step < 500; step++ {
			if err := bound.EvalInto(ws, sample, eff, dst); err != nil {
				t.Fatalf("%s: EvalInto error on step %d after successful bind: %v", obj.Name(), step, err)
			}
		}
	}

	// The full pipeline must also run an outcome-dependent objective to
	// completion once bound.
	opts := DefaultOptions()
	opts.SampleSize = 32
	if _, err := Run(d, scorer, FPRObjective(0.25), opts); err != nil {
		t.Fatalf("Run with FPR objective on an outcome dataset: %v", err)
	}
}

// TestBoundMatchesLegacyEval pins the in-place evaluation against the
// allocating legacy path bit-for-bit on every packaged objective.
func TestBoundMatchesLegacyEval(t *testing.T) {
	d := outcomeDataset(t, true)
	ws := engine.NewWorkspace(d.NumFair())
	scorer := rank.Column{Index: 0}
	base := scorer.BaseScores(d)
	sample := []int{3, 9, 14, 22, 27, 31, 38, 45, 51, 60, 7, 12}
	eff := rank.EffectiveScores(d, base, sample, []float64{0.5, 1.5}, rank.Beneficial, nil)
	dst := make([]float64, d.NumFair())

	objectives := []Objective{
		DisparityObjective(0.25),
		DisparateImpactObjective(0.25),
		FPRObjective(0.25),
		LogDiscountedDisparity(0.1, 0.5),
		LogDiscounted{Points: []float64{0.2, 0.4}, Metric: DisparateImpactMetric{}},
	}
	for _, obj := range objectives {
		want, err := obj.Eval(d, sample, eff)
		if err != nil {
			t.Fatalf("%s: legacy Eval: %v", obj.Name(), err)
		}
		bound, err := BindObjective(obj, d)
		if err != nil {
			t.Fatalf("%s: bind: %v", obj.Name(), err)
		}
		if err := bound.EvalInto(ws, sample, eff, dst); err != nil {
			t.Fatalf("%s: EvalInto: %v", obj.Name(), err)
		}
		for j := range want {
			if dst[j] != want[j] {
				t.Errorf("%s[%d]: bound = %v, legacy = %v", obj.Name(), j, dst[j], want[j])
			}
		}
	}
}
