package core

import (
	"testing"

	"fairrank/internal/rank"
)

func TestRecorderDiagnostics(t *testing.T) {
	d := tinyDataset(t, 1500, 41)
	rec := &Recorder{}
	opts := DefaultOptions()
	opts.Trace = rec.Observe
	if _, err := Run(d, rank.WeightedSum{Weights: []float64{1}}, DisparityObjective(0.1), opts); err != nil {
		t.Fatal(err)
	}
	total := opts.Ladder.TotalSteps() + opts.RefineSteps
	if len(rec.Steps) != total {
		t.Fatalf("recorded %d steps, want %d", len(rec.Steps), total)
	}
	norms := rec.ObjectiveNorms()
	if len(norms) != total {
		t.Fatalf("norms length %d", len(norms))
	}
	for i, v := range norms {
		if v < 0 || v > 1.5 {
			t.Fatalf("norm[%d] = %v out of range", i, v)
		}
	}
	traj := rec.BonusTrajectory(0)
	if len(traj) != total {
		t.Fatalf("trajectory length %d", len(traj))
	}
	// Stage boundaries: lr 1 -> 0.1 within core, then core -> refine.
	bounds := rec.StageBoundaries()
	if len(bounds) != 2 {
		t.Fatalf("boundaries = %v, want 2 transitions", bounds)
	}
	if bounds[0] != 100 || bounds[1] != 200 {
		t.Errorf("boundaries = %v, want [100 200]", bounds)
	}
	// The trailing mean should be no worse than the opening mean: the
	// descent makes progress from the random initialization.
	head := (&Recorder{Steps: rec.Steps[:20]}).MeanNormOver(0)
	tail := rec.MeanNormOver(50)
	if tail > head {
		t.Errorf("trailing mean norm %v exceeds opening %v", tail, head)
	}
	// Window larger than the trace falls back to everything.
	if rec.MeanNormOver(10*total) != rec.MeanNormOver(0) {
		t.Error("oversized window should equal full mean")
	}
	if (&Recorder{}).MeanNormOver(5) != 0 {
		t.Error("empty recorder mean should be 0")
	}
}
