package core

import (
	"errors"
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"fairrank/internal/dataset"
	"fairrank/internal/metrics"
	"fairrank/internal/rank"
)

// randomBatch draws a mixed batch of queries over one shared bonus:
// metric points, counterfactual object lists, and audit bundles, with
// the k extremes (count 1 and the whole population) always present so
// the boundary geometry (cnt == n gives Competitor == -1) is exercised
// in every trial.
func randomBatch(rng *rand.Rand, n int, bonus []float64) []BatchQuery {
	qs := []BatchQuery{
		{Kind: BatchDisparity, K: 1.0},
		{Kind: BatchCounterfactual, K: 1.0, Objects: []int{rng.Intn(n)}},
		{Kind: BatchCounterfactual, K: 0.5 / float64(n), Objects: []int{rng.Intn(n), rng.Intn(n)}},
	}
	for i, m := 0, 5+rng.Intn(6); i < m; i++ {
		k := rng.Float64()
		if k == 0 {
			k = 0.5
		}
		switch rng.Intn(6) {
		case 0:
			qs = append(qs, BatchQuery{Kind: BatchDisparity, K: k})
		case 1:
			qs = append(qs, BatchQuery{Kind: BatchNDCG, K: k})
		case 2:
			qs = append(qs, BatchQuery{Kind: BatchDisparateImpact, K: k})
		case 3:
			qs = append(qs, BatchQuery{Kind: BatchFPRDiff, K: k})
		case 4:
			objs := make([]int, 1+rng.Intn(4))
			for j := range objs {
				objs[j] = rng.Intn(n)
			}
			qs = append(qs, BatchQuery{Kind: BatchCounterfactual, K: k, Objects: objs})
		case 5:
			qs = append(qs, BatchQuery{Kind: BatchBundle, Bundle: &BundleStatsConfig{
				Bonus:      bonus,
				K:          k,
				Margins:    rng.Intn(4),
				IncludeFPR: rng.Intn(2) == 0,
			}})
		}
	}
	rng.Shuffle(len(qs), func(i, j int) { qs[i], qs[j] = qs[j], qs[i] })
	return qs
}

// batchPassBudget is the ranking budget AnswerBatch promises for one
// batch: zero for a zero bonus (the cached base order answers for free),
// otherwise one shared pass plus — only when a bundle rode along — one
// leave-one-out prefix per attribute with a non-zero bonus, shared
// across every bundle in the batch.
func batchPassBudget(bonus []float64, qs []BatchQuery) int64 {
	nonzero := int64(0)
	for _, b := range bonus {
		if b != 0 {
			nonzero++
		}
	}
	if nonzero == 0 {
		return 0
	}
	for _, q := range qs {
		if q.Kind == BatchBundle {
			return 1 + nonzero
		}
	}
	return 1
}

// TestAnswerBatchBitIdenticalToPointwise is the batching-equivalence
// property test: for random bonus vectors (nil, all-zero, and dense),
// both polarities, and heterogeneous (k, ids, metric, bundle) query
// mixes, every batch answer must equal the per-request evaluator bit
// for bit, and the whole batch must spend exactly its promised ranking
// budget — one shared pass (plus the shared leave-one-out fan when
// bundles are present), never one pass per request.
func TestAnswerBatchBitIdenticalToPointwise(t *testing.T) {
	d := sweepDataset(t, 1200, 907)
	scorer := rank.WeightedSum{Weights: []float64{0.7, 0.3}}
	for _, pol := range []rank.Polarity{rank.Beneficial, rank.Adverse} {
		ev := NewEvaluator(d, scorer, pol)
		rng := rand.New(rand.NewSource(31 + int64(pol)))
		for trial := 0; trial < 10; trial++ {
			bonus := randomBonus(rng, d.NumFair())
			qs := randomBatch(rng, d.N(), bonus)

			r0, m0 := ev.RankingCount(), ev.MergeCount()
			answers, err := ev.AnswerBatch(bonus, qs)
			if err != nil {
				t.Fatalf("trial %d (polarity %v): AnswerBatch: %v", trial, pol, err)
			}
			passes := (ev.RankingCount() - r0) + (ev.MergeCount() - m0)
			if want := batchPassBudget(bonus, qs); passes != want {
				t.Errorf("trial %d (polarity %v): batch spent %d ranked passes, budget is %d",
					trial, pol, passes, want)
			}
			if len(answers) != len(qs) {
				t.Fatalf("trial %d: %d answers for %d queries", trial, len(answers), len(qs))
			}

			for i, q := range qs {
				a := answers[i]
				switch q.Kind {
				case BatchDisparity:
					want, err := ev.Disparity(bonus, q.K)
					if err != nil || a.Err != nil {
						t.Fatalf("query %d disparity errs: batch %v, pointwise %v", i, a.Err, err)
					}
					if !reflect.DeepEqual(a.Vector, want) {
						t.Errorf("query %d (k=%g): batch disparity %v != pointwise %v", i, q.K, a.Vector, want)
					}
				case BatchNDCG:
					want, werr := ev.NDCG(bonus, q.K)
					if !errors.Is(a.Err, werr) && !errors.Is(werr, a.Err) {
						t.Fatalf("query %d ndcg errs: batch %v, pointwise %v", i, a.Err, werr)
					}
					if a.Err == nil && a.Value != want {
						t.Errorf("query %d (k=%g): batch nDCG %v != pointwise %v", i, q.K, a.Value, want)
					}
				case BatchDisparateImpact:
					want, err := ev.DisparateImpact(bonus, q.K)
					if err != nil || a.Err != nil {
						t.Fatalf("query %d DI errs: batch %v, pointwise %v", i, a.Err, err)
					}
					if !reflect.DeepEqual(a.Vector, want) {
						t.Errorf("query %d (k=%g): batch DI %v != pointwise %v", i, q.K, a.Vector, want)
					}
				case BatchFPRDiff:
					want, err := ev.FPRDiff(bonus, q.K)
					if err != nil || a.Err != nil {
						t.Fatalf("query %d FPR errs: batch %v, pointwise %v", i, a.Err, err)
					}
					if !reflect.DeepEqual(a.Vector, want) {
						t.Errorf("query %d (k=%g): batch FPR %v != pointwise %v", i, q.K, a.Vector, want)
					}
				case BatchCounterfactual:
					want, err := ev.CounterfactualBatch(bonus, q.K, q.Objects)
					if err != nil || a.Err != nil {
						t.Fatalf("query %d cf errs: batch %v, pointwise %v", i, a.Err, err)
					}
					if !reflect.DeepEqual(a.Counterfactuals, want) {
						t.Errorf("query %d (k=%g, objs=%v): batch counterfactuals diverge\n batch: %+v\n point: %+v",
							i, q.K, q.Objects, a.Counterfactuals, want)
					}
				case BatchBundle:
					want, err := ev.BundleStats(*q.Bundle)
					if err != nil || a.Err != nil {
						t.Fatalf("query %d bundle errs: batch %v, pointwise %v", i, a.Err, err)
					}
					if !reflect.DeepEqual(a.Bundle, want) {
						t.Errorf("query %d (k=%g): batch bundle diverges\n batch: %+v\n point: %+v",
							i, q.Bundle.K, a.Bundle, want)
					}
				}
			}
			if t.Failed() {
				t.Fatalf("trial %d (polarity %v) diverged", trial, pol)
			}
		}
	}
}

// TestAnswerBatchZeroBonusIsFree pins the free path: a nil (or all-zero)
// bonus is answered from the cached uncompensated order without a single
// ranking or merge, whatever the batch asks.
func TestAnswerBatchZeroBonusIsFree(t *testing.T) {
	d := sweepDataset(t, 600, 11)
	ev := NewEvaluator(d, rank.WeightedSum{Weights: []float64{0.7, 0.3}}, rank.Beneficial)
	for _, bonus := range [][]float64{nil, make([]float64, d.NumFair())} {
		r0, m0 := ev.RankingCount(), ev.MergeCount()
		answers, err := ev.AnswerBatch(bonus, []BatchQuery{
			{Kind: BatchDisparity, K: 0.2},
			{Kind: BatchNDCG, K: 0.1},
			{Kind: BatchCounterfactual, K: 0.3, Objects: []int{5, 17}},
			{Kind: BatchBundle, Bundle: &BundleStatsConfig{Bonus: bonus, K: 0.25, Margins: 2}},
		})
		if err != nil {
			t.Fatalf("AnswerBatch(zero bonus): %v", err)
		}
		for i, a := range answers {
			if a.Err != nil {
				t.Fatalf("answer %d: %v", i, a.Err)
			}
		}
		if dr, dm := ev.RankingCount()-r0, ev.MergeCount()-m0; dr != 0 || dm != 0 {
			t.Errorf("zero-bonus batch cost %d rankings + %d merges, want 0", dr, dm)
		}
	}
}

// TestAnswerBatchErrors pins the batch-wide validation contract: a
// malformed query fails the whole batch up front with an error locating
// the query, before any ranking is spent.
func TestAnswerBatchErrors(t *testing.T) {
	d := tinyDataset(t, 200, 21) // no outcomes
	ev := NewEvaluator(d, rank.WeightedSum{Weights: []float64{1}}, rank.Beneficial)
	bonus := []float64{2}

	if answers, err := ev.AnswerBatch(bonus, nil); err != nil || answers != nil {
		t.Errorf("empty batch = (%v, %v), want (nil, nil)", answers, err)
	}

	cases := []struct {
		name string
		qs   []BatchQuery
		want string
	}{
		{"bad k locates the query", []BatchQuery{{Kind: BatchDisparity, K: 0.5}, {Kind: BatchDisparity, K: 0}}, "batch query 1"},
		{"fpr needs outcomes", []BatchQuery{{Kind: BatchFPRDiff, K: 0.5}}, "requires outcomes"},
		{"object out of range", []BatchQuery{{Kind: BatchCounterfactual, K: 0.5, Objects: []int{9999}}}, "object 9999 outside"},
		{"bundle without config", []BatchQuery{{Kind: BatchBundle}}, "without a config"},
		{"bundle bonus mismatch", []BatchQuery{{Kind: BatchBundle, Bundle: &BundleStatsConfig{Bonus: []float64{1}, K: 0.5}}}, "differs from the batch bonus"},
		{"negative margins", []BatchQuery{{Kind: BatchBundle, Bundle: &BundleStatsConfig{Bonus: bonus, K: 0.5, Margins: -1}}}, "negative"},
		{"unknown kind", []BatchQuery{{Kind: BatchKind(99), K: 0.5}}, "unknown kind"},
	}
	for _, tc := range cases {
		r0, m0 := ev.RankingCount(), ev.MergeCount()
		_, err := ev.AnswerBatch(bonus, tc.qs)
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: err = %v, want substring %q", tc.name, err, tc.want)
		}
		if dr, dm := ev.RankingCount()-r0, ev.MergeCount()-m0; dr != 0 || dm != 0 {
			t.Errorf("%s: rejected batch still spent %d rankings + %d merges", tc.name, dr, dm)
		}
	}

	if _, err := ev.AnswerBatch([]float64{1, 2}, []BatchQuery{{Kind: BatchDisparity, K: 0.5}}); err == nil {
		t.Error("mismatched bonus dimensions accepted")
	}
}

// TestAnswerBatchZeroIdealDCGIsolation pins per-query failure isolation:
// a data-dependent failure (zero ideal DCG) lands in that query's own
// Err — matching what the per-request path reports — and never poisons
// its batchmates or fails the batch.
func TestAnswerBatchZeroIdealDCGIsolation(t *testing.T) {
	n := 100
	score := make([]float64, n) // all-zero base scores: ideal DCG is zero everywhere
	fair := make([]float64, n)
	for i := 0; i < n; i++ {
		if i%3 == 0 {
			fair[i] = 1
		}
	}
	d, err := dataset.New([]string{"s"}, []string{"f"}, [][]float64{score}, [][]float64{fair}, nil)
	if err != nil {
		t.Fatal(err)
	}
	ev := NewEvaluator(d, rank.WeightedSum{Weights: []float64{1}}, rank.Beneficial)
	bonus := []float64{1}

	answers, err := ev.AnswerBatch(bonus, []BatchQuery{
		{Kind: BatchNDCG, K: 0.1},
		{Kind: BatchDisparity, K: 0.1},
		{Kind: BatchBundle, Bundle: &BundleStatsConfig{Bonus: bonus, K: 0.1}},
	})
	if err != nil {
		t.Fatalf("AnswerBatch: %v", err)
	}
	if !errors.Is(answers[0].Err, metrics.ErrZeroIdealDCG) {
		t.Errorf("ndcg query Err = %v, want ErrZeroIdealDCG", answers[0].Err)
	}
	if !errors.Is(answers[2].Err, metrics.ErrZeroIdealDCG) {
		t.Errorf("bundle query Err = %v, want ErrZeroIdealDCG", answers[2].Err)
	}
	if answers[1].Err != nil || answers[1].Vector == nil {
		t.Errorf("disparity batchmate poisoned: (%v, %v)", answers[1].Vector, answers[1].Err)
	}
	want, err := ev.Disparity(bonus, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(answers[1].Vector, want) {
		t.Errorf("disparity next to a failed query diverges: %v != %v", answers[1].Vector, want)
	}
}
