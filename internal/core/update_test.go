package core

import (
	"math"
	"testing"

	"fairrank/internal/metrics"
	"fairrank/internal/rank"
)

// TestCoreUpdateRuleExact verifies Algorithm 1's update equation step by
// step using the trace hook: B_{t+1} = max(0, B_t - L * D_t) under
// beneficial polarity and B_{t+1} = max(0, B_t + L * D_t) under adverse
// polarity, with the optional cap applied after every step.
func TestCoreUpdateRuleExact(t *testing.T) {
	d := tinyDataset(t, 2000, 31)
	scorer := rank.WeightedSum{Weights: []float64{1}}

	for _, pol := range []rank.Polarity{rank.Beneficial, rank.Adverse} {
		t.Run(pol.String(), func(t *testing.T) {
			var steps []TraceStep
			opts := DefaultOptions()
			opts.Polarity = pol
			opts.RefineSteps = 0
			opts.InitBonus = []float64{1}
			opts.MaxBonus = 4
			opts.Trace = func(s TraceStep) { steps = append(steps, s) }
			if _, err := CoreDCA(d, scorer, DisparityObjective(0.1), opts); err != nil {
				t.Fatal(err)
			}
			prev := 1.0
			sign := pol.Sign()
			for i, s := range steps {
				want := prev - sign*s.LR*s.Objective[0]
				if want < 0 {
					want = 0
				}
				if want > opts.MaxBonus {
					want = opts.MaxBonus
				}
				if math.Abs(s.Bonus[0]-want) > 1e-12 {
					t.Fatalf("step %d: bonus %v, want %v (prev %v, D %v, L %v)",
						i, s.Bonus[0], want, prev, s.Objective[0], s.LR)
				}
				prev = s.Bonus[0]
			}
			if len(steps) != opts.Ladder.TotalSteps() {
				t.Fatalf("traced %d steps, want %d", len(steps), opts.Ladder.TotalSteps())
			}
		})
	}
}

// TestLadderStagesDecreaseStepSize checks that the traced learning rates
// follow the configured ladder stages in order.
func TestLadderStagesDecreaseStepSize(t *testing.T) {
	d := tinyDataset(t, 500, 32)
	var rates []float64
	opts := DefaultOptions()
	opts.RefineSteps = 0
	opts.Trace = func(s TraceStep) { rates = append(rates, s.LR) }
	if _, err := CoreDCA(d, rank.WeightedSum{Weights: []float64{1}}, DisparityObjective(0.1), opts); err != nil {
		t.Fatal(err)
	}
	idx := 0
	for _, stage := range opts.Ladder {
		for s := 0; s < stage.Steps; s++ {
			if rates[idx] != stage.LR {
				t.Fatalf("step %d rate %v, want %v", idx, rates[idx], stage.LR)
			}
			idx++
		}
	}
}

// TestPointsRangeRestriction covers the Section IV-E partial-range mode.
func TestPointsRangeRestriction(t *testing.T) {
	pts := metrics.PointsRange(0.1, 0.3, 0.5)
	want := []float64{0.3, 0.4, 0.5}
	if len(pts) != len(want) {
		t.Fatalf("points = %v, want %v", pts, want)
	}
	for i := range want {
		if math.Abs(pts[i]-want[i]) > 1e-9 {
			t.Fatalf("points = %v, want %v", pts, want)
		}
	}
	// Training with a restricted range still works end to end.
	d := tinyDataset(t, 2000, 33)
	obj := LogDiscounted{Points: pts, Metric: DisparityMetric{}}
	if _, err := Run(d, rank.WeightedSum{Weights: []float64{1}}, obj, DefaultOptions()); err != nil {
		t.Fatal(err)
	}
}

// TestRefinementImprovesOverCore reproduces the Section VI-A5 claim on the
// controlled synthetic population: across seeds, the refined vector's
// full-population disparity is at least as good on average as core-only.
func TestRefinementImprovesOverCore(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-seed comparison")
	}
	d := tinyDataset(t, 8000, 34)
	scorer := rank.WeightedSum{Weights: []float64{1}}
	ev := NewEvaluator(d, scorer, rank.Beneficial)
	var coreSum, refinedSum float64
	const runs = 6
	for seed := int64(0); seed < runs; seed++ {
		opts := DefaultOptions()
		opts.Seed = 100 + seed
		obj := DisparityObjective(0.05)
		cr, err := CoreDCA(d, scorer, obj, opts)
		if err != nil {
			t.Fatal(err)
		}
		cd, err := ev.Disparity(RoundTo(append([]float64(nil), cr.Raw...), 0.5), 0.05)
		if err != nil {
			t.Fatal(err)
		}
		coreSum += metrics.Norm(cd)
		rr, err := Run(d, scorer, obj, opts)
		if err != nil {
			t.Fatal(err)
		}
		rd, err := ev.Disparity(rr.Bonus, 0.05)
		if err != nil {
			t.Fatal(err)
		}
		refinedSum += metrics.Norm(rd)
	}
	t.Logf("mean norm: core=%.4f refined=%.4f", coreSum/runs, refinedSum/runs)
	if refinedSum > coreSum*1.15 {
		t.Errorf("refinement materially worse on average: core %.4f, refined %.4f", coreSum/runs, refinedSum/runs)
	}
}
