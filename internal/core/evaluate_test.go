package core

import (
	"math"
	"reflect"
	"testing"

	"fairrank/internal/metrics"
	"fairrank/internal/rank"
)

func TestEvaluatorZeroBonusMatchesOriginal(t *testing.T) {
	d := tinyDataset(t, 500, 11)
	scorer := rank.WeightedSum{Weights: []float64{1}}
	ev := NewEvaluator(d, scorer, rank.Beneficial)
	if !reflect.DeepEqual(ev.Order(nil), ev.Order([]float64{0})) {
		t.Error("nil and zero bonus orders differ")
	}
	sel, err := ev.Select(nil, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(sel, ev.Order(nil)[:len(sel)]) {
		t.Error("Select(nil) is not the prefix of the original order")
	}
	ndcg, err := ev.NDCG(nil, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if ndcg != 1 {
		t.Errorf("nDCG of unchanged ranking = %v, want 1", ndcg)
	}
}

func TestEvaluatorDisparityMatchesMetrics(t *testing.T) {
	d := tinyDataset(t, 500, 12)
	scorer := rank.WeightedSum{Weights: []float64{1}}
	ev := NewEvaluator(d, scorer, rank.Beneficial)
	sel, err := ev.Select(nil, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	want := metrics.Disparity(d, sel)
	got, err := ev.Disparity(nil, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Disparity = %v, want %v", got, want)
	}
}

func TestEvaluatorBonusMovesProtectedUp(t *testing.T) {
	d := tinyDataset(t, 2000, 13)
	scorer := rank.WeightedSum{Weights: []float64{1}}
	ev := NewEvaluator(d, scorer, rank.Beneficial)
	before, err := ev.Disparity(nil, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	after, err := ev.Disparity([]float64{5}, 0.1) // exactly the generator's penalty
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(after[0]) >= math.Abs(before[0]) {
		t.Errorf("bonus did not reduce disparity: %v -> %v", before[0], after[0])
	}
	// nDCG decreases as the bonus perturbs the ranking.
	u, err := ev.NDCG([]float64{5}, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if u >= 1 || u <= 0.5 {
		t.Errorf("nDCG = %v, want in (0.5, 1)", u)
	}
}

func TestEvaluatorFPRRequiresOutcomes(t *testing.T) {
	d := tinyDataset(t, 100, 14)
	ev := NewEvaluator(d, rank.WeightedSum{Weights: []float64{1}}, rank.Beneficial)
	if _, err := ev.FPRDiff(nil, 0.1); err == nil {
		t.Error("expected error without outcomes")
	}
}

func TestFindScaleForNDCG(t *testing.T) {
	d := tinyDataset(t, 4000, 15)
	scorer := rank.WeightedSum{Weights: []float64{1}}
	ev := NewEvaluator(d, scorer, rank.Beneficial)
	bonus := []float64{5}

	// A target below the full-bonus nDCG is satisfied by w = 1.
	full, err := ev.NDCG(bonus, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	w, err := ev.FindScaleForNDCG(bonus, 0.1, full-0.01, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if w != 1 {
		t.Errorf("scale for easy target = %v, want 1", w)
	}

	// A high target forces a smaller proportion, and the scaled vector must
	// meet it.
	target := (1 + full) / 2
	w, err = ev.FindScaleForNDCG(bonus, 0.1, target, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if w >= 1 || w < 0 {
		t.Fatalf("scale = %v, want in [0, 1)", w)
	}
	got, err := ev.NDCG(Scale(bonus, w, 0.5), 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if got < target-1e-9 {
		t.Errorf("scaled nDCG %v misses target %v (w=%v)", got, target, w)
	}
}

func TestEvaluatorAdversePolarity(t *testing.T) {
	d := tinyDataset(t, 1000, 16)
	scorer := rank.WeightedSum{Weights: []float64{1}}
	ben := NewEvaluator(d, scorer, rank.Beneficial)
	adv := NewEvaluator(d, scorer, rank.Adverse)
	// With zero bonus the selections agree; with a bonus they move in
	// opposite directions for the protected group.
	selB, err := ben.Select([]float64{10}, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	selA, err := adv.Select([]float64{10}, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	dispB := metrics.Disparity(d, selB)
	dispA := metrics.Disparity(d, selA)
	if dispB[0] <= dispA[0] {
		t.Errorf("beneficial bonus should include more protected than adverse: %v vs %v", dispB[0], dispA[0])
	}
}
