package core

import (
	"math"
)

// Recorder collects descent traces for convergence diagnostics. Attach its
// Observe method as Options.Trace; after the run, the recorded series show
// how the objective norm and the bonus vector evolve across the ladder
// stages and the refinement pass — the picture behind the paper's choice
// of "3 sets of DCA with 100 rounds for each learning rate".
type Recorder struct {
	Steps []TraceStep
}

// Observe implements the Options.Trace callback.
func (r *Recorder) Observe(s TraceStep) {
	r.Steps = append(r.Steps, s)
}

// ObjectiveNorms returns the L2 norm of the objective vector at every
// recorded step.
func (r *Recorder) ObjectiveNorms() []float64 {
	out := make([]float64, len(r.Steps))
	for i, s := range r.Steps {
		var sum float64
		for _, v := range s.Objective {
			sum += v * v
		}
		out[i] = math.Sqrt(sum)
	}
	return out
}

// BonusTrajectory returns the recorded bonus values of one dimension.
func (r *Recorder) BonusTrajectory(dim int) []float64 {
	out := make([]float64, len(r.Steps))
	for i, s := range r.Steps {
		out[i] = s.Bonus[dim]
	}
	return out
}

// StageBoundaries returns the step indices at which the stage label
// changes (e.g. core -> refine), for plotting stage separators.
func (r *Recorder) StageBoundaries() []int {
	var out []int
	for i := 1; i < len(r.Steps); i++ {
		if r.Steps[i].Stage != r.Steps[i-1].Stage || r.Steps[i].LR != r.Steps[i-1].LR {
			out = append(out, i)
		}
	}
	return out
}

// MeanNormOver returns the mean objective norm over the trailing `window`
// steps (all steps when window <= 0 or larger than the trace) — a simple
// convergence indicator robust to per-sample noise.
func (r *Recorder) MeanNormOver(window int) float64 {
	norms := r.ObjectiveNorms()
	if len(norms) == 0 {
		return 0
	}
	if window <= 0 || window > len(norms) {
		window = len(norms)
	}
	var sum float64
	for _, v := range norms[len(norms)-window:] {
		sum += v
	}
	return sum / float64(window)
}
