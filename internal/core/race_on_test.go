//go:build race

package core

// raceEnabled reports whether the race detector is active; see
// race_off_test.go.
const raceEnabled = true
