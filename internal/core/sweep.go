package core

import (
	"context"
	"fmt"
	"math"
	"slices"
	"sort"

	"fairrank/internal/engine"
	"fairrank/internal/metrics"
	"fairrank/internal/rank"
)

// Prefix-sweep engine. A metric sweep is a set of (bonus, k) points; in
// the common interactive shape — "how does this trained vector behave
// across selection sizes?" — every point shares one bonus vector and only
// k varies. The ranking under a bonus vector does not depend on k, so the
// engine groups points by distinct bonus vector, ranks each group once,
// and answers every k in the group from prefix aggregates of that single
// sorted order. Only the leading maxCut positions are ever read, so each
// group's order comes from rankedPrefixWS: the combo-run merge when
// eligible (O(maxCut·log g), no population-wide pass at all), the
// bounded-heap prefix otherwise — an S-point sweep costs one prefix
// ranking plus O(maxCut·f + S·f) per group instead of
// S × O(n log n + n·f).
//
// Heterogeneous sweeps (every point its own bonus) degenerate to singleton
// groups: a prefix over one cut performs exactly the pointwise
// computation, and the groups fan over the worker pool just as the points
// themselves used to — the per-point path is the prefix path at S=1.
//
// Results are bit-identical to the pointwise evaluators (Disparity, NDCG,
// DisparateImpact, FPRDiff): the prefix aggregates resume the same
// left-to-right folds the pointwise metrics compute (see
// metrics/prefix.go), and the closed-form finishers share their scalar
// formulas with the pointwise implementations.

// SweepPoint is one (bonus vector, selection fraction) evaluation of a
// parallel sweep.
type SweepPoint struct {
	Bonus []float64
	K     float64
}

// sweepGroup is the unit of ranking work: all sweep points that share one
// canonical bonus vector, with their selection counts deduplicated into an
// ascending cut grid.
type sweepGroup struct {
	bonus  []float64 // canonical: nil means the uncompensated ranking
	pts    []int     // indices into the points slice, in point order
	cuts   []int     // ascending unique selection counts
	cutPos []int     // cutPos[r] locates pts[r]'s count within cuts
}

// canonBonus maps every all-zero (or nil) bonus to nil, so that the
// uncompensated ranking forms a single group regardless of how callers
// spell "no bonus".
func canonBonus(b []float64) []float64 {
	if isZero(b) {
		return nil
	}
	return b
}

// bonusKey builds a map key from the exact bit pattern of a canonical
// bonus vector. Only the slow heterogeneous-grouping path needs it.
func bonusKey(b []float64) string {
	buf := make([]byte, 8*len(b))
	for j, v := range b {
		bits := math.Float64bits(v)
		for o := 0; o < 8; o++ {
			buf[8*j+o] = byte(bits >> (8 * o))
		}
	}
	return string(buf)
}

// groupPoints validates every selection fraction through count and
// partitions the points into sweepGroups in first-appearance order. The
// all-points-share-one-bonus fast path is a single comparison scan with no
// map in sight.
func (e *Evaluator) groupPoints(points []SweepPoint, count func(n int, frac float64) (int, error)) ([]sweepGroup, error) {
	if len(points) == 0 {
		return nil, nil
	}
	n := e.d.N()
	cnts := make([]int, len(points))
	for i, pt := range points {
		c, err := count(n, pt.K)
		if err != nil {
			return nil, fmt.Errorf("core: sweep point %d (k=%g): %w", i, pt.K, err)
		}
		cnts[i] = c
	}

	var groups []sweepGroup
	first := canonBonus(points[0].Bonus)
	homogeneous := true
	for i := 1; i < len(points); i++ {
		if !slices.Equal(first, canonBonus(points[i].Bonus)) {
			homogeneous = false
			break
		}
	}
	if homogeneous {
		pts := make([]int, len(points))
		for i := range pts {
			pts[i] = i
		}
		groups = []sweepGroup{{bonus: first, pts: pts}}
	} else {
		byKey := make(map[string]int, len(points))
		for i, pt := range points {
			b := canonBonus(pt.Bonus)
			key := bonusKey(b)
			g, ok := byKey[key]
			if !ok {
				g = len(groups)
				byKey[key] = g
				groups = append(groups, sweepGroup{bonus: b})
			}
			groups[g].pts = append(groups[g].pts, i)
		}
	}

	for gi := range groups {
		g := &groups[gi]
		cuts := make([]int, len(g.pts))
		for r, pi := range g.pts {
			cuts[r] = cnts[pi]
		}
		sort.Ints(cuts)
		g.cuts = slices.Compact(cuts)
		g.cutPos = make([]int, len(g.pts))
		for r, pi := range g.pts {
			pos, _ := slices.BinarySearch(g.cuts, cnts[pi])
			g.cutPos[r] = pos
		}
	}
	return groups, nil
}

// vectorRows carves one result row per point from a single backing slice,
// so a sweep performs two result allocations total instead of one per
// point.
func (e *Evaluator) vectorRows(n int) [][]float64 {
	return e.vectorRowsW(n, e.d.NumFair())
}

// vectorRowsW is vectorRows with an explicit row width: the exposure sweep
// returns NumFair+1 entries per point (the named groups plus the
// unprotected rest), one wider than the per-dimension default.
func (e *Evaluator) vectorRowsW(n, w int) [][]float64 {
	backing := make([]float64, n*w)
	out := make([][]float64, n)
	for i := range out {
		out[i] = backing[i*w : (i+1)*w : (i+1)*w]
	}
	return out
}

// DisparitySweep evaluates the full-population disparity of every sweep
// point and returns the vectors in point order. Points sharing a bonus
// vector are ranked once and answered from prefix centroids; distinct
// bonus vectors fan over the worker pool.
func (e *Evaluator) DisparitySweep(points []SweepPoint) ([][]float64, error) {
	return e.DisparitySweepCtx(context.Background(), points)
}

// DisparitySweepCtx is DisparitySweep with cooperative cancellation: once
// ctx is done, no further bonus group is ranked and the context's error is
// returned; no partial result escapes.
func (e *Evaluator) DisparitySweepCtx(ctx context.Context, points []SweepPoint) ([][]float64, error) {
	groups, err := e.groupPoints(points, rank.SelectCount)
	if err != nil {
		return nil, err
	}
	dims := e.d.NumFair()
	out := e.vectorRows(len(points))
	gerrs := make([]error, len(groups))
	perr := e.parallelCtx(ctx, len(groups), func(ws *engine.Workspace, g int) {
		gr := &groups[g]
		order, err := e.rankedPrefixWS(ctx, ws, gr.bonus, gr.cuts[len(gr.cuts)-1])
		if err != nil {
			gerrs[g] = err
			return
		}
		cent := metrics.PrefixCentroidInto(e.d, order, gr.cuts, ws.Pop(), ws.Agg(len(gr.cuts)*dims))
		for r, pi := range gr.pts {
			row := cent[gr.cutPos[r]*dims : (gr.cutPos[r]+1)*dims]
			dst := out[pi]
			for j := range dst {
				dst[j] = row[j] - e.centroid[j]
			}
		}
	})
	if err := firstErr(perr, gerrs); err != nil {
		return nil, err
	}
	return out, nil
}

// NDCGSweep evaluates the nDCG of every sweep point and returns the values
// in point order. Points sharing a bonus vector are ranked once and
// answered from prefix DCG sums over the compensated and original orders.
func (e *Evaluator) NDCGSweep(points []SweepPoint) ([]float64, error) {
	return e.NDCGSweepCtx(context.Background(), points)
}

// NDCGSweepCtx is NDCGSweep with cooperative cancellation.
func (e *Evaluator) NDCGSweepCtx(ctx context.Context, points []SweepPoint) ([]float64, error) {
	groups, err := e.groupPoints(points, metrics.PrefixCount)
	if err != nil {
		return nil, err
	}
	out := make([]float64, len(points))
	errs := make([]error, len(points))
	gerrs := make([]error, len(groups))
	perr := e.parallelCtx(ctx, len(groups), func(ws *engine.Workspace, g int) {
		gr := &groups[g]
		order, err := e.rankedPrefixWS(ctx, ws, gr.bonus, gr.cuts[len(gr.cuts)-1])
		if err != nil {
			gerrs[g] = err
			return
		}
		nc := len(gr.cuts)
		agg := ws.Agg(2 * nc)
		corrected := metrics.PrefixDCGInto(e.base, order, gr.cuts, agg[:nc])
		ideal := metrics.PrefixDCGInto(e.base, e.origOrd, gr.cuts, agg[nc:])
		for r, pi := range gr.pts {
			c := gr.cutPos[r]
			if ideal[c] == 0 {
				errs[pi] = metrics.ErrZeroIdealDCG
				continue
			}
			out[pi] = corrected[c] / ideal[c]
		}
	})
	if err := firstErr(perr, gerrs); err != nil {
		return nil, err
	}
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("core: sweep point %d (k=%g): %w", i, points[i].K, err)
		}
	}
	return out, nil
}

// DisparateImpactSweep evaluates the scaled disparate impact of every
// sweep point and returns the vectors in point order. Points sharing a
// bonus vector are ranked once and answered from prefix group counts; the
// population group sizes are evaluator constants.
func (e *Evaluator) DisparateImpactSweep(points []SweepPoint) ([][]float64, error) {
	return e.DisparateImpactSweepCtx(context.Background(), points)
}

// DisparateImpactSweepCtx is DisparateImpactSweep with cooperative
// cancellation.
func (e *Evaluator) DisparateImpactSweepCtx(ctx context.Context, points []SweepPoint) ([][]float64, error) {
	groups, err := e.groupPoints(points, rank.SelectCount)
	if err != nil {
		return nil, err
	}
	dims := e.d.NumFair()
	n := e.d.N()
	out := e.vectorRows(len(points))
	gerrs := make([]error, len(groups))
	perr := e.parallelCtx(ctx, len(groups), func(ws *engine.Workspace, g int) {
		gr := &groups[g]
		order, err := e.rankedPrefixWS(ctx, ws, gr.bonus, gr.cuts[len(gr.cuts)-1])
		if err != nil {
			gerrs[g] = err
			return
		}
		counts := metrics.PrefixGroupCountsInto(e.d, order, gr.cuts, ws.Cnts(len(gr.cuts)*dims))
		for r, pi := range gr.pts {
			c := gr.cutPos[r]
			row := counts[c*dims : (c+1)*dims]
			sel := gr.cuts[c]
			dst := out[pi]
			for j := range dst {
				dst[j] = metrics.ImpactFromCounts(row[j], e.groupTot[j], sel-row[j], n-e.groupTot[j])
			}
		}
	})
	if err := firstErr(perr, gerrs); err != nil {
		return nil, err
	}
	return out, nil
}

// FPRDiffSweep evaluates the per-group false-positive-rate difference of
// every sweep point and returns the vectors in point order. The dataset
// must carry outcomes. Points sharing a bonus vector are ranked once and
// answered from prefix false-positive counts; the ground-truth-negative
// totals are evaluator constants.
func (e *Evaluator) FPRDiffSweep(points []SweepPoint) ([][]float64, error) {
	return e.FPRDiffSweepCtx(context.Background(), points)
}

// FPRDiffSweepCtx is FPRDiffSweep with cooperative cancellation.
func (e *Evaluator) FPRDiffSweepCtx(ctx context.Context, points []SweepPoint) ([][]float64, error) {
	if !e.d.HasOutcomes() {
		return nil, fmt.Errorf("core: FPR evaluation requires outcomes")
	}
	groups, err := e.groupPoints(points, rank.SelectCount)
	if err != nil {
		return nil, err
	}
	dims := e.d.NumFair()
	out := e.vectorRows(len(points))
	gerrs := make([]error, len(groups))
	perr := e.parallelCtx(ctx, len(groups), func(ws *engine.Workspace, g int) {
		gr := &groups[g]
		order, err := e.rankedPrefixWS(ctx, ws, gr.bonus, gr.cuts[len(gr.cuts)-1])
		if err != nil {
			gerrs[g] = err
			return
		}
		nc := len(gr.cuts)
		cnts := ws.Cnts(nc*dims + nc)
		rows, all := cnts[:nc*dims], cnts[nc*dims:]
		metrics.PrefixFPCountsInto(e.d, order, gr.cuts, rows, all)
		for r, pi := range gr.pts {
			c := gr.cutPos[r]
			dst := out[pi]
			if e.negAll == 0 {
				for j := range dst {
					dst[j] = 0
				}
				continue
			}
			overall := float64(all[c]) / float64(e.negAll)
			row := rows[c*dims : (c+1)*dims]
			for j := range dst {
				if e.negTot[j] == 0 {
					dst[j] = 0
					continue
				}
				dst[j] = float64(row[j])/float64(e.negTot[j]) - overall
			}
		}
	})
	if err := firstErr(perr, gerrs); err != nil {
		return nil, err
	}
	return out, nil
}

// firstErr merges the pool-level cancellation error with the per-group
// worker errors. Group errors win: they carry the site that actually
// failed (the pool error is the same context error one dispatch later).
func firstErr(poolErr error, gerrs []error) error {
	for _, err := range gerrs {
		if err != nil {
			return err
		}
	}
	return poolErr
}
