//go:build !race

package core

// raceEnabled reports whether the race detector is active. Allocation
// pins skip under it: the race runtime deliberately drops sync.Pool
// items to shake out reuse races, so pooled-workspace paths show
// spurious allocations there.
const raceEnabled = false
