// Package sample provides the deterministic sampling machinery behind DCA.
//
// Algorithm 1 of the paper draws "a random sample of sample size from O" at
// every descent step; Algorithm 2 consumes "the next sample in O",
// i.e. walks the dataset in randomized epochs. Both are provided here with
// explicit seeding so every experiment in the repository is reproducible.
package sample
