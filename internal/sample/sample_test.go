package sample

import (
	"slices"
	"testing"
	"testing/quick"
)

func TestUniformDistinctAndInRange(t *testing.T) {
	f := func(seed int64) bool {
		s := New(100, seed)
		idx := s.Uniform(30)
		if len(idx) != 30 {
			return false
		}
		seen := make(map[int]bool)
		for _, i := range idx {
			if i < 0 || i >= 100 || seen[i] {
				return false
			}
			seen[i] = true
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestUniformFullPopulation(t *testing.T) {
	s := New(10, 1)
	idx := s.Uniform(10)
	seen := make(map[int]bool)
	for _, i := range idx {
		seen[i] = true
	}
	if len(seen) != 10 {
		t.Errorf("Uniform(n) covered %d of 10", len(seen))
	}
}

func TestUniformIsApproximatelyUniform(t *testing.T) {
	s := New(10, 7)
	counts := make([]int, 10)
	const trials = 20000
	for i := 0; i < trials; i++ {
		for _, v := range s.Uniform(3) {
			counts[v]++
		}
	}
	// Every index should be hit about trials*3/10 = 6000 times.
	for i, c := range counts {
		if c < 5500 || c > 6500 {
			t.Errorf("index %d drawn %d times, want ≈ 6000", i, c)
		}
	}
}

func TestUniformPanicsWhenOversampling(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic when k > n")
		}
	}()
	New(5, 1).Uniform(6)
}

func TestWithReplacement(t *testing.T) {
	s := New(3, 2)
	idx := s.WithReplacement(1000)
	if len(idx) != 1000 {
		t.Fatalf("got %d indices", len(idx))
	}
	for _, i := range idx {
		if i < 0 || i >= 3 {
			t.Fatalf("index %d out of range", i)
		}
	}
}

func TestNextCoversEpoch(t *testing.T) {
	s := New(12, 3)
	seen := make(map[int]int)
	// Exactly one epoch: 4 samples of 3.
	for b := 0; b < 4; b++ {
		for _, i := range s.Next(3) {
			seen[i]++
		}
	}
	if len(seen) != 12 {
		t.Fatalf("epoch covered %d of 12", len(seen))
	}
	for i, c := range seen {
		if c != 1 {
			t.Errorf("index %d visited %d times within one epoch", i, c)
		}
	}
}

func TestNextReshufflesOnPartialRemainder(t *testing.T) {
	s := New(10, 4)
	// Samples of 3: positions 0-2, 3-5, 6-8, then a reshuffle (remainder 1
	// is dropped). No panic, always size 3.
	for b := 0; b < 20; b++ {
		if got := s.Next(3); len(got) != 3 {
			t.Fatalf("sample %d has size %d", b, len(got))
		}
	}
}

func TestDeterminismBySeed(t *testing.T) {
	a := New(50, 9)
	b := New(50, 9)
	for i := 0; i < 5; i++ {
		x := a.Uniform(7)
		y := b.Uniform(7)
		for j := range x {
			if x[j] != y[j] {
				t.Fatalf("same seed diverged at draw %d: %v vs %v", i, x, y)
			}
		}
	}
	c := New(50, 10)
	diverged := false
	for i := 0; i < 5 && !diverged; i++ {
		x := a.Uniform(7)
		z := c.Uniform(7)
		for j := range x {
			if x[j] != z[j] {
				diverged = true
				break
			}
		}
	}
	if !diverged {
		t.Error("different seeds produced identical draws")
	}
}

func TestNextPanicsWhenOversampling(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic when k > n")
		}
	}()
	New(2, 1).Next(3)
}

// TestUniformIntoGenerationWrap forces the generation stamp to wrap and
// checks that stale displacement entries from before the wrap cannot
// collide with fresh ones. Before the wrap was handled, the counter
// re-entered stamp values still present in the table from early draws,
// so a stale displaced index could masquerade as fresh state and inject
// a duplicate into the sample. The draw stream must also stay identical
// to a sampler that never wrapped: the stamp is bookkeeping, not
// randomness.
func TestUniformIntoGenerationWrap(t *testing.T) {
	const n, k = 64, 48
	s := New(n, 99)
	ref := New(n, 99)
	dst, refDst := make([]int, k), make([]int, k)
	// One draw to allocate the displacement table.
	s.UniformInto(dst)
	ref.UniformInto(refDst)
	// Poison every slot with exactly the stamp the counter hands out right
	// after wrapping (1), all displacing to index 0: if the wrap does not
	// invalidate the table, every lookup resolves to the stale 0 and the
	// draw collapses into duplicates.
	for i := range s.dispGen {
		s.dispGen[i] = 1
		s.dispVal[i] = 0
	}
	// Jump the counter to the edge: the next draw wraps to 0 and restarts
	// at 1 — colliding with the poisoned stamps unless the wrap path
	// clears them.
	s.gen = ^uint64(0)
	for draw := 0; draw < 4; draw++ {
		got := s.UniformInto(dst)
		want := ref.UniformInto(refDst)
		seen := make(map[int]bool, k)
		for _, v := range got {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("draw %d across the wrap: invalid or duplicate index %d in %v", draw, v, got)
			}
			seen[v] = true
		}
		if !slices.Equal(got, want) {
			t.Errorf("draw %d: wrap changed the sampled stream:\n got %v\nwant %v", draw, got, want)
		}
	}
	// The wrap draw restarts the counter at 1; three more draws follow.
	if s.gen != 4 {
		t.Errorf("post-wrap generation = %d, want 4", s.gen)
	}
}
