package sample

import (
	"fmt"
	"math/rand"
)

// Sampler draws index samples from a population of fixed size n. It is not
// safe for concurrent use; create one per goroutine.
type Sampler struct {
	n   int
	rng *rand.Rand

	// epoch state for Next.
	perm []int
	pos  int

	// displacement table for Uniform/UniformInto: a generation-stamped
	// sparse array standing in for the map of a partial Fisher-Yates
	// shuffle, so repeated draws allocate nothing and never hash. The
	// stamp is uint64 so service-scale draw counts cannot wrap it in
	// practice (2^32 draws take minutes; 2^64 take centuries), and the
	// wrap path below keeps the table correct even if it somehow does.
	dispVal []int
	dispGen []uint64
	gen     uint64
}

// New returns a sampler over the population {0, ..., n-1} seeded with seed.
func New(n int, seed int64) *Sampler {
	return &Sampler{n: n, rng: rand.New(rand.NewSource(seed))}
}

// N reports the population size.
func (s *Sampler) N() int { return s.n }

// Rand exposes the underlying generator for callers that need auxiliary
// randomness (e.g. random bonus initialization) tied to the same seed.
func (s *Sampler) Rand() *rand.Rand { return s.rng }

// Uniform returns k distinct indices drawn uniformly at random, using a
// partial Fisher-Yates shuffle. It panics if k > n.
func (s *Sampler) Uniform(k int) []int {
	return s.UniformInto(make([]int, k))
}

// UniformInto fills dst with len(dst) distinct indices drawn uniformly at
// random and returns it. It is the allocation-free variant of Uniform: the
// partial Fisher-Yates displacement table is a generation-stamped array
// owned by the sampler, so steady-state draws allocate nothing. The random
// stream consumed is identical to Uniform's. It panics if len(dst) > n.
func (s *Sampler) UniformInto(dst []int) []int {
	k := len(dst)
	if k > s.n {
		//fairlint:allow intoalloc -- error-path panic message; unreachable on a steady-state draw
		panic(fmt.Sprintf("sample: requested %d of %d", k, s.n))
	}
	//fairlint:allow intoalloc -- one-time lazy init of the displacement table; steady-state draws allocate nothing (pinned by AllocsPerRun)
	if s.dispVal == nil {
		s.dispVal = make([]int, s.n)
		s.dispGen = make([]uint64, s.n)
	}
	s.gen++
	if s.gen == 0 {
		// Stamp wrap: a stale entry stamped in a previous epoch of the
		// counter would be indistinguishable from a fresh one and could
		// inject a duplicate index into the draw, so invalidate every
		// entry explicitly before reusing stamp values.
		for i := range s.dispGen {
			s.dispGen[i] = 0
		}
		s.gen = 1
	}
	// Partial shuffle over a virtual identity permutation: remember only
	// the displaced entries.
	for i := 0; i < k; i++ {
		j := i + s.rng.Intn(s.n-i)
		vj := j
		if s.dispGen[j] == s.gen {
			vj = s.dispVal[j]
		}
		vi := i
		if s.dispGen[i] == s.gen {
			vi = s.dispVal[i]
		}
		dst[i] = vj
		s.dispVal[j], s.dispGen[j] = vi, s.gen
		s.dispVal[i], s.dispGen[i] = vj, s.gen
	}
	return dst
}

// WithReplacement returns k indices drawn independently and uniformly.
func (s *Sampler) WithReplacement(k int) []int {
	out := make([]int, k)
	for i := range out {
		out[i] = s.rng.Intn(s.n)
	}
	return out
}

// Next returns the next k indices from the current randomized epoch,
// reshuffling when the epoch is exhausted. This is the "next sample in O"
// iterator of Algorithm 2: over an epoch every object is visited exactly
// once, which lowers the variance of the refinement steps relative to
// independent sampling. It panics if k > n.
func (s *Sampler) Next(k int) []int {
	if k > s.n {
		panic(fmt.Sprintf("sample: requested %d of %d", k, s.n))
	}
	if s.perm == nil {
		s.perm = s.rng.Perm(s.n)
	}
	if s.pos+k > s.n {
		// Reshuffle and restart the epoch; partial remainders are dropped so
		// every sample has exactly k elements.
		s.rng.Shuffle(s.n, func(i, j int) { s.perm[i], s.perm[j] = s.perm[j], s.perm[i] })
		s.pos = 0
	}
	out := s.perm[s.pos : s.pos+k]
	s.pos += k
	return out
}
