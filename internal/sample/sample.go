// Package sample provides the deterministic sampling machinery behind DCA.
//
// Algorithm 1 of the paper draws "a random sample of sample size from O" at
// every descent step; Algorithm 2 consumes "the next sample in O",
// i.e. walks the dataset in randomized epochs. Both are provided here with
// explicit seeding so every experiment in the repository is reproducible.
package sample

import (
	"fmt"
	"math/rand"
)

// Sampler draws index samples from a population of fixed size n. It is not
// safe for concurrent use; create one per goroutine.
type Sampler struct {
	n   int
	rng *rand.Rand

	// epoch state for Next.
	perm []int
	pos  int
}

// New returns a sampler over the population {0, ..., n-1} seeded with seed.
func New(n int, seed int64) *Sampler {
	return &Sampler{n: n, rng: rand.New(rand.NewSource(seed))}
}

// N reports the population size.
func (s *Sampler) N() int { return s.n }

// Rand exposes the underlying generator for callers that need auxiliary
// randomness (e.g. random bonus initialization) tied to the same seed.
func (s *Sampler) Rand() *rand.Rand { return s.rng }

// Uniform returns k distinct indices drawn uniformly at random, using a
// partial Fisher-Yates shuffle in O(k) extra space. It panics if k > n.
func (s *Sampler) Uniform(k int) []int {
	if k > s.n {
		panic(fmt.Sprintf("sample: requested %d of %d", k, s.n))
	}
	// Partial shuffle over a virtual identity permutation: remember only the
	// displaced entries.
	displaced := make(map[int]int, 2*k)
	out := make([]int, k)
	for i := 0; i < k; i++ {
		j := i + s.rng.Intn(s.n-i)
		vj, ok := displaced[j]
		if !ok {
			vj = j
		}
		vi, ok := displaced[i]
		if !ok {
			vi = i
		}
		out[i] = vj
		displaced[j] = vi
		displaced[i] = vj
	}
	return out
}

// WithReplacement returns k indices drawn independently and uniformly.
func (s *Sampler) WithReplacement(k int) []int {
	out := make([]int, k)
	for i := range out {
		out[i] = s.rng.Intn(s.n)
	}
	return out
}

// Next returns the next k indices from the current randomized epoch,
// reshuffling when the epoch is exhausted. This is the "next sample in O"
// iterator of Algorithm 2: over an epoch every object is visited exactly
// once, which lowers the variance of the refinement steps relative to
// independent sampling. It panics if k > n.
func (s *Sampler) Next(k int) []int {
	if k > s.n {
		panic(fmt.Sprintf("sample: requested %d of %d", k, s.n))
	}
	if s.perm == nil {
		s.perm = s.rng.Perm(s.n)
	}
	if s.pos+k > s.n {
		// Reshuffle and restart the epoch; partial remainders are dropped so
		// every sample has exactly k elements.
		s.rng.Shuffle(s.n, func(i, j int) { s.perm[i], s.perm[j] = s.perm[j], s.perm[i] })
		s.pos = 0
	}
	out := s.perm[s.pos : s.pos+k]
	s.pos += k
	return out
}
