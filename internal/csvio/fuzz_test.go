package csvio

import (
	"bytes"
	"errors"
	"strings"
	"testing"
)

// FuzzCSVRead checks three invariants over arbitrary CSV input: Read
// never panics; every rejection is a positioned *Error carrying the
// 1-based input line (and the offending column when one is at fault);
// and everything Read accepts survives a Write/Read round trip
// unchanged. The seed corpus is the error-path fixture set of
// TestReadRejectsMalformedInputs plus well-formed inputs, so the fuzzer
// starts on both sides of every validation branch. CI runs a 20s fuzz
// smoke (`go test -fuzz=FuzzCSVRead -fuzztime=20s ./internal/csvio`).
func FuzzCSVRead(f *testing.F) {
	seeds := []string{
		// Well-formed shapes.
		"score:a,fair:b\n1,0\n2,1\n",
		"score:a,fair:b,outcome\n1,0,1\n",
		"fair:x\n0.5\n",
		"score:a\n-3.25\n",
		"score:a,fair:b\n", // header only
		// Error-path fixtures (mirrors TestReadRejectsMalformedInputs).
		"score:a,banana\n1,2\n",               // unknown column
		"score:a,fair:b\nxyz,0\n",             // bad float
		"score:a,fair:b\n1,2\n",               // fairness out of range
		"score:a,fair:b,outcome\n1,0,maybe\n", // bad outcome
		"score:a,outcome,outcome\n1,0,1\n",    // duplicate outcome
		"score:a,score:a,fair:b\n1,2,0\n",     // duplicate score column
		"score:a,fair:b,fair:b\n1,0,1\n",      // duplicate fair column
		"\n",                                  // no columns
		"",                                    // empty input
		"score:a,fair:b\n1,0\n1\n",            // short row
		"score:a,fair:b\n1,0,9\n",             // long row
		"score:a,fair:b\nNaN,0.5\n",           // non-finite score
		"score:a,fair:b\n-Inf,1\n",            // non-finite score
		"score:a,fair:b\n0,Inf\n",             // non-finite fairness value
		"score:a,fair:b\n1,0\n2,nan\n",        // non-finite on a later line
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, input string) {
		d, err := Read(strings.NewReader(input))
		if err != nil {
			var pe *Error
			if !errors.As(err, &pe) {
				t.Fatalf("rejection is not a positioned *csvio.Error: %T %v", err, err)
			}
			if pe.Line < 1 {
				t.Fatalf("rejection without a line position: %+v", pe)
			}
			if !strings.Contains(err.Error(), "csvio:") {
				t.Fatalf("rejection without package context: %v", err)
			}
			return // rejected input is fine; panics and unpositioned errors are not
		}
		var buf bytes.Buffer
		if err := Write(&buf, d); err != nil {
			t.Fatalf("accepted dataset failed to serialize: %v", err)
		}
		back, err := Read(&buf)
		if err != nil {
			t.Fatalf("round trip failed to parse: %v", err)
		}
		if back.N() != d.N() || back.NumScore() != d.NumScore() || back.NumFair() != d.NumFair() {
			t.Fatalf("round trip changed shape: (%d,%d,%d) -> (%d,%d,%d)",
				d.N(), d.NumScore(), d.NumFair(), back.N(), back.NumScore(), back.NumFair())
		}
		for i := 0; i < d.N(); i++ {
			for j := 0; j < d.NumScore(); j++ {
				if back.Score(i, j) != d.Score(i, j) {
					t.Fatalf("round trip changed score (%d,%d)", i, j)
				}
			}
			for j := 0; j < d.NumFair(); j++ {
				if back.Fair(i, j) != d.Fair(i, j) {
					t.Fatalf("round trip changed fairness (%d,%d)", i, j)
				}
			}
		}
	})
}
