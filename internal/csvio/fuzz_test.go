package csvio

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzRead checks that arbitrary CSV input never panics the reader and
// that everything it accepts survives a write/read round trip.
func FuzzRead(f *testing.F) {
	f.Add("score:a,fair:b\n1,0\n2,1\n")
	f.Add("score:a,fair:b,outcome\n1,0,1\n")
	f.Add("fair:x\n0.5\n")
	f.Add("score:a\n-3.25\n")
	f.Add("score:a,fair:b\n1\n")       // short record
	f.Add("score:a,banana\n1,2\n")     // unknown column
	f.Add("score:a,fair:b\nNaN,0.5\n") // non-finite score
	f.Add("score:a,fair:b\n-Inf,1\n")  // non-finite score
	f.Add("score:a,fair:b\n0,Inf\n")   // non-finite fairness value
	f.Add("score:a,score:a\n1,2\n")    // duplicate column
	f.Add("")
	f.Fuzz(func(t *testing.T, input string) {
		d, err := Read(strings.NewReader(input))
		if err != nil {
			return // rejected input is fine; panics are not
		}
		var buf bytes.Buffer
		if err := Write(&buf, d); err != nil {
			t.Fatalf("accepted dataset failed to serialize: %v", err)
		}
		back, err := Read(&buf)
		if err != nil {
			t.Fatalf("round trip failed to parse: %v", err)
		}
		if back.N() != d.N() || back.NumScore() != d.NumScore() || back.NumFair() != d.NumFair() {
			t.Fatalf("round trip changed shape: (%d,%d,%d) -> (%d,%d,%d)",
				d.N(), d.NumScore(), d.NumFair(), back.N(), back.NumScore(), back.NumFair())
		}
		for i := 0; i < d.N(); i++ {
			for j := 0; j < d.NumScore(); j++ {
				if back.Score(i, j) != d.Score(i, j) {
					t.Fatalf("round trip changed score (%d,%d)", i, j)
				}
			}
			for j := 0; j < d.NumFair(); j++ {
				if back.Fair(i, j) != d.Fair(i, j) {
					t.Fatalf("round trip changed fairness (%d,%d)", i, j)
				}
			}
		}
	})
}
