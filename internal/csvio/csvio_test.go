package csvio

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"

	"fairrank/internal/dataset"
)

func roundTrip(t *testing.T, d *dataset.Dataset) *dataset.Dataset {
	t.Helper()
	var buf bytes.Buffer
	if err := Write(&buf, d); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	return got
}

func TestRoundTripWithoutOutcomes(t *testing.T) {
	b := dataset.NewBuilder([]string{"gpa", "test"}, []string{"li", "eni"})
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 200; i++ {
		li := float64(rng.Intn(2))
		b.Add([]float64{rng.Float64() * 100, rng.Float64() * 100}, []float64{li, rng.Float64()})
	}
	d, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	got := roundTrip(t, d)
	if got.N() != d.N() || got.NumScore() != 2 || got.NumFair() != 2 {
		t.Fatalf("shape mismatch: %d/%d/%d", got.N(), got.NumScore(), got.NumFair())
	}
	if got.HasOutcomes() {
		t.Error("outcomes appeared from nowhere")
	}
	for i := 0; i < d.N(); i++ {
		for j := 0; j < 2; j++ {
			if got.Score(i, j) != d.Score(i, j) {
				t.Fatalf("score (%d,%d): %v != %v", i, j, got.Score(i, j), d.Score(i, j))
			}
			if got.Fair(i, j) != d.Fair(i, j) {
				t.Fatalf("fair (%d,%d): %v != %v", i, j, got.Fair(i, j), d.Fair(i, j))
			}
		}
	}
	if got.ScoreNames()[0] != "gpa" || got.FairNames()[1] != "eni" {
		t.Errorf("names lost: %v %v", got.ScoreNames(), got.FairNames())
	}
}

func TestRoundTripWithOutcomes(t *testing.T) {
	b := dataset.NewBuilder([]string{"decile"}, []string{"race"})
	b.AddWithOutcome([]float64{7}, []float64{1}, true)
	b.AddWithOutcome([]float64{3}, []float64{0}, false)
	d, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	got := roundTrip(t, d)
	if !got.HasOutcomes() || !got.Outcome(0) || got.Outcome(1) {
		t.Error("outcomes not preserved")
	}
}

func TestReadRejectsMalformedInputs(t *testing.T) {
	cases := []struct {
		name string
		csv  string
	}{
		{"unknown column", "score:a,banana\n1,2\n"},
		{"bad float", "score:a,fair:b\nxyz,0\n"},
		{"fair out of range", "score:a,fair:b\n1,2\n"},
		{"bad outcome", "score:a,fair:b,outcome\n1,0,maybe\n"},
		{"duplicate outcome", "score:a,outcome,outcome\n1,0,1\n"},
		{"no columns", "\n"},
		{"empty", ""},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := Read(strings.NewReader(tc.csv)); err == nil {
				t.Errorf("expected error for %q", tc.csv)
			}
		})
	}
}

func TestReadHeaderOnly(t *testing.T) {
	d, err := Read(strings.NewReader("score:a,fair:b\n"))
	if err != nil {
		t.Fatal(err)
	}
	if d.N() != 0 {
		t.Errorf("N = %d, want 0", d.N())
	}
}

func TestWriteEmptyDataset(t *testing.T) {
	d, err := dataset.New([]string{"s"}, []string{"f"}, [][]float64{{}}, [][]float64{{}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Write(&buf, d); err != nil {
		t.Fatal(err)
	}
	if got := strings.TrimSpace(buf.String()); got != "score:s,fair:f" {
		t.Errorf("header = %q", got)
	}
}
