package csvio

import (
	"bytes"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"strings"
	"testing"

	"fairrank/internal/dataset"
)

func roundTrip(t *testing.T, d *dataset.Dataset) *dataset.Dataset {
	t.Helper()
	var buf bytes.Buffer
	if err := Write(&buf, d); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	return got
}

func TestRoundTripWithoutOutcomes(t *testing.T) {
	b := dataset.NewBuilder([]string{"gpa", "test"}, []string{"li", "eni"})
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 200; i++ {
		li := float64(rng.Intn(2))
		b.Add([]float64{rng.Float64() * 100, rng.Float64() * 100}, []float64{li, rng.Float64()})
	}
	d, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	got := roundTrip(t, d)
	if got.N() != d.N() || got.NumScore() != 2 || got.NumFair() != 2 {
		t.Fatalf("shape mismatch: %d/%d/%d", got.N(), got.NumScore(), got.NumFair())
	}
	if got.HasOutcomes() {
		t.Error("outcomes appeared from nowhere")
	}
	for i := 0; i < d.N(); i++ {
		for j := 0; j < 2; j++ {
			if got.Score(i, j) != d.Score(i, j) {
				t.Fatalf("score (%d,%d): %v != %v", i, j, got.Score(i, j), d.Score(i, j))
			}
			if got.Fair(i, j) != d.Fair(i, j) {
				t.Fatalf("fair (%d,%d): %v != %v", i, j, got.Fair(i, j), d.Fair(i, j))
			}
		}
	}
	if got.ScoreNames()[0] != "gpa" || got.FairNames()[1] != "eni" {
		t.Errorf("names lost: %v %v", got.ScoreNames(), got.FairNames())
	}
}

func TestRoundTripWithOutcomes(t *testing.T) {
	b := dataset.NewBuilder([]string{"decile"}, []string{"race"})
	b.AddWithOutcome([]float64{7}, []float64{1}, true)
	b.AddWithOutcome([]float64{3}, []float64{0}, false)
	d, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	got := roundTrip(t, d)
	if !got.HasOutcomes() || !got.Outcome(0) || got.Outcome(1) {
		t.Error("outcomes not preserved")
	}
}

func TestReadRejectsMalformedInputs(t *testing.T) {
	cases := []struct {
		name string
		csv  string
		want string // substring the error must contain ("" = any error)
	}{
		{"unknown column", "score:a,banana\n1,2\n", "banana"},
		{"bad float", "score:a,fair:b\nxyz,0\n", "line 2"},
		{"fair out of range", "score:a,fair:b\n1,2\n", "outside [0,1]"},
		{"bad outcome", "score:a,fair:b,outcome\n1,0,maybe\n", "outcome"},
		{"duplicate outcome", "score:a,outcome,outcome\n1,0,1\n", "duplicate"},
		{"duplicate score column", "score:a,score:a,fair:b\n1,2,0\n", `duplicate column "score:a"`},
		{"duplicate fair column", "score:a,fair:b,fair:b\n1,0,1\n", `duplicate column "fair:b"`},
		{"no columns", "\n", ""},
		{"empty", "", "header"},
		{"short row", "score:a,fair:b\n1,0\n1\n", ""},
		{"long row", "score:a,fair:b\n1,0,9\n", ""},
		{"nan score", "score:a,fair:b\nNaN,0\n", `line 2 column "score:a": non-finite`},
		{"inf score", "score:a,fair:b\n+Inf,0\n", "non-finite"},
		{"negative inf score", "score:a,fair:b\n-Inf,0\n", "non-finite"},
		{"nan fair", "score:a,fair:b\n1,NaN\n", `line 2 column "fair:b": non-finite`},
		{"inf fair", "score:a,fair:b\n1,Inf\n", "non-finite"},
		{"nan fair later line", "score:a,fair:b\n1,0\n2,nan\n", "line 3"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Read(strings.NewReader(tc.csv))
			if err == nil {
				t.Fatalf("expected error for %q", tc.csv)
			}
			if tc.want != "" && !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

// TestRoundTripProperty is the Read(Write(d)) == d property over randomly
// shaped datasets: random column counts, random sizes, with and without
// outcomes, scores spanning negative/huge/tiny magnitudes.
func TestRoundTripProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		ns, nf := 1+rng.Intn(4), 1+rng.Intn(4)
		scoreNames := make([]string, ns)
		for j := range scoreNames {
			scoreNames[j] = fmt.Sprintf("s%d", j)
		}
		fairNames := make([]string, nf)
		for j := range fairNames {
			fairNames[j] = fmt.Sprintf("f%d", j)
		}
		withOutcome := rng.Intn(2) == 1
		b := dataset.NewBuilder(scoreNames, fairNames)
		n := rng.Intn(60)
		for i := 0; i < n; i++ {
			score := make([]float64, ns)
			for j := range score {
				score[j] = (rng.Float64() - 0.5) * math.Pow(10, float64(rng.Intn(13)-6))
			}
			fair := make([]float64, nf)
			for j := range fair {
				fair[j] = rng.Float64()
			}
			if withOutcome {
				b.AddWithOutcome(score, fair, rng.Intn(2) == 1)
			} else {
				b.Add(score, fair)
			}
		}
		d, err := b.Build()
		if err != nil {
			t.Fatal(err)
		}
		got := roundTrip(t, d)
		if got.N() != d.N() || got.NumScore() != ns || got.NumFair() != nf || got.HasOutcomes() != (withOutcome && n > 0) {
			t.Fatalf("trial %d: shape changed: (%d,%d,%d,%v) -> (%d,%d,%d,%v)", trial,
				d.N(), ns, nf, d.HasOutcomes(), got.N(), got.NumScore(), got.NumFair(), got.HasOutcomes())
		}
		for i := 0; i < d.N(); i++ {
			for j := 0; j < ns; j++ {
				if got.Score(i, j) != d.Score(i, j) {
					t.Fatalf("trial %d: score (%d,%d): %v != %v", trial, i, j, got.Score(i, j), d.Score(i, j))
				}
			}
			for j := 0; j < nf; j++ {
				if got.Fair(i, j) != d.Fair(i, j) {
					t.Fatalf("trial %d: fair (%d,%d): %v != %v", trial, i, j, got.Fair(i, j), d.Fair(i, j))
				}
			}
			if withOutcome && got.Outcome(i) != d.Outcome(i) {
				t.Fatalf("trial %d: outcome %d flipped", trial, i)
			}
		}
	}
}

func TestReadHeaderOnly(t *testing.T) {
	d, err := Read(strings.NewReader("score:a,fair:b\n"))
	if err != nil {
		t.Fatal(err)
	}
	if d.N() != 0 {
		t.Errorf("N = %d, want 0", d.N())
	}
}

func TestWriteEmptyDataset(t *testing.T) {
	d, err := dataset.New([]string{"s"}, []string{"f"}, [][]float64{{}}, [][]float64{{}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Write(&buf, d); err != nil {
		t.Fatal(err)
	}
	if got := strings.TrimSpace(buf.String()); got != "score:s,fair:f" {
		t.Errorf("header = %q", got)
	}
}

// TestErrorPositionsArePhysicalLines: the structured *Error must name
// the physical input line (what an editor shows), surviving blank lines
// and quoted newlines — not the record ordinal encoding/csv hands out.
func TestErrorPositionsArePhysicalLines(t *testing.T) {
	cases := []struct {
		name   string
		csv    string
		line   int
		column string
	}{
		{"plain", "score:a,fair:b\nxyz,0\n", 2, "score:a"},
		{"blank lines before the bad row", "score:a,fair:b\n\n\nxyz,0\n", 4, "score:a"},
		{"blank line before the header", "\nscore:a,banana\n1,2\n", 2, "banana"},
		{"duplicate column after blank line", "\nscore:a,score:a\n1,2\n", 2, "score:a"},
		{"quoted field after blank line", "score:a,fair:b\n\n\"1\n\",0\n", 3, "score:a"},
		{"parse error names its own line", "score:a,fair:b\n1,0\n\n\n\"x\n", 5, ""},
		{"out of range with blanks", "score:a,fair:b\n\n1,2\n", 3, "fair:b"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Read(strings.NewReader(tc.csv))
			if err == nil {
				t.Fatalf("expected error for %q", tc.csv)
			}
			var pe *Error
			if !errors.As(err, &pe) {
				t.Fatalf("error is not a *csvio.Error: %T %v", err, err)
			}
			if pe.Line != tc.line || pe.Column != tc.column {
				t.Errorf("position = line %d column %q, want line %d column %q (err: %v)",
					pe.Line, pe.Column, tc.line, tc.column, err)
			}
		})
	}
}
