package csvio

import (
	"encoding/csv"
	"errors"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"

	"fairrank/internal/dataset"
)

const (
	scorePrefix   = "score:"
	fairPrefix    = "fair:"
	outcomeColumn = "outcome"
)

// Error locates a rejected input: the 1-based physical line of the
// input the problem was detected on (blank lines and quoted newlines
// count, matching what an editor shows) and, when the rejection is tied
// to one column, that column's header name. Every error Read returns is
// an *Error, so callers — and the FuzzCSVRead harness — can rely on
// position information being present rather than parsing it back out of
// the message.
type Error struct {
	Line   int    // 1-based physical input line
	Column string // offending column header; "" when the whole line or file is at fault
	msg    string // preformatted message, including the position
	err    error  // underlying cause, when any (e.g. a csv.ParseError)
}

// Error implements the error interface.
func (e *Error) Error() string { return e.msg }

// Unwrap exposes the underlying cause for errors.Is/As.
func (e *Error) Unwrap() error { return e.err }

// errAt builds a positioned Error. wrapped is the underlying cause kept
// for Unwrap (may be nil); the message must already carry whatever
// position detail the caller wants shown.
func errAt(line int, column string, wrapped error, format string, args ...any) *Error {
	return &Error{Line: line, Column: column, err: wrapped, msg: fmt.Sprintf(format, args...)}
}

// Write serializes d as CSV.
func Write(w io.Writer, d *dataset.Dataset) error {
	cw := csv.NewWriter(w)
	header := make([]string, 0, d.NumScore()+d.NumFair()+1)
	for _, n := range d.ScoreNames() {
		header = append(header, scorePrefix+n)
	}
	for _, n := range d.FairNames() {
		header = append(header, fairPrefix+n)
	}
	if d.HasOutcomes() {
		header = append(header, outcomeColumn)
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	row := make([]string, len(header))
	for i := 0; i < d.N(); i++ {
		c := 0
		for j := 0; j < d.NumScore(); j++ {
			row[c] = strconv.FormatFloat(d.Score(i, j), 'g', -1, 64)
			c++
		}
		for j := 0; j < d.NumFair(); j++ {
			row[c] = strconv.FormatFloat(d.Fair(i, j), 'g', -1, 64)
			c++
		}
		if d.HasOutcomes() {
			if d.Outcome(i) {
				row[c] = "1"
			} else {
				row[c] = "0"
			}
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// Read parses a CSV produced by Write (or any CSV following the same
// header convention) into a dataset.
func Read(r io.Reader) (*dataset.Dataset, error) {
	cr := csv.NewReader(r)
	cr.ReuseRecord = true
	rec, err := cr.Read()
	if err != nil {
		return nil, errAt(physLine(err, 1), "", err, "csvio: reading header: %v", err)
	}
	// FieldPos reports physical input positions, so error lines survive
	// blank lines and quoted newlines; the header need not sit on line 1.
	headerLine, _ := cr.FieldPos(0)
	// ReuseRecord means every later Read overwrites this slice; copy the
	// header so error messages can still name the offending column.
	header := make([]string, len(rec))
	copy(header, rec)
	var scoreCols, fairCols []int
	var scoreNames, fairNames []string
	outcomeCol := -1
	seen := make(map[string]bool, len(header))
	for c, h := range header {
		switch {
		case strings.HasPrefix(h, scorePrefix), strings.HasPrefix(h, fairPrefix):
			if seen[h] {
				return nil, errAt(headerLine, h, nil, "csvio: duplicate column %q", h)
			}
			seen[h] = true
			if strings.HasPrefix(h, scorePrefix) {
				scoreCols = append(scoreCols, c)
				scoreNames = append(scoreNames, strings.TrimPrefix(h, scorePrefix))
			} else {
				fairCols = append(fairCols, c)
				fairNames = append(fairNames, strings.TrimPrefix(h, fairPrefix))
			}
		case h == outcomeColumn:
			if outcomeCol != -1 {
				return nil, errAt(headerLine, outcomeColumn, nil, "csvio: duplicate outcome column")
			}
			outcomeCol = c
		default:
			return nil, errAt(headerLine, h, nil, "csvio: column %q lacks a score:/fair:/outcome prefix", h)
		}
	}
	if len(scoreCols) == 0 && len(fairCols) == 0 {
		return nil, errAt(headerLine, "", nil, "csvio: no recognized columns in header")
	}
	b := dataset.NewBuilder(scoreNames, fairNames)
	scoreRow := make([]float64, len(scoreCols))
	fairRow := make([]float64, len(fairCols))
	line := headerLine
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			l := physLine(err, line+1)
			return nil, errAt(l, "", err, "csvio: reading line %d: %v", l, err)
		}
		line, _ = cr.FieldPos(0)
		for j, c := range scoreCols {
			v, err := parseFinite(rec[c], line, header[c])
			if err != nil {
				return nil, err
			}
			scoreRow[j] = v
		}
		for j, c := range fairCols {
			v, err := parseFinite(rec[c], line, header[c])
			if err != nil {
				return nil, err
			}
			if v < 0 || v > 1 {
				return nil, errAt(line, header[c], nil, "csvio: line %d column %q: value %v outside [0,1]", line, header[c], v)
			}
			fairRow[j] = v
		}
		if outcomeCol >= 0 {
			switch rec[outcomeCol] {
			case "1", "true":
				b.AddWithOutcome(scoreRow, fairRow, true)
			case "0", "false":
				b.AddWithOutcome(scoreRow, fairRow, false)
			default:
				return nil, errAt(line, outcomeColumn, nil, "csvio: line %d: outcome %q not 0/1", line, rec[outcomeCol])
			}
		} else {
			b.Add(scoreRow, fairRow)
		}
	}
	d, err := b.Build()
	if err != nil {
		// Builder rejections cannot name an input position more precise
		// than "somewhere in the rows we fed it"; pin them to the last
		// line read so the error still locates the input region.
		return nil, errAt(line, "", err, "csvio: line %d: %v", line, err)
	}
	return d, nil
}

// physLine extracts the physical input line from a csv.ParseError;
// errors that carry no position (a failing underlying reader, a bare
// io.ErrUnexpectedEOF) fall back to the caller's best estimate.
func physLine(err error, fallback int) int {
	var pe *csv.ParseError
	if errors.As(err, &pe) && pe.Line > 0 {
		return pe.Line
	}
	return fallback
}

// parseFinite parses a float cell, rejecting NaN and ±Inf: strconv accepts
// them, but a single non-finite score or fairness value silently poisons
// every centroid, disparity, and ranking computed downstream.
func parseFinite(cell string, line int, column string) (float64, error) {
	v, err := strconv.ParseFloat(cell, 64)
	if err != nil {
		return 0, errAt(line, column, err, "csvio: line %d column %q: %v", line, column, err)
	}
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return 0, errAt(line, column, nil, "csvio: line %d column %q: non-finite value %q", line, column, cell)
	}
	return v, nil
}
