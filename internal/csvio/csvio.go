package csvio

import (
	"encoding/csv"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"

	"fairrank/internal/dataset"
)

const (
	scorePrefix   = "score:"
	fairPrefix    = "fair:"
	outcomeColumn = "outcome"
)

// Write serializes d as CSV.
func Write(w io.Writer, d *dataset.Dataset) error {
	cw := csv.NewWriter(w)
	header := make([]string, 0, d.NumScore()+d.NumFair()+1)
	for _, n := range d.ScoreNames() {
		header = append(header, scorePrefix+n)
	}
	for _, n := range d.FairNames() {
		header = append(header, fairPrefix+n)
	}
	if d.HasOutcomes() {
		header = append(header, outcomeColumn)
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	row := make([]string, len(header))
	for i := 0; i < d.N(); i++ {
		c := 0
		for j := 0; j < d.NumScore(); j++ {
			row[c] = strconv.FormatFloat(d.Score(i, j), 'g', -1, 64)
			c++
		}
		for j := 0; j < d.NumFair(); j++ {
			row[c] = strconv.FormatFloat(d.Fair(i, j), 'g', -1, 64)
			c++
		}
		if d.HasOutcomes() {
			if d.Outcome(i) {
				row[c] = "1"
			} else {
				row[c] = "0"
			}
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// Read parses a CSV produced by Write (or any CSV following the same
// header convention) into a dataset.
func Read(r io.Reader) (*dataset.Dataset, error) {
	cr := csv.NewReader(r)
	cr.ReuseRecord = true
	rec, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("csvio: reading header: %w", err)
	}
	// ReuseRecord means every later Read overwrites this slice; copy the
	// header so error messages can still name the offending column.
	header := make([]string, len(rec))
	copy(header, rec)
	var scoreCols, fairCols []int
	var scoreNames, fairNames []string
	outcomeCol := -1
	seen := make(map[string]bool, len(header))
	for c, h := range header {
		switch {
		case strings.HasPrefix(h, scorePrefix), strings.HasPrefix(h, fairPrefix):
			if seen[h] {
				return nil, fmt.Errorf("csvio: duplicate column %q", h)
			}
			seen[h] = true
			if strings.HasPrefix(h, scorePrefix) {
				scoreCols = append(scoreCols, c)
				scoreNames = append(scoreNames, strings.TrimPrefix(h, scorePrefix))
			} else {
				fairCols = append(fairCols, c)
				fairNames = append(fairNames, strings.TrimPrefix(h, fairPrefix))
			}
		case h == outcomeColumn:
			if outcomeCol != -1 {
				return nil, fmt.Errorf("csvio: duplicate outcome column")
			}
			outcomeCol = c
		default:
			return nil, fmt.Errorf("csvio: column %q lacks a score:/fair:/outcome prefix", h)
		}
	}
	if len(scoreCols) == 0 && len(fairCols) == 0 {
		return nil, fmt.Errorf("csvio: no recognized columns in header")
	}
	b := dataset.NewBuilder(scoreNames, fairNames)
	scoreRow := make([]float64, len(scoreCols))
	fairRow := make([]float64, len(fairCols))
	line := 1
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("csvio: reading line %d: %w", line+1, err)
		}
		line++
		for j, c := range scoreCols {
			v, err := parseFinite(rec[c], line, header[c])
			if err != nil {
				return nil, err
			}
			scoreRow[j] = v
		}
		for j, c := range fairCols {
			v, err := parseFinite(rec[c], line, header[c])
			if err != nil {
				return nil, err
			}
			if v < 0 || v > 1 {
				return nil, fmt.Errorf("csvio: line %d column %q: value %v outside [0,1]", line, header[c], v)
			}
			fairRow[j] = v
		}
		if outcomeCol >= 0 {
			switch rec[outcomeCol] {
			case "1", "true":
				b.AddWithOutcome(scoreRow, fairRow, true)
			case "0", "false":
				b.AddWithOutcome(scoreRow, fairRow, false)
			default:
				return nil, fmt.Errorf("csvio: line %d: outcome %q not 0/1", line, rec[outcomeCol])
			}
		} else {
			b.Add(scoreRow, fairRow)
		}
	}
	return b.Build()
}

// parseFinite parses a float cell, rejecting NaN and ±Inf: strconv accepts
// them, but a single non-finite score or fairness value silently poisons
// every centroid, disparity, and ranking computed downstream.
func parseFinite(cell string, line int, column string) (float64, error) {
	v, err := strconv.ParseFloat(cell, 64)
	if err != nil {
		return 0, fmt.Errorf("csvio: line %d column %q: %w", line, column, err)
	}
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return 0, fmt.Errorf("csvio: line %d column %q: non-finite value %q", line, column, cell)
	}
	return v, nil
}
