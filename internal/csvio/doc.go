// Package csvio serializes datasets to and from CSV so that the CLI tools
// (cmd/datagen, cmd/dca) can interoperate with external pipelines.
//
// The column schema is self-describing: score attributes are prefixed
// "score:", fairness attributes "fair:", and the optional ground-truth
// outcome column is named "outcome" with values 0/1.
package csvio
