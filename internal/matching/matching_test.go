package matching

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// classic 3x3 instance with known student-optimal outcome.
func TestDeferredAcceptanceTextbookInstance(t *testing.T) {
	// Students 0,1,2; schools A=0, B=1, C=2, capacity 1 each.
	// School scores: school s ranks students by Scores[s].
	prefs := [][]int{
		{0, 1, 2},
		{0, 2, 1},
		{1, 0, 2},
	}
	schools := []School{
		{Capacity: 1, Scores: []float64{3, 2, 1}}, // A prefers s0 > s1 > s2
		{Capacity: 1, Scores: []float64{1, 2, 3}}, // B prefers s2 > s1 > s0
		{Capacity: 1, Scores: []float64{2, 3, 1}}, // C prefers s1 > s0 > s2
	}
	m, err := DeferredAcceptance(prefs, schools, nil)
	if err != nil {
		t.Fatal(err)
	}
	// s0 proposes A (held), s1 proposes A (rejected: s0 better), s2
	// proposes B (held). s1 then proposes C (held). Stable.
	want := []int{0, 2, 1}
	for i, s := range want {
		if m.Assigned[i] != s {
			t.Fatalf("assignment = %v, want %v", m.Assigned, want)
		}
	}
	if st, sc := BlockingPair(prefs, schools, nil, m); st != -1 {
		t.Errorf("blocking pair (%d, %d)", st, sc)
	}
}

func TestDeferredAcceptanceUnmatchedWhenListsExhausted(t *testing.T) {
	prefs := [][]int{{0}, {0}}
	schools := []School{{Capacity: 1, Scores: []float64{1, 2}}}
	m, err := DeferredAcceptance(prefs, schools, nil)
	if err != nil {
		t.Fatal(err)
	}
	if m.Assigned[1] != 0 || m.Assigned[0] != -1 {
		t.Errorf("assignment = %v, want [-1 0]", m.Assigned)
	}
}

func TestDeferredAcceptanceCapacity(t *testing.T) {
	// One school, capacity 2, three students.
	prefs := [][]int{{0}, {0}, {0}}
	schools := []School{{Capacity: 2, Scores: []float64{1, 3, 2}}}
	m, err := DeferredAcceptance(prefs, schools, nil)
	if err != nil {
		t.Fatal(err)
	}
	if m.Assigned[0] != -1 || m.Assigned[1] != 0 || m.Assigned[2] != 0 {
		t.Errorf("assignment = %v, want [-1 0 0]", m.Assigned)
	}
}

func TestReservedSeatsAdmitDisadvantaged(t *testing.T) {
	// Capacity 2, 1 reserved. Students by score: 0 (9), 1 (8), 2 (7, only
	// disadvantaged). Without reserve: {0, 1}. With reserve: {2} takes the
	// reserved seat, {0} the open one.
	prefs := [][]int{{0}, {0}, {0}}
	disadvantaged := []bool{false, false, true}
	open := []School{{Capacity: 2, Reserved: 0, Scores: []float64{9, 8, 7}}}
	m, err := DeferredAcceptance(prefs, open, disadvantaged)
	if err != nil {
		t.Fatal(err)
	}
	if m.Assigned[2] != -1 {
		t.Fatalf("without reserve, student 2 should be rejected: %v", m.Assigned)
	}
	reserved := []School{{Capacity: 2, Reserved: 1, Scores: []float64{9, 8, 7}}}
	m, err = DeferredAcceptance(prefs, reserved, disadvantaged)
	if err != nil {
		t.Fatal(err)
	}
	if m.Assigned[2] != 0 || m.Assigned[0] != 0 || m.Assigned[1] != -1 {
		t.Errorf("with reserve, assignment = %v, want [0 -1 0]", m.Assigned)
	}
	if st, sc := BlockingPair(prefs, reserved, disadvantaged, m); st != -1 {
		t.Errorf("blocking pair (%d, %d)", st, sc)
	}
}

func TestReservedSeatsRevertWhenUnfilled(t *testing.T) {
	// Reserve 2 of 2 seats but no disadvantaged applicants: both seats
	// revert.
	prefs := [][]int{{0}, {0}}
	disadvantaged := []bool{false, false}
	schools := []School{{Capacity: 2, Reserved: 2, Scores: []float64{2, 1}}}
	m, err := DeferredAcceptance(prefs, schools, disadvantaged)
	if err != nil {
		t.Fatal(err)
	}
	if m.Assigned[0] != 0 || m.Assigned[1] != 0 {
		t.Errorf("assignment = %v, want both admitted", m.Assigned)
	}
}

func TestDeferredAcceptanceValidation(t *testing.T) {
	if _, err := DeferredAcceptance([][]int{{0}}, []School{{Capacity: -1, Scores: []float64{1}}}, nil); err == nil {
		t.Error("negative capacity: expected error")
	}
	if _, err := DeferredAcceptance([][]int{{0}}, []School{{Capacity: 1, Reserved: 2, Scores: []float64{1}}}, nil); err == nil {
		t.Error("reserved > capacity: expected error")
	}
	if _, err := DeferredAcceptance([][]int{{0}}, []School{{Capacity: 1, Scores: []float64{1, 2}}}, nil); err == nil {
		t.Error("score length mismatch: expected error")
	}
	if _, err := DeferredAcceptance([][]int{{5}}, []School{{Capacity: 1, Scores: []float64{1}}}, nil); err == nil {
		t.Error("unknown school in prefs: expected error")
	}
	if _, err := DeferredAcceptance([][]int{{0}}, []School{{Capacity: 1, Reserved: 1, Scores: []float64{1}}}, nil); err == nil {
		t.Error("reserve without disadvantaged flags: expected error")
	}
	if _, err := DeferredAcceptance([][]int{{0}}, []School{{Capacity: 1, Scores: []float64{1}}}, []bool{true, false}); err == nil {
		t.Error("flag length mismatch: expected error")
	}
}

// Property: random instances always produce stable matches (no blocking
// pairs under the schools' choice functions) and never overfill capacity.
func TestRandomInstancesAreStable(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nStudents := 5 + rng.Intn(40)
		nSchools := 1 + rng.Intn(5)
		schools := make([]School, nSchools)
		disadvantaged := make([]bool, nStudents)
		for i := range disadvantaged {
			disadvantaged[i] = rng.Float64() < 0.4
		}
		for s := range schools {
			scores := make([]float64, nStudents)
			for i := range scores {
				scores[i] = rng.Float64()
			}
			capn := 1 + rng.Intn(5)
			schools[s] = School{
				Capacity: capn,
				Reserved: rng.Intn(capn + 1),
				Scores:   scores,
			}
		}
		prefs := make([][]int, nStudents)
		for i := range prefs {
			p := rng.Perm(nSchools)
			prefs[i] = p[:1+rng.Intn(nSchools)]
		}
		m, err := DeferredAcceptance(prefs, schools, disadvantaged)
		if err != nil {
			return false
		}
		fill := make([]int, nSchools)
		for i, s := range m.Assigned {
			if s >= 0 {
				fill[s]++
				// Assigned school must be on the student's list.
				onList := false
				for _, ps := range prefs[i] {
					if ps == s {
						onList = true
						break
					}
				}
				if !onList {
					return false
				}
			}
		}
		for s, c := range fill {
			if c > schools[s].Capacity {
				return false
			}
		}
		st, _ := BlockingPair(prefs, schools, disadvantaged, m)
		return st == -1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
