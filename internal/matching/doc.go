// Package matching implements the deferred acceptance (DA) school matching
// substrate of the paper's motivating scenario (Section III-A): NYC
// assigns students to high schools with a student-proposing DA algorithm
// over the schools' admission rubrics. The package supports set-aside
// seats (the quota mechanism DCA is compared against) and bonus-adjusted
// rubrics (the DCA mechanism), and provides a stability checker used by
// the property tests.
//
// Because DA decides how far down its list each school admits, the
// admission cutoff k is unknown in advance — exactly the situation the
// paper's logarithmically discounted DCA mode (Section IV-E) targets.
package matching
