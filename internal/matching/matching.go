package matching

import (
	"fmt"
	"sort"
)

// School is one side of the match.
type School struct {
	// Capacity is the number of seats.
	Capacity int
	// Reserved is the number of seats set aside for disadvantaged
	// students (0 disables). Reserved seats revert to open competition
	// when unfilled (a soft quota).
	Reserved int
	// Scores is the school's rubric score for every student (higher is
	// better); bonus-adjusted rubrics simply pass adjusted scores.
	Scores []float64
}

// Match is the result of the deferred acceptance run.
type Match struct {
	// Assigned maps student -> school index, or -1 when unmatched.
	Assigned []int
	// Rounds is the number of proposal rounds executed.
	Rounds int
}

// DeferredAcceptance runs student-proposing DA. prefs[i] is student i's
// ordered preference list over school indices (most preferred first; may
// be partial). disadvantaged flags the students eligible for reserved
// seats; it may be nil when no school reserves seats.
func DeferredAcceptance(prefs [][]int, schools []School, disadvantaged []bool) (Match, error) {
	n := len(prefs)
	for si, s := range schools {
		if s.Capacity < 0 || s.Reserved < 0 || s.Reserved > s.Capacity {
			return Match{}, fmt.Errorf("matching: school %d capacity %d reserved %d", si, s.Capacity, s.Reserved)
		}
		if len(s.Scores) != n {
			return Match{}, fmt.Errorf("matching: school %d has %d scores for %d students", si, len(s.Scores), n)
		}
		if s.Reserved > 0 && disadvantaged == nil {
			return Match{}, fmt.Errorf("matching: school %d reserves seats but no disadvantaged flags given", si)
		}
	}
	if disadvantaged != nil && len(disadvantaged) != n {
		return Match{}, fmt.Errorf("matching: %d disadvantaged flags for %d students", len(disadvantaged), n)
	}
	for i, p := range prefs {
		for _, s := range p {
			if s < 0 || s >= len(schools) {
				return Match{}, fmt.Errorf("matching: student %d ranks unknown school %d", i, s)
			}
		}
	}

	next := make([]int, n)     // next preference index each student will propose to
	assigned := make([]int, n) // current tentative school, -1 if none
	for i := range assigned {
		assigned[i] = -1
	}
	holds := make([][]int, len(schools)) // students tentatively held per school

	free := make([]int, 0, n)
	for i := range prefs {
		free = append(free, i)
	}
	rounds := 0
	for len(free) > 0 {
		rounds++
		// Batch proposals: every free student proposes to their next choice.
		proposals := make(map[int][]int)
		var exhausted []int
		for _, i := range free {
			if next[i] >= len(prefs[i]) {
				exhausted = append(exhausted, i)
				continue
			}
			s := prefs[i][next[i]]
			next[i]++
			proposals[s] = append(proposals[s], i)
		}
		_ = exhausted // students with exhausted lists stay unmatched
		free = free[:0]
		for s, newApplicants := range proposals {
			pool := append(append([]int(nil), holds[s]...), newApplicants...)
			kept := schools[s].choose(pool, disadvantaged)
			keptSet := make(map[int]bool, len(kept))
			for _, i := range kept {
				keptSet[i] = true
				assigned[i] = s
			}
			for _, i := range pool {
				if !keptSet[i] {
					assigned[i] = -1
					free = append(free, i)
				}
			}
			holds[s] = kept
		}
		if rounds > n*len(schools)+1 {
			return Match{}, fmt.Errorf("matching: no convergence after %d rounds", rounds)
		}
	}
	return Match{Assigned: assigned, Rounds: rounds}, nil
}

// choose is the school's choice function: from the applicant pool, fill
// reserved seats with the highest-scoring disadvantaged applicants, then
// fill the remaining capacity by score from everyone left; unfilled
// reserved seats revert to open seats.
func (s School) choose(pool []int, disadvantaged []bool) []int {
	if len(pool) <= s.Capacity {
		return append([]int(nil), pool...)
	}
	byScore := append([]int(nil), pool...)
	sort.Slice(byScore, func(a, b int) bool {
		if s.Scores[byScore[a]] != s.Scores[byScore[b]] {
			return s.Scores[byScore[a]] > s.Scores[byScore[b]]
		}
		return byScore[a] < byScore[b]
	})
	kept := make([]int, 0, s.Capacity)
	taken := make(map[int]bool, s.Capacity)
	if s.Reserved > 0 {
		cnt := 0
		for _, i := range byScore {
			if cnt >= s.Reserved {
				break
			}
			if disadvantaged[i] {
				kept = append(kept, i)
				taken[i] = true
				cnt++
			}
		}
	}
	for _, i := range byScore {
		if len(kept) >= s.Capacity {
			break
		}
		if !taken[i] {
			kept = append(kept, i)
			taken[i] = true
		}
	}
	return kept
}

// BlockingPair reports a student-school pair that violates stability with
// respect to the schools' choice functions: student i strictly prefers
// school s to their assignment, and s would keep i if i were added to its
// current hold set. It returns (-1, -1) when the match is stable.
func BlockingPair(prefs [][]int, schools []School, disadvantaged []bool, m Match) (student, school int) {
	holds := make([][]int, len(schools))
	for i, s := range m.Assigned {
		if s >= 0 {
			holds[s] = append(holds[s], i)
		}
	}
	for i, p := range prefs {
		for _, s := range p {
			if m.Assigned[i] == s {
				break // i got this school or better
			}
			// Would s keep i?
			pool := append(append([]int(nil), holds[s]...), i)
			kept := schools[s].choose(pool, disadvantaged)
			for _, k := range kept {
				if k == i {
					return i, s
				}
			}
		}
	}
	return -1, -1
}
