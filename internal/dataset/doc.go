// Package dataset provides the columnar object model shared by every other
// package in the repository.
//
// A Dataset holds a fixed population of objects (students, defendants, ...).
// Each object has a row of score attributes (the inputs of the ranking
// function, e.g. GPA and test scores), a row of fairness attributes (the
// dimensions on which disparity is measured, e.g. low-income status), and an
// optional boolean ground-truth outcome (used by equalized-odds style
// metrics such as false positive rates).
//
// Score attributes are unconstrained floats. Fairness attributes must lie in
// [0, 1]: binary membership is encoded as {0, 1} and continuous attributes
// (such as the Economic Need Index) are normalized to [0, 1], matching
// Definition 3 of the paper where every disparity dimension is bounded in
// [-1, 1].
//
// Storage is column major: centroid computations, which dominate the inner
// loop of the Disparity Compensation Algorithm, scan one contiguous slice
// per fairness dimension.
package dataset
