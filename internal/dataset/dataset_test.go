package dataset

import (
	"math"
	"reflect"
	"testing"
	"testing/quick"
)

func build(t testing.TB) *Dataset {
	t.Helper()
	b := NewBuilder([]string{"gpa", "test"}, []string{"li", "eni"})
	b.Add([]float64{80, 70}, []float64{1, 0.8})
	b.Add([]float64{90, 95}, []float64{0, 0.2})
	b.Add([]float64{60, 65}, []float64{1, 0.6})
	d, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestBuilderBasics(t *testing.T) {
	d := build(t)
	if d.N() != 3 || d.NumScore() != 2 || d.NumFair() != 2 {
		t.Fatalf("shape = (%d, %d, %d)", d.N(), d.NumScore(), d.NumFair())
	}
	if d.HasOutcomes() {
		t.Error("unexpected outcomes")
	}
	if d.Score(1, 0) != 90 || d.Fair(2, 1) != 0.6 {
		t.Error("wrong cell values")
	}
	if d.ScoreIndex("test") != 1 || d.ScoreIndex("nope") != -1 {
		t.Error("ScoreIndex wrong")
	}
	if d.FairIndex("eni") != 1 || d.FairIndex("nope") != -1 {
		t.Error("FairIndex wrong")
	}
}

func TestBuilderOutcomes(t *testing.T) {
	b := NewBuilder([]string{"s"}, []string{"f"})
	b.AddWithOutcome([]float64{1}, []float64{0}, true)
	b.AddWithOutcome([]float64{2}, []float64{1}, false)
	d, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if !d.HasOutcomes() || !d.Outcome(0) || d.Outcome(1) {
		t.Error("outcomes not preserved")
	}
}

func TestBuilderMixedOutcomeCallsFail(t *testing.T) {
	b := NewBuilder([]string{"s"}, []string{"f"})
	b.Add([]float64{1}, []float64{0})
	b.AddWithOutcome([]float64{2}, []float64{1}, true)
	if _, err := b.Build(); err == nil {
		t.Error("mixed Add/AddWithOutcome should fail")
	}
}

func TestBuilderArityErrors(t *testing.T) {
	b := NewBuilder([]string{"s"}, []string{"f"})
	b.Add([]float64{1, 2}, []float64{0})
	if _, err := b.Build(); err == nil {
		t.Error("wrong score arity should fail")
	}
	b2 := NewBuilder([]string{"s"}, []string{"f"})
	b2.Add([]float64{1}, []float64{0, 1})
	if _, err := b2.Build(); err == nil {
		t.Error("wrong fairness arity should fail")
	}
}

func TestValidationRejectsBadValues(t *testing.T) {
	if _, err := New([]string{"s"}, []string{"f"}, [][]float64{{1}}, [][]float64{{1.5}}, nil); err == nil {
		t.Error("fairness value > 1 should fail")
	}
	if _, err := New([]string{"s"}, []string{"f"}, [][]float64{{1}}, [][]float64{{-0.1}}, nil); err == nil {
		t.Error("fairness value < 0 should fail")
	}
	if _, err := New([]string{"s"}, []string{"f"}, [][]float64{{math.NaN()}}, [][]float64{{0}}, nil); err == nil {
		t.Error("NaN score should fail")
	}
	if _, err := New([]string{"s"}, []string{"f"}, [][]float64{{math.Inf(1)}}, [][]float64{{0}}, nil); err == nil {
		t.Error("Inf score should fail")
	}
	if _, err := New([]string{"s"}, []string{"f"}, [][]float64{{1, 2}}, [][]float64{{0}}, nil); err == nil {
		t.Error("ragged columns should fail")
	}
	if _, err := New([]string{"s"}, []string{"f"}, [][]float64{{1}}, [][]float64{{0}}, []bool{true, false}); err == nil {
		t.Error("outcome length mismatch should fail")
	}
	if _, err := New([]string{"a", "b"}, nil, [][]float64{{1}}, nil, nil); err == nil {
		t.Error("column/name count mismatch should fail")
	}
}

func TestEmptyDataset(t *testing.T) {
	d, err := New(nil, nil, nil, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if d.N() != 0 {
		t.Errorf("N = %d", d.N())
	}
	if c := d.FairCentroid(); len(c) != 0 {
		t.Errorf("centroid = %v", c)
	}
}

func TestFairCentroid(t *testing.T) {
	d := build(t)
	got := d.FairCentroid()
	want := []float64{2.0 / 3, (0.8 + 0.2 + 0.6) / 3}
	for j := range want {
		if math.Abs(got[j]-want[j]) > 1e-12 {
			t.Fatalf("centroid = %v, want %v", got, want)
		}
	}
	sel := d.FairCentroidOf([]int{1})
	if sel[0] != 0 || sel[1] != 0.2 {
		t.Errorf("centroid of {1} = %v", sel)
	}
	if z := d.FairCentroidOf(nil); z[0] != 0 || z[1] != 0 {
		t.Errorf("centroid of empty = %v", z)
	}
}

func TestFairDotAndRow(t *testing.T) {
	d := build(t)
	if got := d.FairDot(0, []float64{2, 10}); got != 2+8 {
		t.Errorf("FairDot = %v, want 10", got)
	}
	row := d.FairRow(2, make([]float64, 2))
	if row[0] != 1 || row[1] != 0.6 {
		t.Errorf("FairRow = %v", row)
	}
}

func TestSubset(t *testing.T) {
	d := build(t)
	s := d.Subset([]int{2, 0})
	if s.N() != 2 {
		t.Fatalf("subset N = %d", s.N())
	}
	if s.Score(0, 0) != 60 || s.Score(1, 0) != 80 {
		t.Error("subset rows in wrong order")
	}
	if s.Fair(0, 1) != 0.6 {
		t.Error("subset fairness wrong")
	}
}

func TestGroupSize(t *testing.T) {
	d := build(t)
	if got := d.GroupSize(0); got != 2 {
		t.Errorf("GroupSize(li) = %d, want 2", got)
	}
}

func TestWithFairColumnsView(t *testing.T) {
	d := build(t)
	v := d.WithFairColumns([]int{1})
	if v.NumFair() != 1 || v.FairNames()[0] != "eni" {
		t.Fatalf("view names = %v", v.FairNames())
	}
	if v.N() != d.N() || v.NumScore() != d.NumScore() {
		t.Error("view must share shape with parent")
	}
	if v.Fair(0, 0) != d.Fair(0, 1) {
		t.Error("view column mismatch")
	}
	// Reordering works too.
	v2 := d.WithFairColumns([]int{1, 0})
	if v2.FairNames()[0] != "eni" || v2.FairNames()[1] != "li" {
		t.Errorf("reordered view names = %v", v2.FairNames())
	}
}

func TestOutcomePanicsWithoutOutcomes(t *testing.T) {
	d := build(t)
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	d.Outcome(0)
}

// Property: the centroid of any index multiset stays inside [0,1] per
// dimension, and the centroid over all indices equals FairCentroid.
func TestCentroidProperties(t *testing.T) {
	d := build(t)
	all := []int{0, 1, 2}
	if !reflect.DeepEqual(d.FairCentroidOf(all), d.FairCentroid()) {
		t.Error("FairCentroidOf(all) != FairCentroid()")
	}
	f := func(raw []uint8) bool {
		if len(raw) == 0 {
			return true
		}
		idx := make([]int, len(raw))
		for i, r := range raw {
			idx[i] = int(r) % 3
		}
		c := d.FairCentroidOf(idx)
		for _, v := range c {
			if v < 0 || v > 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
