package dataset

import (
	"errors"
	"fmt"
	"math"
)

// Dataset is an immutable columnar collection of objects. The zero value is
// an empty dataset; use a Builder or New to construct a populated one.
type Dataset struct {
	n          int
	scoreNames []string
	fairNames  []string
	score      [][]float64 // score[j][i]: score attribute j of object i
	fair       [][]float64 // fair[j][i]: fairness attribute j of object i
	outcome    []bool      // optional; nil when absent
	fairBinary []bool      // fairBinary[j]: every value of fair[j] is exactly 0 or 1
}

// ErrNoOutcomes is returned by Outcome when the dataset was built without
// ground-truth outcomes.
var ErrNoOutcomes = errors.New("dataset: no outcomes recorded")

// New assembles a dataset from column-major data. The score and fair slices
// are retained (not copied); callers must not mutate them afterwards. The
// outcome slice may be nil.
func New(scoreNames, fairNames []string, score, fair [][]float64, outcome []bool) (*Dataset, error) {
	if len(score) != len(scoreNames) {
		return nil, fmt.Errorf("dataset: %d score columns for %d names", len(score), len(scoreNames))
	}
	if len(fair) != len(fairNames) {
		return nil, fmt.Errorf("dataset: %d fairness columns for %d names", len(fair), len(fairNames))
	}
	n := -1
	for j, col := range score {
		if n == -1 {
			n = len(col)
		}
		if len(col) != n {
			return nil, fmt.Errorf("dataset: score column %q has %d rows, want %d", scoreNames[j], len(col), n)
		}
	}
	fairBinary := make([]bool, len(fair))
	for j, col := range fair {
		if n == -1 {
			n = len(col)
		}
		if len(col) != n {
			return nil, fmt.Errorf("dataset: fairness column %q has %d rows, want %d", fairNames[j], len(col), n)
		}
		fairBinary[j] = true
		for i, v := range col {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return nil, fmt.Errorf("dataset: fairness column %q row %d: non-finite value %v", fairNames[j], i, v)
			}
			if v < 0 || v > 1 {
				return nil, fmt.Errorf("dataset: fairness column %q row %d: value %v outside [0,1]", fairNames[j], i, v)
			}
			if v != 0 && v != 1 {
				fairBinary[j] = false
			}
		}
	}
	if n == -1 {
		n = 0
	}
	for j, col := range score {
		for i, v := range col {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return nil, fmt.Errorf("dataset: score column %q row %d: non-finite value %v", scoreNames[j], i, v)
			}
		}
	}
	if outcome != nil && len(outcome) != n {
		return nil, fmt.Errorf("dataset: %d outcomes for %d objects", len(outcome), n)
	}
	return &Dataset{
		n:          n,
		scoreNames: append([]string(nil), scoreNames...),
		fairNames:  append([]string(nil), fairNames...),
		score:      score,
		fair:       fair,
		outcome:    outcome,
		fairBinary: fairBinary,
	}, nil
}

// N reports the number of objects.
func (d *Dataset) N() int { return d.n }

// NumScore reports the number of score attributes.
func (d *Dataset) NumScore() int { return len(d.scoreNames) }

// NumFair reports the number of fairness attributes.
func (d *Dataset) NumFair() int { return len(d.fairNames) }

// ScoreNames returns the score attribute names. The returned slice must not
// be modified.
func (d *Dataset) ScoreNames() []string { return d.scoreNames }

// FairNames returns the fairness attribute names. The returned slice must
// not be modified.
func (d *Dataset) FairNames() []string { return d.fairNames }

// HasOutcomes reports whether ground-truth outcomes were recorded.
func (d *Dataset) HasOutcomes() bool { return d.outcome != nil }

// ScoreColumn returns score attribute column j. The returned slice must not
// be modified.
func (d *Dataset) ScoreColumn(j int) []float64 { return d.score[j] }

// FairColumn returns fairness attribute column j. The returned slice must
// not be modified.
func (d *Dataset) FairColumn(j int) []float64 { return d.fair[j] }

// FairColumns returns all fairness attribute columns. Neither the returned
// slice nor the columns may be modified. Hot paths (effective-score
// computation, centroid accumulation) use it to hoist the column lookups
// out of their inner loops.
func (d *Dataset) FairColumns() [][]float64 { return d.fair }

// Score returns score attribute j of object i.
func (d *Dataset) Score(i, j int) float64 { return d.score[j][i] }

// Fair returns fairness attribute j of object i.
func (d *Dataset) Fair(i, j int) float64 { return d.fair[j][i] }

// Outcome returns the ground-truth outcome of object i. It panics if the
// dataset has no outcomes; check HasOutcomes first.
func (d *Dataset) Outcome(i int) bool {
	if d.outcome == nil {
		panic(ErrNoOutcomes)
	}
	return d.outcome[i]
}

// FairRow copies the fairness attribute vector of object i into dst, which
// must have length NumFair, and returns dst.
func (d *Dataset) FairRow(i int, dst []float64) []float64 {
	for j := range d.fair {
		dst[j] = d.fair[j][i]
	}
	return dst
}

// FairDot returns the dot product of object i's fairness attribute vector
// with b. This is the bonus-point inner product A_f · B of Definition 2. b
// must have length NumFair.
func (d *Dataset) FairDot(i int, b []float64) float64 {
	var s float64
	for j := range d.fair {
		s += d.fair[j][i] * b[j]
	}
	return s
}

// FairCentroid returns the centroid of the fairness attribute vectors over
// the whole population (the D_O of Definition 3).
func (d *Dataset) FairCentroid() []float64 {
	c := make([]float64, len(d.fair))
	if d.n == 0 {
		return c
	}
	for j, col := range d.fair {
		var s float64
		for _, v := range col {
			s += v
		}
		c[j] = s / float64(d.n)
	}
	return c
}

// FairCentroidOf returns the centroid of the fairness attribute vectors over
// the given object indices (the D_k of Definition 3 when idx is a selected
// set). It returns the zero vector when idx is empty.
func (d *Dataset) FairCentroidOf(idx []int) []float64 {
	return d.FairCentroidInto(idx, make([]float64, len(d.fair)))
}

// FairCentroidInto is the in-place variant of FairCentroidOf: it writes the
// centroid into dst (length NumFair) and returns dst, allocating nothing.
func (d *Dataset) FairCentroidInto(idx []int, dst []float64) []float64 {
	if len(idx) == 0 {
		for j := range dst {
			dst[j] = 0
		}
		return dst
	}
	for j, col := range d.fair {
		var s float64
		for _, i := range idx {
			s += col[i]
		}
		dst[j] = s / float64(len(idx))
	}
	return dst
}

// Subset returns a new dataset containing the objects at the given indices,
// in order. Columns are copied, so the subset is independent of the parent.
func (d *Dataset) Subset(idx []int) *Dataset {
	score := make([][]float64, len(d.score))
	for j, col := range d.score {
		sub := make([]float64, len(idx))
		for r, i := range idx {
			sub[r] = col[i]
		}
		score[j] = sub
	}
	fair := make([][]float64, len(d.fair))
	for j, col := range d.fair {
		sub := make([]float64, len(idx))
		for r, i := range idx {
			sub[r] = col[i]
		}
		fair[j] = sub
	}
	var outcome []bool
	if d.outcome != nil {
		outcome = make([]bool, len(idx))
		for r, i := range idx {
			outcome[r] = d.outcome[i]
		}
	}
	sub, err := New(d.scoreNames, d.fairNames, score, fair, outcome)
	if err != nil {
		// The parent was validated, so a subset cannot fail validation.
		panic(err)
	}
	return sub
}

// FairIndex returns the column index of the named fairness attribute, or -1.
func (d *Dataset) FairIndex(name string) int {
	for j, n := range d.fairNames {
		if n == name {
			return j
		}
	}
	return -1
}

// ScoreIndex returns the column index of the named score attribute, or -1.
func (d *Dataset) ScoreIndex(name string) int {
	for j, n := range d.scoreNames {
		if n == name {
			return j
		}
	}
	return -1
}

// BinaryFairColumns reports whether every fairness attribute column is
// binary — each value exactly 0 or 1 — the precondition of the group
// exposure metrics (exposure, exposure/merit ratio, top-K rank fairness).
// When ok is false, offending names the first non-binary column; callers
// that want exposure answers over a mixed dataset take a WithFairColumns
// view restricted to the binary attributes, as the paper's Section
// VI-C4/C5 experiments do when they drop the continuous ENI attribute.
// Binarity is detected once at construction, so this is O(NumFair).
func (d *Dataset) BinaryFairColumns() (ok bool, offending string) {
	for j, b := range d.fairBinary {
		if !b {
			return false, d.fairNames[j]
		}
	}
	return true, ""
}

// GroupSize reports how many objects have fairness attribute j strictly
// above 0.5, i.e. the membership count for a binary attribute.
func (d *Dataset) GroupSize(j int) int {
	var c int
	for _, v := range d.fair[j] {
		if v > 0.5 {
			c++
		}
	}
	return c
}

// WithFairColumns returns a view of the dataset restricted to the given
// fairness attribute columns (in the given order). Score columns and
// outcomes are shared with the parent; fairness columns are shared slices,
// so the view is cheap. The paper's Section VI-C4/C5 experiments use this
// to drop the continuous ENI attribute, which exposure and disparate
// impact cannot handle.
func (d *Dataset) WithFairColumns(cols []int) *Dataset {
	names := make([]string, len(cols))
	fair := make([][]float64, len(cols))
	binary := make([]bool, len(cols))
	for r, c := range cols {
		names[r] = d.fairNames[c]
		fair[r] = d.fair[c]
		binary[r] = d.fairBinary[c]
	}
	return &Dataset{
		n:          d.n,
		scoreNames: d.scoreNames,
		fairNames:  names,
		score:      d.score,
		fair:       fair,
		outcome:    d.outcome,
		fairBinary: binary,
	}
}

// FairCombos partitions the objects by bitwise-identical fairness
// attribute rows. It returns the combo index of every object (combo ids
// are assigned in first-appearance order) and one representative row per
// combo. Two objects share a combo exactly when every fairness attribute
// matches bit for bit — the invariant the combo-run merge ranking relies
// on: such objects receive identical bonus totals under *every* bonus
// vector, so their relative order never changes.
//
// maxCombos caps the partition: as soon as more distinct rows than that
// appear (a continuous attribute makes nearly every row unique, and a
// run-per-object partition buys nothing), the scan aborts and ok is
// false. A maxCombos <= 0 means no cap.
func (d *Dataset) FairCombos(maxCombos int) (comboOf []int32, reps [][]float64, ok bool) {
	comboOf = make([]int32, d.n)
	if len(d.fair) == 0 {
		// No fairness attributes: every object is the single empty combo.
		return comboOf, [][]float64{{}}, true
	}
	byKey := make(map[string]int32)
	key := make([]byte, 8*len(d.fair))
	var repIDs []int
	for i := 0; i < d.n; i++ {
		for j, col := range d.fair {
			bits := math.Float64bits(col[i])
			for o := 0; o < 8; o++ {
				key[8*j+o] = byte(bits >> (8 * o))
			}
		}
		c, seen := byKey[string(key)]
		if !seen {
			if maxCombos > 0 && len(repIDs) >= maxCombos {
				return nil, nil, false
			}
			c = int32(len(repIDs))
			byKey[string(key)] = c
			repIDs = append(repIDs, i)
		}
		comboOf[i] = c
	}
	backing := make([]float64, len(repIDs)*len(d.fair))
	reps = make([][]float64, len(repIDs))
	for c, i := range repIDs {
		row := backing[c*len(d.fair) : (c+1)*len(d.fair) : (c+1)*len(d.fair)]
		for j, col := range d.fair {
			row[j] = col[i]
		}
		reps[c] = row
	}
	return comboOf, reps, true
}

// Builder accumulates objects row by row and produces a Dataset.
type Builder struct {
	scoreNames []string
	fairNames  []string
	score      [][]float64
	fair       [][]float64
	outcome    []bool
	hasOutcome bool
	err        error
}

// NewBuilder returns a Builder for datasets with the given attribute names.
func NewBuilder(scoreNames, fairNames []string) *Builder {
	b := &Builder{
		scoreNames: append([]string(nil), scoreNames...),
		fairNames:  append([]string(nil), fairNames...),
		score:      make([][]float64, len(scoreNames)),
		fair:       make([][]float64, len(fairNames)),
	}
	return b
}

// Add appends an object without an outcome.
func (b *Builder) Add(score, fair []float64) {
	b.add(score, fair, false, false)
}

// AddWithOutcome appends an object with a ground-truth outcome. All objects
// in a dataset must be added consistently: either all with outcomes or none.
func (b *Builder) AddWithOutcome(score, fair []float64, outcome bool) {
	b.add(score, fair, outcome, true)
}

func (b *Builder) add(score, fair []float64, outcome, withOutcome bool) {
	if b.err != nil {
		return
	}
	if len(score) != len(b.scoreNames) {
		b.err = fmt.Errorf("dataset: Add with %d score values, want %d", len(score), len(b.scoreNames))
		return
	}
	if len(fair) != len(b.fairNames) {
		b.err = fmt.Errorf("dataset: Add with %d fairness values, want %d", len(fair), len(b.fairNames))
		return
	}
	n := 0
	if len(b.score) > 0 {
		n = len(b.score[0])
	} else if len(b.fair) > 0 {
		n = len(b.fair[0])
	}
	if n == 0 {
		b.hasOutcome = withOutcome
	} else if b.hasOutcome != withOutcome {
		b.err = errors.New("dataset: mixed Add and AddWithOutcome calls")
		return
	}
	for j, v := range score {
		b.score[j] = append(b.score[j], v)
	}
	for j, v := range fair {
		b.fair[j] = append(b.fair[j], v)
	}
	if withOutcome {
		b.outcome = append(b.outcome, outcome)
	}
}

// Build validates the accumulated rows and returns the dataset.
func (b *Builder) Build() (*Dataset, error) {
	if b.err != nil {
		return nil, b.err
	}
	var outcome []bool
	if b.hasOutcome {
		outcome = b.outcome
	}
	return New(b.scoreNames, b.fairNames, b.score, b.fair, outcome)
}
