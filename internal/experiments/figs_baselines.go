package experiments

import (
	"fmt"

	"fairrank/internal/baselines"
	"fairrank/internal/core"
	"fairrank/internal/dataset"
	"fairrank/internal/metrics"
	"fairrank/internal/rank"
	"fairrank/internal/report"
)

// schoolBinaryCols are the binary fairness columns of the school datasets
// (Low-Income, ELL, Special-Ed), excluding the continuous ENI.
var schoolBinaryCols = []int{0, 1, 3}

// Fig6 reproduces Figure 6: the disparity reduction achieved by the
// real-world single-quota system — one set-aside shared by every
// disadvantaged dimension, sized at the population share of the
// disadvantaged union.
func Fig6(env *Env) (Renderable, error) {
	test, err := env.Test()
	if err != nil {
		return nil, err
	}
	testEval, err := env.TestEval()
	if err != nil {
		return nil, err
	}
	// Reserve seats in proportion to the disadvantaged union share.
	member := make([]bool, test.N())
	for _, c := range schoolBinaryCols {
		col := test.FairColumn(c)
		for i, v := range col {
			if v > 0.5 {
				member[i] = true
			}
		}
	}
	var union int
	for _, m := range member {
		if m {
			union++
		}
	}
	reserve := float64(union) / float64(test.N())
	q := baselines.Quota{Reserve: reserve, MemberCols: schoolBinaryCols}

	names := test.FairNames()
	s := &report.Series{
		Title: fmt.Sprintf("Figure 6: single-quota baseline across k (reserve=%.2f, test cohort)", reserve),
		XName: "k", X: env.Cfg.KSweep,
	}
	origOrder := testEval.Order(nil) // cached: one ranking for every k
	series := make([][]float64, len(names)+1)
	for _, k := range env.Cfg.KSweep {
		sel, err := q.SelectOrdered(test, origOrder, k)
		if err != nil {
			return nil, err
		}
		disp := metrics.Disparity(test, sel)
		for j := range names {
			series[j] = append(series[j], disp[j])
		}
		series[len(names)] = append(series[len(names)], metrics.Norm(disp))
	}
	for j, n := range names {
		s.Add(n, series[j])
	}
	s.Add("Norm", series[len(names)])
	return s, nil
}

// cellTypes flattens the binary fairness attributes of each object into a
// Cartesian-product cell id (LSB = first listed column).
func cellTypes(d *dataset.Dataset, cols []int) []int {
	types := make([]int, d.N())
	for bit, c := range cols {
		col := d.FairColumn(c)
		for i, v := range col {
			if v > 0.5 {
				types[i] |= 1 << bit
			}
		}
	}
	return types
}

// Fig7 reproduces Figure 7: the accuracy-vs-disparity frontier of DCA
// against the (Δ+2)-approximation of Celis et al. For every bonus
// proportion w, the (Δ+2) greedy receives the selection composition DCA
// achieves at w as its fairness caps ("we gave (Δ+2) the disparity
// achieved by DCA as its input preset fairness constraint"), so both
// systems target the same fairness level and differ only in utility and
// mechanism. Run on the training cohort like the paper.
func Fig7(env *Env) (Renderable, error) {
	const k = 0.05
	train, err := env.Train()
	if err != nil {
		return nil, err
	}
	trainEval, err := env.TrainEval()
	if err != nil {
		return nil, err
	}
	res, err := env.DCAAtK(k)
	if err != nil {
		return nil, err
	}
	types := cellTypes(train, schoolBinaryCols)
	nCells := 1 << len(schoolBinaryCols)
	origOrder := trainEval.Order(nil)
	base := trainEval.BaseScores()
	tau, err := rank.SelectCount(train.N(), k)
	if err != nil {
		return nil, err
	}
	typesInOrder := make([]int, len(origOrder))
	for pos, obj := range origOrder {
		typesInOrder[pos] = types[obj]
	}

	s := &report.Series{Title: "Figure 7: accuracy vs disparity, DCA and (Δ+2)-approximation (training cohort, k=5%)", XName: "proportion", X: env.Cfg.WSweep}
	var dcaNorm, dcaNDCG, celisNorm, celisNDCG []float64
	for _, w := range env.Cfg.WSweep {
		scaled := core.Scale(res.Bonus, w, 0.5)
		sel, err := trainEval.Select(scaled, k)
		if err != nil {
			return nil, err
		}
		disp := metrics.Disparity(train, sel)
		dcaNorm = append(dcaNorm, metrics.Norm(disp))
		u, err := trainEval.NDCG(scaled, k)
		if err != nil {
			return nil, err
		}
		dcaNDCG = append(dcaNDCG, u)

		// Caps = DCA's achieved per-cell composition.
		caps := make([]int, nCells)
		for _, i := range sel {
			caps[types[i]]++
		}
		greedy := baselines.CelisGreedy{Caps: caps}
		positions, err := greedy.ReRank(typesInOrder, tau)
		if err != nil {
			return nil, err
		}
		celisSel := make([]int, len(positions))
		for r, p := range positions {
			celisSel[r] = origOrder[p]
		}
		cd := metrics.Disparity(train, celisSel)
		celisNorm = append(celisNorm, metrics.Norm(cd))
		// nDCG of the re-ranked selection against the unconstrained top-tau.
		got := metrics.DCG(base, celisSel, tau)
		ideal := metrics.DCG(base, origOrder, tau)
		celisNDCG = append(celisNDCG, got/ideal)
	}
	s.Add("DCA-norm", dcaNorm)
	s.Add("Celis-norm", celisNorm)
	s.Add("DCA-nDCG", dcaNDCG)
	s.Add("Celis-nDCG", celisNDCG)
	return s, nil
}

// Fig9 reproduces Figure 9: DCA optimizing Disparity vs optimizing the
// scaled Disparate Impact (Section VI-C5), both in log-discounted mode on
// the binary school attributes (ENI dropped: DI is a group metric). Each
// trained vector is then evaluated across k on both metrics.
func Fig9(env *Env) (Renderable, error) {
	train, err := env.Train()
	if err != nil {
		return nil, err
	}
	test, err := env.Test()
	if err != nil {
		return nil, err
	}
	trainView := train.WithFairColumns(schoolBinaryCols)
	testView := test.WithFairColumns(schoolBinaryCols)
	scorer := env.SchoolScorer()
	opts := env.SchoolOptions(0.1)

	dispObj := core.LogDiscounted{Points: metrics.DefaultPoints(0.1, 0.5), Metric: core.DisparityMetric{}}
	diObj := core.LogDiscounted{Points: metrics.DefaultPoints(0.1, 0.5), Metric: core.DisparateImpactMetric{}}
	dispRes, err := core.Run(trainView, scorer, dispObj, opts)
	if err != nil {
		return nil, err
	}
	diRes, err := core.Run(trainView, scorer, diObj, opts)
	if err != nil {
		return nil, err
	}

	ev := core.NewEvaluator(testView, scorer, rank.Beneficial)
	s := &report.Series{Title: "Figure 9: disparity norm and disparate impact, optimizing either metric (test cohort)", XName: "k", X: env.Cfg.KSweep}
	// Both trained vectors at every k, evaluated on the parallel sweep
	// layer: points alternate (disparity-trained, DI-trained) per k.
	points := make([]core.SweepPoint, 0, 2*len(env.Cfg.KSweep))
	for _, k := range env.Cfg.KSweep {
		points = append(points,
			core.SweepPoint{Bonus: dispRes.Bonus, K: k},
			core.SweepPoint{Bonus: diRes.Bonus, K: k})
	}
	disps, err := ev.DisparitySweep(points)
	if err != nil {
		return nil, err
	}
	impacts, err := ev.DisparateImpactSweep(points)
	if err != nil {
		return nil, err
	}
	var ddNorm, ddDI, diNorm, diDI []float64
	for i := 0; i < len(points); i += 2 {
		ddNorm = append(ddNorm, metrics.Norm(disps[i]))
		ddDI = append(ddDI, metrics.Norm(impacts[i]))
		diNorm = append(diNorm, metrics.Norm(disps[i+1]))
		diDI = append(diDI, metrics.Norm(impacts[i+1]))
	}
	s.Add("DCA(disparity):disparity-norm", ddNorm)
	s.Add("DCA(disparity):DI-norm", ddDI)
	s.Add("DCA(DI):disparity-norm", diNorm)
	s.Add("DCA(DI):DI-norm", diDI)

	vec := &report.Table{Title: "Trained bonus vectors", Headers: append([]string{"objective"}, trainView.FairNames()...)}
	vec.AddFloatRow("disparity", dispRes.Bonus...)
	vec.AddFloatRow("disparate-impact", diRes.Bonus...)
	return Multi{s, vec}, nil
}
