package experiments

import (
	"fairrank/internal/core"
	"fairrank/internal/metrics"
	"fairrank/internal/report"
)

// Fig1 reproduces Figure 1: nDCG@k on the test cohort for varying
// selection fraction k, each k served by the vector DCA trained for it.
func Fig1(env *Env) (Renderable, error) {
	testEval, err := env.TestEval()
	if err != nil {
		return nil, err
	}
	s := &report.Series{Title: "Figure 1: nDCG@k on the school test cohort", XName: "k", X: env.Cfg.KSweep}
	points := make([]core.SweepPoint, 0, len(env.Cfg.KSweep))
	for _, k := range env.Cfg.KSweep {
		res, err := env.DCAAtK(k)
		if err != nil {
			return nil, err
		}
		points = append(points, core.SweepPoint{Bonus: res.Bonus, K: k})
	}
	ndcg, err := testEval.NDCGSweep(points)
	if err != nil {
		return nil, err
	}
	s.Add("nDCG", ndcg)
	return s, nil
}

// Fig2 reproduces Figure 2: nDCG@0.05 and disparity norm on the test
// cohort as the DCA bonus vector is proportionally scaled down.
func Fig2(env *Env) (Renderable, error) {
	const k = 0.05
	testEval, err := env.TestEval()
	if err != nil {
		return nil, err
	}
	res, err := env.DCAAtK(k)
	if err != nil {
		return nil, err
	}
	s := &report.Series{Title: "Figure 2: utility vs disparity across bonus proportion (test cohort, k=5%)", XName: "proportion", X: env.Cfg.WSweep}
	points := make([]core.SweepPoint, len(env.Cfg.WSweep))
	for i, w := range env.Cfg.WSweep {
		points[i] = core.SweepPoint{Bonus: core.Scale(res.Bonus, w, 0.5), K: k}
	}
	disps, err := testEval.DisparitySweep(points)
	if err != nil {
		return nil, err
	}
	ndcgs, err := testEval.NDCGSweep(points)
	if err != nil {
		return nil, err
	}
	norms := make([]float64, len(disps))
	for i, disp := range disps {
		norms[i] = metrics.Norm(disp)
	}
	s.Add("disparity-norm", norms)
	s.Add("nDCG", ndcgs)
	return s, nil
}

// Fig3 reproduces Figure 3: the per-dimension disparity breakdown across
// the bonus proportion (the 0.5-point granularity gives the series its
// step shape).
func Fig3(env *Env) (Renderable, error) {
	const k = 0.05
	testEval, err := env.TestEval()
	if err != nil {
		return nil, err
	}
	res, err := env.DCAAtK(k)
	if err != nil {
		return nil, err
	}
	names := testEval.Dataset().FairNames()
	s := &report.Series{Title: "Figure 3: per-dimension disparity across bonus proportion (test cohort, k=5%)", XName: "proportion", X: env.Cfg.WSweep}
	points := make([]core.SweepPoint, len(env.Cfg.WSweep))
	for i, w := range env.Cfg.WSweep {
		points[i] = core.SweepPoint{Bonus: core.Scale(res.Bonus, w, 0.5), K: k}
	}
	disps, err := testEval.DisparitySweep(points)
	if err != nil {
		return nil, err
	}
	series := make([][]float64, len(names)+1)
	for _, disp := range disps {
		for j := range names {
			series[j] = append(series[j], disp[j])
		}
		series[len(names)] = append(series[len(names)], metrics.Norm(disp))
	}
	for j, n := range names {
		s.Add(n, series[j])
	}
	s.Add("Norm", series[len(names)])
	return s, nil
}

// disparitySweep evaluates a per-k bonus supplier across the k sweep on
// the evaluator's parallel sweep layer and returns per-dimension + norm
// series. bonusFor runs sequentially (it may train memoized vectors); only
// the evaluations fan out.
func disparitySweep(env *Env, ev *core.Evaluator, bonusFor func(k float64) ([]float64, error)) (map[string][]float64, error) {
	names := ev.Dataset().FairNames()
	points := make([]core.SweepPoint, 0, len(env.Cfg.KSweep))
	for _, k := range env.Cfg.KSweep {
		b, err := bonusFor(k)
		if err != nil {
			return nil, err
		}
		points = append(points, core.SweepPoint{Bonus: b, K: k})
	}
	disps, err := ev.DisparitySweep(points)
	if err != nil {
		return nil, err
	}
	out := make(map[string][]float64, len(names)+1)
	for _, disp := range disps {
		for j, n := range names {
			out[n] = append(out[n], disp[j])
		}
		out["Norm"] = append(out["Norm"], metrics.Norm(disp))
	}
	return out, nil
}

func addDisparitySeries(s *report.Series, names []string, m map[string][]float64, prefix string) {
	for _, n := range names {
		s.Add(prefix+n, m[n])
	}
	s.Add(prefix+"Norm", m["Norm"])
}

// Fig4a reproduces Figure 4a: disparity across k when k is known in
// advance — DCA retrained per k — together with the uncorrected baseline
// (the paper's dashed lines), evaluated on the test cohort.
func Fig4a(env *Env) (Renderable, error) {
	testEval, err := env.TestEval()
	if err != nil {
		return nil, err
	}
	names := testEval.Dataset().FairNames()
	s := &report.Series{Title: "Figure 4a: disparity across k, k known (retrained per k, test cohort)", XName: "k", X: env.Cfg.KSweep}
	baseline, err := disparitySweep(env, testEval, func(float64) ([]float64, error) { return nil, nil })
	if err != nil {
		return nil, err
	}
	addDisparitySeries(s, names, baseline, "base:")
	after, err := disparitySweep(env, testEval, func(k float64) ([]float64, error) {
		res, err := env.DCAAtK(k)
		if err != nil {
			return nil, err
		}
		return res.Bonus, nil
	})
	if err != nil {
		return nil, err
	}
	addDisparitySeries(s, names, after, "dca:")
	return s, nil
}

// Fig4b reproduces Figure 4b: disparity across all k when the bonus vector
// was optimized for k = 5% only.
func Fig4b(env *Env) (Renderable, error) {
	testEval, err := env.TestEval()
	if err != nil {
		return nil, err
	}
	res, err := env.DCAAtK(0.05)
	if err != nil {
		return nil, err
	}
	s := &report.Series{Title: "Figure 4b: disparity across k, vector trained at k=5% (test cohort)", XName: "k", X: env.Cfg.KSweep}
	after, err := disparitySweep(env, testEval, func(float64) ([]float64, error) { return res.Bonus, nil })
	if err != nil {
		return nil, err
	}
	addDisparitySeries(s, testEval.Dataset().FairNames(), after, "")
	return s, nil
}

// Fig4c reproduces Figure 4c: disparity across k under the logarithmically
// discounted training mode (points 0.1..0.5).
func Fig4c(env *Env) (Renderable, error) {
	testEval, err := env.TestEval()
	if err != nil {
		return nil, err
	}
	res, err := env.LogDiscDCA()
	if err != nil {
		return nil, err
	}
	s := &report.Series{Title: "Figure 4c: disparity across k, log-discounted training (test cohort)", XName: "k", X: env.Cfg.KSweep}
	after, err := disparitySweep(env, testEval, func(float64) ([]float64, error) { return res.Bonus, nil })
	if err != nil {
		return nil, err
	}
	addDisparitySeries(s, testEval.Dataset().FairNames(), after, "")
	return s, nil
}

// Fig5 reproduces Figure 5: the log-discounted disparity (points
// 0.01..0.05, weighting the very top of the ranking) as a function of the
// maximum number of bonus points DCA may allocate per dimension.
func Fig5(env *Env) (Renderable, error) {
	train, err := env.Train()
	if err != nil {
		return nil, err
	}
	testEval, err := env.TestEval()
	if err != nil {
		return nil, err
	}
	names := testEval.Dataset().FairNames()
	points := metrics.DefaultPoints(0.01, 0.05)
	obj := core.LogDiscounted{Points: points, Metric: core.DisparityMetric{}}
	ld := metrics.LogDiscount{Points: points}

	s := &report.Series{Title: "Figure 5: log-discounted disparity vs maximum bonus cap (test cohort)", XName: "max-bonus", X: env.Cfg.CapSweep}
	series := make([][]float64, len(names)+1)
	for _, capVal := range env.Cfg.CapSweep {
		opts := env.SchoolOptions(0.01)
		opts.MaxBonus = capVal
		if capVal == 0 {
			// A zero cap means "no bonus at all" for this sweep: report the
			// uncorrected baseline rather than an unbounded run.
			opts.MaxBonus = 1e-9
		}
		res, err := core.Run(train, env.SchoolScorer(), obj, opts)
		if err != nil {
			return nil, err
		}
		disc, err := testEval.LogDiscounted(res.Bonus, ld)
		if err != nil {
			return nil, err
		}
		for j := range names {
			series[j] = append(series[j], disc[j])
		}
		series[len(names)] = append(series[len(names)], metrics.Norm(disc))
	}
	for j, n := range names {
		s.Add(n, series[j])
	}
	s.Add("Norm", series[len(names)])
	return s, nil
}

// Fig8a reproduces Figure 8a: the per-k disparity of Core DCA (Algorithm 1
// without refinement), the rougher cousin of Figure 4a.
func Fig8a(env *Env) (Renderable, error) {
	testEval, err := env.TestEval()
	if err != nil {
		return nil, err
	}
	s := &report.Series{Title: "Figure 8a: disparity across k, Core DCA without refinement (test cohort)", XName: "k", X: env.Cfg.KSweep}
	after, err := disparitySweep(env, testEval, func(k float64) ([]float64, error) {
		res, err := env.CoreDCAAtK(k)
		if err != nil {
			return nil, err
		}
		return core.RoundTo(append([]float64(nil), res.Raw...), 0.5), nil
	})
	if err != nil {
		return nil, err
	}
	addDisparitySeries(s, testEval.Dataset().FairNames(), after, "")
	return s, nil
}

// Fig8b reproduces Figure 8b: wall-clock time of Core DCA vs refined DCA
// across k. Two extra small-k points (1%, 2%) are included because that is
// where the sample-size bound max(1/k, 1/r) drives the cost up.
func Fig8b(env *Env) (Renderable, error) {
	train, err := env.Train()
	if err != nil {
		return nil, err
	}
	ks := append([]float64{0.01, 0.02}, env.Cfg.KSweep...)
	s := &report.Series{Title: "Figure 8b: DCA wall-clock seconds across k", XName: "k", X: ks}
	var unrefined, refined []float64
	for _, k := range ks {
		opts := env.SchoolOptions(k)
		obj := core.DisparityObjective(k)
		cr, err := core.CoreDCA(train, env.SchoolScorer(), obj, opts)
		if err != nil {
			return nil, err
		}
		unrefined = append(unrefined, cr.Elapsed.Seconds())
		rr, err := core.Run(train, env.SchoolScorer(), obj, opts)
		if err != nil {
			return nil, err
		}
		refined = append(refined, rr.Elapsed.Seconds())
	}
	s.Add("Unrefined", unrefined)
	s.Add("Refined", refined)
	return s, nil
}
