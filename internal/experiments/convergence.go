package experiments

import (
	"fairrank/internal/core"
	"fairrank/internal/report"
)

// AblationConvergence records one full DCA run step by step and reports
// the sampled objective norm and the ELL bonus trajectory across the
// learning-rate ladder and the Adam refinement — the convergence picture
// behind the paper's empirical schedule (lr 1.0 x100, lr 0.1 x100, Adam
// x100, trailing average).
func AblationConvergence(env *Env) (Renderable, error) {
	const k = 0.05
	train, err := env.Train()
	if err != nil {
		return nil, err
	}
	rec := &core.Recorder{}
	opts := env.SchoolOptions(k)
	opts.Trace = rec.Observe
	if _, err := core.Run(train, env.SchoolScorer(), core.DisparityObjective(k), opts); err != nil {
		return nil, err
	}

	norms := rec.ObjectiveNorms()
	ell := rec.BonusTrajectory(1) // ELL: the attribute with the clearest ramp
	xs := make([]float64, len(norms))
	for i := range xs {
		xs[i] = float64(i + 1)
	}
	s := &report.Series{
		Title: "Ablation: DCA convergence (sampled objective norm and ELL bonus per step; stages: core lr=1, core lr=0.1, Adam)",
		XName: "step", X: xs,
	}
	s.Add("objective-norm", norms)
	s.Add("ELL-bonus", ell)

	t := &report.Table{Title: "Stage summary", Headers: []string{"stage", "trailing-50 mean norm"}}
	bounds := append(rec.StageBoundaries(), len(rec.Steps))
	start := 0
	for _, end := range bounds {
		sub := &core.Recorder{Steps: rec.Steps[start:end]}
		label := rec.Steps[start].Stage + " lr=" + report.Float(rec.Steps[start].LR)
		t.AddRow(label, report.Float(sub.MeanNormOver(50)))
		start = end
	}
	return Multi{t, s}, nil
}
