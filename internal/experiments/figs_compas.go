package experiments

import (
	"fairrank/internal/core"
	"fairrank/internal/metrics"
	"fairrank/internal/report"
)

// Fig10a reproduces Figure 10a: per-race disparity of the COMPAS flagging
// selection at every k, before bonus points (the paper's dashed lines) and
// after a per-k adverse DCA run. The coarse decile scores make the
// corrected curves jagged — the effect Section VI-B discusses.
func Fig10a(env *Env) (Renderable, error) {
	ev, err := env.CompasEval()
	if err != nil {
		return nil, err
	}
	names := ev.Dataset().FairNames()
	s := &report.Series{Title: "Figure 10a: COMPAS disparity across k, per-k bonus points", XName: "k", X: env.Cfg.KSweep}
	baseline, err := disparitySweep(env, ev, func(float64) ([]float64, error) { return nil, nil })
	if err != nil {
		return nil, err
	}
	addDisparitySeries(s, names, baseline, "base:")
	after, err := disparitySweep(env, ev, func(k float64) ([]float64, error) {
		res, err := env.CompasDCAAtK(k)
		if err != nil {
			return nil, err
		}
		return res.Bonus, nil
	})
	if err != nil {
		return nil, err
	}
	addDisparitySeries(s, names, after, "dca:")
	return s, nil
}

// Fig10b reproduces Figure 10b: per-race false positive rate differences
// (group FPR minus overall FPR) when DCA minimizes the FPR-difference
// objective at each k.
func Fig10b(env *Env) (Renderable, error) {
	d, err := env.Compas()
	if err != nil {
		return nil, err
	}
	ev, err := env.CompasEval()
	if err != nil {
		return nil, err
	}
	names := d.FairNames()
	s := &report.Series{Title: "Figure 10b: COMPAS FPR differences across k, FPR-objective bonus points", XName: "k", X: env.Cfg.KSweep}
	series := make(map[string][]float64)
	baseSeries := make(map[string][]float64)
	for _, k := range env.Cfg.KSweep {
		before, err := ev.FPRDiff(nil, k)
		if err != nil {
			return nil, err
		}
		res, err := core.Run(d, env.CompasScorer(), core.FPRObjective(k), env.CompasOptions(k))
		if err != nil {
			return nil, err
		}
		after, err := ev.FPRDiff(res.Bonus, k)
		if err != nil {
			return nil, err
		}
		for j, n := range names {
			baseSeries[n] = append(baseSeries[n], before[j])
			series[n] = append(series[n], after[j])
		}
		baseSeries["Norm"] = append(baseSeries["Norm"], metrics.Norm(before))
		series["Norm"] = append(series["Norm"], metrics.Norm(after))
	}
	addDisparitySeries(s, names, baseSeries, "base:")
	addDisparitySeries(s, names, series, "dca:")
	return s, nil
}

// Fig10c reproduces Figure 10c: disparity across k when a single bonus
// vector is trained once in log-discounted mode. The sharp moves as whole
// decile buckets cross the selection threshold are the expected artifact
// of the 10-value score scale.
func Fig10c(env *Env) (Renderable, error) {
	d, err := env.Compas()
	if err != nil {
		return nil, err
	}
	ev, err := env.CompasEval()
	if err != nil {
		return nil, err
	}
	obj := core.LogDiscounted{Points: metrics.DefaultPoints(0.1, 0.5), Metric: core.DisparityMetric{}}
	res, err := core.Run(d, env.CompasScorer(), obj, env.CompasOptions(0.1))
	if err != nil {
		return nil, err
	}
	s := &report.Series{Title: "Figure 10c: COMPAS disparity across k, one log-discounted vector", XName: "k", X: env.Cfg.KSweep}
	after, err := disparitySweep(env, ev, func(float64) ([]float64, error) { return res.Bonus, nil })
	if err != nil {
		return nil, err
	}
	addDisparitySeries(s, ev.Dataset().FairNames(), after, "")

	vec := &report.Table{Title: "Log-discounted COMPAS bonus vector", Headers: ev.Dataset().FairNames()}
	cells := make([]string, len(res.Bonus))
	for j, b := range res.Bonus {
		cells[j] = report.Float(b)
	}
	vec.AddRow(cells...)
	return Multi{s, vec}, nil
}
