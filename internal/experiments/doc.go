// Package experiments reproduces every table and figure of the paper's
// evaluation (Sections V and VI). Each experiment is a named Runner in the
// Registry; cmd/experiments prints the resulting tables/series and
// bench_test.go at the repository root wraps each runner in a testing.B
// benchmark.
//
// All experiments are deterministic: datasets and DCA runs are seeded, and
// the Env memoizes generated cohorts and trained bonus vectors so that
// experiments sharing inputs (e.g. the Figure 2/3 sweeps reusing the
// Table I vector) agree exactly.
package experiments
