package experiments

import (
	"fmt"
	"io"
	"math"
	"sync"

	"fairrank/internal/core"
	"fairrank/internal/dataset"
	"fairrank/internal/rank"
	"fairrank/internal/report"
	"fairrank/internal/synth"
)

// Config selects dataset sizes and sweep densities.
type Config struct {
	// SchoolN is the cohort size (paper: ~80,000 per school year).
	SchoolN int
	// TrainSeed and TestSeed generate the two cohorts (two school years).
	TrainSeed, TestSeed int64
	// DistrictSeed generates the 2,500-student district of Table II.
	DistrictSeed int64
	// Compas configures the recidivism dataset.
	Compas synth.CompasConfig
	// Seed drives DCA sampling.
	Seed int64
	// KSweep are the selection fractions used by the across-k figures.
	KSweep []float64
	// WSweep are the bonus-proportion values of Figures 2, 3 and 7.
	WSweep []float64
	// CapSweep are the maximum-bonus values of Figure 5.
	CapSweep []float64
}

// DefaultConfig mirrors the paper's experimental setting.
func DefaultConfig() Config {
	return Config{
		SchoolN:      80000,
		TrainSeed:    2017,
		TestSeed:     2018,
		DistrictSeed: 7,
		Compas:       synth.DefaultCompasConfig(),
		Seed:         1,
		KSweep:       sweep(0.05, 0.50, 0.05),
		WSweep:       sweep(0.10, 1.00, 0.10),
		CapSweep:     []float64{0, 2.5, 5, 7.5, 10, 12.5, 15, 17.5, 20},
	}
}

// QuickConfig shrinks cohorts and sweeps for smoke tests and benchmarks.
func QuickConfig() Config {
	cfg := DefaultConfig()
	cfg.SchoolN = 20000
	cfg.KSweep = []float64{0.05, 0.15, 0.30, 0.50}
	cfg.WSweep = []float64{0.25, 0.50, 0.75, 1.00}
	cfg.CapSweep = []float64{0, 5, 10, 15, 20}
	return cfg
}

func sweep(lo, hi, step float64) []float64 {
	var out []float64
	for v := lo; v <= hi+1e-9; v += step {
		out = append(out, math.Round(v*100)/100)
	}
	return out
}

// Renderable is anything an experiment can return for printing.
type Renderable interface {
	Render(w io.Writer) error
}

// Multi concatenates several renderables with blank-line separators.
type Multi []Renderable

// Render implements Renderable.
func (m Multi) Render(w io.Writer) error {
	for i, r := range m {
		if i > 0 {
			if _, err := fmt.Fprintln(w); err != nil {
				return err
			}
		}
		if err := r.Render(w); err != nil {
			return err
		}
	}
	return nil
}

// RenderTSV implements report.TSVRenderer by delegating to parts that
// support it and falling back to Render for those that do not.
func (m Multi) RenderTSV(w io.Writer) error {
	for i, r := range m {
		if i > 0 {
			if _, err := fmt.Fprintln(w); err != nil {
				return err
			}
		}
		if tr, ok := r.(report.TSVRenderer); ok {
			if err := tr.RenderTSV(w); err != nil {
				return err
			}
			continue
		}
		if err := r.Render(w); err != nil {
			return err
		}
	}
	return nil
}

// Env lazily builds and caches the datasets, evaluators and trained bonus
// vectors shared across experiments. Safe for sequential use; the memo
// maps are guarded for use from parallel benchmarks.
type Env struct {
	Cfg Config

	mu        sync.Mutex
	train     *dataset.Dataset
	test      *dataset.Dataset
	district  *dataset.Dataset
	compas    *dataset.Dataset
	trainEval *core.Evaluator
	testEval  *core.Evaluator
	compEval  *core.Evaluator

	dcaAtK     map[float64]core.Result // refined DCA on train, disparity@k
	coreAtK    map[float64]core.Result // core-only DCA on train, disparity@k
	compasAtK  map[float64]core.Result
	logDiscRes *core.Result // log-discounted disparity on train (step .1, max .5)
}

// NewEnv returns an empty environment; datasets are generated on first use.
func NewEnv(cfg Config) *Env {
	return &Env{
		Cfg:       cfg,
		dcaAtK:    make(map[float64]core.Result),
		coreAtK:   make(map[float64]core.Result),
		compasAtK: make(map[float64]core.Result),
	}
}

// SchoolScorer is the paper's rubric f = 0.55*GPA + 0.45*TestScores.
func (e *Env) SchoolScorer() rank.Scorer {
	return rank.WeightedSum{Weights: synth.SchoolScoreWeights()}
}

// CompasScorer ranks by decile score with an infinitesimal tie-break.
func (e *Env) CompasScorer() rank.Scorer {
	return rank.WeightedSum{Weights: synth.CompasScoreWeights()}
}

// Train returns the training cohort (school year 2016-17 analogue).
func (e *Env) Train() (*dataset.Dataset, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.train == nil {
		cfg := synth.DefaultSchoolConfig()
		cfg.N = e.Cfg.SchoolN
		cfg.Seed = e.Cfg.TrainSeed
		d, err := synth.GenerateSchool(cfg)
		if err != nil {
			return nil, err
		}
		e.train = d
	}
	return e.train, nil
}

// Test returns the held-out cohort (school year 2017-18 analogue).
func (e *Env) Test() (*dataset.Dataset, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.test == nil {
		cfg := synth.DefaultSchoolConfig()
		cfg.N = e.Cfg.SchoolN
		cfg.Seed = e.Cfg.TestSeed
		d, err := synth.GenerateSchool(cfg)
		if err != nil {
			return nil, err
		}
		e.test = d
	}
	return e.test, nil
}

// District returns the 2,500-student single district of Table II.
func (e *Env) District() (*dataset.Dataset, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.district == nil {
		d, err := synth.GenerateSchool(synth.DistrictConfig(e.Cfg.DistrictSeed))
		if err != nil {
			return nil, err
		}
		e.district = d
	}
	return e.district, nil
}

// Compas returns the recidivism dataset.
func (e *Env) Compas() (*dataset.Dataset, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.compas == nil {
		d, err := synth.GenerateCompas(e.Cfg.Compas)
		if err != nil {
			return nil, err
		}
		e.compas = d
	}
	return e.compas, nil
}

// TrainEval returns the cached evaluator over the training cohort.
func (e *Env) TrainEval() (*core.Evaluator, error) {
	d, err := e.Train()
	if err != nil {
		return nil, err
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.trainEval == nil {
		e.trainEval = core.NewEvaluator(d, e.SchoolScorer(), rank.Beneficial)
	}
	return e.trainEval, nil
}

// TestEval returns the cached evaluator over the test cohort.
func (e *Env) TestEval() (*core.Evaluator, error) {
	d, err := e.Test()
	if err != nil {
		return nil, err
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.testEval == nil {
		e.testEval = core.NewEvaluator(d, e.SchoolScorer(), rank.Beneficial)
	}
	return e.testEval, nil
}

// CompasEval returns the cached evaluator over the COMPAS dataset
// (adverse polarity: selection = flagged as high risk).
func (e *Env) CompasEval() (*core.Evaluator, error) {
	d, err := e.Compas()
	if err != nil {
		return nil, err
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.compEval == nil {
		e.compEval = core.NewEvaluator(d, e.CompasScorer(), rank.Adverse)
	}
	return e.compEval, nil
}

// SchoolOptions returns the paper's DCA settings for the school data, with
// the sample size scaled for small selection fractions per the
// max(1/k, 1/r) bound of Section IV-D (rarest school group r = 0.10).
func (e *Env) SchoolOptions(k float64) core.Options {
	opts := core.DefaultOptions()
	opts.Seed = e.Cfg.Seed
	opts.SampleSize = SampleSizeFor(k, 0.10)
	return opts
}

// CompasOptions returns DCA settings for the COMPAS data: adverse
// polarity, and a sample sized for the rarest race group (Native American,
// ~0.5%), capped at the dataset size by core.Run.
func (e *Env) CompasOptions(k float64) core.Options {
	opts := core.DefaultOptions()
	opts.Seed = e.Cfg.Seed
	opts.Polarity = rank.Adverse
	opts.SampleSize = SampleSizeFor(k, 0.005)
	return opts
}

// SampleSizeFor applies the paper's sample-size reasoning (Section V-B):
// 500 elements give 25 selected objects at k = 5% and 50 members of a
// 10%-frequency rarest group, "enough to show most of the correlation
// between attributes". The bound scales as max(1/k, 1/r) for smaller
// selections or rarer groups, with 500 as the floor.
func SampleSizeFor(k, rarest float64) int {
	need := math.Max(25/k, 50/rarest)
	if need < 500 {
		return 500
	}
	return int(math.Ceil(need))
}

// DCAAtK trains (or returns the memoized) refined DCA bonus vector on the
// training cohort for disparity@k.
func (e *Env) DCAAtK(k float64) (core.Result, error) {
	e.mu.Lock()
	if res, ok := e.dcaAtK[k]; ok {
		e.mu.Unlock()
		return res, nil
	}
	e.mu.Unlock()
	d, err := e.Train()
	if err != nil {
		return core.Result{}, err
	}
	res, err := core.Run(d, e.SchoolScorer(), core.DisparityObjective(k), e.SchoolOptions(k))
	if err != nil {
		return core.Result{}, err
	}
	e.mu.Lock()
	e.dcaAtK[k] = res
	e.mu.Unlock()
	return res, nil
}

// CoreDCAAtK is DCAAtK without the refinement pass (Figure 8a).
func (e *Env) CoreDCAAtK(k float64) (core.Result, error) {
	e.mu.Lock()
	if res, ok := e.coreAtK[k]; ok {
		e.mu.Unlock()
		return res, nil
	}
	e.mu.Unlock()
	d, err := e.Train()
	if err != nil {
		return core.Result{}, err
	}
	res, err := core.CoreDCA(d, e.SchoolScorer(), core.DisparityObjective(k), e.SchoolOptions(k))
	if err != nil {
		return core.Result{}, err
	}
	e.mu.Lock()
	e.coreAtK[k] = res
	e.mu.Unlock()
	return res, nil
}

// CompasDCAAtK trains (or returns the memoized) adverse DCA vector on the
// COMPAS data for disparity@k.
func (e *Env) CompasDCAAtK(k float64) (core.Result, error) {
	e.mu.Lock()
	if res, ok := e.compasAtK[k]; ok {
		e.mu.Unlock()
		return res, nil
	}
	e.mu.Unlock()
	d, err := e.Compas()
	if err != nil {
		return core.Result{}, err
	}
	res, err := core.Run(d, e.CompasScorer(), core.DisparityObjective(k), e.CompasOptions(k))
	if err != nil {
		return core.Result{}, err
	}
	e.mu.Lock()
	e.compasAtK[k] = res
	e.mu.Unlock()
	return res, nil
}

// LogDiscDCA trains (or returns the memoized) log-discounted disparity
// vector on the training cohort (points 0.1..0.5, the Figure 4c setting).
func (e *Env) LogDiscDCA() (core.Result, error) {
	e.mu.Lock()
	if e.logDiscRes != nil {
		res := *e.logDiscRes
		e.mu.Unlock()
		return res, nil
	}
	e.mu.Unlock()
	d, err := e.Train()
	if err != nil {
		return core.Result{}, err
	}
	res, err := core.Run(d, e.SchoolScorer(), core.LogDiscountedDisparity(0.1, 0.5), e.SchoolOptions(0.1))
	if err != nil {
		return core.Result{}, err
	}
	e.mu.Lock()
	e.logDiscRes = &res
	e.mu.Unlock()
	return res, nil
}
