package experiments

import (
	"fairrank/internal/metrics"
	"fairrank/internal/report"
)

// AblationReferee evaluates the Table I bonus vector under the external
// rank-fairness measures of Yang & Stoyanovich (the paper's reference [3]
// and the source of its log-discounting): rND, rKL and rRD per binary
// fairness attribute, before and after compensation, on the test cohort.
// A vector trained purely on the disparity objective should also shrink
// these independent referees.
func AblationReferee(env *Env) (Renderable, error) {
	const k = 0.05
	testEval, err := env.TestEval()
	if err != nil {
		return nil, err
	}
	res, err := env.DCAAtK(k)
	if err != nil {
		return nil, err
	}
	test := testEval.Dataset()
	ys := metrics.YangStoyanovich{Points: metrics.DefaultPoints(0.1, 1)}
	before := testEval.Order(nil)
	after := testEval.Order(res.Bonus)

	t := &report.Table{
		Title:   "Ablation: external referees (Yang & Stoyanovich rND/rKL/rRD), test cohort",
		Headers: []string{"attribute", "rND before", "rND after", "rKL before", "rKL after", "rRD before", "rRD after"},
	}
	for _, col := range schoolBinaryCols {
		name := test.FairNames()[col]
		var vals []float64
		for _, pair := range []struct {
			f     func(order []int) (float64, error)
			order []int
		}{
			{func(o []int) (float64, error) { return ys.RND(test, o, col) }, before},
			{func(o []int) (float64, error) { return ys.RND(test, o, col) }, after},
			{func(o []int) (float64, error) { return ys.RKL(test, o, col) }, before},
			{func(o []int) (float64, error) { return ys.RKL(test, o, col) }, after},
			{func(o []int) (float64, error) { return ys.RRD(test, o, col) }, before},
			{func(o []int) (float64, error) { return ys.RRD(test, o, col) }, after},
		} {
			v, err := pair.f(pair.order)
			if err != nil {
				return nil, err
			}
			vals = append(vals, v)
		}
		t.AddFloatRow(name, vals...)
	}
	return t, nil
}
