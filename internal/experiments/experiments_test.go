package experiments

import (
	"strings"
	"testing"

	"fairrank/internal/metrics"
	"fairrank/internal/synth"
)

// tinyConfig keeps the smoke tests fast: small cohorts, short sweeps.
func tinyConfig() Config {
	cfg := QuickConfig()
	cfg.SchoolN = 8000
	cfg.KSweep = []float64{0.05, 0.3}
	cfg.WSweep = []float64{0.5, 1}
	cfg.CapSweep = []float64{0, 10}
	compas := synth.DefaultCompasConfig()
	compas.N = 4000
	cfg.Compas = compas
	return cfg
}

// TestAllExperimentsRunAndRender executes every registered experiment on a
// tiny environment and checks that it renders non-empty output — the
// regression net for the whole harness.
func TestAllExperimentsRunAndRender(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the full experiment registry")
	}
	env := NewEnv(tinyConfig())
	for _, e := range All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			r, err := e.Run(env)
			if err != nil {
				t.Fatalf("%s: %v", e.ID, err)
			}
			var sb strings.Builder
			if err := r.Render(&sb); err != nil {
				t.Fatalf("render %s: %v", e.ID, err)
			}
			if len(strings.TrimSpace(sb.String())) == 0 {
				t.Errorf("%s rendered empty output", e.ID)
			}
		})
	}
}

func TestRegistryLookup(t *testing.T) {
	if _, err := Lookup("table1"); err != nil {
		t.Errorf("table1 missing: %v", err)
	}
	if _, err := Lookup("nope"); err == nil {
		t.Error("unknown id: expected error")
	}
	ids := IDs()
	if len(ids) != len(All()) {
		t.Errorf("IDs() has %d entries, registry %d", len(ids), len(All()))
	}
	seen := make(map[string]bool)
	for _, id := range ids {
		if seen[id] {
			t.Errorf("duplicate experiment id %q", id)
		}
		seen[id] = true
	}
}

// TestTable1ShapeMatchesPaper asserts the headline reproduction targets on
// a mid-size cohort: baseline norm ≈ 0.37, DCA norm < 0.1 on train and
// test, all baseline dimensions negative, refinement no worse than core.
func TestTable1ShapeMatchesPaper(t *testing.T) {
	if testing.Short() {
		t.Skip("trains DCA")
	}
	cfg := tinyConfig()
	cfg.SchoolN = 20000
	env := NewEnv(cfg)
	r, err := Table1(env)
	if err != nil {
		t.Fatal(err)
	}
	res := r.(*Table1Result)
	if n := metrics.Norm(res.BaselineTrain); n < 0.3 || n > 0.45 {
		t.Errorf("baseline train norm = %.3f, want ≈ 0.37", n)
	}
	for j, v := range res.BaselineTrain {
		if v >= 0 {
			t.Errorf("baseline disparity[%d] = %v, want negative", j, v)
		}
	}
	if n := metrics.Norm(res.DCATrain); n > 0.1 {
		t.Errorf("DCA train norm = %.3f, want < 0.1", n)
	}
	if n := metrics.Norm(res.DCATest); n > 0.12 {
		t.Errorf("DCA test norm = %.3f, want < 0.12", n)
	}
	if metrics.Norm(res.DCATrain) > metrics.Norm(res.CoreTrain)+0.02 {
		t.Errorf("refinement (%v) materially worse than core (%v)",
			metrics.Norm(res.DCATrain), metrics.Norm(res.CoreTrain))
	}
}

// TestFig4Crossover pins the paper's Figure 4b/4c relationship: the
// vector trained for k=5% beats the log-discounted vector exactly at
// k=5%, while the log-discounted vector wins on the (discount-weighted)
// average across k.
func TestFig4Crossover(t *testing.T) {
	if testing.Short() {
		t.Skip("trains two DCA vectors")
	}
	cfg := tinyConfig()
	cfg.SchoolN = 30000
	cfg.KSweep = []float64{0.05, 0.15, 0.25, 0.35, 0.5}
	env := NewEnv(cfg)
	testEval, err := env.TestEval()
	if err != nil {
		t.Fatal(err)
	}
	atK, err := env.DCAAtK(0.05)
	if err != nil {
		t.Fatal(err)
	}
	logDisc, err := env.LogDiscDCA()
	if err != nil {
		t.Fatal(err)
	}
	norm := func(b []float64, k float64) float64 {
		d, err := testEval.Disparity(b, k)
		if err != nil {
			t.Fatal(err)
		}
		return metrics.Norm(d)
	}
	if a, l := norm(atK.Bonus, 0.05), norm(logDisc.Bonus, 0.05); a >= l {
		t.Errorf("at k=0.05 the point-trained vector (%.3f) should beat log-discounted (%.3f)", a, l)
	}
	var sumAtK, sumLog float64
	for _, k := range []float64{0.15, 0.25, 0.35, 0.5} {
		sumAtK += norm(atK.Bonus, k)
		sumLog += norm(logDisc.Bonus, k)
	}
	if sumLog >= sumAtK {
		t.Errorf("away from the trained k, log-discounted (avg %.3f) should beat point-trained (avg %.3f)",
			sumLog/4, sumAtK/4)
	}
}

func TestSampleSizeFor(t *testing.T) {
	if got := SampleSizeFor(0.05, 0.10); got != 500 {
		t.Errorf("default case = %d, want the paper's 500", got)
	}
	if got := SampleSizeFor(0.01, 0.10); got != 2500 {
		t.Errorf("small k = %d, want 2500", got)
	}
	if got := SampleSizeFor(0.5, 0.005); got != 10000 {
		t.Errorf("rare group = %d, want 10000 (capped at the dataset by core)", got)
	}
}

func TestEnvMemoization(t *testing.T) {
	env := NewEnv(tinyConfig())
	a, err := env.Train()
	if err != nil {
		t.Fatal(err)
	}
	b, err := env.Train()
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("Train() not memoized")
	}
	r1, err := env.DCAAtK(0.05)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := env.DCAAtK(0.05)
	if err != nil {
		t.Fatal(err)
	}
	if &r1.Bonus[0] != &r2.Bonus[0] {
		t.Error("DCAAtK not memoized")
	}
}
