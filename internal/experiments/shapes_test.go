package experiments

import (
	"strings"
	"testing"

	"fairrank/internal/baselines"
	"fairrank/internal/core"
	"fairrank/internal/metrics"
)

// Shape-regression tests: each pins one qualitative claim of the paper
// that the corresponding experiment must keep reproducing.

func shapeEnv(t *testing.T) *Env {
	t.Helper()
	if testing.Short() {
		t.Skip("shape tests train DCA")
	}
	cfg := tinyConfig()
	cfg.SchoolN = 20000
	return NewEnv(cfg)
}

// Figure 6's claim: the single quota reduces disparity but not to DCA's
// level at the same k.
func TestQuotaWorseThanDCA(t *testing.T) {
	env := shapeEnv(t)
	testEval, err := env.TestEval()
	if err != nil {
		t.Fatal(err)
	}
	const k = 0.05
	baseline, err := testEval.Disparity(nil, k)
	if err != nil {
		t.Fatal(err)
	}
	res, err := env.DCAAtK(k)
	if err != nil {
		t.Fatal(err)
	}
	dca, err := testEval.Disparity(res.Bonus, k)
	if err != nil {
		t.Fatal(err)
	}
	quotaNorm := quotaNormAt(t, env, k)
	if quotaNorm >= metrics.Norm(baseline) {
		t.Errorf("quota norm %.3f should beat baseline %.3f", quotaNorm, metrics.Norm(baseline))
	}
	if metrics.Norm(dca) >= quotaNorm {
		t.Errorf("DCA norm %.3f should beat the quota %.3f", metrics.Norm(dca), quotaNorm)
	}
}

// quotaNormAt computes the Figure 6 quota selection directly (union
// set-aside sized at the disadvantaged population share) and returns its
// disparity norm at k.
func quotaNormAt(t *testing.T, env *Env, k float64) float64 {
	t.Helper()
	test, err := env.Test()
	if err != nil {
		t.Fatal(err)
	}
	testEval, err := env.TestEval()
	if err != nil {
		t.Fatal(err)
	}
	member := make([]bool, test.N())
	for _, c := range schoolBinaryCols {
		col := test.FairColumn(c)
		for i, v := range col {
			if v > 0.5 {
				member[i] = true
			}
		}
	}
	var union int
	for _, m := range member {
		if m {
			union++
		}
	}
	q := baselines.Quota{
		Reserve:    float64(union) / float64(test.N()),
		MemberCols: schoolBinaryCols,
	}
	sel, err := q.Select(test, testEval.BaseScores(), k)
	if err != nil {
		t.Fatal(err)
	}
	return metrics.Norm(metrics.Disparity(test, sel))
}

// Figure 5's claim: disparity decreases (weakly) as the bonus cap rises,
// then plateaus.
func TestCapsMonotone(t *testing.T) {
	env := shapeEnv(t)
	train, err := env.Train()
	if err != nil {
		t.Fatal(err)
	}
	testEval, err := env.TestEval()
	if err != nil {
		t.Fatal(err)
	}
	points := metrics.DefaultPoints(0.01, 0.05)
	obj := core.LogDiscounted{Points: points, Metric: core.DisparityMetric{}}
	ld := metrics.LogDiscount{Points: points}
	var prev float64 = 10
	for _, capVal := range []float64{2.5, 7.5, 15} {
		opts := env.SchoolOptions(0.01)
		opts.MaxBonus = capVal
		res, err := core.Run(train, env.SchoolScorer(), obj, opts)
		if err != nil {
			t.Fatal(err)
		}
		disc, err := testEval.LogDiscounted(res.Bonus, ld)
		if err != nil {
			t.Fatal(err)
		}
		norm := metrics.Norm(disc)
		if norm > prev+0.03 {
			t.Errorf("cap %v worsened discounted norm: %.3f after %.3f", capVal, norm, prev)
		}
		for _, b := range res.Bonus {
			if b > capVal {
				t.Errorf("bonus %v exceeds cap %v", b, capVal)
			}
		}
		prev = norm
	}
}

// Table II's claim: DCA beats Multinomial FA*IR, and both beat the
// baseline.
func TestTable2Ordering(t *testing.T) {
	env := shapeEnv(t)
	r, err := Table2(env)
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := r.Render(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "passes all prefixes") {
		t.Errorf("FA*IR verification did not pass:\n%s", out)
	}
}
