package experiments

import (
	"fmt"
	"sort"
)

// Runner executes one experiment against an environment.
type Runner func(*Env) (Renderable, error)

// Entry describes a registered experiment.
type Entry struct {
	ID    string
	Title string
	Run   Runner
}

var registry = []Entry{
	{"table1", "Table I: school disparity before/after Core DCA and DCA", Table1},
	{"table2", "Table II: DCA vs Multinomial FA*IR on a single district", Table2},
	{"fig1", "Figure 1: nDCG@k across k", Fig1},
	{"fig2", "Figure 2: nDCG and disparity norm vs bonus proportion", Fig2},
	{"fig3", "Figure 3: per-dimension disparity vs bonus proportion", Fig3},
	{"fig4a", "Figure 4a: disparity across k, k known in advance", Fig4a},
	{"fig4b", "Figure 4b: disparity across k, vector trained at k=5%", Fig4b},
	{"fig4c", "Figure 4c: disparity across k, log-discounted training", Fig4c},
	{"fig5", "Figure 5: log-discounted disparity vs maximum bonus cap", Fig5},
	{"fig6", "Figure 6: single-quota baseline across k", Fig6},
	{"fig7", "Figure 7: accuracy vs disparity, DCA and (Δ+2)", Fig7},
	{"fig8a", "Figure 8a: Core DCA without refinement across k", Fig8a},
	{"fig8b", "Figure 8b: DCA wall-clock time across k", Fig8b},
	{"fig9", "Figure 9: disparity vs disparate-impact objectives", Fig9},
	{"fig10a", "Figure 10a: COMPAS disparity across k, per-k bonus", Fig10a},
	{"fig10b", "Figure 10b: COMPAS FPR differences across k", Fig10b},
	{"fig10c", "Figure 10c: COMPAS disparity, one log-discounted vector", Fig10c},
	{"exposure", "Section VI-C4: exposure/DDP before and after DCA", Exposure},
	{"ablation-optim", "Ablation: DCA vs Nelder-Mead re-ranking cost", AblationOptimizer},
	{"ablation-sample", "Ablation: sample size vs achieved disparity and cost", AblationSampleSize},
	{"ablation-stability", "Ablation: bonus-vector stability across seeds", AblationStability},
	{"ablation-estimator", "Ablation: Theorem 4.5 sample-disparity estimator check", AblationEstimator},
	{"ablation-drift", "Ablation: policy choices over drifting school years", AblationDrift},
	{"ablation-referee", "Ablation: external rND/rKL/rRD referees on the Table I vector", AblationReferee},
	{"ablation-matching", "Ablation: policies inside deferred-acceptance matching", AblationMatching},
	{"ablation-convergence", "Ablation: DCA convergence trace across stages", AblationConvergence},
}

// All returns the registered experiments in presentation order.
func All() []Entry {
	return append([]Entry(nil), registry...)
}

// IDs returns the sorted experiment identifiers.
func IDs() []string {
	ids := make([]string, len(registry))
	for i, e := range registry {
		ids[i] = e.ID
	}
	sort.Strings(ids)
	return ids
}

// Lookup finds an experiment by id.
func Lookup(id string) (Entry, error) {
	for _, e := range registry {
		if e.ID == id {
			return e, nil
		}
	}
	return Entry{}, fmt.Errorf("experiments: unknown experiment %q (known: %v)", id, IDs())
}
