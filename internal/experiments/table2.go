package experiments

import (
	"fairrank/internal/baselines"
	"fairrank/internal/core"
	"fairrank/internal/metrics"
	"fairrank/internal/rank"
	"fairrank/internal/report"
)

// Table2 reproduces Table II: DCA against Multinomial FA*IR on a single
// 2,500-student district, over the three binary fairness attributes
// (Low-Income, ELL, Special-Ed). FA*IR needs non-overlapping groups, so —
// following the paper and Zehlike et al.'s suggestion — the three
// most-discriminated cells of the Cartesian attribute product become the
// protected groups.
func Table2(env *Env) (Renderable, error) {
	const k, alpha = 0.05, 0.10
	district, err := env.District()
	if err != nil {
		return nil, err
	}
	view := district.WithFairColumns(schoolBinaryCols)
	scorer := env.SchoolScorer()
	ev := core.NewEvaluator(view, scorer, rank.Beneficial)
	tau, err := rank.SelectCount(view.N(), k)
	if err != nil {
		return nil, err
	}

	baseline, err := ev.Disparity(nil, k)
	if err != nil {
		return nil, err
	}

	// DCA on the district, binary attributes only (like Table II's rubric).
	opts := env.SchoolOptions(k)
	dcaRes, err := core.Run(view, scorer, core.DisparityObjective(k), opts)
	if err != nil {
		return nil, err
	}
	dcaDisp, err := ev.Disparity(dcaRes.Bonus, k)
	if err != nil {
		return nil, err
	}

	// Multinomial FA*IR: protected groups = 3 most-discriminated cells of
	// the attribute Cartesian product under the uncorrected selection.
	memberships := make([][]bool, view.N())
	for i := range memberships {
		m := make([]bool, view.NumFair())
		for j := range m {
			m[j] = view.Fair(i, j) > 0.5
		}
		memberships[i] = m
	}
	baseSel, err := ev.Select(nil, k)
	if err != nil {
		return nil, err
	}
	selected := make([]bool, view.N())
	for _, i := range baseSel {
		selected[i] = true
	}
	cells := baselines.RankCellsByDisparity(memberships, selected)
	if len(cells) > 3 {
		cells = cells[:3]
	}
	groups := baselines.SubgroupAssignment(memberships, cells)

	// Population proportions per group (group 0 = everyone else).
	props := make([]float64, len(cells)+1)
	for _, g := range groups {
		props[g] += 1 / float64(len(groups))
	}
	fa := baselines.FAStarIR{Proportions: props, Alpha: alpha}

	origOrder := ev.Order(nil)
	groupsInOrder := make([]int, len(origOrder))
	for pos, obj := range origOrder {
		groupsInOrder[pos] = groups[obj]
	}
	positions, err := fa.ReRank(groupsInOrder, tau)
	if err != nil {
		return nil, err
	}
	faSel := make([]int, len(positions))
	faGroups := make([]int, len(positions))
	for r, p := range positions {
		faSel[r] = origOrder[p]
		faGroups[r] = groupsInOrder[p]
	}
	failAt, err := fa.Verify(faGroups)
	if err != nil {
		return nil, err
	}
	faDisp := metrics.Disparity(view, faSel)

	// Binomial FA*IR protecting Low-Income only — the single-group
	// predecessor, shown to document why the paper needs multi-dimensional
	// methods: the unprotected dimensions stay disparate.
	liCol := view.FairIndex("Low-Income")
	liShare := view.FairCentroid()[liCol]
	binFair := baselines.FAIR{P: liShare, Alpha: alpha}
	_, binM, err := binFair.AdjustAlpha(tau)
	if err != nil {
		return nil, err
	}
	protectedInOrder := make([]bool, len(origOrder))
	for pos, obj := range origOrder {
		protectedInOrder[pos] = view.Fair(obj, liCol) > 0.5
	}
	binPositions, err := binFair.ReRank(protectedInOrder, tau, binM)
	if err != nil {
		return nil, err
	}
	binSel := make([]int, len(binPositions))
	for r, p := range binPositions {
		binSel[r] = origOrder[p]
	}
	binDisp := metrics.Disparity(view, binSel)

	headers := append([]string{""}, view.FairNames()...)
	headers = append(headers, "Norm")
	t := &report.Table{Title: "Table II: DCA vs Multinomial FA*IR (single district, 2,500 students, k=5%)", Headers: headers}
	t.AddFloatRow("Baseline", append(append([]float64(nil), baseline...), metrics.Norm(baseline))...)
	t.Rows = append(t.Rows, append([]string{"Bonus Points"}, floatCellsNoNorm(dcaRes.Bonus)...))
	t.AddFloatRow("DCA", append(append([]float64(nil), dcaDisp...), metrics.Norm(dcaDisp))...)
	t.AddFloatRow("Mult. FA*IR", append(append([]float64(nil), faDisp...), metrics.Norm(faDisp))...)
	t.AddFloatRow("Binom. FA*IR (Low-Inc only)", append(append([]float64(nil), binDisp...), metrics.Norm(binDisp))...)
	if failAt == 0 {
		t.AddRow("FA*IR multinomial test", "passes all prefixes")
	} else {
		t.AddRow("FA*IR multinomial test", "fails at prefix "+report.Float(float64(failAt)))
	}
	return t, nil
}
