package experiments

import (
	"fairrank/internal/core"
	"fairrank/internal/report"
	"fairrank/internal/simulate"
	"fairrank/internal/synth"
)

// AblationDrift simulates eight school years under demographic and bias
// drift (+1%/yr low-income rate, +8%/yr structural penalties) and compares
// three policies: no compensation, a static vector trained once on year-0
// data, and annual retraining — the scenario behind the paper's claim
// that DCA "can be quickly and easily adjusted to new data and scenarios".
func AblationDrift(env *Env) (Renderable, error) {
	const years, k = 8, 0.05
	base := synth.DefaultSchoolConfig()
	base.N = env.Cfg.SchoolN / 4 // yearly cohorts; a quarter keeps 8 years affordable
	if base.N < 2000 {
		base.N = 2000
	}
	base.Seed = env.Cfg.TrainSeed
	gen := simulate.SchoolDrift{Base: base, LowIncomeRateStep: 0.01, PenaltyGrowth: 0.08}

	scorer := env.SchoolScorer()
	opts := env.SchoolOptions(k)
	obj := core.DisparityObjective(k)
	policies := []simulate.Policy{
		simulate.NoPolicy{},
		&simulate.StaticPolicy{Scorer: scorer, Objective: obj, Opts: opts},
		&simulate.RetrainPolicy{Scorer: scorer, Objective: obj, Opts: opts},
	}
	out, err := simulate.Run(gen, scorer, policies, years, k)
	if err != nil {
		return nil, err
	}

	xs := make([]float64, years)
	for y := range xs {
		xs[y] = float64(y)
	}
	s := &report.Series{
		Title: "Ablation: disparity norm over 8 drifting school years (policies trained without look-ahead)",
		XName: "year", X: xs,
	}
	for _, po := range out {
		norms := make([]float64, len(po.Years))
		for i, yr := range po.Years {
			norms[i] = yr.Norm
		}
		s.Add(po.Policy, norms)
	}
	return s, nil
}
