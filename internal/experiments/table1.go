package experiments

import (
	"io"

	"fairrank/internal/core"
	"fairrank/internal/metrics"
	"fairrank/internal/report"
)

// Table1Result reproduces Table I: the disparity vectors of the NYC high
// schools data before and after bonus points, for Core DCA and refined
// DCA, on the training and test cohorts, at the paper's default 5%
// selection.
type Table1Result struct {
	Names         []string
	BaselineTrain []float64
	BaselineTest  []float64

	CoreBonus []float64
	CoreTrain []float64
	CoreTest  []float64

	DCABonus []float64
	DCATrain []float64
	DCATest  []float64
}

// Table1 runs the experiment at k = 5%.
func Table1(env *Env) (Renderable, error) {
	const k = 0.05
	trainEval, err := env.TrainEval()
	if err != nil {
		return nil, err
	}
	testEval, err := env.TestEval()
	if err != nil {
		return nil, err
	}
	res := &Table1Result{Names: trainEval.Dataset().FairNames()}
	if res.BaselineTrain, err = trainEval.Disparity(nil, k); err != nil {
		return nil, err
	}
	if res.BaselineTest, err = testEval.Disparity(nil, k); err != nil {
		return nil, err
	}

	coreRes, err := env.CoreDCAAtK(k)
	if err != nil {
		return nil, err
	}
	res.CoreBonus = core.RoundTo(append([]float64(nil), coreRes.Raw...), 0.5)
	if res.CoreTrain, err = trainEval.Disparity(res.CoreBonus, k); err != nil {
		return nil, err
	}
	if res.CoreTest, err = testEval.Disparity(res.CoreBonus, k); err != nil {
		return nil, err
	}

	dcaRes, err := env.DCAAtK(k)
	if err != nil {
		return nil, err
	}
	res.DCABonus = dcaRes.Bonus
	if res.DCATrain, err = trainEval.Disparity(res.DCABonus, k); err != nil {
		return nil, err
	}
	if res.DCATest, err = testEval.Disparity(res.DCABonus, k); err != nil {
		return nil, err
	}
	return res, nil
}

// Render implements Renderable with the three-section layout of Table I.
func (r *Table1Result) Render(w io.Writer) error {
	headers := append([]string{""}, r.Names...)
	headers = append(headers, "Norm")

	section := func(title string, rows ...[2]interface{}) *report.Table {
		t := &report.Table{Title: title, Headers: headers}
		for _, row := range rows {
			label := row[0].(string)
			vec := row[1].([]float64)
			vals := append(append([]float64(nil), vec...), metrics.Norm(vec))
			t.AddFloatRow(label, vals...)
		}
		return t
	}
	bonusRow := func(t *report.Table, b []float64) {
		cells := append([]float64(nil), b...)
		t.Rows = append(t.Rows, append([]string{"Bonus Points"}, floatCellsNoNorm(cells)...))
	}

	base := section("Baseline Disparity (top 5%)",
		[2]interface{}{"Training", r.BaselineTrain},
		[2]interface{}{"Test", r.BaselineTest},
	)
	coreT := &report.Table{Title: "Core DCA", Headers: headers}
	bonusRow(coreT, r.CoreBonus)
	coreT.AddFloatRow("Training", append(append([]float64(nil), r.CoreTrain...), metrics.Norm(r.CoreTrain))...)
	coreT.AddFloatRow("Test", append(append([]float64(nil), r.CoreTest...), metrics.Norm(r.CoreTest))...)

	dcaT := &report.Table{Title: "DCA (with refinement)", Headers: headers}
	bonusRow(dcaT, r.DCABonus)
	dcaT.AddFloatRow("Training", append(append([]float64(nil), r.DCATrain...), metrics.Norm(r.DCATrain))...)
	dcaT.AddFloatRow("Test", append(append([]float64(nil), r.DCATest...), metrics.Norm(r.DCATest))...)

	return Multi{base, coreT, dcaT}.Render(w)
}

func floatCellsNoNorm(vals []float64) []string {
	cells := make([]string, 0, len(vals)+1)
	for _, v := range vals {
		cells = append(cells, report.Float(v))
	}
	cells = append(cells, "-")
	return cells
}
