package experiments

import (
	"math/rand"
	"sort"

	"fairrank/internal/core"
	"fairrank/internal/matching"
	"fairrank/internal/metrics"
	"fairrank/internal/rank"
	"fairrank/internal/report"
)

// AblationMatching evaluates the three admission policies of the paper's
// motivating scenario inside the actual mechanism — student-proposing
// deferred acceptance over eight selective schools — rather than a fixed
// top-k cut: no intervention, a union set-aside quota sized at the
// disadvantaged population share, and log-discounted DCA bonus points
// (trained once; the matching decides each school's effective k). The
// match is verified stable before disparities are measured.
func AblationMatching(env *Env) (Renderable, error) {
	// Eight selective schools jointly seating 15% of the city's students.
	const numSchools = 8
	train, err := env.Train()
	if err != nil {
		return nil, err
	}
	test, err := env.Test()
	if err != nil {
		return nil, err
	}
	// Cap the city size: DA plus the stability audit is quadratic-ish in
	// students x schools and the experiment does not need 80k students.
	n := test.N()
	if n > 10000 {
		idx := make([]int, 10000)
		for i := range idx {
			idx[i] = i
		}
		test = test.Subset(idx)
		n = test.N()
	}
	capPerSchool := n * 15 / 100 / numSchools

	scorer := env.SchoolScorer()
	ev := core.NewEvaluator(test, scorer, rank.Beneficial)
	base := ev.BaseScores()

	// Bonus vector: trained on the *training* cohort in log-discounted
	// mode, since the matching decides k.
	res, err := core.Run(train, scorer, core.LogDiscountedDisparity(0.05, 0.5), env.SchoolOptions(0.05))
	if err != nil {
		return nil, err
	}
	adjusted := make([]float64, n)
	for i := range adjusted {
		adjusted[i] = base[i]
		for j := 0; j < test.NumFair(); j++ {
			adjusted[i] += test.Fair(i, j) * res.Bonus[j]
		}
	}

	// Preference lists from idiosyncratic tastes; disadvantaged union for
	// quota eligibility.
	rng := rand.New(rand.NewSource(env.Cfg.Seed + 404))
	prefs := make([][]int, n)
	for i := range prefs {
		taste := make([]float64, numSchools)
		for s := range taste {
			taste[s] = rng.NormFloat64()
		}
		order := make([]int, numSchools)
		for s := range order {
			order[s] = s
		}
		sort.Slice(order, func(a, b int) bool { return taste[order[a]] > taste[order[b]] })
		prefs[i] = order
	}
	disadvantaged := make([]bool, n)
	union := 0
	for _, col := range schoolBinaryCols {
		for i := 0; i < n; i++ {
			if test.Fair(i, col) > 0.5 && !disadvantaged[i] {
				disadvantaged[i] = true
				union++
			}
		}
	}
	reserve := capPerSchool * union / n

	type policy struct {
		name     string
		scores   []float64
		reserved int
	}
	policies := []policy{
		{"no intervention", base, 0},
		{"set-aside quota", base, reserve},
		{"DCA bonus points", adjusted, 0},
	}
	headers := append([]string{"policy"}, test.FairNames()...)
	headers = append(headers, "Norm")
	t := &report.Table{
		Title:   "Ablation: admitted-set disparity under deferred acceptance (8 schools, 15% of students seated)",
		Headers: headers,
	}
	for _, p := range policies {
		schools := make([]matching.School, numSchools)
		for s := range schools {
			schools[s] = matching.School{Capacity: capPerSchool, Reserved: p.reserved, Scores: p.scores}
		}
		m, err := matching.DeferredAcceptance(prefs, schools, disadvantaged)
		if err != nil {
			return nil, err
		}
		if st, sc := matching.BlockingPair(prefs, schools, disadvantaged, m); st != -1 {
			return nil, errUnstable(p.name, st, sc)
		}
		var admitted []int
		for i, s := range m.Assigned {
			if s >= 0 {
				admitted = append(admitted, i)
			}
		}
		disp := metrics.Disparity(test, admitted)
		t.AddFloatRow(p.name, append(append([]float64(nil), disp...), metrics.Norm(disp))...)
	}
	return t, nil
}

type unstableError struct {
	policy          string
	student, school int
}

func errUnstable(policy string, student, school int) error {
	return unstableError{policy: policy, student: student, school: school}
}

func (e unstableError) Error() string {
	return "experiments: unstable match under policy " + e.policy
}
