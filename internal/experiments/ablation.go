package experiments

import (
	"time"

	"fairrank/internal/core"
	"fairrank/internal/metrics"
	"fairrank/internal/optimize"
	"fairrank/internal/report"
)

// AblationOptimizer reproduces the argument of the paper's challenge #4:
// derivative-free optimizers must re-rank the whole dataset at every
// objective evaluation, while DCA touches only small samples. It runs
// Nelder-Mead on the exact full-dataset objective
// norm(disparity@5%) and compares evaluations, full-dataset-re-rank
// equivalents, wall-clock time and achieved disparity against DCA.
func AblationOptimizer(env *Env) (Renderable, error) {
	const k = 0.05
	trainEval, err := env.TrainEval()
	if err != nil {
		return nil, err
	}
	n := trainEval.Dataset().N()
	dims := trainEval.Dataset().NumFair()

	// Nelder-Mead over the full-dataset objective.
	nmStart := time.Now()
	obj := func(b []float64) float64 {
		disp, err := trainEval.Disparity(b, k)
		if err != nil {
			return 1
		}
		return metrics.Norm(disp)
	}
	nm := optimize.NelderMead(obj, make([]float64, dims), optimize.NelderMeadOptions{
		MaxIterations: 300,
		InitialStep:   5,
		Tolerance:     1e-4,
		Lower:         make([]float64, dims),
	})
	nmElapsed := time.Since(nmStart)
	nmBonus := core.RoundTo(append([]float64(nil), nm.X...), 0.5)
	nmDisp, err := trainEval.Disparity(nmBonus, k)
	if err != nil {
		return nil, err
	}

	// DCA with the paper's settings.
	dcaRes, err := env.DCAAtK(k)
	if err != nil {
		return nil, err
	}
	dcaDisp, err := trainEval.Disparity(dcaRes.Bonus, k)
	if err != nil {
		return nil, err
	}
	opts := env.SchoolOptions(k)
	// Objects touched per DCA run, expressed as full-dataset re-rank
	// equivalents.
	dcaEquiv := float64(dcaRes.Steps*opts.SampleSize) / float64(n)

	t := &report.Table{
		Title:   "Ablation: DCA vs derivative-free optimization (Nelder-Mead), disparity@5%, training cohort",
		Headers: []string{"method", "disparity-norm", "full-re-rank-equivalents", "wall-clock-s", "converged"},
	}
	t.AddRow("DCA", report.Float(metrics.Norm(dcaDisp)), report.Float(dcaEquiv), report.Float(dcaRes.Elapsed.Seconds()), "n/a")
	conv := "false"
	if nm.Converged {
		conv = "true"
	}
	t.AddRow("Nelder-Mead", report.Float(metrics.Norm(nmDisp)), report.Float(float64(nm.Evaluations)), report.Float(nmElapsed.Seconds()), conv)
	return t, nil
}
