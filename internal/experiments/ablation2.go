package experiments

import (
	"fmt"
	"math"

	"fairrank/internal/core"
	"fairrank/internal/metrics"
	"fairrank/internal/rank"
	"fairrank/internal/report"
	"fairrank/internal/sample"
)

// AblationSampleSize sweeps DCA's sample size at k = 5% and reports the
// achieved test disparity and the training wall-clock, validating the
// paper's claim that accuracy is governed by the sample-size bound
// max(1/k, 1/r) — beyond it, larger samples buy time, not fairness.
func AblationSampleSize(env *Env) (Renderable, error) {
	const k = 0.05
	train, err := env.Train()
	if err != nil {
		return nil, err
	}
	testEval, err := env.TestEval()
	if err != nil {
		return nil, err
	}
	sizes := []float64{50, 100, 250, 500, 1000, 2000}
	s := &report.Series{Title: "Ablation: DCA sample size vs achieved disparity (test cohort, k=5%)", XName: "sample-size", X: sizes}
	var norms, secs []float64
	for _, size := range sizes {
		opts := env.SchoolOptions(k)
		opts.SampleSize = int(size)
		res, err := core.Run(train, env.SchoolScorer(), core.DisparityObjective(k), opts)
		if err != nil {
			return nil, err
		}
		disp, err := testEval.Disparity(res.Bonus, k)
		if err != nil {
			return nil, err
		}
		norms = append(norms, metrics.Norm(disp))
		secs = append(secs, res.Elapsed.Seconds())
	}
	s.Add("disparity-norm", norms)
	s.Add("train-seconds", secs)
	return s, nil
}

// AblationStability quantifies the seed-to-seed variability of Core DCA vs
// refined DCA across an 8-seed ensemble — the Section VI-A5 claim that the
// refinement pass produces smoother, more consistent vectors.
func AblationStability(env *Env) (Renderable, error) {
	const k, runs = 0.05, 8
	train, err := env.Train()
	if err != nil {
		return nil, err
	}
	names := train.FairNames()
	opts := env.SchoolOptions(k)

	refined, err := core.Ensemble(train, env.SchoolScorer(), core.DisparityObjective(k), opts, runs)
	if err != nil {
		return nil, err
	}
	coreOpts := opts
	coreOpts.RefineSteps = 0
	unrefined, err := core.Ensemble(train, env.SchoolScorer(), core.DisparityObjective(k), coreOpts, runs)
	if err != nil {
		return nil, err
	}

	t := &report.Table{
		Title:   fmt.Sprintf("Ablation: bonus-vector stability across %d seeds (k=5%%)", runs),
		Headers: append([]string{""}, names...),
	}
	t.AddFloatRow("Core DCA mean", unrefined.Mean...)
	t.AddFloatRow("Core DCA std", unrefined.Std...)
	t.AddFloatRow("DCA mean", refined.Mean...)
	t.AddFloatRow("DCA std", refined.Std...)
	return t, nil
}

// AblationEstimator validates Theorem 4.5 empirically: the sample disparity
// of the top-5% selection is an unbiased estimator of the full-dataset
// disparity, with standard error shrinking as the sample grows. Reported
// for the Low-Income dimension on the training cohort, 200 samples per
// size.
func AblationEstimator(env *Env) (Renderable, error) {
	const k, trials = 0.05, 200
	train, err := env.Train()
	if err != nil {
		return nil, err
	}
	trainEval, err := env.TrainEval()
	if err != nil {
		return nil, err
	}
	truth, err := trainEval.Disparity(nil, k)
	if err != nil {
		return nil, err
	}
	base := trainEval.BaseScores()

	sizes := []float64{100, 300, 500, 1000, 3000}
	s := &report.Series{
		Title: fmt.Sprintf("Ablation: sample disparity as estimator (Low-Income, truth=%s, %d samples/size)",
			report.Float(truth[0]), trials),
		XName: "sample-size", X: sizes,
	}
	var means, stds []float64
	smp := sample.New(train.N(), env.Cfg.Seed)
	obj := core.DisparityObjective(k)
	zero := make([]float64, train.NumFair())
	for _, size := range sizes {
		n := int(size)
		eff := make([]float64, n)
		var sum, sumSq float64
		for tr := 0; tr < trials; tr++ {
			idx := smp.Uniform(n)
			rank.EffectiveScores(train, base, idx, zero, rank.Beneficial, eff)
			v, err := obj.Eval(train, idx, eff)
			if err != nil {
				return nil, err
			}
			sum += v[0]
			sumSq += v[0] * v[0]
		}
		mean := sum / trials
		variance := (sumSq - trials*mean*mean) / (trials - 1)
		if variance < 0 {
			variance = 0
		}
		means = append(means, mean)
		stds = append(stds, math.Sqrt(variance))
	}
	s.Add("estimate-mean", means)
	s.Add("estimate-std", stds)
	return s, nil
}
