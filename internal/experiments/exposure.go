package experiments

import (
	"fairrank/internal/core"
	"fairrank/internal/metrics"
	"fairrank/internal/rank"
	"fairrank/internal/report"
)

// Exposure reproduces Section VI-C4: the DDP (demographic disparity of
// per-capita exposure) of the school ranking before and after a
// log-discounted DCA vector, computed without the ENI attribute (DDP does
// not handle non-binary attributes). The paper reports a roughly five-fold
// DDP reduction (0.00899 -> 0.00166).
func Exposure(env *Env) (Renderable, error) {
	train, err := env.Train()
	if err != nil {
		return nil, err
	}
	test, err := env.Test()
	if err != nil {
		return nil, err
	}
	trainView := train.WithFairColumns(schoolBinaryCols)
	testView := test.WithFairColumns(schoolBinaryCols)
	scorer := env.SchoolScorer()

	obj := core.LogDiscounted{Points: metrics.DefaultPoints(0.1, 0.5), Metric: core.DisparityMetric{}}
	res, err := core.Run(trainView, scorer, obj, env.SchoolOptions(0.1))
	if err != nil {
		return nil, err
	}

	ev := core.NewEvaluator(testView, scorer, rank.Beneficial)
	allCols := make([]int, testView.NumFair())
	for j := range allCols {
		allCols[j] = j
	}
	before, err := metrics.DDP(testView, ev.Order(nil), allCols)
	if err != nil {
		return nil, err
	}
	after, err := metrics.DDP(testView, ev.Order(res.Bonus), allCols)
	if err != nil {
		return nil, err
	}

	t := &report.Table{Title: "Exposure (Section VI-C4): DDP before/after log-discounted DCA (test cohort, no ENI)",
		Headers: []string{"", "DDP"}}
	t.AddRow("Baseline", report.Float6(before))
	t.AddRow("DCA", report.Float6(after))
	if after > 0 {
		t.AddRow("Reduction factor", report.Float(before/after))
	}
	vec := &report.Table{Title: "Bonus vector", Headers: testView.FairNames()}
	cells := make([]string, len(res.Bonus))
	for j, b := range res.Bonus {
		cells[j] = report.Float(b)
	}
	vec.AddRow(cells...)
	return Multi{t, vec}, nil
}
