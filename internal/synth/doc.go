// Package synth generates the two evaluation datasets of the paper.
//
// The originals are not distributable: the NYC school records are
// IRB-protected student data obtained through a NYC DOE data request, and
// the ProPublica COMPAS extract is not bundled here. Both generators
// therefore synthesize populations that reproduce the published joint
// structure — the demographic marginals, the correlation between fairness
// attributes and ranking scores, and (after calibration, verified in the
// package tests) the uncorrected disparity vectors the paper reports — so
// every experiment exercises the same code paths on the same statistical
// shape. See DESIGN.md for the substitution rationale.
package synth
