package synth

import (
	"fmt"
	"math"
	"math/rand"

	"fairrank/internal/dataset"
	"fairrank/internal/stats"
)

// School fairness attribute names, in dataset column order.
const (
	SchoolLowIncome = "Low-Income"
	SchoolELL       = "ELL"
	SchoolENI       = "ENI"
	SchoolSpecialEd = "Special-Ed"
)

// SchoolConfig parameterizes the NYC-schools-like cohort generator.
//
// Each student has a latent academic ability; observed GPA and state test
// scores are the ability plus subject noise minus structural penalties tied
// to the fairness attributes. The penalties are what DCA's bonus points
// should recover: a generator penalty of ~11 points for English learners
// should yield a trained ELL bonus of ~11 points, which is exactly the
// shape of Table I.
type SchoolConfig struct {
	N    int   // students per cohort (paper: ~80,000 7th graders)
	Seed int64 // cohort seed; different seeds = different school years

	// Demographics.
	LowIncomeRate     float64 // P(low income), paper: 70%
	ELLGivenLowIncome float64 // P(English learner | low income)
	ELLGivenOther     float64 // P(English learner | not low income)
	SpEdGivenLow      float64 // P(special education | low income)
	SpEdGivenOther    float64 // P(special education | not low income)

	// ENI (Economic Need Index of the student's current school) is a
	// truncated normal in [0,1] whose mean depends on low-income status:
	// poor students overwhelmingly attend high-poverty schools.
	ENIMeanLowIncome float64
	ENIMeanOther     float64
	ENISD            float64

	// ENILevels rounds the drawn ENI onto a grid of this many values in
	// [0,1] (levels-1 equal steps), mirroring how the real index is
	// published: NYC reports a school's ENI to two decimal places, and a
	// student inherits their school's value, so the attribute takes a few
	// hundred distinct values at most — never 80,000. The grid is also
	// what makes the combo-run merge ranking effective, since the number
	// of distinct fairness rows bounds the run count. 0 or 1 disables
	// rounding (continuous ENI); negative is rejected.
	ENILevels int

	// Score model, on the 0-100 grading scale.
	BaseMean  float64 // population mean of GPA/test before penalties
	AbilitySD float64 // spread of the shared latent ability
	NoiseSD   float64 // per-subject (GPA vs test) noise

	// Structural penalties subtracted from both GPA and test scores. The
	// ENI penalty is per unit of ENI. These are the ground-truth quantities
	// the bonus points should compensate.
	PenaltyLowIncome float64
	PenaltyELL       float64
	PenaltySpecialEd float64
	PenaltyENI       float64

	// TailFactor scales the penalties up for above-average students:
	// effective penalty = penalty * (1 + TailFactor * max(ability, 0) in
	// standard units). This models disadvantage compounding toward the top
	// of the distribution (selective screens, access to enrichment), and
	// it is what makes the required compensation depend on the selection
	// fraction k — the effect behind the paper's Figure 4b, where a vector
	// trained at k = 5% degrades at other k.
	TailFactor float64
}

// DefaultSchoolConfig returns the calibrated configuration: with the
// paper's ranking function f = 0.55*GPA + 0.45*Test and a 5% selection it
// reproduces the Table I baseline disparity vector
// (≈ -0.25, -0.11, -0.18, -0.19; norm ≈ 0.37).
func DefaultSchoolConfig() SchoolConfig {
	return SchoolConfig{
		N:                 80000,
		Seed:              2017,
		LowIncomeRate:     0.70,
		ELLGivenLowIncome: 0.135,
		ELLGivenOther:     0.045,
		SpEdGivenLow:      0.22,
		SpEdGivenOther:    0.15,
		ENIMeanLowIncome:  0.74,
		ENIMeanOther:      0.46,
		ENISD:             0.22,
		ENILevels:         101, // hundredths, like the published index

		BaseMean:         76,
		AbilitySD:        10,
		NoiseSD:          4,
		PenaltyLowIncome: 0.7,
		PenaltyELL:       8.5,
		PenaltySpecialEd: 8.5,
		PenaltyENI:       8.5,
		TailFactor:       0.25,
	}
}

// SchoolScoreWeights is the paper's admission rubric over the generated
// score columns {GPA, TestScores}: f = 0.55*GPA + 0.45*TestScores.
func SchoolScoreWeights() []float64 { return []float64{0.55, 0.45} }

// GenerateSchool synthesizes one cohort. Fairness columns are, in order:
// Low-Income {0,1}, ELL {0,1}, ENI [0,1], Special-Ed {0,1}. Score columns
// are GPA and TestScores on [0,100].
func GenerateSchool(cfg SchoolConfig) (*dataset.Dataset, error) {
	if cfg.N <= 0 {
		return nil, fmt.Errorf("synth: school cohort size %d", cfg.N)
	}
	if cfg.LowIncomeRate < 0 || cfg.LowIncomeRate > 1 {
		return nil, fmt.Errorf("synth: low income rate %v outside [0,1]", cfg.LowIncomeRate)
	}
	if cfg.ENILevels < 0 {
		return nil, fmt.Errorf("synth: ENI levels %d is negative", cfg.ENILevels)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	b := dataset.NewBuilder(
		[]string{"GPA", "TestScores"},
		[]string{SchoolLowIncome, SchoolELL, SchoolENI, SchoolSpecialEd},
	)
	for i := 0; i < cfg.N; i++ {
		li := 0.0
		if rng.Float64() < cfg.LowIncomeRate {
			li = 1
		}
		var eni float64
		if li == 1 {
			eni = stats.Clamp(cfg.ENIMeanLowIncome+cfg.ENISD*rng.NormFloat64(), 0, 1)
		} else {
			eni = stats.Clamp(cfg.ENIMeanOther+cfg.ENISD*rng.NormFloat64(), 0, 1)
		}
		if cfg.ENILevels > 1 {
			steps := float64(cfg.ENILevels - 1)
			eni = math.Round(eni*steps) / steps
		}
		ell := 0.0
		pell := cfg.ELLGivenOther
		if li == 1 {
			pell = cfg.ELLGivenLowIncome
		}
		if rng.Float64() < pell {
			ell = 1
		}
		sped := 0.0
		psped := cfg.SpEdGivenOther
		if li == 1 {
			psped = cfg.SpEdGivenLow
		}
		if rng.Float64() < psped {
			sped = 1
		}
		penalty := cfg.PenaltyLowIncome*li + cfg.PenaltyELL*ell + cfg.PenaltySpecialEd*sped + cfg.PenaltyENI*eni
		z := rng.NormFloat64()
		if z > 0 {
			penalty *= 1 + cfg.TailFactor*z
		}
		ability := cfg.AbilitySD * z
		gpa := stats.Clamp(cfg.BaseMean+ability-penalty+cfg.NoiseSD*rng.NormFloat64(), 0, 100)
		test := stats.Clamp(cfg.BaseMean+ability-penalty+cfg.NoiseSD*rng.NormFloat64(), 0, 100)
		b.Add([]float64{gpa, test}, []float64{li, ell, eni, sped})
	}
	return b.Build()
}

// DistrictConfig returns a single-district variant used for the Multinomial
// FA*IR comparison (Table II): 2,500 students with the district-specific
// demographic mix the paper describes (a district where English learners
// are scarce, so the ELL baseline disparity is small).
func DistrictConfig(seed int64) SchoolConfig {
	cfg := DefaultSchoolConfig()
	cfg.N = 2500
	cfg.Seed = seed
	cfg.ELLGivenLowIncome = 0.05
	cfg.ELLGivenOther = 0.02
	return cfg
}
