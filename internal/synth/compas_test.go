package synth

import (
	"math"
	"testing"

	"fairrank/internal/metrics"
	"fairrank/internal/rank"
	"fairrank/internal/stats"
)

func TestCompasShapeAndMarginals(t *testing.T) {
	cfg := DefaultCompasConfig()
	d, err := GenerateCompas(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if d.N() != 7214 {
		t.Fatalf("N = %d, want 7214", d.N())
	}
	if !d.HasOutcomes() {
		t.Fatal("no outcomes")
	}
	// Race shares approximate the configuration.
	c := d.FairCentroid()
	for j, r := range cfg.Races {
		if math.Abs(c[j]-r.Share) > 0.02 {
			t.Errorf("%s share = %.4f, want ≈ %.4f", r.Name, c[j], r.Share)
		}
	}
	// One-hot: every defendant belongs to exactly one race.
	var total float64
	for _, v := range c {
		total += v
	}
	if math.Abs(total-1) > 1e-9 {
		t.Errorf("race shares sum to %v", total)
	}
}

func TestCompasDecilesAreCoarseAndUniform(t *testing.T) {
	d, err := GenerateCompas(DefaultCompasConfig())
	if err != nil {
		t.Fatal(err)
	}
	col := d.ScoreColumn(0)
	counts := make(map[float64]int)
	for _, v := range col {
		if v != math.Trunc(v) || v < 1 || v > 10 {
			t.Fatalf("decile %v outside 1..10", v)
		}
		counts[v]++
	}
	if len(counts) != 10 {
		t.Fatalf("only %d distinct deciles", len(counts))
	}
	// Norm-referenced: each decile holds ≈ 10% of the population.
	for dec, c := range counts {
		share := float64(c) / float64(d.N())
		if share < 0.08 || share > 0.12 {
			t.Errorf("decile %v holds %.3f of population, want ≈ 0.10", dec, share)
		}
	}
}

func TestCompasBaselineDisparityDirection(t *testing.T) {
	d, err := GenerateCompas(DefaultCompasConfig())
	if err != nil {
		t.Fatal(err)
	}
	scorer := rank.WeightedSum{Weights: CompasScoreWeights()}
	base := scorer.BaseScores(d)
	k, err := rank.SelectCount(d.N(), 0.2)
	if err != nil {
		t.Fatal(err)
	}
	flagged := rank.TopK(base, k)
	disp := metrics.Disparity(d, flagged)
	aa := d.FairIndex(RaceAfricanAmerican)
	ca := d.FairIndex(RaceCaucasian)
	if disp[aa] < 0.10 {
		t.Errorf("African-American disparity = %v, want strongly positive (over-flagged)", disp[aa])
	}
	if disp[ca] > -0.05 {
		t.Errorf("Caucasian disparity = %v, want negative (under-flagged)", disp[ca])
	}
}

func TestCompasFPRGapMatchesProPublicaDirection(t *testing.T) {
	d, err := GenerateCompas(DefaultCompasConfig())
	if err != nil {
		t.Fatal(err)
	}
	scorer := rank.WeightedSum{Weights: CompasScoreWeights()}
	base := scorer.BaseScores(d)
	// Flag deciles > 5 (the ProPublica threshold): top half.
	k, err := rank.SelectCount(d.N(), 0.5)
	if err != nil {
		t.Fatal(err)
	}
	flagged := rank.TopK(base, k)
	aa := d.FairIndex(RaceAfricanAmerican)
	ca := d.FairIndex(RaceCaucasian)
	fprAA, _ := metrics.GroupFPR(d, flagged, aa)
	fprCA, _ := metrics.GroupFPR(d, flagged, ca)
	if fprAA <= fprCA {
		t.Errorf("FPR(AA)=%.3f should exceed FPR(Caucasian)=%.3f", fprAA, fprCA)
	}
	if fprAA-fprCA < 0.1 {
		t.Errorf("FPR gap %.3f too small to reproduce the published finding", fprAA-fprCA)
	}
}

func TestCompasOverallRecidivismRate(t *testing.T) {
	d, err := GenerateCompas(DefaultCompasConfig())
	if err != nil {
		t.Fatal(err)
	}
	var pos int
	for i := 0; i < d.N(); i++ {
		if d.Outcome(i) {
			pos++
		}
	}
	rate := float64(pos) / float64(d.N())
	if rate < 0.38 || rate > 0.52 {
		t.Errorf("recidivism base rate = %.3f, want ≈ 0.45", rate)
	}
}

func TestCompasConfigValidation(t *testing.T) {
	cfg := DefaultCompasConfig()
	cfg.N = 0
	if _, err := GenerateCompas(cfg); err == nil {
		t.Error("N=0: expected error")
	}
	cfg = DefaultCompasConfig()
	cfg.Races[0].Share += 0.5
	if _, err := GenerateCompas(cfg); err == nil {
		t.Error("shares not summing to 1: expected error")
	}
	cfg = DefaultCompasConfig()
	cfg.Races[0].Share = -cfg.Races[0].Share
	if _, err := GenerateCompas(cfg); err == nil {
		t.Error("negative share: expected error")
	}
}

func TestSchoolConfigValidation(t *testing.T) {
	cfg := DefaultSchoolConfig()
	cfg.N = -1
	if _, err := GenerateSchool(cfg); err == nil {
		t.Error("negative N: expected error")
	}
	cfg = DefaultSchoolConfig()
	cfg.LowIncomeRate = 1.2
	if _, err := GenerateSchool(cfg); err == nil {
		t.Error("rate > 1: expected error")
	}
}

// Two cohorts from different seeds are different draws of the same
// distribution: a KS test on the ranking scores must not reject.
func TestSchoolCohortsAreExchangeable(t *testing.T) {
	cfgA := DefaultSchoolConfig()
	cfgA.N = 8000
	cfgA.Seed = 2017
	cfgB := cfgA
	cfgB.Seed = 2018
	a, err := GenerateSchool(cfgA)
	if err != nil {
		t.Fatal(err)
	}
	b, err := GenerateSchool(cfgB)
	if err != nil {
		t.Fatal(err)
	}
	scorer := rank.WeightedSum{Weights: SchoolScoreWeights()}
	_, p := stats.KSTwoSample(scorer.BaseScores(a), scorer.BaseScores(b))
	if p < 0.001 {
		t.Errorf("KS p-value %v rejects cohort exchangeability", p)
	}
	// And the same seed reproduces the identical cohort.
	a2, err := GenerateSchool(cfgA)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if a.Score(i, 0) != a2.Score(i, 0) {
			t.Fatal("same seed produced different cohorts")
		}
	}
}

func TestDistrictConfig(t *testing.T) {
	d, err := GenerateSchool(DistrictConfig(7))
	if err != nil {
		t.Fatal(err)
	}
	if d.N() != 2500 {
		t.Errorf("district size = %d, want 2500", d.N())
	}
	c := d.FairCentroid()
	if c[1] > 0.08 {
		t.Errorf("district ELL share = %.3f, want scarce (< 0.08)", c[1])
	}
}
