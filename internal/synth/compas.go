package synth

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"fairrank/internal/dataset"
)

// RaceSpec describes one racial group of the COMPAS-like population.
type RaceSpec struct {
	Name string
	// Share of the population (all shares must sum to 1).
	Share float64
	// RiskShift displaces the group's latent risk score (standard normal
	// units). It models the upstream bias baked into the proprietary
	// score: positive shifts push the group into higher deciles.
	RiskShift float64
}

// CompasConfig parameterizes the recidivism dataset generator.
//
// Each defendant gets a latent risk z = RiskShift(race) + N(0,1). Decile
// scores 1..10 are the population deciles of z (10% of defendants per
// decile, like the real instrument's norm-referenced scores), which keeps
// the scores as coarse as the paper's Figure 10 discussion requires. The
// ground-truth two-year recidivism outcome is Bernoulli with probability
// logistic(Alpha + Beta * (z - RaceGap*shift)): with RaceGap > 0 the score
// overstates the risk of positively shifted groups, reproducing the
// ProPublica finding of unequal false positive rates.
type CompasConfig struct {
	N     int   // defendants (paper: 7,214)
	Seed  int64 //
	Races []RaceSpec

	Alpha   float64 // logistic intercept of the true recidivism model
	Beta    float64 // logistic slope on the latent risk
	RaceGap float64 // fraction of the race shift that is pure score bias (not true risk)
}

// Race names used by the default configuration, mirroring the ProPublica
// categories.
const (
	RaceAfricanAmerican = "African-American"
	RaceCaucasian       = "Caucasian"
	RaceHispanic        = "Hispanic"
	RaceOther           = "Other"
	RaceAsian           = "Asian"
	RaceNativeAmerican  = "Native-American"
)

// DefaultCompasConfig returns the calibrated configuration: Broward-like
// race mix, mean decile gap of about 1.6 between African-American and
// Caucasian defendants, overall two-year recidivism near 45%, and a
// false-positive-rate gap in the direction ProPublica reported.
func DefaultCompasConfig() CompasConfig {
	return CompasConfig{
		N:    7214,
		Seed: 2016,
		Races: []RaceSpec{
			{Name: RaceAfricanAmerican, Share: 0.514, RiskShift: 0.50},
			{Name: RaceCaucasian, Share: 0.341, RiskShift: -0.30},
			{Name: RaceHispanic, Share: 0.082, RiskShift: -0.20},
			{Name: RaceOther, Share: 0.0533, RiskShift: -0.35},
			{Name: RaceAsian, Share: 0.0044, RiskShift: -0.55},
			{Name: RaceNativeAmerican, Share: 0.0053, RiskShift: 0.35},
		},
		Alpha:   -0.25,
		Beta:    0.9,
		RaceGap: 0.5,
	}
}

// CompasScoreWeights ranks by the decile score with an infinitesimal
// tie-break column: deciles are 10 coarse buckets, so a deterministic
// within-bucket order is required for reproducible selections. The
// tie-break weight is far below the 0.5-point bonus granularity and never
// changes which bucket an adjusted score lands in.
func CompasScoreWeights() []float64 { return []float64{1, 1e-6} }

// GenerateCompas synthesizes the recidivism dataset. Score columns are
// {Decile, TieBreak}; fairness columns are one-hot race indicators in the
// order of cfg.Races; outcomes record two-year recidivism. Selection by
// descending decile ("flagged as high risk") is an adverse selection: use
// rank.Adverse so bonus points lower effective risk.
func GenerateCompas(cfg CompasConfig) (*dataset.Dataset, error) {
	if cfg.N <= 0 {
		return nil, fmt.Errorf("synth: compas population size %d", cfg.N)
	}
	var total float64
	for _, r := range cfg.Races {
		if r.Share < 0 {
			return nil, fmt.Errorf("synth: race %q share %v", r.Name, r.Share)
		}
		total += r.Share
	}
	if math.Abs(total-1) > 1e-6 {
		return nil, fmt.Errorf("synth: race shares sum to %v, want 1", total)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	race := make([]int, cfg.N)
	z := make([]float64, cfg.N)
	recid := make([]bool, cfg.N)
	for i := 0; i < cfg.N; i++ {
		u := rng.Float64()
		g := len(cfg.Races) - 1
		acc := 0.0
		for j, r := range cfg.Races {
			acc += r.Share
			if u < acc {
				g = j
				break
			}
		}
		race[i] = g
		shift := cfg.Races[g].RiskShift
		z[i] = shift + rng.NormFloat64()
		// True risk removes the biased fraction of the shift.
		trueRisk := z[i] - cfg.RaceGap*shift
		p := 1 / (1 + math.Exp(-(cfg.Alpha + cfg.Beta*trueRisk)))
		recid[i] = rng.Float64() < p
	}

	// Norm-referenced deciles: rank all defendants by latent risk and cut
	// into 10 equal buckets, decile 10 = riskiest.
	order := make([]int, cfg.N)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return z[order[a]] < z[order[b]] })
	decile := make([]float64, cfg.N)
	for pos, i := range order {
		d := 1 + pos*10/cfg.N
		if d > 10 {
			d = 10
		}
		decile[i] = float64(d)
	}

	names := make([]string, len(cfg.Races))
	for j, r := range cfg.Races {
		names[j] = r.Name
	}
	b := dataset.NewBuilder([]string{"Decile", "TieBreak"}, names)
	oneHot := make([]float64, len(cfg.Races))
	for i := 0; i < cfg.N; i++ {
		for j := range oneHot {
			oneHot[j] = 0
		}
		oneHot[race[i]] = 1
		row := append([]float64(nil), oneHot...)
		b.AddWithOutcome([]float64{decile[i], rng.Float64()}, row, recid[i])
	}
	return b.Build()
}
