package synth

import (
	"testing"

	"fairrank/internal/dataset"
	"fairrank/internal/metrics"
	"fairrank/internal/rank"
)

// TestSchoolBaselineDisparity checks that the calibrated generator
// reproduces the Table I baseline: disparity of the uncorrected top-5%
// selection approximately (-0.25, -0.11, -0.18, -0.19), norm ≈ 0.37.
func TestSchoolBaselineDisparity(t *testing.T) {
	cfg := DefaultSchoolConfig()
	cfg.N = 40000 // half cohort keeps the test fast; estimates are stable
	d, err := GenerateSchool(cfg)
	if err != nil {
		t.Fatal(err)
	}
	scorer := rank.WeightedSum{Weights: SchoolScoreWeights()}
	base := scorer.BaseScores(d)
	k, err := rank.SelectCount(d.N(), 0.05)
	if err != nil {
		t.Fatal(err)
	}
	sel := rank.TopK(base, k)
	disp := metrics.Disparity(d, sel)
	norm := metrics.Norm(disp)
	t.Logf("baseline disparity: Low-Income=%.3f ELL=%.3f ENI=%.3f Special-Ed=%.3f norm=%.3f",
		disp[0], disp[1], disp[2], disp[3], norm)

	want := []float64{-0.25, -0.106, -0.176, -0.191}
	names := d.FairNames()
	for j, w := range want {
		if diff := disp[j] - w; diff < -0.05 || diff > 0.05 {
			t.Errorf("%s baseline disparity = %.3f, want %.3f ± 0.05", names[j], disp[j], w)
		}
	}
	if norm < 0.30 || norm > 0.45 {
		t.Errorf("baseline norm = %.3f, want ≈ 0.37", norm)
	}
}

// TestTailFactorDeepensTopDisparity checks the k-dependence mechanism:
// with penalties compounding toward the top of the ability distribution,
// the top-5% disparity must be deeper than with flat penalties of the
// same base size.
func TestTailFactorDeepensTopDisparity(t *testing.T) {
	base := DefaultSchoolConfig()
	base.N = 30000
	flat := base
	flat.TailFactor = 0
	dTail, err := GenerateSchool(base)
	if err != nil {
		t.Fatal(err)
	}
	dFlat, err := GenerateSchool(flat)
	if err != nil {
		t.Fatal(err)
	}
	scorer := rank.WeightedSum{Weights: SchoolScoreWeights()}
	top := func(ds *dataset.Dataset) float64 {
		base := scorer.BaseScores(ds)
		k, err := rank.SelectCount(ds.N(), 0.05)
		if err != nil {
			t.Fatal(err)
		}
		return metrics.Norm(metrics.Disparity(ds, rank.TopK(base, k)))
	}
	if top(dTail) <= top(dFlat) {
		t.Errorf("tail factor should deepen the top-5%% disparity: tail %.3f vs flat %.3f", top(dTail), top(dFlat))
	}
}

// TestSchoolMarginals checks the demographic marginals the paper states.
func TestSchoolMarginals(t *testing.T) {
	cfg := DefaultSchoolConfig()
	cfg.N = 40000
	d, err := GenerateSchool(cfg)
	if err != nil {
		t.Fatal(err)
	}
	c := d.FairCentroid()
	t.Logf("marginals: Low-Income=%.3f ELL=%.3f ENI=%.3f Special-Ed=%.3f", c[0], c[1], c[2], c[3])
	if c[0] < 0.67 || c[0] > 0.73 {
		t.Errorf("low income rate %.3f, want ≈ 0.70", c[0])
	}
	if c[1] < 0.08 || c[1] > 0.12 {
		t.Errorf("ELL rate %.3f, want ≈ 0.10", c[1])
	}
	if c[3] < 0.17 || c[3] > 0.23 {
		t.Errorf("special-ed rate %.3f, want ≈ 0.20", c[3])
	}
}
