// Package faultinject provides named fault-injection sites for the
// serving stack's chaos tests. Production code calls Fire at well-known
// sites (see sites.go); in the default build Fire is a no-op constant
// that the compiler folds away, and only builds tagged `faultinject`
// compile the real registry, where tests arm sites with delays, errors,
// and panics via Set.
//
// The package exists so the resilience layer (deadlines, admission
// control, panic recovery, graceful drain) is proven against injected
// slowness, pool exhaustion, and crashes rather than against timing
// luck. It has no dependencies beyond the standard library and must
// never be armed outside test binaries.
package faultinject
