//go:build !faultinject

package faultinject

import "context"

// Enabled reports whether this binary was built with the faultinject tag.
const Enabled = false

// Fire is a no-op in the default build; the compiler inlines it away, so
// production call sites cost nothing.
func Fire(ctx context.Context, site string) error {
	return nil
}
