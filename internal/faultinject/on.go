//go:build faultinject

package faultinject

import (
	"context"
	"sync"
	"sync/atomic"
	"time"
)

// Enabled reports whether this binary was built with the faultinject tag.
const Enabled = true

// Fault describes what Fire does when its site is armed. Zero-valued
// fields are inert; Delay, Err, and Panic compose in that order.
type Fault struct {
	// Delay sleeps before the rest of the fault applies. The sleep is
	// context-aware: a canceled ctx cuts it short and Fire returns the
	// context's error.
	Delay time.Duration
	// Err is returned by Fire (after Delay).
	Err error
	// Panic, when non-empty, makes Fire panic with this message
	// (after Delay, instead of returning Err).
	Panic string
	// Count limits how many firings the fault serves before going
	// inert; 0 means unlimited until Clear/Reset.
	Count int
}

type armedFault struct {
	f         Fault
	remaining int // firings left; -1 means unlimited
	fired     int
}

var (
	// armed counts sites with a Set fault so Fire's fast path is one
	// atomic load when nothing is armed (the overwhelmingly common case
	// even in tagged test binaries).
	armed  atomic.Int32
	mu     sync.Mutex
	faults = map[string]*armedFault{}
)

// Set arms site with f, replacing any previous fault at that site.
func Set(site string, f Fault) {
	mu.Lock()
	defer mu.Unlock()
	rem := -1
	if f.Count > 0 {
		rem = f.Count
	}
	if _, ok := faults[site]; !ok {
		armed.Add(1)
	}
	faults[site] = &armedFault{f: f, remaining: rem}
}

// Clear disarms site. Its fired count is discarded.
func Clear(site string) {
	mu.Lock()
	defer mu.Unlock()
	if _, ok := faults[site]; ok {
		delete(faults, site)
		armed.Add(-1)
	}
}

// Reset disarms every site.
func Reset() {
	mu.Lock()
	defer mu.Unlock()
	for site := range faults {
		delete(faults, site)
		armed.Add(-1)
	}
}

// Fired returns how many times the fault currently armed at site has
// fired (0 when the site is not armed).
func Fired(site string) int {
	mu.Lock()
	defer mu.Unlock()
	if af, ok := faults[site]; ok {
		return af.fired
	}
	return 0
}

// Fire applies the fault armed at site, if any: it sleeps Delay
// (ctx-aware), then panics with Panic or returns Err. An exhausted
// Count, an unarmed site, or a zero fault all return nil.
func Fire(ctx context.Context, site string) error {
	if armed.Load() == 0 {
		return nil
	}
	mu.Lock()
	af, ok := faults[site]
	if !ok || af.remaining == 0 {
		mu.Unlock()
		return nil
	}
	if af.remaining > 0 {
		af.remaining--
	}
	af.fired++
	f := af.f
	mu.Unlock()

	if f.Delay > 0 {
		t := time.NewTimer(f.Delay)
		select {
		case <-t.C:
		case <-ctx.Done():
			t.Stop()
			return ctx.Err()
		}
	}
	if f.Panic != "" {
		panic("faultinject: " + f.Panic)
	}
	return f.Err
}
