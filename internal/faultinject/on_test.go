//go:build faultinject

package faultinject

import (
	"context"
	"errors"
	"testing"
	"time"
)

func TestFireErrAndCount(t *testing.T) {
	defer Reset()
	want := errors.New("injected")
	Set(SiteTrainStart, Fault{Err: want, Count: 2})

	ctx := context.Background()
	for i := 0; i < 2; i++ {
		if err := Fire(ctx, SiteTrainStart); !errors.Is(err, want) {
			t.Fatalf("firing %d: Fire = %v, want %v", i, err, want)
		}
	}
	// Count exhausted: the site goes inert but keeps its fired tally.
	if err := Fire(ctx, SiteTrainStart); err != nil {
		t.Fatalf("exhausted fault: Fire = %v, want nil", err)
	}
	if got := Fired(SiteTrainStart); got != 2 {
		t.Fatalf("Fired = %d, want 2", got)
	}
	// Unarmed sites never fire.
	if err := Fire(ctx, SiteReportStart); err != nil {
		t.Fatalf("unarmed site: Fire = %v, want nil", err)
	}
}

func TestFireDelayHonorsContext(t *testing.T) {
	defer Reset()
	Set(SiteRankPrefix, Fault{Delay: time.Hour})

	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(10 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	err := Fire(ctx, SiteRankPrefix)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("Fire = %v, want context.Canceled", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("canceled delay took %v, want prompt return", elapsed)
	}
}

func TestFirePanics(t *testing.T) {
	defer Reset()
	Set(SiteEvaluateStart, Fault{Panic: "boom"})
	defer func() {
		if r := recover(); r == nil {
			t.Fatal("Fire did not panic")
		}
	}()
	_ = Fire(context.Background(), SiteEvaluateStart)
}

func TestClearAndReset(t *testing.T) {
	Set(SiteTrainStart, Fault{Err: errors.New("x")})
	Set(SiteReportStart, Fault{Err: errors.New("y")})
	Clear(SiteTrainStart)
	if err := Fire(context.Background(), SiteTrainStart); err != nil {
		t.Fatalf("cleared site fired: %v", err)
	}
	Reset()
	if err := Fire(context.Background(), SiteReportStart); err != nil {
		t.Fatalf("reset site fired: %v", err)
	}
	if armed.Load() != 0 {
		t.Fatalf("armed = %d after Reset, want 0", armed.Load())
	}
}
