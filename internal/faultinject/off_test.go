//go:build !faultinject

package faultinject

import (
	"context"
	"testing"
)

// The default build must compile the hooks down to nothing: Enabled is a
// false constant and Fire returns nil for every site, armed or not.
func TestFireIsNoOp(t *testing.T) {
	if Enabled {
		t.Fatal("Enabled = true in a build without the faultinject tag")
	}
	for _, site := range []string{
		SiteTrainStart, SiteEvaluateStart, SiteCounterfactualStart,
		SiteReportStart, SiteExplainStart, SiteTrainerAcquire,
		SiteRankPrefix, "no.such.site",
	} {
		if err := Fire(context.Background(), site); err != nil {
			t.Fatalf("Fire(%q) = %v, want nil", site, err)
		}
	}
	// Even a canceled context must not surface: the no-op build never
	// inspects ctx.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := Fire(ctx, SiteTrainStart); err != nil {
		t.Fatalf("Fire(canceled ctx) = %v, want nil", err)
	}
}
