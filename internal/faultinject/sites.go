package faultinject

// Fault-injection sites. Each constant names one Fire call in production
// code; the chaos suite arms them individually. checkdocs.sh requires
// every site listed here to have a row in the ARCHITECTURE.md
// "Failure semantics" hook map.
const (
	// SiteTrainStart fires at the top of the train pipeline, after
	// decode/validation and before the trainer is acquired.
	SiteTrainStart = "train.start"
	// SiteEvaluateStart fires at the top of the sweep pipeline, before
	// any cache probe result is used.
	SiteEvaluateStart = "evaluate.start"
	// SiteCounterfactualStart fires at the top of the counterfactual
	// batch pipeline.
	SiteCounterfactualStart = "counterfactual.start"
	// SiteReportStart fires at the top of the audit-bundle pipeline.
	SiteReportStart = "report.start"
	// SiteExplainStart fires at the top of the explain pipeline.
	SiteExplainStart = "explain.start"
	// SiteTrainerAcquire fires inside Entry.acquire before a trainer
	// slot is claimed; an injected error simulates pool exhaustion.
	SiteTrainerAcquire = "trainer.acquire"
	// SiteRankPrefix fires inside Evaluator.rankedPrefixWS on the
	// non-zero-bonus path; an injected delay simulates a slow ranking
	// pass under every sweep, bundle, and counterfactual workload.
	SiteRankPrefix = "rank.prefix"
	// SiteBatcherFlush fires at the head of a micro-batch flush, before
	// the shared pass runs: an injected error fails every member with it,
	// an injected panic exercises the batcher's recovery shield (every
	// waiter is released with the same 500 the middleware answers), and a
	// delay holds the whole batch so member deadlines and the
	// all-members-gone cancellation can race it.
	SiteBatcherFlush = "batcher.flush"
)
