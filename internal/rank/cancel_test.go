package rank

import (
	"context"
	"errors"
	"math/rand"
	"testing"
)

// TestMergeTopKIntoCtxCancel pins the merge's cancellation contract: a
// dead context abandons the merge at the first checkpoint with ok still
// true — cancellation must never be mistaken for "merge declined" and
// trigger the full-sort fallback, which would redo exactly the work the
// caller is trying to stop.
func TestMergeTopKIntoCtxCancel(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	d, base := comboCohort(t, rng, 500, 3, 2)
	c := NewComboRuns(d, base, 0)
	if c == nil {
		t.Fatal("NewComboRuns declined")
	}
	bonus := []float64{1, 2, 0.5}
	var scratch MergeScratch

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	out, ok, err := c.MergeTopKIntoCtx(ctx, bonus, Beneficial, 100, &scratch, make([]int, 0, 100), nil)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("error = %v, want context.Canceled", err)
	}
	if !ok {
		t.Error("ok = false on cancellation; cancellation must not read as a merge decline")
	}
	if out != nil {
		t.Errorf("canceled merge returned a prefix of %d ids; want none", len(out))
	}

	// The same scratch answers the identical request after cancellation,
	// bit-identical to the uncancelled call: abandoning a merge must not
	// corrupt the reusable merge state.
	want, ok, err := c.MergeTopKIntoCtx(context.Background(), bonus, Beneficial, 100, &scratch, make([]int, 0, 100), nil)
	if err != nil || !ok {
		t.Fatalf("post-cancel merge = (ok=%v, err=%v)", ok, err)
	}
	eff := EffectiveScoresAll(d, base, bonus, Beneficial, nil)
	full := Order(eff)
	for r := range want {
		if want[r] != full[r] {
			t.Fatalf("post-cancel merge rank %d: merge=%d full=%d", r, want[r], full[r])
		}
	}
}

// TestMergeTopKIntoCtxBackground pins that the context-aware entry with a
// background context is bit-identical to MergeTopKInto.
func TestMergeTopKIntoCtxBackground(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	d, base := comboCohort(t, rng, 300, 2, 3)
	c := NewComboRuns(d, base, 0)
	if c == nil {
		t.Fatal("NewComboRuns declined")
	}
	bonus := []float64{4, 0.25}
	var s1, s2 MergeScratch
	a, okA := c.MergeTopKInto(bonus, Adverse, 150, &s1, make([]int, 0, 150), nil)
	b, okB, err := c.MergeTopKIntoCtx(context.Background(), bonus, Adverse, 150, &s2, make([]int, 0, 150), nil)
	if okA != okB || err != nil {
		t.Fatalf("ok mismatch or error: okA=%v okB=%v err=%v", okA, okB, err)
	}
	if len(a) != len(b) {
		t.Fatalf("length mismatch: %d vs %d", len(a), len(b))
	}
	for r := range a {
		if a[r] != b[r] {
			t.Fatalf("rank %d: %d vs %d", r, a[r], b[r])
		}
	}
}
