package rank

import (
	"fmt"
	"math"
	"slices"

	"fairrank/internal/dataset"
)

// Polarity states whether being selected is beneficial or adverse for the
// selected objects. It decides the sign with which bonus points enter the
// effective score and the direction of the DCA update.
type Polarity int

const (
	// Beneficial selections (school admission, resource allocation): bonus
	// points are added to the score to push disadvantaged objects *into*
	// the selection.
	Beneficial Polarity = iota
	// Adverse selections (recidivism flagging): the selection is the
	// negative outcome, so bonus points are subtracted from the score to
	// pull over-flagged objects *out of* the selection. This realizes the
	// paper's "negative for scenarios where a lower score is desirable".
	Adverse
)

// Sign returns +1 for Beneficial and -1 for Adverse.
func (p Polarity) Sign() float64 {
	if p == Adverse {
		return -1
	}
	return 1
}

// String implements fmt.Stringer.
func (p Polarity) String() string {
	if p == Adverse {
		return "adverse"
	}
	return "beneficial"
}

// Scorer computes the base (uncompensated) score of every object in a
// dataset. Implementations must be deterministic.
type Scorer interface {
	// BaseScores returns f(o) for every object, in object order.
	BaseScores(d *dataset.Dataset) []float64
}

// WeightedSum is the weighted-sum ranking function used by the NYC schools
// in the paper: f = 0.55*GPA + 0.45*TestScores. Weights are indexed by
// score attribute column.
type WeightedSum struct {
	Weights []float64
}

// BaseScores implements Scorer.
func (w WeightedSum) BaseScores(d *dataset.Dataset) []float64 {
	if len(w.Weights) != d.NumScore() {
		panic(fmt.Sprintf("rank: %d weights for %d score attributes", len(w.Weights), d.NumScore()))
	}
	out := make([]float64, d.N())
	for j, wj := range w.Weights {
		if wj == 0 {
			continue
		}
		col := d.ScoreColumn(j)
		for i, v := range col {
			out[i] += wj * v
		}
	}
	return out
}

// Column ranks by a single score attribute (e.g. the COMPAS decile score).
type Column struct {
	Index int
}

// BaseScores implements Scorer.
func (c Column) BaseScores(d *dataset.Dataset) []float64 {
	return append([]float64(nil), d.ScoreColumn(c.Index)...)
}

// Precomputed wraps an externally computed score vector (e.g. the output of
// an opaque black-box model); it must have one entry per object.
type Precomputed []float64

// BaseScores implements Scorer.
func (p Precomputed) BaseScores(d *dataset.Dataset) []float64 {
	if len(p) != d.N() {
		panic(fmt.Sprintf("rank: %d precomputed scores for %d objects", len(p), d.N()))
	}
	return append([]float64(nil), p...)
}

// EffectiveScores computes f_b(o) = f(o) + sign * (A_f · B) for the objects
// listed in idx, writing into dst (allocated when nil) and returning it.
// base is indexed by absolute object id. With Adverse polarity the bonus is
// subtracted, lowering the (undesirable) score of compensated objects.
//
// The common low-dimensional cases unroll the bonus dot product with the
// fairness columns hoisted out of the loop; the summation order (ascending
// dimension) matches FairDot exactly, so results are bit-identical.
func EffectiveScores(d *dataset.Dataset, base []float64, idx []int, bonus []float64, pol Polarity, dst []float64) []float64 {
	if dst == nil {
		dst = make([]float64, len(idx))
	}
	sign := pol.Sign()
	cols := d.FairColumns()
	switch len(cols) {
	case 2:
		c0, c1 := cols[0], cols[1]
		b0, b1 := bonus[0], bonus[1]
		for r, i := range idx {
			dst[r] = base[i] + sign*(c0[i]*b0+c1[i]*b1)
		}
	case 3:
		c0, c1, c2 := cols[0], cols[1], cols[2]
		b0, b1, b2 := bonus[0], bonus[1], bonus[2]
		for r, i := range idx {
			dst[r] = base[i] + sign*(c0[i]*b0+c1[i]*b1+c2[i]*b2)
		}
	case 4:
		c0, c1, c2, c3 := cols[0], cols[1], cols[2], cols[3]
		b0, b1, b2, b3 := bonus[0], bonus[1], bonus[2], bonus[3]
		for r, i := range idx {
			dst[r] = base[i] + sign*(c0[i]*b0+c1[i]*b1+c2[i]*b2+c3[i]*b3)
		}
	default:
		for r, i := range idx {
			dst[r] = base[i] + sign*d.FairDot(i, bonus)
		}
	}
	return dst
}

// EffectiveScoresAll is EffectiveScores over the entire dataset, writing
// into dst (allocated when nil) and returning it.
func EffectiveScoresAll(d *dataset.Dataset, base, bonus []float64, pol Polarity, dst []float64) []float64 {
	n := d.N()
	if dst == nil {
		dst = make([]float64, n)
	}
	sign := pol.Sign()
	for i := 0; i < n; i++ {
		dst[i] = base[i] + sign*d.FairDot(i, bonus)
	}
	return dst
}

// CheckFraction validates a selection fraction (the paper's k): it must
// lie in (0, 1]. The check is population-independent, which lets
// objectives validate their fractions once at bind time.
func CheckFraction(frac float64) error {
	if math.IsNaN(frac) || frac <= 0 || frac > 1 {
		return fmt.Errorf("rank: selection fraction %v outside (0,1]", frac)
	}
	return nil
}

// SelectCount converts a selection fraction (the paper's k, in (0, 1]) into
// a count over n objects: round-half-up, at least 1, at most n.
func SelectCount(n int, frac float64) (int, error) {
	if err := CheckFraction(frac); err != nil {
		return 0, err
	}
	k := int(frac*float64(n) + 0.5)
	if k < 1 {
		k = 1
	}
	if k > n {
		k = n
	}
	return k, nil
}

// higher reports whether item a ranks above item b: higher score first,
// ties broken by lower index so that every selection algorithm realizes the
// same total order.
func higher(scores []float64, a, b int) bool {
	if scores[a] != scores[b] {
		return scores[a] > scores[b]
	}
	return a < b
}

// Order returns all indices 0..len(scores)-1 sorted by descending score
// (ties by ascending index). This is the full ranking R of the paper.
func Order(scores []float64) []int {
	return OrderInto(scores, make([]int, len(scores)))
}

// OrderInto is the in-place variant of Order: it fills idx (length
// len(scores)) with the descending ranking and returns it, allocating
// nothing. The index tie-break makes the comparator a total order, so the
// result is the unique ranking regardless of sorting algorithm.
func OrderInto(scores []float64, idx []int) []int {
	for i := range idx {
		idx[i] = i
	}
	SortRanked(scores, idx)
	return idx
}

// SortRanked sorts idx in place into descending ranked order under the
// exact comparator of Order/OrderInto (higher score first, ties broken by
// lower index). Because that comparator is a total order, sorting any
// subset of a population's indices reproduces the relative order those
// indices hold in the full ranking — which is what lets a top-k selection
// (e.g. from TopKHeapInto) be turned into the ranking's leading prefix
// without sorting the whole population.
func SortRanked(scores []float64, idx []int) {
	slices.SortFunc(idx, func(a, b int) int {
		if a == b {
			return 0
		}
		if higher(scores, a, b) {
			return -1
		}
		return 1
	})
}

// TopK returns the indices of the k highest-scoring items in ranked order
// using a full sort. It panics if k is out of range; use SelectCount to
// derive k.
func TopK(scores []float64, k int) []int {
	checkK(len(scores), k)
	return Order(scores)[:k]
}

// TopKQuickselect returns the indices of the k highest-scoring items in
// unspecified order, using iterative Hoare partitioning around a
// median-of-three pivot. Expected O(n) time; membership is identical to
// TopK's first k elements.
func TopKQuickselect(scores []float64, k int) []int {
	checkK(len(scores), k)
	idx := make([]int, len(scores))
	for i := range idx {
		idx[i] = i
	}
	lo, hi := 0, len(idx)-1
	for lo < hi {
		p := partition(scores, idx, lo, hi)
		switch {
		case p == k-1:
			lo = hi // done
		case p < k-1:
			lo = p + 1
		default:
			hi = p - 1
		}
	}
	return idx[:k]
}

// partition uses a median-of-three pivot and places it at its final
// position in descending rank order, returning that position.
func partition(scores []float64, idx []int, lo, hi int) int {
	mid := lo + (hi-lo)/2
	// Order lo, mid, hi descending so the median lands at mid.
	if higher(scores, idx[mid], idx[lo]) {
		idx[lo], idx[mid] = idx[mid], idx[lo]
	}
	if higher(scores, idx[hi], idx[lo]) {
		idx[lo], idx[hi] = idx[hi], idx[lo]
	}
	if higher(scores, idx[hi], idx[mid]) {
		idx[mid], idx[hi] = idx[hi], idx[mid]
	}
	idx[mid], idx[hi] = idx[hi], idx[mid] // stash pivot at hi
	pivot := idx[hi]
	store := lo
	for i := lo; i < hi; i++ {
		if higher(scores, idx[i], pivot) {
			idx[store], idx[i] = idx[i], idx[store]
			store++
		}
	}
	idx[store], idx[hi] = idx[hi], idx[store]
	return store
}

// TopKHeap returns the indices of the k highest-scoring items in
// unspecified order using a bounded min-heap: O(n log k) time, O(k) space.
// Membership is identical to TopK's first k elements.
func TopKHeap(scores []float64, k int) []int {
	return TopKHeapInto(scores, k, make([]int, 0, k))
}

// TopKHeapInto is the in-place variant of TopKHeap: buf provides the heap
// storage (its capacity must be at least k; its length is ignored) and the
// selected indices are returned in buf[:k]. The heap insertion sequence is
// identical to TopKHeap's, so the returned order matches exactly.
func TopKHeapInto(scores []float64, k int, buf []int) []int {
	checkK(len(scores), k)
	if k == 0 {
		return nil
	}
	h := buf[:0]
	// Closure-free min-heap so the hot loop allocates nothing; an item a is
	// "lower" (weaker) than b when higher(scores, b, a).
	for i := range scores {
		if len(h) < k {
			h = append(h, i)
			heapSiftUp(scores, h, len(h)-1)
			continue
		}
		if higher(scores, i, h[0]) { // i outranks the current weakest
			h[0] = i
			heapSiftDown(scores, h, 0)
		}
	}
	return h
}

// heapSiftUp restores the min-heap property upward from node.
func heapSiftUp(scores []float64, h []int, node int) {
	for node > 0 {
		parent := (node - 1) / 2
		if !higher(scores, h[parent], h[node]) {
			return
		}
		h[node], h[parent] = h[parent], h[node]
		node = parent
	}
}

// heapSiftDown restores the min-heap property downward from root.
func heapSiftDown(scores []float64, h []int, root int) {
	for {
		child := 2*root + 1
		if child >= len(h) {
			return
		}
		if child+1 < len(h) && higher(scores, h[child], h[child+1]) {
			child++
		}
		if !higher(scores, h[root], h[child]) {
			return
		}
		h[root], h[child] = h[child], h[root]
		root = child
	}
}

func checkK(n, k int) {
	if k < 0 || k > n {
		panic(fmt.Sprintf("rank: k=%d outside [0,%d]", k, n))
	}
}

// Selection bundles a selection fraction with the machinery to produce the
// selected set of a score vector.
type Selection struct {
	Frac float64 // fraction of objects selected, in (0,1]
}

// Select returns the top Frac of the given scores, ranked, using TopK.
func (s Selection) Select(scores []float64) ([]int, error) {
	k, err := SelectCount(len(scores), s.Frac)
	if err != nil {
		return nil, err
	}
	return TopK(scores, k), nil
}
