package rank

import (
	"context"
	"math"
	"slices"
	"sort"
	"time"

	"fairrank/internal/dataset"
)

// DefaultMaxComboRuns caps the combo-run partition. A dataset whose
// fairness attributes are effectively continuous produces close to one
// run per object, at which point the merge degenerates to a full sort
// with worse constants; above this cap NewComboRuns declines to build.
const DefaultMaxComboRuns = 2048

// ComboRuns is the pre-sorted run decomposition that makes any cold
// top-k an O(k log g) merge instead of an O(n log n) sort.
//
// The population is partitioned into g runs of bitwise-identical
// fairness rows. Because the compensated score is f(o) + sign·(A_f·B),
// every member of a run receives the *same* bonus total under every
// bonus vector B: a bonus shifts a whole run by one constant offset and
// can never reorder the run internally. Each run is therefore sorted
// once, at construction, by the base-score total order (base descending,
// id ascending — the exact comparator of Order/SortRanked), and the
// ranking under any bonus is recovered by a g-way merge of the offset
// runs.
//
// A ComboRuns is immutable after construction and safe for concurrent
// use; per-request mutable state lives in MergeScratch.
type ComboRuns struct {
	n    int
	dims int

	ids     []int32     // object ids, runs contiguous, each run pre-sorted
	bases   []float64   // base score aligned with ids
	starts  []int32     // run r occupies ids[starts[r]:starts[r+1]]; len g+1
	reps    [][]float64 // one representative fairness row per run
	comboOf []int32     // run index of every object id
	posOf   []int32     // position of every object id inside ids

	buildCost time.Duration
}

// NewComboRuns partitions d by distinct fairness row and pre-sorts each
// run by base score. It returns nil when the structure cannot help:
// more than maxRuns distinct rows (maxRuns <= 0 means DefaultMaxComboRuns),
// a non-finite base score, or a population too large for int32 ids.
// base is retained only during construction.
func NewComboRuns(d *dataset.Dataset, base []float64, maxRuns int) *ComboRuns {
	if maxRuns <= 0 {
		maxRuns = DefaultMaxComboRuns
	}
	n := d.N()
	if n == 0 || n > math.MaxInt32 || len(base) != n {
		return nil
	}
	for _, v := range base {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return nil // NaN breaks the total order; decline rather than diverge
		}
	}
	begin := time.Now() //fairlint:allow determinism -- one-time BuildElapsed stat in RunStats is pure observability; run contents and merge order never read the clock
	comboOf, reps, ok := d.FairCombos(maxRuns)
	if !ok {
		return nil
	}
	g := len(reps)
	c := &ComboRuns{
		n:       n,
		dims:    d.NumFair(),
		ids:     make([]int32, n),
		bases:   make([]float64, n),
		starts:  make([]int32, g+1),
		reps:    reps,
		comboOf: comboOf,
	}
	// Counting sort of ids into contiguous runs.
	for _, r := range comboOf {
		c.starts[r+1]++
	}
	for r := 1; r <= g; r++ {
		c.starts[r] += c.starts[r-1]
	}
	next := make([]int32, g)
	copy(next, c.starts[:g])
	for i := 0; i < n; i++ {
		r := comboOf[i]
		c.ids[next[r]] = int32(i)
		next[r]++
	}
	// Sort each run under the exact full-ranking comparator (base
	// descending, ties by ascending id), then align the base column.
	for r := 0; r < g; r++ {
		seg := c.ids[c.starts[r]:c.starts[r+1]]
		slices.SortFunc(seg, func(a, b int32) int {
			if base[a] != base[b] {
				if base[a] > base[b] {
					return -1
				}
				return 1
			}
			return int(a - b)
		})
	}
	c.posOf = make([]int32, n)
	for p, id := range c.ids {
		c.bases[p] = base[id]
		c.posOf[id] = int32(p)
	}
	c.buildCost = time.Since(begin)
	return c
}

// N returns the population size.
func (c *ComboRuns) N() int { return c.n }

// Runs returns g, the number of distinct fairness combinations.
func (c *ComboRuns) Runs() int { return len(c.reps) }

// RunStats summarizes a combo-run decomposition for observability.
type RunStats struct {
	Runs      int           // g, distinct fairness combinations
	MinLen    int           // smallest run
	MedianLen int           // median run length
	MaxLen    int           // largest run
	BuildCost time.Duration // one-time partition + per-run sort cost
}

// Stats reports run-count and run-length statistics plus the one-time
// construction cost.
func (c *ComboRuns) Stats() RunStats {
	g := len(c.reps)
	lens := make([]int, g)
	for r := 0; r < g; r++ {
		lens[r] = int(c.starts[r+1] - c.starts[r])
	}
	sort.Ints(lens)
	return RunStats{
		Runs:      g,
		MinLen:    lens[0],
		MedianLen: lens[g/2],
		MaxLen:    lens[g-1],
		BuildCost: c.buildCost,
	}
}

// bonusTerm computes sign·(row·bonus) with the exact summation order of
// EffectiveScores — the unrolled products for 2–4 dimensions and the
// ascending FairDot loop otherwise — so that base + bonusTerm is
// bit-identical to the effective score the full-sort path computes.
func bonusTerm(row, bonus []float64, sign float64) float64 {
	switch len(row) {
	case 2:
		return sign * (row[0]*bonus[0] + row[1]*bonus[1])
	case 3:
		return sign * (row[0]*bonus[0] + row[1]*bonus[1] + row[2]*bonus[2])
	case 4:
		return sign * (row[0]*bonus[0] + row[1]*bonus[1] + row[2]*bonus[2] + row[3]*bonus[3])
	default:
		s := 0.0
		for j, v := range row {
			s += v * bonus[j]
		}
		return sign * s
	}
}

// mergeEntry is one run head inside the merge heap.
type mergeEntry struct {
	eff float64
	id  int32
	run int32
}

// beats reports whether a ranks strictly above b under the full-ranking
// total order (higher effective score first, ties by lower id).
func (a mergeEntry) beats(b mergeEntry) bool {
	if a.eff != b.eff {
		return a.eff > b.eff
	}
	return a.id < b.id
}

// MergeScratch holds the per-request mutable state of a merge: run
// offsets, cursors, the run-head max-heap, and the bookkeeping for
// equal-effective-score groups. It is not safe for concurrent use; keep
// one per goroutine (e.g. inside an engine workspace) and reuse it
// across requests — after the first request against a given g it
// allocates nothing.
type MergeScratch struct {
	offsets []float64    // per-run bonus offset
	heap    []mergeEntry // run-head max-heap
	pos     []int32      // next unconsumed position per run
	ge      []int32      // equal-eff group end (exclusive) per run
	rem     []int32      // unemitted members of the active group per run
	last    []int32      // last id emitted from the active group per run
}

// ensure sizes the scratch for g runs.
func (s *MergeScratch) ensure(g int) {
	if cap(s.offsets) < g {
		s.offsets = make([]float64, g)
		s.heap = make([]mergeEntry, 0, g)
		s.pos = make([]int32, g)
		s.ge = make([]int32, g)
		s.rem = make([]int32, g)
		s.last = make([]int32, g)
	}
	s.offsets = s.offsets[:g]
	s.pos = s.pos[:g]
	s.ge = s.ge[:g]
	s.rem = s.rem[:g]
	s.last = s.last[:g]
}

// prepareOffsets fills the per-run bonus offsets, reporting false when
// any offset is non-finite (a NaN or ±Inf bonus breaks the total order,
// so callers must fall back to the full-sort path for bit-identity).
func (c *ComboRuns) prepareOffsets(bonus []float64, pol Polarity, s *MergeScratch) bool {
	s.ensure(len(c.reps))
	sign := pol.Sign()
	for r, row := range c.reps {
		off := bonusTerm(row, bonus, sign)
		if math.IsNaN(off) || math.IsInf(off, 0) {
			return false
		}
		s.offsets[r] = off
	}
	return true
}

// head returns run r's current best unemitted entry under the total
// order, or ok=false when the run is exhausted.
//
// Within a run the offset effective score is non-increasing (adding a
// constant is monotone), but it is not always *strictly* decreasing
// where the base was: two distinct bases can collapse to one effective
// value in float arithmetic, and the full sort then breaks that tie by
// ascending id — an order the base-descending pre-sort does not
// guarantee. head therefore detects the equal-eff group at the cursor
// lazily (one extra compare in the common size-1 case) and, for larger
// groups, emits members in ascending-id order via a linear scan per
// pop. Groups beyond size 1 arise only from this rounding collapse, so
// they are rare and tiny and the O(m²) group emission never shows up.
func (s *MergeScratch) head(c *ComboRuns, r int32) (mergeEntry, bool) {
	p := s.pos[r]
	end := c.starts[r+1]
	if p >= end {
		return mergeEntry{}, false
	}
	off := s.offsets[r]
	eff := c.bases[p] + off
	if s.rem[r] == 0 {
		ge := p + 1
		for ge < end && c.bases[ge]+off == eff {
			ge++
		}
		if ge == p+1 {
			return mergeEntry{eff: eff, id: c.ids[p], run: r}, true
		}
		s.ge[r] = ge
		s.rem[r] = ge - p
		s.last[r] = -1
	}
	best := int32(math.MaxInt32)
	for q := p; q < s.ge[r]; q++ {
		if id := c.ids[q]; id > s.last[r] && id < best {
			best = id
		}
	}
	return mergeEntry{eff: eff, id: best, run: r}, true
}

// pop consumes run r's current head (the entry head would return).
func (s *MergeScratch) pop(r int32, id int32) {
	if s.rem[r] > 0 {
		s.last[r] = id
		s.rem[r]--
		if s.rem[r] == 0 {
			s.pos[r] = s.ge[r]
		}
		return
	}
	s.pos[r]++
}

// MergeTopKInto computes the leading k entries of the full ranking under
// bonus by a g-way bounded-heap merge of the pre-sorted runs, appending
// the selected ids in exact rank order to dst[:0] (dst must have
// capacity >= k). When effOut is non-nil (length >= n) the effective
// score of every emitted id is stored at effOut[id], matching what the
// full-sort path writes for prefix members.
//
// The result is bit-identical to Order(EffectiveScoresAll(...))[:k] —
// the same ids in the same order. ok=false means the merge declined
// (non-finite offsets) and the caller must use the full-sort path;
// dst is untouched in that case.
func (c *ComboRuns) MergeTopKInto(bonus []float64, pol Polarity, k int, s *MergeScratch, dst []int, effOut []float64) ([]int, bool) {
	// context.Background is never canceled, so the error is statically nil.
	out, ok, _ := c.MergeTopKIntoCtx(context.Background(), bonus, pol, k, s, dst, effOut)
	return out, ok
}

// mergeCheckInterval is the number of heap pops between cooperative
// cancellation checkpoints in MergeTopKIntoCtx. It must be a power of two
// (the checkpoint test is a bitmask) and is sized so the poll cost
// disappears against the O(log g) sift of each pop.
const mergeCheckInterval = 4096

// MergeTopKIntoCtx is MergeTopKInto with cooperative cancellation: the
// emit loop polls ctx every mergeCheckInterval pops and abandons the merge
// with ctx's error once it is done. A non-nil error means neither dst nor
// effOut hold a usable prefix; the caller must give up rather than fall
// back to the full-sort path (ok is still true in that case — the merge
// structure itself did not decline).
func (c *ComboRuns) MergeTopKIntoCtx(ctx context.Context, bonus []float64, pol Polarity, k int, s *MergeScratch, dst []int, effOut []float64) ([]int, bool, error) {
	checkK(c.n, k)
	if !c.prepareOffsets(bonus, pol, s) {
		return nil, false, nil
	}
	g := int32(len(c.reps))
	for r := int32(0); r < g; r++ {
		s.pos[r] = c.starts[r]
		s.rem[r] = 0
	}
	s.heap = s.heap[:0]
	for r := int32(0); r < g; r++ {
		if e, ok := s.head(c, r); ok {
			s.heap = append(s.heap, e)
		}
	}
	for i := len(s.heap)/2 - 1; i >= 0; i-- {
		s.siftDown(i)
	}
	out := dst[:0]
	for len(out) < k {
		if len(out)&(mergeCheckInterval-1) == 0 {
			if err := ctx.Err(); err != nil {
				return nil, true, err
			}
		}
		e := s.heap[0]
		out = append(out, int(e.id))
		if effOut != nil {
			effOut[e.id] = e.eff
		}
		s.pop(e.run, e.id)
		if ne, ok := s.head(c, e.run); ok {
			s.heap[0] = ne
		} else {
			n := len(s.heap) - 1
			s.heap[0] = s.heap[n]
			s.heap = s.heap[:n]
		}
		if len(s.heap) > 0 {
			s.siftDown(0)
		}
	}
	return out, true, nil
}

// siftDown restores the max-heap property downward from root.
func (s *MergeScratch) siftDown(root int) {
	h := s.heap
	for {
		child := 2*root + 1
		if child >= len(h) {
			return
		}
		if child+1 < len(h) && h[child+1].beats(h[child]) {
			child++
		}
		if !h[child].beats(h[root]) {
			return
		}
		h[root], h[child] = h[child], h[root]
		root = child
	}
}

// RankOf returns the 0-based rank of object obj in the full ranking
// under bonus, together with its effective score, without materializing
// any prefix: each run contributes a binary-search count of members
// ranking above obj (effective score strictly greater, or equal with a
// lower id), an O(g log(n/g)) total. ok=false means the merge structure
// declined (non-finite offsets); fall back to a full ranking.
func (c *ComboRuns) RankOf(obj int, bonus []float64, pol Polarity, s *MergeScratch) (rankPos int, eff float64, ok bool) {
	if !c.prepareOffsets(bonus, pol, s) {
		return 0, 0, false
	}
	e := c.bases[c.posOf[obj]] + s.offsets[c.comboOf[obj]]
	above := 0
	for r := 0; r < len(c.reps); r++ {
		lo, hi := int(c.starts[r]), int(c.starts[r+1])
		off := s.offsets[r]
		// First position with eff <= e; everything before it ranks above.
		cut := lo + sort.Search(hi-lo, func(q int) bool {
			return c.bases[lo+q]+off <= e
		})
		above += cut - lo
		// Among the equal-eff region, ids lower than obj rank above.
		for q := cut; q < hi && c.bases[q]+off == e; q++ {
			if int(c.ids[q]) < obj {
				above++
			}
		}
	}
	return above, e, true
}
