package rank

import (
	"math"
	"math/rand"
	"testing"

	"fairrank/internal/dataset"
)

// comboCohort builds a random cohort whose fairness attributes are drawn
// from a small palette of levels (so combos repeat) and whose base
// scores are coarsely quantized (so duplicate scores and ties occur).
func comboCohort(t *testing.T, rng *rand.Rand, n, dims, levels int) (*dataset.Dataset, []float64) {
	t.Helper()
	fair := make([][]float64, dims)
	names := make([]string, dims)
	for j := 0; j < dims; j++ {
		names[j] = string(rune('A' + j))
		col := make([]float64, n)
		for i := range col {
			if levels <= 1 {
				col[i] = 0
			} else {
				col[i] = float64(rng.Intn(levels)) / float64(levels-1)
			}
		}
		fair[j] = col
	}
	base := make([]float64, n)
	for i := range base {
		base[i] = math.Floor(rng.Float64() * 40) // coarse: plenty of exact ties
	}
	d, err := dataset.New([]string{"S"}, names, [][]float64{base}, fair, nil)
	if err != nil {
		t.Fatalf("dataset.New: %v", err)
	}
	return d, base
}

// randomBonus draws a bonus vector: sometimes zero, sometimes sparse,
// sometimes dense with negative entries.
func randomBonus(rng *rand.Rand, dims int) []float64 {
	b := make([]float64, dims)
	switch rng.Intn(4) {
	case 0: // zero vector
	case 1: // sparse
		if dims > 0 {
			b[rng.Intn(dims)] = rng.Float64()*30 - 10
		}
	default: // dense
		for j := range b {
			b[j] = rng.Float64()*30 - 10
		}
	}
	return b
}

// TestMergeTopKDifferential pins MergeTopKInto bit-identical to the
// full-sort reference Order(EffectiveScoresAll)[:k] over random
// cohorts, polarities, sparse/negative/zero bonuses, duplicate scores,
// and every flavor of k.
func TestMergeTopKDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	var scratch MergeScratch
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(300)
		dims := rng.Intn(6)
		levels := 1 + rng.Intn(3)
		d, base := comboCohort(t, rng, n, dims, levels)
		c := NewComboRuns(d, base, 0)
		if c == nil {
			t.Fatalf("trial %d: NewComboRuns declined (n=%d dims=%d levels=%d)", trial, n, dims, levels)
		}
		pol := Beneficial
		if rng.Intn(2) == 1 {
			pol = Adverse
		}
		bonus := randomBonus(rng, dims)
		eff := EffectiveScoresAll(d, base, bonus, pol, nil)
		want := Order(eff)

		ks := []int{1, n, 1 + rng.Intn(n)}
		for _, k := range ks {
			dst := make([]int, 0, k)
			effOut := make([]float64, n)
			got, ok := c.MergeTopKInto(bonus, pol, k, &scratch, dst, effOut)
			if !ok {
				t.Fatalf("trial %d: merge declined finite bonus %v", trial, bonus)
			}
			if len(got) != k {
				t.Fatalf("trial %d k=%d: merge returned %d ids", trial, k, len(got))
			}
			for r := 0; r < k; r++ {
				if got[r] != want[r] {
					t.Fatalf("trial %d (n=%d dims=%d pol=%v bonus=%v) k=%d: rank %d: merge=%d full=%d",
						trial, n, dims, pol, bonus, k, r, got[r], want[r])
				}
				if effOut[got[r]] != eff[got[r]] {
					t.Fatalf("trial %d k=%d: effOut[%d]=%v, full path %v",
						trial, k, got[r], effOut[got[r]], eff[got[r]])
				}
			}
		}
	}
}

// TestMergeRankOfDifferential pins RankOf against the object's position
// in the full ranking.
func TestMergeRankOfDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(62))
	var scratch MergeScratch
	for trial := 0; trial < 100; trial++ {
		n := 1 + rng.Intn(200)
		dims := 1 + rng.Intn(5)
		d, base := comboCohort(t, rng, n, dims, 1+rng.Intn(3))
		c := NewComboRuns(d, base, 0)
		if c == nil {
			t.Fatalf("trial %d: NewComboRuns declined", trial)
		}
		pol := Beneficial
		if rng.Intn(2) == 1 {
			pol = Adverse
		}
		bonus := randomBonus(rng, dims)
		eff := EffectiveScoresAll(d, base, bonus, pol, nil)
		full := Order(eff)
		posOf := make([]int, n)
		for p, id := range full {
			posOf[id] = p
		}
		for probe := 0; probe < 8; probe++ {
			obj := rng.Intn(n)
			got, ge, ok := c.RankOf(obj, bonus, pol, &scratch)
			if !ok {
				t.Fatalf("trial %d: RankOf declined finite bonus", trial)
			}
			if got != posOf[obj] {
				t.Fatalf("trial %d obj %d: RankOf=%d, full ranking position %d", trial, obj, got, posOf[obj])
			}
			if ge != eff[obj] {
				t.Fatalf("trial %d obj %d: RankOf eff=%v, full %v", trial, obj, ge, eff[obj])
			}
		}
	}
}

// TestMergeRoundingCollapse constructs the adversarial tie the pre-sort
// cannot see: two distinct base scores inside one run that collapse to
// the same effective score once the run offset is added. The full sort
// breaks that tie by ascending id, which disagrees with the run's
// base-descending order, so the merge must detect the equal-eff group
// and re-order it.
func TestMergeRoundingCollapse(t *testing.T) {
	// base[1] > base[2], but both become exactly 2^52+1 under offset 2^52.
	hi := 1 + math.Pow(2, -52)
	off := math.Pow(2, 52)
	base := []float64{5, hi, 1, 0.5}
	fair := [][]float64{{0, 1, 1, 0}} // objects 1,2 share a run; bonus 2^52 shifts it
	d, err := dataset.New(nil, []string{"A"}, nil, fair, nil)
	if err != nil {
		t.Fatalf("dataset.New: %v", err)
	}
	if (base[1]+off) != (base[2]+off) || base[1] == base[2] {
		t.Fatalf("test premise broken: bases %v, %v under offset %v", base[1], base[2], off)
	}
	c := NewComboRuns(d, base, 0)
	if c == nil {
		t.Fatal("NewComboRuns declined")
	}
	bonus := []float64{off}
	eff := EffectiveScoresAll(d, base, bonus, Beneficial, nil)
	want := Order(eff)
	var scratch MergeScratch
	got, ok := c.MergeTopKInto(bonus, Beneficial, len(base), &scratch, make([]int, 0, len(base)), nil)
	if !ok {
		t.Fatal("merge declined")
	}
	for r := range want {
		if got[r] != want[r] {
			t.Fatalf("rank %d: merge=%d full=%d (merge %v, full %v)", r, got[r], want[r], got, want)
		}
	}
	// The collapsed pair must come out id-ascending: 1 before 2.
	if !(got[0] == 1 && got[1] == 2) {
		t.Fatalf("collapsed group not id-ascending: %v", got)
	}
}

// TestComboRunsDecline covers every way the structure refuses to build
// or to merge, forcing the caller onto the full-sort path.
func TestComboRunsDecline(t *testing.T) {
	rng := rand.New(rand.NewSource(63))
	// Continuous attribute: more combos than the cap.
	n := 64
	col := make([]float64, n)
	for i := range col {
		col[i] = rng.Float64()
	}
	d, err := dataset.New(nil, []string{"ENI"}, nil, [][]float64{col}, nil)
	if err != nil {
		t.Fatalf("dataset.New: %v", err)
	}
	base := make([]float64, n)
	if c := NewComboRuns(d, base, 16); c != nil {
		t.Fatal("NewComboRuns accepted a 64-combo cohort under a cap of 16")
	}
	if c := NewComboRuns(d, base, 0); c == nil {
		t.Fatal("NewComboRuns declined under the default cap with only 64 combos")
	}
	// Non-finite base.
	badBase := append([]float64(nil), base...)
	badBase[3] = math.NaN()
	if c := NewComboRuns(d, badBase, 0); c != nil {
		t.Fatal("NewComboRuns accepted a NaN base score")
	}
	// Non-finite bonus: structure builds but the merge declines.
	c := NewComboRuns(d, base, 0)
	var scratch MergeScratch
	if _, ok := c.MergeTopKInto([]float64{math.Inf(1)}, Beneficial, 4, &scratch, make([]int, 0, 4), nil); ok {
		t.Fatal("merge accepted an infinite bonus")
	}
	if _, _, ok := c.RankOf(0, []float64{math.NaN()}, Beneficial, &scratch); ok {
		t.Fatal("RankOf accepted a NaN bonus")
	}
}

// TestComboRunsStats checks the observability summary on a hand-built
// cohort: 3 runs of lengths 1, 2, 3.
func TestComboRunsStats(t *testing.T) {
	fair := [][]float64{{0, 1, 0, 1, 0, 0.5}} // run lengths: 0→3, 1→2, 0.5→1
	d, err := dataset.New(nil, []string{"A"}, nil, fair, nil)
	if err != nil {
		t.Fatalf("dataset.New: %v", err)
	}
	c := NewComboRuns(d, []float64{6, 5, 4, 3, 2, 1}, 0)
	if c == nil {
		t.Fatal("NewComboRuns declined")
	}
	st := c.Stats()
	if st.Runs != 3 || st.MinLen != 1 || st.MedianLen != 2 || st.MaxLen != 3 {
		t.Fatalf("stats = %+v, want runs=3 min=1 median=2 max=3", st)
	}
	if c.N() != 6 || c.Runs() != 3 {
		t.Fatalf("N=%d Runs=%d, want 6 and 3", c.N(), c.Runs())
	}
}
