package rank

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"testing/quick"

	"fairrank/internal/dataset"
)

func mustDataset(t testing.TB, scoreCols, fairCols [][]float64) *dataset.Dataset {
	t.Helper()
	scoreNames := make([]string, len(scoreCols))
	for i := range scoreNames {
		scoreNames[i] = "s" + string(rune('0'+i))
	}
	fairNames := make([]string, len(fairCols))
	for i := range fairNames {
		fairNames[i] = "f" + string(rune('0'+i))
	}
	d, err := dataset.New(scoreNames, fairNames, scoreCols, fairCols, nil)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestWeightedSum(t *testing.T) {
	d := mustDataset(t,
		[][]float64{{80, 60}, {90, 50}},
		[][]float64{{1, 0}},
	)
	got := WeightedSum{Weights: []float64{0.55, 0.45}}.BaseScores(d)
	want := []float64{0.55*80 + 0.45*90, 0.55*60 + 0.45*50}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("BaseScores = %v, want %v", got, want)
		}
	}
}

func TestWeightedSumMismatchPanics(t *testing.T) {
	d := mustDataset(t, [][]float64{{1}}, [][]float64{{0}})
	defer func() {
		if recover() == nil {
			t.Error("expected panic on weight mismatch")
		}
	}()
	WeightedSum{Weights: []float64{1, 2}}.BaseScores(d)
}

func TestColumnAndPrecomputed(t *testing.T) {
	d := mustDataset(t, [][]float64{{1, 2}, {9, 8}}, [][]float64{{0, 1}})
	if got := (Column{Index: 1}).BaseScores(d); got[0] != 9 || got[1] != 8 {
		t.Errorf("Column scores = %v", got)
	}
	if got := (Precomputed{7, 6}).BaseScores(d); got[0] != 7 || got[1] != 6 {
		t.Errorf("Precomputed scores = %v", got)
	}
}

func TestEffectiveScoresPolarity(t *testing.T) {
	d := mustDataset(t,
		[][]float64{{10, 10}},
		[][]float64{{1, 0}, {0.5, 0}},
	)
	base := []float64{10, 10}
	bonus := []float64{2, 4}
	ben := EffectiveScores(d, base, []int{0, 1}, bonus, Beneficial, nil)
	if ben[0] != 10+2+2 || ben[1] != 10 {
		t.Errorf("beneficial scores = %v, want [14 10]", ben)
	}
	adv := EffectiveScores(d, base, []int{0, 1}, bonus, Adverse, nil)
	if adv[0] != 10-4 || adv[1] != 10 {
		t.Errorf("adverse scores = %v, want [6 10]", adv)
	}
	all := EffectiveScoresAll(d, base, bonus, Beneficial, nil)
	if !reflect.DeepEqual(all, ben) {
		t.Errorf("EffectiveScoresAll = %v, want %v", all, ben)
	}
}

func TestPolarityString(t *testing.T) {
	if Beneficial.String() != "beneficial" || Adverse.String() != "adverse" {
		t.Error("unexpected Polarity strings")
	}
	if Beneficial.Sign() != 1 || Adverse.Sign() != -1 {
		t.Error("unexpected Polarity signs")
	}
}

func TestSelectCount(t *testing.T) {
	tests := []struct {
		n       int
		frac    float64
		want    int
		wantErr bool
	}{
		{100, 0.05, 5, false},
		{100, 1, 100, false},
		{10, 0.001, 1, false}, // floor at 1
		{3, 0.5, 2, false},    // round half up: 1.5 -> 2
		{100, 0, 0, true},
		{100, -0.1, 0, true},
		{100, 1.1, 0, true},
	}
	for _, tc := range tests {
		got, err := SelectCount(tc.n, tc.frac)
		if (err != nil) != tc.wantErr {
			t.Errorf("SelectCount(%d, %v) error = %v", tc.n, tc.frac, err)
			continue
		}
		if err == nil && got != tc.want {
			t.Errorf("SelectCount(%d, %v) = %d, want %d", tc.n, tc.frac, got, tc.want)
		}
	}
}

func TestOrderDescendingWithIndexTies(t *testing.T) {
	scores := []float64{3, 5, 3, 1}
	got := Order(scores)
	want := []int{1, 0, 2, 3} // ties (indices 0 and 2) by ascending index
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Order = %v, want %v", got, want)
	}
}

func TestTopKVariantsAgreeOnMembership(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(200)
		scores := make([]float64, n)
		for i := range scores {
			// Coarse values force plenty of ties.
			scores[i] = float64(rng.Intn(10))
		}
		k := rng.Intn(n + 1)
		ref := append([]int(nil), TopK(scores, k)...)
		qs := append([]int(nil), TopKQuickselect(scores, k)...)
		hp := append([]int(nil), TopKHeap(scores, k)...)
		sort.Ints(ref)
		sort.Ints(qs)
		sort.Ints(hp)
		return reflect.DeepEqual(ref, qs) && reflect.DeepEqual(ref, hp)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestTopKIsRanked(t *testing.T) {
	scores := []float64{1, 9, 4, 9, 2}
	got := TopK(scores, 3)
	want := []int{1, 3, 2} // 9 (idx1), 9 (idx3), 4 (idx2)
	if !reflect.DeepEqual(got, want) {
		t.Errorf("TopK = %v, want %v", got, want)
	}
}

func TestTopKPanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic when k > n")
		}
	}()
	TopK([]float64{1}, 2)
}

func TestSelectionSelect(t *testing.T) {
	sel := Selection{Frac: 0.4}
	got, err := sel.Select([]float64{5, 1, 4, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, []int{0, 2}) {
		t.Errorf("Select = %v, want [0 2]", got)
	}
	if _, err := (Selection{Frac: 0}).Select([]float64{1}); err == nil {
		t.Error("Frac 0: expected error")
	}
}
