// Package rank implements the score-based ranking machinery of the paper:
// ranking functions over score attributes (Definition 1), bonus-point
// application (Definition 2) with support for adverse selections where a
// lower score is desirable (the COMPAS scenario), and top-k% selection with
// three interchangeable algorithms (full sort, quickselect, bounded heap)
// for the selection-strategy ablation.
//
// On top of the per-request selectors sits ComboRuns, the combo-run merge
// structure: the population is partitioned once by distinct fairness-
// attribute combination into g runs, each pre-sorted by (base score desc,
// id asc). Because a bonus vector shifts every member of a run by the same
// constant, any top-k prefix under any bonus is an exact g-way bounded-heap
// merge of the pre-sorted runs — O(k log g) per request instead of a
// population-wide O(n log n) sort, bit-identical to the full sort including
// tie-breaking (equal-effective-score head groups are re-emitted in
// ascending id order, covering the rounding-collapse case where adding the
// run offset makes distinct bases equal). RankOf answers one object's exact
// rank by binary search per run.
package rank
