// Package rank implements the score-based ranking machinery of the paper:
// ranking functions over score attributes (Definition 1), bonus-point
// application (Definition 2) with support for adverse selections where a
// lower score is desirable (the COMPAS scenario), and top-k% selection with
// three interchangeable algorithms (full sort, quickselect, bounded heap)
// for the selection-strategy ablation.
package rank
